package repro

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// renderAll renders every experiment table exactly as `aem bench` does,
// returning both the aligned-text and the JSON Lines (-json) forms.
func renderAll(t *testing.T, par int) (text, jsonOut []byte) {
	var buf, jbuf bytes.Buffer
	harness.Run(harness.All(), par, func(tbl *harness.Table) {
		tbl.Render(&buf)
		if err := tbl.JSON(&jbuf); err != nil {
			t.Fatalf("JSON render: %v", err)
		}
	})
	return buf.Bytes(), jbuf.Bytes()
}

// TestAembenchGolden pins the full `aem bench` output byte-for-byte, in
// both its rendered-table and JSON Lines forms: every experiment is
// deterministic from its seeds, so any diff is a real behavior change —
// in an algorithm, a cost model, a bounds formula, a spec grid or the
// renderers — and must be reviewed (and re-recorded with
// `go test -run TestAembenchGolden -update`).
//
// The same rendering is produced at -par 1 and -par 8 and compared, so
// ordered-emission regressions in the point-granular harness fail loudly
// here rather than flaking downstream.
func TestAembenchGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every experiment twice")
	}
	seq, seqJSON := renderAll(t, 1)
	par, parJSON := renderAll(t, 8)
	if !bytes.Equal(seq, par) || !bytes.Equal(seqJSON, parJSON) {
		t.Fatal("aem bench output differs between -par 1 and -par 8: ordered emission broken")
	}

	golden := filepath.Join("testdata", "aembench.golden")
	goldenJSON := filepath.Join("testdata", "aembench_json.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, seq, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenJSON, seqJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(seq, want) {
		t.Errorf("aem bench output diverged from %s — if intentional, regenerate with `go test -run TestAembenchGolden -update`\n%s",
			golden, diffHint(want, seq))
	}
	wantJSON, err := os.ReadFile(goldenJSON)
	if err != nil {
		t.Fatalf("missing JSON golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(seqJSON, wantJSON) {
		t.Errorf("aem bench -json output diverged from %s — if intentional, regenerate with `go test -run TestAembenchGolden -update`\n%s",
			goldenJSON, diffHint(wantJSON, seqJSON))
	}
}

// diffHint returns the first differing line pair, so the failure message
// points at the drifted experiment without dumping both renderings.
func diffHint(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(w) && i < len(g); i++ {
		if !bytes.Equal(w[i], g[i]) {
			return "first diff at line " + itoa(i+1) + ":\n  want: " + string(w[i]) + "\n  got:  " + string(g[i])
		}
	}
	return "length differs: want " + itoa(len(w)) + " lines, got " + itoa(len(g))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
