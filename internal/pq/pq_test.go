package pq

import (
	"container/heap"
	"testing"
	"testing/quick"

	"repro/internal/aem"
	"repro/internal/sorting"
	"repro/internal/workload"
)

func pqConfig() aem.Config { return aem.Config{M: 256, B: 8, Omega: 4} }

func TestPushDeleteMinSortedOrder(t *testing.T) {
	ma := aem.New(pqConfig())
	q := New(ma)
	in := workload.Keys(workload.NewRNG(1), workload.Random, 3000)
	for _, it := range in {
		q.Push(it)
	}
	if q.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", q.Len(), len(in))
	}
	var out []aem.Item
	for {
		it, ok := q.DeleteMin()
		if !ok {
			break
		}
		out = append(out, it)
	}
	if !sorting.IsSorted(out) {
		t.Fatal("DeleteMin order not sorted")
	}
	if !sorting.SameMultiset(in, out) {
		t.Fatal("queue lost or invented items")
	}
	q.Close()
	if ma.MemInUse() != 0 {
		t.Fatalf("leaked %d memory slots", ma.MemInUse())
	}
}

func TestEmptyQueue(t *testing.T) {
	ma := aem.New(pqConfig())
	q := New(ma)
	if _, ok := q.DeleteMin(); ok {
		t.Error("DeleteMin on empty queue returned ok")
	}
	if _, ok := q.Min(); ok {
		t.Error("Min on empty queue returned ok")
	}
	q.Close()
}

func TestMinDoesNotRemove(t *testing.T) {
	ma := aem.New(pqConfig())
	q := New(ma)
	q.Push(aem.Item{Key: 5})
	q.Push(aem.Item{Key: 3})
	if it, ok := q.Min(); !ok || it.Key != 3 {
		t.Fatalf("Min = %v, %t", it, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Min removed an item: Len = %d", q.Len())
	}
	if it, _ := q.DeleteMin(); it.Key != 3 {
		t.Fatalf("DeleteMin = %v", it)
	}
	if it, _ := q.DeleteMin(); it.Key != 5 {
		t.Fatalf("second DeleteMin = %v", it)
	}
	q.Close()
}

// refItem adapts items to container/heap for the reference model.
type refHeap []aem.Item

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return aem.Less(h[i], h[j]) }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(aem.Item)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func TestInterleavedAgainstReferenceHeap(t *testing.T) {
	// Random interleavings of Push and DeleteMin must match
	// container/heap exactly.
	rng := workload.NewRNG(7)
	ma := aem.New(pqConfig())
	q := New(ma)
	ref := &refHeap{}
	var key int64
	for step := 0; step < 20000; step++ {
		if ref.Len() == 0 || rng.Intn(3) != 0 {
			it := aem.Item{Key: int64(rng.Intn(1000)), Aux: key}
			key++
			q.Push(it)
			heap.Push(ref, it)
		} else {
			got, ok := q.DeleteMin()
			want := heap.Pop(ref).(aem.Item)
			if !ok || got != want {
				t.Fatalf("step %d: DeleteMin = %v, want %v", step, got, want)
			}
		}
	}
	for ref.Len() > 0 {
		got, _ := q.DeleteMin()
		want := heap.Pop(ref).(aem.Item)
		if got != want {
			t.Fatalf("drain: got %v, want %v", got, want)
		}
	}
	q.Close()
	if ma.MemInUse() != 0 {
		t.Fatalf("leaked %d memory slots", ma.MemInUse())
	}
}

func TestHeapSort(t *testing.T) {
	for _, dist := range workload.Dists() {
		for _, n := range []int{0, 1, 100, 2000, 8000} {
			ma := aem.New(pqConfig())
			in := workload.Keys(workload.NewRNG(uint64(n)+3), dist, n)
			out := HeapSort(ma, aem.Load(ma, in)).Materialize()
			if !sorting.IsSorted(out) {
				t.Fatalf("dist=%v n=%d: not sorted", dist, n)
			}
			if !sorting.SameMultiset(in, out) {
				t.Fatalf("dist=%v n=%d: multiset broken", dist, n)
			}
			if ma.MemInUse() != 0 {
				t.Fatalf("dist=%v n=%d: leaked %d slots", dist, n, ma.MemInUse())
			}
		}
	}
}

func TestHeapSortCostClass(t *testing.T) {
	// The sequence heap is an EM-class sorter: its cost should be within
	// a small factor of the EM mergesort's on the same machine.
	cfg := pqConfig()
	in := workload.Keys(workload.NewRNG(4), workload.Random, 1<<13)
	ma1 := aem.New(cfg)
	HeapSort(ma1, aem.Load(ma1, in))
	ma2 := aem.New(cfg)
	sorting.EMMergeSort(ma2, aem.Load(ma2, in))
	if ma1.Cost() > 8*ma2.Cost() {
		t.Errorf("heapsort cost %d > 8× EM mergesort %d", ma1.Cost(), ma2.Cost())
	}
}

func TestQueueTooSmallMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for M < 16B")
		}
	}()
	New(aem.New(aem.Config{M: 32, B: 4, Omega: 2}))
}

func TestQuickRandomOps(t *testing.T) {
	f := func(seed uint64, opsSel []byte) bool {
		rng := workload.NewRNG(seed)
		ma := aem.New(aem.Config{M: 128, B: 4, Omega: 2})
		q := New(ma)
		ref := &refHeap{}
		var key int64
		for _, b := range opsSel {
			if ref.Len() == 0 || b%4 != 0 {
				it := aem.Item{Key: int64(rng.Intn(64)), Aux: key}
				key++
				q.Push(it)
				heap.Push(ref, it)
			} else {
				got, ok := q.DeleteMin()
				want := heap.Pop(ref).(aem.Item)
				if !ok || got != want {
					return false
				}
			}
		}
		for ref.Len() > 0 {
			got, _ := q.DeleteMin()
			if got != heap.Pop(ref).(aem.Item) {
				return false
			}
		}
		q.Close()
		return ma.MemInUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
