package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestPointsEnumeration: cross products enumerate in row order (first
// axis outermost), dynamic axes see the outer assignment, and Skip
// prunes individual points — the EXP-B1 grid shape.
func TestPointsEnumeration(t *testing.T) {
	s := &Spec{
		ID: "T",
		Axes: []Axis{
			{Name: "w", Values: Ints(1, 4)},
			{Name: "mult", Dyn: func(outer Point) []interface{} {
				w := outer.Int("w")
				return Ints(1, w/2, w)
			}},
		},
		Skip: func(p Point) bool { return p.Int("mult") < 1 },
	}
	var got [][2]int
	for _, p := range s.Points() {
		got = append(got, [2]int{p.Int("w"), p.Int("mult")})
	}
	// w=1 yields mult values {1, 0, 1}: the 0 is skipped, the duplicate kept.
	want := [][2]int{{1, 1}, {1, 1}, {4, 1}, {4, 2}, {4, 4}}
	if len(got) != len(want) {
		t.Fatalf("enumerated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d = %v, want %v (full %v)", i, got[i], want[i], got)
		}
	}
}

// TestSpecTableMatchesRun: the serial convenience path and the scheduled
// path must assemble identical tables.
func TestSpecTableMatchesRun(t *testing.T) {
	s, ok := ByID("EXP-B1")
	if !ok {
		t.Fatal("EXP-B1 missing")
	}
	var viaRun *Table
	Run([]*Spec{s}, 4, func(tbl *Table) { viaRun = tbl })
	serial := s.Table()
	var a, b bytes.Buffer
	viaRun.Render(&a)
	serial.Render(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("Run and Table renderings differ:\n%s\n---\n%s", a.String(), b.String())
	}
}

// TestPredColumns: a Pred hook divides the measured Row entry by the
// prediction, or emits the prediction itself on a nil entry.
func TestPredColumns(t *testing.T) {
	s := &Spec{
		ID:   "T",
		Axes: []Axis{{Name: "x", Values: Ints(3)}},
		Columns: append(Cols("x"),
			Column{Name: "ratio", Pred: func(p Point) float64 { return 2.0 }},
			Column{Name: "pred", Pred: func(p Point) float64 { return 7.5 }},
		),
		Point: func(p Point) Row { return Row{p.Int("x"), 3, nil} },
	}
	tbl := s.Table()
	if got := tbl.Rows[0]; got[1] != "1.50" || got[2] != "7.50" {
		t.Fatalf("pred cells = %v, want ratio 1.50 and prediction 7.50", got)
	}
}

// TestMemoPointSharesComputation: several hooks asking for the same
// point's params trigger one computation.
func TestMemoPointSharesComputation(t *testing.T) {
	calls := 0
	memo := MemoPoint(func(p Point) int {
		calls++
		return p.Int("x") * 10
	})
	p := Point{axes: []Axis{{Name: "x"}}, vals: []interface{}{4}}
	q := Point{axes: []Axis{{Name: "x"}}, vals: []interface{}{5}}
	if memo(p) != 40 || memo(p) != 40 || memo(q) != 50 {
		t.Fatal("memoized values wrong")
	}
	if calls != 2 {
		t.Fatalf("computed %d times for 2 distinct points", calls)
	}
}

// TestSelect: comma-separated selection in user order, "all"/empty for
// the registry, duplicate collapse with a warning, and full unknown-ID
// diagnostics.
func TestSelect(t *testing.T) {
	all, warns, err := Select("all")
	if err != nil || len(warns) != 0 || len(all) != len(All()) {
		t.Fatalf("Select(all) = %d specs, warns %v, err %v", len(all), warns, err)
	}
	if empty, warns, err := Select(""); err != nil || len(warns) != 0 || len(empty) != len(All()) {
		t.Fatalf("Select(\"\") should select the registry, got %d specs, warns %v, err %v", len(empty), warns, err)
	}

	specs, warns, err := Select("EXP-D1, EXP-Q1,EXP-D1")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].ID != "EXP-D1" || specs[1].ID != "EXP-Q1" {
		ids := make([]string, len(specs))
		for i, s := range specs {
			ids[i] = s.ID
		}
		t.Fatalf("Select order/dedup wrong: %v", ids)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "EXP-D1") || !strings.Contains(warns[0], "duplicate") {
		t.Fatalf("duplicate id must warn, got %v", warns)
	}

	_, _, err = Select("EXP-D1,EXP-NOPE,EXP-ALSO-NOPE")
	if err == nil {
		t.Fatal("unknown ids accepted")
	}
	for _, want := range []string{"EXP-NOPE", "EXP-ALSO-NOPE"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %s", err, want)
		}
	}
	if strings.Contains(err.Error(), "EXP-D1") {
		t.Errorf("error %q names the known id EXP-D1", err)
	}
}

// TestTableJSON: one record per row, valid JSON Lines, columns and
// formatted values carried through.
func TestTableJSON(t *testing.T) {
	tbl := &Table{ID: "EXP-T", Title: "json shape", Columns: []string{"a", "b"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x,y", `q"r`)
	var buf bytes.Buffer
	if err := tbl.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d records for 2 rows:\n%s", len(lines), buf.String())
	}
	if want := `{"experiment":"EXP-T","title":"json shape","row":0,"columns":["a","b"],"values":["1","2.50"]}`; lines[0] != want {
		t.Errorf("record 0 = %s, want %s", lines[0], want)
	}
	if !strings.Contains(lines[1], `"x,y"`) || !strings.Contains(lines[1], `q\"r`) {
		t.Errorf("record 1 did not JSON-escape cells: %s", lines[1])
	}
}
