// SpMxV scenario: iterated sparse matrix–vector products — the kernel of
// PageRank-style computations — on NVM-resident data. Each iteration
// multiplies the (column-major) adjacency-like matrix by the current
// vector; the example runs both Section 5 algorithms, verifies them
// against a dense reference, and shows which side of Theorem 5.1's min{}
// the machine lands on.
//
//	go run ./examples/spmxv
package main

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/spmxv"
	"repro/internal/workload"
)

func main() {
	const (
		n     = 1 << 11
		delta = 4
		iters = 3
	)
	rng := workload.NewRNG(23)
	conf := workload.NewConformation(rng, n, delta)
	values := make([]int64, conf.H())
	for i := range values {
		values[i] = int64(rng.Intn(3)) // sparse non-negative weights
	}
	x := make([]int64, n)
	for i := range x {
		x[i] = 1 // start from the all-ones vector, the lower bound's canonical task
	}

	cfg := aem.Config{M: 1024, B: 32, Omega: 16}
	fmt.Printf("PageRank-style iteration: %d×%d matrix, δ=%d (H=%d), (M=%d,B=%d,ω=%d)-AEM\n\n",
		n, n, delta, conf.H(), cfg.M, cfg.B, cfg.Omega)

	var totalCost int64
	for it := 0; it < iters; it++ {
		ma := core.NewMachine(cfg)
		mat := core.NewSparseMatrix(ma, conf, values)
		y, strat := core.SpMxV(ma, mat, core.LoadDenseVector(ma, x))
		if err := spmxv.VerifyProduct(conf, values, x, y); err != nil {
			panic(err)
		}
		fmt.Printf("iteration %d: cost %8d (%s, strategy %s)\n",
			it+1, ma.Cost(), ma.Stats(), strat)
		totalCost += ma.Cost()

		// Feed the result into the next iteration (values capped to keep
		// the integer semiring small).
		out := y.Materialize()
		for i := range x {
			x[i] = out[i].Aux % 97
		}
	}

	p := bounds.SpMxVParams{Params: bounds.Params{N: n, Cfg: cfg}, Delta: delta}
	fmt.Printf("\ntotal cost over %d iterations: %d\n", iters, totalCost)
	fmt.Printf("per-iteration Theorem 5.1 lower bound: %.0f\n", core.SpMxVLowerBound(p))
	fmt.Printf("naive predicted %.0f vs sort predicted %.0f — min decides the strategy\n",
		bounds.SpMxVNaivePredicted(p).Cost(cfg.Omega),
		bounds.SpMxVSortPredicted(p).Cost(cfg.Omega))
}
