package cli

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// profEntry is one function line from `go tool pprof -top` output: the
// flat self-percentage and the symbol name.
type profEntry struct {
	FlatPct float64
	Name    string
}

// profdiffCmd diffs a pprof -top summary against a committed baseline
// and fails when a function above -threshold flat% appears that the
// baseline has never seen. This is the CI profile review: the hot-path
// inventory is allowed to shift in weight, but a brand-new heavy
// entrant (a fresh allocation site, an accidental O(n²) helper) has to
// be looked at by a human and committed into the baseline deliberately.
//
//	go tool pprof -top -nodecount=15 ./aem cpu.pprof > profile_summary.txt
//	aem profdiff -baseline testdata/profile_baseline.txt profile_summary.txt
//
// The baseline is just an earlier summary file: refresh it by copying
// the current one over it and committing the diff. Exit codes: 0 pass,
// 1 new heavy entrant, 2 usage error.
func profdiffCmd(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		baselinePath = fs.String("baseline", "", "committed pprof -top summary to diff against (required)")
		threshold    = fs.Float64("threshold", 10, "flat%% above which a function absent from the baseline fails the gate")
	)
	fs.Parse(args)

	if *baselinePath == "" || fs.NArg() != 1 {
		fail(prog, "usage: %s -baseline <committed.txt> [-threshold pct] <current.txt>", prog)
		return 2
	}
	base, err := parseProfTop(*baselinePath)
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}
	cur, err := parseProfTop(fs.Arg(0))
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}
	if len(base) == 0 {
		fail(prog, "%s: no pprof -top entries found", *baselinePath)
		return 2
	}
	if len(cur) == 0 {
		fail(prog, "%s: no pprof -top entries found", fs.Arg(0))
		return 2
	}

	known := make(map[string]bool, len(base))
	for _, e := range base {
		known[e.Name] = true
	}
	var entrants []profEntry
	for _, e := range cur {
		if e.FlatPct > *threshold && !known[e.Name] {
			entrants = append(entrants, e)
		}
	}
	fmt.Printf("profdiff     %d baseline symbol(s), %d current, threshold %.1f%% flat\n",
		len(base), len(cur), *threshold)
	if len(entrants) == 0 {
		fmt.Printf("ok           no new entrant above threshold\n")
		return 0
	}
	for _, e := range entrants {
		fmt.Printf("NEW          %6.2f%%  %s\n", e.FlatPct, e.Name)
	}
	fail(prog, "%d new function(s) above %.1f%% flat — profile them, then refresh %s deliberately",
		len(entrants), *threshold, *baselinePath)
	return 1
}

// parseProfTop extracts the function rows from `go tool pprof -top`
// text. A row looks like
//
//	1.2s 40.00% 40.00%  1.5s 50.00%  repro/internal/dict.(*BufferTree).flushNode
//
// (flat, flat%, sum%, cum, cum%, name). Header/banner lines lack the
// percent-shaped columns and are skipped, so a file that concatenates
// several -top dumps (cpu + mem) parses as one inventory; a symbol seen
// twice keeps its larger flat%.
func parseProfTop(path string) ([]profEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	seen := make(map[string]int)
	var out []profEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 6 {
			continue
		}
		pct, ok := parsePct(fields[1])
		if !ok {
			continue
		}
		if _, ok := parsePct(fields[2]); !ok { // sum% column confirms the shape
			continue
		}
		name := strings.Join(fields[5:], " ")
		if i, dup := seen[name]; dup {
			if pct > out[i].FlatPct {
				out[i].FlatPct = pct
			}
			continue
		}
		seen[name] = len(out)
		out = append(out, profEntry{FlatPct: pct, Name: name})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return out, nil
}

func parsePct(s string) (float64, bool) {
	if !strings.HasSuffix(s, "%") {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
