package sorting_test

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/aem"
	"repro/internal/sorting"
	"repro/internal/workload"
)

// it is shorthand for constructing test items.
func it(key, aux int64) aem.Item { return aem.Item{Key: key, Aux: aux} }

func sortedCopy(items []aem.Item) []aem.Item {
	out := make([]aem.Item, len(items))
	copy(out, items)
	sort.Slice(out, func(i, j int) bool { return aem.Less(out[i], out[j]) })
	return out
}

func checkSortResult(t *testing.T, in []aem.Item, out *aem.Vector) {
	t.Helper()
	got := out.Materialize()
	if !sorting.IsSorted(got) {
		t.Fatal("output not sorted")
	}
	if !sorting.SameMultiset(in, got) {
		t.Fatal("output is not a permutation of the input")
	}
}

func TestSmallSortCorrectness(t *testing.T) {
	cfg := aem.Config{M: 32, B: 4, Omega: 4}
	for _, dist := range workload.Dists() {
		for _, n := range []int{0, 1, 5, 16, 32, 100, 128} {
			ma := aem.New(cfg)
			in := workload.Keys(workload.NewRNG(uint64(n)), dist, n)
			out := sorting.SmallSort(ma, aem.Load(ma, in))
			checkSortResult(t, in, out)
			if ma.MemInUse() != 0 {
				t.Fatalf("dist=%v n=%d: leaked %d memory slots", dist, n, ma.MemInUse())
			}
		}
	}
}

func TestSmallSortCostBound(t *testing.T) {
	// [7, Lemma 4.2]: N′ ≤ ωM items in O(ω·n′) reads and O(n′) writes.
	// With the M/2 selection buffer the pass count is ⌈N′/(M/2)⌉ ≤ 2ω, so
	// reads ≤ 2ω·n′ + n′ and writes = n′ exactly.
	cfg := aem.Config{M: 64, B: 8, Omega: 4}
	n := cfg.Omega * cfg.M // the largest base case, N′ = ωM
	ma := aem.New(cfg)
	in := workload.Keys(workload.NewRNG(1), workload.Random, n)
	sorting.SmallSort(ma, aem.Load(ma, in))

	nBlocks := int64(cfg.BlocksOf(n))
	st := ma.Stats()
	if st.Writes != nBlocks {
		t.Errorf("writes = %d, want exactly n′ = %d", st.Writes, nBlocks)
	}
	maxReads := int64(2*cfg.Omega+1) * nBlocks
	if st.Reads > maxReads {
		t.Errorf("reads = %d > bound %d", st.Reads, maxReads)
	}
}

func TestSmallSortWriteOptimality(t *testing.T) {
	// The whole point of the base case: writes stay at n′ even as ω (and
	// hence the read count) grows.
	for _, w := range []int{1, 4, 16} {
		cfg := aem.Config{M: 64, B: 8, Omega: w}
		n := 512
		ma := aem.New(cfg)
		in := workload.Keys(workload.NewRNG(2), workload.Random, n)
		sorting.SmallSort(ma, aem.Load(ma, in))
		if got := ma.Stats().Writes; got != int64(cfg.BlocksOf(n)) {
			t.Errorf("ω=%d: writes = %d, want %d", w, got, cfg.BlocksOf(n))
		}
	}
}

func loadRuns(ma *aem.Machine, groups [][]aem.Item) []*aem.Vector {
	runs := make([]*aem.Vector, len(groups))
	for i, g := range groups {
		runs[i] = aem.Load(ma, g)
	}
	return runs
}

func TestMergeRunsBasic(t *testing.T) {
	cfg := aem.Config{M: 64, B: 4, Omega: 2}
	ma := aem.New(cfg)
	groups := [][]aem.Item{
		{it(1, 0), it(4, 0), it(9, 0)},
		{it(2, 0), it(3, 0), it(5, 0), it(6, 0), it(7, 0), it(8, 0)},
		{},
		{it(0, 0)},
	}
	var all []aem.Item
	for _, g := range groups {
		all = append(all, g...)
	}
	out := sorting.MergeRuns(ma, loadRuns(ma, groups), sorting.MergeOptions{})
	checkSortResult(t, all, out)
	if ma.MemInUse() != 0 {
		t.Fatalf("leaked %d memory slots", ma.MemInUse())
	}
}

func TestMergeRunsEmpty(t *testing.T) {
	ma := aem.New(aem.Config{M: 64, B: 4, Omega: 2})
	out := sorting.MergeRuns(ma, nil, sorting.MergeOptions{})
	if out.Len() != 0 {
		t.Errorf("empty merge produced %d items", out.Len())
	}
}

// makeRuns cuts a random input into k sorted runs of roughly equal length.
func makeRuns(r *workload.RNG, n, k int) (groups [][]aem.Item, all []aem.Item) {
	all = workload.Keys(r, workload.Random, n)
	per := (n + k - 1) / k
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		g := sortedCopy(all[lo:hi])
		groups = append(groups, g)
	}
	return groups, all
}

func TestMergeRunsManyConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  aem.Config
		n, k int
	}{
		{"small", aem.Config{M: 64, B: 4, Omega: 2}, 200, 7},
		{"omega1", aem.Config{M: 64, B: 8, Omega: 1}, 300, 4},
		{"omega>B", aem.Config{M: 64, B: 4, Omega: 16}, 500, 64},
		{"omega>>B full fanout", aem.Config{M: 64, B: 4, Omega: 32}, 2048, 512},
		{"single run", aem.Config{M: 64, B: 4, Omega: 2}, 100, 1},
		{"runs of one", aem.Config{M: 64, B: 4, Omega: 4}, 60, 60},
		{"B1 aram", aem.Config{M: 16, B: 1, Omega: 8}, 128, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ma := aem.New(tc.cfg)
			groups, all := makeRuns(workload.NewRNG(99), tc.n, tc.k)
			out := sorting.MergeRuns(ma, loadRuns(ma, groups), sorting.MergeOptions{})
			checkSortResult(t, all, out)
			if ma.MemInUse() != 0 {
				t.Fatalf("leaked %d memory slots", ma.MemInUse())
			}
		})
	}
}

func TestMergeRunsTheorem32CostBound(t *testing.T) {
	// Theorem 3.2: merging ωm sorted arrays of N total items takes
	// O(ω(n+m)) reads and O(n+m) writes. The constants below are pinned by
	// measurement; what matters is that they are constants — EXP-M1 checks
	// flatness across the sweep.
	const readC, writeC = 16, 6
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		for _, w := range []int{1, 4, 16} {
			cfg := aem.Config{M: 128, B: 8, Omega: w}
			k := cfg.MergeFanout()
			ma := aem.New(cfg)
			groups, _ := makeRuns(workload.NewRNG(7), n, k)
			sorting.MergeRuns(ma, loadRuns(ma, groups), sorting.MergeOptions{})

			nb := float64(cfg.BlocksOf(n))
			mb := float64(cfg.BlocksInMemory())
			st := ma.Stats()
			if got, bound := float64(st.Reads), readC*float64(w)*(nb+mb); got > bound {
				t.Errorf("N=%d ω=%d: reads %v > %v = %d·ω(n+m)", n, w, got, bound, readC)
			}
			if got, bound := float64(st.Writes), writeC*(nb+mb); got > bound {
				t.Errorf("N=%d ω=%d: writes %v > %v = %d·(n+m)", n, w, got, bound, writeC)
			}
		}
	}
}

func TestMergeRunsReduce(t *testing.T) {
	cfg := aem.Config{M: 64, B: 4, Omega: 2}
	ma := aem.New(cfg)
	groups := [][]aem.Item{
		{it(1, 10), it(3, 30), it(5, 50)},
		{it(1, 1), it(3, 3), it(7, 7)},
		{it(3, 300)},
	}
	out := sorting.MergeRuns(ma, loadRuns(ma, groups), sorting.MergeOptions{Reduce: true})
	got := out.Materialize()
	want := []aem.Item{it(1, 11), it(3, 333), it(5, 50), it(7, 7)}
	if len(got) != len(want) {
		t.Fatalf("reduced output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reduced output = %v, want %v", got, want)
		}
	}
}

func TestMergeRunsReduceAcrossRounds(t *testing.T) {
	// A key group that spans a round boundary must still be combined into
	// one output item: all runs contain only key 42, so the entire merge
	// reduces to a single item regardless of how many rounds it takes.
	cfg := aem.Config{M: 64, B: 4, Omega: 2}
	ma := aem.New(cfg)
	const n = 500
	groups := make([][]aem.Item, 5)
	var wantSum int64
	for g := range groups {
		for i := 0; i < n/5; i++ {
			v := int64(g*1000 + i)
			groups[g] = append(groups[g], aem.Item{Key: 42, Aux: v})
			wantSum += v
		}
	}
	out := sorting.MergeRuns(ma, loadRuns(ma, groups), sorting.MergeOptions{Reduce: true})
	got := out.Materialize()
	if len(got) != 1 || got[0].Key != 42 || got[0].Aux != wantSum {
		t.Fatalf("reduced output = %v, want [{42 %d}]", got, wantSum)
	}
}

func TestInMemoryPointersMatchExternal(t *testing.T) {
	// Where both apply (ωm pointers fit in memory), the two merges must
	// produce identical output.
	cfg := aem.Config{M: 128, B: 16, Omega: 2}
	groups, all := makeRuns(workload.NewRNG(5), 600, 10)

	ma1 := aem.New(cfg)
	out1 := sorting.MergeRuns(ma1, loadRuns(ma1, groups), sorting.MergeOptions{})
	checkSortResult(t, all, out1)

	ma2 := aem.New(cfg)
	out2 := sorting.MergeRunsInMemoryPointers(ma2, loadRuns(ma2, groups), sorting.MergeOptions{})
	checkSortResult(t, all, out2)

	a, b := out1.Materialize(), out2.Materialize()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// The external store pays pointer I/O; the in-memory store must not
	// pay more I/O than it.
	if ma2.Stats().IOs() > ma1.Stats().IOs() {
		t.Errorf("in-memory pointers cost %d I/Os > external %d", ma2.Stats().IOs(), ma1.Stats().IOs())
	}
}

func TestInMemoryPointersFailForLargeOmega(t *testing.T) {
	// ω ≫ B: the ωm run pointers exceed M and the [7]-style merge must
	// die with a memory overflow. This is the assumption the paper's §3
	// algorithm removes.
	cfg := aem.Config{M: 64, B: 4, Omega: 64} // fanout ωm = 1024 ≫ M
	ma := aem.New(cfg)
	groups, _ := makeRuns(workload.NewRNG(5), 4096, cfg.MergeFanout())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected memory-overflow panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "memory capacity exceeded") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	sorting.MergeRunsInMemoryPointers(ma, loadRuns(ma, groups), sorting.MergeOptions{})
}

func TestMergeSortCorrectness(t *testing.T) {
	cases := []struct {
		name string
		cfg  aem.Config
		n    int
	}{
		{"one level", aem.Config{M: 64, B: 4, Omega: 2}, 512},
		{"two levels", aem.Config{M: 64, B: 4, Omega: 2}, 4096},
		{"omega>B", aem.Config{M: 64, B: 4, Omega: 16}, 8192},
		{"base case only", aem.Config{M: 64, B: 4, Omega: 4}, 200},
		{"B1", aem.Config{M: 16, B: 1, Omega: 4}, 300},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, dist := range workload.Dists() {
				ma := aem.New(tc.cfg)
				in := workload.Keys(workload.NewRNG(3), dist, tc.n)
				out := sorting.MergeSort(ma, aem.Load(ma, in))
				checkSortResult(t, in, out)
				if ma.MemInUse() != 0 {
					t.Fatalf("dist %v: leaked %d memory slots", dist, ma.MemInUse())
				}
			}
		})
	}
}

func TestMergeSortWritesBeatReadsByOmega(t *testing.T) {
	// The headline property of the §3 mergesort: the write count is about
	// a 1/ω fraction of the read count (reads O(ωn log), writes O(n log)).
	cfg := aem.Config{M: 128, B: 8, Omega: 16}
	ma := aem.New(cfg)
	in := workload.Keys(workload.NewRNG(4), workload.Random, 1<<14)
	sorting.MergeSort(ma, aem.Load(ma, in))
	st := ma.Stats()
	ratio := float64(st.Reads) / float64(st.Writes)
	if ratio < float64(cfg.Omega)/4 {
		t.Errorf("read/write ratio %.2f; want ≳ ω/4 = %d", ratio, cfg.Omega/4)
	}
}

func TestEMMergeSortCorrectness(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1000, 5000} {
		cfg := aem.Config{M: 64, B: 4, Omega: 4}
		ma := aem.New(cfg)
		in := workload.Keys(workload.NewRNG(uint64(n)), workload.Random, n)
		out := sorting.EMMergeSort(ma, aem.Load(ma, in))
		checkSortResult(t, in, out)
		if ma.MemInUse() != 0 {
			t.Fatalf("n=%d: leaked %d memory slots", n, ma.MemInUse())
		}
	}
}

func TestAEMvsEMMergeSortTrend(t *testing.T) {
	// §3's motivation, measured honestly: the AEM mergesort's advantage
	// over the symmetric mergesort is asymptotic (the log base improves
	// from m to ωm), so at simulator scales the measurable claim is the
	// trend — the cost ratio AEM/EM must fall monotonically as ω grows,
	// and the EM algorithm's write count must exceed the AEM one's by at
	// least the merge-depth ratio.
	in := workload.Keys(workload.NewRNG(6), workload.Random, 1<<14)
	first, last := 0.0, 0.0
	prev := 0.0
	for i, w := range []int{1, 4, 16, 64} {
		cfg := aem.Config{M: 128, B: 8, Omega: w}
		ma1 := aem.New(cfg)
		sorting.MergeSort(ma1, aem.Load(ma1, in))
		ma2 := aem.New(cfg)
		sorting.EMMergeSort(ma2, aem.Load(ma2, in))

		ratio := float64(ma1.Cost()) / float64(ma2.Cost())
		if i == 0 {
			first = ratio
		} else if ratio > 1.15*prev {
			t.Errorf("ω=%d: cost ratio AEM/EM = %.3f jumped from %.3f", w, ratio, prev)
		}
		prev, last = ratio, ratio
	}
	if last > 0.85*first {
		t.Errorf("ratio did not improve with ω: %.3f at ω=1 vs %.3f at ω=64", first, last)
	}
}

func TestAEMWriteSavingsAtDepth(t *testing.T) {
	// Once the symmetric sort needs several merge levels while the AEM
	// sort needs one (ωm ≫ m), the AEM write count must be strictly
	// smaller — writes are what an asymmetric memory makes precious.
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	cfg := aem.Config{M: 64, B: 4, Omega: 64}
	in := workload.Keys(workload.NewRNG(8), workload.Random, 1<<16)

	ma1 := aem.New(cfg)
	sorting.MergeSort(ma1, aem.Load(ma1, in))
	ma2 := aem.New(cfg)
	sorting.EMMergeSort(ma2, aem.Load(ma2, in))

	if w1, w2 := ma1.Stats().Writes, ma2.Stats().Writes; w1 >= w2 {
		t.Errorf("AEM writes %d ≥ EM writes %d at ω=64 with deep EM recursion", w1, w2)
	}
}

func TestMergeSortQuick(t *testing.T) {
	// Property: sorting.MergeSort sorts any input on any (small) legal machine.
	f := func(keys []int64, mSel, bSel, wSel uint8) bool {
		b := 1 + int(bSel%8)
		m := 8*b + int(mSel)
		w := 1 + int(wSel%32)
		cfg := aem.Config{M: m, B: b, Omega: w}
		ma := aem.New(cfg)
		in := make([]aem.Item, len(keys))
		for i, k := range keys {
			in[i] = aem.Item{Key: k, Aux: int64(i)}
		}
		out := sorting.MergeSort(ma, aem.Load(ma, in)).Materialize()
		return sorting.IsSorted(out) && sorting.SameMultiset(in, out) && ma.MemInUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestIsSortedAndSameMultiset(t *testing.T) {
	sorted := []aem.Item{it(1, 0), it(1, 1), it(2, 0)}
	if !sorting.IsSorted(sorted) {
		t.Error("sorting.IsSorted(sorted) = false")
	}
	if sorting.IsSorted([]aem.Item{it(2, 0), it(1, 0)}) {
		t.Error("sorting.IsSorted(unsorted) = true")
	}
	if !sorting.IsSorted(nil) {
		t.Error("sorting.IsSorted(nil) = false")
	}
	if !sorting.SameMultiset([]aem.Item{it(1, 0), it(1, 0)}, []aem.Item{it(1, 0), it(1, 0)}) {
		t.Error("sorting.SameMultiset equal = false")
	}
	if sorting.SameMultiset([]aem.Item{it(1, 0), it(1, 0)}, []aem.Item{it(1, 0), it(2, 0)}) {
		t.Error("sorting.SameMultiset different = true")
	}
	if sorting.SameMultiset([]aem.Item{it(1, 0)}, []aem.Item{}) {
		t.Error("sorting.SameMultiset different lengths = true")
	}
}

func TestMergeSortPhaseAccounting(t *testing.T) {
	// Per-phase I/O must partition the total, and pointer-maintenance
	// writes must stay O(n) — the §3.1 argument that external pointers
	// are affordable.
	cfg := aem.Config{M: 128, B: 8, Omega: 8}
	ma := aem.New(cfg)
	in := workload.Keys(workload.NewRNG(21), workload.Random, 1<<14)
	sorting.MergeSort(ma, aem.Load(ma, in))

	ph := ma.Phases()
	if total := ph.Total(); total != ma.Stats() {
		t.Errorf("phase total %+v != stats %+v", total, ma.Stats())
	}
	for _, name := range []string{"base", "merge", "pointers"} {
		if ph.Phase(name) == (aem.Stats{}) {
			t.Errorf("phase %q recorded no I/O", name)
		}
	}
	nb := int64(cfg.BlocksOf(1 << 14))
	if pw := ph.Phase("pointers").Writes; pw > 2*nb {
		t.Errorf("pointer writes %d > 2n = %d; §3.1 accounting broken", pw, 2*nb)
	}
}

func TestMergeRunsMaxBufferAblation(t *testing.T) {
	// Shrinking the round buffer must not change the output and must not
	// make the merge cheaper (the EXP-A1 ablation's direction).
	cfg := aem.Config{M: 128, B: 8, Omega: 8}
	groups, all := makeRuns(workload.NewRNG(22), 4096, cfg.MergeFanout())

	ma1 := aem.New(cfg)
	out1 := sorting.MergeRuns(ma1, loadRuns(ma1, groups), sorting.MergeOptions{})
	checkSortResult(t, all, out1)

	ma2 := aem.New(cfg)
	out2 := sorting.MergeRuns(ma2, loadRuns(ma2, groups), sorting.MergeOptions{MaxBuffer: 16})
	checkSortResult(t, all, out2)

	if ma2.Cost() < ma1.Cost() {
		t.Errorf("capped buffer cost %d < full buffer cost %d", ma2.Cost(), ma1.Cost())
	}
	a, b := out1.Materialize(), out2.Materialize()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MaxBuffer changed the output")
		}
	}
}
