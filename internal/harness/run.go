package harness

// Run executes the specs' grids on one shared in-process worker pool of
// at most par goroutines — it is shorthand for the LocalPool executor
// (see executor.go for the pluggable execution layer). emit is called
// exactly once per spec, in the order of specs, as soon as each table and
// all of its predecessors are assembled. Every point owns a private
// machine and derives its inputs from fixed seeds, so points are
// embarrassingly parallel and the emitted tables are byte-identical for
// every par — parallelism changes wall-clock time, never output. par < 1
// is treated as 1.
//
// If points panic, Run drains the in-flight work, skips emission from the
// first failed spec onward, and re-panics with every failed experiment ID
// and its first panic message — multiple failures are aggregated, not
// dropped.
func Run(specs []*Spec, par int, emit func(*Table)) {
	(&LocalPool{Par: par}).Execute(specs, emit)
}

// RunAll runs every experiment at the given parallelism and returns the
// tables in All()'s order.
func RunAll(par int) []*Table {
	var tables []*Table
	Run(All(), par, func(t *Table) { tables = append(tables, t) })
	return tables
}
