package harness

import (
	"fmt"
	"sort"
	"time"
)

// LatencySummary condenses a population of per-operation latencies into
// the tail-aware shape the serving experiments report: median, p99,
// p99.9 and worst case, in nanoseconds. Amortized Q tells you what an op
// costs on average; these columns tell you what the unlucky op paid —
// the two sides of the write-deferral tradeoff, side by side. p99.9 is
// where flush convoys live: at serving batch sizes a cascade stalls far
// fewer than 1% of ops, so p99 can look healthy while every thousandth
// op eats a multi-millisecond pause.
type LatencySummary struct {
	Count  int64
	P50NS  int64
	P99NS  int64
	P999NS int64
	MaxNS  int64
}

// SummarizeLatencies computes the percentile summary of one latency
// population (nanoseconds). The input is sorted in place; an empty
// population summarizes to zeros. Percentiles use the nearest-rank
// definition: p-th percentile = the value at rank ⌈p/100·n⌉.
func SummarizeLatencies(ns []int64) LatencySummary {
	var s LatencySummary
	s.Count = int64(len(ns))
	if len(ns) == 0 {
		return s
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	rank := func(p float64) int64 {
		i := int(p/100*float64(len(ns))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ns) {
			i = len(ns) - 1
		}
		return ns[i]
	}
	s.P50NS = rank(50)
	s.P99NS = rank(99)
	s.P999NS = rank(99.9)
	s.MaxNS = ns[len(ns)-1]
	return s
}

// FmtNS renders a nanosecond figure compactly for experiment tables
// (e.g. "1.2µs", "3.4ms"): latency cells are read for their magnitude,
// not their digits.
func FmtNS(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	}
	return fmt.Sprintf("%.2fs", float64(ns)/1e9)
}
