package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags registers the -cpuprofile/-memprofile flags shared by
// performance-sensitive subcommands and returns a start function. The
// start function begins any requested profiling and returns a stop
// function that must run before exit: it stops the CPU profile and
// snapshots the allocation profile (after a GC, so live-heap numbers are
// stable). Hot-path work should start from a recorded profile, not from
// guesswork — this is the recorder.
func profileFlags(fs *flag.FlagSet) (start func() (stop func() error, err error)) {
	cpu := fs.String("cpuprofile", "", "write a CPU profile to `file` (inspect with `go tool pprof`)")
	mem := fs.String("memprofile", "", "write an allocation profile to `file` on exit")
	return func() (func() error, error) {
		var cpuFile *os.File
		if *cpu != "" {
			f, err := os.Create(*cpu)
			if err != nil {
				return nil, fmt.Errorf("-cpuprofile: %w", err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return nil, fmt.Errorf("-cpuprofile: %w", err)
			}
			cpuFile = f
		}
		return func() error {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					return fmt.Errorf("-cpuprofile: %w", err)
				}
			}
			if *mem != "" {
				f, err := os.Create(*mem)
				if err != nil {
					return fmt.Errorf("-memprofile: %w", err)
				}
				defer f.Close()
				runtime.GC() // settle live-heap numbers before the snapshot
				if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
					return fmt.Errorf("-memprofile: %w", err)
				}
			}
			return nil
		}, nil
	}
}
