// White-box tests of unexported helpers. They live in the package itself
// (the exported surface is tested from the external test package, which
// can import the workload generators without a cycle).
package sorting

import (
	"testing"
	"testing/quick"

	"repro/internal/aem"
)

func TestSortItems(t *testing.T) {
	f := func(keys []int64) bool {
		items := make([]aem.Item, len(keys))
		for i, k := range keys {
			items[i] = aem.Item{Key: k, Aux: int64(i)}
		}
		orig := make([]aem.Item, len(items))
		copy(orig, items)
		sortItems(items)
		return IsSorted(items) && SameMultiset(orig, items)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInsertCapped(t *testing.T) {
	var buf []aem.Item
	for _, k := range []int64{5, 3, 9, 1, 7} {
		buf = insertCapped(buf, aem.Item{Key: k}, 3)
	}
	if len(buf) != 3 {
		t.Fatalf("len = %d, want 3", len(buf))
	}
	want := []int64{1, 3, 5}
	for i, k := range want {
		if buf[i].Key != k {
			t.Errorf("buf[%d].Key = %d, want %d", i, buf[i].Key, k)
		}
	}
}

func TestBucketOf(t *testing.T) {
	sp := []aem.Item{{Key: 10}, {Key: 20}, {Key: 30}}
	cases := []struct {
		key  int64
		want int
	}{
		{5, 0}, {10, 0}, {15, 1}, {20, 1}, {25, 2}, {30, 2}, {35, 3},
	}
	for _, tc := range cases {
		if got := bucketOf(sp, aem.Item{Key: tc.key}); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.key, got, tc.want)
		}
	}
	if got := bucketOf(nil, aem.Item{Key: 1}); got != 0 {
		t.Errorf("bucketOf with no splitters = %d, want 0", got)
	}
}

// TestSmallSortDuplicateItems: inputs with repeated (Key, Aux) items must
// sort correctly — the counting storage engine hands every algorithm
// zero-filled (hence massively duplicated) blocks, and the selection
// passes must still make progress. Regression test for the watermark
// duplicate-skip logic.
func TestSmallSortDuplicateItems(t *testing.T) {
	cfg := aem.Config{M: 64, B: 8, Omega: 8}
	cases := [][]aem.Item{
		make([]aem.Item, 300), // all zero
		func() []aem.Item {
			items := make([]aem.Item, 300)
			for i := range items {
				items[i] = aem.Item{Key: int64(i % 3), Aux: int64(i % 2)}
			}
			return items
		}(),
	}
	for ci, in := range cases {
		ma := aem.New(cfg)
		out := SmallSort(ma, aem.Load(ma, in))
		got := out.Materialize()
		if !IsSorted(got) {
			t.Fatalf("case %d: output not sorted", ci)
		}
		if !SameMultiset(in, got) {
			t.Fatalf("case %d: multiset changed", ci)
		}
	}
}
