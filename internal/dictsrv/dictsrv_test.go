package dictsrv

import (
	"sync"
	"testing"

	"repro/internal/aem"
	"repro/internal/dict"
	"repro/internal/workload"
)

func testConfig(shards int) Config {
	return Config{
		Shards:  shards,
		Machine: aem.Config{M: 128, B: 16, Omega: 8},
		KeyLo:   0, KeyHi: 4096,
	}
}

// TestServiceBasic pins the single-session contract: a committed write is
// visible to the writer's own subsequent reads (publish-before-ack), and
// deletes take effect.
func TestServiceBasic(t *testing.T) {
	svc, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for k := int64(0); k < 512; k++ {
		ack := svc.Put(k, k*3)
		if ack.Commit <= 0 {
			t.Fatalf("Put(%d) got commit %d", k, ack.Commit)
		}
		got := svc.Get(k)
		if !got.OK || got.Value != k*3 {
			t.Fatalf("read-your-writes violated: Get(%d) = (%d,%v) after Put", k, got.Value, got.OK)
		}
		if got.Watermark < ack.Commit && got.Shard == ack.Shard {
			t.Fatalf("Get(%d) watermark %d below own commit %d", k, got.Watermark, ack.Commit)
		}
	}
	svc.Delete(100)
	if got := svc.Get(100); got.OK {
		t.Fatal("Get(100) found a deleted key")
	}

	res := svc.Scan(0, 512)
	if len(res.Hits) != 511 {
		t.Fatalf("Scan(0,512) = %d hits, want 511", len(res.Hits))
	}
	prev := int64(-1)
	for _, h := range res.Hits {
		if h.Key <= prev {
			t.Fatalf("scan out of order at key %d", h.Key)
		}
		if h.Key == 100 {
			t.Fatal("scan returned the deleted key")
		}
		prev = h.Key
	}
	if len(res.Segments) != 1 {
		t.Fatalf("Scan(0,512) covers one shard (span 1024) but got %d segments", len(res.Segments))
	}
	full := svc.Scan(0, 4096)
	if len(full.Segments) != 4 {
		t.Fatalf("full-keyspace scan got %d segments, want 4", len(full.Segments))
	}
	if len(full.Hits) != len(res.Hits) {
		t.Fatalf("full scan found %d hits, shard-0 scan %d", len(full.Hits), len(res.Hits))
	}

	st := svc.Stats()
	if st.Committed != 513 {
		t.Fatalf("Stats.Committed = %d, want 513", st.Committed)
	}
	if st.Writes == 0 || st.SnapReads == 0 {
		t.Fatalf("Stats accounting empty: %+v", st)
	}
	if st.Cost != st.Reads+int64(8)*st.Writes+st.SnapReads {
		t.Fatalf("Stats.Cost=%d inconsistent with reads=%d writes=%d snapReads=%d ω=8",
			st.Cost, st.Reads, st.Writes, st.SnapReads)
	}
}

// TestServiceConfigErrors pins constructor validation.
func TestServiceConfigErrors(t *testing.T) {
	bad := []Config{
		{Shards: 0, Machine: aem.Config{M: 128, B: 16, Omega: 1}, KeyHi: 10},
		{Shards: 1, Machine: aem.Config{M: 128, B: 16, Omega: 1}, KeyLo: 5, KeyHi: 5},
		{Shards: 20, Machine: aem.Config{M: 128, B: 16, Omega: 1}, KeyHi: 10},
		{Shards: 1, Machine: aem.Config{M: 0, B: 16, Omega: 1}, KeyHi: 10},
		{Shards: 1, Machine: aem.Config{M: 128, B: 16, Omega: 1}, KeyHi: 10, Engine: "nope"},
		{Shards: 1, Machine: aem.Config{M: 128, B: 16, Omega: 1}, KeyHi: 10, Engine: "counting"},
		{Shards: 1, Machine: aem.Config{M: 128, B: 16, Omega: 1}, KeyHi: 10, MaxBatch: -3},
	}
	for i, cfg := range bad {
		if svc, err := New(cfg); err == nil {
			svc.Close()
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

// opRecord is one completed operation in a concurrent history.
type opRecord struct {
	op        dict.Op
	shard     int
	commit    int64 // writes: position in the shard's commit order
	watermark int64 // reads: shard watermark the answer was served at
	ok        bool
	value     int64
}

// TestLinearizability is the differential layer for concurrent histories:
// G goroutines run mixed streams, recording for every write its (shard,
// commit) and for every read its (shard, watermark) plus answer. The
// checker then replays each shard's writes in commit order into a model
// map and verifies every read's answer equals the model state after
// exactly `watermark` ops — i.e. reads observe a prefix of the commit
// order and writes are densely, uniquely ordered. Runs under -race in CI
// (the repo race job runs all tests), which also holds the
// snapshot-vs-committer memory claims.
func TestLinearizability(t *testing.T) {
	for _, deam := range []bool{false, true} {
		name := "amortized"
		if deam {
			name = "deamortized"
		}
		t.Run(name, func(t *testing.T) { runLinearizability(t, deam) })
	}
}

func runLinearizability(t *testing.T, deamortize bool) {
	const (
		goroutines = 8
		perG       = 2500
		keyspace   = 1024
		shards     = 4
	)
	cfg := testConfig(shards)
	cfg.KeyHi = keyspace
	cfg.MaxBatch = 64 // small batches → many snapshot publishes → more schedules
	cfg.Deamortize = deamortize
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	streams := workload.DictStreams(42, workload.DriftOps, goroutines, goroutines*perG, keyspace)
	hist := make([][]opRecord, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			recs := make([]opRecord, 0, len(streams[g]))
			for _, op := range streams[g] {
				switch op.Kind {
				case dict.Insert:
					ack := svc.Put(op.Key, op.Value)
					recs = append(recs, opRecord{op: op, shard: ack.Shard, commit: ack.Commit})
				case dict.Delete:
					ack := svc.Delete(op.Key)
					recs = append(recs, opRecord{op: op, shard: ack.Shard, commit: ack.Commit})
				case dict.Lookup:
					res := svc.Get(op.Key)
					recs = append(recs, opRecord{op: op, shard: res.Shard,
						watermark: res.Watermark, ok: res.OK, value: res.Value})
				case dict.RangeScan:
					// Scans span shards with independent watermarks; the
					// per-shard read contract is already pinned by lookups,
					// so the concurrent history checks point reads only.
				}
			}
			hist[g] = recs
		}(g)
	}
	wg.Wait()
	svc.Close()

	checkHistories(t, svc, hist, shards)
}

// checkHistories replays recorded concurrent histories against per-shard
// model maps.
func checkHistories(t *testing.T, svc *Service, hist [][]opRecord, shards int) {
	t.Helper()

	// Collect each shard's writes, indexed by commit position.
	writes := make([]map[int64]dict.Op, shards)
	for i := range writes {
		writes[i] = make(map[int64]dict.Op)
	}
	var reads []opRecord
	for _, recs := range hist {
		// Per-session monotonicity: commits and watermarks on one shard
		// never move backwards within a session, and a session's read
		// watermark covers its own prior writes.
		lastSeen := make([]int64, shards)
		for _, r := range recs {
			if r.op.Kind == dict.Insert || r.op.Kind == dict.Delete {
				if r.commit <= 0 {
					t.Fatalf("write got non-positive commit %d", r.commit)
				}
				if _, dup := writes[r.shard][r.commit]; dup {
					t.Fatalf("shard %d commit %d assigned twice", r.shard, r.commit)
				}
				writes[r.shard][r.commit] = r.op
				if r.commit < lastSeen[r.shard] {
					t.Fatalf("session went backwards on shard %d: commit %d after %d",
						r.shard, r.commit, lastSeen[r.shard])
				}
				lastSeen[r.shard] = r.commit
			} else if r.op.Kind == dict.Lookup {
				if r.watermark < lastSeen[r.shard] {
					t.Fatalf("read-your-writes violated on shard %d: watermark %d below own commit %d",
						r.shard, r.watermark, lastSeen[r.shard])
				}
				if r.watermark > lastSeen[r.shard] {
					lastSeen[r.shard] = r.watermark
				}
				reads = append(reads, r)
			}
		}
	}

	// Density: shard commits must be exactly 1..n.
	for s := 0; s < shards; s++ {
		n := int64(len(writes[s]))
		for c := int64(1); c <= n; c++ {
			if _, ok := writes[s][c]; !ok {
				t.Fatalf("shard %d: commit order has a hole at %d (of %d)", s, c, n)
			}
		}
	}

	// Replay each shard's commit order, answering every read at its
	// watermark prefix. Sort reads by watermark and sweep.
	for s := 0; s < shards; s++ {
		var shardReads []opRecord
		for _, r := range reads {
			if r.shard == s {
				shardReads = append(shardReads, r)
			}
		}
		// Insertion-sort substitute: reads are answered during one linear
		// replay, so order them by watermark first.
		sortByWatermark(shardReads)
		model := make(map[int64]int64)
		next := 0
		n := int64(len(writes[s]))
		for c := int64(0); c <= n; c++ {
			if c > 0 {
				op := writes[s][c]
				switch op.Kind {
				case dict.Insert:
					model[op.Key] = op.Value
				case dict.Delete:
					delete(model, op.Key)
				}
			}
			for next < len(shardReads) && shardReads[next].watermark == c {
				r := shardReads[next]
				want, wantOK := model[r.op.Key]
				if r.ok != wantOK || (r.ok && r.value != want) {
					t.Fatalf("shard %d @ watermark %d: Get(%d) = (%d,%v), model (%d,%v)",
						s, c, r.op.Key, r.value, r.ok, want, wantOK)
				}
				next++
			}
		}
		if next != len(shardReads) {
			t.Fatalf("shard %d: %d reads carry watermarks beyond the commit count %d",
				s, len(shardReads)-next, n)
		}
	}
}

func sortByWatermark(recs []opRecord) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].watermark < recs[j-1].watermark; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// TestLookupDuringFlushHammer is the -race hammer for the tentpole's
// concurrency claim: readers descend published snapshots while the
// committer cascades and rebuilds underneath them. A tiny machine at high
// ω maximizes flush frequency; any unsynchronized engine access or
// snapshot instability trips the race detector or miscompares.
func TestLookupDuringFlushHammer(t *testing.T) {
	for _, deam := range []bool{false, true} {
		name := "amortized"
		if deam {
			name = "deamortized"
		}
		t.Run(name, func(t *testing.T) { runLookupDuringFlushHammer(t, deam) })
	}
}

func runLookupDuringFlushHammer(t *testing.T, deamortize bool) {
	cfg := Config{
		Shards:  2,
		Machine: aem.Config{M: 64, B: 8, Omega: 16},
		KeyLo:   0, KeyHi: 512,
		MaxBatch:   32,
		Deamortize: deamortize,
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const writers, readers = 4, 4
	iters := 4000
	if testing.Short() {
		iters = 800
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := workload.NewRNG(uint64(1000 + w))
			for i := 0; i < iters; i++ {
				k := int64(r.Intn(512))
				if r.Intn(10) == 0 {
					svc.Delete(k)
				} else {
					svc.Put(k, int64(i))
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			r := workload.NewRNG(uint64(2000 + rd))
			for i := 0; i < iters; i++ {
				if r.Intn(20) == 0 {
					lo := int64(r.Intn(480))
					svc.Scan(lo, lo+32)
				} else {
					svc.Get(int64(r.Intn(512)))
				}
			}
		}(rd)
	}
	wg.Wait()

	st := svc.Stats()
	if st.Flushes == 0 {
		t.Fatal("hammer never flushed; shrink the machine or raise iters")
	}
	if st.MaxFlushNS <= 0 {
		t.Fatal("flushes happened but no stall was recorded")
	}
	svc.Close()
}

// TestGetSteadyStateAllocs pins the zero-allocation claim of the serving
// read path: once scratch is pooled and the snapshot is warm, Get must
// not allocate.
func TestGetSteadyStateAllocs(t *testing.T) {
	for _, deam := range []bool{false, true} {
		name := "amortized"
		if deam {
			name = "deamortized"
		}
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(2)
			cfg.Deamortize = deam
			svc, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			for k := int64(0); k < 2048; k++ {
				svc.Put(k, k)
			}
			// Warm the scratch pools on both shards.
			for k := int64(0); k < 64; k++ {
				svc.Get(k * 64)
			}
			var k int64
			avg := testing.AllocsPerRun(200, func() {
				svc.Get(k % 4096)
				k += 37
			})
			if avg != 0 {
				t.Fatalf("steady-state Get allocates %.1f per op, want 0", avg)
			}
		})
	}
}

// TestBoundedStallRegression is the deamortization contract at the
// service level: with Deamortize on, no non-barrier commit batch performs
// more than 2 node-flushes — the budgeted FlushStep(1) plus at most one
// 2×rootCap root backstop, each an individually bounded stall — while the
// amortized service pays whole cascades per batch. The stall histogram
// and debt gauges must be populated. (Answer correctness under
// concurrency is TestLinearizability's job, in both modes.)
func TestBoundedStallRegression(t *testing.T) {
	run := func(deam bool) Stats {
		cfg := testConfig(2)
		cfg.Machine = aem.Config{M: 128, B: 16, Omega: 16}
		cfg.KeyHi = 1024
		cfg.MaxBatch = 32
		cfg.Deamortize = deam
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		streams := workload.DictStreams(9, workload.DriftOps, 4, 40000, 1024)
		RunLoad(svc, streams)
		st := svc.Stats() // before the barrier: commit-path telemetry only
		svc.Flush()
		svc.Close()
		return st
	}
	amortized := run(false)
	deamortized := run(true)

	if deamortized.BatchFlushes > 2 {
		t.Fatalf("deamortized batch performed %d node-flushes, want ≤ 2 (budget + backstop)",
			deamortized.BatchFlushes)
	}
	if amortized.BatchFlushes <= 2 {
		t.Fatalf("amortized batches peaked at %d node-flushes — the workload never cascaded, weaken nothing, grow the stream",
			amortized.BatchFlushes)
	}
	if deamortized.Stalls.N == 0 || deamortized.MaxStallNS <= 0 {
		t.Fatalf("stall histogram empty: %+v", deamortized.Stalls)
	}
	if q := deamortized.Stalls.Quantile(0.999); q <= 0 || q > deamortized.MaxStallNS {
		t.Fatalf("p99.9 stall %d outside (0, max=%d]", q, deamortized.MaxStallNS)
	}
	if deamortized.DebtHighWater == 0 {
		t.Fatal("deamortized run accumulated no debt; the incremental path was not exercised")
	}
	if !deamortized.Deamortized || amortized.Deamortized {
		t.Fatal("Stats.Deamortized mislabeled")
	}
}

// TestRunLoadReport pins the load driver's accounting.
func TestRunLoadReport(t *testing.T) {
	svc, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	streams := workload.DictStreams(7, workload.DriftOps, 3, 3000, 4096)
	rep := RunLoad(svc, streams)
	if rep.Goroutines != 3 || rep.Ops != 3000 {
		t.Fatalf("report counted %d goroutines / %d ops, want 3 / 3000", rep.Goroutines, rep.Ops)
	}
	if rep.Updates+rep.Lookups+rep.Scans != rep.Ops {
		t.Fatalf("op classes don't sum: %+v", rep)
	}
	if int64(len(rep.LatencyNS)) != rep.Ops {
		t.Fatalf("captured %d latencies for %d ops", len(rep.LatencyNS), rep.Ops)
	}
	if rep.WallNS <= 0 || rep.OpsPerSec() <= 0 {
		t.Fatalf("degenerate wall time: %+v", rep)
	}
	if got := svc.Committed(); got != rep.Updates {
		t.Fatalf("service committed %d, report says %d updates", got, rep.Updates)
	}
}

// BenchmarkGet measures the serving read path (pooled scratch, snapshot
// descent) against a pre-loaded service.
func BenchmarkGet(b *testing.B) {
	cfg := Config{
		Shards:  4,
		Machine: aem.Config{M: 1024, B: 32, Omega: 8},
		KeyLo:   0, KeyHi: 65536,
	}
	svc, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	r := workload.NewRNG(1)
	for i := 0; i < 40000; i++ {
		svc.Put(int64(r.Intn(65536)), int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var k int64
	for i := 0; i < b.N; i++ {
		svc.Get(k)
		k = (k + 9973) % 65536
	}
}
