package bounds_test

import (
	"testing"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/pq"
	"repro/internal/workload"
)

// The file lives in the external test package: the workload generators
// feed internal/pq here, and bounds itself must not depend on pq.

// runPQ drives one queue over a stream and returns the machine.
func runPQ(cfg aem.Config, ops []workload.PQOp, adaptive bool) *aem.Machine {
	ma := aem.New(cfg)
	var q interface {
		Push(aem.Item)
		DeleteMin() (aem.Item, bool)
	}
	if adaptive {
		q = pq.NewAdaptive(ma)
	} else {
		q = pq.New(ma)
	}
	for _, op := range ops {
		if op.Kind == workload.PQPush {
			q.Push(op.Item)
		} else {
			q.DeleteMin()
		}
	}
	return ma
}

// TestPQPredictorsWithinBand pins both queue predictors against the real
// implementations on the EXP-Q1 grid: measured/predicted must stay inside
// [0.5, 2] for reads, writes and total cost, on every scenario and ω. The
// policy walk prices events with the paper's per-pass formulas, so a
// drift outside the band means the implementation's I/O no longer matches
// its amortized design — a regression, not noise.
func TestPQPredictorsWithinBand(t *testing.T) {
	const n = 24000
	for _, sc := range workload.PQScenarios() {
		ops := workload.PQOps(workload.NewRNG(20170724+16), sc, n)
		for _, w := range []int{1, 8, 64} {
			cfg := aem.Config{M: 256, B: 16, Omega: w}
			p := bounds.PQParamsFor(cfg, ops)
			for name, c := range map[string]struct {
				st   aem.Stats
				cost int64
				pred bounds.PredictedIO
			}{
				"adaptive": {runPQ(cfg, ops, true).Stats(),
					runPQ(cfg, ops, true).Cost(), bounds.PQAdaptivePredicted(p)},
				"sequence": {runPQ(cfg, ops, false).Stats(),
					runPQ(cfg, ops, false).Cost(), bounds.PQSequenceHeapPredicted(p)},
			} {
				for metric, pair := range map[string][2]float64{
					"reads":  {float64(c.st.Reads), c.pred.Reads},
					"writes": {float64(c.st.Writes), c.pred.Writes},
					"cost":   {float64(c.cost), c.pred.Cost(w)},
				} {
					ratio := pair[0] / pair[1]
					if ratio < 0.5 || ratio > 2 {
						t.Errorf("%s/%s ω=%d: %s measured/predicted = %.2f outside [0.5, 2]",
							sc, name, w, metric, ratio)
					}
				}
			}
		}
	}
}

// TestPQParamsForShape sanity-checks the stream-derived workload
// description itself.
func TestPQParamsForShape(t *testing.T) {
	const n = 6000
	ops := workload.PQOps(workload.NewRNG(3), workload.MixedPQ, n)
	pushes, deletes := workload.PQOpMix(ops)
	cfg := aem.Config{M: 256, B: 16, Omega: 8}
	p := bounds.PQParamsFor(cfg, ops)
	if p.N != n || p.Pushes != pushes || p.Deletes != deletes {
		t.Fatalf("params N=%d P=%d D=%d, want %d/%d/%d", p.N, p.Pushes, p.Deletes, n, pushes, deletes)
	}
	if p.Absorbed < 0 || p.Absorbed > p.Deletes {
		t.Fatalf("Absorbed = %d outside [0, %d]", p.Absorbed, p.Deletes)
	}
	if p.Folds < 0 || p.Scans < 0 {
		t.Fatalf("negative walk outputs: folds=%d scans=%d", p.Folds, p.Scans)
	}
	// More expensive writes must predict fewer folds: the rent budget
	// grows with ω.
	pHi := bounds.PQParamsFor(aem.Config{M: 256, B: 16, Omega: 64}, ops)
	if pHi.Folds > p.Folds {
		t.Errorf("predicted folds rose with ω: %d (ω=8) → %d (ω=64)", p.Folds, pHi.Folds)
	}
}
