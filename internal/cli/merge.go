package cli

import (
	"errors"
	"flag"
	"os"

	"repro/internal/harness"
)

// mergeCmd reassembles a sharded or fleet `aem bench` run: given the
// JSON Lines point-record files written by `aem bench -shard i/m -json`,
// `aem serve` or `aem work -residual`, it verifies the shard set is
// complete and consistent (no shard missing, duplicated or overlapping;
// no grid point missing or duplicated), re-runs the derived/summary
// columns over the merged grid, and renders output byte-identical to a
// single-machine `aem bench` of the same selection.
//
//	aem merge shard0.jsonl shard1.jsonl           rendered tables to stdout
//	aem merge -json shard*.jsonl                  JSON Lines, one record per row
//	aem merge -csv out/ shard*.jsonl              additionally write CSVs
//	aem merge -timing shard*.jsonl                append per-point wall-clock
//	aem merge -residual rest.json partial.jsonl   on missing points, write the
//	                                              resume spec for `aem work`
//
// Points that panicked on a shard surface here exactly as an unsharded
// run reports them: aggregated per experiment, emission stopping at the
// first failed experiment. An incomplete set (an interrupted fleet or a
// lost shard job) reports every missing point across all experiments;
// with -residual the same list is written as a machine-readable residual
// spec, so the resume is `aem work -residual rest.json > rest.jsonl`
// followed by re-merging with rest.jsonl added to the file list.
func mergeCmd(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		csvDir  = fs.String("csv", "", "directory to write per-experiment CSV files into")
		jsonOut = fs.Bool("json", false, "emit JSON Lines (one record per table row) instead of rendered tables")
		timing  = fs.Bool("timing", false, "append the shards' per-point wall-clock columns / wall_ns fields")
		resPath = fs.String("residual", "", "file to write the residual spec into when grid points are missing")
	)
	fs.Parse(args)
	if fs.NArg() == 0 {
		fail(prog, "no shard files given (run `aem bench -shard i/m -json` to produce them)")
		return 2
	}

	var files []*harness.ShardFile
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			fail(prog, "%v", err)
			return 1
		}
		sf, perr := harness.ReadShardFile(f)
		f.Close()
		if perr != nil {
			fail(prog, "%s: %v", path, perr)
			return 1
		}
		files = append(files, sf)
	}

	// The manifest names the experiments the shards ran, in run order;
	// resolve them against this binary's registry.
	var specs []*harness.Spec
	for _, id := range files[0].Manifest.Experiments {
		s, ok := harness.ByID(id)
		if !ok {
			fail(prog, "shard file names unknown experiment %s (built from a different registry?)", id)
			return 1
		}
		specs = append(specs, s)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(prog, "%v", err)
			return 1
		}
	}

	var firstErr error
	err := harness.MergeShards(specs, files, *timing, func(tbl *harness.Table) {
		if *jsonOut {
			if err := tbl.JSON(os.Stdout); err != nil && firstErr == nil {
				firstErr = err
			}
		} else {
			tbl.Render(os.Stdout)
		}
		emitThroughput(tbl, *jsonOut, &firstErr)
		if *csvDir != "" && firstErr == nil {
			if err := writeCSVAtomic(*csvDir, tbl); err != nil {
				firstErr = err
			}
		}
	})
	if err != nil {
		fail(prog, "%v", err)
		var inc *harness.IncompleteError
		if errors.As(err, &inc) && *resPath != "" {
			if werr := writeResidual(*resPath, inc.ResidualSpec()); werr != nil {
				fail(prog, "writing residual spec: %v", werr)
			} else {
				fail(prog, "residual spec written: %s (%d missing points); resume with `aem work -residual %s > rest.jsonl` and re-merge with rest.jsonl added",
					*resPath, len(inc.Missing), *resPath)
			}
		}
		return 1
	}
	if firstErr != nil {
		fail(prog, "%v", firstErr)
		return 1
	}
	return 0
}

// writeResidual writes the residual spec to path.
func writeResidual(path string, rs *harness.ResidualSpec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rs.WriteResidual(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
