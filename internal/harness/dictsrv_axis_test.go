package harness

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/aem"
	"repro/internal/dictsrv"
	"repro/internal/workload"
)

// TestLatencySummary pins the nearest-rank percentile definition and the
// degenerate cases.
func TestLatencySummary(t *testing.T) {
	if s := SummarizeLatencies(nil); s.Count != 0 || s.MaxNS != 0 {
		t.Fatalf("empty population summarized to %+v", s)
	}
	// 1..100: p50 = 50, p99 = 99, max = 100 under nearest-rank.
	ns := make([]int64, 100)
	for i := range ns {
		ns[i] = int64(100 - i) // reversed: Summarize must sort
	}
	s := SummarizeLatencies(ns)
	if s.Count != 100 || s.P50NS != 50 || s.P99NS != 99 || s.MaxNS != 100 {
		t.Fatalf("1..100 summarized to %+v", s)
	}
	if s := SummarizeLatencies([]int64{7}); s.P50NS != 7 || s.P99NS != 7 || s.MaxNS != 7 {
		t.Fatalf("singleton summarized to %+v", s)
	}
}

func TestFmtNS(t *testing.T) {
	cases := map[int64]string{
		400:           "400ns",
		4_200:         "4.2µs",
		7_300_000:     "7.3ms",
		2_500_000_000: "2.50s",
	}
	for ns, want := range cases {
		if got := FmtNS(ns); got != want {
			t.Errorf("FmtNS(%d) = %q, want %q", ns, got, want)
		}
	}
}

// TestServingRegistered: the serving sweeps resolve by id, stay out of
// All() (golden stability), and EXP-L1's grid is the ω axis.
func TestServingRegistered(t *testing.T) {
	for _, id := range []string{"EXP-L1", "EXP-L2", "EXP-L3"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("%s missing from the auxiliary registry", id)
		}
		for _, s := range All() {
			if s.ID == id {
				t.Fatalf("%s leaked into All()", id)
			}
		}
	}
}

// TestServingFrontier is the acceptance criterion for the serving arc,
// run on EXP-L1's own spec at its committed grid: as ω grows, amortized
// write count per op must decrease (the buffer absorbs more before
// flushing) and flush count must fall steeply, while every latency column
// is populated and at least one configuration records a real stall. The
// wall-clock columns themselves are not compared — machines differ — but
// the accounting trend is deterministic.
func TestServingFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("drives the full EXP-L1 grid")
	}
	s, ok := ByID("EXP-L1")
	if !ok {
		t.Fatal("EXP-L1 not registered")
	}
	tbl := s.Table()
	if len(tbl.Rows) != 4 {
		t.Fatalf("EXP-L1 has %d rows, want 4 (ω axis)", len(tbl.Rows))
	}
	col := func(name string) int {
		for i, c := range tbl.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("EXP-L1 lacks column %q (have %v)", name, tbl.Columns)
		return -1
	}
	wpo, fl := col("writes/op"), col("flushes")
	lat := []int{col("p50"), col("p99"), col("p99.9"), col("max"), col("max stall")}
	var prevW float64
	var prevF int64
	for i, row := range tbl.Rows {
		w, err := strconv.ParseFloat(row[wpo], 64)
		if err != nil {
			t.Fatalf("row %d writes/op %q: %v", i, row[wpo], err)
		}
		f, err := strconv.ParseInt(row[fl], 10, 64)
		if err != nil {
			t.Fatalf("row %d flushes %q: %v", i, row[fl], err)
		}
		if i > 0 {
			if w >= prevW {
				t.Errorf("writes/op did not fall with ω: row %d has %.3f after %.3f", i, w, prevW)
			}
			if f > prevF {
				t.Errorf("flushes grew with ω: row %d has %d after %d", i, f, prevF)
			}
		}
		prevW, prevF = w, f
		for _, c := range lat {
			if row[c] == "" || row[c] == "0ns" {
				// max stall may be 0 at the largest ω if no flush fired;
				// every per-op latency column must be populated.
				if tbl.Columns[c] != "max stall" {
					t.Errorf("row %d: latency column %q empty: %q", i, tbl.Columns[c], row[c])
				}
			}
		}
	}
	// The smallest-ω row flushes constantly: its stall column must be real.
	if st := tbl.Rows[0][col("max stall")]; st == "0ns" || st == "" {
		t.Errorf("ω=1 recorded no flush stall: %q", st)
	}
	if strings.HasPrefix(tbl.Rows[0][col("max stall")], "-") {
		t.Error("negative stall")
	}
}

// TestDeamortizedStallAcceptance is the acceptance criterion for the
// deamortization arc, run at EXP-L3's committed drift/ω=16 point: the
// debt-queue committer must cut the worst commit-path stall by at least
// an order of magnitude versus run-to-completion cascades, without giving
// up throughput. The stall ratio is deterministic in structure (one
// bounded node-flush vs a whole cascade) even though both cells are
// wall-clock; the throughput bar uses a wide margin because absolute
// ops/sec on a shared CI box is noisy — CI's stallgate holds the strict
// equal-or-better line against a committed baseline.
func TestDeamortizedStallAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("drives two full EXP-L3 points")
	}
	run := func(deam bool) (rep dictsrv.LoadReport, st dictsrv.Stats) {
		cfg := dictsrv.Config{
			Shards:     2,
			Machine:    aem.Config{M: 1024, B: 32, Omega: 16},
			KeyLo:      0, KeyHi: 65536,
			Deamortize: deam,
		}
		rep, st, _ = serveRow(cfg, workload.DriftOps, 1, 160000, Seed+42)
		return rep, st
	}
	arep, ast := run(false)
	drep, dst := run(true)
	if ast.MaxStallNS == 0 || dst.MaxStallNS == 0 {
		t.Fatalf("stall telemetry missing: amortized %d ns, deamortized %d ns", ast.MaxStallNS, dst.MaxStallNS)
	}
	if dst.MaxStallNS*10 > ast.MaxStallNS {
		t.Errorf("worst stall not reduced ≥10×: amortized %.2fms vs deamortized %.2fms",
			float64(ast.MaxStallNS)/1e6, float64(dst.MaxStallNS)/1e6)
	}
	if drep.OpsPerSec() < 0.7*arep.OpsPerSec() {
		t.Errorf("deamortized throughput collapsed: %.0f ops/sec vs amortized %.0f",
			drep.OpsPerSec(), arep.OpsPerSec())
	}
	if dst.DebtHighWater == 0 {
		t.Error("deamortized run recorded no debt high-water mark")
	}
	if !dst.Deamortized || ast.Deamortized {
		t.Errorf("mode labels wrong: amortized=%v deamortized=%v", ast.Deamortized, dst.Deamortized)
	}
}
