package harness

import (
	"strconv"
	"strings"
	"testing"
)

// TestLatencySummary pins the nearest-rank percentile definition and the
// degenerate cases.
func TestLatencySummary(t *testing.T) {
	if s := SummarizeLatencies(nil); s.Count != 0 || s.MaxNS != 0 {
		t.Fatalf("empty population summarized to %+v", s)
	}
	// 1..100: p50 = 50, p99 = 99, max = 100 under nearest-rank.
	ns := make([]int64, 100)
	for i := range ns {
		ns[i] = int64(100 - i) // reversed: Summarize must sort
	}
	s := SummarizeLatencies(ns)
	if s.Count != 100 || s.P50NS != 50 || s.P99NS != 99 || s.MaxNS != 100 {
		t.Fatalf("1..100 summarized to %+v", s)
	}
	if s := SummarizeLatencies([]int64{7}); s.P50NS != 7 || s.P99NS != 7 || s.MaxNS != 7 {
		t.Fatalf("singleton summarized to %+v", s)
	}
}

func TestFmtNS(t *testing.T) {
	cases := map[int64]string{
		400:           "400ns",
		4_200:         "4.2µs",
		7_300_000:     "7.3ms",
		2_500_000_000: "2.50s",
	}
	for ns, want := range cases {
		if got := FmtNS(ns); got != want {
			t.Errorf("FmtNS(%d) = %q, want %q", ns, got, want)
		}
	}
}

// TestServingRegistered: the serving sweeps resolve by id, stay out of
// All() (golden stability), and EXP-L1's grid is the ω axis.
func TestServingRegistered(t *testing.T) {
	for _, id := range []string{"EXP-L1", "EXP-L2"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("%s missing from the auxiliary registry", id)
		}
		for _, s := range All() {
			if s.ID == id {
				t.Fatalf("%s leaked into All()", id)
			}
		}
	}
}

// TestServingFrontier is the acceptance criterion for the serving arc,
// run on EXP-L1's own spec at its committed grid: as ω grows, amortized
// write count per op must decrease (the buffer absorbs more before
// flushing) and flush count must fall steeply, while every latency column
// is populated and at least one configuration records a real stall. The
// wall-clock columns themselves are not compared — machines differ — but
// the accounting trend is deterministic.
func TestServingFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("drives the full EXP-L1 grid")
	}
	s, ok := ByID("EXP-L1")
	if !ok {
		t.Fatal("EXP-L1 not registered")
	}
	tbl := s.Table()
	if len(tbl.Rows) != 4 {
		t.Fatalf("EXP-L1 has %d rows, want 4 (ω axis)", len(tbl.Rows))
	}
	col := func(name string) int {
		for i, c := range tbl.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("EXP-L1 lacks column %q (have %v)", name, tbl.Columns)
		return -1
	}
	wpo, fl := col("writes/op"), col("flushes")
	lat := []int{col("p50"), col("p99"), col("max"), col("max stall")}
	var prevW float64
	var prevF int64
	for i, row := range tbl.Rows {
		w, err := strconv.ParseFloat(row[wpo], 64)
		if err != nil {
			t.Fatalf("row %d writes/op %q: %v", i, row[wpo], err)
		}
		f, err := strconv.ParseInt(row[fl], 10, 64)
		if err != nil {
			t.Fatalf("row %d flushes %q: %v", i, row[fl], err)
		}
		if i > 0 {
			if w >= prevW {
				t.Errorf("writes/op did not fall with ω: row %d has %.3f after %.3f", i, w, prevW)
			}
			if f > prevF {
				t.Errorf("flushes grew with ω: row %d has %d after %d", i, f, prevF)
			}
		}
		prevW, prevF = w, f
		for _, c := range lat {
			if row[c] == "" || row[c] == "0ns" {
				// max stall may be 0 at the largest ω if no flush fired;
				// every per-op latency column must be populated.
				if tbl.Columns[c] != "max stall" {
					t.Errorf("row %d: latency column %q empty: %q", i, tbl.Columns[c], row[c])
				}
			}
		}
	}
	// The smallest-ω row flushes constantly: its stall column must be real.
	if st := tbl.Rows[0][col("max stall")]; st == "0ns" || st == "" {
		t.Errorf("ω=1 recorded no flush stall: %q", st)
	}
	if strings.HasPrefix(tbl.Rows[0][col("max stall")], "-") {
		t.Error("negative stall")
	}
}
