package flash

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/aem"
	"repro/internal/program"
)

// SimulateAEM implements Lemma 4.3: given a round-based permuting program
// for the (M,B,ω)-AEM with ω ≤ B and B a multiple of ω, it produces a
// program in the unit-cost flash model with read blocks of size B/ω and
// write blocks of size B that computes the same placement, with total I/O
// volume at most 2N + 2·Q·B/ω (Q the AEM program's cost).
//
// Construction, following the lemma's proof:
//
//  1. Removal-time normalization. Because p is a *program* (fixed op
//     sequence), the op at which each atom will be taken out of each block
//     it visits is known in advance. Every written block is laid out with
//     its atoms ordered by removal time, so each future read takes a
//     contiguous interval of the block. The initial input blocks are not
//     so ordered; a preliminary read+write scan (volume 2N) normalizes
//     them — this is the P′_A of the proof.
//
//  2. Replay. Each AEM write becomes one big-block write (volume B). Each
//     AEM read of a set of atoms becomes the ⌈·⌉ small-block reads
//     covering the atoms' (contiguous) interval — at most 2 of them are
//     not fully used, which is where the 2QB/ω term comes from.
func SimulateAEM(p *program.Program) (*Program, error) {
	cfgA := p.Cfg
	if cfgA.Omega > cfgA.B {
		return nil, fmt.Errorf("flash: Lemma 4.3 needs ω ≤ B, got ω=%d B=%d", cfgA.Omega, cfgA.B)
	}
	if cfgA.B%cfgA.Omega != 0 {
		return nil, fmt.Errorf("flash: Lemma 4.3 needs B a multiple of ω, got ω=%d B=%d", cfgA.Omega, cfgA.B)
	}
	cfgF := Config{M: cfgA.M, B: cfgA.B, R: cfgA.B / cfgA.Omega}
	out := &Program{N: p.N, Cfg: cfgF}

	// Pass 1: compute removal times. epochKey identifies one residence of
	// an atom in a block: the address and the op index of the write that
	// placed it there (−1 for the initial layout and for the scan phase).
	removal := make(map[epochKey]int)
	lastWrite := make(map[int]int) // addr → op index of last write (−1 initial)
	for a := 0; a < p.InitialBlocks(); a++ {
		lastWrite[a] = -1
	}
	for i, op := range p.Ops {
		switch op.Kind {
		case aem.OpRead:
			e, ok := lastWrite[op.Addr]
			if !ok {
				return nil, fmt.Errorf("flash: op %d reads unwritten block %d", i, op.Addr)
			}
			for _, atom := range op.Atoms {
				removal[epochKey{op.Addr, e, atom}] = i
			}
		case aem.OpWrite:
			lastWrite[op.Addr] = i
		}
	}

	// Scan phase (P′_A): normalize every initial block in place. Reading
	// all ω slots of a block empties it; the write lays it out by removal
	// time. Volume: 2B per initial block = 2N (up to the last partial
	// block).
	layouts := make(map[int][]int) // addr → current removal-ordered layout
	slots := cfgF.SlotsPerBlock()
	for addr := 0; addr < p.InitialBlocks(); addr++ {
		lo, hi := addr*cfgA.B, (addr+1)*cfgA.B
		if hi > p.N {
			hi = p.N
		}
		atoms := make([]int, 0, hi-lo)
		for a := lo; a < hi; a++ {
			atoms = append(atoms, a)
		}
		for s := 0; s < slots; s++ {
			sLo, sHi := lo+s*cfgF.R, lo+(s+1)*cfgF.R
			var take []int
			for a := sLo; a < sHi && a < hi; a++ {
				take = append(take, a)
			}
			out.Ops = append(out.Ops, Op{Kind: aem.OpRead, Addr: addr, Slot: s, Atoms: take})
		}
		ordered := orderByRemoval(atoms, addr, -1, removal)
		out.Ops = append(out.Ops, Op{Kind: aem.OpWrite, Addr: addr, Atoms: ordered})
		layouts[addr] = ordered
	}

	// Replay phase: translate each AEM op.
	for i, op := range p.Ops {
		switch op.Kind {
		case aem.OpRead:
			if len(op.Atoms) == 0 {
				continue // nothing moves; the flash program skips it
			}
			layout := layouts[op.Addr]
			first, last := math.MaxInt, -1
			inTake := make(map[int]struct{}, len(op.Atoms))
			for _, a := range op.Atoms {
				inTake[a] = struct{}{}
			}
			for pos, a := range layout {
				if _, ok := inTake[a]; ok {
					if pos < first {
						first = pos
					}
					if pos > last {
						last = pos
					}
				}
			}
			if last-first+1 != len(op.Atoms) {
				return nil, fmt.Errorf("flash: op %d takes a non-contiguous interval of block %d; normalization broken", i, op.Addr)
			}
			for s := first / cfgF.R; s <= last/cfgF.R; s++ {
				var take []int
				for pos := s * cfgF.R; pos < (s+1)*cfgF.R && pos < len(layout); pos++ {
					if _, ok := inTake[layout[pos]]; ok {
						take = append(take, layout[pos])
					}
				}
				out.Ops = append(out.Ops, Op{Kind: aem.OpRead, Addr: op.Addr, Slot: s, Atoms: take})
			}
		case aem.OpWrite:
			ordered := orderByRemoval(op.Atoms, op.Addr, i, removal)
			out.Ops = append(out.Ops, Op{Kind: aem.OpWrite, Addr: op.Addr, Atoms: ordered})
			layouts[op.Addr] = ordered
		}
	}
	return out, nil
}

type epochKey struct {
	addr  int
	epoch int
	atom  int
}

// orderByRemoval sorts atoms by the op index at which they will leave the
// (addr, epoch) block, with never-removed atoms last and ties broken by
// atom id for determinism.
func orderByRemoval(atoms []int, addr, epoch int, removal map[epochKey]int) []int {
	ordered := append([]int(nil), atoms...)
	timeOf := func(a int) int {
		if t, ok := removal[epochKey{addr, epoch, a}]; ok {
			return t
		}
		return math.MaxInt
	}
	sort.Slice(ordered, func(x, y int) bool {
		tx, ty := timeOf(ordered[x]), timeOf(ordered[y])
		if tx != ty {
			return tx < ty
		}
		return ordered[x] < ordered[y]
	})
	return ordered
}

// VolumeBound returns the Lemma 4.3 volume budget 2N + 2·Q·B/ω for an AEM
// program of cost Q. The input term is block-rounded (2·⌈N/B⌉·B): the
// lemma implicitly assumes B divides N ("B should be a multiple of ω (or
// somewhat bigger such that rounding is irrelevant)"); a partial final
// input block still costs whole small-block transfers in the
// normalization scan.
func VolumeBound(p *program.Program) int64 {
	q := p.Cost()
	scanned := 2 * int64(p.InitialBlocks()) * int64(p.Cfg.B)
	return scanned + 2*q*int64(p.Cfg.B)/int64(p.Cfg.Omega)
}
