package harness

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunEmitsInOrder: emission order must be input order even when later
// experiments finish first.
func TestRunEmitsInOrder(t *testing.T) {
	const n = 8
	exps := make([]Experiment, n)
	for i := range exps {
		i := i
		exps[i] = Experiment{
			ID: fmt.Sprintf("T-%d", i),
			Run: func() *Table {
				time.Sleep(time.Duration(n-i) * time.Millisecond) // earlier = slower
				return &Table{ID: fmt.Sprintf("T-%d", i)}
			},
		}
	}
	var got []string
	Run(exps, n, func(tbl *Table) { got = append(got, tbl.ID) })
	for i, id := range got {
		if want := fmt.Sprintf("T-%d", i); id != want {
			t.Fatalf("emission %d = %s, want %s (full order %v)", i, id, want, got)
		}
	}
	if len(got) != n {
		t.Fatalf("emitted %d tables, want %d", len(got), n)
	}
}

// TestRunBoundsConcurrency: no more than par experiments may run at once.
func TestRunBoundsConcurrency(t *testing.T) {
	const n, par = 12, 3
	var inFlight, peak int64
	exps := make([]Experiment, n)
	for i := range exps {
		exps[i] = Experiment{
			ID: fmt.Sprintf("T-%d", i),
			Run: func() *Table {
				cur := atomic.AddInt64(&inFlight, 1)
				for {
					old := atomic.LoadInt64(&peak)
					if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				atomic.AddInt64(&inFlight, -1)
				return &Table{}
			},
		}
	}
	Run(exps, par, func(*Table) {})
	if p := atomic.LoadInt64(&peak); p > par {
		t.Fatalf("observed %d concurrent experiments, budget %d", p, par)
	}
}

// TestRunPanicPropagates: a panicking experiment must not deadlock the
// pool, and the panic must surface with the experiment's ID.
func TestRunPanicPropagates(t *testing.T) {
	exps := []Experiment{
		{ID: "OK-1", Run: func() *Table { return &Table{} }},
		{ID: "BOOM", Run: func() *Table { panic("kaput") }},
		{ID: "OK-2", Run: func() *Table { return &Table{} }},
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "BOOM") || !strings.Contains(msg, "kaput") {
			t.Fatalf("panic %q lacks experiment context", msg)
		}
	}()
	Run(exps, 2, func(*Table) {})
}

// TestParallelHarnessDeterminism renders a set of real experiments at
// par=1 and par=8 and demands byte-identical output — the acceptance
// criterion behind aembench's -par flag. Fast, bounds-oriented
// experiments keep the test snappy; every experiment derives its inputs
// from fixed seeds, so any divergence means shared mutable state.
func TestParallelHarnessDeterminism(t *testing.T) {
	ids := []string{"EXP-B1", "EXP-P2", "EXP-F2", "EXP-R1"}
	var exps []Experiment
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		exps = append(exps, e)
	}
	render := func(par int) []byte {
		var buf bytes.Buffer
		Run(exps, par, func(tbl *Table) { tbl.Render(&buf) })
		return buf.Bytes()
	}
	seq := render(1)
	parl := render(8)
	if !bytes.Equal(seq, parl) {
		t.Fatalf("par=1 and par=8 outputs differ:\n--- par=1 ---\n%s\n--- par=8 ---\n%s", seq, parl)
	}
	if len(seq) == 0 {
		t.Fatal("experiments rendered nothing")
	}
}

// TestRunAllCoversEveryExperiment: RunAll returns one table per registered
// experiment, in index order.
func TestRunAllCoversEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is multi-second")
	}
	tables := RunAll(8)
	all := All()
	if len(tables) != len(all) {
		t.Fatalf("RunAll returned %d tables for %d experiments", len(tables), len(all))
	}
	for i, tbl := range tables {
		if tbl.ID != all[i].ID {
			t.Errorf("table %d is %s, want %s", i, tbl.ID, all[i].ID)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", tbl.ID)
		}
	}
}
