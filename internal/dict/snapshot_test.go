package dict

import (
	"testing"
	"time"

	"repro/internal/aem"
	"repro/internal/rng"
)

// machineReader adapts a machine's storage to BlockReader for
// single-threaded tests (the serving layer supplies its own synchronized
// implementation).
type machineReader struct{ ma *aem.Machine }

func (r machineReader) ReadBlock(a aem.Addr, dst []aem.Item) []aem.Item {
	return r.ma.Storage().ReadInto(a, dst)
}

// TestSnapshotMatchesModel drives a mixed stream, snapshots at random
// batch boundaries, and checks every snapshot answer (point and range)
// against a model map frozen at the same boundary — including answers
// read AFTER the live tree has kept mutating, which pins the append-only
// stability argument the capture relies on.
func TestSnapshotMatchesModel(t *testing.T) {
	r := rng.New(99)
	ma := aem.New(aem.Config{M: 256, B: 16, Omega: 8})
	tree := NewBufferTree(ma)
	reader := machineReader{ma}

	const keyspace = 1024
	model := map[int64]int64{}

	type frozen struct {
		snap  *TreeSnapshot
		model map[int64]int64
	}
	var snaps []frozen

	ops := diffStream(7, 30000, keyspace)
	for i := 0; i < len(ops); {
		j := i + 1 + r.Intn(900)
		if j > len(ops) {
			j = len(ops)
		}
		batch := ops[i:j]
		tree.Apply(batch)
		for _, op := range batch {
			switch op.Kind {
			case Insert:
				model[op.Key] = op.Value
			case Delete:
				delete(model, op.Key)
			}
		}
		i = j

		snap := tree.Snapshot()
		// Check a sample of keys right away...
		for k := 0; k < 32; k++ {
			key := int64(r.Intn(keyspace))
			got, ok, _ := snap.Get(reader, key, nil)
			want, wantOK := model[key]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("snapshot Get(%d) = (%d,%v), model (%d,%v)", key, got, ok, want, wantOK)
			}
		}
		// ...and keep every 8th snapshot (with its frozen model) to
		// re-check after further mutation.
		if len(snaps) < 16 && r.Intn(8) == 0 {
			mcopy := make(map[int64]int64, len(model))
			for k, v := range model {
				mcopy[k] = v
			}
			snaps = append(snaps, frozen{snap, mcopy})
		}
	}
	tree.Flush() // rewrites leaf runs; captured snapshots must not notice

	sc := NewGetScratch(16)
	for si, fz := range snaps {
		for key := int64(0); key < keyspace; key++ {
			got, ok, _ := fz.snap.Get(reader, key, sc)
			want, wantOK := fz.model[key]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("stale snapshot %d: Get(%d) = (%d,%v), frozen model (%d,%v)",
					si, key, got, ok, want, wantOK)
			}
		}
		lo := int64(r.Intn(keyspace))
		hi := lo + 1 + int64(r.Intn(200))
		hits, reads := fz.snap.Range(reader, lo, hi)
		if reads == 0 {
			t.Fatalf("snapshot %d: Range(%d,%d) read no blocks", si, lo, hi)
		}
		want := map[int64]int64{}
		for k, v := range fz.model {
			if lo <= k && k < hi {
				want[k] = v
			}
		}
		if len(hits) != len(want) {
			t.Fatalf("snapshot %d: Range(%d,%d) = %d hits, want %d", si, lo, hi, len(hits), len(want))
		}
		prev := lo - 1
		for _, h := range hits {
			if h.Key <= prev {
				t.Fatalf("snapshot %d: Range hits out of order at key %d", si, h.Key)
			}
			prev = h.Key
			if v, ok := want[h.Key]; !ok || v != h.Value {
				t.Fatalf("snapshot %d: Range hit (%d,%d), model has (%d,%v)", si, h.Key, h.Value, v, ok)
			}
		}
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots were frozen; widen the sampling")
	}
}

// TestSnapshotEmptyAndRangeEdges covers the degenerate shapes: an empty
// tree's snapshot answers everything with absent/empty, and hi ≤ lo
// ranges are free.
func TestSnapshotEmptyAndRangeEdges(t *testing.T) {
	ma := aem.New(aem.Config{M: 128, B: 8, Omega: 4})
	tree := NewBufferTree(ma)
	snap := tree.Snapshot()
	reader := machineReader{ma}
	if _, ok, reads := snap.Get(reader, 42, nil); ok || reads != 0 {
		t.Fatalf("empty snapshot Get = ok=%v reads=%d", ok, reads)
	}
	if hits, reads := snap.Range(reader, 10, 10); hits != nil || reads != 0 {
		t.Fatalf("empty range = %v (%d reads)", hits, reads)
	}
	tree.Apply([]Op{{Kind: Insert, Key: 7, Value: 11}})
	snap = tree.Snapshot()
	if v, ok, _ := snap.Get(reader, 7, nil); !ok || v != 11 {
		t.Fatalf("Get(7) = (%d,%v), want (11,true)", v, ok)
	}
	if hits, _ := snap.Range(reader, 8, 7); len(hits) != 0 {
		t.Fatalf("inverted range returned %v", hits)
	}
}

// TestTailStaging drives a staged tree with the trickled tiny batches of
// a group-commit serving layer and pins both halves of the staging
// contract: (a) correctness — live queries and snapshots still match the
// model, including entries resident only in the stage; (b) occupancy —
// the root chain holds ~⌈n/B⌉ blocks instead of one block per batch.
func TestTailStaging(t *testing.T) {
	r := rng.New(5)
	cfg := aem.Config{M: 256, B: 16, Omega: 8}
	ma := aem.New(cfg)
	tree := NewBufferTree(ma)
	tree.EnableTailStaging()
	reader := machineReader{ma}
	model := map[int64]int64{}

	const keyspace = 512
	ops := diffStream(11, 12000, keyspace)
	applied := 0
	for i := 0; i < len(ops); {
		j := i + 1 + r.Intn(7) // serving-sized batches: 1..7 ops
		if j > len(ops) {
			j = len(ops)
		}
		batch := ops[i:j]
		// A mid-batch lookup observes exactly the ops before it, so record
		// each lookup's expected answer at its position in the stream.
		type expect struct {
			key   int64
			value int64
			ok    bool
		}
		var expects []expect
		for _, op := range batch {
			switch op.Kind {
			case Insert:
				model[op.Key] = op.Value
			case Delete:
				delete(model, op.Key)
			case Lookup:
				v, ok := model[op.Key]
				expects = append(expects, expect{op.Key, v, ok})
			case RangeScan:
				expects = append(expects, expect{key: -1}) // positional filler
			}
		}
		res := tree.Apply(batch)
		applied += len(batch)
		if len(res) != len(expects) {
			t.Fatalf("Apply answered %d queries, stream has %d", len(res), len(expects))
		}
		for qi, e := range expects {
			if e.key < 0 {
				continue // range scan; point correctness is the target here
			}
			if res[qi].OK != e.ok || (e.ok && res[qi].Value != e.value) {
				t.Fatalf("live Lookup(%d) = (%d,%v), model (%d,%v)",
					e.key, res[qi].Value, res[qi].OK, e.value, e.ok)
			}
		}
		i = j

		if r.Intn(50) == 0 {
			snap := tree.Snapshot()
			for k := int64(0); k < keyspace; k++ {
				got, ok, _ := snap.Get(reader, k, nil)
				want, wantOK := model[k]
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("staged snapshot Get(%d) = (%d,%v), model (%d,%v)", k, got, ok, want, wantOK)
				}
			}
		}
	}

	// Occupancy: with ~4-op batches an unstaged chain would hold ~1 block
	// per batch; staged, the root chain must stay near ⌈items/B⌉. Allow
	// 2× slack for the partial blocks flushes leave behind.
	if blocks := tree.top.buf.blocks(); blocks > 2*(tree.top.buf.n/cfg.B+1) {
		t.Fatalf("staged root chain holds %d blocks for %d items (B=%d) — fragmented",
			blocks, tree.top.buf.n, cfg.B)
	}

	tree.Flush()
	if len(tree.stage) != 0 {
		t.Fatalf("Flush left %d items in the stage", len(tree.stage))
	}
	for k := int64(0); k < keyspace; k++ {
		snap := tree.Snapshot()
		got, ok, _ := snap.Get(reader, k, nil)
		want, wantOK := model[k]
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("post-flush Get(%d) = (%d,%v), model (%d,%v)", k, got, ok, want, wantOK)
		}
	}
}

// TestTailStagingGuards pins the enable-time contract.
func TestTailStagingGuards(t *testing.T) {
	ma := aem.New(aem.Config{M: 128, B: 8, Omega: 2})
	tree := NewBufferTree(ma)
	tree.Apply([]Op{{Kind: Insert, Key: 1, Value: 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("EnableTailStaging after Apply did not panic")
		}
	}()
	tree.EnableTailStaging()
}

// TestFlushHookObservesStalls pins the hook contract: it fires once per
// top-level flush section (no nested double fire), with a non-negative
// duration, and a stream big enough to cascade fires it at least once.
func TestFlushHookObservesStalls(t *testing.T) {
	ma := aem.New(aem.Config{M: 64, B: 8, Omega: 2})
	tree := NewBufferTree(ma)
	var fired int
	var total time.Duration
	tree.SetFlushHook(func(d time.Duration) {
		if d < 0 {
			t.Fatalf("negative flush duration %v", d)
		}
		if tree.flushDepth != 0 {
			t.Fatalf("hook fired at depth %d, want 0 (top level only, after unwind)", tree.flushDepth)
		}
		fired++
		total += d
	})
	ops := diffStream(3, 4000, 256)
	tree.Apply(ops)
	if fired == 0 {
		t.Fatal("no flush sections observed over a cascading stream")
	}
	before := fired
	tree.Flush()
	if fired != before+1 {
		t.Fatalf("Flush fired the hook %d times, want exactly 1", fired-before)
	}
	tree.SetFlushHook(nil)
	tree.Apply(ops)
	if fired != before+1 {
		t.Fatal("hook fired after removal")
	}
}
