// Package harness runs the repository's experiments: one per theorem,
// lemma or claim of the paper (the experiment index lives in README.md,
// "Experiments").
// Each experiment sweeps a parameter range on the AEM simulator, measures
// I/O costs, evaluates the paper's predicted bound at the same points, and
// emits a table of measured-vs-predicted values. Tables render as aligned
// text (for the terminal and recorded results) and as CSV (for plotting).
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Claim   string   // the paper statement being reproduced
	Notes   []string // caveats, deviations, interpretation
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each value with %v (floats get
// 3 significant decimals via fmtVal).
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		row[i] = fmtVal(v)
	}
	if len(row) != len(t.Columns) {
		panic(fmt.Sprintf("harness: row has %d values for %d columns", len(row), len(t.Columns)))
	}
	t.Rows = append(t.Rows, row)
}

func fmtVal(v interface{}) string {
	switch x := v.(type) {
	case float64:
		switch {
		case x == 0:
			return "0"
		case x >= 1000:
			return fmt.Sprintf("%.0f", x)
		case x >= 1:
			return fmt.Sprintf("%.2f", x)
		default:
			return fmt.Sprintf("%.4f", x)
		}
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values (quoted where needed).
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	fmt.Fprintln(w, strings.Join(parts, ","))
}

// Experiment is a named, self-contained reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func() *Table
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
