package harness

import (
	"fmt"
	"sync"
)

// This file is the declarative scenario engine. A Spec describes one
// experiment as a parameter grid (named axes: ω, N, machine shape,
// workload scenario, …), a point function measuring one grid point, and
// column definitions — optionally carrying predicted-bound hooks from
// internal/bounds and derived columns computed over the finished grid.
// The engine enumerates the grid, schedules the points (see Run), and
// assembles the table deterministically in grid order, so the rendered
// output is identical at every parallelism level.

// Axis is one named dimension of a Spec's grid. Either Values or Dyn is
// set; Dyn computes the axis values from the assignment of the axes
// declared before it, for grids whose inner range depends on an outer
// value (e.g. the small-sort sweep, where N' ranges over multiples of M
// chosen relative to ω).
type Axis struct {
	Name   string
	Values []interface{}
	Dyn    func(outer Point) []interface{}
}

// Point is one grid point: an assignment of one value to every axis of
// its spec, looked up by axis name.
type Point struct {
	axes []Axis
	vals []interface{}
}

// Value returns the point's value on the named axis. It panics on an
// unknown axis name — a spec authoring bug, not a runtime condition.
func (p Point) Value(name string) interface{} {
	for i := range p.axes {
		if p.axes[i].Name == name {
			return p.vals[i]
		}
	}
	panic(fmt.Sprintf("harness: point has no axis %q", name))
}

// Int returns the named axis value as an int.
func (p Point) Int(name string) int { return p.Value(name).(int) }

// Str returns the named axis value as a string.
func (p Point) Str(name string) string { return p.Value(name).(string) }

// key is a deterministic identity for the point's assignment, used by
// MemoPoint caches.
func (p Point) key() string { return fmt.Sprintf("%v", p.vals) }

// Row is one grid point's measurements, raw and unformatted: one entry
// per (non-derived) column. Entries for predicted-bound columns hold the
// measured numerator (or nil to emit the prediction itself); everything
// else is formatted with the table's value formatter at assembly.
type Row []interface{}

// Column defines one table column. A plain column takes its cell from
// the point function's Row positionally. A column with Pred set is a
// predicted-bound column: the hook (typically an internal/bounds
// formula) is evaluated at the grid point and the cell becomes
// measured/predicted — or the prediction itself when the Row entry at
// this position is nil.
type Column struct {
	Name string
	Pred func(Point) float64
}

// Cols builds plain columns from names.
func Cols(names ...string) []Column {
	out := make([]Column, len(names))
	for i, n := range names {
		out[i] = Column{Name: n}
	}
	return out
}

// DerivedColumn is computed after every grid point has run, from the full
// raw row set — for summary cells that relate rows to each other, like a
// cost ratio against a baseline row.
//
// When a grid runs sharded, the raw rows reach the merge step through a
// JSON round-trip, which widens every number to float64. From hooks must
// therefore treat numeric entries generically (toFloat accepts int,
// int64, uint64 and float64 alike) rather than type-asserting concrete
// integer types — the shard/merge byte-identity property test enforces
// this for the registry.
type DerivedColumn struct {
	Name string
	From func(rows []Row, i int) interface{}
}

// Spec is a declarative experiment: a grid, a point function, and the
// table shape. The engine owns iteration, scheduling and assembly;
// the spec owns only what is measured at one point.
type Spec struct {
	ID    string
	Title string // table heading
	Claim string // the paper statement, as the rendered table states it
	Notes []string

	// Index and Statement are the registry's one-line entry and paper
	// claim, shown by `aem bench -list` and the README index; the table
	// carries its own, usually terser, Title and Claim.
	Index     string
	Statement string

	// Axes span the grid; points enumerate in row order with the first
	// axis outermost (the last axis varies fastest), matching the nested
	// loops specs replace. Skip prunes individual points.
	Axes []Axis
	Skip func(Point) bool

	Columns []Column
	Derived []DerivedColumn

	// Point measures one grid point and returns one raw value per entry
	// of Columns. It must be deterministic and self-contained (private
	// machine, fixed seeds): points run concurrently.
	Point func(Point) Row
}

// Points enumerates the grid. Dynamic axes see the outer assignment;
// Skip prunes points after full assignment.
func (s *Spec) Points() []Point {
	var pts []Point
	vals := make([]interface{}, len(s.Axes))
	var rec func(d int)
	rec = func(d int) {
		if d == len(s.Axes) {
			p := Point{axes: s.Axes, vals: append([]interface{}(nil), vals...)}
			if s.Skip != nil && s.Skip(p) {
				return
			}
			pts = append(pts, p)
			return
		}
		values := s.Axes[d].Values
		if s.Axes[d].Dyn != nil {
			values = s.Axes[d].Dyn(Point{axes: s.Axes[:d], vals: vals[:d]})
		}
		for _, v := range values {
			vals[d] = v
			rec(d + 1)
		}
	}
	rec(0)
	return pts
}

// cells renders one point's Row into formatted cells, applying the
// predicted-bound hooks. It runs on the worker that measured the point,
// so hook evaluation parallelizes with the grid.
func (s *Spec) cells(p Point, row Row) []string {
	if len(row) != len(s.Columns) {
		panic(fmt.Sprintf("harness: %s: point returned %d values for %d columns", s.ID, len(row), len(s.Columns)))
	}
	out := make([]string, len(s.Columns), len(s.Columns)+len(s.Derived))
	for i, c := range s.Columns {
		v := row[i]
		if c.Pred != nil {
			pred := c.Pred(p)
			if v == nil {
				out[i] = fmtVal(pred)
			} else {
				out[i] = fmtVal(toFloat(v) / pred)
			}
			continue
		}
		out[i] = fmtVal(v)
	}
	return out
}

// assemble builds the final table from the grid's raw rows and
// pre-rendered cells, appending derived columns. It runs serially after
// the spec's last point completes.
func (s *Spec) assemble(rows []Row, cells [][]string) *Table {
	t := &Table{ID: s.ID, Title: s.Title, Claim: s.Claim, Notes: s.Notes}
	for _, c := range s.Columns {
		t.Columns = append(t.Columns, c.Name)
	}
	for _, d := range s.Derived {
		t.Columns = append(t.Columns, d.Name)
	}
	for i, cs := range cells {
		for _, d := range s.Derived {
			cs = append(cs, fmtVal(d.From(rows, i)))
		}
		t.Rows = append(t.Rows, cs)
	}
	return t
}

// Table runs every grid point serially and assembles the result — the
// single-spec convenience used by tests and focused tooling. Run is the
// scheduled path.
func (s *Spec) Table() *Table {
	pts := s.Points()
	rows := make([]Row, len(pts))
	cells := make([][]string, len(pts))
	for i, p := range pts {
		rows[i] = s.Point(p)
		cells[i] = s.cells(p, rows[i])
	}
	return s.assemble(rows, cells)
}

// MemoPoint caches an expensive per-point computation — typically the
// bounds parameters shared by several predicted-bound hooks of one spec —
// so each grid point pays for it once no matter how many hooks ask.
// f must be deterministic; concurrent first calls may both compute, which
// is harmless.
func MemoPoint[T any](f func(Point) T) func(Point) T {
	var mu sync.Mutex
	cache := map[string]T{}
	return func(p Point) T {
		k := p.key()
		mu.Lock()
		v, ok := cache[k]
		mu.Unlock()
		if ok {
			return v
		}
		v = f(p)
		mu.Lock()
		cache[k] = v
		mu.Unlock()
		return v
	}
}

// Ints wraps ints as axis values.
func Ints(vs ...int) []interface{} {
	out := make([]interface{}, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out
}

// Vals wraps arbitrary values as axis values.
func Vals(vs ...interface{}) []interface{} { return vs }

// toFloat widens a raw measurement for a predicted-bound division.
func toFloat(v interface{}) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	case int64:
		return float64(x)
	case uint64:
		return float64(x)
	}
	panic(fmt.Sprintf("harness: non-numeric measurement %T for a predicted-bound column", v))
}
