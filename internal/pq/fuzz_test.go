// Native Go fuzz target for the priority-queue layer: byte inputs decode
// into a machine corner plus a push/deletemin stream, and every decoded
// stream runs through both queues against container/heap. The seed corpus
// comes from the workload generators, so fuzzing starts from realistic
// mixed/sawtooth/monotone traffic and mutates from there.
package pq

import (
	"container/heap"
	"testing"

	"repro/internal/aem"
	"repro/internal/workload"
)

// fuzzPQConfigs are the machine corners the fuzzer cycles through; they
// include B = 1 (ARAM) and ω = 1 (symmetric EM).
var fuzzPQConfigs = []aem.Config{
	{M: 64, B: 4, Omega: 4},
	{M: 256, B: 16, Omega: 16},
	{M: 32, B: 1, Omega: 8},
	{M: 128, B: 8, Omega: 1},
}

// decodePQOps turns fuzz bytes into a machine config and an op stream:
// one leading config byte, then 3 bytes per op (kind, key-low, key-high).
// Deletes on an empty queue are dropped, matching the generator contract.
func decodePQOps(data []byte) (aem.Config, []workload.PQOp) {
	if len(data) == 0 {
		return fuzzPQConfigs[0], nil
	}
	cfg := fuzzPQConfigs[int(data[0])%len(fuzzPQConfigs)]
	data = data[1:]
	if len(data) > 3*768 {
		data = data[:3*768]
	}
	var ops []workload.PQOp
	size := 0
	var seq int64
	for i := 0; i+3 <= len(data); i += 3 {
		if data[i]%3 == 0 && size > 0 {
			ops = append(ops, workload.PQOp{Kind: workload.PQDeleteMin})
			size--
		} else {
			key := int64(data[i+1]) | int64(data[i+2])<<8
			ops = append(ops, workload.PQOp{Kind: workload.PQPush,
				Item: aem.Item{Key: key, Aux: seq}})
			seq++
			size++
		}
	}
	return cfg, ops
}

// encodePQOps is decodePQOps's inverse for seeding the corpus from
// generated workloads.
func encodePQOps(cfgIdx byte, ops []workload.PQOp) []byte {
	out := []byte{cfgIdx}
	for _, op := range ops {
		if op.Kind == workload.PQDeleteMin {
			out = append(out, 0, 0, 0)
		} else {
			k := op.Item.Key & 0xffff
			out = append(out, 1, byte(k), byte(k>>8))
		}
	}
	return out
}

func FuzzPQOps(f *testing.F) {
	for i, sc := range workload.PQScenarios() {
		ops := workload.PQOps(workload.NewRNG(uint64(i)+1), sc, 600)
		f.Add(encodePQOps(byte(i), ops))
	}
	f.Add([]byte{1, 1, 9, 0, 1, 3, 0, 0, 0, 0, 1, 2, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, ops := decodePQOps(data)
		for name, q := range map[string]minQueue{
			"sequence": New(aem.New(cfg)),
			"adaptive": NewAdaptive(aem.New(cfg)),
		} {
			ref := &refHeap{}
			for i, op := range ops {
				if op.Kind == workload.PQPush {
					q.Push(op.Item)
					heap.Push(ref, op.Item)
				} else {
					got, ok := q.DeleteMin()
					want := heap.Pop(ref).(aem.Item)
					if !ok || got != want {
						t.Fatalf("%s op %d: DeleteMin = %v, %t, want %v", name, i, got, ok, want)
					}
				}
			}
			for ref.Len() > 0 {
				got, _ := q.DeleteMin()
				if want := heap.Pop(ref).(aem.Item); got != want {
					t.Fatalf("%s drain: got %v, want %v", name, got, want)
				}
			}
			q.Close()
		}
	})
}
