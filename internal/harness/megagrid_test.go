package harness

import (
	"strings"
	"testing"

	"repro/internal/aem"
	"repro/internal/bounds"
)

// TestMG1EveryPointSimulatesMillions is the mega-grid's depth acceptance:
// every grid point must simulate at least 10⁶ I/Os, and the replayed
// schedule must equal bounds.MergeSortPredicted exactly (the cost/pred
// column renders 1.00 at every point).
func TestMG1EveryPointSimulatesMillions(t *testing.T) {
	s := specMG1()
	pts := s.Points()
	if len(pts) == 0 {
		t.Fatal("mega-grid enumerates no points")
	}
	for _, p := range pts {
		row := s.Point(p)
		simIOs := row[4].(int64)
		if simIOs < 1_000_000 {
			t.Errorf("point ω=%d N=%d simulates %d I/Os, want ≥ 10⁶", p.Int("omega"), p.Int("N"), simIOs)
		}
		pr := bounds.MergeSortPredicted(mgParams(p))
		if got, want := float64(row[2].(int64)), pr.Reads; got != want {
			t.Errorf("point ω=%d N=%d replayed %.0f reads, predicted %.0f", p.Int("omega"), p.Int("N"), got, want)
		}
		if got, want := float64(row[3].(int64)), pr.Writes; got != want {
			t.Errorf("point ω=%d N=%d replayed %.0f writes, predicted %.0f", p.Int("omega"), p.Int("N"), got, want)
		}
	}
}

// TestMG1TableRatiosPinExactly renders the deepest-ω slice and demands the
// cost/pred column read exactly 1.00 — the replay is the prediction made
// executable, so any drift is a bug in one of them.
func TestMG1TableRatiosPinExactly(t *testing.T) {
	s := specMG1()
	s.Axes = []Axis{
		{Name: "omega", Values: Ints(256)},
		{Name: "N", Values: Ints(1 << 24)},
	}
	tbl := s.Table()
	col := -1
	for i, c := range tbl.Columns {
		if c == "cost/pred" {
			col = i
		}
	}
	if col < 0 {
		t.Fatal("no cost/pred column")
	}
	for _, row := range tbl.Rows {
		if row[col] != "1.00" {
			t.Errorf("cost/pred = %s, want exactly 1.00", row[col])
		}
	}
}

// TestMG1IsAuxiliary pins the registry placement: the mega-grid must be
// selectable by id but absent from All(), so the recorded goldens of the
// default run are untouched by its existence.
func TestMG1IsAuxiliary(t *testing.T) {
	if _, ok := ByID("EXP-MG1"); !ok {
		t.Fatal("EXP-MG1 not selectable by id")
	}
	for _, s := range All() {
		if s.ID == "EXP-MG1" {
			t.Fatal("EXP-MG1 leaked into the default registry; goldens would change")
		}
	}
	found := false
	for _, s := range Aux() {
		if s.ID == "EXP-MG1" {
			found = true
		}
	}
	if !found {
		t.Fatal("EXP-MG1 missing from Aux()")
	}
}

// TestReplayMatchesPerOpSchedule replays a small schedule twice — once
// through the bulk primitives on the counting engine, once as the
// equivalent per-op loop on the slice engine — and demands identical
// accounting: the mega-grid's arithmetic fast path must measure exactly
// what a block-by-block simulation would.
func TestReplayMatchesPerOpSchedule(t *testing.T) {
	cfg := aem.Config{M: 64, B: 8, Omega: 3}
	const nItems = 200 // 25 blocks, deliberately not a power of two

	fast := aem.NewWithStorage(cfg, aem.NewCountingStorage())
	replayMergeSchedule(fast, nItems)

	slow := aem.New(cfg)
	nBlocks := cfg.BlocksOf(nItems)
	lastLen := nItems - (nBlocks-1)*cfg.B
	in := slow.Alloc(nBlocks)
	out := slow.Alloc(nBlocks)
	passes := int(bounds.MergeSortLevels(bounds.Params{N: nItems, Cfg: cfg})) + 1
	buf := make([]aem.Item, 0, cfg.B)
	blk := make([]aem.Item, cfg.B)
	for pass := 0; pass < passes; pass++ {
		for r := 0; r < cfg.Omega; r++ {
			for i := 0; i < nBlocks; i++ {
				slow.ReadInto(in+aem.Addr(i), buf)
			}
		}
		for i := 0; i < nBlocks-1; i++ {
			slow.Write(out+aem.Addr(i), blk)
		}
		slow.Write(out+aem.Addr(nBlocks-1), blk[:lastLen])
		in, out = out, in
	}

	if fast.Stats() != slow.Stats() {
		t.Errorf("bulk replay stats %+v, per-op loop %+v", fast.Stats(), slow.Stats())
	}
	if fast.Cost() != slow.Cost() {
		t.Errorf("bulk replay cost %d, per-op loop %d", fast.Cost(), slow.Cost())
	}
}

// TestThroughputOf pins the summary derivation: totals, ns/point and the
// points/sec inversion, plus nil for untimed tables.
func TestThroughputOf(t *testing.T) {
	tbl := &Table{ID: "EXP-X", Rows: [][]string{{"a"}, {"b"}, {"c"}, {"d"}}}
	if tp := ThroughputOf(tbl); tp != nil {
		t.Fatalf("untimed table produced a summary: %+v", tp)
	}
	tbl.WallNS = []int64{1_000_000, 2_000_000, 3_000_000, 2_000_000}
	tp := ThroughputOf(tbl)
	if tp == nil {
		t.Fatal("timed table produced no summary")
	}
	if tp.Experiment != "EXP-X" || tp.Points != 4 || tp.WallNS != 8_000_000 {
		t.Fatalf("summary identity wrong: %+v", tp)
	}
	if tp.NSPerPoint != 2_000_000 {
		t.Errorf("ns/point = %v, want 2e6", tp.NSPerPoint)
	}
	if tp.PointsPerSec != 500 {
		t.Errorf("points/sec = %v, want 500", tp.PointsPerSec)
	}
	if tp.Type != "throughput" {
		t.Errorf("summary type %q, want throughput", tp.Type)
	}
	if !strings.HasPrefix(tp.Experiment, "EXP-") {
		t.Errorf("experiment id %q lost its prefix", tp.Experiment)
	}
}
