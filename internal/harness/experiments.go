package harness

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/dict"
	"repro/internal/flash"
	"repro/internal/permute"
	"repro/internal/pq"
	"repro/internal/program"
	"repro/internal/sorting"
	"repro/internal/spmxv"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Seed is the deterministic seed all experiments derive their inputs from.
const Seed = 20170724 // SPAA 2017 started July 24

// All returns every experiment in the README.md ("Experiments") index order.
func All() []Experiment {
	return []Experiment{
		{ID: "EXP-M1", Title: "ωm-way merge cost (Theorem 3.2)",
			Claim: "merging ωm sorted runs of N total items costs O(ω(n+m)) reads and O(n+m) writes; the normalized columns are flat across N and ω",
			Run:   expM1},
		{ID: "EXP-S1", Title: "AEM mergesort scaling (Section 3)",
			Claim: "mergesort costs O(ω·n·log_{ωm} n) with writes a 1/ω fraction of reads; measured/predicted stays constant across N",
			Run:   expS1},
		{ID: "EXP-S2", Title: "sorting algorithms vs ω (Section 3 motivation)",
			Claim: "the §3 mergesort works for every ω where the in-memory-pointer merge of [7] fails for ω ≳ B, and its cost ratio to the symmetric-EM mergesort falls as ω grows",
			Run:   expS2},
		{ID: "EXP-B1", Title: "small-sort base case ([7, Lemma 4.2])",
			Claim: "N′ ≤ ωM items sort in O(ω·n′) reads and exactly n′ writes",
			Run:   expB1},
		{ID: "EXP-P1", Title: "permuting upper vs lower bound (Theorem 4.5)",
			Claim: "best-of(direct, sort) cost is within a constant factor of min{N, ω·n·log_{ωm} n}, with the strategy switching exactly where the min switches",
			Run:   expP1},
		{ID: "EXP-P2", Title: "counting argument internals (§4.2)",
			Claim: "the exact round floor from inequality (1) agrees with the closed form within constant factors across the parameter grid",
			Run:   expP2},
		{ID: "EXP-R1", Title: "Lemma 4.1 round-based conversion",
			Claim: "any program converts to a round-based program on a 2M machine at ≤ 3× cost + O(ωm), preserving the computed permutation",
			Run:   expR1},
		{ID: "EXP-R2", Title: "Lemma 4.1 on real algorithm traces",
			Claim: "the round-based conversion stays O(1)× on recorded executions of the paper's own algorithms, not just synthetic programs",
			Run:   expR2},
		{ID: "EXP-F1", Title: "Lemma 4.3 flash simulation",
			Claim: "a round-based AEM program of cost Q becomes a flash program of volume ≤ 2N + 2QB/ω computing the same placement",
			Run:   expF1},
		{ID: "EXP-F2", Title: "reduction vs counting lower bound (Corollary 4.4)",
			Claim: "the flash-reduction bound matches the counting bound's shape where ω ≤ B and is vacuous for ω > B — the range where only the counting argument applies",
			Run:   expF2},
		{ID: "EXP-X1", Title: "SpMxV cost vs δ (Theorem 5.1)",
			Claim: "naive O(H+ωn) and sorting-based O(ω·h·log_{ωm} N/max{δ,B}+ωn) bracket the lower bound, and the best strategy follows the min{}",
			Run:   expX1},
		{ID: "EXP-A1", Title: "ablation: round-buffer size in the §3 merge",
			Claim: "halving the per-round output multiplies the round count and with it the fixed ωm initialization reads — the design choice behind §3.1's M-sized rounds",
			Run:   expA1},
		{ID: "EXP-X2", Title: "SpMxV cost vs ω (Section 5)",
			Claim: "as ω grows the sorting-based cost scales ~ω while naive stays flat in reads, moving the crossover toward naive",
			Run:   expX2},
		{ID: "EXP-D1", Title: "dictionary: buffered vs unbatched cost vs ω",
			Claim: "the ω-adaptive buffer tree's cost/op grows sublinearly in ω (its writes/op falls as buffers grow) while the unbatched B-tree grows ~linearly at ~1 write/update; both within 2× of the bounds predictions",
			Run:   expD1},
		{ID: "EXP-D2", Title: "dictionary: cost per op vs stream length",
			Claim: "amortized cost/op of the buffer tree grows only logarithmically with the stream (tree height), staying under the B-tree baseline across sizes",
			Run:   expD2},
		{ID: "EXP-Q1", Title: "priority queue: ω-adaptive vs sequence heap cost vs ω",
			Claim: "the ω-adaptive buffered queue's cost grows well under the ω span (folds and writes/op fall with ω until a scenario's below-watermark churn pins them) while the ω-oblivious sequence heap grows ~linearly and the gap widens; both within 2× of the bounds predictions",
			Run:   expQ1},
		{ID: "EXP-Q2", Title: "priority queue: cost per op vs stream length",
			Claim: "amortized cost/op of the adaptive queue stays under the sequence heap across stream sizes at fixed ω, with the gap set by the deferred restructuring",
			Run:   expQ2},
	}
}

// runPQStream drives a queue over an op stream.
func runPQStream(q interface {
	Push(aem.Item)
	DeleteMin() (aem.Item, bool)
}, ops []workload.PQOp) {
	for _, op := range ops {
		if op.Kind == workload.PQPush {
			q.Push(op.Item)
		} else {
			q.DeleteMin()
		}
	}
}

func expQ1() *Table {
	t := &Table{
		ID:      "EXP-Q1",
		Title:   "priority queue: ω-adaptive buffered vs sequence heap across ω",
		Claim:   "adaptive folds and writes/op fall with ω (to a scenario-set floor); sequence heap ~linear in ω; the gap widens",
		Columns: []string{"scenario", "omega", "folds", "ad w/op", "ad cost/op", "seq cost/op", "seq/ad", "ad r m/p", "ad w m/p", "seq r m/p", "seq w m/p"},
	}
	const n = 24000
	for _, sc := range []workload.PQScenario{workload.MixedPQ, workload.MonotonePQ} {
		ops := workload.PQOps(workload.NewRNG(Seed+16), sc, n)
		for _, w := range []int{1, 4, 8, 16, 32, 64} {
			cfg := aem.Config{M: 256, B: 16, Omega: w}
			maA := aem.New(cfg)
			qa := pq.NewAdaptive(maA)
			runPQStream(qa, ops)
			maS := aem.New(cfg)
			runPQStream(pq.New(maS), ops)

			p := bounds.PQParamsFor(cfg, ops)
			predA := bounds.PQAdaptivePredicted(p)
			predS := bounds.PQSequenceHeapPredicted(p)
			stA, stS := maA.Stats(), maS.Stats()
			t.AddRow(sc.String(), w, qa.Folds(),
				float64(stA.Writes)/float64(n),
				float64(maA.Cost())/float64(n),
				float64(maS.Cost())/float64(n),
				float64(maS.Cost())/float64(maA.Cost()),
				float64(stA.Reads)/predA.Reads,
				float64(stA.Writes)/predA.Writes,
				float64(stS.Reads)/predS.Reads,
				float64(stS.Writes)/predS.Writes)
		}
	}
	t.Notes = append(t.Notes,
		"folds and ad w/op fall as ω grows — the Θ(ωM) buffer defers restructuring and the ω-scan rent budget replaces folds with read-only selection passes — down to the floor set by the scenario's below-watermark churn: monotone falls all the way (79 → 4 folds), mixed plateaus once every remaining fold is a stash overflow",
		"the sequence heap's reads/writes are ω-independent, so its cost is ~affine in ω at ~constant writes/op — the gap to the adaptive queue widens with ω in every scenario",
		"m/p columns are measured/predicted Qr and Qw from the bounds policy walk; the acceptance band is [0.5, 2]")
	return t
}

func expQ2() *Table {
	t := &Table{
		ID:      "EXP-Q2",
		Title:   "priority queue: amortized cost per op vs stream length",
		Claim:   "adaptive cost/op stays under the sequence heap across sizes at fixed ω",
		Columns: []string{"ops", "ad r/op", "ad w/op", "ad cost/op", "seq cost/op", "seq/ad", "ad cost m/p", "seq cost m/p"},
	}
	cfg := aem.Config{M: 256, B: 16, Omega: 8}
	for _, n := range []int{6000, 12000, 24000, 48000} {
		ops := workload.PQOps(workload.NewRNG(Seed+17), workload.MixedPQ, n)
		maA := aem.New(cfg)
		runPQStream(pq.NewAdaptive(maA), ops)
		maS := aem.New(cfg)
		runPQStream(pq.New(maS), ops)

		p := bounds.PQParamsFor(cfg, ops)
		stA := maA.Stats()
		t.AddRow(n,
			float64(stA.Reads)/float64(n),
			float64(stA.Writes)/float64(n),
			float64(maA.Cost())/float64(n),
			float64(maS.Cost())/float64(n),
			float64(maS.Cost())/float64(maA.Cost()),
			float64(maA.Cost())/bounds.PQAdaptivePredicted(p).Cost(cfg.Omega),
			float64(maS.Cost())/bounds.PQSequenceHeapPredicted(p).Cost(cfg.Omega))
	}
	t.Notes = append(t.Notes,
		"cost/op is near-flat in the stream length for both queues (the merge hierarchy stays shallow at simulator scale); the adaptive queue's advantage is the ω-weighted write volume it never pays",
		"ω = 8: the adaptive queue stays under the sequence heap at every size")
	return t
}

func expD1() *Table {
	t := &Table{
		ID:      "EXP-D1",
		Title:   "dictionary: buffered vs unbatched cost across ω",
		Claim:   "buffer tree cost/op sublinear in ω (writes/op falls); B-tree ~linear at ~1 write/update",
		Columns: []string{"scenario", "omega", "bt w/op", "bt cost/op", "btree cost/op", "btree/bt", "bt r m/p", "bt w m/p", "base r m/p", "base w m/p"},
	}
	const n, keyspace = 24000, 8192
	for _, sc := range []workload.Scenario{workload.UniformOps, workload.ZipfOps} {
		ops := workload.DictOps(workload.NewRNG(Seed+14), sc, n, keyspace)
		for _, w := range []int{1, 4, 8, 16, 32, 64} {
			cfg := aem.Config{M: 256, B: 16, Omega: w}
			maB := aem.New(cfg)
			dict.NewBufferTree(maB).Apply(ops)
			maT := aem.New(cfg)
			dict.NewBTree(maT).Apply(ops)

			p := bounds.DictParamsFor(cfg, ops, keyspace)
			predB := bounds.DictBufferTreePredicted(p)
			predT := bounds.DictBTreePredicted(p)
			stB, stT := maB.Stats(), maT.Stats()
			t.AddRow(sc.String(), w,
				float64(stB.Writes)/float64(n),
				float64(maB.Cost())/float64(n),
				float64(maT.Cost())/float64(n),
				float64(maT.Cost())/float64(maB.Cost()),
				float64(stB.Reads)/predB.Reads,
				float64(stB.Writes)/predB.Writes,
				float64(stT.Reads)/predT.Reads,
				float64(stT.Writes)/predT.Writes)
		}
	}
	t.Notes = append(t.Notes,
		"bt w/op falls as ω grows — the ω·M root buffer batches more before restructuring: writes are deferred and absorbed (overwritten keys never descend)",
		"the B-tree's writes/op is constant, so its cost is ~affine in ω; the buffered/unbatched gap widens with ω, the paper's message in data-structure form",
		"m/p columns are measured/predicted Qr and Qw; the acceptance band is [0.5, 2]")
	return t
}

func expD2() *Table {
	t := &Table{
		ID:      "EXP-D2",
		Title:   "dictionary: amortized cost per op vs stream length",
		Claim:   "cost/op grows ~log N (tree height) for the buffer tree, stays below the B-tree",
		Columns: []string{"ops", "keys", "bt r/op", "bt w/op", "bt cost/op", "btree cost/op", "btree/bt", "bt r m/p", "bt w m/p"},
	}
	cfg := aem.Config{M: 256, B: 16, Omega: 8}
	for _, n := range []int{6000, 12000, 24000, 48000} {
		keyspace := n / 3
		ops := workload.DictOps(workload.NewRNG(Seed+15), workload.UniformOps, n, int64(keyspace))
		maB := aem.New(cfg)
		dict.NewBufferTree(maB).Apply(ops)
		maT := aem.New(cfg)
		dict.NewBTree(maT).Apply(ops)

		p := bounds.DictParamsFor(cfg, ops, keyspace)
		predB := bounds.DictBufferTreePredicted(p)
		stB := maB.Stats()
		t.AddRow(n, keyspace,
			float64(stB.Reads)/float64(n),
			float64(stB.Writes)/float64(n),
			float64(maB.Cost())/float64(n),
			float64(maT.Cost())/float64(n),
			float64(maT.Cost())/float64(maB.Cost()),
			float64(stB.Reads)/predB.Reads,
			float64(stB.Writes)/predB.Writes)
	}
	t.Notes = append(t.Notes,
		"the growing working set (keys = ops/3) deepens the tree; cost/op grows with the height, not the stream length",
		"ω = 8: the buffer tree stays under the baseline at every size")
	return t
}

func expM1() *Table {
	t := &Table{
		ID:      "EXP-M1",
		Title:   "ωm-way merge: measured I/O vs Theorem 3.2",
		Claim:   "reads = O(ω(n+m)), writes = O(n+m)",
		Columns: []string{"N", "omega", "reads", "writes", "reads/(w(n+m))", "writes/(n+m)"},
	}
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		for _, w := range []int{1, 4, 16, 64} {
			cfg := aem.Config{M: 128, B: 8, Omega: w}
			ma := aem.New(cfg)
			runs := sortedRuns(ma, n, cfg.MergeFanout())
			sorting.MergeRuns(ma, runs, sorting.MergeOptions{})
			st := ma.Stats()
			nb := float64(cfg.BlocksOf(n))
			mb := float64(cfg.BlocksInMemory())
			t.AddRow(n, w, st.Reads, st.Writes,
				float64(st.Reads)/(float64(w)*(nb+mb)),
				float64(st.Writes)/(nb+mb))
		}
	}
	t.Notes = append(t.Notes,
		"the two normalized columns are the Theorem 3.2 constants; flat ⇒ reproduced",
		"constants ≈4–6 for reads come from the two-block initialization of §3.1 (the paper pays the same)")
	return t
}

func expS1() *Table {
	t := &Table{
		ID:      "EXP-S1",
		Title:   "AEM mergesort: measured vs predicted cost",
		Claim:   "cost = O(ω·n·log_{ωm} n); reads/writes ≈ ω",
		Columns: []string{"N", "reads", "writes", "cost", "predicted", "meas/pred", "reads/writes", "base r/w", "merge r/w", "pointer r/w"},
	}
	cfg := aem.Config{M: 128, B: 8, Omega: 8}
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		ma := aem.New(cfg)
		in := workload.Keys(workload.NewRNG(Seed), workload.Random, n)
		sorting.MergeSort(ma, aem.Load(ma, in))
		st := ma.Stats()
		pred := bounds.MergeSortPredicted(bounds.Params{N: n, Cfg: cfg}).Cost(cfg.Omega)
		ph := ma.Phases()
		fmtPhase := func(name string) string {
			p := ph.Phase(name)
			return fmt.Sprintf("%d/%d", p.Reads, p.Writes)
		}
		t.AddRow(n, st.Reads, st.Writes, ma.Cost(), pred,
			float64(ma.Cost())/pred, float64(st.Reads)/float64(st.Writes),
			fmtPhase("base"), fmtPhase("merge"), fmtPhase("pointers"))
	}
	t.Notes = append(t.Notes,
		"meas/pred flat across N reproduces the Section 3 bound's shape",
		"phase columns (reads/writes) show where the I/O goes: pointer maintenance stays O(n) writes as §3.1 argues")
	return t
}

func expS2() *Table {
	t := &Table{
		ID:      "EXP-S2",
		Title:   "sorting algorithms across ω",
		Claim:   "AEM mergesort runs for every ω; the [7]-style merge dies for ω ≳ B; cost ratio to EM mergesort falls with ω",
		Columns: []string{"omega", "aem cost", "em cost", "samplesort", "heapsort", "aem/em", "aem writes", "em writes", "[7]-style"},
	}
	const n = 1 << 14
	in := workload.Keys(workload.NewRNG(Seed+1), workload.Random, n)
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		cfg := aem.Config{M: 128, B: 8, Omega: w}
		ma := aem.New(cfg)
		sorting.MergeSort(ma, aem.Load(ma, in))
		ma2 := aem.New(cfg)
		sorting.EMMergeSort(ma2, aem.Load(ma2, in))
		maS := aem.New(cfg)
		sorting.EMSampleSort(maS, aem.Load(maS, in), Seed)
		maH := aem.New(cfg)
		pq.HeapSort(maH, aem.Load(maH, in))

		legacy := "ok"
		func() {
			defer func() {
				if recover() != nil {
					legacy = "fails (ωm > M)"
				}
			}()
			ma3 := aem.New(cfg)
			sorting.MergeSortInMemoryPointers(ma3, aem.Load(ma3, in))
		}()

		t.AddRow(w, ma.Cost(), ma2.Cost(), maS.Cost(), maH.Cost(),
			float64(ma.Cost())/float64(ma2.Cost()),
			ma.Stats().Writes, ma2.Stats().Writes, legacy)
	}
	t.Notes = append(t.Notes,
		"the asymptotic log_m/log_ωm advantage needs deeper recursions than simulator scale; the falling ratio and the write column carry the paper's point",
		"the [7]-style merge failing at large ω is the assumption §3 removes")
	return t
}

func expB1() *Table {
	t := &Table{
		ID:      "EXP-B1",
		Title:   "small-sort base case",
		Claim:   "N′ ≤ ωM sorts in O(ω·n′) reads and exactly n′ writes",
		Columns: []string{"N'", "omega", "N'/M", "reads", "writes", "reads/n'", "writes/n'"},
	}
	for _, w := range []int{1, 4, 16} {
		cfg := aem.Config{M: 64, B: 8, Omega: w}
		for _, mult := range []int{1, w / 2, w} {
			if mult < 1 {
				continue
			}
			n := mult * cfg.M
			ma := aem.New(cfg)
			in := workload.Keys(workload.NewRNG(Seed+2), workload.Random, n)
			sorting.SmallSort(ma, aem.Load(ma, in))
			st := ma.Stats()
			nb := float64(cfg.BlocksOf(n))
			t.AddRow(n, w, mult, st.Reads, st.Writes,
				float64(st.Reads)/nb, float64(st.Writes)/nb)
		}
	}
	t.Notes = append(t.Notes, "reads/n' grows ~2·N'/M (selection passes) and writes/n' is exactly 1")
	return t
}

func expP1() *Table {
	t := &Table{
		ID:      "EXP-P1",
		Title:   "permuting: measured vs Theorem 4.5",
		Claim:   "best-of(direct,sort) tracks min{N, ω·n·log_{ωm} n} within a constant",
		Columns: []string{"N", "B", "omega", "direct", "sort", "best", "strategy", "closed LB", "counting LB", "wn floor", "best/maxLB"},
	}
	cases := []struct {
		n   int
		cfg aem.Config
	}{
		{1 << 12, aem.Config{M: 128, B: 8, Omega: 1}},
		{1 << 12, aem.Config{M: 128, B: 8, Omega: 8}},
		{1 << 12, aem.Config{M: 128, B: 8, Omega: 64}},
		{1 << 14, aem.Config{M: 128, B: 8, Omega: 8}},
		{1 << 12, aem.Config{M: 32, B: 2, Omega: 256}}, // N-term regime
		{1 << 14, aem.Config{M: 256, B: 32, Omega: 2}}, // sort-term regime
	}
	for _, c := range cases {
		items, perm := workload.Permutation(workload.NewRNG(Seed+3), c.n)

		maD := aem.New(c.cfg)
		permute.Direct(maD, aem.Load(maD, items), perm)
		maS := aem.New(c.cfg)
		permute.SortBased(maS, aem.Load(maS, items))
		maB := aem.New(c.cfg)
		_, strat := permute.Best(maB, aem.Load(maB, items), perm)

		p := bounds.Params{N: c.n, Cfg: c.cfg}
		closed := bounds.PermutingLowerBoundClosed(p)
		counting := bounds.CountingLowerBound(bounds.Params{N: c.n,
			Cfg: aem.Config{M: 2 * c.cfg.M, B: c.cfg.B, Omega: c.cfg.Omega}})
		// Writing the n output blocks costs ωn no matter what; combined
		// with Theorem 4.5 this floors every permuting program that must
		// materialize its output.
		wn := float64(c.cfg.Omega) * float64(c.cfg.BlocksOf(c.n))
		maxLB := closed
		if wn > maxLB {
			maxLB = wn
		}
		t.AddRow(c.n, c.cfg.B, c.cfg.Omega, maD.Cost(), maS.Cost(), maB.Cost(),
			strat.String(), closed, counting, wn, float64(maB.Cost())/maxLB)
	}
	t.Notes = append(t.Notes,
		"counting LB evaluated with 2M per Corollary 4.2 so it validly floors the measured algorithms",
		"strategy flips to direct exactly in the parameter corner where the bound's min{} picks N",
		"for ω ≫ B the binding floor is the trivial output-write cost ωn, not Theorem 4.5's min{}")
	return t
}

func expP2() *Table {
	t := &Table{
		ID:      "EXP-P2",
		Title:   "counting argument internals",
		Claim:   "R from inequality (1) ≈ closed form / (ωm)",
		Columns: []string{"N", "M", "B", "omega", "rounds R", "counting LB", "closed LB", "counting/closed"},
	}
	for _, n := range []int{1 << 16, 1 << 20} {
		for _, w := range []int{1, 8, 64} {
			for _, b := range []int{16, 64} {
				cfg := aem.Config{M: 1 << 10, B: b, Omega: w}
				p := bounds.Params{N: n, Cfg: cfg}
				r := bounds.CountingRounds(p)
				cnt := bounds.CountingLowerBound(p)
				closed := bounds.PermutingLowerBoundClosed(p)
				t.AddRow(n, cfg.M, b, w, r, cnt, closed, cnt/closed)
			}
		}
	}
	return t
}

func expR1() *Table {
	t := &Table{
		ID:      "EXP-R1",
		Title:   "Lemma 4.1: round-based conversion overhead",
		Claim:   "cost(P′) ≤ 3·cost(P) + O(ωm), placement preserved, rounds valid",
		Columns: []string{"kind", "N", "omega", "cost P", "cost P'", "factor", "rounds", "placement"},
	}
	addCase := func(kind string, p *program.Program) {
		orig, err := program.Run(p, program.RunOptions{})
		if err != nil {
			panic(fmt.Sprintf("harness: invalid base program: %v", err))
		}
		rb, err := program.ConvertToRoundBased(p)
		if err != nil {
			panic(fmt.Sprintf("harness: conversion: %v", err))
		}
		conv, err := program.Run(rb, program.RunOptions{})
		if err != nil {
			panic(fmt.Sprintf("harness: converted program: %v", err))
		}
		ok := "preserved"
		if !orig.Placement.Equal(conv.Placement) {
			ok = "BROKEN"
		}
		w := p.Cfg.Omega
		t.AddRow(kind, p.N, w, orig.Cost(w), conv.Cost(w),
			float64(conv.Cost(w))/float64(orig.Cost(w)), len(rb.RoundMarks), ok)
	}
	for _, n := range []int{256, 1024} {
		for _, w := range []int{2, 8} {
			cfg := aem.Config{M: 32, B: 4, Omega: w}
			_, perm := workload.Permutation(workload.NewRNG(Seed+4), n)
			p, err := program.FromPermutation(cfg, perm)
			if err != nil {
				panic(err)
			}
			addCase("permutation", p)
		}
	}
	for _, seed := range []uint64{Seed + 5, Seed + 6} {
		p := program.Random(workload.NewRNG(seed), aem.Config{M: 32, B: 4, Omega: 4}, 128, 400)
		addCase("random", p)
	}
	return t
}

func expF1() *Table {
	t := &Table{
		ID:      "EXP-F1",
		Title:   "Lemma 4.3: flash simulation volume",
		Claim:   "volume ≤ 2N + 2QB/ω; placement preserved",
		Columns: []string{"N", "B", "omega", "Q (AEM)", "volume", "bound", "volume/bound", "placement"},
	}
	for _, c := range []struct {
		cfg aem.Config
		n   int
	}{
		{aem.Config{M: 16, B: 4, Omega: 2}, 256},
		{aem.Config{M: 32, B: 8, Omega: 2}, 512},
		{aem.Config{M: 32, B: 8, Omega: 4}, 512},
		{aem.Config{M: 32, B: 8, Omega: 8}, 512},
		{aem.Config{M: 64, B: 16, Omega: 4}, 1024},
	} {
		_, perm := workload.Permutation(workload.NewRNG(Seed+7), c.n)
		p, err := program.FromPermutation(c.cfg, perm)
		if err != nil {
			panic(err)
		}
		rb, err := program.ConvertToRoundBased(p)
		if err != nil {
			panic(err)
		}
		want, err := program.Run(rb, program.RunOptions{})
		if err != nil {
			panic(err)
		}
		fp, err := flash.SimulateAEM(rb)
		if err != nil {
			panic(err)
		}
		res, err := flash.Run(fp)
		if err != nil {
			panic(err)
		}
		ok := "preserved"
		for a, addr := range want.Placement {
			if res.Placement[a] != addr {
				ok = "BROKEN"
				break
			}
		}
		bound := flash.VolumeBound(rb)
		t.AddRow(c.n, c.cfg.B, c.cfg.Omega, rb.Cost(), fp.Volume(), bound,
			float64(fp.Volume())/float64(bound), ok)
	}
	return t
}

func expF2() *Table {
	t := &Table{
		ID:      "EXP-F2",
		Title:   "reduction vs counting lower bound",
		Claim:   "reduction bound applies only for ω ≤ B; counting bound covers every ω",
		Columns: []string{"N", "B", "omega", "reduction LB", "counting LB", "closed LB"},
	}
	const n = 1 << 20
	for _, b := range []int{16, 64} {
		for _, w := range []int{1, 4, 16, 64, 256} {
			cfg := aem.Config{M: 1 << 10, B: b, Omega: w}
			p := bounds.Params{N: n, Cfg: cfg}
			red := bounds.ReductionLowerBound(p)
			redStr := fmtVal(red)
			if w > b {
				redStr = "n/a (ω>B)"
			}
			t.AddRow(n, b, w, redStr,
				bounds.CountingLowerBound(p), bounds.PermutingLowerBoundClosed(p))
		}
	}
	t.Notes = append(t.Notes, "this is the paper's remark that the counting bound is slightly stronger for some parameter ranges")
	return t
}

func expX1() *Table {
	t := &Table{
		ID:      "EXP-X1",
		Title:   "SpMxV: measured cost vs δ",
		Claim:   "naive and sorting-based bracket Theorem 5.1's bound; best follows the min{}",
		Columns: []string{"machine", "delta", "H", "naive", "sort", "best strat", "closed LB", "best/LB"},
	}
	const n = 1 << 11
	for _, cfg := range []aem.Config{
		{M: 128, B: 8, Omega: 4},  // write-averse machine: naive regime
		{M: 512, B: 32, Omega: 1}, // symmetric, big blocks: sorting regime
	} {
		for _, delta := range []int{1, 2, 4, 8, 16, 32} {
			rng := workload.NewRNG(Seed + 8)
			conf := workload.NewConformation(rng, n, delta)
			values := make([]int64, conf.H())
			for i := range values {
				values[i] = int64(rng.Intn(100))
			}
			x := make([]int64, n)
			for i := range x {
				x[i] = int64(rng.Intn(100))
			}

			maN := aem.New(cfg)
			mN := spmxv.NewMatrix(maN, conf, values)
			spmxv.Naive(maN, mN, spmxv.LoadDense(maN, x))

			maS := aem.New(cfg)
			mS := spmxv.NewMatrix(maS, conf, values)
			spmxv.SortBased(maS, mS, spmxv.LoadDense(maS, x))

			p := bounds.SpMxVParams{Params: bounds.Params{N: n, Cfg: cfg}, Delta: delta}
			lb := bounds.SpMxVLowerBoundClosed(p)
			best := maN.Cost()
			strat := "naive"
			if maS.Cost() < best {
				best = maS.Cost()
				strat = "sort"
			}
			t.AddRow(fmt.Sprintf("B=%d w=%d", cfg.B, cfg.Omega), delta, conf.H(), maN.Cost(), maS.Cost(), strat, lb, float64(best)/lb)
		}
	}
	t.Notes = append(t.Notes, "the two machines sit on opposite sides of Theorem 5.1's min{}: big blocks with symmetric cost favor sorting, write-averse machines favor the direct program")
	return t
}

func expX2() *Table {
	t := &Table{
		ID:      "EXP-X2",
		Title:   "SpMxV: measured cost vs ω",
		Claim:   "sorting-based scales ~ω; naive reads stay flat so large ω favors naive",
		Columns: []string{"omega", "naive", "sort", "naive/sort", "predicted best"},
	}
	const n, delta = 1 << 11, 4
	rng := workload.NewRNG(Seed + 9)
	conf := workload.NewConformation(rng, n, delta)
	values := make([]int64, conf.H())
	for i := range values {
		values[i] = int64(rng.Intn(100))
	}
	x := make([]int64, n)
	for i := range x {
		x[i] = int64(rng.Intn(100))
	}
	for _, w := range []int{1, 4, 16, 64, 256} {
		cfg := aem.Config{M: 128, B: 8, Omega: w}
		maN := aem.New(cfg)
		mN := spmxv.NewMatrix(maN, conf, values)
		spmxv.Naive(maN, mN, spmxv.LoadDense(maN, x))
		maS := aem.New(cfg)
		mS := spmxv.NewMatrix(maS, conf, values)
		spmxv.SortBased(maS, mS, spmxv.LoadDense(maS, x))

		p := bounds.SpMxVParams{Params: bounds.Params{N: n, Cfg: cfg}, Delta: delta}
		pred := "sort"
		if bounds.SpMxVNaivePredicted(p).Cost(w) <= bounds.SpMxVSortPredicted(p).Cost(w) {
			pred = "naive"
		}
		t.AddRow(w, maN.Cost(), maS.Cost(),
			float64(maN.Cost())/float64(maS.Cost()), pred)
	}
	return t
}

// sortedRuns builds k sorted runs totalling n random items on the machine.
func sortedRuns(ma *aem.Machine, n, k int) []*aem.Vector {
	all := workload.Keys(workload.NewRNG(Seed), workload.Random, n)
	per := (n + k - 1) / k
	var runs []*aem.Vector
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		chunk := make([]aem.Item, hi-lo)
		copy(chunk, all[lo:hi])
		sortChunk(chunk)
		runs = append(runs, aem.Load(ma, chunk))
	}
	return runs
}

func sortChunk(items []aem.Item) {
	if len(items) < 2 {
		return
	}
	mid := len(items) / 2
	left := make([]aem.Item, mid)
	copy(left, items[:mid])
	right := make([]aem.Item, len(items)-mid)
	copy(right, items[mid:])
	sortChunk(left)
	sortChunk(right)
	i, j := 0, 0
	for k := range items {
		if j >= len(right) || (i < len(left) && aem.Less(left[i], right[j])) {
			items[k] = left[i]
			i++
		} else {
			items[k] = right[j]
			j++
		}
	}
}

func expR2() *Table {
	t := &Table{
		ID:      "EXP-R2",
		Title:   "Lemma 4.1 applied to recorded algorithm traces",
		Claim:   "conversion factor O(1) on real executions; budget 3×Q + O(ωm)",
		Columns: []string{"algorithm", "N", "omega", "trace ops", "Q", "Q'", "factor", "rounds", "saved reads"},
	}
	cfg := aem.Config{M: 64, B: 8, Omega: 8}
	cases := []struct {
		name string
		n    int
		run  func(*aem.Machine, int)
	}{
		{"aem mergesort", 4096, func(ma *aem.Machine, n int) {
			in := workload.Keys(workload.NewRNG(Seed+10), workload.Random, n)
			sorting.MergeSort(ma, aem.Load(ma, in))
		}},
		{"em mergesort", 4096, func(ma *aem.Machine, n int) {
			in := workload.Keys(workload.NewRNG(Seed+11), workload.Random, n)
			sorting.EMMergeSort(ma, aem.Load(ma, in))
		}},
		{"em samplesort", 4096, func(ma *aem.Machine, n int) {
			in := workload.Keys(workload.NewRNG(Seed+12), workload.Random, n)
			sorting.EMSampleSort(ma, aem.Load(ma, in), Seed)
		}},
		{"spmxv sort-based", 512, func(ma *aem.Machine, n int) {
			conf := workload.NewConformation(workload.NewRNG(Seed+13), n, 4)
			vals := make([]int64, conf.H())
			x := make([]int64, n)
			m := spmxv.NewMatrix(ma, conf, vals)
			spmxv.SortBased(ma, m, spmxv.LoadDense(ma, x))
		}},
	}
	for _, c := range cases {
		ma := aem.New(cfg)
		ma.StartTrace()
		c.run(ma, c.n)
		ops := ma.StopTrace()
		conv := trace.Convert(ops, cfg)
		t.AddRow(c.name, c.n, cfg.Omega, len(ops), conv.Original, conv.Converted,
			conv.Factor(), conv.Rounds, conv.SavedReads)
	}
	t.Notes = append(t.Notes,
		"each recorded trace is exactly the paper's §2 notion of the program an algorithm induces on one input",
		"the ≈2.3 factor is the snapshot cost: each round re-parks up to m blocks of memory, roughly doubling the round's ωm budget — the constant the lemma's charging argument absorbs")
	return t
}

func expA1() *Table {
	t := &Table{
		ID:      "EXP-A1",
		Title:   "ablation: round-buffer size vs merge cost",
		Claim:   "cost grows as the round buffer shrinks (rounds × ωm init reads dominate)",
		Columns: []string{"buffer cap", "rounds", "reads", "writes", "cost", "cost vs full"},
	}
	cfg := aem.Config{M: 128, B: 8, Omega: 8}
	const n = 1 << 13
	full := int64(0)
	for _, capBuf := range []int{0, 32, 16, 8} { // 0 = auto (≈44 at this config)
		ma := aem.New(cfg)
		runs := sortedRuns(ma, n, cfg.MergeFanout())
		sorting.MergeRuns(ma, runs, sorting.MergeOptions{MaxBuffer: capBuf})
		st := ma.Stats()
		if capBuf == 0 {
			full = ma.Cost()
		}
		label, roundsCol := "auto", "-"
		if capBuf > 0 {
			label = fmtVal(capBuf)
			roundsCol = fmtVal((n + capBuf - 1) / capBuf)
		}
		t.AddRow(label, roundsCol, st.Reads, st.Writes, ma.Cost(),
			float64(ma.Cost())/float64(full))
	}
	t.Notes = append(t.Notes,
		"the paper's round structure outputs ~M items per round precisely to amortize the per-round ωm-read initialization; the ablation quantifies that choice")
	return t
}
