package workload

import (
	"testing"

	"repro/internal/aem"
)

func TestPQOpsContract(t *testing.T) {
	for _, sc := range PQScenarios() {
		for _, n := range []int{0, 1, 100, 5000} {
			ops := PQOps(NewRNG(9), sc, n)
			if len(ops) != n {
				t.Fatalf("%v n=%d: generated %d ops", sc, n, len(ops))
			}
			size := 0
			seen := map[int64]bool{}
			for i, op := range ops {
				switch op.Kind {
				case PQPush:
					if seen[op.Item.Aux] {
						t.Fatalf("%v op %d: duplicate Aux %d", sc, i, op.Item.Aux)
					}
					seen[op.Item.Aux] = true
					size++
				case PQDeleteMin:
					if size == 0 {
						t.Fatalf("%v op %d: DeleteMin on empty queue", sc, i)
					}
					size--
				default:
					t.Fatalf("%v op %d: bad kind %d", sc, i, op.Kind)
				}
			}
			p, d := PQOpMix(ops)
			if p+d != n || d > p {
				t.Fatalf("%v: mix %d/%d inconsistent with n=%d", sc, p, d, n)
			}
		}
	}
}

func TestPQOpsDeterministic(t *testing.T) {
	for _, sc := range PQScenarios() {
		a := PQOps(NewRNG(4), sc, 2000)
		b := PQOps(NewRNG(4), sc, 2000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: op %d differs between equal seeds", sc, i)
			}
		}
	}
}

// TestMonotonePQNeverSchedulesInThePast: the defining property of the
// event-simulation scenario — every push's key is strictly above the key
// of every already-consumed event.
func TestMonotonePQNeverSchedulesInThePast(t *testing.T) {
	ops := PQOps(NewRNG(6), MonotonePQ, 8000)
	var pending aem.ItemHeap
	clock := int64(-1)
	for i, op := range ops {
		if op.Kind == PQPush {
			if op.Item.Key <= clock {
				t.Fatalf("op %d: push at %d, clock already %d", i, op.Item.Key, clock)
			}
			pending.Push(op.Item)
		} else {
			clock = pending.Pop().Key
		}
	}
}

func TestPQScenarioStrings(t *testing.T) {
	want := map[PQScenario]string{MixedPQ: "mixed", SawtoothPQ: "sawtooth", MonotonePQ: "monotone"}
	for sc, s := range want {
		if sc.String() != s {
			t.Errorf("%d.String() = %q, want %q", sc, sc.String(), s)
		}
	}
	if PQScenario(99).String() == "" {
		t.Error("unknown scenario prints empty")
	}
}
