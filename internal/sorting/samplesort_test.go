package sorting_test

import (
	"testing"
	"testing/quick"

	"repro/internal/aem"
	"repro/internal/sorting"
	"repro/internal/workload"
)

func TestEMSampleSortCorrectness(t *testing.T) {
	for _, n := range []int{0, 1, 10, 100, 1000, 5000} {
		for _, dist := range workload.Dists() {
			cfg := aem.Config{M: 64, B: 4, Omega: 4}
			ma := aem.New(cfg)
			in := workload.Keys(workload.NewRNG(uint64(n)+17), dist, n)
			out := sorting.EMSampleSort(ma, aem.Load(ma, in), 99)
			checkSortResult(t, in, out)
			if ma.MemInUse() != 0 {
				t.Fatalf("n=%d dist=%v: leaked %d slots", n, dist, ma.MemInUse())
			}
		}
	}
}

func TestEMSampleSortDeterministic(t *testing.T) {
	cfg := aem.Config{M: 64, B: 8, Omega: 2}
	in := workload.Keys(workload.NewRNG(5), workload.Random, 2000)
	ma1 := aem.New(cfg)
	out1 := sorting.EMSampleSort(ma1, aem.Load(ma1, in), 7)
	ma2 := aem.New(cfg)
	out2 := sorting.EMSampleSort(ma2, aem.Load(ma2, in), 7)
	if ma1.Stats() != ma2.Stats() {
		t.Errorf("same seed, different cost: %+v vs %+v", ma1.Stats(), ma2.Stats())
	}
	a, b := out1.Materialize(), out2.Materialize()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different output")
		}
	}
}

func TestEMSampleSortCostClass(t *testing.T) {
	// Θ((1+ω)·n·log_m n): both reads and writes grow per level; the cost
	// class is the EM mergesort's, not the §3 mergesort's. We check the
	// read/write ratio stays O(1) (≈2–4 from the two scan passes), in
	// contrast to sorting.MergeSort's ≈ω.
	cfg := aem.Config{M: 128, B: 8, Omega: 32}
	ma := aem.New(cfg)
	in := workload.Keys(workload.NewRNG(6), workload.Random, 1<<14)
	sorting.EMSampleSort(ma, aem.Load(ma, in), 3)
	st := ma.Stats()
	ratio := float64(st.Reads) / float64(st.Writes)
	if ratio > 8 {
		t.Errorf("read/write ratio %.1f; distribution sort should be write-heavy (O(1))", ratio)
	}
	// And it must not be absurdly more expensive than the EM mergesort.
	ma2 := aem.New(cfg)
	sorting.EMMergeSort(ma2, aem.Load(ma2, in))
	if ma.Cost() > 4*ma2.Cost() {
		t.Errorf("samplesort cost %d > 4× EM mergesort %d", ma.Cost(), ma2.Cost())
	}
}

func TestEMSampleSortQuick(t *testing.T) {
	f := func(keys []int64, seed uint64) bool {
		cfg := aem.Config{M: 64, B: 4, Omega: 3}
		ma := aem.New(cfg)
		in := make([]aem.Item, len(keys))
		for i, k := range keys {
			in[i] = aem.Item{Key: k, Aux: int64(i)}
		}
		out := sorting.EMSampleSort(ma, aem.Load(ma, in), seed).Materialize()
		return sorting.IsSorted(out) && sorting.SameMultiset(in, out) && ma.MemInUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
