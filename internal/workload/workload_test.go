package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestRNGKnownValues(t *testing.T) {
	// Splitmix64 reference values for seed 0 (from the original public
	// domain implementation by Sebastiano Vigna).
	r := NewRNG(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Errorf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		seen := make(map[int]bool)
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if n <= 10 && len(seen) != n {
			t.Errorf("Intn(%d) hit only %d distinct values in 200 draws", n, len(seen))
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nSel uint8) bool {
		n := int(nSel%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeysDistributions(t *testing.T) {
	const n = 256
	for _, d := range Dists() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			items := Keys(NewRNG(1), d, n)
			if len(items) != n {
				t.Fatalf("got %d items", len(items))
			}
			for i, it := range items {
				if it.Aux != int64(i) {
					t.Fatalf("item %d has Aux %d, want original index", i, it.Aux)
				}
			}
			switch d {
			case Sorted:
				for i := 1; i < n; i++ {
					if items[i].Key < items[i-1].Key {
						t.Fatal("Sorted output not sorted")
					}
				}
			case Reversed:
				for i := 1; i < n; i++ {
					if items[i].Key > items[i-1].Key {
						t.Fatal("Reversed output not decreasing")
					}
				}
			case FewDistinct:
				for _, it := range items {
					if it.Key < 0 || it.Key >= 16 {
						t.Fatalf("FewDistinct key %d out of range", it.Key)
					}
				}
			}
		})
	}
}

func TestKeysDeterministic(t *testing.T) {
	a := Keys(NewRNG(5), Random, 100)
	b := Keys(NewRNG(5), Random, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different keys")
		}
	}
}

func TestPermutationInstance(t *testing.T) {
	items, p := Permutation(NewRNG(3), 64)
	if len(items) != 64 || len(p) != 64 {
		t.Fatalf("lengths %d, %d", len(items), len(p))
	}
	seen := make([]bool, 64)
	for i, it := range items {
		if it.Aux != int64(i) {
			t.Fatalf("atom %d has identity %d", i, it.Aux)
		}
		if it.Key != int64(p[i]) {
			t.Fatalf("atom %d has destination %d, p[i]=%d", i, it.Key, p[i])
		}
		if seen[p[i]] {
			t.Fatalf("destination %d repeated", p[i])
		}
		seen[p[i]] = true
	}
}

func TestConformationShape(t *testing.T) {
	f := func(seed uint64, nSel, dSel uint8) bool {
		n := 8 + int(nSel%56)
		delta := 1 + int(dSel)%n
		c := NewConformation(NewRNG(seed), n, delta)
		if c.H() != n*delta {
			return false
		}
		for col := 0; col < n; col++ {
			rows := c.Rows[col]
			if len(rows) != delta {
				return false
			}
			for k, r := range rows {
				if r < 0 || int(r) >= n {
					return false
				}
				if k > 0 && rows[k] <= rows[k-1] {
					return false // must be strictly increasing (distinct, sorted)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBandedConformation(t *testing.T) {
	c := BandedConformation(10, 3)
	if c.H() != 30 {
		t.Fatalf("H = %d", c.H())
	}
	// Column 8 wraps: rows {8, 9, 0} sorted → {0, 8, 9}.
	got := c.Rows[8]
	want := []int32{0, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("column 8 rows = %v, want %v", got, want)
		}
	}
}

func TestConformationPanicsOnBadDelta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for δ > N")
		}
	}()
	NewConformation(NewRNG(1), 4, 5)
}

func TestSortInt32LargeSlices(t *testing.T) {
	r := NewRNG(11)
	a := make([]int32, 500)
	for i := range a {
		a[i] = int32(r.Intn(100))
	}
	sortInt32(a)
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("sortInt32 failed on large slice")
		}
	}
}
