package harness

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
)

// sleepSpec is a single-point spec that sleeps and then emits one row —
// the minimal unit for scheduler-behavior tests.
func sleepSpec(id string, d time.Duration, body func()) *Spec {
	return &Spec{
		ID:      id,
		Columns: Cols("x"),
		Point: func(Point) Row {
			if body != nil {
				body()
			}
			time.Sleep(d)
			return Row{1}
		},
	}
}

// TestRunEmitsInOrder: emission order must be input order even when later
// experiments finish first.
func TestRunEmitsInOrder(t *testing.T) {
	const n = 8
	specs := make([]*Spec, n)
	for i := range specs {
		specs[i] = sleepSpec(fmt.Sprintf("T-%d", i), time.Duration(n-i)*time.Millisecond, nil)
	}
	var got []string
	Run(specs, n, func(tbl *Table) { got = append(got, tbl.ID) })
	for i, id := range got {
		if want := fmt.Sprintf("T-%d", i); id != want {
			t.Fatalf("emission %d = %s, want %s (full order %v)", i, id, want, got)
		}
	}
	if len(got) != n {
		t.Fatalf("emitted %d tables, want %d", len(got), n)
	}
}

// TestRunBoundsConcurrency: no more than par points may run at once, even
// across specs sharing the pool.
func TestRunBoundsConcurrency(t *testing.T) {
	const n, par = 12, 3
	var inFlight, peak int64
	specs := make([]*Spec, n)
	for i := range specs {
		specs[i] = sleepSpec(fmt.Sprintf("T-%d", i), 2*time.Millisecond, func() {
			cur := atomic.AddInt64(&inFlight, 1)
			for {
				old := atomic.LoadInt64(&peak)
				if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
					break
				}
			}
		})
		spec := specs[i]
		inner := spec.Point
		spec.Point = func(p Point) Row {
			defer atomic.AddInt64(&inFlight, -1)
			return inner(p)
		}
	}
	Run(specs, par, func(*Table) {})
	if p := atomic.LoadInt64(&peak); p > par {
		t.Fatalf("observed %d concurrent points, budget %d", p, par)
	}
}

// TestRunSchedulesPointsNotExperiments: one artificially slow experiment
// must spread its points across the pool, so total wall-clock stays
// measurably below the serial sum. The bound is deliberately coarse
// (half the serial sum, where perfect scheduling gives a quarter) to stay
// robust on loaded CI machines.
func TestRunSchedulesPointsNotExperiments(t *testing.T) {
	const points, sleep, par = 8, 40 * time.Millisecond, 4
	slow := &Spec{
		ID:      "SLOW",
		Axes:    []Axis{{Name: "i", Values: Ints(0, 1, 2, 3, 4, 5, 6, 7)}},
		Columns: Cols("i"),
		Point: func(p Point) Row {
			time.Sleep(sleep)
			return Row{p.Int("i")}
		},
	}
	start := time.Now()
	var rows int
	Run([]*Spec{slow}, par, func(tbl *Table) { rows = len(tbl.Rows) })
	elapsed := time.Since(start)
	if rows != points {
		t.Fatalf("emitted %d rows, want %d", rows, points)
	}
	serial := time.Duration(points) * sleep
	if elapsed >= serial/2 {
		t.Errorf("wall-clock %v not measurably below the serial sum %v at par %d — points not scheduled individually", elapsed, serial, par)
	}
}

// TestRunPanicPropagates: a panicking experiment must not deadlock the
// pool, and the panic must surface with the experiment's ID.
func TestRunPanicPropagates(t *testing.T) {
	specs := []*Spec{
		sleepSpec("OK-1", 0, nil),
		{ID: "BOOM", Columns: Cols("x"), Point: func(Point) Row { panic("kaput") }},
		sleepSpec("OK-2", 0, nil),
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "BOOM") || !strings.Contains(msg, "kaput") {
			t.Fatalf("panic %q lacks experiment context", msg)
		}
	}()
	Run(specs, 2, func(*Table) {})
}

// TestRunAggregatesAllFailures: with several failing experiments the
// final panic must name every failed experiment ID, not just the first,
// and tables ahead of the first failure must still be emitted.
func TestRunAggregatesAllFailures(t *testing.T) {
	specs := []*Spec{
		sleepSpec("OK-1", 0, nil),
		{ID: "BOOM-1", Columns: Cols("x"), Point: func(Point) Row { panic("first failure") }},
		sleepSpec("OK-2", 0, nil),
		{ID: "BOOM-2", Columns: Cols("x"), Point: func(Point) Row { panic("second failure") }},
	}
	var emitted []string
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic despite two failing experiments")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{"BOOM-1", "first failure", "BOOM-2", "second failure"} {
			if !strings.Contains(msg, want) {
				t.Errorf("aggregated panic %q is missing %q", msg, want)
			}
		}
		if len(emitted) != 1 || emitted[0] != "OK-1" {
			t.Errorf("emitted %v, want the deterministic prefix [OK-1]", emitted)
		}
	}()
	Run(specs, 4, func(tbl *Table) { emitted = append(emitted, tbl.ID) })
}

// TestRunEnumerationPanicCarriesID: a panic inside grid enumeration (a
// Dyn axis or Skip hook — spec-authored code) must be reported with the
// experiment's ID like any point failure, and must not block the
// deterministic prefix ahead of it.
func TestRunEnumerationPanicCarriesID(t *testing.T) {
	specs := []*Spec{
		sleepSpec("OK-1", 0, nil),
		{
			ID:      "BAD-GRID",
			Axes:    []Axis{{Name: "x", Dyn: func(Point) []interface{} { panic("axis exploded") }}},
			Columns: Cols("x"),
			Point:   func(p Point) Row { return Row{p.Int("x")} },
		},
		sleepSpec("OK-2", 0, nil),
	}
	var emitted []string
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("enumeration panic did not propagate")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "BAD-GRID") || !strings.Contains(msg, "axis exploded") {
			t.Fatalf("panic %q lacks the failing experiment's ID", msg)
		}
		if len(emitted) != 1 || emitted[0] != "OK-1" {
			t.Errorf("emitted %v, want the deterministic prefix [OK-1]", emitted)
		}
	}()
	Run(specs, 4, func(tbl *Table) { emitted = append(emitted, tbl.ID) })
}

// runQuiet renders the specs at the given par, capturing a panic (the
// failure-path output) instead of propagating it.
func runQuiet(specs []*Spec, par int) (out []byte, failure string) {
	var buf bytes.Buffer
	func() {
		defer func() {
			if r := recover(); r != nil {
				failure = fmt.Sprint(r)
			}
		}()
		Run(specs, par, func(tbl *Table) { tbl.Render(&buf) })
	}()
	return buf.Bytes(), failure
}

// TestRunRandomizedParByteIdentity is the scheduler's property test:
// across randomized par values, emitted bytes must be byte-identical to
// par 1 — including with a panic-injecting spec in the mix, where the
// emitted prefix and the aggregated failure message must also be stable.
func TestRunRandomizedParByteIdentity(t *testing.T) {
	mkSpecs := func(withPanic bool) []*Spec {
		grid := &Spec{
			ID:    "GRID",
			Title: "synthetic multi-axis grid",
			Axes: []Axis{
				{Name: "a", Values: Ints(1, 2, 3)},
				{Name: "b", Values: Ints(10, 20, 30, 40)},
				{Name: "c", Dyn: func(outer Point) []interface{} { return Ints(0, outer.Int("a")) }},
			},
			Skip: func(p Point) bool { return p.Int("b") == 30 && p.Int("c") == 0 },
			Columns: append(Cols("a", "b", "c", "sum"),
				Column{Name: "ratio", Pred: func(p Point) float64 { return float64(p.Int("b")) }}),
			Derived: []DerivedColumn{
				{Name: "vs first", From: func(rows []Row, i int) interface{} {
					return toFloat(rows[i][3]) / toFloat(rows[0][3])
				}},
			},
			Point: func(p Point) Row {
				s := p.Int("a") + p.Int("b") + p.Int("c")
				return Row{p.Int("a"), p.Int("b"), p.Int("c"), s, s}
			},
		}
		specs := []*Spec{grid}
		if withPanic {
			bomb := &Spec{
				ID:      "BOMB",
				Axes:    []Axis{{Name: "i", Values: Ints(0, 1, 2, 3, 4, 5)}},
				Columns: Cols("i"),
				Point: func(p Point) Row {
					if p.Int("i") >= 3 {
						panic(fmt.Sprintf("injected at %d", p.Int("i")))
					}
					return Row{p.Int("i")}
				},
			}
			specs = append(specs, bomb, sleepSpec("AFTER", 0, nil))
		}
		return specs
	}

	for _, withPanic := range []bool{false, true} {
		wantOut, wantFail := runQuiet(mkSpecs(withPanic), 1)
		if withPanic == (wantFail == "") {
			t.Fatalf("withPanic=%v but failure=%q", withPanic, wantFail)
		}
		r := rng.New(42)
		for trial := 0; trial < 12; trial++ {
			par := 2 + int(r.Intn(15))
			out, fail := runQuiet(mkSpecs(withPanic), par)
			if !bytes.Equal(out, wantOut) {
				t.Fatalf("withPanic=%v par=%d: output differs from par=1", withPanic, par)
			}
			if fail != wantFail {
				t.Fatalf("withPanic=%v par=%d: failure %q != par=1 failure %q", withPanic, par, fail, wantFail)
			}
		}
	}
}

// TestParallelHarnessDeterminism renders a set of real experiments at
// par=1 and par=8 and demands byte-identical output — the acceptance
// criterion behind aem bench's -par flag. Fast, bounds-oriented
// experiments keep the test snappy; every experiment derives its inputs
// from fixed seeds, so any divergence means shared mutable state.
func TestParallelHarnessDeterminism(t *testing.T) {
	ids := []string{"EXP-B1", "EXP-P2", "EXP-F2", "EXP-R1"}
	var specs []*Spec
	for _, id := range ids {
		s, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		specs = append(specs, s)
	}
	render := func(par int) []byte {
		var buf bytes.Buffer
		Run(specs, par, func(tbl *Table) { tbl.Render(&buf) })
		return buf.Bytes()
	}
	seq := render(1)
	parl := render(8)
	if !bytes.Equal(seq, parl) {
		t.Fatalf("par=1 and par=8 outputs differ:\n--- par=1 ---\n%s\n--- par=8 ---\n%s", seq, parl)
	}
	if len(seq) == 0 {
		t.Fatal("experiments rendered nothing")
	}
}

// TestRunAllCoversEveryExperiment: RunAll returns one table per registered
// experiment, in index order.
func TestRunAllCoversEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is multi-second")
	}
	tables := RunAll(8)
	all := All()
	if len(tables) != len(all) {
		t.Fatalf("RunAll returned %d tables for %d experiments", len(tables), len(all))
	}
	for i, tbl := range tables {
		if tbl.ID != all[i].ID {
			t.Errorf("table %d is %s, want %s", i, tbl.ID, all[i].ID)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", tbl.ID)
		}
	}
}
