package cli

import (
	"flag"
	"fmt"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/sorting"
	"repro/internal/workload"
)

// sortCmd sorts a generated workload on a simulated (M,B,ω)-AEM machine
// and reports the measured I/O cost next to the paper's bounds.
//
//	aem sort -n 65536 -m 1024 -b 32 -omega 16 -alg aem -dist random
//
// Algorithms: aem (the Section 3 mergesort), em (symmetric-EM mergesort
// baseline), small (the [7, Lemma 4.2] base case; requires N ≤ ωM).
func sortCmd(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		n       = fs.Int("n", 1<<16, "number of items to sort")
		machine = machineFlags(fs, 1024, 32, 16)
		alg     = fs.String("alg", "aem", "algorithm: aem | em | small")
		dist    = fs.String("dist", "random", "key distribution: random | sorted | reversed | fewdistinct | nearlysorted")
		seed    = fs.Uint64("seed", 1, "workload seed")
	)
	fs.Parse(args)

	cfg, err := machine()
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}
	kd, found := workload.DistByName(*dist)
	if !found {
		fail(prog, "unknown distribution %q", *dist)
		return 2
	}

	ma := aem.New(cfg)
	in := workload.Keys(workload.NewRNG(*seed), kd, *n)
	v := aem.Load(ma, in)

	var out *aem.Vector
	switch *alg {
	case "aem":
		out = sorting.MergeSort(ma, v)
	case "em":
		out = sorting.EMMergeSort(ma, v)
	case "small":
		if *n > cfg.Omega*cfg.M {
			fail(prog, "small sort needs N ≤ ωM = %d", cfg.Omega*cfg.M)
			return 2
		}
		out = sorting.SmallSort(ma, v)
	default:
		fail(prog, "unknown algorithm %q", *alg)
		return 2
	}

	if !sorting.IsSorted(out.Materialize()) {
		fail(prog, "output NOT sorted — simulator bug")
		return 1
	}

	st := ma.Stats()
	p := bounds.Params{N: *n, Cfg: cfg}
	pred := bounds.MergeSortPredicted(p)
	lb := bounds.SortingLowerBoundClosed(p)

	fmt.Printf("machine      (M=%d, B=%d, ω=%d)-AEM   m=%d  merge fanout ωm=%d\n",
		cfg.M, cfg.B, cfg.Omega, cfg.BlocksInMemory(), cfg.MergeFanout())
	fmt.Printf("workload     N=%d %s (seed %d)\n", *n, kd, *seed)
	fmt.Printf("algorithm    %s\n", *alg)
	fmt.Printf("reads        %d\n", st.Reads)
	fmt.Printf("writes       %d\n", st.Writes)
	fmt.Printf("cost Q       %d   (= reads + ω·writes)\n", ma.Cost())
	fmt.Printf("verified     output sorted, %d items\n", out.Len())
	fmt.Printf("predicted    %.0f reads, %.0f writes (§3 mergesort formula)\n", pred.Reads, pred.Writes)
	fmt.Printf("lower bound  %.0f   (Theorem 4.5: min{N, ω·n·log_ωm n})\n", lb)
	fmt.Printf("Q / LB       %.2f\n", float64(ma.Cost())/lb)
	return 0
}
