//go:build linux

package aem

import (
	"os"
	"syscall"
)

// Linux gets both real-I/O paths: shared writable mappings for the mmap
// mode and O_DIRECT for the direct mode. Other platforms fall back to
// buffered positional I/O (see filestorage_portable.go).

// mmapSupported gates FileMmap's zero-syscall transfer path.
const mmapSupported = true

// directOpenFlag is OR'd into the open flags of FileDirect engines; a
// filesystem that rejects it (tmpfs) falls back to buffered I/O at open.
const directOpenFlag = syscall.O_DIRECT

// mmapFile maps length bytes of f read/write, shared with the file.
func mmapFile(f *os.File, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, length, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
