package dictsrv

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is one bucket per power of two of nanoseconds: bucket i
// holds durations in [2^(i-1), 2^i) ns (bucket 0 holds 0 ns). 64 buckets
// cover every representable int64 duration.
const histBuckets = 64

// Hist is a merged, read-only histogram of commit-path stalls in
// nanoseconds, power-of-two bucketed. It is what Stats hands back; the
// shards record into atomic counterparts (stallHist) so the histogram is
// exact at any time, not just at quiescence.
type Hist struct {
	Counts [histBuckets]int64
	N      int64
	MaxNS  int64
}

// Quantile returns an upper bound for the q-quantile stall (0 < q ≤ 1):
// the top of the bucket holding the nearest-rank sample, clamped to the
// observed maximum. Zero if nothing was recorded.
func (h *Hist) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	rank := int64(q*float64(h.N) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.N {
		rank = h.N
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			hi := h.MaxNS
			if i > 0 && i < 63 {
				// Bucket upper bound, exclusive; i = 63 would overflow
				// and bucket 0 holds only zeros.
				if b := int64(1) << uint(i); b < hi {
					hi = b
				}
			} else if i == 0 {
				hi = 0
			}
			return hi
		}
	}
	return h.MaxNS
}

// merge folds another histogram in (Stats aggregation across shards).
func (h *Hist) merge(o Hist) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.N += o.N
	if o.MaxNS > h.MaxNS {
		h.MaxNS = o.MaxNS
	}
}

// stallHist is the shard-side recorder: single writer (the committer),
// atomically readable at any time.
type stallHist struct {
	counts [histBuckets]atomic.Int64
	n      atomic.Int64
	max    atomic.Int64
}

func (h *stallHist) record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bits.Len64(uint64(ns))].Add(1)
	h.n.Add(1)
	if ns > h.max.Load() { // single writer: plain check-then-store
		h.max.Store(ns)
	}
}

func (h *stallHist) snapshot() Hist {
	var out Hist
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	out.N = h.n.Load()
	out.MaxNS = h.max.Load()
	return out
}
