// Native Go fuzz target for the §3 mergesort: byte inputs decode into a
// machine corner and an item array (with deliberate duplicate items —
// splitmix-generated workloads never produce those, fuzzing does). Every
// execution checks correctness on both data-bearing engines, byte-equal
// I/O accounting between them, and that the measured cost stays inside
// the paper's bound corridor: above the §4 counting lower bound and below
// a constant multiple of the §3 predicted upper bound.
package sorting_test

import (
	"testing"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/sorting"
	"repro/internal/workload"
)

var fuzzSortConfigs = []aem.Config{
	{M: 64, B: 8, Omega: 4},
	{M: 128, B: 8, Omega: 64},
	{M: 32, B: 1, Omega: 16},
	{M: 64, B: 8, Omega: 1},
	{M: 256, B: 32, Omega: 2},
}

func decodeItems(data []byte) (aem.Config, []aem.Item) {
	if len(data) < 2 {
		return fuzzSortConfigs[0], nil
	}
	cfg := fuzzSortConfigs[int(data[0])%len(fuzzSortConfigs)]
	auxMod := int64(data[1]%8) + 1 // small Aux domains force duplicate items
	data = data[2:]
	if len(data) > 2*2048 {
		data = data[:2*2048]
	}
	items := make([]aem.Item, 0, len(data)/2)
	for i := 0; i+2 <= len(data); i += 2 {
		items = append(items, aem.Item{
			Key: int64(int16(uint16(data[i])<<8 | uint16(data[i+1]))),
			Aux: int64(i/2) % auxMod,
		})
	}
	return cfg, items
}

func FuzzMergeSortStats(f *testing.F) {
	for i, dist := range workload.Dists() {
		items := workload.Keys(workload.NewRNG(uint64(i)+40), dist, 800)
		data := []byte{byte(i), byte(i * 3)}
		for _, it := range items {
			data = append(data, byte(uint16(it.Key)>>8), byte(it.Key))
		}
		f.Add(data)
	}
	f.Add([]byte{2, 0, 1, 1, 1, 1, 1, 1}) // tiny duplicate-heavy input

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, items := decodeItems(data)
		if len(items) == 0 {
			return
		}
		var refOut []aem.Item
		var refStats aem.Stats
		for ei, mk := range []func() aem.Storage{
			func() aem.Storage { return aem.NewSliceStorage() },
			func() aem.Storage { return aem.NewArenaStorage(cfg.B) },
		} {
			ma := aem.NewWithStorage(cfg, mk())
			out := sorting.MergeSort(ma, aem.Load(ma, items)).Materialize()
			if !sorting.IsSorted(out) {
				t.Fatal("output not sorted")
			}
			if !sorting.SameMultiset(items, out) {
				t.Fatal("output multiset differs from input")
			}
			if ma.MemPeak() > cfg.M {
				t.Fatalf("memory peak %d exceeds M = %d", ma.MemPeak(), cfg.M)
			}

			p := bounds.Params{N: len(items), Cfg: cfg}
			lb := bounds.CountingLowerBound(bounds.Params{N: len(items),
				Cfg: aem.Config{M: 2 * cfg.M, B: cfg.B, Omega: cfg.Omega}})
			if float64(ma.Cost()) < lb {
				t.Fatalf("cost %d beats the counting lower bound %.0f — accounting broken", ma.Cost(), lb)
			}
			pred := bounds.MergeSortPredicted(p).Cost(cfg.Omega)
			slack := 10*pred + 100*float64(cfg.Omega*cfg.BlocksInMemory())
			if float64(ma.Cost()) > slack {
				t.Fatalf("cost %d blows the predicted corridor (%.0f)", ma.Cost(), slack)
			}

			if ei == 0 {
				refOut, refStats = out, ma.Stats()
				continue
			}
			if ma.Stats() != refStats {
				t.Fatalf("engines disagree on stats: %+v vs %+v", ma.Stats(), refStats)
			}
			for i := range out {
				if out[i] != refOut[i] {
					t.Fatalf("engines disagree on output at %d", i)
				}
			}
		}
	})
}
