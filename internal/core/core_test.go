package core

import (
	"testing"

	"repro/internal/workload"
)

// TestFacadeEndToEnd exercises the whole public surface the way the
// README's quickstart does: build a machine, sort, permute, multiply,
// run the proof pipeline, and compare against the bounds.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := Config{M: 128, B: 8, Omega: 4}
	ma := NewMachine(cfg)

	// Sort.
	in := workload.Keys(workload.NewRNG(1), workload.Random, 4096)
	out := Sort(ma, Load(ma, in))
	items := out.Materialize()
	for i := 1; i < len(items); i++ {
		if items[i].Key < items[i-1].Key {
			t.Fatal("Sort output not sorted")
		}
	}
	cost := float64(ma.Cost())
	lb := SortingLowerBound(BoundParams{N: 4096, Cfg: cfg})
	if cost < lb {
		t.Errorf("sort cost %v below lower bound %v", cost, lb)
	}

	// Permute.
	ma2 := NewMachine(cfg)
	atoms, perm := workload.Permutation(workload.NewRNG(2), 2048)
	v := Load(ma2, atoms)
	permuted, _ := Permute(ma2, v, perm)
	if permuted.Len() != 2048 {
		t.Fatal("Permute lost items")
	}

	// SpMxV.
	ma3 := NewMachine(cfg)
	conf := workload.NewConformation(workload.NewRNG(3), 256, 4)
	values := make([]int64, conf.H())
	for i := range values {
		values[i] = int64(i % 7)
	}
	x := make([]int64, 256)
	for i := range x {
		x[i] = int64(i % 5)
	}
	mat := NewSparseMatrix(ma3, conf, values)
	y, _ := SpMxV(ma3, mat, LoadDenseVector(ma3, x))
	if y.Len() != 256 {
		t.Fatal("SpMxV output wrong length")
	}

	// Proof pipeline: program → round-based → flash.
	_, smallPerm := workload.Permutation(workload.NewRNG(4), 64)
	prog, err := ProgramFromPermutation(Config{M: 16, B: 4, Omega: 2}, smallPerm)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ToRoundBased(prog)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := ToFlash(rb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFlash(fp); err != nil {
		t.Fatal(err)
	}
}
