package dict

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/aem"
)

// BTree is the unbatched baseline dictionary: a classic B-tree with one
// external block per node, applied one operation at a time. Every lookup
// or update reads the whole root-to-leaf path (Θ(log_B N) reads) and every
// update rewrites its leaf block immediately — one write, costing ω, per
// Insert/Delete. It is deliberately oblivious to ω, exactly like the
// symmetric-EM mergesort baseline next to the §3 mergesort: the experiment
// tables show its cost growing ~linearly in ω while the buffer tree's
// grows sublinearly.
//
// Node layout (one block each):
//   - leaf: up to B entries Item{Key: key, Aux: value}, sorted by key;
//   - internal: up to B routers Item{Key: separator, Aux: child address},
//     sorted; child i covers keys in [sep[i], sep[i+1]). Every router key
//     is the true lower bound of its subtree (math.MinInt64 for the
//     leftmost), which keeps split positions correct no matter what keys
//     arrive later.
//
// Deletions remove entries but never merge nodes (the classic teaching
// simplification): underfull or empty leaves persist, which wastes at most
// the blocks already allocated and keeps every operation a single
// root-to-leaf pass.
type BTree struct {
	ma   *aem.Machine
	cfg  aem.Config
	root aem.Addr
	n    int // live keys

	frame     []aem.Item // scratch block frame for the current node
	path      []aem.Addr // root-to-leaf addresses of the last descent
	internals addrSet    // which blocks are internal nodes (program bookkeeping)
}

// addrSet tracks which block addresses are internal nodes — program
// bookkeeping, like aem.Vector's base address; the data in the nodes moves
// only through costed I/O.
type addrSet map[aem.Addr]struct{}

// NewBTree returns an empty baseline dictionary. It requires B ≥ 4 (an
// internal node must hold at least two routers, and splits need headroom)
// and M ≥ 4B (a handful of resident block frames).
func NewBTree(ma *aem.Machine) *BTree {
	cfg := ma.Config()
	if cfg.B < 4 {
		panic(fmt.Sprintf("dict: BTree needs B ≥ 4, got B=%d", cfg.B))
	}
	if cfg.M < 4*cfg.B {
		panic(fmt.Sprintf("dict: BTree needs M ≥ 4B, got M=%d B=%d", cfg.M, cfg.B))
	}
	t := &BTree{ma: ma, cfg: cfg}
	t.root = ma.Alloc(1)
	t.ma.Write(t.root, nil) // the empty root leaf
	return t
}

// Len implements Dict.
func (t *BTree) Len() int { return t.n }

// Flush implements Dict: a B-tree has nothing buffered.
func (t *BTree) Flush() {}

// Apply implements Dict, processing each operation immediately.
func (t *BTree) Apply(ops []Op) []Result {
	var results []Result
	for _, op := range ops {
		switch op.Kind {
		case Insert:
			checkValue(op.Value)
			t.insert(op.Key, op.Value)
		case Delete:
			t.delete(op.Key)
		case Lookup:
			v, ok := t.lookup(op.Key)
			results = append(results, Result{OK: ok, Value: v})
		case RangeScan:
			results = append(results, Result{Hits: t.scan(op.Key, op.Hi)})
		default:
			panic(fmt.Sprintf("dict: unknown op kind %v", op.Kind))
		}
	}
	return results
}

// descend walks from the root to the leaf covering key, recording the path
// and leaving the leaf's contents in t.frame. One costed read per level.
func (t *BTree) descend(key int64) []aem.Item {
	t.path = t.path[:0]
	a := t.root
	for {
		t.path = append(t.path, a)
		blk := t.readNode(a)
		if t.isLeafBlock(a) {
			return blk
		}
		// Route: last router with sep ≤ key.
		i := sort.Search(len(blk)-1, func(j int) bool { return key < blk[j+1].Key })
		a = aem.Addr(blk[i].Aux)
	}
}

// internalNodes records internal block addresses (program bookkeeping).
func (t *BTree) isLeafBlock(a aem.Addr) bool {
	_, ok := t.internalNodes()[a]
	return !ok
}

func (t *BTree) internalNodes() addrSet {
	if t.internals == nil {
		t.internals = make(addrSet)
	}
	return t.internals
}

// readNode reads block a into the tree's resident frame (Reserve'd for the
// duration of the operation by the caller of lookup/insert/delete).
func (t *BTree) readNode(a aem.Addr) []aem.Item {
	if cap(t.frame) < t.cfg.B {
		t.frame = make([]aem.Item, t.cfg.B)
	}
	return t.ma.ReadInto(a, t.frame[:t.cfg.B])
}

func (t *BTree) lookup(key int64) (int64, bool) {
	t.ma.Reserve(t.cfg.B)
	defer t.ma.Release(t.cfg.B)
	leaf := t.descend(key)
	i := sort.Search(len(leaf), func(j int) bool { return leaf[j].Key >= key })
	if i < len(leaf) && leaf[i].Key == key {
		return leaf[i].Aux, true
	}
	return 0, false
}

func (t *BTree) insert(key, value int64) {
	t.ma.Reserve(2 * t.cfg.B) // node frame + split scratch
	defer t.ma.Release(2 * t.cfg.B)
	leaf := t.descend(key)
	i := sort.Search(len(leaf), func(j int) bool { return leaf[j].Key >= key })
	if i < len(leaf) && leaf[i].Key == key {
		leaf[i].Aux = value // overwrite in place
		t.ma.Write(t.path[len(t.path)-1], leaf)
		return
	}
	ent := make([]aem.Item, 0, t.cfg.B+1)
	ent = append(ent, leaf[:i]...)
	ent = append(ent, aem.Item{Key: key, Aux: value})
	ent = append(ent, leaf[i:]...)
	t.n++
	t.writeOrSplit(len(t.path)-1, ent)
}

// writeOrSplit stores the (possibly overfull) entries at path level lvl,
// splitting up the recorded path as needed.
func (t *BTree) writeOrSplit(lvl int, ent []aem.Item) {
	a := t.path[lvl]
	if len(ent) <= t.cfg.B {
		t.ma.Write(a, ent)
		return
	}
	// Split: right half moves to a fresh block.
	mid := len(ent) / 2
	right := t.ma.Alloc(1)
	sep := ent[mid].Key
	t.ma.Write(right, ent[mid:])
	if _, internal := t.internalNodes()[a]; internal {
		t.internalNodes()[right] = struct{}{}
	}

	if lvl == 0 {
		// Grow a new root above the two halves. The old root keeps its
		// address (t.root is stable program bookkeeping) — move its left
		// half to a fresh block instead.
		left := t.ma.Alloc(1)
		t.ma.Write(left, ent[:mid])
		if _, internal := t.internalNodes()[a]; internal {
			t.internalNodes()[left] = struct{}{}
		}
		t.internalNodes()[a] = struct{}{}
		t.ma.Write(a, []aem.Item{
			{Key: math.MinInt64, Aux: int64(left)},
			{Key: sep, Aux: int64(right)},
		})
		return
	}

	t.ma.Write(a, ent[:mid])
	parent := t.readNode(t.path[lvl-1])
	pi := sort.Search(len(parent), func(j int) bool { return parent[j].Key > sep })
	up := make([]aem.Item, 0, t.cfg.B+1)
	up = append(up, parent[:pi]...)
	up = append(up, aem.Item{Key: sep, Aux: int64(right)})
	up = append(up, parent[pi:]...)
	t.writeOrSplit(lvl-1, up)
}

func (t *BTree) delete(key int64) {
	t.ma.Reserve(t.cfg.B)
	defer t.ma.Release(t.cfg.B)
	leaf := t.descend(key)
	i := sort.Search(len(leaf), func(j int) bool { return leaf[j].Key >= key })
	if i >= len(leaf) || leaf[i].Key != key {
		return // absent: read-only no-op
	}
	out := make([]aem.Item, 0, len(leaf)-1)
	out = append(out, leaf[:i]...)
	out = append(out, leaf[i+1:]...)
	t.n--
	t.ma.Write(t.path[len(t.path)-1], out)
}

// scan returns the live pairs with lo ≤ key < hi via a depth-first walk of
// the subtrees intersecting the interval.
func (t *BTree) scan(lo, hi int64) []Found {
	t.ma.Reserve(t.cfg.B)
	defer t.ma.Release(t.cfg.B)
	var hits []Found
	t.scanNode(t.root, lo, hi, &hits)
	return hits
}

func (t *BTree) scanNode(a aem.Addr, lo, hi int64, hits *[]Found) {
	blk := t.readNode(a)
	if t.isLeafBlock(a) {
		for _, it := range blk {
			if lo <= it.Key && it.Key < hi {
				*hits = append(*hits, Found{Key: it.Key, Value: it.Aux})
			}
		}
		return
	}
	// Child i covers [blk[i].Key, blk[i+1].Key); router keys are true
	// lower bounds, so interval tests need no special casing.
	kids := make([]aem.Addr, 0, len(blk))
	for i := range blk {
		if i+1 < len(blk) && lo >= blk[i+1].Key {
			continue
		}
		if i > 0 && hi <= blk[i].Key {
			continue
		}
		kids = append(kids, aem.Addr(blk[i].Aux))
	}
	for _, kid := range kids {
		t.scanNode(kid, lo, hi, hits)
	}
}
