package workload

import "strings"

// Name-based lookups over the generator registries, for CLI flags and
// declarative spec axes: every generator family is enumerable (Dists,
// Scenarios, PQScenarios) and resolvable from its table/flag name.

// DistByName resolves a key distribution from its name (as printed by
// String), case-insensitively.
func DistByName(name string) (KeyDist, bool) {
	for _, d := range Dists() {
		if d.String() == strings.ToLower(name) {
			return d, true
		}
	}
	return 0, false
}

// ScenarioByName resolves a dictionary op-stream scenario from its name,
// case-insensitively.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.String() == strings.ToLower(name) {
			return s, true
		}
	}
	return 0, false
}

// PQScenarioByName resolves a priority-queue op-stream scenario from its
// name, case-insensitively.
func PQScenarioByName(name string) (PQScenario, bool) {
	for _, s := range PQScenarios() {
		if s.String() == strings.ToLower(name) {
			return s, true
		}
	}
	return 0, false
}
