package pq

import (
	"container/heap"
	"testing"

	"repro/internal/aem"
	"repro/internal/workload"
)

// TestCompactStrandedSingleRunRepro reproduces the compaction panic on a
// small machine (M = 16B): push bursts alternating with deep partial
// drains leave single, mostly-consumed runs stranded at distinct levels,
// until a flush finds the run budget exceeded with no multi-run level for
// the level-local pass to merge. Before the cross-level fallback this
// pattern panicked with "9 live runs exceed budget 8 after compaction"
// (seed 1, within ~120 phases); now both queues must survive it with the
// reference heap's exact answers.
func TestCompactStrandedSingleRunRepro(t *testing.T) {
	cfg := aem.Config{M: 64, B: 4, Omega: 2} // M = 16B
	queues := map[string]func(*aem.Machine) minQueue{
		"sequence": func(ma *aem.Machine) minQueue { return New(ma) },
		"adaptive": func(ma *aem.Machine) minQueue { return NewAdaptive(ma) },
	}
	for name, mk := range queues {
		t.Run(name, func(t *testing.T) {
			rng := workload.NewRNG(1)
			ma := aem.New(cfg)
			q := mk(ma)
			ref := &refHeap{}
			var key int64
			for phase := 0; phase < 200; phase++ {
				for n := 8 + rng.Intn(200); n > 0; n-- {
					it := aem.Item{Key: int64(rng.Intn(1 << 20)), Aux: key}
					key++
					q.Push(it)
					heap.Push(ref, it)
				}
				target := 0
				switch rng.Intn(3) {
				case 0:
					target = ref.Len() * (1 + rng.Intn(20)) / 100
				case 1:
					target = ref.Len() / 2
				case 2:
					target = ref.Len() * 9 / 10
				}
				for ref.Len() > target {
					got, ok := q.DeleteMin()
					want := heap.Pop(ref).(aem.Item)
					if !ok || got != want {
						t.Fatalf("phase %d: DeleteMin = %v, %t, want %v", phase, got, ok, want)
					}
				}
			}
			for ref.Len() > 0 {
				got, _ := q.DeleteMin()
				if want := heap.Pop(ref).(aem.Item); got != want {
					t.Fatalf("drain: got %v, want %v", got, want)
				}
			}
		})
	}
}

// TestRefillStatsMatchLinearScan pins the sequence heap's I/O on fixed
// interleaved streams to the counts recorded with the pre-tournament
// linear-scan refill. The tournament tree is a pure computation change:
// it must load exactly the frontier blocks the scan loaded, in a schedule
// that consumes runs identically — so Stats and Cost are bit-identical.
// If this test drifts, the refill's I/O behavior changed, not just its
// in-memory work.
func TestRefillStatsMatchLinearScan(t *testing.T) {
	want := []struct {
		cfg    aem.Config
		reads  int64
		writes int64
		cost   int64
	}{
		// Recorded from the linear-scan implementation at the same seeds.
		{aem.Config{M: 256, B: 8, Omega: 4}, 4820, 1996, 12804},
		{aem.Config{M: 128, B: 4, Omega: 2}, 12551, 5147, 22845},
		{aem.Config{M: 64, B: 4, Omega: 16}, 32730, 14746, 268666},
	}
	for _, w := range want {
		rng := workload.NewRNG(42)
		ma := aem.New(w.cfg)
		q := New(ma)
		var key int64
		for step := 0; step < 12000; step++ {
			if q.Len() == 0 || rng.Intn(3) != 0 {
				q.Push(aem.Item{Key: int64(rng.Intn(1000)), Aux: key})
				key++
			} else {
				q.DeleteMin()
			}
		}
		for q.Len() > 0 {
			q.DeleteMin()
		}
		q.Close()
		st := ma.Stats()
		if st.Reads != w.reads || st.Writes != w.writes || ma.Cost() != w.cost {
			t.Errorf("cfg %+v: stats %d/%d cost %d, want %d/%d cost %d",
				w.cfg, st.Reads, st.Writes, ma.Cost(), w.reads, w.writes, w.cost)
		}
	}
}

// TestFrontierTreeTieBreak: equal heads must resolve to the earliest run
// in iteration order, the linear scan's first-wins rule — the property
// that keeps run consumption (and so I/O) identical on duplicate-heavy
// data like the counting engine's zero-filled blocks.
func TestFrontierTreeTieBreak(t *testing.T) {
	ma := aem.New(aem.Config{M: 256, B: 8, Omega: 1})
	mkRun := func(keys ...int64) *run {
		items := make([]aem.Item, len(keys))
		for i, k := range keys {
			items[i] = aem.Item{Key: k}
		}
		return &run{vec: aem.Load(ma, items), frameLo: -1}
	}
	q := &Queue{}
	q.ma, q.cfg = ma, ma.Config()
	runs := []*run{mkRun(5, 9), mkRun(5, 7), mkRun(5, 6)}
	ft := newFrontierTree(runs, q.loadFrontier)
	first, ok := ft.min()
	if !ok || first != runs[0] {
		t.Fatalf("tie between equal heads resolved to run %v, want the first", first)
	}
	ft.pop()
	second, _ := ft.min()
	if second != runs[1] {
		t.Fatalf("second tie resolved to %v, want the second run", second)
	}
	// Drain fully and verify the ascending order across runs.
	var got []int64
	for {
		r, ok := ft.min()
		if !ok {
			break
		}
		got = append(got, r.head().Key)
		ft.pop()
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("tournament order not ascending: %v", got)
		}
	}
}

// TestMinPaysForRefill: Min is a peek, but on a queue with buffered
// insertions it may have to flush (sequence heap) or scan/fold
// (adaptive), and that I/O is charged. Pinning it keeps the cost
// accounting honest — a "free" Min would hide ω-weighted writes.
func TestMinPaysForRefill(t *testing.T) {
	cfg := aem.Config{M: 128, B: 8, Omega: 4}

	t.Run("sequence-flushes", func(t *testing.T) {
		ma := aem.New(cfg)
		q := New(ma)
		for i := 0; i < cfg.M/8-1; i++ { // fills most of the IB, no I/O yet
			q.Push(aem.Item{Key: int64(100 - i), Aux: int64(i)})
		}
		if w := ma.Stats().Writes; w != 0 {
			t.Fatalf("pushes alone wrote %d blocks", w)
		}
		it, ok := q.Min()
		if !ok || it.Key != 100-int64(cfg.M/8-2) {
			t.Fatalf("Min = %v, %t", it, ok)
		}
		if q.Len() != cfg.M/8-1 {
			t.Fatalf("Min removed items: Len = %d", q.Len())
		}
		if w := ma.Stats().Writes; w == 0 {
			t.Error("Min flushed the insert buffer but charged no writes")
		}
	})

	t.Run("adaptive-scans-then-folds", func(t *testing.T) {
		cfg := aem.Config{M: 128, B: 8, Omega: 1} // scan budget of 1: the second refill folds
		ma := aem.New(cfg)
		q := NewAdaptive(ma)
		capDB := cfg.M / 8
		for i := 0; i < 3*capDB; i++ {
			q.Push(aem.Item{Key: int64(i), Aux: int64(i)})
		}
		r0 := ma.Stats().Reads
		if _, ok := q.Min(); !ok {
			t.Fatal("Min on non-empty queue")
		}
		if ma.Stats().Reads == r0 {
			t.Error("first Min should pay selection-scan reads")
		}
		w0 := ma.Stats().Writes
		for i := 0; i < capDB; i++ {
			q.DeleteMin()
		}
		if _, ok := q.Min(); !ok { // scan budget exhausted: this one folds
			t.Fatal("second Min on non-empty queue")
		}
		if ma.Stats().Writes == w0 {
			t.Error("second Min should fold the buffer and pay ω-weighted writes")
		}
	})
}

// TestSuffixVectorUnalignedFrontier: a block-aligned frontier is a free
// slice view; a misaligned one must copy exactly the unconsumed suffix.
func TestSuffixVectorUnalignedFrontier(t *testing.T) {
	cfg := aem.Config{M: 256, B: 8, Omega: 2}
	ma := aem.New(cfg)
	q := &Queue{}
	q.ma, q.cfg = ma, cfg

	items := make([]aem.Item, 37) // deliberately not a multiple of B
	for i := range items {
		items[i] = aem.Item{Key: int64(i), Aux: int64(i)}
	}
	r := &run{vec: aem.Load(ma, items), frameLo: -1}

	for _, consumed := range []int{0, 3, 8, 11, 36} {
		r.consumed = consumed
		st := ma.Stats()
		sv := q.suffixVector(r)
		got := sv.Materialize()
		want := items[consumed:]
		if len(got) != len(want) {
			t.Fatalf("consumed=%d: suffix length %d, want %d", consumed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("consumed=%d: suffix[%d] = %v, want %v", consumed, i, got[i], want[i])
			}
		}
		io := ma.Stats().Reads - st.Reads + ma.Stats().Writes - st.Writes
		if consumed%cfg.B == 0 && io != 0 {
			t.Errorf("consumed=%d (aligned): suffixVector cost %d I/Os, want 0 (slice view)", consumed, io)
		}
		if consumed%cfg.B != 0 && io == 0 {
			t.Errorf("consumed=%d (misaligned): suffixVector cost 0 I/Os, want a copy", consumed)
		}
	}
	if ma.MemInUse() != 0 {
		t.Fatalf("suffixVector leaked %d slots", ma.MemInUse())
	}
}
