// Package core is the façade over the paper's primary contributions — the
// one import that exposes the (M,B,ω)-AEM machine, the Section 3
// mergesort, the Section 4 lower-bound machinery (counting bound,
// Lemma 4.1 round-based conversion, Lemma 4.3 flash simulation) and the
// Section 5 SpMxV algorithms and bounds, re-exported from the focused
// packages that implement them.
//
// A downstream user who wants "the paper as a library" imports this
// package; a user who wants one subsystem imports the specific package
// (aem, sorting, bounds, program, flash, permute, spmxv).
package core

import (
	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/flash"
	"repro/internal/permute"
	"repro/internal/pq"
	"repro/internal/program"
	"repro/internal/sorting"
	"repro/internal/spmxv"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Machine model.
type (
	// Config is an (M,B,ω)-AEM machine description.
	Config = aem.Config
	// Machine is the metered AEM machine simulator.
	Machine = aem.Machine
	// Item is the element type moved by all algorithms.
	Item = aem.Item
	// Vector is N items in ⌈N/B⌉ consecutive blocks.
	Vector = aem.Vector
	// Stats is an (reads, writes) I/O count pair.
	Stats = aem.Stats
)

// NewMachine returns a fresh machine with an empty disk.
func NewMachine(cfg Config) *Machine { return aem.New(cfg) }

// Load places items on a machine's disk for free, as the model's initial
// condition.
func Load(ma *Machine, items []Item) *Vector { return aem.Load(ma, items) }

// Sorting (Section 3).
var (
	// Sort is the AEM mergesort of Section 3: O(ω·n·log_{ωm} n) reads,
	// O(n·log_{ωm} n) writes, valid for every ω.
	Sort = sorting.MergeSort
	// Merge is the ωm-way merge of Theorem 3.2.
	Merge = sorting.MergeRuns
	// SortBaseCase is the small-input sort of [7, Lemma 4.2].
	SortBaseCase = sorting.SmallSort
	// EMSort is the symmetric-EM mergesort baseline.
	EMSort = sorting.EMMergeSort
	// EMSampleSort is the distribution-sort baseline.
	EMSampleSort = sorting.EMSampleSort
	// HeapSort is the sequence-heap (priority queue) sorting baseline.
	HeapSort = pq.HeapSort
	// AdaptiveHeapSort is the heapsort over the ω-adaptive buffered
	// priority queue: O(ω·n·log_{ωm} n) like the §3 mergesort.
	AdaptiveHeapSort = pq.AdaptiveHeapSort
)

// PriorityQueue is the external-memory sequence heap substrate.
type PriorityQueue = pq.Queue

// NewPriorityQueue creates an empty external priority queue on ma.
func NewPriorityQueue(ma *Machine) *PriorityQueue { return pq.New(ma) }

// AdaptivePriorityQueue is the ω-adaptive buffered priority queue: pushes
// batch through a Θ(ωM) external insertion buffer and deletions prefer
// read-only selection scans over ω-weighted folds.
type AdaptivePriorityQueue = pq.Adaptive

// NewAdaptivePriorityQueue creates an empty ω-adaptive priority queue.
func NewAdaptivePriorityQueue(ma *Machine) *AdaptivePriorityQueue { return pq.NewAdaptive(ma) }

// Trace-level round machinery (Section 4 applied to real executions).
var (
	// DecomposeTrace splits a recorded machine trace into ωm-rounds.
	DecomposeTrace = trace.Decompose
	// ConvertTrace evaluates Lemma 4.1 on a recorded machine trace.
	ConvertTrace = trace.Convert
)

// Permuting (Section 4 upper bounds).
var (
	// PermuteDirect is the O(N + ωn) block-gather permuting algorithm.
	PermuteDirect = permute.Direct
	// PermuteBySorting is sort-based permuting.
	PermuteBySorting = permute.SortBased
	// Permute picks the predicted-cheaper strategy, matching Theorem 4.5.
	Permute = permute.Best
)

// Lower bounds (Sections 4 and 5).
type (
	// BoundParams parameterizes the sorting/permuting bounds.
	BoundParams = bounds.Params
	// SpMxVBoundParams parameterizes the SpMxV bounds.
	SpMxVBoundParams = bounds.SpMxVParams
)

var (
	// PermutingLowerBound is the closed form of Theorem 4.5.
	PermutingLowerBound = bounds.PermutingLowerBoundClosed
	// SortingLowerBound equals the permuting bound.
	SortingLowerBound = bounds.SortingLowerBoundClosed
	// CountingRounds evaluates the §4.2 counting argument exactly.
	CountingRounds = bounds.CountingRounds
	// CountingLowerBound is the cost bound the counting argument implies.
	CountingLowerBound = bounds.CountingLowerBound
	// ReductionLowerBound is the Corollary 4.4 bound via the flash model.
	ReductionLowerBound = bounds.ReductionLowerBound
	// SpMxVLowerBound is the closed form of Theorem 5.1.
	SpMxVLowerBound = bounds.SpMxVLowerBoundClosed
)

// Programs and the executable proofs (Section 4).
type (
	// Program is a straight-line AEM program over indivisible atoms (§2).
	Program = program.Program
	// FlashProgram is a program in the unit-cost flash model of [2].
	FlashProgram = flash.Program
)

var (
	// RunProgram interprets a program under the §4.2 movement rules.
	RunProgram = program.Run
	// ToRoundBased is the Lemma 4.1 transformation.
	ToRoundBased = program.ConvertToRoundBased
	// ToFlash is the Lemma 4.3 simulation of a round-based program.
	ToFlash = flash.SimulateAEM
	// RunFlash interprets a flash program.
	RunFlash = flash.Run
)

// SpMxV (Section 5).
type (
	// SparseMatrix is a column-major sparse matrix on an AEM machine.
	SparseMatrix = spmxv.Matrix
	// Conformation is the non-zero structure of a sparse matrix.
	Conformation = workload.Conformation
)

var (
	// NewSparseMatrix lays a matrix out on disk.
	NewSparseMatrix = spmxv.NewMatrix
	// LoadDenseVector lays a dense vector out on disk.
	LoadDenseVector = spmxv.LoadDense
	// SpMxVNaive is the O(H + ωn) direct multiply.
	SpMxVNaive = spmxv.Naive
	// SpMxVSorting is the sorting-based multiply of Section 5.
	SpMxVSorting = spmxv.SortBased
	// SpMxV picks the predicted-cheaper strategy, matching Theorem 5.1.
	SpMxV = spmxv.Best
	// ProgramFromPermutation builds the direct straight-line program
	// realizing a permutation — the standard input to the proof pipeline.
	ProgramFromPermutation = program.FromPermutation
)
