package bounds

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/aem"
)

func params(n, m, b, w int) Params {
	return Params{N: n, Cfg: aem.Config{M: m, B: b, Omega: w}}
}

func TestLogFactorialKnownValues(t *testing.T) {
	cases := []struct {
		n    float64
		want float64
	}{
		{0, 0},
		{1, 0},
		{2, math.Log(2)},
		{5, math.Log(120)},
		{10, math.Log(3628800)},
	}
	for _, tc := range cases {
		if got := LogFactorial(tc.n); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("LogFactorial(%v) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestLogBinomialKnownValues(t *testing.T) {
	cases := []struct {
		n, k, want float64
	}{
		{5, 2, math.Log(10)},
		{10, 5, math.Log(252)},
		{10, 0, 0},
		{10, 10, 0},
		{10, 12, 0}, // degenerate: convention C(n,k)=1
		{10, -1, 0},
	}
	for _, tc := range cases {
		if got := LogBinomial(tc.n, tc.k); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("LogBinomial(%v,%v) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestLogBinomialSymmetry(t *testing.T) {
	f := func(nSel, kSel uint8) bool {
		n := float64(nSel%100) + 2
		k := math.Mod(float64(kSel), n)
		return math.Abs(LogBinomial(n, k)-LogBinomial(n, n-k)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountingTargetMatchesDirectComputation(t *testing.T) {
	// N=8, B=2: target = ln(8!/(2!)^4) = ln(40320/16) = ln(2520).
	p := params(8, 4, 2, 1)
	want := math.Log(2520)
	if got := CountingTarget(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("CountingTarget = %v, want %v", got, want)
	}
}

func TestCountingRoundsPositiveAndFinite(t *testing.T) {
	p := params(1<<20, 1<<10, 1<<5, 8)
	r := CountingRounds(p)
	if r <= 0 || r == math.MaxInt64 {
		t.Fatalf("CountingRounds = %d, want positive finite", r)
	}
	// The bound must grow with N.
	p2 := params(1<<22, 1<<10, 1<<5, 8)
	if r2 := CountingRounds(p2); r2 <= r {
		t.Errorf("rounds not monotone in N: R(2^20)=%d, R(2^22)=%d", r, r2)
	}
}

func TestCountingRoundsMonotoneInMemory(t *testing.T) {
	// More memory per round ⇒ fewer rounds needed.
	small := CountingRounds(params(1<<20, 1<<8, 1<<4, 4))
	large := CountingRounds(params(1<<20, 1<<12, 1<<4, 4))
	if large > small {
		t.Errorf("rounds increased with memory: M=2^8→%d, M=2^12→%d", small, large)
	}
}

func TestCountingLowerBoundVsClosedForm(t *testing.T) {
	// Over a realistic grid the exact counting bound and the closed form
	// must agree within constant factors (this is the content of §4.2's
	// simplification chain). We allow a generous constant and require both
	// directions across the sweep.
	for _, n := range []int{1 << 16, 1 << 18, 1 << 20} {
		for _, w := range []int{1, 4, 16, 64} {
			p := params(n, 1<<10, 1<<5, w)
			counting := CountingLowerBound(p)
			closed := PermutingLowerBoundClosed(p)
			if counting <= 0 || closed <= 0 {
				t.Fatalf("degenerate bound at N=%d ω=%d: counting=%v closed=%v", n, w, counting, closed)
			}
			ratio := counting / closed
			if ratio < 0.01 || ratio > 100 {
				t.Errorf("N=%d ω=%d: counting/closed = %v, outside constant-factor band", n, w, ratio)
			}
		}
	}
}

func TestPermutingBoundRegimeSwitch(t *testing.T) {
	// For tiny B (B=1, large ω relative to the log factor) the min must be
	// achieved by the N term; for large B the sort term wins. This is the
	// min{N, ω n log_{ωm} n} regime structure of Theorem 4.5.
	nTerm := params(1<<16, 8, 1, 4) // B=1: ωn log = ω·N·log ≫ N
	if got := PermutingLowerBoundClosed(nTerm); got != float64(nTerm.N) {
		t.Errorf("B=1 bound = %v, want N=%d (N-term regime)", got, nTerm.N)
	}
	sortTerm := params(1<<20, 1<<12, 1<<8, 2) // big B: ωn log ≪ N
	got := PermutingLowerBoundClosed(sortTerm)
	if got >= float64(sortTerm.N) {
		t.Errorf("big-B bound = %v, want < N (sort-term regime)", got)
	}
}

func TestPermutingBoundMonotoneInOmega(t *testing.T) {
	// In the sort-term regime the bound grows with ω (ω·n·log_{ωm} n: the
	// ω factor dominates the shrinking log).
	prev := 0.0
	for _, w := range []int{1, 2, 4, 8, 16} {
		p := params(1<<20, 1<<12, 1<<8, w)
		got := PermutingLowerBoundClosed(p)
		if got < prev {
			t.Errorf("bound decreased at ω=%d: %v < %v", w, got, prev)
		}
		prev = got
	}
}

func TestSortingEqualsPermutingBound(t *testing.T) {
	p := params(1<<18, 1<<10, 1<<5, 4)
	if SortingLowerBoundClosed(p) != PermutingLowerBoundClosed(p) {
		t.Error("sorting bound must equal permuting bound")
	}
}

func TestReductionBoundRequiresOmegaAtMostB(t *testing.T) {
	p := params(1<<18, 1<<10, 4, 16) // ω > B: lemma inapplicable
	if got := ReductionLowerBound(p); got != 0 {
		t.Errorf("ReductionLowerBound with ω>B = %v, want 0", got)
	}
}

func TestReductionBoundWeakerThanCounting(t *testing.T) {
	// The paper notes the counting bound is slightly stronger for some
	// parameter ranges due to simulation inefficiencies; at minimum the
	// reduction bound should never exceed a constant multiple of the
	// counting bound where both are positive.
	for _, w := range []int{1, 2, 4, 8} {
		p := params(1<<20, 1<<10, 1<<6, w)
		red := ReductionLowerBound(p)
		cnt := CountingLowerBound(p)
		if red > 0 && cnt > 0 && red > 10*cnt {
			t.Errorf("ω=%d: reduction bound %v ≫ counting bound %v", w, red, cnt)
		}
	}
}

func TestEMBoundIsOmegaOneSpecialCase(t *testing.T) {
	p := params(1<<20, 1<<10, 1<<5, 1)
	em := EMSortLowerBound(p)
	aemB := PermutingLowerBoundClosed(p)
	if math.Abs(em-aemB)/em > 1e-9 {
		t.Errorf("ω=1 AEM bound %v != EM bound %v", aemB, em)
	}
}

func TestFlashVolumeLBShape(t *testing.T) {
	v := FlashPermutingVolumeLB(1<<20, 1<<10, 1<<4)
	if v <= 0 {
		t.Fatalf("flash volume LB = %v", v)
	}
	v2 := FlashPermutingVolumeLB(1<<22, 1<<10, 1<<4)
	if v2 <= v {
		t.Errorf("flash LB not monotone in N: %v then %v", v, v2)
	}
}

func TestTauCases(t *testing.T) {
	// B < δ: τ = 3^{δN}.
	if got, want := Tau(10, 4, 2), 40*math.Log(3); math.Abs(got-want) > 1e-9 {
		t.Errorf("Tau(B<δ) = %v, want %v", got, want)
	}
	// B = δ: τ = 1.
	if got := Tau(10, 4, 4); got != 0 {
		t.Errorf("Tau(B=δ) = %v, want 0", got)
	}
	// B > δ: τ = (2eB/δ)^{δN}.
	if got, want := Tau(10, 2, 8), 20*math.Log(2*math.E*8/2); math.Abs(got-want) > 1e-9 {
		t.Errorf("Tau(B>δ) = %v, want %v", got, want)
	}
}

func spmxvParams(n, delta, m, b, w int) SpMxVParams {
	return SpMxVParams{Params: params(n, m, b, w), Delta: delta}
}

func TestSpMxVClosedFormShape(t *testing.T) {
	p := spmxvParams(1<<20, 4, 1<<10, 1<<5, 4)
	got := SpMxVLowerBoundClosed(p)
	if got <= 0 {
		t.Fatalf("SpMxV bound = %v", got)
	}
	if got > float64(p.H()) {
		t.Errorf("bound %v exceeds H=%d; min{} broken", got, p.H())
	}
	// Denser matrices (larger δ) must not decrease the bound in the
	// sort-term regime, since h = δn grows.
	p8 := spmxvParams(1<<20, 8, 1<<10, 1<<5, 4)
	if b8 := SpMxVLowerBoundClosed(p8); b8 < got {
		t.Errorf("bound decreased with δ: δ=4→%v, δ=8→%v", got, b8)
	}
}

func TestSpMxVCountingBoundPositiveInAssumptionRange(t *testing.T) {
	p := spmxvParams(1<<22, 2, 1<<8, 1<<4, 2)
	if !SpMxVAssumptionsHold(p, 0.05) {
		t.Skip("parameter point outside theorem assumptions; adjust test grid")
	}
	if got := SpMxVCountingBound(p); got <= 0 {
		t.Errorf("counting bound = %v at a point satisfying the assumptions", got)
	}
}

func TestSpMxVAssumptions(t *testing.T) {
	good := spmxvParams(1<<22, 2, 1<<8, 1<<4, 2)
	if !SpMxVAssumptionsHold(good, 0.01) {
		t.Error("expected assumptions to hold for the good point")
	}
	badB := spmxvParams(1<<22, 2, 1<<8, 2, 2)
	if SpMxVAssumptionsHold(badB, 0.01) {
		t.Error("B ≤ 2 must fail the assumptions")
	}
	badM := spmxvParams(1<<22, 2, 16, 8, 2)
	if SpMxVAssumptionsHold(badM, 0.01) {
		t.Error("M ≤ 4B must fail the assumptions")
	}
	badProduct := spmxvParams(1<<10, 64, 1<<8, 1<<4, 64)
	if SpMxVAssumptionsHold(badProduct, 0.01) {
		t.Error("ωδMB > N^{1−ε} must fail the assumptions")
	}
}

func TestPredictedFormulasPositive(t *testing.T) {
	p := params(1<<18, 1<<10, 1<<5, 8)
	preds := map[string]PredictedIO{
		"mergesort":   MergeSortPredicted(p),
		"smallsort":   SmallSortPredicted(params(1<<12, 1<<10, 1<<5, 8)),
		"em":          EMMergeSortPredicted(p),
		"permdirect":  PermuteDirectPredicted(p),
		"permsort":    PermuteSortPredicted(p),
		"permbest":    PermuteBestPredicted(p),
		"spmxv-naive": SpMxVNaivePredicted(spmxvParams(1<<16, 4, 1<<10, 1<<5, 8)),
		"spmxv-sort":  SpMxVSortPredicted(spmxvParams(1<<16, 4, 1<<10, 1<<5, 8)),
		"spmxv-best":  SpMxVBestPredicted(spmxvParams(1<<16, 4, 1<<10, 1<<5, 8)),
	}
	for name, io := range preds {
		if io.Reads <= 0 || io.Writes <= 0 || io.Cost(p.Cfg.Omega) <= 0 {
			t.Errorf("%s prediction degenerate: %+v", name, io)
		}
	}
}

func TestMergeSortPredictedWriteSavings(t *testing.T) {
	// The defining property of the §3 mergesort: reads ≈ ω × writes.
	p := params(1<<20, 1<<10, 1<<5, 16)
	io := MergeSortPredicted(p)
	if math.Abs(io.Reads/io.Writes-float64(p.Cfg.Omega)) > 1e-9 {
		t.Errorf("read/write ratio = %v, want ω=%d", io.Reads/io.Writes, p.Cfg.Omega)
	}
}

func TestMergeSortLevelsBaseCase(t *testing.T) {
	// N ≤ ωM: zero merge levels, base case only.
	p := params(1<<10, 1<<10, 1<<5, 4)
	if got := MergeSortLevels(p); got != 0 {
		t.Errorf("levels = %v, want 0 for N ≤ ωM", got)
	}
	big := params(1<<24, 1<<10, 1<<5, 4)
	if got := MergeSortLevels(big); got < 1 {
		t.Errorf("levels = %v, want ≥ 1 for N ≫ ωM", got)
	}
}

func TestAEMSortBeatsEMSortForLargeOmega(t *testing.T) {
	// The central §3 claim: for large ω the §3 mergesort's predicted cost
	// is below the symmetric-EM mergesort's predicted AEM cost, because the
	// log base improves from m to ωm and writes shrink by ω.
	p := params(1<<24, 1<<12, 1<<6, 64)
	aemCost := MergeSortPredicted(p).Cost(p.Cfg.Omega)
	emCost := EMMergeSortPredicted(p).Cost(p.Cfg.Omega)
	if aemCost >= emCost {
		t.Errorf("AEM mergesort predicted %v ≥ EM mergesort %v at ω=64", aemCost, emCost)
	}
}

func TestPermuteBestPicksDirectForHugeOmega(t *testing.T) {
	// When ω is enormous, sorting costs ω·n·log… ≫ N + ωn and direct wins.
	p := params(1<<16, 1<<8, 4, 1<<14)
	best := PermuteBestPredicted(p)
	direct := PermuteDirectPredicted(p)
	if best != direct {
		t.Errorf("best = %+v, want direct %+v at ω=2^14", best, direct)
	}
}
