package harness

// Throughput is one experiment's points/sec summary, derived from the
// per-point wall_ns records a timed run already carries. It is the
// simulator's own speed made a tracked product: `aem bench -timing -json`
// appends one throughput record per table to the JSON Lines stream, and
// `aem gate` compares the derived ns/point against a committed baseline.
type Throughput struct {
	Type         string  `json:"type"` // "throughput"
	Experiment   string  `json:"experiment"`
	Points       int     `json:"points"`
	WallNS       int64   `json:"wall_ns"`
	NSPerPoint   float64 `json:"ns_per_point"`
	PointsPerSec float64 `json:"points_per_sec"`
}

// ThroughputOf derives the summary from a timed table. It returns nil for
// an untimed or empty table — throughput is only defined where wall-clock
// was measured.
func ThroughputOf(t *Table) *Throughput {
	if t.WallNS == nil || len(t.WallNS) == 0 {
		return nil
	}
	var total int64
	for _, ns := range t.WallNS {
		total += ns
	}
	n := len(t.WallNS)
	tp := &Throughput{
		Type:       "throughput",
		Experiment: t.ID,
		Points:     n,
		WallNS:     total,
		NSPerPoint: float64(total) / float64(n),
	}
	if total > 0 {
		tp.PointsPerSec = float64(n) / (float64(total) / 1e9)
	}
	return tp
}
