package program

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/aem"
	"repro/internal/workload"
)

func cfg4() aem.Config { return aem.Config{M: 16, B: 4, Omega: 3} }

func TestRunTrivialMove(t *testing.T) {
	// Move atoms 0..3 from block 0 to a fresh block 2.
	p := &Program{
		N:   8,
		Cfg: cfg4(),
		Ops: []Op{
			{Kind: aem.OpRead, Addr: 0, Atoms: []int{0, 1, 2, 3}},
			{Kind: aem.OpWrite, Addr: 2, Atoms: []int{0, 1, 2, 3}},
		},
	}
	res, err := Run(p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		if res.Placement[a] != 2 {
			t.Errorf("atom %d at block %d, want 2", a, res.Placement[a])
		}
	}
	for a := 4; a < 8; a++ {
		if res.Placement[a] != 1 {
			t.Errorf("atom %d at block %d, want 1 (untouched)", a, res.Placement[a])
		}
	}
	if res.Stats.Reads != 1 || res.Stats.Writes != 1 {
		t.Errorf("stats %+v", res.Stats)
	}
	if got := res.Cost(3); got != 4 {
		t.Errorf("cost = %d, want 4", got)
	}
	if res.MaxMemory != 4 {
		t.Errorf("MaxMemory = %d, want 4", res.MaxMemory)
	}
}

func TestRunRejectsViolations(t *testing.T) {
	cases := []struct {
		name string
		ops  []Op
		want string
	}{
		{
			"read absent atom",
			[]Op{{Kind: aem.OpRead, Addr: 0, Atoms: []int{7}}},
			"not present",
		},
		{
			"write atom not in memory",
			[]Op{{Kind: aem.OpWrite, Addr: 2, Atoms: []int{0}}},
			"not in memory",
		},
		{
			"write to non-empty block",
			[]Op{
				{Kind: aem.OpRead, Addr: 0, Atoms: []int{0}},
				{Kind: aem.OpWrite, Addr: 1, Atoms: []int{0}},
			},
			"non-empty",
		},
		{
			"oversized write",
			[]Op{
				{Kind: aem.OpRead, Addr: 0, Atoms: []int{0, 1, 2, 3}},
				{Kind: aem.OpRead, Addr: 1, Atoms: []int{4}},
				{Kind: aem.OpWrite, Addr: 2, Atoms: []int{0, 1, 2, 3, 4}},
			},
			"exceeds block size",
		},
		{
			"resident memory at end",
			[]Op{{Kind: aem.OpRead, Addr: 0, Atoms: []int{0}}},
			"resident in memory",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Program{N: 8, Cfg: cfg4(), Ops: tc.ops}
			_, err := Run(p, RunOptions{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestRunMemoryOverflow(t *testing.T) {
	// M = 16: five full blocks of 4 would hold 20 atoms.
	var ops []Op
	for b := 0; b < 5; b++ {
		ops = append(ops, Op{Kind: aem.OpRead, Addr: b, Atoms: []int{4 * b, 4*b + 1, 4*b + 2, 4*b + 3}})
	}
	p := &Program{N: 20, Cfg: cfg4(), Ops: ops}
	_, err := Run(p, RunOptions{AllowResidentMemory: true})
	if err == nil || !strings.Contains(err.Error(), "memory capacity exceeded") {
		t.Fatalf("err = %v, want memory overflow", err)
	}
}

func TestFromPermutationComputesPermutation(t *testing.T) {
	for _, n := range []int{1, 4, 5, 16, 64, 257} {
		cfg := cfg4()
		_, perm := workload.Permutation(workload.NewRNG(uint64(n)), n)
		p, err := FromPermutation(cfg, perm)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, RunOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.Placement.Equal(ExpectedPlacement(cfg, perm)) {
			t.Fatalf("n=%d: placement mismatch", n)
		}
	}
}

func TestFromPermutationCost(t *testing.T) {
	// O(N + ωn): at most N reads and exactly n writes.
	const n = 1 << 10
	cfg := aem.Config{M: 64, B: 8, Omega: 5}
	_, perm := workload.Permutation(workload.NewRNG(3), n)
	p, err := FromPermutation(cfg, perm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nb := int64(cfg.BlocksOf(n))
	if res.Stats.Writes != nb {
		t.Errorf("writes = %d, want %d", res.Stats.Writes, nb)
	}
	if res.Stats.Reads > int64(n) {
		t.Errorf("reads = %d > N = %d", res.Stats.Reads, n)
	}
}

func TestFromPermutationRejectsNonPermutation(t *testing.T) {
	if _, err := FromPermutation(cfg4(), []int{0, 0, 1}); err == nil {
		t.Error("accepted a non-permutation")
	}
	if _, err := FromPermutation(cfg4(), []int{0, 5}); err == nil {
		t.Error("accepted an out-of-range destination")
	}
}

func TestRandomProgramsAreValid(t *testing.T) {
	f := func(seed uint64, nSel, stepSel uint8) bool {
		n := 4 + int(nSel%60)
		steps := int(stepSel % 64)
		p := Random(workload.NewRNG(seed), cfg4(), n, steps)
		res, err := Run(p, RunOptions{})
		if err != nil {
			t.Logf("seed=%d n=%d steps=%d: %v", seed, n, steps, err)
			return false
		}
		return len(res.Placement) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// convertAndCheck converts p, validates the result end to end, and returns
// the two results for further assertions.
func convertAndCheck(t *testing.T, p *Program) (orig, conv Result, rb *Program) {
	t.Helper()
	orig, err := Run(p, RunOptions{})
	if err != nil {
		t.Fatalf("original invalid: %v", err)
	}
	rb, err = ConvertToRoundBased(p)
	if err != nil {
		t.Fatalf("conversion failed: %v", err)
	}
	conv, err = Run(rb, RunOptions{})
	if err != nil {
		t.Fatalf("converted program invalid: %v", err)
	}
	if rb.Cfg.M != 2*p.Cfg.M {
		t.Fatalf("converted machine has M=%d, want 2M=%d", rb.Cfg.M, 2*p.Cfg.M)
	}
	// Round structure: cost per round ≤ (3/2)ω·m₂ + m₂ on the doubled
	// machine; all but the last ≥ ω(m−1) of the original machine... the
	// greedy chop guarantees ≥ budget − ω + 1; we check the weaker ≥ 1.
	m2 := rb.Cfg.BlocksInMemory()
	maxCost := 3*int64(p.Cfg.Omega)*int64(p.Cfg.BlocksInMemory()) + int64(m2)
	if err := CheckRoundBased(rb, 1, maxCost); err != nil {
		t.Fatalf("round structure: %v", err)
	}
	return orig, conv, rb
}

func TestLemma41PreservesPlacement(t *testing.T) {
	for _, n := range []int{8, 32, 100} {
		_, perm := workload.Permutation(workload.NewRNG(uint64(n)), n)
		p, err := FromPermutation(cfg4(), perm)
		if err != nil {
			t.Fatal(err)
		}
		orig, conv, _ := convertAndCheck(t, p)
		if !orig.Placement.Equal(conv.Placement) {
			t.Fatalf("n=%d: Lemma 4.1 conversion changed the computed permutation", n)
		}
	}
}

func TestLemma41ConstantFactor(t *testing.T) {
	// Lemma 4.1: cost(P') = O(cost(P)). With explicit snapshots the
	// construction gives cost(P') ≤ 3·cost(P) + O(ωm); we assert exactly
	// that budget over a spread of instances.
	for _, n := range []int{64, 256, 1024} {
		for _, w := range []int{1, 2, 8} {
			cfg := aem.Config{M: 32, B: 4, Omega: w}
			_, perm := workload.Permutation(workload.NewRNG(uint64(n+w)), n)
			p, err := FromPermutation(cfg, perm)
			if err != nil {
				t.Fatal(err)
			}
			orig, conv, _ := convertAndCheck(t, p)
			budget := 3*orig.Cost(w) + 4*int64(w)*int64(cfg.BlocksInMemory())
			if got := conv.Cost(w); got > budget {
				t.Errorf("n=%d ω=%d: converted cost %d > 3·%d + 4ωm", n, w, got, orig.Cost(w))
			}
		}
	}
}

func TestLemma41OnRandomPrograms(t *testing.T) {
	f := func(seed uint64, nSel, stepSel uint8) bool {
		n := 8 + int(nSel%56)
		steps := int(stepSel % 96)
		p := Random(workload.NewRNG(seed), cfg4(), n, steps)
		orig, err := Run(p, RunOptions{})
		if err != nil {
			return false
		}
		rb, err := ConvertToRoundBased(p)
		if err != nil {
			t.Logf("seed=%d: %v", seed, err)
			return false
		}
		conv, err := Run(rb, RunOptions{})
		if err != nil {
			t.Logf("seed=%d: converted invalid: %v", seed, err)
			return false
		}
		return orig.Placement.Equal(conv.Placement)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCheckRoundBasedRejections(t *testing.T) {
	p := &Program{N: 8, Cfg: cfg4(), Ops: []Op{
		{Kind: aem.OpRead, Addr: 0, Atoms: []int{0, 1, 2, 3}},
		{Kind: aem.OpWrite, Addr: 2, Atoms: []int{0, 1, 2, 3}},
	}}
	if err := CheckRoundBased(p, 1, 100); err == nil || !strings.Contains(err.Error(), "no round marks") {
		t.Errorf("unmarked program: %v", err)
	}
	p.RoundMarks = []int{1, 2}
	if err := CheckRoundBased(p, 1, 100); err == nil || !strings.Contains(err.Error(), "memory not empty") {
		t.Errorf("mid-memory mark: %v", err)
	}
	p.RoundMarks = []int{2}
	if err := CheckRoundBased(p, 1, 100); err != nil {
		t.Errorf("valid single round rejected: %v", err)
	}
	if err := CheckRoundBased(p, 1, 2); err == nil || !strings.Contains(err.Error(), "> max") {
		t.Errorf("over-budget round: %v", err)
	}
	p.RoundMarks = []int{1}
	if err := CheckRoundBased(p, 1, 100); err == nil || !strings.Contains(err.Error(), "!= ") {
		t.Errorf("short final mark: %v", err)
	}
}

func TestPlacementEqual(t *testing.T) {
	a := Placement{0: 1, 1: 2}
	b := Placement{0: 1, 1: 2}
	c := Placement{0: 1, 1: 3}
	d := Placement{0: 1}
	if !a.Equal(b) {
		t.Error("equal placements reported unequal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("unequal placements reported equal")
	}
}

func TestLemma41MinimalMemoryMachine(t *testing.T) {
	// m = 2 (M = 2B): the segment budget ω(m−1) = ω is a single write per
	// round — the tightest legal machine. The conversion must still be
	// valid and placement-preserving.
	cfg := aem.Config{M: 8, B: 4, Omega: 3}
	_, perm := workload.Permutation(workload.NewRNG(44), 32)
	p, err := FromPermutation(cfg, perm)
	if err != nil {
		t.Fatal(err)
	}
	orig, conv, rb := convertAndCheck(t, p)
	if !orig.Placement.Equal(conv.Placement) {
		t.Fatal("placement broken on the minimal machine")
	}
	if len(rb.RoundMarks) < 2 {
		t.Fatalf("expected many rounds on a tiny machine, got %d", len(rb.RoundMarks))
	}
}
