package harness

import (
	"fmt"
	"strings"
)

// MergeShards reassembles a sharded run: given the specs named by the
// shard manifests (in manifest order — the caller resolves them, usually
// via ByID) and every shard's parsed output, it verifies the shard set is
// complete and consistent, verifies no grid point is missing or
// duplicated, re-runs the derived/summary columns over the merged grid,
// and emits tables byte-identical to a single-machine run of the same
// selection — including the failure behavior: points that panicked on a
// shard panic here with the same aggregated experiment IDs and messages
// an unsharded Run produces.
//
// Two kinds of shard set merge. A pure round-robin set (every file from
// `aem bench -shard i/m` or `aem serve`, which writes a 1-of-1 stream)
// must form one complete partition: same shard count everywhere, every
// shard present exactly once, every record in the shard that owns it. A
// set containing residual files (`aem work -residual` output, marked in
// the manifest) is a patchwork — partial outputs of any partition plus
// the streams that complete them — so the partition-shape checks don't
// apply; the point-level guarantees (nothing missing, nothing duplicated,
// nothing torn, agreement on selection and grid size, and round-robin
// files still owning their records) are enforced identically.
//
// The returned error covers integrity problems with the shard set itself
// (missing/duplicate/overlapping shards, foreign or torn files, registry
// drift); experiment failures panic, per the harness contract. When the
// set is consistent but grid points are missing — an interrupted run —
// the error is an *IncompleteError aggregating every missing point
// across all specs, whose ResidualSpec method is the machine-readable
// resume: run it with `aem work -residual` and merge the result into
// this same set.
//
// With timing set, each table carries the per-point wall-clock recorded
// by the shards (Table.WallNS).
func MergeShards(specs []*Spec, files []*ShardFile, timing bool, emit func(*Table)) error {
	if len(files) == 0 {
		return fmt.Errorf("no shard files to merge")
	}

	// The first manifest fixes the selection; every file must agree on it
	// and on the global grid size, whatever partition it came from.
	ref := files[0].Manifest
	patchwork := false
	for _, f := range files {
		m := f.Manifest
		if m.Of < 1 {
			return fmt.Errorf("shard %d: invalid shard count %d", m.Shard, m.Of)
		}
		if m.Shard < 0 || m.Shard >= m.Of {
			return fmt.Errorf("shard index %d out of range for a %d-way partition", m.Shard, m.Of)
		}
		if m.Residual {
			patchwork = true
		}
		if len(m.Experiments) != len(ref.Experiments) {
			return fmt.Errorf("shard files disagree on the experiment selection")
		}
		for i, id := range m.Experiments {
			if id != ref.Experiments[i] {
				return fmt.Errorf("shard files disagree on the experiment selection: %s vs %s", id, ref.Experiments[i])
			}
		}
		if m.GridPoints != ref.GridPoints {
			return fmt.Errorf("shard files disagree on the grid size: %d vs %d points", m.GridPoints, ref.GridPoints)
		}
	}

	// Partition-shape checks: only a pure round-robin set claims to be
	// one complete partition. A patchwork set's completeness is decided
	// point by point below.
	if !patchwork {
		seenShard := make(map[int]bool)
		for _, f := range files {
			m := f.Manifest
			if m.Of != ref.Of {
				return fmt.Errorf("shard files disagree: %d-way and %d-way partitions mixed", ref.Of, m.Of)
			}
			if seenShard[m.Shard] {
				return fmt.Errorf("duplicate shard %d/%d: the same shard appears in two files", m.Shard, m.Of)
			}
			seenShard[m.Shard] = true
		}
		if len(seenShard) != ref.Of {
			var missing []int
			for i := 0; i < ref.Of; i++ {
				if !seenShard[i] {
					missing = append(missing, i)
				}
			}
			return fmt.Errorf("incomplete shard set: missing shard(s) %v of %d", missing, ref.Of)
		}
	}

	if len(specs) != len(ref.Experiments) {
		return fmt.Errorf("merge given %d specs for %d experiments in the shard manifest", len(specs), len(ref.Experiments))
	}
	bySpec := make(map[string]int, len(specs))
	for i, s := range specs {
		if s.ID != ref.Experiments[i] {
			return fmt.Errorf("merge spec %d is %s, shard manifest says %s", i, s.ID, ref.Experiments[i])
		}
		bySpec[s.ID] = i
	}

	// Re-enumerate the grids: the merge binary carries the same registry,
	// so the expected point set — and any deterministic grid-enumeration
	// failure — reproduces here without a record.
	sts := newSpecStates(specs)
	base := make([]int, len(specs)) // each spec's first global point index
	total := 0
	for si, st := range sts {
		base[si] = total
		total += len(st.pts)
	}
	if total != ref.GridPoints {
		return fmt.Errorf("shards were produced from a different grid: %d points there, %d here (registry drift?)", ref.GridPoints, total)
	}

	filled := make([][]bool, len(specs))
	for si, st := range sts {
		filled[si] = make([]bool, len(st.pts))
	}
	for _, f := range files {
		for _, rec := range f.Records {
			si, ok := bySpec[rec.Experiment]
			if !ok {
				return fmt.Errorf("shard %d: record for experiment %s, which is not in the manifest", f.Manifest.Shard, rec.Experiment)
			}
			st := sts[si]
			if rec.Points != len(st.pts) {
				return fmt.Errorf("shard %d: %s has %d grid points, record says %d (registry drift?)", f.Manifest.Shard, rec.Experiment, len(st.pts), rec.Points)
			}
			if rec.Index < 0 || rec.Index >= len(st.pts) {
				return fmt.Errorf("shard %d: %s point %d out of range [0,%d)", f.Manifest.Shard, rec.Experiment, rec.Index, len(st.pts))
			}
			// A round-robin shard must own every record it carries, per its
			// own manifest's partition — a residual file owns whatever its
			// spec listed, which the fill bookkeeping checks instead.
			if !f.Manifest.Residual {
				if owner := (base[si] + rec.Index) % f.Manifest.Of; owner != f.Manifest.Shard {
					return fmt.Errorf("overlapping shards: %s point %d belongs to shard %d but appears in shard %d", rec.Experiment, rec.Index, owner, f.Manifest.Shard)
				}
			}
			if filled[si][rec.Index] {
				return fmt.Errorf("duplicated point: %s point %d appears twice in the shard set", rec.Experiment, rec.Index)
			}
			filled[si][rec.Index] = true
			if rec.Panic != "" {
				st.panicAt[rec.Index] = rec.Panic
				st.nfail++
			} else {
				// A healthy record carries exactly one raw value and one
				// rendered cell per column; anything else is a torn or
				// foreign file and must be rejected here, not crash the
				// renderer or mis-align the merged table downstream.
				ncols := len(specs[si].Columns)
				if len(rec.Row) != ncols || len(rec.Cells) != ncols {
					return fmt.Errorf("shard %d: torn record: %s point %d has %d row values and %d cells for %d columns",
						f.Manifest.Shard, rec.Experiment, rec.Index, len(rec.Row), len(rec.Cells), ncols)
				}
				st.rows[rec.Index] = Row(rec.Row)
				st.cells[rec.Index] = rec.Cells
			}
			st.wallNS[rec.Index] = rec.WallNS
		}
	}

	// Completeness, aggregated across all specs: an interrupted run is
	// usually missing points from several experiments at once, and the
	// resume machinery needs the full list, not the first incomplete spec.
	var missing []GridRef
	for si, st := range sts {
		if st.enumFailed() {
			continue // reproduced locally; shards recorded nothing for it
		}
		for pi, ok := range filled[si] {
			if !ok {
				missing = append(missing, GridRef{Experiment: specs[si].ID, Index: pi})
			}
		}
	}
	if len(missing) > 0 {
		return &IncompleteError{Experiments: ref.Experiments, GridPoints: ref.GridPoints, Missing: missing}
	}

	// From here the path is byte-for-byte the unsharded one: the same
	// assembly, derived-column evaluation, emission order and failure
	// aggregation LocalPool runs, fed from records instead of workers.
	var failures []string
	for si, s := range specs {
		completeSpec(s, sts[si], &failures, timing, emit)
	}
	panicOnFailures(failures)
	return nil
}

// IncompleteError reports a consistent but unfinished shard set: every
// grid point no file in the set carries, across all specs, in global
// grid order. It is the error form of an interrupted run — convert it
// with ResidualSpec to get the machine-readable remainder `aem work
// -residual` consumes.
type IncompleteError struct {
	Experiments []string
	GridPoints  int
	Missing     []GridRef
}

// Error aggregates the missing points per experiment in one message.
// Index lists are capped per experiment to keep the message readable on
// badly interrupted runs; the counts are always exact.
func (e *IncompleteError) Error() string {
	const maxListed = 8
	var parts []string
	order := make([]string, 0, len(e.Experiments))
	byExp := map[string][]int{}
	for _, ref := range e.Missing {
		if _, seen := byExp[ref.Experiment]; !seen {
			order = append(order, ref.Experiment)
		}
		byExp[ref.Experiment] = append(byExp[ref.Experiment], ref.Index)
	}
	for _, id := range order {
		idxs := byExp[id]
		shown := idxs
		ellipsis := ""
		if len(shown) > maxListed {
			shown = shown[:maxListed]
			ellipsis = " …"
		}
		parts = append(parts, fmt.Sprintf("%s is missing %d point(s) %v%s", id, len(idxs), shown, ellipsis))
	}
	return fmt.Sprintf("incomplete shard set: %s — %d of %d grid points missing (write a residual spec with `aem merge -residual` to resume)",
		strings.Join(parts, "; "), len(e.Missing), e.GridPoints)
}

// ResidualSpec converts the error into the resume artifact.
func (e *IncompleteError) ResidualSpec() *ResidualSpec {
	return &ResidualSpec{
		Type:        "residual",
		Experiments: e.Experiments,
		GridPoints:  e.GridPoints,
		Missing:     e.Missing,
	}
}
