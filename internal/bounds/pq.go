package bounds

import (
	"sort"

	"repro/internal/aem"
	"repro/internal/workload"
)

// This file predicts the I/O of the repository's two external priority
// queues (internal/pq) on a push/deletemin stream, the queue counterpart
// of the dictionary predictors in upper.go.
//
// Like DictParamsFor, the workload description is derived from the stream
// alone — program knowledge in the §2 sense: a linear walk replays the
// queues' *policy* (what enters the in-memory deletion buffer, when the
// insertion buffer folds or flushes, when the ω-adaptive queue rents a
// read-only selection scan instead of buying a fold, which runs each
// compaction merges) over item values and structure sizes, with no
// machine or storage state. Each policy event is priced with the paper's
// per-pass costs: one write per B items for appends and flushes,
// ⌈L/(M/2)⌉ read passes for a SmallSort-style fold of L items, one
// read+write per block plus the two-block initialization for a Theorem
// 3.2 merge, one read per block-boundary crossing for frontier
// consumption. The experiments pin measured/predicted within the same
// [0.5, 2] band the dictionary uses; the residual is implementation
// texture the model deliberately omits (merge round structure, external
// pointer maintenance, partial-block rounding), so a drift outside the
// band flags an I/O regression, not noise.

// PQParams describes a priority-queue workload for the cost predictors.
// N (in the embedded Params) is the total operation count.
type PQParams struct {
	Params
	// Pushes and Deletes split the stream by kind.
	Pushes  int
	Deletes int
	// Absorbed counts pushes that live and die inside the capDB-sized
	// deletion buffer without ever being staged to external memory — the
	// churn any sequence-heap-style queue absorbs for free.
	Absorbed int

	// Adaptive policy-walk event counts (informational; the predictors
	// price the walks' accumulated I/O).
	Folds int // adaptive insertion-buffer folds
	Scans int // adaptive rent (selection) scans

	adaptiveIO PredictedIO
	seqIO      PredictedIO
}

// PQParamsFor derives the workload description from an operation stream
// by replaying both queue policies (free internal computation).
func PQParamsFor(cfg aem.Config, ops []workload.PQOp) PQParams {
	p := PQParams{Params: Params{N: len(ops), Cfg: cfg}}
	adaptive := newPQWalk(cfg, true)
	seq := newPQWalk(cfg, false)
	for _, op := range ops {
		if op.Kind == workload.PQPush {
			p.Pushes++
			adaptive.push(op.Item)
			seq.push(op.Item)
		} else {
			p.Deletes++
			adaptive.delete()
			seq.delete()
		}
	}
	p.Absorbed = adaptive.absorbed
	p.Folds = adaptive.folds
	p.Scans = adaptive.scans
	p.adaptiveIO = PredictedIO{Reads: adaptive.reads, Writes: adaptive.writes}
	p.seqIO = PredictedIO{Reads: seq.reads, Writes: seq.writes}
	return p
}

// PQAdaptivePredicted returns the predicted I/O counts of the ω-adaptive
// buffered queue on the workload: block-granular buffer appends, rent
// scans (reads only), SmallSort-priced folds, Theorem 3.2-priced lazy
// merges and frontier consumption, as accumulated by the policy walk.
func PQAdaptivePredicted(p PQParams) PredictedIO {
	return p.adaptiveIO
}

// PQSequenceHeapPredicted returns the predicted I/O counts of the classic
// sequence heap: a flush every M/8 insertions (and on every refill)
// whatever ω is, plus the same merge and frontier pricing — the
// ω-oblivious Θ((1+ω)·n·log_m n) shape the adaptive queue improves on.
func PQSequenceHeapPredicted(p PQParams) PredictedIO {
	return p.seqIO
}

// walkRun is a shadow of one sorted external run: its items, its frontier
// cursor and the block its model frame holds (-1 when none).
type walkRun struct {
	items  []aem.Item
	cur    int
	loaded int
}

func (r *walkRun) remaining() int { return len(r.items) - r.cur }

// pqWalk replays one queue policy over the stream, accumulating predicted
// reads and writes. In adaptive mode the insertion buffer holds up to ω·M
// items and refills rent up to ω selection scans per fold cycle; in
// sequence-heap mode the buffer is the M/8 insertion buffer, flushed
// (sorted in memory, no read passes) on fill and on every refill.
type pqWalk struct {
	cfg      aem.Config
	capDB    int
	bufCap   int
	scanBud  int
	adaptive bool

	db     []aem.Item   // ascending, ≤ capDB
	buffer aem.ItemHeap // insertion buffer (heap order = free computation)
	levels [][]*walkRun

	// Adaptive bookkeeping: rent scans since the last fold, remaining
	// buffer consumptions under the current scan, the largest
	// scan-consumed item (the stash trigger), and below-watermark pushes
	// since the last fold.
	scansNow   int
	scanCredit int
	wm         aem.Item
	wmValid    bool
	stashed    int

	absorbed, folds, scans int
	reads, writes          float64
}

func newPQWalk(cfg aem.Config, adaptive bool) *pqWalk {
	w := &pqWalk{cfg: cfg, capDB: cfg.M / 8, adaptive: adaptive}
	if adaptive {
		w.bufCap = cfg.Omega * cfg.M
		w.scanBud = cfg.Omega
	} else {
		w.bufCap = cfg.M / 8
	}
	return w
}

func (w *pqWalk) blocksOf(n int) float64 {
	return float64((n + w.cfg.B - 1) / w.cfg.B)
}

func (w *pqWalk) maxRuns() int {
	r := w.cfg.M / (2 * w.cfg.B)
	if r < 2 {
		r = 2
	}
	return r
}

func (w *pqWalk) totalRuns() int {
	n := 0
	for _, lv := range w.levels {
		n += len(lv)
	}
	return n
}

func (w *pqWalk) push(it aem.Item) {
	if len(w.db) > 0 && aem.Less(it, w.db[len(w.db)-1]) {
		w.db = aem.InsertSorted(w.db, it)
		if len(w.db) > w.capDB {
			last := w.db[len(w.db)-1]
			w.db = w.db[:len(w.db)-1]
			w.stage(last)
		} else {
			w.absorbed++
		}
	} else {
		w.stage(it)
	}
}

func (w *pqWalk) stage(it aem.Item) {
	if w.adaptive && w.wmValid && aem.Less(it, w.wm) {
		w.stashed++
		if w.stashed > w.capDB/2 { // the queue's stash holds capDB/2 items
			w.fold()
		}
	}
	w.buffer.Push(it)
	if w.adaptive {
		w.writes += 1 / float64(w.cfg.B) // block-granular buffer append
	}
	if w.buffer.Len() >= w.bufCap {
		w.fold()
	}
}

// fold moves the whole buffer into a fresh level-0 run. The adaptive fold
// is external: one read+write pass to materialize the chain and a
// SmallSort of ⌈L/(M/2)⌉ read passes plus one write pass. The sequence
// heap's flush is an in-memory sort: one write pass only.
func (w *pqWalk) fold() {
	if w.buffer.Len() == 0 {
		return
	}
	items := make([]aem.Item, 0, w.buffer.Len())
	for w.buffer.Len() > 0 {
		items = append(items, w.buffer.Pop())
	}
	blocks := w.blocksOf(len(items))
	if w.adaptive {
		w.folds++
		passes := float64((len(items) + w.cfg.M/2 - 1) / (w.cfg.M / 2))
		w.reads += blocks * (1 + passes) // materialize + selection passes
		w.writes += blocks * 2           // materialize + sorted run
	} else {
		w.writes += blocks // flush of the in-memory-sorted buffer
	}
	w.scansNow, w.scanCredit = 0, 0
	w.wmValid = false
	w.stashed = 0
	w.addRun(0, &walkRun{items: items, loaded: -1})
	if w.totalRuns() > w.maxRuns() {
		w.compact()
	}
}

func (w *pqWalk) addRun(level int, r *walkRun) {
	for len(w.levels) <= level {
		w.levels = append(w.levels, nil)
	}
	w.levels[level] = append(w.levels[level], r)
}

// compact shadows runLevels.compact: level-local merges of remaining
// suffixes while over half the budget, then the cross-level smallest-runs
// fallback. Merges are priced by Theorem 3.2 — one read per input block
// plus a two-block initialization per run, one write per output block —
// with misaligned frontiers paying the suffix copy. All frames drop, so
// every surviving run reloads at the next refill.
func (w *pqWalk) compact() {
	for level := 0; level < len(w.levels) && w.totalRuns() > w.maxRuns()/2; level++ {
		if len(w.levels[level]) < 2 {
			continue
		}
		live := w.levels[level]
		w.levels[level] = nil
		w.mergeInto(level+1, live)
	}
	if w.totalRuns() > w.maxRuns() {
		// Fallback: prune consumed runs, then merge the smallest across
		// levels.
		for lv := range w.levels {
			kept := w.levels[lv][:0]
			for _, r := range w.levels[lv] {
				if r.remaining() > 0 {
					kept = append(kept, r)
				}
			}
			w.levels[lv] = kept
		}
		if w.totalRuns() > w.maxRuns()/2 {
			type located struct {
				r     *walkRun
				level int
			}
			var live []located
			for lv, runs := range w.levels {
				for _, r := range runs {
					live = append(live, located{r, lv})
				}
			}
			sort.SliceStable(live, func(i, j int) bool {
				return live[i].r.remaining() < live[j].r.remaining()
			})
			take := len(live) - w.maxRuns()/2 + 1
			if take >= 2 {
				if take > len(live) {
					take = len(live)
				}
				var runs []*walkRun
				deepest := 0
				for _, lr := range live[:take] {
					runs = append(runs, lr.r)
					if lr.level > deepest {
						deepest = lr.level
					}
					lvl := w.levels[lr.level]
					for i, r := range lvl {
						if r == lr.r {
							w.levels[lr.level] = append(lvl[:i], lvl[i+1:]...)
							break
						}
					}
				}
				w.mergeInto(deepest+1, runs)
			}
		}
	}
	for _, lv := range w.levels {
		for _, r := range lv {
			r.loaded = -1 // frames dropped; reload at next refill
		}
	}
}

// mergeInto merges the remaining suffixes of runs into one run at the
// given level, charging the merge's I/O.
func (w *pqWalk) mergeInto(level int, runs []*walkRun) {
	var out []aem.Item
	for _, r := range runs {
		if r.remaining() == 0 {
			continue
		}
		rem := r.remaining()
		if r.cur%w.cfg.B != 0 {
			// Misaligned frontier: the suffix is copied first.
			w.reads += w.blocksOf(rem)
			w.writes += w.blocksOf(rem)
		}
		// Merge scan priced with the §3.1 round structure: every round
		// re-initializes each run's two-block window, which EXP-M1
		// measures at 4–6× the raw block count on small merges.
		w.reads += 5 * w.blocksOf(rem)
		out = append(out, r.items[r.cur:]...)
	}
	if len(out) == 0 {
		return
	}
	w.writes += w.blocksOf(len(out))
	sort.Slice(out, func(i, j int) bool { return aem.Less(out[i], out[j]) })
	w.addRun(level, &walkRun{items: out, loaded: -1})
}

func (w *pqWalk) delete() {
	if len(w.db) == 0 {
		w.refill()
	}
	w.db = w.db[1:]
}

// frontierMin returns the run with the smallest head, charging frame
// loads exactly as the tournament tree does: every live run's frontier
// block must be resident to compare heads.
func (w *pqWalk) frontierMin() *walkRun {
	var best *walkRun
	for _, lv := range w.levels {
		for _, r := range lv {
			if r.remaining() == 0 {
				continue
			}
			if r.loaded != r.cur/w.cfg.B {
				w.reads++
				r.loaded = r.cur / w.cfg.B
			}
			if best == nil || aem.Less(r.items[r.cur], best.items[best.cur]) {
				best = r
			}
		}
	}
	return best
}

func (w *pqWalk) refill() {
	if !w.adaptive {
		w.fold() // the sequence heap flushes its insertion buffer first
	}
	w.scanCredit = 0
	for len(w.db) < w.capDB {
		best := w.frontierMin()
		bufFirst := w.buffer.Len() > 0 && (best == nil || !aem.Less(best.items[best.cur], w.buffer.Peek()))
		switch {
		case !bufFirst && best != nil:
			w.db = append(w.db, best.items[best.cur])
			best.cur++
			if best.remaining() > 0 && best.cur%w.cfg.B == 0 {
				w.reads++ // frontier crosses into the next block
				best.loaded = best.cur / w.cfg.B
			}
		case w.buffer.Len() > 0:
			if !w.adaptive {
				// Unreachable: the sequence heap folded above.
				w.fold()
				continue
			}
			// The buffer holds the minimum: rent a selection scan if the
			// budget allows, otherwise buy the fold.
			if w.scanCredit == 0 {
				if w.scansNow >= w.scanBud {
					w.fold()
					continue
				}
				w.scansNow++
				w.scans++
				w.scanCredit = w.capDB
				w.reads += w.blocksOf(w.buffer.Len())
			}
			w.scanCredit--
			it := w.buffer.Pop()
			if !w.wmValid || aem.Less(w.wm, it) {
				w.wm, w.wmValid = it, true
			}
			// Scan consumption drains the stash region too (stashed
			// items sit at the bottom of the buffer).
			if w.stashed > 0 {
				w.stashed--
			}
			w.db = append(w.db, it)
		default:
			return
		}
	}
}
