// A custom experiment on the declarative scenario engine: declare a grid
// (axes), a point function, and a predicted-bound hook — the engine owns
// iteration, point-granular scheduling and deterministic table assembly.
// This sweep crosses ω with the key distribution of the input, a scenario
// the hand-written experiment loops never covered: the §3 mergesort's
// cost is distribution-oblivious, and the flat meas/pred column shows it.
package main

import (
	"os"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/harness"
	"repro/internal/sorting"
	"repro/internal/workload"
)

func main() {
	const n = 1 << 13
	cfgOf := func(p harness.Point) aem.Config {
		return aem.Config{M: 128, B: 8, Omega: p.Int("omega")}
	}
	spec := &harness.Spec{
		ID:    "EX-GRID",
		Title: "custom spec: mergesort cost across ω × key distribution",
		Claim: "the §3 mergesort is distribution-oblivious: meas/pred is flat along both axes",
		Axes: []harness.Axis{
			{Name: "omega", Values: harness.Ints(1, 8, 64)},
			{Name: "dist", Values: harness.Vals(workload.Random, workload.Sorted, workload.FewDistinct)},
		},
		Columns: append(harness.Cols("omega", "dist", "reads", "writes", "cost"),
			harness.Column{Name: "meas/pred", Pred: func(p harness.Point) float64 {
				cfg := cfgOf(p)
				return bounds.MergeSortPredicted(bounds.Params{N: n, Cfg: cfg}).Cost(cfg.Omega)
			}},
		),
		Point: func(p harness.Point) harness.Row {
			cfg := cfgOf(p)
			dist := p.Value("dist").(workload.KeyDist)
			ma := aem.New(cfg)
			in := workload.Keys(workload.NewRNG(7), dist, n)
			sorting.MergeSort(ma, aem.Load(ma, in))
			st := ma.Stats()
			return harness.Row{cfg.Omega, dist.String(), st.Reads, st.Writes, ma.Cost(), ma.Cost()}
		},
	}
	// Grid points spread across 4 workers; the table is identical at any par.
	harness.Run([]*harness.Spec{spec}, 4, func(t *harness.Table) { t.Render(os.Stdout) })
}
