package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// pprofTop fabricates a `go tool pprof -top` dump with the given
// (flat%, name) rows under a realistic banner.
func pprofTop(t *testing.T, dir, name string, rows ...string) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("File: aem\nType: cpu\nTime: Aug 8, 2026 at 9:00am (UTC)\n")
	b.WriteString("Showing nodes accounting for 2.40s, 80.00% of 3s total\n")
	b.WriteString("Dropped 61 nodes (cum <= 0.015s)\n")
	b.WriteString("Showing top 15 nodes out of 120\n")
	b.WriteString("      flat  flat%   sum%        cum   cum%\n")
	for _, r := range rows {
		b.WriteString(r + "\n")
	}
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func profdiffRun(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var code int
	out := captureStdout(t, func() {
		code = profdiffCmd("aem profdiff", args)
	})
	return code, string(out)
}

// TestProfdiffPassAndNewEntrant: known symbols may shift weight freely,
// but a function above the threshold that the baseline has never seen
// fails the gate and is named in the output.
func TestProfdiffPassAndNewEntrant(t *testing.T) {
	dir := t.TempDir()
	base := pprofTop(t, dir, "baseline.txt",
		"     1.20s 40.00% 40.00%      1.50s 50.00%  repro/internal/dict.(*BufferTree).flushNode",
		"     0.60s 20.00% 60.00%      0.70s 23.33%  repro/internal/aem.(*Machine).Read",
		"     0.30s 10.00% 70.00%      0.30s 10.00%  runtime.memmove",
	)
	// Same inventory, different weights: pass.
	cur := pprofTop(t, dir, "cur.txt",
		"     1.50s 50.00% 50.00%      1.80s 60.00%  repro/internal/aem.(*Machine).Read",
		"     0.90s 30.00% 80.00%      1.00s 33.33%  repro/internal/dict.(*BufferTree).flushNode",
	)
	if code, out := profdiffRun(t, "-baseline", base, cur); code != 0 {
		t.Fatalf("weight shift failed the gate (exit %d)\n%s", code, out)
	}
	// A 25% newcomer: fail and name it.
	hot := pprofTop(t, dir, "hot.txt",
		"     1.20s 40.00% 40.00%      1.50s 50.00%  repro/internal/dict.(*BufferTree).flushNode",
		"     0.75s 25.00% 65.00%      0.80s 26.67%  repro/internal/dict.(*BufferTree).accidentalQuadratic",
	)
	code, out := profdiffRun(t, "-baseline", base, hot)
	if code != 1 {
		t.Fatalf("new 25%% entrant exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "accidentalQuadratic") || !strings.Contains(out, "NEW") {
		t.Errorf("failure output does not name the entrant:\n%s", out)
	}
	// Below threshold the same newcomer is tolerated…
	if code, _ := profdiffRun(t, "-baseline", base, "-threshold", "30", hot); code != 0 {
		t.Error("25% entrant failed a 30% threshold")
	}
	// …and a tighter threshold catches smaller ones.
	small := pprofTop(t, dir, "small.txt",
		"     0.18s  6.00%  6.00%      0.20s  6.67%  repro/internal/dict.newLeak",
	)
	if code, _ := profdiffRun(t, "-baseline", base, "-threshold", "5", small); code != 1 {
		t.Error("6% entrant passed a 5% threshold")
	}
}

// TestProfdiffConcatenatedDumps: CI appends the cpu and mem -top dumps
// into one summary file; both sections must parse, with " (inline)"
// suffixes kept as part of the symbol and duplicates keeping max flat%.
func TestProfdiffConcatenatedDumps(t *testing.T) {
	dir := t.TempDir()
	cpu := pprofTop(t, dir, "cpu.txt",
		"     1.20s 40.00% 40.00%      1.50s 50.00%  runtime.mallocgc (inline)",
	)
	mem := pprofTop(t, dir, "mem.txt",
		"  512.04MB 60.00% 60.00%   512.04MB 60.00%  repro/internal/dict.newChainWriter",
		"  256.02MB 30.00% 90.00%   256.02MB 30.00%  runtime.mallocgc (inline)",
	)
	cpuRaw, _ := os.ReadFile(cpu)
	memRaw, _ := os.ReadFile(mem)
	both := filepath.Join(dir, "summary.txt")
	if err := os.WriteFile(both, append(cpuRaw, memRaw...), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := parseProfTop(both)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, e := range entries {
		got[e.Name] = e.FlatPct
	}
	if got["runtime.mallocgc (inline)"] != 40 {
		t.Errorf("duplicate symbol flat%% = %v, want max 40", got["runtime.mallocgc (inline)"])
	}
	if got["repro/internal/dict.newChainWriter"] != 60 {
		t.Errorf("mem section not parsed: %v", got)
	}
	// Self-diff of the concatenated file passes at any threshold.
	if code, out := profdiffRun(t, "-baseline", both, "-threshold", "1", both); code != 0 {
		t.Fatalf("self-diff failed (exit %d)\n%s", code, out)
	}
}

// TestProfdiffUsageErrors: missing flags or empty inputs are usage
// errors (exit 2), distinct from a gate failure.
func TestProfdiffUsageErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("File: aem\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ok := pprofTop(t, dir, "ok.txt",
		"     1.20s 40.00% 40.00%      1.50s 50.00%  runtime.memmove",
	)
	if code, _ := profdiffRun(t, ok); code != 2 {
		t.Error("missing -baseline accepted")
	}
	if code, _ := profdiffRun(t, "-baseline", ok); code != 2 {
		t.Error("missing current file accepted")
	}
	if code, _ := profdiffRun(t, "-baseline", empty, ok); code != 2 {
		t.Error("empty baseline accepted")
	}
	if code, _ := profdiffRun(t, "-baseline", ok, empty); code != 2 {
		t.Error("empty current summary accepted")
	}
	if code, _ := profdiffRun(t, "-baseline", filepath.Join(dir, "missing.txt"), ok); code != 2 {
		t.Error("missing baseline file accepted")
	}
}
