package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rng"
)

// shardSpecs builds a small multi-spec registry exercising everything the
// wire format must carry: a multi-axis grid with a dynamic axis, Skip,
// predicted-bound columns and a derived column over the finished grid; a
// second plain spec; and optionally a panic-injecting spec plus a spec
// behind it (whose emission must be suppressed identically on both
// paths).
func shardSpecs(withPanic bool) []*Spec {
	grid := &Spec{
		ID:    "GRID",
		Title: "synthetic multi-axis grid",
		Axes: []Axis{
			{Name: "a", Values: Ints(1, 2, 3)},
			{Name: "b", Values: Ints(10, 20, 30, 40)},
			{Name: "c", Dyn: func(outer Point) []interface{} { return Ints(0, outer.Int("a")) }},
		},
		Skip: func(p Point) bool { return p.Int("b") == 30 && p.Int("c") == 0 },
		Columns: append(Cols("a", "b", "c", "sum"),
			Column{Name: "ratio", Pred: func(p Point) float64 { return float64(p.Int("b")) }}),
		Derived: []DerivedColumn{
			{Name: "vs first", From: func(rows []Row, i int) interface{} {
				return toFloat(rows[i][3]) / toFloat(rows[0][3])
			}},
		},
		Point: func(p Point) Row {
			s := p.Int("a") + p.Int("b") + p.Int("c")
			return Row{p.Int("a"), p.Int("b"), p.Int("c"), s, s}
		},
	}
	labels := &Spec{
		ID:      "LABELS",
		Title:   "strings and floats survive the round-trip",
		Axes:    []Axis{{Name: "s", Values: Vals("x", "y,z", `q"r`)}},
		Columns: Cols("s", "third"),
		Point: func(p Point) Row {
			return Row{p.Str("s"), 1.0 / 3.0}
		},
	}
	specs := []*Spec{grid, labels}
	if withPanic {
		bomb := &Spec{
			ID:      "BOMB",
			Axes:    []Axis{{Name: "i", Values: Ints(0, 1, 2, 3, 4, 5)}},
			Columns: Cols("i"),
			Point: func(p Point) Row {
				if p.Int("i") >= 3 {
					panic(fmt.Sprintf("injected at %d", p.Int("i")))
				}
				return Row{p.Int("i")}
			},
		}
		specs = append(specs, bomb, sleepSpec("AFTER", 0, nil))
	}
	return specs
}

// renderForms captures every output form `aem bench` produces — rendered
// text, JSON row records, CSV — plus the aggregated failure panic, from
// whichever table-producing execution path.
func renderForms(t *testing.T, run func(emit func(*Table))) (text, jsonOut, csv []byte, failure string) {
	t.Helper()
	var tb, jb, cb bytes.Buffer
	func() {
		defer func() {
			if r := recover(); r != nil {
				failure = fmt.Sprint(r)
			}
		}()
		run(func(tbl *Table) {
			tbl.Render(&tb)
			if err := tbl.JSON(&jb); err != nil {
				t.Fatalf("JSON render: %v", err)
			}
			tbl.CSV(&cb)
		})
	}()
	return tb.Bytes(), jb.Bytes(), cb.Bytes(), failure
}

// shardAndMerge executes the specs as m shards at the given parallelism
// and merges the parsed shard files back into tables.
func shardAndMerge(t *testing.T, specs []*Spec, m, par int, timing bool) (text, jsonOut, csv []byte, failure string) {
	t.Helper()
	files := make([]*ShardFile, m)
	for i := 0; i < m; i++ {
		var buf bytes.Buffer
		ex := &ShardExecutor{Index: i, Count: m, Par: par, W: &buf}
		err := ex.Execute(specs, nil)
		if err != nil && !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("shard %d/%d: %v", i, m, err)
		}
		sf, perr := ReadShardFile(&buf)
		if perr != nil {
			t.Fatalf("shard %d/%d parse: %v", i, m, perr)
		}
		files[i] = sf
	}
	return renderForms(t, func(emit func(*Table)) {
		if err := MergeShards(specs, files, timing, emit); err != nil {
			t.Fatalf("merge: %v", err)
		}
	})
}

// TestShardMergeByteIdentity is the distributed path's property test: for
// random shard counts m ∈ {1..5} and random parallelism, merging the m
// shard outputs must reproduce the unsharded run byte-for-byte in every
// output form — rendered tables, JSON row records and CSV — including
// with a panic-injecting spec in the mix, where the emitted prefix and
// the aggregated failure IDs must survive the shard/merge round-trip
// unchanged.
func TestShardMergeByteIdentity(t *testing.T) {
	for _, withPanic := range []bool{false, true} {
		specs := shardSpecs(withPanic)
		wantText, wantJSON, wantCSV, wantFail := renderForms(t, func(emit func(*Table)) {
			(&LocalPool{Par: 1}).Execute(specs, emit)
		})
		if withPanic == (wantFail == "") {
			t.Fatalf("withPanic=%v but failure=%q", withPanic, wantFail)
		}
		r := rng.New(20170724)
		for trial := 0; trial < 10; trial++ {
			m := 1 + int(r.Intn(5))
			par := 1 + int(r.Intn(8))
			text, jsonOut, csv, fail := shardAndMerge(t, shardSpecs(withPanic), m, par, false)
			if !bytes.Equal(text, wantText) {
				t.Fatalf("withPanic=%v m=%d par=%d: rendered text differs from the unsharded run", withPanic, m, par)
			}
			if !bytes.Equal(jsonOut, wantJSON) {
				t.Fatalf("withPanic=%v m=%d par=%d: JSON records differ from the unsharded run", withPanic, m, par)
			}
			if !bytes.Equal(csv, wantCSV) {
				t.Fatalf("withPanic=%v m=%d par=%d: CSV differs from the unsharded run", withPanic, m, par)
			}
			if fail != wantFail {
				t.Fatalf("withPanic=%v m=%d par=%d: failure %q != unsharded failure %q", withPanic, m, par, fail, wantFail)
			}
		}
	}
}

// TestShardMergeFailureNamesEveryExperiment: the aggregated failure IDs
// of a multi-failure run survive the shard/merge round-trip.
func TestShardMergeFailureNamesEveryExperiment(t *testing.T) {
	specs := []*Spec{
		sleepSpec("OK-1", 0, nil),
		{ID: "BOOM-1", Columns: Cols("x"), Point: func(Point) Row { panic("first failure") }},
		{ID: "BOOM-2", Columns: Cols("x"), Point: func(Point) Row { panic("second failure") }},
	}
	_, _, _, fail := shardAndMerge(t, specs, 2, 2, false)
	for _, want := range []string{"BOOM-1", "first failure", "BOOM-2", "second failure"} {
		if !strings.Contains(fail, want) {
			t.Errorf("merged failure %q is missing %q", fail, want)
		}
	}
}

// TestShardMergeEnumerationPanic: a grid-enumeration panic (spec-authored
// Dyn/Skip code) reproduces at merge time with the same experiment ID and
// message as the unsharded run, with no record needed on the wire.
func TestShardMergeEnumerationPanic(t *testing.T) {
	mk := func() []*Spec {
		return []*Spec{
			sleepSpec("OK-1", 0, nil),
			{
				ID:      "BAD-GRID",
				Axes:    []Axis{{Name: "x", Dyn: func(Point) []interface{} { panic("axis exploded") }}},
				Columns: Cols("x"),
				Point:   func(p Point) Row { return Row{p.Int("x")} },
			},
		}
	}
	_, _, _, wantFail := renderForms(t, func(emit func(*Table)) {
		(&LocalPool{Par: 1}).Execute(mk(), emit)
	})
	_, _, _, fail := shardAndMerge(t, mk(), 3, 2, false)
	if fail != wantFail || !strings.Contains(fail, "BAD-GRID") || !strings.Contains(fail, "axis exploded") {
		t.Fatalf("merged enumeration failure %q, want %q", fail, wantFail)
	}
}

// shardFiles runs the specs as m shards and returns the parsed files.
func shardFiles(t *testing.T, specs []*Spec, m int) []*ShardFile {
	t.Helper()
	files := make([]*ShardFile, m)
	for i := 0; i < m; i++ {
		var buf bytes.Buffer
		if err := (&ShardExecutor{Index: i, Count: m, Par: 2, W: &buf}).Execute(specs, nil); err != nil {
			t.Fatalf("shard %d/%d: %v", i, m, err)
		}
		sf, err := ReadShardFile(&buf)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = sf
	}
	return files
}

// expectMergeError asserts MergeShards rejects the shard set with an
// error mentioning want.
func expectMergeError(t *testing.T, specs []*Spec, files []*ShardFile, want string) {
	t.Helper()
	err := MergeShards(specs, files, false, func(*Table) {})
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("MergeShards error = %v, want mention of %q", err, want)
	}
}

// TestMergeShardValidation: torn, incomplete, duplicated, overlapping and
// foreign shard sets are rejected with specific diagnostics instead of
// producing a silently wrong table.
func TestMergeShardValidation(t *testing.T) {
	specs := shardSpecs(false)

	t.Run("missing shard", func(t *testing.T) {
		files := shardFiles(t, specs, 3)
		expectMergeError(t, specs, files[:2], "missing shard")
	})
	t.Run("duplicate shard", func(t *testing.T) {
		files := shardFiles(t, specs, 2)
		expectMergeError(t, specs, []*ShardFile{files[0], files[0]}, "duplicate shard")
	})
	t.Run("overlapping partitions", func(t *testing.T) {
		two := shardFiles(t, specs, 2)
		three := shardFiles(t, specs, 3)
		expectMergeError(t, specs, []*ShardFile{two[0], three[1]}, "partitions mixed")
	})
	t.Run("missing point", func(t *testing.T) {
		files := shardFiles(t, specs, 2)
		files[1].Records = files[1].Records[:len(files[1].Records)-1]
		expectMergeError(t, specs, files, "missing")
	})
	t.Run("duplicated point", func(t *testing.T) {
		files := shardFiles(t, specs, 2)
		files[0].Records = append(files[0].Records, files[0].Records[0])
		expectMergeError(t, specs, files, "duplicated point")
	})
	t.Run("point in the wrong shard", func(t *testing.T) {
		files := shardFiles(t, specs, 2)
		stolen := files[0].Records[0]
		files[1].Records = append(files[1].Records, stolen)
		files[0].Records = files[0].Records[1:]
		expectMergeError(t, specs, files, "overlapping")
	})
	t.Run("selection mismatch", func(t *testing.T) {
		files := shardFiles(t, specs, 2)
		expectMergeError(t, specs[:1], files, "specs")
	})
	t.Run("torn record cells", func(t *testing.T) {
		files := shardFiles(t, specs, 2)
		files[0].Records[0].Cells = append(files[0].Records[0].Cells, "extra")
		expectMergeError(t, specs, files, "torn record")
	})
	t.Run("torn record row", func(t *testing.T) {
		files := shardFiles(t, specs, 2)
		files[1].Records[0].Row = files[1].Records[0].Row[:1]
		expectMergeError(t, specs, files, "torn record")
	})
	t.Run("registry drift", func(t *testing.T) {
		files := shardFiles(t, specs, 2)
		files[0].Manifest.GridPoints++
		files[1].Manifest.GridPoints++
		expectMergeError(t, specs, files, "different grid")
	})
	t.Run("no files", func(t *testing.T) {
		expectMergeError(t, specs, nil, "no shard files")
	})
}

// TestReadShardFileRejectsGarbage: torn or foreign inputs fail parsing
// with line-level diagnostics.
func TestReadShardFileRejectsGarbage(t *testing.T) {
	for _, tc := range []struct{ name, in, want string }{
		{"empty", "", "no manifest"},
		{"not json", "hello\n", "shard line 1"},
		{"point before manifest", `{"type":"point","experiment":"X","index":0,"points":1}` + "\n", "before the shard manifest"},
		{"unknown type", `{"type":"shard","shard":0,"of":1,"experiments":["X"],"grid_points":1}` + "\n" + `{"type":"mystery"}` + "\n", "unknown record type"},
		{"second manifest", `{"type":"shard","shard":0,"of":1,"experiments":["X"],"grid_points":1}` + "\n" + `{"type":"shard","shard":0,"of":1,"experiments":["X"],"grid_points":1}` + "\n", "second manifest"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadShardFile(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ReadShardFile error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestShardExecutorPartition: the global point list is partitioned
// round-robin over grid order — every point appears in exactly one shard,
// and consecutive global points land on consecutive shards.
func TestShardExecutorPartition(t *testing.T) {
	specs := shardSpecs(false)
	const m = 3
	files := shardFiles(t, specs, m)
	// Reconstruct each spec's global index base from the specs themselves.
	base := map[string]int{}
	total := 0
	for _, s := range specs {
		base[s.ID] = total
		total += len(s.Points())
	}
	seen := make(map[int]int) // global index -> shard
	for _, f := range files {
		if f.Manifest.GridPoints != total {
			t.Fatalf("manifest grid_points = %d, want %d", f.Manifest.GridPoints, total)
		}
		for _, rec := range f.Records {
			g := base[rec.Experiment] + rec.Index
			if prev, dup := seen[g]; dup {
				t.Fatalf("global point %d in shards %d and %d", g, prev, f.Manifest.Shard)
			}
			seen[g] = f.Manifest.Shard
			if want := g % m; f.Manifest.Shard != want {
				t.Fatalf("global point %d landed on shard %d, want %d (round-robin)", g, f.Manifest.Shard, want)
			}
		}
	}
	if len(seen) != total {
		t.Fatalf("shards cover %d of %d global points", len(seen), total)
	}
}

// TestLocalPoolTiming: with Timing set, every emitted table carries one
// wall-clock entry per row, rendered as a trailing "wall ms" column and a
// wall_ns JSON field — and with Timing unset nothing changes, which is
// what keeps the recorded goldens stable.
func TestLocalPoolTiming(t *testing.T) {
	specs := shardSpecs(false)
	var timed, plain []*Table
	(&LocalPool{Par: 4, Timing: true}).Execute(specs, func(tbl *Table) { timed = append(timed, tbl) })
	(&LocalPool{Par: 4}).Execute(shardSpecs(false), func(tbl *Table) { plain = append(plain, tbl) })

	for i, tbl := range timed {
		if len(tbl.WallNS) != len(tbl.Rows) {
			t.Fatalf("%s: %d wall-clock entries for %d rows", tbl.ID, len(tbl.WallNS), len(tbl.Rows))
		}
		var text bytes.Buffer
		tbl.Render(&text)
		if !strings.Contains(text.String(), "wall ms") {
			t.Errorf("%s: timed rendering lacks the wall ms column", tbl.ID)
		}
		var jb bytes.Buffer
		if err := tbl.JSON(&jb); err != nil {
			t.Fatal(err)
		}
		var rec struct {
			WallNS *int64 `json:"wall_ns"`
		}
		if err := json.Unmarshal([]byte(strings.SplitN(jb.String(), "\n", 2)[0]), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.WallNS == nil {
			t.Errorf("%s: timed JSON record lacks wall_ns", tbl.ID)
		}

		if plain[i].WallNS != nil {
			t.Fatalf("%s: timing attached without Timing", plain[i].ID)
		}
		var ptext bytes.Buffer
		plain[i].Render(&ptext)
		if strings.Contains(ptext.String(), "wall ms") {
			t.Errorf("%s: untimed rendering grew a wall ms column", plain[i].ID)
		}
	}
}

// TestMergeTiming: the shards' per-point wall-clock reaches merged tables
// when (and only when) asked for.
func TestMergeTiming(t *testing.T) {
	specs := shardSpecs(false)
	files := shardFiles(t, specs, 2)
	var timed []*Table
	if err := MergeShards(specs, files, true, func(tbl *Table) { timed = append(timed, tbl) }); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range timed {
		if len(tbl.WallNS) != len(tbl.Rows) {
			t.Fatalf("%s: %d wall-clock entries for %d rows", tbl.ID, len(tbl.WallNS), len(tbl.Rows))
		}
	}
	var plain []*Table
	if err := MergeShards(specs, files, false, func(tbl *Table) { plain = append(plain, tbl) }); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range plain {
		if tbl.WallNS != nil {
			t.Fatalf("%s: timing attached without asking", tbl.ID)
		}
	}
}
