package harness

import (
	"fmt"
	"sync"
)

// Run executes the given experiments on a worker pool of at most par
// concurrent goroutines and calls emit exactly once per experiment, in the
// order of exps, as soon as each table and all of its predecessors are
// ready. Every experiment owns its private machine and derives its inputs
// from fixed seeds, so they are embarrassingly parallel and the emitted
// tables are identical for every par — parallelism changes wall-clock
// time, never output. par < 1 is treated as 1.
//
// If an experiment panics, Run waits for the in-flight workers and then
// re-panics with the experiment's ID attached.
func Run(exps []Experiment, par int, emit func(*Table)) {
	if par < 1 {
		par = 1
	}
	if len(exps) == 0 {
		return
	}

	type result struct {
		tbl   *Table
		panic interface{}
	}
	results := make([]chan result, len(exps))
	for i := range results {
		results[i] = make(chan result, 1)
	}

	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, e := range exps {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					results[i] <- result{panic: fmt.Sprintf("harness: experiment %s: %v", e.ID, r)}
				}
			}()
			results[i] <- result{tbl: e.Run()}
		}(i, e)
	}

	var failure interface{}
	for i := range exps {
		r := <-results[i]
		if r.panic != nil {
			if failure == nil {
				failure = r.panic
			}
			continue
		}
		if failure == nil {
			emit(r.tbl)
		}
	}
	wg.Wait()
	if failure != nil {
		panic(failure)
	}
}

// RunAll runs every experiment at the given parallelism and returns the
// tables in All()'s order.
func RunAll(par int) []*Table {
	var tables []*Table
	Run(All(), par, func(t *Table) { tables = append(tables, t) })
	return tables
}
