package cli

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/harness"
)

// gateCmd is the throughput regression gate: it derives per-experiment
// ns/point from the wall_ns fields of any timed JSON Lines stream — an
// `aem bench -json -timing` run, or the point records of a shard or fleet
// run (`aem bench -shard`, `aem serve`), which always carry wall_ns — and
// compares against a committed baseline, failing only on pathological
// slowdowns. The tolerance is deliberately generous (default 3×): the
// gate exists to catch an accidentally re-boxed hot path or a quadratic
// regression, not to flake on a noisy CI machine.
//
//	aem bench -json -timing -exp EXP-MG1 > BENCH.json
//	aem gate -bench BENCH.json -baseline testdata/throughput_baseline.json
//	aem gate -bench BENCH.json -baseline ... -write-baseline   (re-pin)
//	aem gate -bench BENCH.json -baseline ... -json >> BENCH.json
//
// The per-experiment ratio table is printed on pass and fail alike — the
// trend matters even when nothing regressed. Under -json each comparison
// additionally emits one machine-readable "type":"gate" record to stdout
// (the human table moves to stderr), so appending the gate's verdict to
// the bench artifact it judged makes successive BENCH_pr*.json artifacts
// a diffable throughput trend; every wall_ns consumer (including this
// gate) skips unknown typed records, so the appended file still merges,
// gates and re-gates cleanly.
//
// Experiments measured but missing from the baseline are reported and
// skipped (adding an experiment must not insta-fail CI); re-pin the
// baseline to start tracking them. Experiments in the baseline but not
// measured are ignored — the gate judges what ran.
func gateCmd(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		benchPath = fs.String("bench", "", "JSON Lines file from `aem bench -json -timing` ('-' or empty for stdin)")
		basePath  = fs.String("baseline", "", "committed baseline JSON to compare against (required)")
		tol       = fs.Float64("tol", 3.0, "maximum tolerated ns/point slowdown factor vs the baseline")
		write     = fs.Bool("write-baseline", false, "write the measured summaries to -baseline instead of comparing")
		jsonOut   = fs.Bool("json", false, "emit one \"type\":\"gate\" JSON record per experiment to stdout (human table to stderr)")
	)
	fs.Parse(args)
	if *basePath == "" {
		fail(prog, "-baseline is required")
		return 2
	}
	if *tol <= 0 {
		fail(prog, "-tol must be positive, got %v", *tol)
		return 2
	}

	var in io.Reader = os.Stdin
	if *benchPath != "" && *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fail(prog, "%v", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	measured, order, err := readBenchTimings(in)
	if err != nil {
		fail(prog, "%v", err)
		return 1
	}
	if len(order) == 0 {
		fail(prog, "no timed records in the bench input — was it produced with -json -timing?")
		return 1
	}

	if *write {
		if err := writeBaseline(*basePath, measured, order); err != nil {
			fail(prog, "%v", err)
			return 1
		}
		fmt.Printf("baseline written: %s (%d experiments)\n", *basePath, len(order))
		return 0
	}

	base, err := readBaseline(*basePath)
	if err != nil {
		fail(prog, "%v", err)
		return 1
	}
	// Under -json the human table yields stdout to the records, so the
	// records can be appended straight onto the bench artifact.
	human := io.Writer(os.Stdout)
	var enc *json.Encoder
	if *jsonOut {
		human = os.Stderr
		enc = json.NewEncoder(os.Stdout)
	}
	failures := 0
	for _, id := range order {
		m := measured[id]
		rec := gateRecord{Type: "gate", Experiment: id, Points: m.Points,
			NSPerPoint: m.NSPerPoint, Tol: *tol, Verdict: "ok"}
		b, ok := base.Experiments[id]
		if !ok || b.NSPerPoint <= 0 {
			rec.Verdict = "no-baseline"
			fmt.Fprintf(human, "%-10s %8.3f ms/point (%d points) — no baseline, skipped (re-pin with -write-baseline)\n",
				id, m.NSPerPoint/1e6, m.Points)
		} else {
			rec.BaselineNSPerPoint = b.NSPerPoint
			rec.Ratio = m.NSPerPoint / b.NSPerPoint
			verdict := "ok"
			if rec.Ratio > *tol {
				rec.Verdict = "fail"
				verdict = fmt.Sprintf("FAIL (> %gx tolerance)", *tol)
				failures++
			}
			fmt.Fprintf(human, "%-10s %8.3f ms/point vs baseline %8.3f ms/point — %.2fx %s\n",
				id, m.NSPerPoint/1e6, b.NSPerPoint/1e6, rec.Ratio, verdict)
		}
		if enc != nil {
			if err := enc.Encode(&rec); err != nil {
				fail(prog, "%v", err)
				return 1
			}
		}
	}
	if failures > 0 {
		fail(prog, "%d experiment(s) exceeded the %gx throughput tolerance", failures, *tol)
		return 1
	}
	return 0
}

// gateRecord is the machine-readable form of one gate comparison, emitted
// under -json. Its "gate" type keeps it invisible to every wall_ns
// consumer (readBenchTimings, `aem merge`), so gate records append onto
// the bench artifact they judged and the file remains a valid timed
// stream; successive per-PR artifacts then diff as a throughput trend.
type gateRecord struct {
	Type               string  `json:"type"` // "gate"
	Experiment         string  `json:"experiment"`
	Points             int     `json:"points"`
	NSPerPoint         float64 `json:"ns_per_point"`
	BaselineNSPerPoint float64 `json:"baseline_ns_per_point,omitempty"`
	Ratio              float64 `json:"ratio,omitempty"`
	Tol                float64 `json:"tol"`
	Verdict            string  `json:"verdict"` // ok | fail | no-baseline
}

// throughputBaseline is the committed reference the gate compares against.
type throughputBaseline struct {
	Note        string                        `json:"note,omitempty"`
	Experiments map[string]harness.Throughput `json:"experiments"`
}

// readBenchTimings aggregates the wall_ns fields of a bench/merge JSON
// Lines stream into per-experiment summaries, preserving first-seen
// order. Two record shapes carry timings: the untyped row records of
// `aem bench -json -timing` / `aem merge -json -timing`, and the
// "type":"point" records of shard and fleet streams (`aem bench -shard`,
// `aem serve`, `aem work -residual`), whose wall_ns is always recorded.
// Row records without wall_ns, shard manifests and the stream's own
// throughput summary records are skipped: the gate re-derives from the
// raw points, so it works on any timed stream regardless of which
// records survived ad-hoc filtering.
func readBenchTimings(r io.Reader) (map[string]*harness.Throughput, []string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	out := map[string]*harness.Throughput{}
	var order []string
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec struct {
			Type       string `json:"type"`
			Experiment string `json:"experiment"`
			WallNS     *int64 `json:"wall_ns"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, nil, fmt.Errorf("bench input line %d: %v", line, err)
		}
		if (rec.Type != "" && rec.Type != "point") || rec.Experiment == "" || rec.WallNS == nil {
			continue
		}
		tp, ok := out[rec.Experiment]
		if !ok {
			tp = &harness.Throughput{Type: "throughput", Experiment: rec.Experiment}
			out[rec.Experiment] = tp
			order = append(order, rec.Experiment)
		}
		tp.Points++
		tp.WallNS += *rec.WallNS
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	for _, tp := range out {
		tp.NSPerPoint = float64(tp.WallNS) / float64(tp.Points)
		if tp.WallNS > 0 {
			tp.PointsPerSec = float64(tp.Points) / (float64(tp.WallNS) / 1e9)
		}
	}
	return out, order, nil
}

func readBaseline(path string) (*throughputBaseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base throughputBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(base.Experiments) == 0 {
		return nil, fmt.Errorf("%s: baseline holds no experiments", path)
	}
	return &base, nil
}

func writeBaseline(path string, measured map[string]*harness.Throughput, order []string) error {
	base := throughputBaseline{
		Note:        "ns/point reference for `aem gate`; re-pin with `aem gate -write-baseline` after intentional perf changes",
		Experiments: map[string]harness.Throughput{},
	}
	for _, id := range order {
		base.Experiments[id] = *measured[id]
	}
	raw, err := json.MarshalIndent(&base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
