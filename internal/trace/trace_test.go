package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/aem"
	"repro/internal/sorting"
	"repro/internal/spmxv"
	"repro/internal/workload"
)

func record(t *testing.T, cfg aem.Config, run func(*aem.Machine)) []aem.TraceOp {
	t.Helper()
	ma := aem.New(cfg)
	ma.StartTrace()
	run(ma)
	return ma.StopTrace()
}

func TestDecomposeBudgets(t *testing.T) {
	cfg := aem.Config{M: 64, B: 8, Omega: 4}
	ops := record(t, cfg, func(ma *aem.Machine) {
		in := workload.Keys(workload.NewRNG(1), workload.Random, 2048)
		sorting.MergeSort(ma, aem.Load(ma, in))
	})
	rounds := Decompose(ops, cfg)
	if len(rounds) < 2 {
		t.Fatalf("only %d rounds for a %d-op trace", len(rounds), len(ops))
	}
	if err := CheckDecomposition(rounds, ops, cfg); err != nil {
		t.Fatal(err)
	}
	// The rounds' stats must add up to the trace totals.
	var total aem.Stats
	for _, r := range rounds {
		total = total.Add(r.Stats)
	}
	var want aem.Stats
	for _, op := range ops {
		if op.Kind == aem.OpRead {
			want.Reads++
		} else {
			want.Writes++
		}
	}
	if total != want {
		t.Errorf("round stats %+v != trace stats %+v", total, want)
	}
}

func TestDecomposeEmptyTrace(t *testing.T) {
	// A program that did no I/O ran in zero rounds: a phantom Round{0,0}
	// would make callers report Rounds: 1 for an empty trace.
	rounds := Decompose(nil, aem.Config{M: 16, B: 4, Omega: 2})
	if rounds != nil {
		t.Errorf("empty trace rounds = %+v, want nil", rounds)
	}
	if err := CheckDecomposition(rounds, nil, aem.Config{M: 16, B: 4, Omega: 2}); err != nil {
		t.Errorf("nil decomposition of empty trace rejected: %v", err)
	}
}

func TestConvertFactorOnRealAlgorithms(t *testing.T) {
	// Lemma 4.1 measured on actual executions: the conversion factor must
	// stay within the 3×Q + O(ωm) budget for the §3 mergesort, the EM
	// mergesort and the SpMxV algorithms.
	cfg := aem.Config{M: 64, B: 8, Omega: 8}
	cases := map[string]func(*aem.Machine){
		"mergesort": func(ma *aem.Machine) {
			in := workload.Keys(workload.NewRNG(2), workload.Random, 4096)
			sorting.MergeSort(ma, aem.Load(ma, in))
		},
		"emsort": func(ma *aem.Machine) {
			in := workload.Keys(workload.NewRNG(3), workload.Random, 4096)
			sorting.EMMergeSort(ma, aem.Load(ma, in))
		},
		"spmxv-sort": func(ma *aem.Machine) {
			conf := workload.NewConformation(workload.NewRNG(4), 512, 4)
			vals := make([]int64, conf.H())
			x := make([]int64, 512)
			m := spmxv.NewMatrix(ma, conf, vals)
			spmxv.SortBased(ma, m, spmxv.LoadDense(ma, x))
		},
	}
	for name, run := range cases {
		ops := record(t, cfg, run)
		conv := Convert(ops, cfg)
		budget := 3*conv.Original + 4*int64(cfg.Omega)*int64(cfg.BlocksInMemory())
		if conv.Converted > budget {
			t.Errorf("%s: converted cost %d > 3×%d + 4ωm", name, conv.Converted, conv.Original)
		}
		if conv.Rounds < 1 {
			t.Errorf("%s: %d rounds", name, conv.Rounds)
		}
		if conv.Factor() < 0.5 {
			t.Errorf("%s: factor %.2f suspiciously low", name, conv.Factor())
		}
	}
}

func TestConvertSavesRereads(t *testing.T) {
	// A trace that writes a block and immediately re-reads it within the
	// same round must have the re-read served from the buffer.
	cfg := aem.Config{M: 64, B: 8, Omega: 2}
	ops := []aem.TraceOp{
		{Kind: aem.OpWrite, Addr: 5},
		{Kind: aem.OpRead, Addr: 5},
		{Kind: aem.OpRead, Addr: 6},
	}
	conv := Convert(ops, cfg)
	if conv.SavedReads != 1 {
		t.Errorf("SavedReads = %d, want 1", conv.SavedReads)
	}
	// Original: 2 reads + 1 write = 2 + 2 = 4.
	if conv.Original != 4 {
		t.Errorf("Original = %d, want 4", conv.Original)
	}
	// Converted single round: 1 read (addr 6) + 1 flushed write, no
	// snapshot: 1 + 2 = 3 — cheaper than the original here.
	if conv.Converted != 3 {
		t.Errorf("Converted = %d, want 3", conv.Converted)
	}
}

func TestConvertEmptyTrace(t *testing.T) {
	conv := Convert(nil, aem.Config{M: 16, B: 4, Omega: 2})
	if conv.Original != 0 || conv.Rounds != 1 || conv.Factor() != 1 {
		t.Errorf("empty conversion = %+v", conv)
	}
}

func TestDecomposeQuick(t *testing.T) {
	// Property: any op sequence decomposes into rounds that partition it
	// and respect the budget.
	f := func(kinds []bool, mSel, bSel, wSel uint8) bool {
		b := 1 + int(bSel%8)
		cfg := aem.Config{M: 2*b + int(mSel), B: b, Omega: 1 + int(wSel%16)}
		ops := make([]aem.TraceOp, len(kinds))
		for i, isWrite := range kinds {
			if isWrite {
				ops[i] = aem.TraceOp{Kind: aem.OpWrite, Addr: aem.Addr(i)}
			} else {
				ops[i] = aem.TraceOp{Kind: aem.OpRead, Addr: aem.Addr(i)}
			}
		}
		rounds := Decompose(ops, cfg)
		return CheckDecomposition(rounds, ops, cfg) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConvertQuickBudget(t *testing.T) {
	// Property: the conversion factor respects 3×Q + 4ωm on any trace.
	f := func(kinds []bool, wSel uint8) bool {
		cfg := aem.Config{M: 32, B: 4, Omega: 1 + int(wSel%16)}
		ops := make([]aem.TraceOp, len(kinds))
		for i, isWrite := range kinds {
			kind := aem.OpRead
			if isWrite {
				kind = aem.OpWrite
			}
			ops[i] = aem.TraceOp{Kind: kind, Addr: aem.Addr(i % 7)}
		}
		conv := Convert(ops, cfg)
		budget := 3*conv.Original + 4*int64(cfg.Omega)*int64(cfg.BlocksInMemory())
		return conv.Converted <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
