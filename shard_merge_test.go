// Sharded execution against the recorded goldens: splitting the full
// registry across shards and merging the point records must land on the
// exact bytes `aem bench` produces on one machine — the acceptance
// criterion behind `aem bench -shard` / `aem merge`.
package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
)

// TestShardMergeMatchesGolden runs every registered experiment as a
// 2-shard distributed run, merges the shard outputs, and compares both
// the rendered-table and JSON Lines forms byte-for-byte against the same
// goldens that pin the unsharded `aem bench` output. Any divergence means
// the merge path re-derives something differently from the single-machine
// path — exactly the class of bug a distributed harness must not have.
func TestShardMergeMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	specs := harness.All()
	const m = 2
	files := make([]*harness.ShardFile, m)
	for i := 0; i < m; i++ {
		var buf bytes.Buffer
		ex := &harness.ShardExecutor{Index: i, Count: m, Par: 8, W: &buf}
		if err := ex.Execute(specs, nil); err != nil {
			t.Fatalf("shard %d/%d: %v", i, m, err)
		}
		sf, err := harness.ReadShardFile(&buf)
		if err != nil {
			t.Fatalf("shard %d/%d parse: %v", i, m, err)
		}
		files[i] = sf
	}

	var text, jsonOut bytes.Buffer
	if err := harness.MergeShards(specs, files, false, func(tbl *harness.Table) {
		tbl.Render(&text)
		if err := tbl.JSON(&jsonOut); err != nil {
			t.Fatalf("JSON render: %v", err)
		}
	}); err != nil {
		t.Fatalf("merge: %v", err)
	}

	want, err := os.ReadFile(filepath.Join("testdata", "aembench.golden"))
	if err != nil {
		t.Fatalf("missing golden (regenerate with `go test -run TestAembenchGolden -update`): %v", err)
	}
	if !bytes.Equal(text.Bytes(), want) {
		t.Errorf("merged 2-shard output diverged from the unsharded golden\n%s", diffHint(want, text.Bytes()))
	}
	wantJSON, err := os.ReadFile(filepath.Join("testdata", "aembench_json.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonOut.Bytes(), wantJSON) {
		t.Errorf("merged 2-shard JSON diverged from the unsharded golden\n%s", diffHint(wantJSON, jsonOut.Bytes()))
	}
}
