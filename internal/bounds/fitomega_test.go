package bounds

import (
	"math"
	"math/rand"
	"testing"
)

// synthetic builds n points with wall = alpha·qr + beta·qw plus optional
// noise, mixing two read/write ratios so the design is well-conditioned.
func synthetic(n int, alpha, beta, noise float64, rng *rand.Rand) (qr, qw, wall []float64) {
	qr = make([]float64, n)
	qw = make([]float64, n)
	wall = make([]float64, n)
	for i := range qr {
		scale := float64(1 + i*37)
		if i%2 == 0 {
			qr[i], qw[i] = 3*scale, scale // read-heavy points
		} else {
			qr[i], qw[i] = scale, scale // balanced points
		}
		wall[i] = alpha*qr[i] + beta*qw[i]
		if noise > 0 {
			wall[i] *= 1 + noise*(2*rng.Float64()-1)
		}
	}
	return qr, qw, wall
}

func TestFitOmegaExactRecovery(t *testing.T) {
	for _, tc := range []struct{ alpha, beta float64 }{
		{100, 100}, {100, 300}, {50, 800}, {1, 16},
	} {
		qr, qw, wall := synthetic(12, tc.alpha, tc.beta, 0, nil)
		fit, err := FitOmega(qr, qw, wall)
		if err != nil {
			t.Fatalf("alpha=%v beta=%v: %v", tc.alpha, tc.beta, err)
		}
		want := tc.beta / tc.alpha
		if math.Abs(fit.Omega-want) > 1e-9*want {
			t.Errorf("fitted ω = %v, want %v", fit.Omega, want)
		}
		if math.Abs(fit.Alpha-tc.alpha) > 1e-6 || math.Abs(fit.Beta-tc.beta) > 1e-6 {
			t.Errorf("coefficients (%v, %v), want (%v, %v)", fit.Alpha, fit.Beta, tc.alpha, tc.beta)
		}
		if fit.R2 < 1-1e-12 {
			t.Errorf("noise-free fit has R² = %v", fit.R2)
		}
	}
}

// TestFitOmegaMonotone pins the regression's defining property for the
// experiment: as the true per-write cost k grows in wall = Qr + k·Qw, the
// fitted ω must grow with it — even under multiplicative noise.
func TestFitOmegaMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(20170724))
	prev := -math.MaxFloat64
	for _, k := range []float64{1, 2, 4, 8, 16, 32} {
		qr, qw, wall := synthetic(40, 120, 120*k, 0.05, rng)
		fit, err := FitOmega(qr, qw, wall)
		if err != nil {
			t.Fatalf("k=%v: %v", k, err)
		}
		if !(fit.Omega > prev) {
			t.Errorf("fitted ω %v at k=%v not above previous %v", fit.Omega, k, prev)
		}
		if math.Abs(fit.Omega-k) > 0.3*k {
			t.Errorf("fitted ω %v far from true %v under 5%% noise", fit.Omega, k)
		}
		if !(fit.Omega > 0) || math.IsInf(fit.Omega, 0) {
			t.Errorf("fitted ω %v not finite positive", fit.Omega)
		}
		prev = fit.Omega
	}
}

func TestFitOmegaRejectsDegenerateDesigns(t *testing.T) {
	// Too few points.
	if _, err := FitOmega([]float64{1}, []float64{1}, []float64{2}); err == nil {
		t.Error("accepted a 1-point fit")
	}
	// Mismatched columns.
	if _, err := FitOmega([]float64{1, 2}, []float64{1}, []float64{2, 3}); err == nil {
		t.Error("accepted ragged columns")
	}
	// Collinear: every point has the same read/write mix, so α and β are
	// not separately identifiable.
	qr := []float64{10, 20, 40, 80}
	qw := []float64{5, 10, 20, 40}
	wall := []float64{100, 200, 400, 800}
	if _, err := FitOmega(qr, qw, wall); err == nil {
		t.Error("accepted a collinear design")
	}
	// All-zero columns.
	z := []float64{0, 0, 0}
	if _, err := FitOmega(z, z, []float64{1, 2, 3}); err == nil {
		t.Error("accepted an all-zero design")
	}
}
