package harness

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/dictsrv"
	"repro/internal/workload"
)

// This file is the serving axis: the buffer tree behind internal/dictsrv,
// measured where production write-buffering lives or dies — tail latency
// under concurrency, next to the amortized Q every other experiment
// reports. The paper prices the root buffer's Θ(ωM) deferral by its
// amortized savings; a serving system also pays the deferral back in
// concentrated bursts, and these sweeps put both sides in one table:
// amortized cost/op falling (or sublinear) with ω while the worst flush
// stall grows with it (EXP-L1), and throughput/p99 across goroutine and
// shard counts (EXP-L2).
//
// Latency cells are wall-clock and machine-dependent by construction, so
// both sweeps live in the auxiliary registry: `aem bench` goldens stay
// byte-stable and EXP-L1/EXP-L2 are selected explicitly (`-exp`). CI
// gates their per-point wall time like every other timed stream.

// latencyCols renders one load run's latency summary as table cells.
func latencyCols(s LatencySummary) []interface{} {
	return []interface{}{FmtNS(s.P50NS), FmtNS(s.P99NS), FmtNS(s.P999NS), FmtNS(s.MaxNS)}
}

// serveRow drives one concurrent load point: build the service, run the
// streams, and return the standard serving measurements. Commit-path
// stall telemetry (MaxStallNS, the stall histogram, debt gauges) excludes
// explicit barriers by construction, so the closing Flush — which folds
// the tail of buffered work into the cost accounting — does not pollute
// the stall columns.
func serveRow(cfg dictsrv.Config, sc workload.Scenario, goroutines, nOps int, seed uint64) (dictsrv.LoadReport, dictsrv.Stats, LatencySummary) {
	svc, err := dictsrv.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("harness: serving point: %v", err))
	}
	defer svc.Close()
	streams := workload.DictStreams(seed, sc, goroutines, nOps, cfg.KeyHi)
	rep := dictsrv.RunLoad(svc, streams)
	svc.Flush()
	st := svc.Stats()
	return rep, st, SummarizeLatencies(rep.LatencyNS)
}

func specL1() *Spec {
	const (
		shards     = 4
		goroutines = 8
		nOps       = 48000
		keyspace   = 4096
	)
	return &Spec{
		ID:        "EXP-L1",
		Index:     "serving frontier: amortized cost/op vs worst flush stall across ω",
		Statement: "the dictionary service under drift load at fixed concurrency, swept over ω: the ω-adaptive root buffer (Θ(ωM) items) drives amortized cost/op down — and write count per op with it — while the same deferral concentrates into rarer, larger flush stalls; p50/p99/max op latency and the worst stall sit next to the amortized columns",
		Title:     "serving: the amortized-vs-tail frontier across ω",
		Claim:     "bigger ω buys lower amortized cost per op and fewer flushes, paid for in a growing worst-case stall — deferral moves cost from the average to the tail",
		Axes: []Axis{
			{Name: "omega", Values: Ints(1, 4, 16, 64)},
		},
		Columns: Cols("ω", "ops", "flushes", "writes/op", "cost/op", "p50", "p99", "p99.9", "max", "max stall"),
		Point: func(p Point) Row {
			omega := p.Int("omega")
			cfg := dictsrv.Config{
				Shards:  shards,
				Machine: aem.Config{M: 128, B: 16, Omega: omega},
				KeyLo:   0, KeyHi: keyspace,
			}
			rep, st, lat := serveRow(cfg, workload.DriftOps, goroutines, nOps, Seed+40)
			row := Row{omega, rep.Ops, st.Flushes,
				fmt.Sprintf("%.3f", float64(st.Writes)/float64(rep.Ops)),
				fmt.Sprintf("%.1f", float64(st.Cost)/float64(rep.Ops))}
			return append(append(row, latencyCols(lat)...), FmtNS(st.MaxFlushNS))
		},
		Notes: []string{
			fmt.Sprintf("drift workload (migrating Zipf hot set), %d goroutines over %d shards, %d ops — the adversarial shape for accumulated buffer locality", goroutines, shards, nOps),
			"cost/op uses the same Q = Qr + ω·Qw accounting as every bulk experiment, plus snapshot block reads at weight 1",
			"latency cells are wall-clock and machine-dependent; the monotone trends across the ω column are the result, not the numbers",
		},
	}
}

func specL2() *Spec {
	const (
		omega    = 16
		nOps     = 32000
		keyspace = 4096
	)
	return &Spec{
		ID:        "EXP-L2",
		Index:     "serving scalability: throughput and p99 vs goroutines, shards as axis",
		Statement: "the dictionary service at fixed ω, swept over offered concurrency and shard count: group commit batches harder as writers pile up, and sharding splits both the keyspace and the flush stalls — throughput and tail latency reported per (shards, goroutines) point",
		Title:     "serving: throughput and tail vs concurrency and shards",
		Claim:     "more shards sustain concurrency better: partitioned trees commit and flush independently, so added writers batch into throughput instead of queueing into the tail",
		Axes: []Axis{
			{Name: "shards", Values: Ints(1, 4)},
			{Name: "gor", Values: Ints(1, 4, 16)},
		},
		Columns: Cols("shards", "gor", "ops", "ops/sec", "cost/op", "p50", "p99", "p99.9", "max"),
		Point: func(p Point) Row {
			shards, gor := p.Int("shards"), p.Int("gor")
			cfg := dictsrv.Config{
				Shards:  shards,
				Machine: aem.Config{M: 128, B: 16, Omega: omega},
				KeyLo:   0, KeyHi: keyspace,
			}
			rep, st, lat := serveRow(cfg, workload.DriftOps, gor, nOps, Seed+41)
			row := Row{shards, gor, rep.Ops,
				fmt.Sprintf("%.0f", rep.OpsPerSec()),
				fmt.Sprintf("%.1f", float64(st.Cost)/float64(rep.Ops))}
			return append(row, latencyCols(lat)...)
		},
		Notes: []string{
			fmt.Sprintf("drift workload at ω=%d, %d ops per point; goroutines share the service, not a stream — the op mix is fixed while the interleaving scales", omega, nOps),
			"wall-clock cells are machine-dependent; read the table for its shape across the grid, not the absolute numbers",
		},
	}
}

func specL3() *Spec {
	// Dictload scale (M=1024, B=32) rather than EXP-L1's small trees: the
	// deamortization story lives where cascades are big. One writer, so
	// the stall columns time tree work, not scheduler noise — a commit
	// batch is one op and its budgeted flush step, nothing else.
	const (
		shards     = 2
		goroutines = 1
		nOps       = 160000
		keyspace   = 65536
	)
	// Per-shard workload description for the stall predictors: sharding
	// splits both the op stream and the live keys roughly evenly, and the
	// drift/flashcrowd generators are ~3/4 updates by construction.
	stallParams := func(omega int) bounds.DictParams {
		return bounds.DictParams{
			Params:   bounds.Params{N: nOps / shards, Cfg: aem.Config{M: 1024, B: 32, Omega: omega}},
			Updates:  nOps * 3 / 4 / shards,
			Keyspace: keyspace / shards,
		}
	}
	return &Spec{
		ID:        "EXP-L3",
		Index:     "deamortized flushing: bounded-stall commits vs run-to-completion cascades",
		Statement: "the dictionary service in amortized mode (each commit batch pays whatever cascade its appends trigger, to completion) against deamortized mode (overfull nodes enter a debt queue; each batch pays at most one node-flush, and the committer retires remaining debt when the write channel is idle), swept over scenario and ω: worst and p99.9 commit-path stall, throughput, cost/op, and the debt high-water mark, next to the model's predicted worst-stall Q for each mode",
		Title:     "serving: amortized vs deamortized flush stalls across ω",
		Claim:     "the debt queue converts the Θ(ωM)-deferral pause from one run-to-completion cascade into bounded per-batch installments: worst stall drops by an order of magnitude at large ω while throughput holds, because the same node-flushes happen — spread across batches and idle gaps instead of convoyed",
		Axes: []Axis{
			{Name: "scenario", Values: []interface{}{"drift", "flashcrowd"}},
			{Name: "omega", Values: Ints(1, 4, 16, 64)},
			{Name: "mode", Values: []interface{}{"amortized", "deamortized"}},
		},
		Columns: append(
			Cols("scenario", "ω", "mode", "ops", "ops/sec", "cost/op", "p99.9", "max stall", "p99.9 stall", "debt hw"),
			Column{Name: "pred stall Q", Pred: func(p Point) float64 {
				dp := stallParams(p.Int("omega"))
				if p.Str("mode") == "deamortized" {
					return bounds.DictDeamortizedStallPredicted(dp).Cost(p.Int("omega"))
				}
				return bounds.DictAmortizedStallPredicted(dp).Cost(p.Int("omega"))
			}},
		),
		Point: func(p Point) Row {
			sc, ok := workload.ScenarioByName(p.Str("scenario"))
			if !ok {
				panic(fmt.Sprintf("harness: EXP-L3: unknown scenario %q", p.Str("scenario")))
			}
			omega, mode := p.Int("omega"), p.Str("mode")
			cfg := dictsrv.Config{
				Shards:     shards,
				Machine:    aem.Config{M: 1024, B: 32, Omega: omega},
				KeyLo:      0, KeyHi: keyspace,
				Deamortize: mode == "deamortized",
			}
			rep, st, lat := serveRow(cfg, sc, goroutines, nOps, Seed+42)
			return Row{p.Str("scenario"), omega, mode, rep.Ops,
				fmt.Sprintf("%.0f", rep.OpsPerSec()),
				fmt.Sprintf("%.1f", float64(st.Cost)/float64(rep.Ops)),
				FmtNS(lat.P999NS), FmtNS(st.MaxStallNS), FmtNS(st.Stalls.Quantile(0.999)),
				st.DebtHighWater, nil}
		},
		Notes: []string{
			fmt.Sprintf("single writer over %d shards at dictload scale (M=1024, B=32), %d ops per point, keyspace %d; both modes replay the identical stream — only the committer's flush policy differs", shards, nOps, keyspace),
			"at ω=64 the root buffer (ωM = 65536 items) can swallow a balanced shard's whole update stream — flashcrowd goes quiet in both modes — but drift's migrating hot set skews the key split enough to overflow one shard's root, and that lone run-to-completion cascade is the worst cell in the table (≈100ms vs ≈1ms deamortized)",
			"stall columns time the commit path only (Apply + at most one budgeted flush step); explicit Flush barriers are excluded, and both modes drain fully before Stats are read — total cost accounting is mode-independent up to idle-time compaction",
			"pred stall Q is the model's worst single pause in Q = Qr + ω·Qw units; measured wall-clock ratios exceed the predicted ratio because the amortized pause also pays model-free CPU work (partitioning, merging) across the whole cascade",
			"debt hw is the worst per-shard debt-queue depth observed right after a commit batch, before its budgeted flush step",
		},
	}
}
