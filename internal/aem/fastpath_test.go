package aem

import (
	"testing"
)

// traceEqual reports whether two recorded traces are identical op-for-op.
func traceEqual(a, b []TraceOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestScanReadsMatchesPerOp pins the bulk read primitive against the
// per-op path it batches: on every engine, with and without a TraceSink,
// ScanReads must leave Stats, Cost, phase accounting and the recorded
// trace identical to an unbatched loop over the same range.
func TestScanReadsMatchesPerOp(t *testing.T) {
	cfg := Config{M: 32, B: 4, Omega: 5}
	const blocks = 13
	for _, eng := range engines(t, cfg.B) {
		for _, traced := range []bool{false, true} {
			name := eng.name
			if traced {
				name += "/traced"
			}
			t.Run(name, func(t *testing.T) {
				bulk := NewWithStorage(cfg, eng.make())
				perOp := NewWithStorage(cfg, eng.make())
				var bulkSink, perOpSink MemorySink
				if traced {
					bulk.SetTraceSink(&bulkSink)
					perOp.SetTraceSink(&perOpSink)
				}
				base := bulk.Alloc(blocks)
				if got := perOp.Alloc(blocks); got != base {
					t.Fatalf("machines disagree on base address: %d vs %d", base, got)
				}
				bulk.SetPhase("scan")
				perOp.SetPhase("scan")

				bulk.ScanReads(base+1, blocks-1)
				buf := make([]Item, 0, cfg.B)
				for i := 1; i < blocks; i++ {
					perOp.ReadInto(base+Addr(i), buf)
				}

				if bulk.Stats() != perOp.Stats() {
					t.Errorf("stats %+v, per-op path %+v", bulk.Stats(), perOp.Stats())
				}
				if bulk.Cost() != perOp.Cost() {
					t.Errorf("cost %d, per-op path %d", bulk.Cost(), perOp.Cost())
				}
				if bulk.Phases().Phase("scan") != perOp.Phases().Phase("scan") {
					t.Errorf("phase accounting diverged: %+v vs %+v",
						bulk.Phases().Phase("scan"), perOp.Phases().Phase("scan"))
				}
				if traced && !traceEqual(bulkSink.Ops(), perOpSink.Ops()) {
					t.Errorf("traces diverged:\nbulk   %v\nper-op %v", bulkSink.Ops(), perOpSink.Ops())
				}
			})
		}
	}
}

// TestScanWritesMatchesWriter pins the bulk write primitive against the
// Writer schedule it models: appending (blocks−1)·B + lastLen zero items
// through a Writer must leave identical Stats, trace, block lengths and —
// on the data-bearing engines — block contents.
func TestScanWritesMatchesWriter(t *testing.T) {
	cfg := Config{M: 32, B: 4, Omega: 5}
	const blocks, lastLen = 7, 3
	n := (blocks-1)*cfg.B + lastLen
	for _, eng := range engines(t, cfg.B) {
		for _, traced := range []bool{false, true} {
			name := eng.name
			if traced {
				name += "/traced"
			}
			t.Run(name, func(t *testing.T) {
				bulk := NewWithStorage(cfg, eng.make())
				ref := NewWithStorage(cfg, eng.make())
				var bulkSink, refSink MemorySink
				if traced {
					bulk.SetTraceSink(&bulkSink)
					ref.SetTraceSink(&refSink)
				}

				base := bulk.Alloc(blocks)
				bulk.ScanWrites(base, blocks, lastLen)

				v := NewVector(ref, n)
				w := v.NewWriter()
				for i := 0; i < n; i++ {
					w.Append(Item{})
				}
				w.Close()

				if bulk.Stats() != ref.Stats() {
					t.Errorf("stats %+v, Writer path %+v", bulk.Stats(), ref.Stats())
				}
				if traced && !traceEqual(bulkSink.Ops(), refSink.Ops()) {
					t.Errorf("traces diverged:\nbulk   %v\nwriter %v", bulkSink.Ops(), refSink.Ops())
				}
				buf := make([]Item, 0, cfg.B)
				for i := 0; i < blocks; i++ {
					a := base + Addr(i)
					got, want := bulk.PeekInto(a, buf), ref.Storage().Len(a)
					if len(got) != want {
						t.Errorf("block %d length %d, Writer path %d", i, len(got), want)
					}
					for j, it := range got {
						if it != (Item{}) {
							t.Errorf("block %d item %d = %v, want zero item", i, j, it)
						}
					}
				}
			})
		}
	}
}

// TestScanRangeValidation pins the bulk primitives' argument checking:
// out-of-range spans and illegal last-block lengths are programming
// errors, caught before any accounting happens.
func TestScanRangeValidation(t *testing.T) {
	newMachine := func() *Machine {
		ma := New(Config{M: 16, B: 4, Omega: 1})
		ma.Alloc(4)
		return ma
	}
	t.Run("reads past end", func(t *testing.T) {
		ma := newMachine()
		defer expectPanic(t, "range outside")
		ma.ScanReads(2, 3)
	})
	t.Run("negative count", func(t *testing.T) {
		ma := newMachine()
		defer expectPanic(t, "negative block count")
		ma.ScanReads(0, -1)
	})
	t.Run("last length zero", func(t *testing.T) {
		ma := newMachine()
		defer expectPanic(t, "outside [1, B=4]")
		ma.ScanWrites(0, 2, 0)
	})
	t.Run("last length over B", func(t *testing.T) {
		ma := newMachine()
		defer expectPanic(t, "outside [1, B=4]")
		ma.ScanWrites(0, 2, 5)
	})
	t.Run("empty scan is free", func(t *testing.T) {
		ma := newMachine()
		ma.ScanReads(4, 0)
		ma.ScanWrites(4, 0, 1)
		if ma.Stats() != (Stats{}) {
			t.Errorf("zero-block scans cost %+v", ma.Stats())
		}
	})
}

// TestMachineRecycle runs a workload, recycles the machine, and demands the
// second run be indistinguishable — in Stats, phases, memory metering and
// stored values — from the same workload on a freshly constructed machine.
func TestMachineRecycle(t *testing.T) {
	dirty := Config{M: 64, B: 8, Omega: 2}
	clean := Config{M: 32, B: 4, Omega: 9} // Recycle may change M, B and ω
	script := func(ma *Machine) []Item {
		b := ma.Config().B
		items := make([]Item, 3*b+1)
		for i := range items {
			items[i] = Item{Key: int64(i + 1), Aux: int64(^i)}
		}
		v := Load(ma, items)
		out := NewVector(ma, v.Len())
		sc := v.NewScanner()
		w := out.NewWriter()
		for {
			it, ok := sc.Next()
			if !ok {
				break
			}
			w.Append(it)
		}
		sc.Close()
		w.Close()
		return out.Materialize()
	}
	for _, eng := range engines(t, dirty.B) {
		t.Run(eng.name, func(t *testing.T) {
			recycled := NewWithStorage(dirty, eng.make())
			recycled.SetPhase("warmup")
			recycled.StartTrace()
			script(recycled)
			recycled.Reserve(5)
			recycled.Recycle(clean)

			fresh := NewWithStorage(clean, eng.make())
			gotData := script(recycled)
			wantData := script(fresh)

			if recycled.Stats() != fresh.Stats() {
				t.Errorf("stats %+v, fresh machine %+v", recycled.Stats(), fresh.Stats())
			}
			if recycled.Cost() != fresh.Cost() {
				t.Errorf("cost %d, fresh machine %d", recycled.Cost(), fresh.Cost())
			}
			if recycled.Phases().Phase("main") != fresh.Phases().Phase("main") {
				t.Errorf("phase accounting diverged after Recycle")
			}
			if p := recycled.Phases().Phase("warmup"); p != (Stats{}) {
				t.Errorf("previous run's phase survived Recycle: %+v", p)
			}
			if recycled.MemInUse() != 0 || recycled.MemPeak() != fresh.MemPeak() {
				t.Errorf("memory metering (inUse %d, peak %d) differs from fresh (0, %d)",
					recycled.MemInUse(), recycled.MemPeak(), fresh.MemPeak())
			}
			if recycled.Tracing() {
				t.Errorf("trace sink survived Recycle")
			}
			if recycled.NumBlocks() != fresh.NumBlocks() {
				t.Errorf("allocated %d blocks, fresh machine %d", recycled.NumBlocks(), fresh.NumBlocks())
			}
			for i := range wantData {
				if gotData[i] != wantData[i] {
					t.Fatalf("recycled run data diverged at %d: %v != %v", i, gotData[i], wantData[i])
				}
			}
		})
	}
}

// TestRecycleRejectsUndersizedArena mirrors the constructor guard: a
// pooled arena cannot be recycled into a configuration whose B exceeds
// its fixed stride.
func TestRecycleRejectsUndersizedArena(t *testing.T) {
	ma := NewWithStorage(Config{M: 16, B: 4, Omega: 1}, NewArenaStorage(4))
	defer expectPanic(t, "block capacity 4 < B = 8")
	ma.Recycle(Config{M: 64, B: 8, Omega: 1})
}

// TestStorageResetFreshness pins the Reset contract on every engine: after
// writing non-zero values and resetting, the engine reports zero blocks,
// and re-allocated blocks are empty with zeroed contents — a previous
// run's values must never leak through retained capacity.
func TestStorageResetFreshness(t *testing.T) {
	const b = 4
	for _, eng := range engines(t, b) {
		t.Run(eng.name, func(t *testing.T) {
			s := eng.make()
			s.Alloc(6)
			payload := []Item{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
			for a := Addr(0); a < 6; a++ {
				s.Write(a, payload)
			}
			s.Reset()
			if s.NumBlocks() != 0 {
				t.Fatalf("NumBlocks = %d after Reset, want 0", s.NumBlocks())
			}
			if a := s.Alloc(3); a != 0 {
				t.Fatalf("post-Reset Alloc at %d, want 0 (addresses restart)", a)
			}
			buf := make([]Item, 0, b)
			for a := Addr(0); a < 3; a++ {
				if s.Len(a) != 0 {
					t.Errorf("recycled block %d has length %d, want 0", a, s.Len(a))
				}
				if got := s.ReadInto(a, buf); len(got) != 0 {
					t.Errorf("recycled block %d read %d items, want 0", a, len(got))
				}
			}
			// Overwrite with a short prefix, then lengthen: the tail beyond
			// the previous run's write must be zero on data engines.
			s.Write(0, payload[:1])
			if eng.hasData {
				s.Write(1, make([]Item, b))
				got := s.ReadInto(1, buf)
				for j, it := range got {
					if it != (Item{}) {
						t.Errorf("stale value %v leaked through Reset at item %d", it, j)
					}
				}
			}
		})
	}
}

// TestVectorFastPathTraceIdentity pins the Scanner/Writer counting fast
// paths trace-identical to the data-bearing per-op path: the same pipeline
// on the counting and slice engines must record the same trace op-for-op.
func TestVectorFastPathTraceIdentity(t *testing.T) {
	cfg := Config{M: 32, B: 4, Omega: 2}
	const n = 27
	run := func(s Storage) ([]TraceOp, Stats) {
		ma := NewWithStorage(cfg, s)
		v := Load(ma, make([]Item, n))
		out := NewVector(ma, n)
		ma.StartTrace()
		sc := v.NewScanner()
		w := out.NewWriter()
		for {
			it, ok := sc.Next()
			if !ok {
				break
			}
			w.Append(it)
		}
		sc.Close()
		w.Close()
		return ma.StopTrace(), ma.Stats()
	}
	sliceOps, sliceStats := run(NewSliceStorage())
	countOps, countStats := run(NewCountingStorage())
	if sliceStats != countStats {
		t.Errorf("stats diverged: slice %+v, counting %+v", sliceStats, countStats)
	}
	if !traceEqual(sliceOps, countOps) {
		t.Errorf("traces diverged:\nslice    %v\ncounting %v", sliceOps, countOps)
	}
}

// TestWriterZeroAllocSteadyState is the write-side companion of the
// scanner pin: after construction, appending allocates nothing on the
// zero-copy backends. The reference slice engine is exempt — its Write
// allocates a fresh block by design, which is exactly why the arena
// exists.
func TestWriterZeroAllocSteadyState(t *testing.T) {
	cfg := Config{M: 64, B: 8, Omega: 4}
	for _, eng := range engines(t, cfg.B) {
		if eng.name == "slice" {
			continue
		}
		t.Run(eng.name, func(t *testing.T) {
			ma := NewWithStorage(cfg, eng.make())
			v := NewVector(ma, 1<<20)
			w := v.NewWriter()
			defer w.CloseShort()
			it := Item{Key: 1}
			allocs := testing.AllocsPerRun(100, func() {
				for j := 0; j < 2*cfg.B; j++ {
					w.Append(it)
				}
			})
			if allocs != 0 {
				t.Errorf("writer steady state allocates %.1f per 2 blocks, want 0", allocs)
			}
		})
	}
}
