// Package bounds implements the lower- and upper-bound formulas of
// Jacob & Sitchinava (SPAA 2017) as executable calculators:
//
//   - the permuting/sorting lower bound of Theorem 4.5, both as the closed
//     form Ω(min{N, ω·n·log_{ωm} n}) and as the exact counting argument of
//     §4.2 (the round-count floor derived from inequality (1));
//   - the flash-model reduction bound of Corollary 4.4 (Lemma 4.3 combined
//     with the Aggarwal–Vitter permuting bound in the unit-cost flash model);
//   - the SpMxV lower bound of Theorem 5.1 with the τ(N,δ,B) correction
//     term, plus its closed form Ω(min{H, ω·h·log_{ωm} N/max{δ,B}});
//   - predicted costs of the paper's upper-bound algorithms (the §3
//     mergesort, the small-sort base case of [7, Lemma 4.2], direct and
//     sort-based permuting, naive and sorting-based SpMxV), used by the
//     experiment harness to compare measured against predicted curves;
//   - the classic symmetric-EM bounds of Aggarwal & Vitter for reference.
//
// All calculators work in float64 with log-gamma for factorials, so they
// are exact enough for any N that fits in memory and overflow-free for any
// N at all. Lower bounds are asymptotic (Ω); the experiments report
// measured/predicted ratios and check that they are bounded by constants
// across sweeps, which is what "matching bounds" means for a theory paper.
package bounds

import (
	"math"

	"repro/internal/aem"
)

// LogFactorial returns ln(n!) computed via the log-gamma function.
func LogFactorial(n float64) float64 {
	if n < 0 {
		panic("bounds: LogFactorial of negative argument")
	}
	lg, _ := math.Lgamma(n + 1)
	return lg
}

// LogBinomial returns ln(C(n, k)), with the convention that C(n, k) = 1
// when k ≤ 0 or k ≥ n (the degenerate choices contribute no information).
func LogBinomial(n, k float64) float64 {
	if k <= 0 || k >= n {
		return 0
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// logBase returns log_base(x), guarding the degenerate cases that arise at
// the edges of parameter sweeps: the result is never computed with a base
// below 2, and x below the base yields 0 (the bound's log factor cannot be
// negative).
func logBase(x, base float64) float64 {
	if base < 2 {
		base = 2
	}
	if x <= base {
		if x <= 1 {
			return 0
		}
		return math.Log(x) / math.Log(base)
	}
	return math.Log(x) / math.Log(base)
}

// Params bundles the model parameters used by every bound. N is the input
// size in items; the machine parameters follow the aem.Config convention.
type Params struct {
	N   int
	Cfg aem.Config
}

// nBlocks returns n = ⌈N/B⌉ as a float.
func (p Params) nBlocks() float64 {
	return float64(p.Cfg.BlocksOf(p.N))
}

// mBlocks returns m = ⌈M/B⌉ as a float.
func (p Params) mBlocks() float64 {
	return float64(p.Cfg.BlocksInMemory())
}

// omega returns ω as a float.
func (p Params) omega() float64 { return float64(p.Cfg.Omega) }

// PermutingLowerBoundClosed returns the closed-form permuting/sorting lower
// bound of Theorem 4.5:
//
//	Ω(min{N, ω·n·log_{ωm} n})
//
// valid under the theorem's assumption ω ≤ N/B. The returned value is the
// expression inside Ω (constants suppressed, as in the paper).
func PermutingLowerBoundClosed(p Params) float64 {
	n, m, w := p.nBlocks(), p.mBlocks(), p.omega()
	sortTerm := w * n * logBase(n, w*m)
	return math.Min(float64(p.N), sortTerm)
}

// SortingLowerBoundClosed equals the permuting bound: every sorting
// algorithm must be able to realize an arbitrary permutation (§4).
func SortingLowerBoundClosed(p Params) float64 {
	return PermutingLowerBoundClosed(p)
}

// CountingRoundFactor returns the natural log of the multiplicative factor
// by which one ωm-round can increase the number of realizable permutations,
// i.e. the log of the bracketed expression in inequality (1) of §4.2:
//
//	C(N, ωM/B) · C(ωM, M) · 2^M · M!/B!^{M/B} · (3N)^{M/B}
func CountingRoundFactor(p Params) float64 {
	N := float64(p.N)
	M := float64(p.Cfg.M)
	B := float64(p.Cfg.B)
	w := p.omega()

	blocksPerRound := w * M / B // ωM/B block choices
	f := LogBinomial(N, blocksPerRound)
	f += LogBinomial(w*M, M)
	f += M * math.Ln2
	f += LogFactorial(M) - (M/B)*LogFactorial(B)
	f += (M / B) * math.Log(3*N)
	return f
}

// CountingTarget returns ln(N!/B!^{N/B}), the number of block-order-reduced
// permutations any correct permuting program must be able to generate
// (§4.2: the B! orders within each of the N/B output blocks are counted
// once, at the final write of the block).
func CountingTarget(p Params) float64 {
	N := float64(p.N)
	B := float64(p.Cfg.B)
	return LogFactorial(N) - (N/B)*LogFactorial(B)
}

// CountingRounds returns the minimum number R of ωm-rounds needed by any
// round-based permuting program on the given machine, i.e. the smallest R
// with P(R) ≥ N!/B!^{N/B} per inequality (1). This is the paper's §4.2
// argument evaluated exactly rather than asymptotically.
func CountingRounds(p Params) int64 {
	target := CountingTarget(p)
	if target <= 0 {
		return 0
	}
	factor := CountingRoundFactor(p)
	if factor <= 0 {
		// A round that can generate no new permutations can never reach the
		// target; the bound degenerates (cannot happen for valid params).
		return math.MaxInt64
	}
	return int64(math.Ceil(target / factor))
}

// CountingLowerBound returns the cost lower bound implied by the counting
// argument: every round except possibly the last costs at least ω(m−1), so
// any round-based program costs at least (R−1)·ω·(m−1). Via Lemma 4.1 /
// Corollary 4.2 the same bound (up to the conversion's constant) applies to
// arbitrary programs with half the memory.
func CountingLowerBound(p Params) float64 {
	r := CountingRounds(p)
	if r <= 1 {
		return 0
	}
	m := p.mBlocks()
	return float64(r-1) * p.omega() * (m - 1)
}

// FlashPermutingVolumeLB returns the Aggarwal–Vitter-style permuting lower
// bound in the unit-cost flash model with read blocks of size b and memory
// M, expressed as transferred volume in items:
//
//	Ω(min{b·N, N·log_{M/b}(N/b)})
func FlashPermutingVolumeLB(n, m, b int) float64 {
	N := float64(n)
	B := float64(b)
	M := float64(m)
	ioBound := (N / B) * logBase(N/B, M/B)
	return math.Min(B*N, B*ioBound)
}

// ReductionLowerBound returns the permuting cost lower bound obtained via
// the Lemma 4.3 simulation (Corollary 4.4): a round-based AEM program of
// cost Q yields a flash program of volume ≤ 2N + 2QB/ω, so
//
//	Q ≥ (V_flash-LB − 2N) · ω / (2B).
//
// It requires B ≥ ω (the lemma's own assumption); for ω > B it returns 0
// (the reduction says nothing there — this is exactly the "inefficiency in
// the simulation" the paper notes makes the counting bound stronger for
// some parameter ranges).
func ReductionLowerBound(p Params) float64 {
	B, w := p.Cfg.B, p.Cfg.Omega
	if w > B {
		return 0
	}
	small := B / w
	if small < 1 {
		return 0
	}
	v := FlashPermutingVolumeLB(p.N, p.Cfg.M, small)
	q := (v - 2*float64(p.N)) * float64(w) / (2 * float64(B))
	return math.Max(0, q)
}

// EMSortLowerBound returns the classic symmetric external memory sorting /
// permuting bound of Aggarwal & Vitter: Ω(min{N, n·log_m n}) I/Os.
func EMSortLowerBound(p Params) float64 {
	n, m := p.nBlocks(), p.mBlocks()
	return math.Min(float64(p.N), n*logBase(n, m))
}
