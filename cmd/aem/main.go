// Command aem is the repository's multitool: every workload driver and
// the experiment harness behind one binary.
//
//	aem bench    run the experiment registry (tables, CSV, JSON records),
//	             locally or as one shard of a distributed run (-shard i/m)
//	aem merge    reassemble shard or fleet point records into the
//	             unsharded tables; -residual writes the resume spec of an
//	             interrupted run
//	aem serve    coordinate an elastic fleet: lease grid points to
//	             workers over HTTP, ingest their streamed records
//	aem work     run grid points for a coordinator (-connect URL), or
//	             finish an interrupted run (-residual file)
//	aem gate     compare a timed run's points/sec against a baseline
//	aem dict     dictionary op streams: buffer tree vs B-tree vs bounds
//	aem dictload concurrent load against the sharded dictionary service:
//	             throughput, p50/p99/max latency, worst flush stall
//	aem sort     sorting workloads vs the paper's bounds
//	aem spmxv    sparse matrix × dense vector, both Section 5 algorithms
//	aem trace    record and analyze an algorithm's I/O trace
//
// The historical standalone binaries (aembench, aemdict, aemsort,
// aemspmxv, aemtrace) remain as deprecated wrappers over the same
// subcommand implementations.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:]))
}
