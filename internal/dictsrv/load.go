package dictsrv

import (
	"sync"
	"time"

	"repro/internal/dict"
)

// LoadReport is what one concurrent load run measured: per-class op
// counts, total wall time, and every operation's latency (owned by the
// report; sorted lazily by the summary helpers in internal/harness).
type LoadReport struct {
	Goroutines int
	Ops        int64 // total operations driven
	Updates    int64 // Insert + Delete
	Lookups    int64
	Scans      int64
	Hits       int64 // lookups that found their key
	WallNS     int64

	// LatencyNS holds one entry per op across all goroutines, in no
	// particular order.
	LatencyNS []int64
}

// OpsPerSec returns the run's aggregate throughput.
func (r LoadReport) OpsPerSec() float64 {
	if r.WallNS <= 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.WallNS) / 1e9)
}

// RunLoad drives len(streams) goroutines against the service, one stream
// each, issuing every op and recording its wall-clock latency. It is the
// one load path shared by `aem dictload` and the EXP-L1/EXP-L2 harness
// points, so the CLI and the spec tables measure the same thing.
func RunLoad(svc *Service, streams [][]dict.Op) LoadReport {
	var rep LoadReport
	rep.Goroutines = len(streams)

	type tally struct {
		updates, lookups, scans, hits int64
		lat                           []int64
	}
	tallies := make([]tally, len(streams))

	start := time.Now()
	var wg sync.WaitGroup
	for g, ops := range streams {
		wg.Add(1)
		go func(g int, ops []dict.Op) {
			defer wg.Done()
			t := &tallies[g]
			t.lat = make([]int64, 0, len(ops))
			for _, op := range ops {
				switch op.Kind {
				case dict.Insert:
					ack := svc.Put(op.Key, op.Value)
					t.updates++
					t.lat = append(t.lat, ack.LatencyNS)
				case dict.Delete:
					ack := svc.Delete(op.Key)
					t.updates++
					t.lat = append(t.lat, ack.LatencyNS)
				case dict.Lookup:
					res := svc.Get(op.Key)
					t.lookups++
					if res.OK {
						t.hits++
					}
					t.lat = append(t.lat, res.LatencyNS)
				case dict.RangeScan:
					res := svc.Scan(op.Key, op.Hi)
					t.scans++
					t.lat = append(t.lat, res.LatencyNS)
				}
			}
		}(g, ops)
	}
	wg.Wait()
	rep.WallNS = time.Since(start).Nanoseconds()

	for i := range tallies {
		t := &tallies[i]
		rep.Updates += t.updates
		rep.Lookups += t.lookups
		rep.Scans += t.scans
		rep.Hits += t.hits
		rep.LatencyNS = append(rep.LatencyNS, t.lat...)
	}
	rep.Ops = rep.Updates + rep.Lookups + rep.Scans
	return rep
}
