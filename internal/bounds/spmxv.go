package bounds

import "math"

// SpMxVParams bundles the parameters of the sparse-matrix × dense-vector
// bounds of Section 5: an N×N matrix with exactly δ non-zeros per column
// (H = δN non-zeros total) in column-major layout, multiplied on an
// (M,B,ω)-AEM machine over a semiring.
type SpMxVParams struct {
	Params
	Delta int
}

// H returns the number of non-zero entries, H = δ·N.
func (p SpMxVParams) H() int { return p.Delta * p.N }

// hBlocks returns h = ⌈H/B⌉.
func (p SpMxVParams) hBlocks() float64 {
	return float64(p.Cfg.BlocksOf(p.H()))
}

// Tau returns the τ(N,δ,B) input-order slack factor of Bender et al. [5]
// (as a natural logarithm, since the raw value overflows for any
// interesting N):
//
//	τ = 3^{δN}        if B < δ
//	τ = 1             if B = δ
//	τ = (2eB/δ)^{δN}  if B > δ
func Tau(n, delta, b int) (logTau float64) {
	N, D, B := float64(n), float64(delta), float64(b)
	switch {
	case b < delta:
		return D * N * math.Log(3)
	case b == delta:
		return 0
	default:
		return D * N * math.Log(2*math.E*B/D)
	}
}

// SpMxVLowerBoundClosed returns the closed-form SpMxV lower bound of
// Theorem 5.1:
//
//	Ω(min{H, ω·h·log_{ωm} N/max{δ,B}})
//
// valid under the theorem's assumptions B > 2, M > 4B, ω·δ·M·B ≤ N^{1−ε}.
func SpMxVLowerBoundClosed(p SpMxVParams) float64 {
	h, m, w := p.hBlocks(), p.mBlocks(), p.omega()
	den := math.Max(float64(p.Delta), float64(p.Cfg.B))
	sortTerm := w * h * logBase(float64(p.N)/den, w*m)
	return math.Min(float64(p.H()), sortTerm)
}

// SpMxVCountingBound evaluates the configuration-counting expression from
// the proof of Theorem 5.1 directly:
//
//	Q ≥ δN·log(N/max{3δ,2eB} · B/(eωM)) /
//	    (2·log H + (B/ω)·log(eωM/B) + (B/(ωM))·log H)
//
// This is the pre-case-analysis bound; it is the quantity an experiment can
// compare against measured algorithm cost without asymptotic slack. The
// result is clamped at 0 (for parameters outside the theorem's assumptions
// the numerator can go negative, meaning the argument is vacuous there).
func SpMxVCountingBound(p SpMxVParams) float64 {
	N := float64(p.N)
	D := float64(p.Delta)
	B := float64(p.Cfg.B)
	M := float64(p.Cfg.M)
	w := p.omega()
	H := D * N

	num := D * N * math.Log(N/math.Max(3*D, 2*math.E*B)*B/(math.E*w*M))
	den := 2*math.Log(H) + (B/w)*math.Log(math.E*w*M/B) + (B/(w*M))*math.Log(H)
	if den <= 0 {
		return 0
	}
	return math.Max(0, num/den)
}

// SpMxVAssumptionsHold reports whether the parameter point satisfies the
// hypotheses of Theorem 5.1 (B > 2, M > 4B, ω·δ·M·B ≤ N^{1−ε}) for the
// given ε. Experiments mark points outside the assumptions so the shape
// comparison is honest about where the theorem actually speaks.
func SpMxVAssumptionsHold(p SpMxVParams, eps float64) bool {
	B, M := p.Cfg.B, p.Cfg.M
	if B <= 2 || M <= 4*B {
		return false
	}
	lhs := float64(p.Cfg.Omega) * float64(p.Delta) * float64(M) * float64(B)
	return lhs <= math.Pow(float64(p.N), 1-eps)
}
