package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesBuildAndRun builds and runs every example program end to
// end. The examples are main packages, so `go test ./...` alone never
// executes them; this smoke test keeps them from rotting (stale APIs
// still fail `go build`, but panics, hangs and wrong-output regressions
// only show up by running).
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns one `go run` per example")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no examples found")
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", e.Name()))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", e.Name(), err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", e.Name())
			}
		})
	}
}
