package spmxv

import (
	"testing"
	"testing/quick"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/workload"
)

// makeInstance builds a random conformation, values and x vector.
func makeInstance(seed uint64, n, delta int) (*workload.Conformation, []int64, []int64) {
	rng := workload.NewRNG(seed)
	conf := workload.NewConformation(rng, n, delta)
	values := make([]int64, conf.H())
	for i := range values {
		values[i] = int64(rng.Intn(100) - 50)
	}
	x := make([]int64, n)
	for i := range x {
		x[i] = int64(rng.Intn(100) - 50)
	}
	return conf, values, x
}

func TestNaiveCorrectness(t *testing.T) {
	cfg := aem.Config{M: 64, B: 4, Omega: 4}
	for _, n := range []int{4, 16, 64, 100} {
		for _, delta := range []int{1, 2, 4} {
			if delta > n {
				continue
			}
			ma := aem.New(cfg)
			conf, values, x := makeInstance(uint64(n*10+delta), n, delta)
			m := NewMatrix(ma, conf, values)
			y := Naive(ma, m, LoadDense(ma, x))
			if err := VerifyProduct(conf, values, x, y); err != nil {
				t.Fatalf("n=%d δ=%d: %v", n, delta, err)
			}
			if ma.MemInUse() != 0 {
				t.Fatalf("n=%d δ=%d: leaked %d slots", n, delta, ma.MemInUse())
			}
		}
	}
}

func TestSortBasedCorrectness(t *testing.T) {
	cfg := aem.Config{M: 64, B: 4, Omega: 4}
	// Cover δ < B, δ = B and δ > B: the three base-run regimes.
	for _, tc := range []struct{ n, delta int }{
		{64, 1}, {64, 2}, {64, 4}, {64, 8}, {100, 3}, {32, 16},
	} {
		ma := aem.New(cfg)
		conf, values, x := makeInstance(uint64(tc.n*100+tc.delta), tc.n, tc.delta)
		m := NewMatrix(ma, conf, values)
		y := SortBased(ma, m, LoadDense(ma, x))
		if err := VerifyProduct(conf, values, x, y); err != nil {
			t.Fatalf("n=%d δ=%d: %v", tc.n, tc.delta, err)
		}
		if ma.MemInUse() != 0 {
			t.Fatalf("n=%d δ=%d: leaked %d slots", tc.n, tc.delta, ma.MemInUse())
		}
	}
}

func TestBandedConformation(t *testing.T) {
	cfg := aem.Config{M: 64, B: 8, Omega: 4}
	conf := workload.BandedConformation(128, 4)
	rng := workload.NewRNG(5)
	values := make([]int64, conf.H())
	for i := range values {
		values[i] = int64(rng.Intn(10))
	}
	x := make([]int64, 128)
	for i := range x {
		x[i] = int64(rng.Intn(10))
	}
	for name, f := range map[string]func(*aem.Machine, *Matrix, *aem.Vector) *aem.Vector{
		"naive": Naive,
		"sort":  SortBased,
	} {
		ma := aem.New(cfg)
		m := NewMatrix(ma, conf, values)
		y := f(ma, m, LoadDense(ma, x))
		if err := VerifyProduct(conf, values, x, y); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestNaiveCostBound(t *testing.T) {
	// O(H + ωn): reads at most 2H + n (entry stream + x stream), writes
	// exactly n.
	cfg := aem.Config{M: 64, B: 8, Omega: 4}
	const n, delta = 512, 4
	ma := aem.New(cfg)
	conf, values, x := makeInstance(42, n, delta)
	m := NewMatrix(ma, conf, values)
	Naive(ma, m, LoadDense(ma, x))
	st := ma.Stats()
	h := int64(conf.H())
	nb := int64(cfg.BlocksOf(n))
	if st.Reads > 2*h+nb {
		t.Errorf("reads = %d > 2H + n = %d", st.Reads, 2*h+nb)
	}
	if st.Writes != nb {
		t.Errorf("writes = %d, want n = %d", st.Writes, nb)
	}
}

func TestNaiveCheapOnBanded(t *testing.T) {
	// A banded matrix in column-major order is read almost sequentially by
	// the row-by-row program, so the block caches make it far cheaper than
	// the worst case H: reads should be O(h + n), not O(H).
	cfg := aem.Config{M: 64, B: 8, Omega: 4}
	conf := workload.BandedConformation(512, 4)
	values := make([]int64, conf.H())
	x := make([]int64, 512)
	ma := aem.New(cfg)
	m := NewMatrix(ma, conf, values)
	Naive(ma, m, LoadDense(ma, x))
	hBlocks := int64(cfg.BlocksOf(conf.H()))
	nBlocks := int64(cfg.BlocksOf(512))
	if st := ma.Stats(); st.Reads > 4*(hBlocks+nBlocks) {
		t.Errorf("banded reads = %d, want ≤ 4(h+n) = %d", st.Reads, 4*(hBlocks+nBlocks))
	}
}

func TestSortBasedCostTracksPrediction(t *testing.T) {
	// Measured cost within a constant factor of the predicted
	// O(ω·h·log_{ωm} N/max{δ,B} + ω·n), both directions.
	for _, delta := range []int{2, 8} {
		cfg := aem.Config{M: 128, B: 8, Omega: 4}
		const n = 1 << 11
		ma := aem.New(cfg)
		conf, values, x := makeInstance(uint64(delta), n, delta)
		m := NewMatrix(ma, conf, values)
		SortBased(ma, m, LoadDense(ma, x))
		p := bounds.SpMxVParams{Params: bounds.Params{N: n, Cfg: cfg}, Delta: delta}
		pred := bounds.SpMxVSortPredicted(p).Cost(cfg.Omega)
		ratio := float64(ma.Cost()) / pred
		if ratio < 0.05 || ratio > 20 {
			t.Errorf("δ=%d: measured/predicted = %.2f outside constant band", delta, ratio)
		}
	}
}

func TestBestPicksCheaperStrategy(t *testing.T) {
	// Huge ω: H + ωn beats ω·h·log…, so naive must win. Small ω with
	// large log factor: sort must win.
	naiveCfg := aem.Config{M: 64, B: 4, Omega: 512}
	ma := aem.New(naiveCfg)
	conf, values, x := makeInstance(1, 256, 2)
	m := NewMatrix(ma, conf, values)
	y, strat := Best(ma, m, LoadDense(ma, x))
	if strat != StrategyNaive {
		t.Errorf("ω=512: Best chose %v, want naive", strat)
	}
	if err := VerifyProduct(conf, values, x, y); err != nil {
		t.Fatal(err)
	}

	sortCfg := aem.Config{M: 256, B: 32, Omega: 1}
	ma2 := aem.New(sortCfg)
	conf2, values2, x2 := makeInstance(2, 1<<12, 2)
	m2 := NewMatrix(ma2, conf2, values2)
	y2, strat2 := Best(ma2, m2, LoadDense(ma2, x2))
	if strat2 != StrategySort {
		t.Errorf("ω=1, B=32: Best chose %v, want sort", strat2)
	}
	if err := VerifyProduct(conf2, values2, x2, y2); err != nil {
		t.Fatal(err)
	}
}

func TestMeasuredCostRespectsLowerBound(t *testing.T) {
	// Theorem 5.1's shape: measured cost of both algorithms at least the
	// closed-form lower bound value (constants suppressed in Ω, so we
	// only require measured ≥ bound/8 — and we separately require the
	// *upper* bound to stay within a constant of it, which together pin
	// the shape).
	cfg := aem.Config{M: 128, B: 8, Omega: 4}
	const n, delta = 1 << 11, 4
	ma := aem.New(cfg)
	conf, values, x := makeInstance(3, n, delta)
	m := NewMatrix(ma, conf, values)
	_, _ = Best(ma, m, LoadDense(ma, x))
	lb := bounds.SpMxVLowerBoundClosed(bounds.SpMxVParams{Params: bounds.Params{N: n, Cfg: cfg}, Delta: delta})
	if cost := float64(ma.Cost()); cost < lb/8 {
		t.Errorf("measured cost %v below lower bound %v/8", cost, lb)
	}
}

func TestSpMxVQuick(t *testing.T) {
	f := func(seed uint64, nSel, dSel, algSel uint8) bool {
		n := 8 + int(nSel%120)
		delta := 1 + int(dSel)%min(n, 10)
		cfg := aem.Config{M: 64, B: 4, Omega: 2}
		ma := aem.New(cfg)
		conf, values, x := makeInstance(seed, n, delta)
		m := NewMatrix(ma, conf, values)
		var y *aem.Vector
		if algSel%2 == 0 {
			y = Naive(ma, m, LoadDense(ma, x))
		} else {
			y = SortBased(ma, m, LoadDense(ma, x))
		}
		return VerifyProduct(conf, values, x, y) == nil && ma.MemInUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAllOnesVector(t *testing.T) {
	// The lower bound's canonical task: multiplying by the all-ones
	// vector, i.e. computing each row's sum.
	cfg := aem.Config{M: 64, B: 4, Omega: 2}
	ma := aem.New(cfg)
	conf, values, _ := makeInstance(9, 128, 3)
	ones := make([]int64, 128)
	for i := range ones {
		ones[i] = 1
	}
	m := NewMatrix(ma, conf, values)
	y := SortBased(ma, m, LoadDense(ma, ones))
	if err := VerifyProduct(conf, values, ones, y); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFullyDenseMatrix(t *testing.T) {
	// δ = N: every entry present — the densest conformation the model
	// admits, exercising the δ ≥ B per-column path with maximal runs.
	cfg := aem.Config{M: 128, B: 8, Omega: 2}
	const n = 32
	ma := aem.New(cfg)
	conf, values, x := makeInstance(31, n, n)
	m := NewMatrix(ma, conf, values)
	y := SortBased(ma, m, LoadDense(ma, x))
	if err := VerifyProduct(conf, values, x, y); err != nil {
		t.Fatal(err)
	}
}

func TestUnalignedDimension(t *testing.T) {
	// N not a multiple of B: partial blocks everywhere (entries, x, y).
	cfg := aem.Config{M: 64, B: 8, Omega: 4}
	for _, n := range []int{7, 9, 100, 129} {
		for _, delta := range []int{1, 3} {
			ma := aem.New(cfg)
			conf, values, x := makeInstance(uint64(n), n, delta)
			m := NewMatrix(ma, conf, values)
			y := SortBased(ma, m, LoadDense(ma, x))
			if err := VerifyProduct(conf, values, x, y); err != nil {
				t.Fatalf("n=%d δ=%d: %v", n, delta, err)
			}
			ma2 := aem.New(cfg)
			m2 := NewMatrix(ma2, conf, values)
			y2 := Naive(ma2, m2, LoadDense(ma2, x))
			if err := VerifyProduct(conf, values, x, y2); err != nil {
				t.Fatalf("naive n=%d δ=%d: %v", n, delta, err)
			}
		}
	}
}
