package dict

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/aem"
	"repro/internal/sorting"
)

// BufferTree is an ω-adaptive buffer-tree dictionary in the style of Arge,
// adapted to the AEM cost model:
//
//   - The skeleton is a balanced search tree with fan-out d ≈ m over leaf
//     runs of ≤ M/2 key-sorted entries.
//   - Every node carries an unordered external buffer of pending updates.
//     Updates are appended to the root buffer in block-granular frames and
//     trickle down lazily: when a buffer crosses its threshold it is
//     streamed once, partitioned among the children's buffers, and emptied.
//     At the leaves, buffered updates are merge-applied into the sorted run.
//   - The root buffer's capacity is Θ(ω·M) — the ω-adaptive knob. The more
//     expensive writes are, the longer updates batch up before any
//     restructuring happens, trading cheap buffer-scan reads on the query
//     path for expensive structural writes. At ω = 1 the tree behaves like
//     a classic EM buffer tree; at large ω it approaches a differential
//     log + static store.
//
// An update is therefore written O((height + c)/B) times amortized instead
// of the B-tree's ≥ 1 per operation, which is the write-buffering message
// of the paper in data-structure form.
//
// Updates carry sequence numbers (packEntry), so buffers can be unordered
// bags: whenever two updates for the same key meet — at a leaf apply or on
// a query path — the larger sequence number wins. Deletes persist in leaf
// runs as tombstone entries (so out-of-order chunked applies stay correct)
// and are purged at rebuilds.
//
// The tree's shape bookkeeping (child pointers, block addresses, item
// counts) is program knowledge in the sense of §2 of the paper and lives in
// Go structs, exactly as aem.Vector keeps its base address; all data — keys,
// values, separator keys — lives in external blocks and moves only through
// costed I/O. Batches of operations and their results are client-side
// streams (see Dict); the tree meters every internal buffer it uses to
// process them.
type BufferTree struct {
	ma  *aem.Machine
	cfg aem.Config

	fanout     int // d: children per internal node
	rootCap    int // root buffer flush threshold, Θ(ω·M)
	intCap     int // internal node buffer flush threshold, M/2
	leafBufCap int // leaf buffer apply threshold, M/4
	leafCap    int // target leaf run size at rebuild, M/2; rebuild at 2×
	chunkCap   int // leaf-apply in-memory chunk, M/2

	seq     int64
	frame   []aem.Item // shared B-item scratch frame for serial scans/appends
	top     *btnode
	liveRun int // live (non-tombstone) entries across all leaf runs
	runLen  int // total entries (incl. tombstones) across all leaf runs

	// flushHook, when set, observes the wall-clock duration of every
	// top-level flush section — a threshold cascade, a forced flush, or a
	// rebuild, including the follow-on work each triggers. It exists for
	// serving layers that track flush pauses as tail latency; flushDepth
	// keeps nested sections (a rebuild inside a flush) from double firing.
	flushHook  func(time.Duration)
	flushDepth int

	// stage, when non-nil, holds the root buffer's partial tail block in
	// internal memory (see EnableTailStaging): updates accumulate here and
	// only full blocks are appended to the root chain. stageFree marks a
	// flush section that has already spilled the stage and released its
	// reservation, so nested staged sections don't double spill.
	stage     []aem.Item
	stageFree bool

	// debt is the queue of overfull nodes awaiting a flush, in the exact
	// breadth-first order the old run-to-completion cascade visited them.
	// In the default (amortized) mode the queue is drained to empty the
	// moment the root buffer crosses its threshold; in deamortized mode
	// (see Deamortize) the caller retires it incrementally via FlushStep.
	debt        []*btnode
	deamortized bool
	nodeFlushes int64 // cumulative node-flushes (partition or leaf apply)
}

// EnableTailStaging switches the root buffer to staged appends: incoming
// updates collect in a B-item internal-memory buffer and reach external
// memory only as full blocks (the stage is written out as a final partial
// block when a flush needs the buffer's contents). Without staging, every
// Apply call's append ends on a partially filled block — irrelevant when
// updates arrive in large batches, but a serving layer's group commits
// are sized by the number of concurrent writers, and a chain built from
// 5-item batches occupies ~B/5× more blocks than its items need, which
// every subsequent buffer scan then pays for. Staging restores the
// ⌈n/B⌉ occupancy at the cost of B items of internal memory (metered via
// Reserve for the tree's lifetime).
//
// Off by default: staging removes the per-batch partial-tail writes, so
// it changes the I/O accounting of existing experiments; the serving
// layer opts in, the batch experiments keep their committed numbers.
// Must be called before the first Apply.
func (t *BufferTree) EnableTailStaging() {
	if t.stage != nil {
		return
	}
	if t.seq != 0 {
		panic("dict: EnableTailStaging after updates were applied")
	}
	t.ma.Reserve(t.cfg.B)
	t.stage = make([]aem.Item, 0, t.cfg.B)
	t.refitFanout()
}

// Deamortize switches the tree to incremental flushing: crossing the root
// threshold enqueues the root on the debt queue instead of running the
// cascade to completion, and the caller retires debt with FlushStep — at
// most `budget` node-flushes per call — so the worst write-path stall is
// one node-flush, not a full cascade. Total I/O accounting is unchanged:
// the same node-flushes happen in the same order, just spread across
// calls. Only the root-occupancy backstop differs: if debt is never
// retired, the root buffer is force-flushed (one node-flush) at 2× its
// threshold. Rebuilds never run on the incremental path; callers trigger
// them at idle via Compact, and Flush keeps its drain-everything barrier
// semantics. Must be called before the first Apply.
func (t *BufferTree) Deamortize() {
	if t.deamortized {
		return
	}
	if t.seq != 0 {
		panic("dict: Deamortize after updates were applied")
	}
	t.deamortized = true
	t.refitFanout()
}

// refitFanout shrinks the fan-out when deamortized flushing and tail
// staging are both on: an incremental non-root partition then runs with
// the stage's B slots still reserved (spilling the stage on every step
// would re-fragment the root chain), so the scan frame, d output frames
// and d separator keys must fit beside it: d + (d+1)·B + B ≤ M.
func (t *BufferTree) refitFanout() {
	if !t.deamortized || t.stage == nil {
		return
	}
	d := (t.cfg.M - 2*t.cfg.B) / (t.cfg.B + 1)
	if m := t.cfg.BlocksInMemory(); d > m {
		d = m
	}
	if d < 2 {
		d = 2
	}
	t.fanout = d
}

// flushStage writes the staged tail (if any) to the root chain as one
// partial block, emptying the stage. Called before any flush that needs
// the root buffer's full contents in external memory.
func (t *BufferTree) flushStage() {
	if len(t.stage) > 0 {
		t.top.buf.appendBlock(t.ma, t.stage)
		t.stage = t.stage[:0]
	}
}

// stagedSection runs a flush section f with the stage emptied and its
// internal-memory reservation released for the duration: the cascade and
// rebuild paths size their streaming frames to use all of M, and the
// stage's B slots are genuinely free while it is empty.
func (t *BufferTree) stagedSection(f func()) {
	if t.stage == nil || t.stageFree {
		f()
		return
	}
	t.flushStage()
	t.ma.Release(t.cfg.B)
	t.stageFree = true
	f()
	t.stageFree = false
	t.ma.Reserve(t.cfg.B)
}

// rootPending returns the root buffer's total pending updates, staged
// items included.
func (t *BufferTree) rootPending() int { return t.top.buf.n + len(t.stage) }

// SetFlushHook registers fn to observe the wall-clock duration of every
// top-level flush section (cascade, forced flush, rebuild — each with the
// follow-on work it triggers). The longest such section is the worst
// write-path stall the structure inflicts on a caller: the Θ(ωM) root
// buffer defers restructuring, so a bigger ω means rarer but bigger
// pauses, which is exactly the tail-latency axis internal/dictsrv
// measures. A nil fn removes the hook.
func (t *BufferTree) SetFlushHook(fn func(time.Duration)) { t.flushHook = fn }

// timeFlush runs f, reporting its wall-clock to the flush hook when f is
// the outermost flush section.
func (t *BufferTree) timeFlush(f func()) {
	if t.flushHook == nil || t.flushDepth > 0 {
		f()
		return
	}
	t.flushDepth++
	start := time.Now()
	f()
	d := time.Since(start)
	t.flushDepth--
	t.flushHook(d)
}

// btnode is one tree node. Internal nodes have children and externally
// stored separator keys; leaves have a sorted run. Both have a buffer.
type btnode struct {
	kids []*btnode // nil for a leaf

	sepBase   aem.Addr // separator blocks (internal only)
	sepBlocks int

	buf    chain // pending updates, unordered
	run    chain // leaf only: entries sorted by key, unique keys, incl. tombstones
	liveN  int   // leaf only: non-tombstone entries in run
	inDebt bool  // queued on the tree's debt queue (dedup flag)
}

func (nd *btnode) isLeaf() bool { return nd.kids == nil }

// NewBufferTree returns an empty dictionary on the machine. It requires
// M ≥ 8B, the same minimum the repository's mergesort needs: below that
// there is no room for a block frame per child next to a scan frame.
func NewBufferTree(ma *aem.Machine) *BufferTree {
	cfg := ma.Config()
	if cfg.M < 8*cfg.B {
		panic(fmt.Sprintf("dict: BufferTree needs M ≥ 8B, got M=%d B=%d", cfg.M, cfg.B))
	}
	m := cfg.BlocksInMemory()
	// The fan-out is ~m, capped so one streaming partition — a scan frame,
	// d output frames and d separator keys — fits in internal memory.
	d := (cfg.M - cfg.B) / (cfg.B + 1)
	if d > m {
		d = m
	}
	if d < 2 {
		d = 2
	}
	t := &BufferTree{
		ma:         ma,
		cfg:        cfg,
		fanout:     d,
		rootCap:    cfg.Omega * cfg.M,
		intCap:     cfg.M / 2,
		leafBufCap: cfg.M / 4,
		leafCap:    cfg.M / 2,
		chunkCap:   cfg.M / 2,
		frame:      make([]aem.Item, cfg.B),
		top:        &btnode{},
	}
	return t
}

// Fanout returns the tree's fan-out d.
func (t *BufferTree) Fanout() int { return t.fanout }

// RootCap returns the ω-adaptive root buffer capacity in items.
func (t *BufferTree) RootCap() int { return t.rootCap }

// Len reports the number of live keys materialized in the leaf runs. It is
// exact after Flush; between flushes, buffered updates are not counted.
func (t *BufferTree) Len() int { return t.liveRun }

// Height returns the number of node levels (1 for a single leaf).
func (t *BufferTree) Height() int {
	h, nd := 1, t.top
	for !nd.isLeaf() {
		h++
		nd = nd.kids[0]
	}
	return h
}

// Apply implements Dict.
func (t *BufferTree) Apply(ops []Op) []Result {
	var results []Result
	for i := 0; i < len(ops); {
		j := i
		if isUpdate(ops[i]) {
			for j < len(ops) && isUpdate(ops[j]) {
				j++
			}
			t.update(ops[i:j])
		} else {
			for j < len(ops) && !isUpdate(ops[j]) {
				j++
			}
			results = append(results, t.query(ops[i:j])...)
		}
		i = j
	}
	return results
}

// Flush implements Dict: every buffered update is pushed into the leaf
// runs, then the rebuild condition is checked once.
func (t *BufferTree) Flush() {
	t.timeFlush(func() {
		t.stagedSection(func() {
			prev := t.ma.SetPhase("dict-flush")
			t.forceFlush()
			t.ma.SetPhase(prev)
			t.maybeRebuild()
		})
	})
}

// update appends a run of Insert/Delete ops to the root buffer. Whenever
// the buffer reaches the ω·M threshold — also mid-batch, so a single huge
// batch behaves exactly like the same ops trickling in — the root joins
// the debt queue. Amortized mode drains the queue to empty on the spot
// (the classic run-to-completion cascade); deamortized mode leaves the
// debt for FlushStep and only force-flushes the root itself (one
// node-flush) if occupancy reaches 2× the threshold, preserving the
// root-chain occupancy bound without a full cascade on the write path.
func (t *BufferTree) update(ops []Op) {
	for i := 0; i < len(ops); {
		room := t.rootCap - t.rootPending()
		if room < 1 {
			room = 1
		}
		j := min(len(ops), i+room)
		t.appendUpdates(ops[i:j])
		i = j
		if t.rootPending() >= t.rootCap {
			t.addDebt(t.top)
			if t.deamortized {
				// Backstop: occupancy must never outrun the debt queue's
				// drain rate unboundedly. Each installment is a bounded
				// O(chunkCap) root-prefix flush, so even a huge batch pays
				// its excess in bounded stalls rather than one cascade.
				for t.rootPending() >= 2*t.rootCap && t.top.buf.blocks() > 0 {
					t.timeFlush(func() {
						prev := t.ma.SetPhase("dict-flush")
						t.flushRootStep()
						t.ma.SetPhase(prev)
					})
				}
				continue
			}
			t.timeFlush(func() {
				t.stagedSection(func() {
					prev := t.ma.SetPhase("dict-flush")
					t.drainDebt()
					t.ma.SetPhase(prev)
					t.maybeRebuild()
				})
			})
		}
	}
}

// appendUpdates streams packed updates into the root buffer through one
// block frame — or through the persistent stage when tail staging is on,
// in which case only full blocks reach the chain.
func (t *BufferTree) appendUpdates(ops []Op) {
	prev := t.ma.SetPhase("dict-append")
	if t.stage != nil {
		for _, op := range ops {
			if op.Kind == Insert {
				checkValue(op.Value)
			}
			t.seq++
			if t.seq >= maxSeq {
				panic("dict: operation sequence space exhausted")
			}
			t.stage = append(t.stage, aem.Item{Key: op.Key, Aux: packEntry(t.seq, op.Kind, op.Value)})
			if len(t.stage) == t.cfg.B {
				t.top.buf.appendBlock(t.ma, t.stage)
				t.stage = t.stage[:0]
			}
		}
		t.ma.SetPhase(prev)
		return
	}
	t.ma.Reserve(t.cfg.B)
	w := newChainWriter(t.ma, &t.top.buf, t.frame)
	for _, op := range ops {
		if op.Kind == Insert {
			checkValue(op.Value)
		}
		t.seq++
		if t.seq >= maxSeq {
			panic("dict: operation sequence space exhausted")
		}
		w.append(aem.Item{Key: op.Key, Aux: packEntry(t.seq, op.Kind, op.Value)})
	}
	w.close()
	t.ma.Release(t.cfg.B)
	t.ma.SetPhase(prev)
}

// addDebt enqueues a node for flushing unless it is already queued.
func (t *BufferTree) addDebt(nd *btnode) {
	if nd.inDebt {
		return
	}
	nd.inDebt = true
	t.debt = append(t.debt, nd)
}

// Debt returns the number of queued node-flushes still owed. Entries
// whose buffers have since been emptied (a forced root flush, a barrier)
// may linger until popped; they are skipped for free by FlushStep.
func (t *BufferTree) Debt() int { return len(t.debt) }

// NodeFlushes returns the cumulative count of node-flushes (buffer
// partitions and leaf applies) the tree has performed — the unit FlushStep
// budgets in. Serving layers difference it across a commit batch to pin
// the bounded-stall contract.
func (t *BufferTree) NodeFlushes() int64 { return t.nodeFlushes }

// drainDebt retires the whole debt queue: pop front, skip nodes whose
// buffers emptied in the meantime, flush the rest. Seeded with the root,
// this visits nodes in exactly the breadth-first order of the classic
// run-to-completion cascade, so amortized-mode accounting is unchanged.
func (t *BufferTree) drainDebt() {
	for len(t.debt) > 0 {
		nd := t.debt[0]
		t.debt = t.debt[1:]
		nd.inDebt = false
		if nd.buf.n == 0 {
			continue
		}
		t.flushNode(nd)
	}
}

// FlushStep performs at most budget node-flushes from the debt queue and
// returns how many it performed. Queue entries whose buffers are already
// empty are discarded without counting toward the budget. Each step is
// its own timed flush section, so a flush hook observes exactly the
// bounded stall a caller pays. Children pushed over their threshold by a
// step join the back of the queue; the caller keeps stepping (or calls
// Flush) to retire them.
func (t *BufferTree) FlushStep(budget int) int {
	if budget <= 0 || len(t.debt) == 0 {
		return 0
	}
	done := 0
	t.timeFlush(func() {
		prev := t.ma.SetPhase("dict-flush")
		for done < budget && len(t.debt) > 0 {
			nd := t.debt[0]
			t.debt = t.debt[1:]
			nd.inDebt = false
			if nd.buf.n == 0 {
				continue
			}
			if nd == t.top {
				// The root's debt is Θ(ωM) items — the size of a whole
				// cascade — so it is paid in bounded installments: flush
				// the oldest ~chunkCap items, then rejoin the back of the
				// queue until the chain is empty. Draining to empty (not
				// merely below rootCap) matters doubly: it matches the
				// amortized mode's average occupancy, and it keeps
				// snapshot reads from scanning a permanently full root
				// chain. Any flush order is safe because every entry
				// carries its sequence number and winners are chosen by
				// it.
				t.flushRootStep()
				if t.top.buf.blocks() > 0 {
					t.addDebt(nd)
				}
			} else {
				t.flushNode(nd)
			}
			done++
		}
		t.ma.SetPhase(prev)
	})
	return done
}

// flushRootStep flushes one bounded installment of the root buffer: the
// oldest ⌈chunkCap/B⌉ chain blocks are partitioned among the children (or
// merge-applied, while the tree is a single leaf), leaving the rest of the
// chain — and the staged tail, which holds the newest partial block and
// need not ride down — in place. This is the deamortized counterpart of a
// full root flush: O(M) work per call instead of Θ(ωM).
func (t *BufferTree) flushRootStep() {
	nd := t.top
	if nd.buf.blocks() == 0 {
		return
	}
	stepBlocks := (t.chunkCap + t.cfg.B - 1) / t.cfg.B
	if nd.isLeaf() {
		t.applyLeafPrefix(nd, stepBlocks)
		return
	}
	t.partitionPrefix(nd, stepBlocks)
	for _, kid := range nd.kids {
		if kid.buf.n >= t.threshold(kid) {
			t.addDebt(kid)
		}
	}
}

// partitionPrefix distributes the items of a node's oldest maxBlocks chain
// blocks among its children and detaches those blocks from the buffer.
// Unlike partition it runs with the stage resident: the staged tail holds
// newer items than any chain block, and refitFanout sized the fan-out so
// d separators + (d+1) frames fit beside the stage's reserved block.
func (t *BufferTree) partitionPrefix(nd *btnode, maxBlocks int) {
	t.nodeFlushes++
	k := maxBlocks
	if k > nd.buf.blocks() {
		k = nd.buf.blocks()
	}
	seps := t.readSeps(nd) // holds len(kids) slots until released below
	d := len(nd.kids)
	t.ma.Reserve((d + 1) * t.cfg.B)
	prefix := chain{addrs: nd.buf.addrs[:k]}
	scan := newChainScanner(t.ma, &prefix, t.frame)
	writers := make([]*chainWriter, d)
	for i, kid := range nd.kids {
		writers[i] = newChainWriter(t.ma, &kid.buf, make([]aem.Item, 0, t.cfg.B))
	}
	moved := 0
	for {
		it, ok := scan.next()
		if !ok {
			break
		}
		moved++
		writers[route(seps, it.Key)].append(it)
	}
	for _, w := range writers {
		w.close()
	}
	nd.buf.addrs = nd.buf.addrs[k:]
	nd.buf.n -= moved
	t.ma.Release((d + 1) * t.cfg.B)
	t.ma.Release(d) // separators
}

// applyLeafPrefix merge-applies the items of a leaf's oldest maxBlocks
// chain blocks into its run and detaches those blocks. The prefix is at
// most chunkCap+B items, so it sorts in internal memory — the external
// mergesort path of a full applyLeaf is never needed for an installment.
func (t *BufferTree) applyLeafPrefix(leaf *btnode, maxBlocks int) {
	t.nodeFlushes++
	k := maxBlocks
	if k > leaf.buf.blocks() {
		k = leaf.buf.blocks()
	}
	t.ma.Reserve(k*t.cfg.B + t.cfg.B)
	prefix := chain{addrs: leaf.buf.addrs[:k]}
	chunk := make([]aem.Item, 0, k*t.cfg.B)
	scan := newChainScanner(t.ma, &prefix, t.frame)
	for {
		it, ok := scan.next()
		if !ok {
			break
		}
		chunk = append(chunk, it)
	}
	sortEntries(chunk)
	i := 0
	t.mergeApply(leaf, func() (aem.Item, bool) {
		if i < len(chunk) {
			i++
			return chunk[i-1], true
		}
		return aem.Item{}, false
	})
	leaf.buf.addrs = leaf.buf.addrs[k:]
	leaf.buf.n -= len(chunk)
	t.ma.Release(k*t.cfg.B + t.cfg.B)
}

// flushNode performs one node-flush: partition an internal node's buffer
// among its children (enqueuing any child pushed over its threshold), or
// merge-apply a leaf's buffer into its run. The staging interplay is
// per-node: flushing the root spills the stage first (its items belong to
// the root buffer and ride the partition down); a big leaf apply spills
// it too, because the external mergesort sizes itself to all of M; every
// other case runs with the stage resident — refitFanout guarantees a
// non-root partition fits beside it, and spilling on every step would
// re-fragment the chain staging exists to defragment. Inside a section
// that already spilled (amortized drains, barriers) the nested sections
// are no-ops.
func (t *BufferTree) flushNode(nd *btnode) {
	if nd.buf.n == 0 {
		return
	}
	if nd.isLeaf() {
		if nd == t.top || nd.buf.n > t.chunkCap {
			t.stagedSection(func() { t.applyLeaf(nd) })
		} else {
			t.applyLeaf(nd)
		}
		return
	}
	if nd == t.top {
		t.stagedSection(func() { t.partition(nd) })
	} else {
		t.partition(nd)
	}
	for _, kid := range nd.kids {
		if kid.buf.n >= t.threshold(kid) {
			t.addDebt(kid)
		}
	}
}

// forceFlush pushes every buffer in the tree down to the leaves regardless
// of thresholds. Every buffer is empty afterwards, so any queued debt is
// settled wholesale and the queue is cleared.
func (t *BufferTree) forceFlush() {
	level := []*btnode{t.top}
	for len(level) > 0 {
		var next []*btnode
		for _, nd := range level {
			if nd.isLeaf() {
				if nd.buf.n > 0 {
					t.applyLeaf(nd)
				}
				continue
			}
			if nd.buf.n > 0 {
				t.partition(nd)
			}
			next = append(next, nd.kids...)
		}
		level = next
	}
	for _, nd := range t.debt {
		nd.inDebt = false
	}
	t.debt = t.debt[:0]
}

func (t *BufferTree) threshold(nd *btnode) int {
	if nd.isLeaf() {
		return t.leafBufCap
	}
	return t.intCap
}

// readSeps loads an internal node's separator keys (the lower key bound of
// each child; seps[0] is -∞). One costed read per separator block; the
// keys occupy metered internal memory only while the caller holds them —
// callers must Release len(kids) slots when done.
func (t *BufferTree) readSeps(nd *btnode) []int64 {
	t.ma.Reserve(len(nd.kids) + t.cfg.B)
	seps := make([]int64, 0, len(nd.kids))
	for b := 0; b < nd.sepBlocks; b++ {
		blk := t.ma.ReadInto(nd.sepBase+aem.Addr(b), t.frame[:0])
		for _, it := range blk {
			seps = append(seps, it.Key)
		}
	}
	t.ma.Release(t.cfg.B)
	if len(seps) != len(nd.kids) {
		panic(fmt.Sprintf("dict: node has %d separators for %d children", len(seps), len(nd.kids)))
	}
	return seps
}

// writeSeps stores the separator keys of a freshly built internal node.
func (t *BufferTree) writeSeps(nd *btnode, seps []int64) {
	nd.sepBlocks = (len(seps) + t.cfg.B - 1) / t.cfg.B
	nd.sepBase = t.ma.Alloc(nd.sepBlocks)
	t.ma.Reserve(t.cfg.B)
	frame := make([]aem.Item, 0, t.cfg.B)
	blk := 0
	for i, s := range seps {
		frame = append(frame, aem.Item{Key: s, Aux: int64(i)})
		if len(frame) == t.cfg.B || i == len(seps)-1 {
			t.ma.Write(nd.sepBase+aem.Addr(blk), frame)
			blk++
			frame = frame[:0]
		}
	}
	t.ma.Release(t.cfg.B)
}

// route returns the index of the child covering key k.
func route(seps []int64, k int64) int {
	// First child covers (-∞, seps[1]); seps[0] is its stored low bound
	// but acts as -∞.
	i := sort.Search(len(seps)-1, func(j int) bool { return k < seps[j+1] })
	return i
}

// partition streams an internal node's buffer once and distributes the
// updates among the children's buffers: one scan frame in, d output frames
// out, d separator keys resident.
func (t *BufferTree) partition(nd *btnode) {
	t.nodeFlushes++
	seps := t.readSeps(nd) // holds len(kids) slots until released below
	d := len(nd.kids)
	t.ma.Reserve((d + 1) * t.cfg.B)
	scan := newChainScanner(t.ma, &nd.buf, t.frame)
	writers := make([]*chainWriter, d)
	for i, kid := range nd.kids {
		writers[i] = newChainWriter(t.ma, &kid.buf, make([]aem.Item, 0, t.cfg.B))
	}
	for {
		it, ok := scan.next()
		if !ok {
			break
		}
		writers[route(seps, it.Key)].append(it)
	}
	for _, w := range writers {
		w.close()
	}
	nd.buf.reset()
	t.ma.Release((d + 1) * t.cfg.B)
	t.ma.Release(d) // separators
}

// applyLeaf merges a leaf's buffered updates into its sorted run in ONE
// streaming pass over the run, so the run is rewritten once per apply no
// matter how many updates arrived. A buffer that fits in M/2 items is
// sorted in internal memory (free computation); a bigger buffer — a root
// cascade can dump up to ω·M updates on one leaf — is materialized and
// sorted with the repository's own AEM mergesort, which converts the
// would-be write amplification into cheap read passes, exactly the trade
// the model rewards.
func (t *BufferTree) applyLeaf(leaf *btnode) {
	t.nodeFlushes++
	if leaf.buf.n <= t.chunkCap {
		t.ma.Reserve(t.chunkCap + t.cfg.B)
		chunk := make([]aem.Item, 0, leaf.buf.n)
		scan := newChainScanner(t.ma, &leaf.buf, t.frame)
		for {
			it, ok := scan.next()
			if !ok {
				break
			}
			chunk = append(chunk, it)
		}
		sortEntries(chunk)
		i := 0
		t.mergeApply(leaf, func() (aem.Item, bool) {
			if i < len(chunk) {
				i++
				return chunk[i-1], true
			}
			return aem.Item{}, false
		})
		t.ma.Release(t.chunkCap + t.cfg.B)
	} else {
		v := t.materializeBuf(&leaf.buf)
		sorted := sorting.MergeSort(t.ma, v)
		sc := sorted.NewScanner()
		t.mergeApply(leaf, sc.Next)
		sc.Close()
	}
	leaf.buf.reset()
}

// materializeBuf copies a buffer chain into a fresh contiguous vector so
// it can be sorted externally: one read and one write per block.
func (t *BufferTree) materializeBuf(c *chain) *aem.Vector {
	v := aem.NewVector(t.ma, c.n)
	t.ma.Reserve(t.cfg.B)
	scan := newChainScanner(t.ma, c, t.frame)
	w := v.NewWriter()
	for {
		it, ok := scan.next()
		if !ok {
			break
		}
		w.Append(it)
	}
	w.Close()
	t.ma.Release(t.cfg.B)
	return v
}

// mergeApply merges a (key, seq)-sorted update stream into the leaf's run:
// one streaming pass, two block frames. The run keeps exactly one entry
// per key — the winning update, tombstones included.
func (t *BufferTree) mergeApply(leaf *btnode, next func() (aem.Item, bool)) {
	t.ma.Reserve(2 * t.cfg.B)
	out := chain{}
	scan := newChainScanner(t.ma, &leaf.run, t.frame)
	w := newChainWriter(t.ma, &out, make([]aem.Item, 0, t.cfg.B))
	liveN := 0
	emit := func(it aem.Item) {
		w.append(it)
		if entryKind(it.Aux) == Insert {
			liveN++
		}
	}
	cur, ok := scan.next()
	op, opOk := next()
	for ok || opOk {
		if !opOk || (ok && cur.Key < op.Key) {
			emit(cur)
			cur, ok = scan.next()
			continue
		}
		k := op.Key
		win := op
		for op, opOk = next(); opOk && op.Key == k; op, opOk = next() {
			if entrySeq(op.Aux) > entrySeq(win.Aux) {
				win = op
			}
		}
		if ok && cur.Key == k {
			if entrySeq(cur.Aux) > entrySeq(win.Aux) {
				win = cur
			}
			cur, ok = scan.next()
		}
		emit(win)
	}
	w.close()
	t.liveRun += liveN - leaf.liveN
	t.runLen += out.n - leaf.run.n
	leaf.run = out
	leaf.liveN = liveN
	t.ma.Release(2 * t.cfg.B)
}

// sortEntries orders items by (Key, Aux); with packEntry's layout that is
// (key, sequence) order. Internal computation is free in the model.
func sortEntries(items []aem.Item) {
	sort.Slice(items, func(i, j int) bool { return aem.Less(items[i], items[j]) })
}

// needRebuild reports whether the skeleton should be rebuilt: some leaf
// run outgrew 2× the target leaf size, or tombstones and overwrites have
// bloated the runs to 2× the live entry count. Structure walk, no I/O.
func (t *BufferTree) needRebuild() bool {
	if t.runLen > 2*max(t.liveRun, t.leafCap) {
		return true
	}
	for _, leaf := range t.leaves() {
		if leaf.run.n > 2*t.leafCap {
			return true
		}
	}
	return false
}

// maybeRebuild rebuilds the skeleton when needRebuild says so.
func (t *BufferTree) maybeRebuild() {
	if !t.needRebuild() {
		return
	}
	prev := t.ma.SetPhase("dict-rebuild")
	t.forceFlush()
	t.rebuild()
	t.ma.SetPhase(prev)
}

// Compact runs the rebuild check off the commit path. Deamortized callers
// invoke it at idle — the incremental path (FlushStep, the 2× root
// backstop) never rebuilds, because a rebuild replaces the node structure
// the debt queue points into, so Compact declines while debt is
// outstanding. Returns whether a rebuild ran; when it does, it is a full
// flush-and-rebuild stall, which is exactly why it belongs at idle.
func (t *BufferTree) Compact() bool {
	if len(t.debt) > 0 || !t.needRebuild() {
		return false
	}
	t.timeFlush(func() {
		t.stagedSection(func() {
			t.maybeRebuild()
		})
	})
	return true
}

// leaves returns the tree's leaves in key order (structure walk, no I/O).
func (t *BufferTree) leaves() []*btnode {
	var out []*btnode
	var walk func(nd *btnode)
	walk = func(nd *btnode) {
		if nd.isLeaf() {
			out = append(out, nd)
			return
		}
		for _, kid := range nd.kids {
			walk(kid)
		}
	}
	walk(t.top)
	return out
}

// rebuild streams every live entry (leaves are already in global key
// order) into fresh leaf runs of ≤ leafCap entries, purging tombstones,
// and erects a balanced fan-out-d skeleton above them. All buffers must be
// empty (forceFlush). Cost: one read and one write per run block, plus the
// separator blocks.
func (t *BufferTree) rebuild() {
	old := t.leaves()
	t.ma.Reserve(2 * t.cfg.B)
	inFrame := make([]aem.Item, t.cfg.B)
	var newLeaves []*btnode
	var lows []int64
	var cur *btnode
	var w *chainWriter
	outFrame := make([]aem.Item, 0, t.cfg.B)
	flushCur := func() {
		if cur != nil {
			w.close()
			newLeaves = append(newLeaves, cur)
		}
		cur = nil
	}
	live := 0
	for _, leaf := range old {
		scan := newChainScanner(t.ma, &leaf.run, inFrame)
		for {
			it, ok := scan.next()
			if !ok {
				break
			}
			if entryKind(it.Aux) != Insert {
				continue // purge tombstone
			}
			if cur == nil {
				cur = &btnode{}
				w = newChainWriter(t.ma, &cur.run, outFrame)
				lows = append(lows, it.Key)
			}
			w.append(it)
			cur.liveN++
			live++
			if cur.run.n+len(w.frame) >= t.leafCap {
				flushCur()
			}
		}
	}
	flushCur()
	t.ma.Release(2 * t.cfg.B)

	if len(newLeaves) == 0 {
		t.top = &btnode{}
		t.liveRun, t.runLen = 0, 0
		return
	}
	t.liveRun = live
	t.runLen = live

	// Erect internal levels, writing each node's separator keys.
	level, lvLows := newLeaves, lows
	for len(level) > 1 {
		var parents []*btnode
		var parentLows []int64
		for lo := 0; lo < len(level); lo += t.fanout {
			hi := min(lo+t.fanout, len(level))
			nd := &btnode{kids: append([]*btnode(nil), level[lo:hi]...)}
			t.writeSeps(nd, lvLows[lo:hi])
			parents = append(parents, nd)
			parentLows = append(parentLows, lvLows[lo])
		}
		level, lvLows = parents, parentLows
	}
	t.top = level[0]
}

// ---- queries ----

// lookupQ tracks the best (max-sequence) update seen for one Lookup.
type lookupQ struct {
	idx  int
	key  int64
	cand int64 // packed Aux of the winner; 0 = none seen
}

// rangeQ accumulates winners per key for one RangeScan.
type rangeQ struct {
	idx    int
	lo, hi int64
	cands  map[int64]int64 // key → packed Aux of the winner
}

// query answers a run of Lookup/RangeScan ops with one batched tree
// descent: every buffer on a relevant root-to-leaf path is scanned exactly
// once, and winners are resolved by sequence number across buffers and
// leaf runs. Because Apply segments the stream, every update in the tree
// precedes every query in the batch.
func (t *BufferTree) query(ops []Op) []Result {
	prev := t.ma.SetPhase("dict-query")
	defer t.ma.SetPhase(prev)

	lookups := make([]*lookupQ, 0, len(ops))
	ranges := make([]*rangeQ, 0)
	for i, op := range ops {
		switch op.Kind {
		case Lookup:
			lookups = append(lookups, &lookupQ{idx: i, key: op.Key})
		case RangeScan:
			ranges = append(ranges, &rangeQ{idx: i, lo: op.Key, hi: op.Hi, cands: make(map[int64]int64)})
		default:
			panic(fmt.Sprintf("dict: query batch contains %v", op.Kind))
		}
	}
	sort.Slice(lookups, func(i, j int) bool { return lookups[i].key < lookups[j].key })

	// The staged root tail (if any) is internal memory: scan it at no I/O
	// cost. Its entries carry the newest sequence numbers, so scanMatch's
	// winner resolution handles them like any buffered update.
	for _, it := range t.stage {
		scanMatch(it, lookups, ranges)
	}
	t.descend(t.top, lookups, ranges)

	results := make([]Result, len(ops))
	for _, lq := range lookups {
		if lq.cand != 0 && entryKind(lq.cand) == Insert {
			results[lq.idx] = Result{OK: true, Value: entryValue(lq.cand)}
		}
	}
	for _, rq := range ranges {
		keys := make([]int64, 0, len(rq.cands))
		for k, aux := range rq.cands {
			if entryKind(aux) == Insert {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		hits := make([]Found, 0, len(keys))
		for _, k := range keys {
			hits = append(hits, Found{Key: k, Value: entryValue(rq.cands[k])})
		}
		results[rq.idx] = Result{Hits: hits}
	}
	return results
}

// scanMatch feeds one stored item (a buffered update or a leaf run entry)
// to the queries it concerns. lookups are sorted by key.
func scanMatch(it aem.Item, lookups []*lookupQ, ranges []*rangeQ) {
	i := sort.Search(len(lookups), func(j int) bool { return lookups[j].key >= it.Key })
	for ; i < len(lookups) && lookups[i].key == it.Key; i++ {
		if entrySeq(it.Aux) > entrySeq(lookups[i].cand) {
			lookups[i].cand = it.Aux
		}
	}
	for _, rq := range ranges {
		if rq.lo <= it.Key && it.Key < rq.hi {
			if entrySeq(it.Aux) > entrySeq(rq.cands[it.Key]) {
				rq.cands[it.Key] = it.Aux
			}
		}
	}
}

func (t *BufferTree) descend(nd *btnode, lookups []*lookupQ, ranges []*rangeQ) {
	if len(lookups) == 0 && len(ranges) == 0 {
		return
	}
	// Scan this node's buffer (and run, for leaves) with one block frame.
	t.ma.Reserve(t.cfg.B)
	for _, c := range []*chain{&nd.buf, &nd.run} {
		scan := newChainScanner(t.ma, c, t.frame)
		for {
			it, ok := scan.next()
			if !ok {
				break
			}
			scanMatch(it, lookups, ranges)
		}
	}
	t.ma.Release(t.cfg.B)
	if nd.isLeaf() {
		return
	}

	// Route queries to children while the separator keys are resident,
	// then release the keys before recursing, so the metered peak is one
	// node's worth of memory regardless of tree height.
	seps := t.readSeps(nd) // holds len(kids) slots until released below
	d := len(nd.kids)
	kidLookups := make([][]*lookupQ, d)
	lo := 0
	for ci := 0; ci < d; ci++ {
		// Lookups routed to this child form a contiguous slice.
		hi := lo
		for hi < len(lookups) && route(seps, lookups[hi].key) == ci {
			hi++
		}
		kidLookups[ci] = lookups[lo:hi]
		lo = hi
	}
	kidRanges := make([][]*rangeQ, d)
	for ci := 0; ci < d; ci++ {
		for _, rq := range ranges {
			if rangeOverlaps(rq, seps, ci) {
				kidRanges[ci] = append(kidRanges[ci], rq)
			}
		}
	}
	t.ma.Release(d)
	for ci, kid := range nd.kids {
		t.descend(kid, kidLookups[ci], kidRanges[ci])
	}
}

// rangeOverlaps reports whether the range query intersects child ci's key
// interval [seps[ci], seps[ci+1]) (the first child's interval starts at -∞,
// the last child's ends at +∞).
func rangeOverlaps(rq *rangeQ, seps []int64, ci int) bool {
	lo := seps[ci]
	if ci == 0 {
		lo = math.MinInt64
	}
	if ci+1 < len(seps) && rq.lo >= seps[ci+1] {
		return false
	}
	return rq.hi > lo || ci == 0
}

