// Package cli implements the aem multitool: one binary, thirteen
// subcommands (bench, merge, serve, work, gate, stallgate, profdiff,
// engines, dict, dictload, sort, spmxv, trace) sharing flag parsing,
// machine validation and output plumbing. The historical
// standalone binaries (aembench, aemdict, …) are thin deprecated wrappers
// over the same implementations via RunDeprecated.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/aem"
)

// Command is one aem subcommand.
type Command struct {
	Name    string
	Summary string
	Run     func(prog string, args []string) int
}

// Commands lists the subcommands in help order.
func Commands() []Command {
	return []Command{
		{"bench", "run the experiment registry: rendered tables, per-experiment CSV, JSON records", benchCmd},
		{"merge", "reassemble shard/fleet point records into the unsharded tables", mergeCmd},
		{"serve", "coordinate an elastic fleet: lease grid points to `aem work` workers over HTTP", serveCmd},
		{"work", "run grid points for an `aem serve` coordinator, or finish a residual spec", workCmd},
		{"gate", "compare a timed bench run's points/sec against a committed baseline", gateCmd},
		{"stallgate", "gate a -deamortize dictload run's worst stall against its amortized twin and a baseline", stallgateCmd},
		{"profdiff", "diff a pprof -top summary against a committed baseline: fail on new heavy functions", profdiffCmd},
		{"engines", "list the storage-engine registry with capability flags", enginesCmd},
		{"dict", "drive a dictionary op stream: buffer tree vs B-tree vs bounds", dictCmd},
		{"dictload", "concurrent load against the sharded dictionary service: throughput, p50/p99/max, flush stalls", dictloadCmd},
		{"sort", "sort a generated workload and compare against the paper's bounds", sortCmd},
		{"spmxv", "sparse matrix × dense vector with both Section 5 algorithms", spmxvCmd},
		{"trace", "record an algorithm's I/O trace and analyze its §4 rounds", traceCmd},
	}
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: aem <command> [flags]\n\ncommands:\n")
	for _, c := range Commands() {
		fmt.Fprintf(w, "  %-9s %s\n", c.Name, c.Summary)
	}
	fmt.Fprintf(w, "\nrun `aem <command> -h` for the command's flags\n")
}

// Main dispatches an aem invocation and returns its exit code.
func Main(args []string) int {
	if len(args) == 0 {
		usage(os.Stderr)
		return 2
	}
	switch args[0] {
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
		return 0
	}
	for _, c := range Commands() {
		if c.Name == args[0] {
			return c.Run("aem "+c.Name, args[1:])
		}
	}
	fmt.Fprintf(os.Stderr, "aem: unknown command %q\n\n", args[0])
	usage(os.Stderr)
	return 2
}

// RunDeprecated runs a subcommand under its historical standalone name
// (aembench, aemdict, …), printing a one-line deprecation pointer to the
// multitool. Flags and output are unchanged.
func RunDeprecated(oldName, sub string, args []string) int {
	fmt.Fprintf(os.Stderr, "%s: deprecated, use `aem %s` (same flags)\n", oldName, sub)
	for _, c := range Commands() {
		if c.Name == sub {
			return c.Run(oldName, args)
		}
	}
	panic("cli: unknown subcommand " + sub)
}

// fail prints a prog-prefixed error line to stderr.
func fail(prog, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, prog+": "+format+"\n", args...)
}

// machineFlags registers the -m/-b/-omega machine flags every subcommand
// shares and returns a validator producing the configured machine.
func machineFlags(fs *flag.FlagSet, m, b, omega int) func() (aem.Config, error) {
	mv := fs.Int("m", m, "internal memory M in items")
	bv := fs.Int("b", b, "block size B in items")
	wv := fs.Int("omega", omega, "write/read cost ratio ω")
	return func() (aem.Config, error) {
		cfg := aem.Config{M: *mv, B: *bv, Omega: *wv}
		if err := cfg.Validate(); err != nil {
			return cfg, err
		}
		return cfg, nil
	}
}
