package fleet

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// fleetSpecs builds a small deterministic selection. Each call returns a
// fresh copy — workers resolve their own instances, as separate
// processes would.
func fleetSpecs() []*harness.Spec {
	return []*harness.Spec{
		{
			ID:      "FA",
			Axes:    []harness.Axis{{Name: "i", Values: harness.Ints(0, 1, 2, 3, 4, 5, 6, 7)}},
			Columns: harness.Cols("i", "sq"),
			Point: func(p harness.Point) harness.Row {
				time.Sleep(time.Millisecond)
				return harness.Row{p.Int("i"), p.Int("i") * p.Int("i")}
			},
		},
		{
			ID:      "FB",
			Axes:    []harness.Axis{{Name: "j", Values: harness.Ints(10, 20, 30, 40)}},
			Columns: harness.Cols("j"),
			Point: func(p harness.Point) harness.Row {
				time.Sleep(time.Millisecond)
				return harness.Row{p.Int("j")}
			},
		},
	}
}

// measure runs the given refs locally and returns their records — the
// shortest way to fabricate valid worker uploads for state-machine tests.
func measure(t *testing.T, refs []harness.GridRef) []harness.PointRecord {
	t.Helper()
	var recs []harness.PointRecord
	r := harness.NewPointRunner(fleetSpecs())
	if err := r.Run(refs, 2, func(rec harness.PointRecord) error { recs = append(recs, rec); return nil }); err != nil {
		t.Fatal(err)
	}
	return recs
}

// render captures the rendered tables of any table-producing run.
func render(t *testing.T, run func(emit func(*harness.Table))) []byte {
	t.Helper()
	var buf bytes.Buffer
	run(func(tbl *harness.Table) { tbl.Render(&buf) })
	return buf.Bytes()
}

// drain leases points until the coordinator reports done, uploading
// locally measured records, and returns how many leases it took.
func drain(t *testing.T, c *Coordinator) int {
	t.Helper()
	n := 0
	for deadline := time.Now().Add(10 * time.Second); ; {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never reported done")
		}
		lr := c.Lease("drain")
		if lr.Done {
			return n
		}
		if len(lr.Points) == 0 {
			time.Sleep(time.Millisecond)
			continue
		}
		n++
		if _, err := c.Ingest(lr.Lease, measure(t, lr.Points)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCoordinatorLeaseIngestMerge drives the state machine without a
// network: chunked leases cover the grid exactly once, the output stream
// is a valid 1-of-1 shard set, and merging it renders byte-identical to
// an in-process run of the same selection.
func TestCoordinatorLeaseIngestMerge(t *testing.T) {
	var out bytes.Buffer
	c, err := New(Config{Specs: fleetSpecs(), Out: &out, Chunk: 5})
	if err != nil {
		t.Fatal(err)
	}
	if filled, total := c.Progress(); filled != 0 || total != 12 {
		t.Fatalf("fresh progress %d/%d, want 0/12", filled, total)
	}

	leases := drain(t, c)
	if leases != 3 { // ceil(12/5): chunking must bound each lease
		t.Errorf("run took %d leases, want 3", leases)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done not closed after the last ingest")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	sf, err := harness.ReadShardFile(&out)
	if err != nil {
		t.Fatalf("coordinator output is not a shard stream: %v", err)
	}
	if sf.Manifest.Of != 1 || sf.Manifest.Shard != 0 || sf.Manifest.Residual {
		t.Fatalf("manifest %+v, want a plain 1-of-1 stream", sf.Manifest)
	}
	specs := fleetSpecs()
	got := render(t, func(emit func(*harness.Table)) {
		if err := harness.MergeShards(specs, []*harness.ShardFile{sf}, false, emit); err != nil {
			t.Fatalf("merge: %v", err)
		}
	})
	want := render(t, func(emit func(*harness.Table)) {
		(&harness.LocalPool{Par: 1}).Execute(fleetSpecs(), emit)
	})
	if !bytes.Equal(got, want) {
		t.Fatal("fleet output diverged from the in-process run")
	}
}

// TestCoordinatorDuplicatesAndFirstWins: later copies of an accepted
// point are counted and discarded, never re-written to the stream —
// speculative re-execution must not corrupt the output.
func TestCoordinatorDuplicatesAndFirstWins(t *testing.T) {
	var out bytes.Buffer
	c, err := New(Config{Specs: fleetSpecs(), Out: &out, Chunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	lr := c.Lease("w1")
	recs := measure(t, lr.Points)
	if resp, err := c.Ingest(lr.Lease, recs); err != nil || resp.Accepted != len(recs) {
		t.Fatalf("first upload: %+v, %v", resp, err)
	}
	// The same records again — from the same lease, and from a lease the
	// coordinator never issued (an expired worker still uploading).
	for _, id := range []int{lr.Lease, 9999} {
		resp, err := c.Ingest(id, recs)
		if err != nil {
			t.Fatalf("duplicate upload via lease %d: %v", id, err)
		}
		if resp.Accepted != 0 || resp.Duplicates != len(recs) {
			t.Fatalf("duplicate upload via lease %d: %+v, want 0 accepted / %d duplicates", id, resp, len(recs))
		}
	}
	if filled, _ := c.Progress(); filled != len(recs) {
		t.Fatalf("progress %d after duplicate uploads, want %d", filled, len(recs))
	}

	// A tampered record is rejected without poisoning coordinator state.
	bad := recs[0]
	bad.Cells = append(bad.Cells, "extra")
	if _, err := c.Ingest(lr.Lease, []harness.PointRecord{bad}); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn upload accepted: %v", err)
	}
}

// TestCoordinatorLeaseExpiryReissues: a worker that goes silent past the
// TTL loses its lease and its unfilled points return to the queue for
// the next worker.
func TestCoordinatorLeaseExpiryReissues(t *testing.T) {
	var out bytes.Buffer
	c, err := New(Config{Specs: fleetSpecs(), Out: &out, Chunk: 64, LeaseTTL: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	dead := c.Lease("doomed")
	if len(dead.Points) != 12 {
		t.Fatalf("first lease got %d points, want the whole grid", len(dead.Points))
	}
	time.Sleep(25 * time.Millisecond) // no uploads: the lease dies

	heir := c.Lease("survivor")
	if len(heir.Points) != 12 {
		t.Fatalf("after expiry the queue holds %d points, want all 12 re-issued", len(heir.Points))
	}
	if heir.Lease == dead.Lease {
		t.Fatal("expired lease re-issued under the same ID")
	}
}

// TestCoordinatorSpeculation: with the queue drained but a lease still
// outstanding and unexpired, an idle worker receives the straggler's
// points speculatively; whichever copy uploads first wins.
func TestCoordinatorSpeculation(t *testing.T) {
	var out bytes.Buffer
	c, err := New(Config{Specs: fleetSpecs(), Out: &out, Chunk: 64, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	straggler := c.Lease("straggler")
	spec := c.Lease("idle")
	if len(spec.Points) != len(straggler.Points) {
		t.Fatalf("speculative lease carries %d points, want the straggler's %d", len(spec.Points), len(straggler.Points))
	}
	// The speculative copy reports first and completes the run; the
	// straggler's late records are all duplicates.
	if _, err := c.Ingest(spec.Lease, measure(t, spec.Points)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("speculative uploads did not complete the run")
	}
	resp, err := c.Ingest(straggler.Lease, measure(t, straggler.Points))
	if err != nil || resp.Duplicates != len(straggler.Points) {
		t.Fatalf("straggler upload: %+v, %v", resp, err)
	}
	if lr := c.Lease("anyone"); !lr.Done {
		t.Fatal("post-completion lease not marked done")
	}
}

// TestFleetWorkersEndToEnd runs the real HTTP loop: a coordinator behind
// httptest, three Work loops with an injected registry, one killed
// mid-run via its context. The survivors absorb the dead worker's points
// (expiry + speculation) and the merged output still renders
// byte-identical to the in-process run.
func TestFleetWorkersEndToEnd(t *testing.T) {
	var out bytes.Buffer
	c, err := New(Config{Specs: fleetSpecs(), Out: &out, Chunk: 2, LeaseTTL: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resolve := func([]string) ([]*harness.Spec, error) { return fleetSpecs(), nil }
	ctx := context.Background()
	victimCtx, kill := context.WithCancel(ctx)
	errs := make(chan error, 3)
	for _, w := range []struct {
		name string
		ctx  context.Context
	}{{"w1", ctx}, {"w2", ctx}, {"victim", victimCtx}} {
		w := w
		go func() {
			errs <- Work(w.ctx, WorkerConfig{URL: srv.URL, Par: 2, Name: w.name, Resolve: resolve})
		}()
	}
	// Kill the victim once the run is demonstrably mid-flight.
	go func() {
		for {
			if filled, total := c.Progress(); filled > 0 && filled < total {
				kill()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	select {
	case <-c.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("fleet never completed after the worker kill")
	}
	killed := 0
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, context.Canceled) {
				killed++
			} else if err != nil {
				t.Fatalf("worker failed: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("worker did not exit after completion")
		}
	}
	if killed > 1 {
		t.Fatalf("%d workers died, only the victim was cancelled", killed)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	sf, err := harness.ReadShardFile(&out)
	if err != nil {
		t.Fatalf("fleet output is not a shard stream: %v", err)
	}
	specs := fleetSpecs()
	got := render(t, func(emit func(*harness.Table)) {
		if err := harness.MergeShards(specs, []*harness.ShardFile{sf}, false, emit); err != nil {
			t.Fatalf("merge: %v", err)
		}
	})
	want := render(t, func(emit func(*harness.Table)) {
		(&harness.LocalPool{Par: 1}).Execute(fleetSpecs(), emit)
	})
	if !bytes.Equal(got, want) {
		t.Fatal("fleet output with a mid-run kill diverged from the in-process run")
	}
}

// TestWorkerRejectsForeignRun: a worker whose registry enumerates a
// different grid than the coordinator must refuse to work rather than
// upload records the coordinator would reject point by point.
func TestWorkerRejectsForeignRun(t *testing.T) {
	var out bytes.Buffer
	c, err := New(Config{Specs: fleetSpecs(), Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	smaller := func([]string) ([]*harness.Spec, error) {
		specs := fleetSpecs()
		specs[1].Axes = []harness.Axis{{Name: "j", Values: harness.Ints(10)}}
		return specs, nil
	}
	err = Work(context.Background(), WorkerConfig{URL: srv.URL, Resolve: smaller})
	if err == nil || !strings.Contains(err.Error(), "registry drift") {
		t.Fatalf("foreign worker error = %v, want registry drift", err)
	}
}
