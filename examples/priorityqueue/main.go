// Priority queue scenario: discrete-event simulation on NVM-resident
// state. Events live in an external-memory priority queue; each processed
// event schedules follow-up events (here: a token-passing cascade), so
// Push and DeleteMin interleave — the access pattern that distinguishes a
// priority queue from a sort.
//
// The same event loop runs on both queues: the classic sequence heap,
// which flushes a run every M/8 insertions whatever writes cost, and the
// ω-adaptive buffered queue, which batches pushes in a Θ(ωM) external
// buffer and serves deletions with read-only selection scans until the
// read rent matches a fold's ω-weighted write bill. Event traffic is
// monotone (follow-ups schedule strictly later), the adaptive queue's
// best regime: most events are consumed straight from run frontiers and
// the buffer folds only when the clock catches up with it.
//
//	go run ./examples/priorityqueue
package main

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/core"
	"repro/internal/workload"
)

// seedEvents is the number of initially scheduled events.
const seedEvents = 5000

// simulate runs the event loop and returns how many events were processed.
func simulate(q interface {
	Push(aem.Item)
	DeleteMin() (aem.Item, bool)
	Close()
}) int {
	rng := workload.NewRNG(99)
	var id int64
	for i := 0; i < seedEvents; i++ {
		q.Push(aem.Item{Key: int64(rng.Intn(1 << 14)), Aux: id})
		id++
	}
	// Each event has a 1/3 chance of scheduling a follow-up at a strictly
	// later time (so the simulation terminates).
	var processed int
	var lastTime int64 = -1
	for {
		ev, ok := q.DeleteMin()
		if !ok {
			break
		}
		if ev.Key < lastTime {
			panic("event times went backwards — priority queue broken")
		}
		lastTime = ev.Key
		processed++
		if rng.Intn(3) == 0 {
			q.Push(aem.Item{Key: ev.Key + 1 + int64(rng.Intn(1000)), Aux: id})
			id++
		}
	}
	q.Close()
	return processed
}

func main() {
	cfg := core.Config{M: 256, B: 16, Omega: 16}

	maSeq := core.NewMachine(cfg)
	processed := simulate(core.NewPriorityQueue(maSeq))

	maAd := core.NewMachine(cfg)
	qa := core.NewAdaptivePriorityQueue(maAd)
	if p := simulate(qa); p != processed {
		panic("queues processed different event counts")
	}

	stS, stA := maSeq.Stats(), maAd.Stats()
	fmt.Printf("discrete-event simulation on a (M=%d, B=%d, ω=%d)-AEM\n", cfg.M, cfg.B, cfg.Omega)
	fmt.Printf("  events processed  %d (%d seeded, %d cascaded) — identical on both queues\n",
		processed, seedEvents, processed-seedEvents)
	fmt.Printf("  event order       verified monotone in time\n\n")
	fmt.Printf("  sequence heap     reads %6d  writes %5d (%.2f per event)  cost Q %d\n",
		stS.Reads, stS.Writes, float64(stS.Writes)/float64(processed), maSeq.Cost())
	fmt.Printf("  ω-adaptive queue  reads %6d  writes %5d (%.2f per event)  cost Q %d\n",
		stA.Reads, stA.Writes, float64(stA.Writes)/float64(processed), maAd.Cost())
	fmt.Printf("  cost advantage    %.2f× — the Θ(ωM) buffer absorbed pushes in %d folds,\n",
		float64(maSeq.Cost())/float64(maAd.Cost()), qa.Folds())
	fmt.Printf("                    trading ω-weighted run writes for read-only selection scans\n")
}
