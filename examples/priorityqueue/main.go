// Priority queue scenario: discrete-event simulation on NVM-resident
// state. Events live in an external-memory sequence heap; each processed
// event schedules follow-up events (here: a token-passing cascade), so
// Push and DeleteMin interleave — the access pattern that distinguishes a
// priority queue from a sort.
//
//	go run ./examples/priorityqueue
package main

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	cfg := core.Config{M: 512, B: 16, Omega: 16}
	ma := core.NewMachine(cfg)
	q := core.NewPriorityQueue(ma)

	// Seed the simulation with initial events at random times.
	rng := workload.NewRNG(99)
	const seedEvents = 5000
	var id int64
	for i := 0; i < seedEvents; i++ {
		q.Push(aem.Item{Key: int64(rng.Intn(1 << 20)), Aux: id})
		id++
	}

	// Run the event loop: each event has a 1/3 chance of scheduling a
	// follow-up at a strictly later time (so the simulation terminates).
	var processed int
	var lastTime int64 = -1
	for {
		ev, ok := q.DeleteMin()
		if !ok {
			break
		}
		if ev.Key < lastTime {
			panic("event times went backwards — priority queue broken")
		}
		lastTime = ev.Key
		processed++
		if rng.Intn(3) == 0 {
			q.Push(aem.Item{Key: ev.Key + 1 + int64(rng.Intn(1000)), Aux: id})
			id++
		}
	}
	q.Close()

	st := ma.Stats()
	fmt.Printf("discrete-event simulation on a (M=%d, B=%d, ω=%d)-AEM\n", cfg.M, cfg.B, cfg.Omega)
	fmt.Printf("  events processed  %d (%d seeded, %d cascaded)\n", processed, seedEvents, processed-seedEvents)
	fmt.Printf("  event order       verified monotone in time\n")
	fmt.Printf("  reads             %d\n", st.Reads)
	fmt.Printf("  writes            %d   (%.2f per event — the sequence heap batches them)\n",
		st.Writes, float64(st.Writes)/float64(processed))
	fmt.Printf("  cost Q            %d\n", ma.Cost())
}
