package flash

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/aem"
	"repro/internal/program"
	"repro/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{M: 16, B: 8, R: 2}, true},
		{"equal blocks", Config{M: 16, B: 4, R: 4}, true},
		{"zero R", Config{M: 16, B: 8, R: 0}, false},
		{"B < R", Config{M: 16, B: 2, R: 4}, false},
		{"not multiple", Config{M: 16, B: 8, R: 3}, false},
		{"M < B", Config{M: 4, B: 8, R: 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok != (err == nil) {
				t.Fatalf("Validate() = %v, want ok=%t", err, tc.ok)
			}
		})
	}
}

func TestRunSimpleMove(t *testing.T) {
	// 8 atoms, B=4, R=2. Move block 0's atoms into block 2.
	p := &Program{
		N:   8,
		Cfg: Config{M: 8, B: 4, R: 2},
		Ops: []Op{
			{Kind: aem.OpRead, Addr: 0, Slot: 0, Atoms: []int{0, 1}},
			{Kind: aem.OpRead, Addr: 0, Slot: 1, Atoms: []int{2, 3}},
			{Kind: aem.OpWrite, Addr: 2, Atoms: []int{3, 1, 2, 0}},
		},
	}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		if res.Placement[a] != 2 {
			t.Errorf("atom %d in block %d, want 2", a, res.Placement[a])
		}
	}
	if res.ReadVolume != 4 || res.WriteVolume != 4 {
		t.Errorf("volumes %d/%d, want 4/4", res.ReadVolume, res.WriteVolume)
	}
	if p.Volume() != 8 {
		t.Errorf("Volume() = %d, want 8", p.Volume())
	}
}

func TestRunRejectsWrongSlot(t *testing.T) {
	p := &Program{
		N:   8,
		Cfg: Config{M: 8, B: 4, R: 2},
		Ops: []Op{
			// Atom 2 lives in slot 1, not slot 0.
			{Kind: aem.OpRead, Addr: 0, Slot: 0, Atoms: []int{2}},
		},
	}
	if _, err := Run(p); err == nil || !strings.Contains(err.Error(), "absent") {
		t.Fatalf("err = %v, want absence error", err)
	}
}

func TestRunRejectsNonEmptyTarget(t *testing.T) {
	p := &Program{
		N:   8,
		Cfg: Config{M: 8, B: 4, R: 2},
		Ops: []Op{
			{Kind: aem.OpRead, Addr: 0, Slot: 0, Atoms: []int{0, 1}},
			{Kind: aem.OpWrite, Addr: 1, Atoms: []int{0, 1}},
		},
	}
	if _, err := Run(p); err == nil || !strings.Contains(err.Error(), "non-empty") {
		t.Fatalf("err = %v, want non-empty error", err)
	}
}

func TestRunRejectsMemoryOverflow(t *testing.T) {
	var ops []Op
	for b := 0; b < 3; b++ {
		ops = append(ops,
			Op{Kind: aem.OpRead, Addr: b, Slot: 0, Atoms: []int{4 * b, 4*b + 1}},
			Op{Kind: aem.OpRead, Addr: b, Slot: 1, Atoms: []int{4*b + 2, 4*b + 3}})
	}
	p := &Program{N: 12, Cfg: Config{M: 8, B: 4, R: 2}, Ops: ops}
	if _, err := Run(p); err == nil || !strings.Contains(err.Error(), "overflows memory") {
		t.Fatalf("err = %v, want overflow", err)
	}
}

// roundBasedPermutationProgram builds the Lemma 4.1 round-based conversion
// of the direct program for a random permutation.
func roundBasedPermutationProgram(t testing.TB, cfg aem.Config, seed uint64, n int) (*program.Program, program.Placement) {
	t.Helper()
	_, perm := workload.Permutation(workload.NewRNG(seed), n)
	p, err := program.FromPermutation(cfg, perm)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := program.ConvertToRoundBased(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := program.Run(rb, program.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return rb, res.Placement
}

func TestLemma43PreservesPlacement(t *testing.T) {
	cfg := aem.Config{M: 16, B: 4, Omega: 2} // B/ω = 2
	for _, n := range []int{8, 32, 128} {
		rb, want := roundBasedPermutationProgram(t, cfg, uint64(n), n)
		fp, err := SimulateAEM(rb)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(fp)
		if err != nil {
			t.Fatalf("n=%d: flash program invalid: %v", n, err)
		}
		for a, addr := range want {
			if res.Placement[a] != addr {
				t.Fatalf("n=%d: atom %d at %d, want %d", n, a, res.Placement[a], addr)
			}
		}
	}
}

func TestLemma43VolumeBound(t *testing.T) {
	// The theorem's budget: volume ≤ 2N + 2QB/ω where Q is the AEM cost
	// of the (round-based) program being simulated.
	for _, tc := range []struct {
		cfg aem.Config
		n   int
	}{
		{aem.Config{M: 16, B: 4, Omega: 2}, 64},
		{aem.Config{M: 32, B: 8, Omega: 4}, 256},
		{aem.Config{M: 32, B: 8, Omega: 8}, 256},
		{aem.Config{M: 64, B: 16, Omega: 2}, 512},
	} {
		rb, _ := roundBasedPermutationProgram(t, tc.cfg, 7, tc.n)
		fp, err := SimulateAEM(rb)
		if err != nil {
			t.Fatal(err)
		}
		if got, bound := fp.Volume(), VolumeBound(rb); got > bound {
			t.Errorf("cfg %+v N=%d: volume %d > bound %d", tc.cfg, tc.n, got, bound)
		}
	}
}

func TestLemma43RequiresDivisibility(t *testing.T) {
	rb := &program.Program{N: 4, Cfg: aem.Config{M: 16, B: 4, Omega: 3}}
	if _, err := SimulateAEM(rb); err == nil || !strings.Contains(err.Error(), "multiple of ω") {
		t.Fatalf("err = %v, want divisibility error", err)
	}
	rb2 := &program.Program{N: 4, Cfg: aem.Config{M: 16, B: 4, Omega: 8}}
	if _, err := SimulateAEM(rb2); err == nil || !strings.Contains(err.Error(), "ω ≤ B") {
		t.Fatalf("err = %v, want ω ≤ B error", err)
	}
}

func TestFullProofPipelineQuick(t *testing.T) {
	// The paper's reduction chain end to end on random programs: random
	// valid AEM program → Lemma 4.1 round-based conversion → Lemma 4.3
	// flash simulation. The final flash program must be valid, compute the
	// original placement, and respect the volume budget.
	cfg := aem.Config{M: 16, B: 4, Omega: 2}
	f := func(seed uint64, nSel, stepSel uint8) bool {
		n := 8 + int(nSel%56)
		steps := int(stepSel % 64)
		p := program.Random(workload.NewRNG(seed), cfg, n, steps)
		orig, err := program.Run(p, program.RunOptions{})
		if err != nil {
			return false
		}
		rb, err := program.ConvertToRoundBased(p)
		if err != nil {
			t.Logf("seed %d: convert: %v", seed, err)
			return false
		}
		fp, err := SimulateAEM(rb)
		if err != nil {
			t.Logf("seed %d: simulate: %v", seed, err)
			return false
		}
		res, err := Run(fp)
		if err != nil {
			t.Logf("seed %d: flash run: %v", seed, err)
			return false
		}
		if fp.Volume() > VolumeBound(rb) {
			t.Logf("seed %d: volume %d > bound %d", seed, fp.Volume(), VolumeBound(rb))
			return false
		}
		for a, addr := range orig.Placement {
			if res.Placement[a] != addr {
				t.Logf("seed %d: atom %d misplaced", seed, a)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSlotsPerBlock(t *testing.T) {
	if got := (Config{M: 16, B: 8, R: 2}).SlotsPerBlock(); got != 4 {
		t.Errorf("SlotsPerBlock = %d, want 4", got)
	}
}

func TestLemma43OmegaOne(t *testing.T) {
	// ω = 1: read and write blocks coincide (R = B) and the flash model
	// degenerates to the symmetric EM model; the simulation must still be
	// exact.
	cfg := aem.Config{M: 16, B: 4, Omega: 1}
	rb, want := roundBasedPermutationProgram(t, cfg, 3, 64)
	fp, err := SimulateAEM(rb)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Cfg.R != fp.Cfg.B {
		t.Fatalf("ω=1 should give R = B, got R=%d B=%d", fp.Cfg.R, fp.Cfg.B)
	}
	res, err := Run(fp)
	if err != nil {
		t.Fatal(err)
	}
	for a, addr := range want {
		if res.Placement[a] != addr {
			t.Fatalf("atom %d misplaced", a)
		}
	}
}
