package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/harness"
)

// WorkerConfig configures one leased worker.
type WorkerConfig struct {
	URL  string // coordinator base URL, e.g. http://127.0.0.1:8377
	Par  int    // concurrent points per lease (≥ 1)
	Name string // reported in lease requests; defaults to host:pid

	// Resolve maps the coordinator's experiment IDs to specs. Nil means
	// the binary's own registry (harness.ByID) — tests inject synthetic
	// selections here.
	Resolve func(ids []string) ([]*harness.Spec, error)

	Log io.Writer // optional progress log
}

// Work runs the leased-worker loop against a coordinator: fetch the run
// manifest, verify this binary enumerates the same grids, then lease
// points, measure them on the shared runJobs substrate, and stream each
// record back as it completes — every upload doubles as the lease's
// heartbeat. Returns nil once the coordinator reports the run complete.
//
// Worker death needs no cleanup path here: an abandoned lease simply
// expires on the coordinator and its points are re-issued. Cancelling
// ctx makes this worker die the same way — uploads stop and the loop
// returns — which is also how tests inject mid-run worker kills.
func Work(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Par < 1 {
		cfg.Par = 1
	}
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	resolve := cfg.Resolve
	if resolve == nil {
		resolve = registryResolve
	}
	client := &client{base: cfg.URL, http: &http.Client{Timeout: 60 * time.Second}}

	// The coordinator may still be starting (CI launches both at once):
	// retry the first fetch over a few seconds before giving up.
	var info RunInfo
	if err := client.getJSON(ctx, "/v1/run", &info, 20); err != nil {
		return fmt.Errorf("fleet worker: fetching run manifest: %w", err)
	}
	specs, err := resolve(info.Experiments)
	if err != nil {
		return fmt.Errorf("fleet worker: %w", err)
	}
	runner := harness.NewPointRunner(specs)
	if runner.Total() != info.GridPoints {
		return fmt.Errorf("fleet worker: coordinator serves %d grid points, this binary enumerates %d (registry drift)", info.GridPoints, runner.Total())
	}
	logf(cfg.Log, "work: connected to %s — %d experiments, %d points", cfg.URL, len(specs), info.GridPoints)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lr LeaseResponse
		if err := client.postJSON(ctx, "/v1/lease", LeaseRequest{Worker: cfg.Name}, &lr); err != nil {
			return fmt.Errorf("fleet worker: lease: %w", err)
		}
		if lr.Done {
			logf(cfg.Log, "work: run complete")
			return nil
		}
		if len(lr.Points) == 0 {
			backoff := time.Duration(lr.RetryMS) * time.Millisecond
			if backoff <= 0 {
				backoff = retryBackoff
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			continue
		}

		logf(cfg.Log, "work: lease %d — %d point(s)", lr.Lease, len(lr.Points))
		done := false
		err := runner.Run(lr.Points, cfg.Par, func(rec harness.PointRecord) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			var resp RecordsResponse
			if err := client.postRecord(ctx, lr.Lease, rec, &resp); err != nil {
				return err
			}
			if resp.Done {
				done = true
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("fleet worker: lease %d: %w", lr.Lease, err)
		}
		if done {
			logf(cfg.Log, "work: run complete")
			return nil
		}
	}
}

// registryResolve resolves experiment IDs against this binary's spec
// registry.
func registryResolve(ids []string) ([]*harness.Spec, error) {
	specs := make([]*harness.Spec, len(ids))
	for i, id := range ids {
		s, ok := harness.ByID(id)
		if !ok {
			return nil, fmt.Errorf("coordinator serves unknown experiment %s (registry drift)", id)
		}
		specs[i] = s
	}
	return specs, nil
}

func logf(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// client is a minimal JSON-over-HTTP client with transient-error
// retries: a refused connection or torn response is retried with a
// short backoff, an HTTP error status is not (the coordinator rejected
// the request for a reason retrying cannot fix).
type client struct {
	base string
	http *http.Client
}

func (c *client) getJSON(ctx context.Context, path string, out interface{}, attempts int) error {
	return c.do(ctx, http.MethodGet, path, nil, out, attempts)
}

func (c *client) postJSON(ctx context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, body, out, 5)
}

func (c *client) postRecord(ctx context.Context, leaseID int, rec harness.PointRecord, out interface{}) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/records?lease=%d", leaseID), body, out, 5)
}

func (c *client) do(ctx context.Context, method, path string, body []byte, out interface{}, attempts int) error {
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(retryBackoff):
			}
		}
		var rdr io.Reader
		if body != nil {
			rdr = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rdr)
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(data))
		}
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			lastErr = fmt.Errorf("%s %s: torn response: %v", method, path, err)
			continue
		}
		return nil
	}
	return lastErr
}
