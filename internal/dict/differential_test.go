package dict

import (
	"testing"

	"repro/internal/aem"
	"repro/internal/rng"
)

// Differential test layer: long random operation streams are run through
// the dictionaries and an in-memory model map, at machine corner configs —
// including B = 1 (the ARAM of Blelloch et al.) and ω = 1 (the classic EM
// model) — and on every storage engine.
//
//   - On the data-bearing engines (slice reference, arena) every lookup
//     and range answer must equal the model's, and the two engines must
//     agree byte-for-byte on Stats, Cost and memory peaks.
//   - The counting engine stores no data at all, so a value-dependent
//     structure cannot answer (or even route) correctly on it; the
//     differential contract there is crash-freedom and metering sanity:
//     the stream must complete with internal memory inside M. This is the
//     same boundary the backends conformance suite draws for the sorting
//     algorithms.

// diffStream builds a deterministic mixed stream exercising every op kind
// with heavy churn; op interleaving (not just burst structure) comes from
// the generator's RNG.
func diffStream(seed uint64, n int, keyspace int64) []Op {
	r := rng.New(seed)
	ops := make([]Op, 0, n)
	for len(ops) < n {
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			ops = append(ops, Op{Kind: Insert, Key: int64(r.Intn(int(keyspace))), Value: int64(r.Intn(1 << 16))})
		case 4, 5:
			ops = append(ops, Op{Kind: Delete, Key: int64(r.Intn(int(keyspace)))})
		case 6, 7, 8:
			ops = append(ops, Op{Kind: Lookup, Key: int64(r.Intn(int(keyspace)))})
		default:
			lo := int64(r.Intn(int(keyspace)))
			ops = append(ops, Op{Kind: RangeScan, Key: lo, Hi: lo + 1 + int64(r.Intn(64))})
		}
	}
	return ops
}

// diffConfig is one corner of the differential matrix.
type diffConfig struct {
	name     string
	cfg      aem.Config
	n        int
	keyspace int64
}

func diffConfigs(full bool) []diffConfig {
	n := 100000
	if !full {
		n = 12000
	}
	return []diffConfig{
		{"mainline", aem.Config{M: 256, B: 16, Omega: 8}, n, 2048},
		{"aram-B1", aem.Config{M: 32, B: 1, Omega: 8}, n / 4, 512},
		{"em-omega1", aem.Config{M: 64, B: 8, Omega: 1}, n / 2, 1024},
		{"write-averse", aem.Config{M: 128, B: 8, Omega: 64}, n / 2, 1024},
	}
}

// applyChunked feeds the stream in uneven client batches so batching
// boundaries are exercised too.
func applyChunked(d Dict, ops []Op, r *rng.RNG) []Result {
	var out []Result
	for i := 0; i < len(ops); {
		j := i + 1 + r.Intn(700)
		if j > len(ops) {
			j = len(ops)
		}
		out = append(out, d.Apply(ops[i:j])...)
		i = j
	}
	return out
}

func TestDifferentialBufferTreeVsModel(t *testing.T) {
	for _, dc := range diffConfigs(!testing.Short()) {
		dc := dc
		t.Run(dc.name, func(t *testing.T) {
			ops := diffStream(1000+uint64(dc.cfg.Omega), dc.n, dc.keyspace)
			md := newModel()
			want := md.apply(ops)

			type outcome struct {
				results []Result
				stats   aem.Stats
				cost    int64
				peak    int
				blocks  int
			}
			engines := map[string]aem.Storage{
				"slice": aem.NewSliceStorage(),
				"arena": aem.NewArenaStorage(dc.cfg.B),
			}
			var ref *outcome
			for _, name := range []string{"slice", "arena"} {
				ma := aem.NewWithStorage(dc.cfg, engines[name])
				d := NewBufferTree(ma)
				got := outcome{results: applyChunked(d, ops, rng.New(17))}
				d.Flush()
				got.stats, got.cost, got.peak, got.blocks = ma.Stats(), ma.Cost(), ma.MemPeak(), ma.NumBlocks()

				sameResults(t, dc.name+"/"+name, got.results, want)
				if want := lenOf(md); d.Len() != want {
					t.Errorf("%s: Len = %d, model has %d", name, d.Len(), want)
				}
				if got.peak > dc.cfg.M {
					t.Errorf("%s: memory peak %d exceeds M = %d", name, got.peak, dc.cfg.M)
				}
				if ma.MemInUse() != 0 {
					t.Errorf("%s: %d slots still reserved after quiescence", name, ma.MemInUse())
				}
				if ref == nil {
					ref = &got
					continue
				}
				if got.stats != ref.stats || got.cost != ref.cost || got.peak != ref.peak || got.blocks != ref.blocks {
					t.Errorf("%s: accounting diverged from reference: %+v cost=%d peak=%d blocks=%d vs %+v cost=%d peak=%d blocks=%d",
						name, got.stats, got.cost, got.peak, got.blocks, ref.stats, ref.cost, ref.peak, ref.blocks)
				}
			}

			// Counting engine: data-free, so answers are undefined — the
			// contract is completing the whole stream with the metering
			// discipline intact.
			ma := aem.NewWithStorage(dc.cfg, aem.NewCountingStorage())
			d := NewBufferTree(ma)
			applyChunked(d, ops, rng.New(17))
			d.Flush()
			if ma.MemPeak() > dc.cfg.M {
				t.Errorf("counting: memory peak %d exceeds M = %d", ma.MemPeak(), dc.cfg.M)
			}
			if ma.MemInUse() != 0 {
				t.Errorf("counting: %d slots still reserved after quiescence", ma.MemInUse())
			}
		})
	}
}

// TestDifferentialBTreeVsModel runs the same streams through the baseline
// (where its B ≥ 4 requirement allows) so the two dictionaries are pinned
// to each other as well as to the model.
func TestDifferentialBTreeVsModel(t *testing.T) {
	for _, dc := range diffConfigs(!testing.Short()) {
		if dc.cfg.B < 4 {
			continue
		}
		dc := dc
		t.Run(dc.name, func(t *testing.T) {
			ops := diffStream(2000+uint64(dc.cfg.Omega), dc.n, dc.keyspace)
			md := newModel()
			want := md.apply(ops)
			for _, mk := range []struct {
				name string
				st   aem.Storage
			}{
				{"slice", aem.NewSliceStorage()},
				{"arena", aem.NewArenaStorage(dc.cfg.B)},
			} {
				ma := aem.NewWithStorage(dc.cfg, mk.st)
				d := NewBTree(ma)
				sameResults(t, dc.name+"/"+mk.name, applyChunked(d, ops, rng.New(23)), want)
				if want := lenOf(md); d.Len() != want {
					t.Errorf("%s: Len = %d, model has %d", mk.name, d.Len(), want)
				}
				if ma.MemPeak() > dc.cfg.M {
					t.Errorf("%s: memory peak %d exceeds M", mk.name, ma.MemPeak())
				}
			}
		})
	}
}
