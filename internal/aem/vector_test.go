package aem

import (
	"testing"
	"testing/quick"
)

func seqItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Key: int64(i), Aux: int64(100 + i)}
	}
	return items
}

func TestLoadAndMaterialize(t *testing.T) {
	ma := New(testConfig())
	for _, n := range []int{0, 1, 3, 4, 5, 17} {
		items := seqItems(n)
		v := Load(ma, items)
		got := v.Materialize()
		if len(got) != n {
			t.Fatalf("n=%d: Materialize returned %d items", n, len(got))
		}
		for i := range items {
			if got[i] != items[i] {
				t.Fatalf("n=%d: item %d = %v, want %v", n, i, got[i], items[i])
			}
		}
	}
	if st := ma.Stats(); st != (Stats{}) {
		t.Errorf("Load/Materialize cost I/O: %+v", st)
	}
}

func TestVectorGeometry(t *testing.T) {
	ma := New(testConfig()) // B = 4
	v := Load(ma, seqItems(10))
	if v.Len() != 10 {
		t.Errorf("Len = %d", v.Len())
	}
	if v.Blocks() != 3 {
		t.Errorf("Blocks = %d, want 3", v.Blocks())
	}
	if v.BlockAddr(0) != v.Base() {
		t.Errorf("BlockAddr(0) = %d, want base %d", v.BlockAddr(0), v.Base())
	}
	if v.BlockAddr(9) != v.Base()+2 {
		t.Errorf("BlockAddr(9) = %d, want base+2", v.BlockAddr(9))
	}
	if v.Machine() != ma {
		t.Error("Machine() did not return owner")
	}
}

func TestReadBlockCostsOneIO(t *testing.T) {
	ma := New(testConfig())
	v := Load(ma, seqItems(10))
	items, first := v.ReadBlock(5)
	if first != 4 {
		t.Errorf("first = %d, want 4", first)
	}
	if len(items) != 4 || items[0].Key != 4 {
		t.Errorf("block = %v", items)
	}
	if st := ma.Stats(); st.Reads != 1 {
		t.Errorf("ReadBlock cost %+v, want one read", st)
	}
}

func TestSliceViews(t *testing.T) {
	ma := New(testConfig()) // B = 4
	v := Load(ma, seqItems(12))
	s := v.Slice(4, 12)
	if s.Len() != 8 {
		t.Fatalf("slice Len = %d, want 8", s.Len())
	}
	got := s.Materialize()
	if got[0].Key != 4 || got[7].Key != 11 {
		t.Errorf("slice contents = %v", got)
	}
	// Unaligned lower bound must panic.
	func() {
		defer expectPanic(t, "not block-aligned")
		v.Slice(2, 8)
	}()
}

func TestScannerSequentialCost(t *testing.T) {
	ma := New(testConfig()) // B = 4
	const n = 10
	v := Load(ma, seqItems(n))
	sc := v.NewScanner()
	var count int
	for {
		item, ok := sc.Next()
		if !ok {
			break
		}
		if item.Key != int64(count) {
			t.Fatalf("item %d has key %d", count, item.Key)
		}
		count++
	}
	sc.Close()
	if count != n {
		t.Fatalf("scanned %d items, want %d", count, n)
	}
	// Exactly ceil(10/4) = 3 reads.
	if st := ma.Stats(); st.Reads != 3 || st.Writes != 0 {
		t.Errorf("scan cost %+v, want 3 reads", st)
	}
	if ma.MemInUse() != 0 {
		t.Errorf("scanner leaked %d memory slots", ma.MemInUse())
	}
}

func TestScannerPeekAndRemaining(t *testing.T) {
	ma := New(testConfig())
	v := Load(ma, seqItems(5))
	sc := v.NewScanner()
	defer sc.Close()
	if got := sc.Remaining(); got != 5 {
		t.Errorf("Remaining = %d, want 5", got)
	}
	p1, ok := sc.Peek()
	if !ok || p1.Key != 0 {
		t.Errorf("Peek = %v, %t", p1, ok)
	}
	n1, _ := sc.Next()
	if n1 != p1 {
		t.Errorf("Next %v != Peek %v", n1, p1)
	}
	if got := sc.Remaining(); got != 4 {
		t.Errorf("Remaining after one Next = %d, want 4", got)
	}
}

func TestScannerEmptyVector(t *testing.T) {
	ma := New(testConfig())
	v := Load(ma, nil)
	sc := v.NewScanner()
	defer sc.Close()
	if _, ok := sc.Next(); ok {
		t.Error("Next on empty vector returned ok")
	}
	if _, ok := sc.Peek(); ok {
		t.Error("Peek on empty vector returned ok")
	}
}

func TestWriterBlockGranularWrites(t *testing.T) {
	ma := New(testConfig()) // B = 4
	const n = 10
	v := NewVector(ma, n)
	w := v.NewWriter()
	for i := 0; i < n; i++ {
		w.Append(Item{Key: int64(i)})
	}
	if w.Written() != n {
		t.Errorf("Written = %d, want %d", w.Written(), n)
	}
	w.Close()
	// Exactly ceil(10/4) = 3 writes, one per block.
	if st := ma.Stats(); st.Writes != 3 || st.Reads != 0 {
		t.Errorf("writer cost %+v, want 3 writes", st)
	}
	got := v.Materialize()
	for i := range got {
		if got[i].Key != int64(i) {
			t.Fatalf("item %d = %v", i, got[i])
		}
	}
	if ma.MemInUse() != 0 {
		t.Errorf("writer leaked %d memory slots", ma.MemInUse())
	}
}

func TestWriterUnderflowPanics(t *testing.T) {
	ma := New(testConfig())
	v := NewVector(ma, 5)
	w := v.NewWriter()
	w.Append(Item{})
	defer expectPanic(t, "closed after 1 of 5")
	w.Close()
}

func TestWriterOverflowPanics(t *testing.T) {
	ma := New(testConfig())
	v := NewVector(ma, 1)
	w := v.NewWriter()
	w.Append(Item{})
	defer expectPanic(t, "Writer overflow")
	w.Append(Item{})
}

func TestScannerWriterRoundTripQuick(t *testing.T) {
	// Property: for any item sequence, writing through a Writer and reading
	// through a Scanner is the identity, and costs exactly ceil(n/B) of
	// each I/O kind.
	f := func(keys []int64, bSel uint8) bool {
		b := 1 + int(bSel%8)
		cfg := Config{M: 4 * b, B: b, Omega: 2}
		ma := New(cfg)
		v := NewVector(ma, len(keys))
		w := v.NewWriter()
		for i, k := range keys {
			w.Append(Item{Key: k, Aux: int64(i)})
		}
		w.Close()
		sc := v.NewScanner()
		defer sc.Close()
		for i, k := range keys {
			item, ok := sc.Next()
			if !ok || item.Key != k || item.Aux != int64(i) {
				return false
			}
		}
		if _, ok := sc.Next(); ok {
			return false
		}
		want := int64(cfg.BlocksOf(len(keys)))
		st := ma.Stats()
		return st.Reads == want && st.Writes == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
