package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// This file runs explicitly-named grid points — the execution substrate
// of the fleet. Where ShardExecutor owns a fixed round-robin slice of
// the global point list, a PointRunner is handed arbitrary GridRefs (a
// coordinator lease, a residual spec's missing list) and produces the
// same self-describing PointRecords, through the same runJobs pool, so
// a fleet worker and a CI shard cannot measure a point differently.

// PointRunner enumerates a selection's grids once and then runs any
// subset of their points on demand, streaming one PointRecord per
// point. Results are memoized per point: re-running a ref (a
// speculative lease that lost the race, a duplicated residual entry)
// delivers the already-measured record instead of paying for the point
// again.
type PointRunner struct {
	specs  []*Spec
	sts    []*specState
	bySpec map[string]int
	base   []int // each spec's first global point index
	total  int

	mu   sync.Mutex     // serializes delivery and memo bookkeeping
	done []map[int]bool // per spec, point index → already measured
}

// NewPointRunner enumerates every spec's grid. A spec whose enumeration
// panics deterministically contributes no points — exactly as it does on
// every other executor; the failure surfaces at merge time from the
// registry.
func NewPointRunner(specs []*Spec) *PointRunner {
	r := &PointRunner{
		specs:  specs,
		sts:    newSpecStates(specs),
		bySpec: make(map[string]int, len(specs)),
		base:   make([]int, len(specs)),
	}
	for si, s := range specs {
		r.bySpec[s.ID] = si
		r.base[si] = r.total
		r.total += len(r.sts[si].pts)
		r.done = append(r.done, make(map[int]bool))
	}
	return r
}

// Total returns the global grid size across all specs — the number a
// shard manifest carries as grid_points.
func (r *PointRunner) Total() int { return r.total }

// Refs returns every grid point of the selection in global order: spec
// order, grid order within each spec. This is the point list a fleet
// coordinator leases from.
func (r *PointRunner) Refs() []GridRef {
	refs := make([]GridRef, 0, r.total)
	for si, s := range r.specs {
		for pi := range r.sts[si].pts {
			refs = append(refs, GridRef{Experiment: s.ID, Index: pi})
		}
	}
	return refs
}

// Check validates that ref names a point of this runner's grids.
func (r *PointRunner) Check(ref GridRef) error {
	si, ok := r.bySpec[ref.Experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %s (registry drift?)", ref.Experiment)
	}
	if ref.Index < 0 || ref.Index >= len(r.sts[si].pts) {
		return fmt.Errorf("%s point %d out of range [0,%d)", ref.Experiment, ref.Index, len(r.sts[si].pts))
	}
	return nil
}

// ValidateRecord checks that an incoming record matches this runner's
// grids: known experiment, consistent grid size, in-range index, and —
// for a healthy record — exactly one raw value and one rendered cell per
// column. The fleet coordinator runs every worker-delivered record
// through this before accepting it.
func (r *PointRunner) ValidateRecord(rec *PointRecord) error {
	if err := r.Check(GridRef{Experiment: rec.Experiment, Index: rec.Index}); err != nil {
		return err
	}
	si := r.bySpec[rec.Experiment]
	if rec.Points != len(r.sts[si].pts) {
		return fmt.Errorf("%s has %d grid points, record says %d (registry drift?)", rec.Experiment, len(r.sts[si].pts), rec.Points)
	}
	if rec.Panic == "" {
		ncols := len(r.specs[si].Columns)
		if len(rec.Row) != ncols || len(rec.Cells) != ncols {
			return fmt.Errorf("torn record: %s point %d has %d row values and %d cells for %d columns",
				rec.Experiment, rec.Index, len(rec.Row), len(rec.Cells), ncols)
		}
	}
	return nil
}

// Run measures the named points on a pool of at most par goroutines and
// delivers one record per ref as each point completes (completion
// order). deliver calls are serialized; a deliver error stops delivery
// and is returned after in-flight points drain. Refs are validated up
// front — an unknown experiment or out-of-range index fails the whole
// call before anything runs. Duplicate refs and refs measured by an
// earlier Run deliver the memoized record without re-running the point.
func (r *PointRunner) Run(refs []GridRef, par int, deliver func(PointRecord) error) error {
	if par < 1 {
		par = 1
	}
	for _, ref := range refs {
		if err := r.Check(ref); err != nil {
			return err
		}
	}

	var jobs []job
	var memo []job // already measured: deliver without re-running
	r.mu.Lock()
	fresh := make(map[job]bool)
	for _, ref := range refs {
		j := job{r.bySpec[ref.Experiment], ref.Index}
		switch {
		case r.done[j.si][j.pi]:
			memo = append(memo, j)
		case fresh[j]:
			// duplicated within this call: the running copy delivers
		default:
			fresh[j] = true
			jobs = append(jobs, j)
		}
	}
	r.mu.Unlock()

	var deliverErr error
	send := func(j job) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.done[j.si][j.pi] = true
		if deliverErr != nil {
			return
		}
		deliverErr = deliver(r.sts[j.si].record(r.specs[j.si], j.pi))
	}
	for _, j := range memo {
		send(j)
	}
	runJobs(r.specs, r.sts, jobs, par, send).Wait()
	return deliverErr
}

// RunResidualSpecs runs a residual spec's missing points against an
// already-resolved spec list (which must match rs.Experiments in order)
// and writes a residual shard stream — manifest plus one record per
// missing point — to w. The stream merges with the original partial
// outputs through MergeShards' relaxed residual mode. Like
// ShardExecutor, panics are not fatal: they travel in the records, and
// the returned error tallies them so a resume job still fails fast.
func RunResidualSpecs(specs []*Spec, rs *ResidualSpec, par int, w io.Writer) error {
	if len(specs) != len(rs.Experiments) {
		return fmt.Errorf("residual spec names %d experiments, resolved %d", len(rs.Experiments), len(specs))
	}
	for i, s := range specs {
		if s.ID != rs.Experiments[i] {
			return fmt.Errorf("residual spec experiment %d is %s, resolved spec is %s", i, rs.Experiments[i], s.ID)
		}
	}
	r := NewPointRunner(specs)
	if r.Total() != rs.GridPoints {
		return fmt.Errorf("residual spec was produced from a different grid: %d points there, %d here (registry drift?)", rs.GridPoints, r.Total())
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(ShardManifest{
		Type: "shard", Shard: 0, Of: 1, Residual: true,
		Experiments: rs.Experiments, GridPoints: rs.GridPoints,
	}); err != nil {
		return err
	}
	failed := 0
	if err := r.Run(rs.Missing, par, func(rec PointRecord) error {
		if rec.Panic != "" {
			failed++
		}
		return enc.Encode(rec)
	}); err != nil {
		return err
	}
	enumFailed := 0
	for _, st := range r.sts {
		if st.enumFailed() {
			enumFailed++
		}
	}
	return shardFailure(failed, enumFailed)
}

// RunResidual resolves the residual spec's experiments against this
// binary's registry and runs its missing points — the implementation
// behind `aem work -residual`.
func RunResidual(rs *ResidualSpec, par int, w io.Writer) error {
	specs := make([]*Spec, len(rs.Experiments))
	for i, id := range rs.Experiments {
		s, ok := ByID(id)
		if !ok {
			return fmt.Errorf("residual spec names unknown experiment %s (produced by a different registry?)", id)
		}
		specs[i] = s
	}
	return RunResidualSpecs(specs, rs, par, w)
}
