package cli

import (
	"flag"
	"fmt"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/spmxv"
	"repro/internal/workload"
)

// spmxvCmd multiplies a random sparse matrix by a dense vector on a
// simulated (M,B,ω)-AEM machine with both Section 5 algorithms and
// reports measured costs next to the Theorem 5.1 bound.
//
//	aem spmxv -n 2048 -delta 4 -m 1024 -b 32 -omega 16 [-banded]
func spmxvCmd(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		n       = fs.Int("n", 2048, "matrix dimension N (N×N matrix, N-vector)")
		delta   = fs.Int("delta", 4, "non-zeros per column δ")
		machine = machineFlags(fs, 1024, 32, 16)
		banded  = fs.Bool("banded", false, "use a banded conformation instead of random")
		seed    = fs.Uint64("seed", 1, "workload seed")
	)
	fs.Parse(args)

	cfg, err := machine()
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}
	if *delta < 1 || *delta > *n {
		fail(prog, "need 1 ≤ δ ≤ N")
		return 2
	}

	rng := workload.NewRNG(*seed)
	var conf *workload.Conformation
	if *banded {
		conf = workload.BandedConformation(*n, *delta)
	} else {
		conf = workload.NewConformation(rng, *n, *delta)
	}
	values := make([]int64, conf.H())
	for i := range values {
		values[i] = int64(rng.Intn(100) - 50)
	}
	x := make([]int64, *n)
	for i := range x {
		x[i] = int64(rng.Intn(100) - 50)
	}

	run := func(name string, f func(*aem.Machine, *spmxv.Matrix, *aem.Vector) *aem.Vector) (int64, aem.Stats, bool) {
		ma := aem.New(cfg)
		mat := spmxv.NewMatrix(ma, conf, values)
		y := f(ma, mat, spmxv.LoadDense(ma, x))
		if err := spmxv.VerifyProduct(conf, values, x, y); err != nil {
			fail(prog, "%s produced a wrong product: %v", name, err)
			return 0, aem.Stats{}, false
		}
		return ma.Cost(), ma.Stats(), true
	}

	naiveCost, naiveStats, ok := run("naive", spmxv.Naive)
	if !ok {
		return 1
	}
	sortCost, sortStats, ok := run("sort", spmxv.SortBased)
	if !ok {
		return 1
	}

	p := bounds.SpMxVParams{Params: bounds.Params{N: *n, Cfg: cfg}, Delta: *delta}
	lb := bounds.SpMxVLowerBoundClosed(p)

	kind := "random"
	if *banded {
		kind = "banded"
	}
	fmt.Printf("machine      (M=%d, B=%d, ω=%d)-AEM\n", cfg.M, cfg.B, cfg.Omega)
	fmt.Printf("matrix       %d×%d, δ=%d per column (%s), H=%d non-zeros, column-major\n",
		*n, *n, *delta, kind, conf.H())
	fmt.Printf("naive        cost %-10d (%s)   — O(H + ωn)\n", naiveCost, naiveStats)
	fmt.Printf("sort-based   cost %-10d (%s)   — O(ωh·log_ωm N/max{δ,B} + ωn)\n", sortCost, sortStats)
	best, strat := naiveCost, "naive"
	if sortCost < best {
		best, strat = sortCost, "sort-based"
	}
	fmt.Printf("best         %s\n", strat)
	fmt.Printf("lower bound  %.0f   (Theorem 5.1)\n", lb)
	fmt.Printf("best / LB    %.2f\n", float64(best)/lb)
	fmt.Printf("verified     both algorithms match the dense reference product\n")
	return 0
}
