package aem

import (
	"fmt"
	"testing"
)

// engines enumerates every storage backend under its conformance name.
// hasData is false for backends that track lengths but not values. The
// file engines are backed by temp files under t's temp dir and closed by
// t.Cleanup, so every conformance test runs against real files too.
func engines(t testing.TB, blockSize int) []struct {
	name    string
	make    func() Storage
	hasData bool
} {
	fileEngine := func(mode FileMode) func() Storage {
		return func() Storage {
			s, err := NewTempFileStorage(t.TempDir(), blockSize, mode)
			if err != nil {
				t.Fatalf("file engine: %v", err)
			}
			t.Cleanup(func() { s.Close() })
			return s
		}
	}
	return []struct {
		name    string
		make    func() Storage
		hasData bool
	}{
		{"slice", func() Storage { return NewSliceStorage() }, true},
		{"arena", func() Storage { return NewArenaStorage(blockSize) }, true},
		{"counting", func() Storage { return NewCountingStorage() }, false},
		{"file", fileEngine(FileMmap), true},
		{"file-direct", fileEngine(FileDirect), true},
	}
}

// TestStorageConformance runs the same block-level script against every
// backend: allocation is dense, lengths round-trip through writes
// (including partial blocks, overwrites and shrinks), and reads return
// exactly the stored prefix. Value fidelity is asserted for the
// data-bearing backends; the counting backend must return zeroed items.
func TestStorageConformance(t *testing.T) {
	const b = 4
	for _, eng := range engines(t, b) {
		t.Run(eng.name, func(t *testing.T) {
			s := eng.make()
			if s.NumBlocks() != 0 {
				t.Fatalf("fresh engine holds %d blocks", s.NumBlocks())
			}
			if a := s.Alloc(3); a != 0 {
				t.Fatalf("first Alloc at %d, want 0", a)
			}
			if a := s.Alloc(2); a != 3 {
				t.Fatalf("second Alloc at %d, want 3 (dense addresses)", a)
			}
			if s.NumBlocks() != 5 {
				t.Fatalf("NumBlocks = %d, want 5", s.NumBlocks())
			}
			for a := Addr(0); a < 5; a++ {
				if s.Len(a) != 0 {
					t.Fatalf("fresh block %d has length %d", a, s.Len(a))
				}
			}

			full := []Item{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
			partial := []Item{{7, 70}, {8, 80}}
			s.Write(1, full)
			s.Write(2, partial)
			if s.Len(1) != len(full) || s.Len(2) != len(partial) {
				t.Fatalf("lengths (%d, %d), want (%d, %d)", s.Len(1), s.Len(2), len(full), len(partial))
			}

			// Reads with an ample caller buffer return the stored prefix and
			// alias the buffer (no allocation).
			buf := make([]Item, 0, b)
			got := s.ReadInto(1, buf)
			if len(got) != len(full) {
				t.Fatalf("ReadInto(1) returned %d items, want %d", len(got), len(full))
			}
			if &got[0] != &buf[:1][0] {
				t.Errorf("ReadInto with ample buffer did not alias it")
			}
			if eng.hasData {
				for i := range full {
					if got[i] != full[i] {
						t.Fatalf("block 1 item %d = %v, want %v", i, got[i], full[i])
					}
				}
			} else {
				for i, it := range got {
					if it != (Item{}) {
						t.Fatalf("counting backend returned non-zero item %v at %d", it, i)
					}
				}
			}

			// Undersized buffers still yield a correct result.
			small := s.ReadInto(1, make([]Item, 0, 1))
			if len(small) != len(full) {
				t.Fatalf("ReadInto with small buffer returned %d items, want %d", len(small), len(full))
			}
			if eng.hasData && small[3] != full[3] {
				t.Fatalf("small-buffer read lost data: %v", small)
			}

			// Overwriting shrinks the stored length; the caller keeps
			// ownership of the written slice.
			src := []Item{{9, 90}}
			s.Write(1, src)
			src[0].Key = 99
			if s.Len(1) != 1 {
				t.Fatalf("overwritten block length %d, want 1", s.Len(1))
			}
			if eng.hasData {
				if got := s.ReadInto(1, buf); got[0].Key != 9 {
					t.Fatalf("mutating the Write argument leaked into storage: %v", got[0])
				}
			}

			// Empty write empties the block.
			s.Write(1, nil)
			if s.Len(1) != 0 || len(s.ReadInto(1, buf)) != 0 {
				t.Fatalf("empty Write left length %d", s.Len(1))
			}
		})
	}
}

// TestMachineOnEveryBackend runs an identical costed I/O script on a
// machine over each backend and demands identical Stats, Cost and phase
// accounting — the cost model must be engine-independent.
func TestMachineOnEveryBackend(t *testing.T) {
	cfg := Config{M: 16, B: 4, Omega: 3}
	script := func(ma *Machine) {
		a := ma.Alloc(4)
		ma.Poke(a, []Item{{1, 0}, {2, 0}})
		buf := make([]Item, 0, cfg.B)
		ma.SetPhase("copy")
		for i := 0; i < 3; i++ {
			got := ma.ReadInto(a, buf)
			ma.Write(a+1+Addr(i), got)
		}
		ma.SetPhase("main")
		ma.ReadInto(a+1, buf)
	}

	var ref *Machine
	for _, eng := range engines(t, cfg.B) {
		ma := NewWithStorage(cfg, eng.make())
		script(ma)
		if ref == nil {
			ref = ma
			continue
		}
		if ma.Stats() != ref.Stats() {
			t.Errorf("%T stats %+v differ from reference %+v", ma.Storage(), ma.Stats(), ref.Stats())
		}
		if ma.Cost() != ref.Cost() {
			t.Errorf("%T cost %d differs from reference %d", ma.Storage(), ma.Cost(), ref.Cost())
		}
		if ma.Phases().Phase("copy") != ref.Phases().Phase("copy") {
			t.Errorf("%T phase accounting differs", ma.Storage())
		}
		if ma.NumBlocks() != ref.NumBlocks() {
			t.Errorf("%T allocated %d blocks, reference %d", ma.Storage(), ma.NumBlocks(), ref.NumBlocks())
		}
	}
}

// TestVectorPipelineOnDataBackends pushes a Load → Scanner → Writer
// pipeline through the data-bearing backends and checks values and I/O
// counts agree; the counting backend must agree on the I/O counts.
func TestVectorPipelineOnDataBackends(t *testing.T) {
	cfg := Config{M: 32, B: 4, Omega: 2}
	const n = 41 // deliberately not block-aligned
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Key: int64(n - i), Aux: int64(i)}
	}

	type outcome struct {
		stats Stats
		data  []Item
	}
	outcomes := map[string]outcome{}
	for _, eng := range engines(t, cfg.B) {
		ma := NewWithStorage(cfg, eng.make())
		v := Load(ma, items)
		out := NewVector(ma, n)
		sc := v.NewScanner()
		w := out.NewWriter()
		for {
			it, ok := sc.Next()
			if !ok {
				break
			}
			w.Append(it)
		}
		sc.Close()
		w.Close()
		outcomes[eng.name] = outcome{stats: ma.Stats(), data: out.Materialize()}

		if eng.hasData {
			got := out.Materialize()
			for i := range items {
				if got[i] != items[i] {
					t.Fatalf("%s: copy-through broke at %d: %v != %v", eng.name, i, got[i], items[i])
				}
			}
		}
	}
	for name, out := range outcomes {
		if out.stats != outcomes["slice"].stats {
			t.Errorf("backends disagree on I/O counts: %s=%+v slice=%+v",
				name, out.stats, outcomes["slice"].stats)
		}
	}
	want := Stats{Reads: int64(cfg.BlocksOf(n)), Writes: int64(cfg.BlocksOf(n))}
	if outcomes["slice"].stats != want {
		t.Errorf("pipeline stats %+v, want %+v", outcomes["slice"].stats, want)
	}
}

// TestArenaZeroAllocReadPath is the regression guard for the tentpole
// claim: on the arena engine, a costed ReadInto with a capacity-B buffer
// performs zero allocations, end to end through the Machine.
func TestArenaZeroAllocReadPath(t *testing.T) {
	cfg := Config{M: 64, B: 8, Omega: 4}
	ma := NewWithStorage(cfg, NewArenaStorage(cfg.B))
	a := ma.Alloc(16)
	blk := make([]Item, cfg.B)
	for i := 0; i < 16; i++ {
		ma.Poke(a+Addr(i), blk)
	}
	buf := make([]Item, 0, cfg.B)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		got := ma.ReadInto(a+Addr(i%16), buf)
		ma.Write(a+Addr((i+1)%16), got)
		i++
	})
	if allocs != 0 {
		t.Errorf("arena ReadInto+Write path allocates %.1f times per I/O pair, want 0", allocs)
	}
}

// TestScannerZeroAllocSteadyState checks the migrated Vector read path:
// after construction, scanning allocates nothing regardless of backend.
func TestScannerZeroAllocSteadyState(t *testing.T) {
	cfg := Config{M: 64, B: 8, Omega: 4}
	for _, eng := range engines(t, cfg.B) {
		t.Run(eng.name, func(t *testing.T) {
			ma := NewWithStorage(cfg, eng.make())
			v := Load(ma, make([]Item, 1024))
			sc := v.NewScanner()
			defer sc.Close()
			allocs := testing.AllocsPerRun(100, func() {
				for j := 0; j < 8; j++ {
					if _, ok := sc.Next(); !ok {
						return
					}
				}
			})
			if allocs != 0 {
				t.Errorf("scanner steady state allocates %.1f per block, want 0", allocs)
			}
		})
	}
}

// TestNewWithStorageRejectsUsedEngine pins the constructor contract.
func TestNewWithStorageRejectsUsedEngine(t *testing.T) {
	s := NewArenaStorage(4)
	s.Alloc(1)
	defer expectPanic(t, "already holds")
	NewWithStorage(Config{M: 16, B: 4, Omega: 1}, s)
}

// TestNewWithStorageRejectsUndersizedArena: a stride/B mismatch must fail
// at construction, not at the first large write mid-algorithm.
func TestNewWithStorageRejectsUndersizedArena(t *testing.T) {
	defer expectPanic(t, "block capacity 4 < B = 8")
	NewWithStorage(Config{M: 64, B: 8, Omega: 1}, NewArenaStorage(4))
}

// TestArenaOversizedWritePanics pins the arena's stride guard (the
// machine checks B first, so this exercises the engine directly).
func TestArenaOversizedWritePanics(t *testing.T) {
	s := NewArenaStorage(2)
	s.Alloc(1)
	defer expectPanic(t, "exceed stride")
	s.Write(0, make([]Item, 3))
}

// TestBackendGrowth exercises interleaved Alloc/Write/ReadInto over
// enough blocks to force arena regrowth, then verifies every block.
func TestBackendGrowth(t *testing.T) {
	const b = 4
	for _, eng := range engines(t, b) {
		t.Run(eng.name, func(t *testing.T) {
			s := eng.make()
			var want [][]Item
			for round := 0; round < 50; round++ {
				base := s.Alloc(3)
				for i := 0; i < 3; i++ {
					items := make([]Item, (round+i)%(b+1))
					for j := range items {
						items[j] = Item{Key: int64(round), Aux: int64(i*10 + j)}
					}
					s.Write(base+Addr(i), items)
					want = append(want, items)
				}
			}
			buf := make([]Item, 0, b)
			for a, items := range want {
				got := s.ReadInto(Addr(a), buf)
				if len(got) != len(items) {
					t.Fatalf("block %d length %d, want %d", a, len(got), len(items))
				}
				if eng.hasData {
					for j := range items {
						if got[j] != items[j] {
							t.Fatalf("block %d item %d = %v, want %v", a, j, got[j], items[j])
						}
					}
				}
			}
		})
	}
}

func ExampleNewWithStorage() {
	cfg := Config{M: 64, B: 8, Omega: 8}
	ma := NewWithStorage(cfg, NewArenaStorage(cfg.B))
	a := ma.Alloc(1)
	ma.Write(a, []Item{{Key: 1}})
	buf := make([]Item, 0, cfg.B)
	fmt.Println(len(ma.ReadInto(a, buf)), ma.Cost())
	// Output: 1 9
}
