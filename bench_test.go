// Package repro's benchmark harness: one testing.B benchmark per
// experiment in the index of README.md ("Experiments"). The benchmarks
// measure simulator wall time, and every iteration also reports the
// model-level metrics the paper is about (AEM cost, I/O counts) via
// b.ReportMetric, so `go test -bench` regenerates the per-experiment
// numbers alongside timing.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/flash"
	"repro/internal/permute"
	"repro/internal/pq"
	"repro/internal/program"
	"repro/internal/sorting"
	"repro/internal/spmxv"
	"repro/internal/trace"
	"repro/internal/workload"
)

// EXP-M1: Theorem 3.2, merging ωm runs.
func BenchmarkMergeRuns(b *testing.B) {
	for _, w := range []int{1, 8, 64} {
		cfg := aem.Config{M: 128, B: 8, Omega: w}
		const n = 1 << 13
		b.Run(fmt.Sprintf("omega=%d", w), func(b *testing.B) {
			// MergeRuns does not mutate its inputs, so the runs are built
			// once and re-merged every iteration; per-iteration cost is
			// taken as a stats delta.
			ma := aem.New(cfg)
			runs := makeSortedRuns(ma, n, cfg.MergeFanout())
			b.ReportAllocs()
			b.ResetTimer()
			var cost int64
			for i := 0; i < b.N; i++ {
				before := ma.Stats()
				sorting.MergeRuns(ma, runs, sorting.MergeOptions{})
				cost = ma.Stats().Sub(before).Cost(cfg.Omega)
			}
			b.ReportMetric(float64(cost), "aem-cost")
			nb := float64(cfg.BlocksOf(n))
			mb := float64(cfg.BlocksInMemory())
			b.ReportMetric(float64(cost)/(float64(w)*(nb+mb)), "cost/(w(n+m))")
		})
	}
}

// EXP-S1: Section 3 mergesort scaling.
func BenchmarkMergeSort(b *testing.B) {
	cfg := aem.Config{M: 128, B: 8, Omega: 8}
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			in := workload.Keys(workload.NewRNG(1), workload.Random, n)
			b.ReportAllocs()
			var cost int64
			for i := 0; i < b.N; i++ {
				ma := aem.New(cfg)
				v := aem.Load(ma, in)
				sorting.MergeSort(ma, v)
				cost = ma.Cost()
			}
			pred := bounds.MergeSortPredicted(bounds.Params{N: n, Cfg: cfg}).Cost(cfg.Omega)
			b.ReportMetric(float64(cost), "aem-cost")
			b.ReportMetric(float64(cost)/pred, "meas/pred")
		})
	}
}

// Storage-engine comparison: the same mergesort on the reference slice
// backend vs the zero-allocation arena backend. I/O counts (the model
// metric) are identical by construction — the conformance tests pin that —
// so the difference is pure simulator speed and allocs/op, which is the
// engine refactor's acceptance criterion.
func BenchmarkMergeSortBackends(b *testing.B) {
	cfg := aem.Config{M: 128, B: 8, Omega: 8}
	const n = 1 << 14
	in := workload.Keys(workload.NewRNG(1), workload.Random, n)
	for _, eng := range []struct {
		name string
		make func() aem.Storage
	}{
		{"slice", func() aem.Storage { return aem.NewSliceStorage() }},
		{"arena", func() aem.Storage { return aem.NewArenaStorage(cfg.B) }},
	} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			var cost int64
			for i := 0; i < b.N; i++ {
				ma := aem.NewWithStorage(cfg, eng.make())
				sorting.MergeSort(ma, aem.Load(ma, in))
				cost = ma.Cost()
			}
			b.ReportMetric(float64(cost), "aem-cost")
		})
	}
}

// EXP-S2: AEM vs EM mergesort across ω.
func BenchmarkSortComparison(b *testing.B) {
	const n = 1 << 14
	in := workload.Keys(workload.NewRNG(2), workload.Random, n)
	for _, w := range []int{1, 16, 128} {
		cfg := aem.Config{M: 128, B: 8, Omega: w}
		b.Run(fmt.Sprintf("aem/omega=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var cost int64
			for i := 0; i < b.N; i++ {
				ma := aem.New(cfg)
				sorting.MergeSort(ma, aem.Load(ma, in))
				cost = ma.Cost()
			}
			b.ReportMetric(float64(cost), "aem-cost")
		})
		b.Run(fmt.Sprintf("em/omega=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var cost int64
			for i := 0; i < b.N; i++ {
				ma := aem.New(cfg)
				sorting.EMMergeSort(ma, aem.Load(ma, in))
				cost = ma.Cost()
			}
			b.ReportMetric(float64(cost), "aem-cost")
		})
	}
}

// EXP-S2 (cont.): the distribution-sort baseline.
func BenchmarkSampleSort(b *testing.B) {
	const n = 1 << 14
	in := workload.Keys(workload.NewRNG(10), workload.Random, n)
	cfg := aem.Config{M: 128, B: 8, Omega: 16}
	b.ReportAllocs()
	var cost int64
	for i := 0; i < b.N; i++ {
		ma := aem.New(cfg)
		sorting.EMSampleSort(ma, aem.Load(ma, in), 1)
		cost = ma.Cost()
	}
	b.ReportMetric(float64(cost), "aem-cost")
}

// EXP-S2 (cont.): the sequence-heap heapsort baseline.
func BenchmarkHeapSort(b *testing.B) {
	const n = 1 << 13
	in := workload.Keys(workload.NewRNG(12), workload.Random, n)
	cfg := aem.Config{M: 256, B: 8, Omega: 16}
	b.ReportAllocs()
	var cost int64
	for i := 0; i < b.N; i++ {
		ma := aem.New(cfg)
		pq.HeapSort(ma, aem.Load(ma, in))
		cost = ma.Cost()
	}
	b.ReportMetric(float64(cost), "aem-cost")
}

// EXP-Q1: the ω-adaptive buffered heapsort on the same input/machine.
func BenchmarkAdaptiveHeapSort(b *testing.B) {
	const n = 1 << 13
	in := workload.Keys(workload.NewRNG(12), workload.Random, n)
	cfg := aem.Config{M: 256, B: 8, Omega: 16}
	b.ReportAllocs()
	var cost int64
	for i := 0; i < b.N; i++ {
		ma := aem.New(cfg)
		pq.AdaptiveHeapSort(ma, aem.Load(ma, in))
		cost = ma.Cost()
	}
	b.ReportMetric(float64(cost), "aem-cost")
}

// EXP-R2: Lemma 4.1 on a recorded mergesort trace.
func BenchmarkTraceConversion(b *testing.B) {
	cfg := aem.Config{M: 64, B: 8, Omega: 8}
	ma := aem.New(cfg)
	ma.StartTrace()
	in := workload.Keys(workload.NewRNG(11), workload.Random, 1<<12)
	sorting.MergeSort(ma, aem.Load(ma, in))
	ops := ma.StopTrace()
	b.ReportAllocs()
	var factor float64
	for i := 0; i < b.N; i++ {
		factor = trace.Convert(ops, cfg).Factor()
	}
	b.ReportMetric(factor, "cost-factor")
}

// EXP-B1: the [7, Lemma 4.2] base case.
func BenchmarkSmallSort(b *testing.B) {
	for _, w := range []int{1, 8, 32} {
		cfg := aem.Config{M: 256, B: 16, Omega: w}
		n := w * cfg.M // the largest legal base case
		b.Run(fmt.Sprintf("omega=%d", w), func(b *testing.B) {
			in := workload.Keys(workload.NewRNG(3), workload.Random, n)
			b.ReportAllocs()
			var st aem.Stats
			for i := 0; i < b.N; i++ {
				ma := aem.New(cfg)
				sorting.SmallSort(ma, aem.Load(ma, in))
				st = ma.Stats()
			}
			nb := float64(cfg.BlocksOf(n))
			b.ReportMetric(float64(st.Reads)/nb, "reads/n'")
			b.ReportMetric(float64(st.Writes)/nb, "writes/n'")
		})
	}
}

// EXP-P1: Theorem 4.5 upper bounds.
func BenchmarkPermute(b *testing.B) {
	const n = 1 << 13
	items, perm := workload.Permutation(workload.NewRNG(4), n)
	for _, tc := range []struct {
		name string
		cfg  aem.Config
	}{
		{"sort-regime", aem.Config{M: 256, B: 32, Omega: 2}},
		{"N-regime", aem.Config{M: 32, B: 2, Omega: 512}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var cost int64
			for i := 0; i < b.N; i++ {
				ma := aem.New(tc.cfg)
				v := aem.Load(ma, items)
				permute.Best(ma, v, perm)
				cost = ma.Cost()
			}
			lb := bounds.PermutingLowerBoundClosed(bounds.Params{N: n, Cfg: tc.cfg})
			b.ReportMetric(float64(cost), "aem-cost")
			b.ReportMetric(float64(cost)/lb, "cost/LB")
		})
	}
}

// EXP-P2: the §4.2 counting bound evaluation itself.
func BenchmarkCountingBound(b *testing.B) {
	p := bounds.Params{N: 1 << 24, Cfg: aem.Config{M: 1 << 12, B: 64, Omega: 16}}
	b.ReportAllocs()
	var r int64
	for i := 0; i < b.N; i++ {
		r = bounds.CountingRounds(p)
	}
	b.ReportMetric(float64(r), "rounds")
}

// EXP-R1: Lemma 4.1 conversion.
func BenchmarkRoundConversion(b *testing.B) {
	cfg := aem.Config{M: 32, B: 4, Omega: 4}
	_, perm := workload.Permutation(workload.NewRNG(5), 1024)
	p, err := program.FromPermutation(cfg, perm)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var factor float64
	for i := 0; i < b.N; i++ {
		rb, err := program.ConvertToRoundBased(p)
		if err != nil {
			b.Fatal(err)
		}
		factor = float64(rb.Cost()) / float64(p.Cost())
	}
	b.ReportMetric(factor, "cost-factor")
}

// EXP-F1: Lemma 4.3 simulation.
func BenchmarkFlashSimulation(b *testing.B) {
	cfg := aem.Config{M: 32, B: 8, Omega: 4}
	_, perm := workload.Permutation(workload.NewRNG(6), 1024)
	p, err := program.FromPermutation(cfg, perm)
	if err != nil {
		b.Fatal(err)
	}
	rb, err := program.ConvertToRoundBased(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		fp, err := flash.SimulateAEM(rb)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(fp.Volume()) / float64(flash.VolumeBound(rb))
	}
	b.ReportMetric(ratio, "volume/bound")
}

// EXP-F2: Corollary 4.4 reduction bound.
func BenchmarkReductionBound(b *testing.B) {
	p := bounds.Params{N: 1 << 24, Cfg: aem.Config{M: 1 << 12, B: 64, Omega: 16}}
	b.ReportAllocs()
	var v float64
	for i := 0; i < b.N; i++ {
		v = bounds.ReductionLowerBound(p)
	}
	b.ReportMetric(v, "reduction-LB")
}

// EXP-X1: SpMxV across δ.
func BenchmarkSpMxV(b *testing.B) {
	cfg := aem.Config{M: 128, B: 8, Omega: 4}
	const n = 1 << 10
	for _, delta := range []int{2, 8, 32} {
		rng := workload.NewRNG(7)
		conf := workload.NewConformation(rng, n, delta)
		values := make([]int64, conf.H())
		x := make([]int64, n)
		for i := range x {
			x[i] = int64(rng.Intn(10))
		}
		for i := range values {
			values[i] = int64(rng.Intn(10))
		}
		for _, alg := range []struct {
			name string
			f    func(*aem.Machine, *spmxv.Matrix, *aem.Vector) *aem.Vector
		}{
			{"naive", spmxv.Naive},
			{"sort", spmxv.SortBased},
		} {
			b.Run(fmt.Sprintf("%s/delta=%d", alg.name, delta), func(b *testing.B) {
				b.ReportAllocs()
				var cost int64
				for i := 0; i < b.N; i++ {
					ma := aem.New(cfg)
					m := spmxv.NewMatrix(ma, conf, values)
					alg.f(ma, m, spmxv.LoadDense(ma, x))
					cost = ma.Cost()
				}
				b.ReportMetric(float64(cost), "aem-cost")
			})
		}
	}
}

// EXP-X2: SpMxV across ω.
func BenchmarkSpMxVOmega(b *testing.B) {
	const n, delta = 1 << 10, 4
	rng := workload.NewRNG(8)
	conf := workload.NewConformation(rng, n, delta)
	values := make([]int64, conf.H())
	x := make([]int64, n)
	for _, w := range []int{1, 16, 256} {
		cfg := aem.Config{M: 128, B: 8, Omega: w}
		b.Run(fmt.Sprintf("omega=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var cost int64
			for i := 0; i < b.N; i++ {
				ma := aem.New(cfg)
				m := spmxv.NewMatrix(ma, conf, values)
				y, _ := spmxv.Best(ma, m, spmxv.LoadDense(ma, x))
				_ = y
				cost = ma.Cost()
			}
			b.ReportMetric(float64(cost), "aem-cost")
		})
	}
}

// makeSortedRuns builds k sorted runs totalling n items on the machine.
func makeSortedRuns(ma *aem.Machine, n, k int) []*aem.Vector {
	all := workload.Keys(workload.NewRNG(9), workload.Random, n)
	per := (n + k - 1) / k
	var runs []*aem.Vector
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		chunk := make([]aem.Item, hi-lo)
		copy(chunk, all[lo:hi])
		insertionSortItems(chunk)
		runs = append(runs, aem.Load(ma, chunk))
	}
	return runs
}

func insertionSortItems(items []aem.Item) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && aem.Less(items[j], items[j-1]); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}
