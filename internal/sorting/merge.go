package sorting

import (
	"fmt"
	"sort"

	"repro/internal/aem"
)

// MergeOptions configures MergeRuns.
type MergeOptions struct {
	// Reduce combines runs of equal Key in the output into a single item
	// whose Aux is the sum of the group's Aux values (semiring addition).
	// It is used by the sorting-based SpMxV algorithm of Section 5 to sum
	// elementary products of the same output row while merging, which is
	// what keeps the hierarchical vector addition at O(ω·h) total cost.
	Reduce bool

	// MaxBuffer, if positive, caps the round buffer below what the memory
	// budget allows. It exists for the EXP-A1 ablation: the §3 algorithm
	// outputs ~M items per round, and shrinking the buffer multiplies the
	// round count (and with it the fixed 2ωm initialization reads per
	// round), which is exactly the design choice the paper's round
	// structure optimizes. Zero means "use all available memory".
	MaxBuffer int
}

// mergeEntry is an item held in the round buffer together with its
// provenance: which run it came from and its global index within that run.
// The provenance is what lets the algorithm advance the external block
// pointers b[i] without per-run counters in internal memory (which would
// not fit when the number of runs ωm exceeds M).
type mergeEntry struct {
	it  aem.Item
	run int32
	idx int64
}

// entrySlots is the internal-memory charge of one mergeEntry, in item
// slots: the item itself plus one slot for the two provenance words. The
// paper's §3.1 reserves "a constant number of additional words of
// auxiliary data with each element" exactly for this.
const entrySlots = 2

// entryLess is the strict total order the merge works in: items compare
// by (Key, Aux) first, with (run, idx) as tiebreakers. The tiebreakers
// matter when inputs contain exact duplicates (equal Key and Aux), as the
// elementary products of SpMxV routinely do: every entry instance is still
// strictly ordered, so the consumption watermark never conflates two
// copies.
func entryLess(a, b mergeEntry) bool {
	if c := aem.Compare(a.it, b.it); c != 0 {
		return c < 0
	}
	if a.run != b.run {
		return a.run < b.run
	}
	return a.idx < b.idx
}

// activeRun is the in-memory state kept for an active run during one
// round's merge loop (Lemma 3.1 bounds how many exist).
type activeRun struct {
	run  int        // run index
	next int        // next block (within the run) to load
	s    mergeEntry // largest entry loaded from the run this round
}

// activeSlots is the internal-memory charge of one activeRun entry.
const activeSlots = 2

// pointerStore abstracts where the per-run next-block pointers b[i] live.
// The paper's contribution is the external store: it works for every ω.
// The in-memory store reproduces the earlier approach of [7] which
// requires the pointers to fit in internal memory (ω ≲ B).
type pointerStore interface {
	// forEach calls fn for every run in index order with its current
	// block pointer, paying whatever I/O the store needs.
	forEach(fn func(run, bptr int))
	// update applies new block pointers for the given runs, paying
	// whatever I/O the store needs. changes is sorted by run index.
	update(changes []ptrChange)
	// close releases the store's internal memory.
	close()
}

type ptrChange struct {
	run  int
	bptr int
}

// externalPointers keeps b[i] in ⌈K/B⌉ blocks of external memory,
// following §3.1: each pointer is updated on disk only when it changes,
// i.e. at most once per consumed block of its run, for O(n) pointer writes
// across the whole merge. The pointer-block frame is allocated once and
// reused for every pointer I/O.
type externalPointers struct {
	pv    *aem.Vector
	frame []aem.Item
}

func newExternalPointers(ma *aem.Machine, k int) *externalPointers {
	pv := aem.NewVector(ma, k)
	w := pv.NewWriter()
	for i := 0; i < k; i++ {
		w.Append(aem.Item{Key: 0, Aux: int64(i)})
	}
	w.Close()
	return &externalPointers{pv: pv, frame: make([]aem.Item, 0, ma.Config().B)}
}

func (e *externalPointers) forEach(fn func(run, bptr int)) {
	ma := e.pv.Machine()
	b := ma.Config().B
	for blk := 0; blk < e.pv.Blocks(); blk++ {
		// Only the pointer-block I/O itself is labeled "pointers"; the
		// callback's data I/O keeps the caller's phase.
		prev := ma.SetPhase("pointers")
		entries, first := e.pv.ReadBlockInto(blk*b, e.frame)
		ma.SetPhase(prev)
		for off, ent := range entries {
			fn(first+off, int(ent.Key))
		}
	}
}

func (e *externalPointers) update(changes []ptrChange) {
	defer e.pv.Machine().SetPhase(e.pv.Machine().SetPhase("pointers"))
	b := e.pv.Machine().Config().B
	for i := 0; i < len(changes); {
		blk := changes[i].run / b
		entries, first := e.pv.ReadBlockInto(blk*b, e.frame)
		dirty := false
		for ; i < len(changes) && changes[i].run/b == blk; i++ {
			ent := &entries[changes[i].run-first]
			if int(ent.Key) != changes[i].bptr {
				ent.Key = int64(changes[i].bptr)
				dirty = true
			}
		}
		if dirty {
			e.pv.Machine().Write(e.pv.BlockAddr(blk*b), entries)
		}
	}
}

func (e *externalPointers) close() {}

// inMemoryPointers keeps b[i] in internal memory, reserving one slot per
// run. Constructing it on a machine where the K pointers do not fit
// panics with a memory overflow — deliberately so: this is the assumption
// (ω < B, hence ωm < M) that the paper's external store removes.
type inMemoryPointers struct {
	ma   *aem.Machine
	bptr []int
}

func newInMemoryPointers(ma *aem.Machine, k int) *inMemoryPointers {
	ma.Reserve(k) // panics if the pointers do not fit — the point of the baseline
	return &inMemoryPointers{ma: ma, bptr: make([]int, k)}
}

func (p *inMemoryPointers) forEach(fn func(run, bptr int)) {
	for i, b := range p.bptr {
		fn(i, b)
	}
}

func (p *inMemoryPointers) update(changes []ptrChange) {
	for _, c := range changes {
		p.bptr[c.run] = c.bptr
	}
}

func (p *inMemoryPointers) close() { p.ma.Release(len(p.bptr)) }

// MergeRuns merges the given sorted runs into a single sorted output
// vector using the round-based ωm-way merge of Section 3 with the
// next-block pointers maintained in external memory. For K ≤ ωm runs
// totalling N items it performs O(ω·(n+m)) read and O(n+m) write I/Os
// (Theorem 3.2) for any ω, including ω > B.
//
// Every run must be ascending in the (Key, Aux) order. The inputs are not
// modified. MergeRuns requires M ≥ 8B.
func MergeRuns(ma *aem.Machine, runs []*aem.Vector, opts MergeOptions) *aem.Vector {
	return mergeRuns(ma, runs, opts, true)
}

// MergeAll merges any number of sorted runs by repeated ωm-way MergeRuns
// passes (one multiway level per pass), the hierarchical merging used by
// the sorting-based SpMxV algorithm when the number of runs exceeds the
// merge fanout. With the Reduce option, duplicate keys combine at every
// level, which is what keeps the Section 5 vector additions at O(ω·h)
// total cost: the data volume shrinks geometrically up the merge tree.
func MergeAll(ma *aem.Machine, runs []*aem.Vector, opts MergeOptions) *aem.Vector {
	if len(runs) == 0 {
		return aem.NewVector(ma, 0)
	}
	if len(runs) == 1 && opts.Reduce {
		// A single run still needs its duplicate keys combined; a plain
		// pass through MergeRuns performs the reduction.
		return MergeRuns(ma, runs, opts)
	}
	fanout := ma.Config().MergeFanout()
	if fanout < 2 {
		fanout = 2
	}
	for len(runs) > 1 {
		next := make([]*aem.Vector, 0, (len(runs)+fanout-1)/fanout)
		for lo := 0; lo < len(runs); lo += fanout {
			hi := lo + fanout
			if hi > len(runs) {
				hi = len(runs)
			}
			next = append(next, MergeRuns(ma, runs[lo:hi], opts))
		}
		runs = next
	}
	return runs[0]
}

// MergeRunsInMemoryPointers is the merge in the style of the earlier AEM
// mergesort of Blelloch et al. [7]: identical round structure, but the
// per-run pointers are held in internal memory. It panics with a memory
// overflow when the pointers do not fit (K > free memory), which is
// exactly the ω < B assumption the paper removes. It exists as a baseline
// for the EXP-S2 experiment.
func MergeRunsInMemoryPointers(ma *aem.Machine, runs []*aem.Vector, opts MergeOptions) *aem.Vector {
	return mergeRuns(ma, runs, opts, false)
}

func mergeRuns(ma *aem.Machine, runs []*aem.Vector, opts MergeOptions, externalPtrs bool) *aem.Vector {
	cfg := ma.Config()
	b := cfg.B
	if cfg.M < 8*b {
		panic(fmt.Sprintf("sorting: MergeRuns needs M ≥ 8B, got M=%d B=%d", cfg.M, b))
	}

	defer ma.SetPhase(ma.SetPhase("merge"))

	total := 0
	for _, r := range runs {
		total += r.Len()
	}
	out := aem.NewVector(ma, total)
	if total == 0 {
		return out
	}

	// The pointer store comes first: the [7]-style in-memory table
	// reserves one slot per run and is *meant* to die with a memory
	// overflow when the ωm fanout exceeds internal memory — that is the
	// assumption the paper's external store removes.
	ptrs := pointerStore(nil)
	if externalPtrs {
		ptrs = newExternalPointers(ma, len(runs))
	} else {
		ptrs = newInMemoryPointers(ma, len(runs))
	}
	defer ptrs.close()

	// Round-buffer capacity: solve the remaining memory budget
	//   entrySlots·capM (buffer) + activeSlots·(capM/B+2) (active list)
	//   + 2B (pointer + data frames) + B (writer) ≤ free
	// for capM. The paper takes "M a constant fraction of internal
	// memory" (§3.1); this is that fraction made explicit.
	free := cfg.M - ma.MemInUse()
	capM := (free - 3*b - 2*activeSlots) * b / (entrySlots*b + activeSlots)
	if opts.MaxBuffer > 0 && capM > opts.MaxBuffer {
		capM = opts.MaxBuffer
	}
	if capM < b {
		panic(fmt.Sprintf("sorting: M=%d too small for B=%d", cfg.M, b))
	}
	mbufRes := entrySlots * capM
	activeRes := activeSlots * (capM/b + 2)
	frameRes := 2 * b
	ma.Reserve(mbufRes + activeRes + frameRes)
	defer ma.Release(mbufRes + activeRes + frameRes)

	w := out.NewWriter()
	red := newReducer(w, opts.Reduce)

	// Watermark: every entry instance ≤ mu (in entryLess order) has been
	// output.
	mu := mergeEntry{it: minItem, run: -1, idx: -1}
	mbuf := make([]mergeEntry, 0, capM)
	spare := make([]mergeEntry, 0, capM) // double buffer for mergeEntries
	scratch := make([]mergeEntry, 0, capM)
	active := make([]activeRun, 0, capM/b+2)
	frame := make([]aem.Item, 0, b) // reused data-block frame, one per merge
	maxActive := capM/b + 1         // Lemma 3.1: at most ⌈capM/B⌉ runs stay active

	runBlocks := func(r int) int { return cfg.BlocksOf(runs[r].Len()) }

	// loadBlock reads block bi of run r and merges its entries > mu into
	// mbuf (capped at capM, largest evicted), returning the block's last
	// entry and whether the block existed.
	loadBlock := func(r, bi int) (last mergeEntry, ok bool) {
		if bi >= runBlocks(r) {
			return mergeEntry{}, false
		}
		items, first := runs[r].ReadBlockInto(bi*b, frame)
		scratch = scratch[:0]
		for off, it := range items {
			e := mergeEntry{it: it, run: int32(r), idx: int64(first + off)}
			if entryLess(mu, e) {
				scratch = append(scratch, e)
			}
		}
		old := mbuf
		var intoSpare bool
		mbuf, intoSpare = mergeEntries(spare[:0], mbuf, scratch, capM)
		if intoSpare {
			spare = old // old buffer becomes the next call's destination
		}
		return mergeEntry{it: items[len(items)-1], run: int32(r), idx: int64(first + len(items) - 1)}, true
	}

	for {
		// Pass A (§3.1 "Initializing M"): read up to two blocks from
		// every run starting at b[i]; candidates (> mu) accumulate in the
		// round buffer, which retains the capM smallest.
		mbuf = mbuf[:0]
		ptrs.forEach(func(run, bptr int) {
			if _, ok := loadBlock(run, bptr); ok {
				loadBlock(run, bptr+1)
			}
		})
		if len(mbuf) == 0 {
			break // every run fully consumed
		}

		// Pass B (§3.1 "Identifying active arrays"): re-read the second
		// initialization block of each run to find the largest loaded
		// element; a run is active iff more blocks follow and that element
		// is among the capM smallest loaded so far.
		active = active[:0]
		full := len(mbuf) == capM
		bufMax := mbuf[len(mbuf)-1]
		ptrs.forEach(func(run, bptr int) {
			if bptr+2 >= runBlocks(run) {
				return // no blocks beyond the initialization reads
			}
			items, first := runs[run].ReadBlockInto((bptr+1)*b, frame)
			last := mergeEntry{it: items[len(items)-1], run: int32(run), idx: int64(first + len(items) - 1)}
			if full && entryLess(bufMax, last) {
				return // inactive: everything unread is above the buffer
			}
			active = append(active, activeRun{run: run, next: bptr + 2, s: last})
			if len(active) > maxActive {
				panic(fmt.Sprintf("sorting: Lemma 3.1 violated: %d active runs > %d", len(active), maxActive))
			}
		})

		// Merge loop (§3.1 "Merging from active arrays"): repeatedly load
		// the next block of the active run whose largest loaded element is
		// smallest, until every active run's frontier exceeds the buffer.
		for len(active) > 0 {
			j := 0
			for i := 1; i < len(active); i++ {
				if entryLess(active[i].s, active[j].s) {
					j = i
				}
			}
			if len(mbuf) == capM && entryLess(mbuf[len(mbuf)-1], active[j].s) {
				break // the smallest frontier is above the buffer: round over
			}
			last, _ := loadBlock(active[j].run, active[j].next)
			active[j].next++
			active[j].s = last
			if active[j].next >= runBlocks(active[j].run) ||
				(len(mbuf) == capM && entryLess(mbuf[len(mbuf)-1], last)) {
				active[j] = active[len(active)-1]
				active = active[:len(active)-1]
			}
		}

		// Output the round: the buffer now holds the capM smallest
		// unconsumed entries overall, in sorted order.
		mu = mbuf[len(mbuf)-1]
		for _, e := range mbuf {
			red.emit(e.it)
		}

		// Advance the external pointers: for each contributing run the new
		// b[i] is the block of its first unconsumed item. Group updates by
		// run via an in-place re-sort of the round buffer (free internal
		// computation, no extra memory).
		sort.Slice(mbuf, func(x, y int) bool {
			if mbuf[x].run != mbuf[y].run {
				return mbuf[x].run < mbuf[y].run
			}
			return mbuf[x].idx < mbuf[y].idx
		})
		changes := changesFromBuffer(mbuf, b)
		ptrs.update(changes)
	}

	n := red.close()
	if !opts.Reduce && n != total {
		panic(fmt.Sprintf("sorting: merge produced %d of %d items", n, total))
	}
	if opts.Reduce {
		out = out.Shrink(n)
	}
	return out
}

// changesFromBuffer extracts, from a round buffer sorted by (run, idx),
// the new block pointer for each contributing run: the block containing
// the item after the run's largest consumed index.
func changesFromBuffer(mbuf []mergeEntry, b int) []ptrChange {
	var changes []ptrChange
	for i := 0; i < len(mbuf); {
		run := mbuf[i].run
		maxIdx := mbuf[i].idx
		for ; i < len(mbuf) && mbuf[i].run == run; i++ {
			if mbuf[i].idx > maxIdx {
				maxIdx = mbuf[i].idx
			}
		}
		changes = append(changes, ptrChange{run: int(run), bptr: int(maxIdx+1) / b})
	}
	return changes
}

// mergeEntries merges two ascending entry slices into dst (a caller-owned
// empty buffer of capacity ≥ capacity), retaining at most capacity entries
// (the largest are dropped — they remain unconsumed on disk and will be
// re-read in a later round, which is the re-read the paper charges one
// block per run per round for). When no merge is needed it returns a
// unchanged with usedDst false; otherwise the result aliases dst and
// usedDst is true, so the caller can recycle a's storage.
func mergeEntries(dst, a, cand []mergeEntry, capacity int) (merged []mergeEntry, usedDst bool) {
	if len(cand) == 0 {
		return a, false
	}
	if len(a) == capacity && !entryLess(cand[0], a[len(a)-1]) {
		return a, false // every candidate is above the full buffer
	}
	i, j := 0, 0
	for len(dst) < capacity && (i < len(a) || j < len(cand)) {
		if j >= len(cand) || (i < len(a) && entryLess(a[i], cand[j])) {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, cand[j])
			j++
		}
	}
	return dst, true
}

// reducer streams items to a writer, optionally combining consecutive
// equal-Key items by summing their Aux values. Combining is valid because
// the merge emits items in ascending Key order, so equal keys are
// adjacent.
type reducer struct {
	w       *aem.Writer
	reduce  bool
	pending aem.Item
	have    bool
	count   int
}

func newReducer(w *aem.Writer, reduce bool) *reducer {
	return &reducer{w: w, reduce: reduce}
}

func (r *reducer) emit(it aem.Item) {
	if !r.reduce {
		r.w.Append(it)
		r.count++
		return
	}
	if r.have && r.pending.Key == it.Key {
		r.pending.Aux += it.Aux
		return
	}
	if r.have {
		r.w.Append(r.pending)
		r.count++
	}
	r.pending = it
	r.have = true
}

func (r *reducer) close() int {
	if r.reduce {
		if r.have {
			r.w.Append(r.pending)
			r.count++
		}
		r.w.CloseShort()
		return r.count
	}
	r.w.Close()
	return r.count
}
