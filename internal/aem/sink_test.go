package aem

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestMemorySinkRecordsAndResets(t *testing.T) {
	var s MemorySink
	s.Record(TraceOp{OpRead, 3})
	s.Record(TraceOp{OpWrite, 5})
	ops := s.Ops()
	if len(ops) != 2 || ops[0] != (TraceOp{OpRead, 3}) || ops[1] != (TraceOp{OpWrite, 5}) {
		t.Fatalf("Ops() = %v", ops)
	}
	s.Reset()
	if len(s.Ops()) != 0 {
		t.Fatalf("Reset left %d ops", len(s.Ops()))
	}
}

func TestStreamSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	s := NewStreamSink(&buf)
	s.Record(TraceOp{OpRead, 42})
	s.Record(TraceOp{OpWrite, 7})
	s.Record(TraceOp{OpRead, 0})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "R 42\nW 7\nR 0\n"
	if buf.String() != want {
		t.Fatalf("stream = %q, want %q", buf.String(), want)
	}
	if s.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", s.Len())
	}
}

// TestStreamSinkStreams verifies the defining property: the sink pushes
// data to the writer *during* recording (bounded buffering), not only at
// Flush, so arbitrarily long traces never accumulate in memory.
func TestStreamSinkStreams(t *testing.T) {
	var buf bytes.Buffer
	s := NewStreamSink(&buf)
	const ops = 200_000 // ~1MB encoded, far beyond one buffer
	for i := 0; i < ops; i++ {
		s.Record(TraceOp{Kind: OpKind(i % 2), Addr: Addr(i)})
	}
	if buf.Len() == 0 {
		t.Fatal("nothing reached the writer before Flush: sink is accumulating, not streaming")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != ops {
		t.Fatalf("stream holds %d lines, want %d", lines, ops)
	}
}

// TestStreamSinkZeroAllocSteadyState: recording must not allocate once
// the buffer exists, or tracing production-scale runs would thrash.
func TestStreamSinkZeroAllocSteadyState(t *testing.T) {
	s := NewStreamSink(io.Discard)
	i := 0
	allocs := testing.AllocsPerRun(5000, func() {
		s.Record(TraceOp{Kind: OpKind(i % 2), Addr: Addr(i)})
		i++
	})
	if allocs != 0 {
		t.Errorf("StreamSink.Record allocates %.2f per op, want 0", allocs)
	}
}

type failingWriter struct{ calls int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.calls++
	return 0, errors.New("disk full")
}

func TestStreamSinkStickyError(t *testing.T) {
	w := &failingWriter{}
	s := NewStreamSink(w)
	const ops = 100_000
	for i := 0; i < ops; i++ {
		s.Record(TraceOp{OpWrite, Addr(i)})
	}
	if err := s.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Flush() = %v, want disk full", err)
	}
	if w.calls != 1 {
		t.Errorf("writer called %d times after first error, want 1 (error is sticky)", w.calls)
	}
	// Len counts every recorded operation, including those dropped after
	// the sticky error — it reports what the machine did, and Flush's
	// error reports that the encoded stream is incomplete.
	if s.Len() != ops {
		t.Errorf("Len() = %d after sticky error, want %d", s.Len(), ops)
	}
}

func TestStreamSinkLenCountsPostErrorOps(t *testing.T) {
	// The error strikes mid-trace: ops before and after it must all be
	// counted, and repeated Flush keeps returning the first error.
	w := &failingWriter{}
	s := NewStreamSink(w)
	s.Record(TraceOp{OpRead, 1})
	if err := s.Flush(); err == nil {
		t.Fatal("first Flush should surface the write error")
	}
	s.Record(TraceOp{OpWrite, 2})
	s.Record(TraceOp{OpRead, 3})
	if s.Len() != 3 {
		t.Errorf("Len() = %d, want 3 (post-error ops undercounted)", s.Len())
	}
	if err := s.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("second Flush() = %v, want the sticky disk full error", err)
	}
	if w.calls != 1 {
		t.Errorf("writer retried after sticky error (%d calls)", w.calls)
	}
}

// TestMachineStreamSinkMatchesMemorySink runs the same I/O script with
// both sinks; the streamed text must be the memory sink's ops, encoded.
func TestMachineStreamSinkMatchesMemorySink(t *testing.T) {
	script := func(ma *Machine) {
		a := ma.Alloc(3)
		ma.Write(a, []Item{{1, 0}})
		ma.ReadInto(a, make([]Item, 0, 4))
		ma.Write(a+2, nil)
		ma.Read(a + 2)
	}

	ma1 := New(Config{M: 16, B: 4, Omega: 2})
	ma1.StartTrace()
	script(ma1)
	ops := ma1.StopTrace()

	var buf bytes.Buffer
	ma2 := New(Config{M: 16, B: 4, Omega: 2})
	ma2.SetTraceSink(NewStreamSink(&buf))
	script(ma2)
	sink := ma2.SetTraceSink(nil).(*StreamSink)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	var want strings.Builder
	for _, op := range ops {
		fmt.Fprintf(&want, "%s %d\n", op.Kind, op.Addr)
	}
	if buf.String() != want.String() {
		t.Fatalf("streamed trace %q, want %q", buf.String(), want.String())
	}
}

func TestSetTraceSinkReturnsPrevious(t *testing.T) {
	ma := New(Config{M: 16, B: 4, Omega: 2})
	if prev := ma.SetTraceSink(&MemorySink{}); prev != nil {
		t.Fatalf("first SetTraceSink returned %v, want nil", prev)
	}
	if !ma.Tracing() {
		t.Fatal("Tracing() false with a sink installed")
	}
	if prev := ma.SetTraceSink(nil); prev == nil {
		t.Fatal("second SetTraceSink lost the previous sink")
	}
	if ma.Tracing() {
		t.Fatal("Tracing() true after removing the sink")
	}
}

func TestStopTraceWithoutStartPanics(t *testing.T) {
	ma := New(Config{M: 16, B: 4, Omega: 2})
	ma.SetTraceSink(&MemorySink{})
	defer expectPanic(t, "StopTrace without StartTrace")
	ma.StopTrace()
}
