package aem

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// newFileEngine builds a file engine over a test-owned path and registers
// its cleanup.
func newFileEngine(t *testing.T, mode FileMode, blockSize int) *FileStorage {
	t.Helper()
	s, err := NewFileStorage(filepath.Join(t.TempDir(), "em.blocks"), blockSize, mode)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// fileModes enumerates both transfer modes for mode-generic tests.
var fileModes = []struct {
	name string
	mode FileMode
}{{"mmap", FileMmap}, {"direct", FileDirect}}

// TestFileStorageResetTruncates pins the stateful half of the Reset
// contract: Reset must shrink the backing file to zero bytes — truncate,
// not leak — so a pooled engine's file cannot accrete previous runs'
// blocks, and post-Reset allocations read as zeros again.
func TestFileStorageResetTruncates(t *testing.T) {
	for _, m := range fileModes {
		t.Run(m.name, func(t *testing.T) {
			const b = 4
			s := newFileEngine(t, m.mode, b)
			s.Alloc(64)
			payload := []Item{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
			for a := Addr(0); a < 64; a++ {
				s.Write(a, payload)
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			st, err := os.Stat(s.Path())
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() < 64*int64(b*itemSize) {
				t.Fatalf("file holds %d bytes for 64 written blocks, want ≥ %d", st.Size(), 64*b*itemSize)
			}

			s.Reset()
			st, err = os.Stat(s.Path())
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != 0 {
				t.Errorf("Reset left %d bytes in the file, want 0 (truncate, not leak)", st.Size())
			}
			if s.NumBlocks() != 0 {
				t.Errorf("NumBlocks = %d after Reset, want 0", s.NumBlocks())
			}

			// The engine is fully usable after Reset and reads back fresh
			// zeros, never the previous run's payload.
			s.Alloc(2)
			buf := make([]Item, 0, b)
			if got := s.ReadInto(0, buf); len(got) != 0 {
				t.Errorf("post-Reset block 0 holds %d items, want 0", len(got))
			}
			s.Write(0, make([]Item, b))
			for i, it := range s.ReadInto(0, buf) {
				if it != (Item{}) {
					t.Errorf("stale value %v leaked through Reset at item %d", it, i)
				}
			}
		})
	}
}

// TestFileStorageTornBlock simulates a crash mid-write: a concurrent
// writer dies after putting only half a block's bytes on disk. The engine
// must neither crash nor wedge — the torn values are simply what the
// device now holds — and Reset must obliterate the torn block so the next
// run starts from provable zeros, which is the recovery story a scratch
// external memory needs.
func TestFileStorageTornBlock(t *testing.T) {
	for _, m := range fileModes {
		t.Run(m.name, func(t *testing.T) {
			const b = 4
			s := newFileEngine(t, m.mode, b)
			s.Alloc(4)
			full := []Item{{10, 1}, {20, 2}, {30, 3}, {40, 4}}
			s.Write(2, full)
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}

			// The "crash": a second descriptor scribbles garbage over the
			// first half of block 2's slot and dies without finishing.
			raw, err := os.OpenFile(s.Path(), os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			tear := make([]byte, b/2*itemSize)
			for i := range tear {
				tear[i] = 0xAB
			}
			if _, err := raw.WriteAt(tear, 2*s.Stride()); err != nil {
				t.Fatal(err)
			}
			raw.Close()

			// Reading the torn block must return b items without fault;
			// the untouched second half still carries the old values.
			got := s.ReadInto(2, make([]Item, 0, b))
			if len(got) != b {
				t.Fatalf("torn block reads %d items, want %d", len(got), b)
			}
			if got[2] != full[2] || got[3] != full[3] {
				t.Errorf("tear bled past its half: %v", got)
			}
			if got[0] == full[0] {
				t.Errorf("torn half still reads the pre-crash value %v — the tear never reached the engine", got[0])
			}

			// Recovery: Reset truncates the torn state away entirely.
			s.Reset()
			s.Alloc(4)
			for a := Addr(0); a < 4; a++ {
				if n := len(s.ReadInto(a, make([]Item, 0, b))); n != 0 {
					t.Errorf("block %d holds %d items after post-tear Reset, want 0", a, n)
				}
			}
			s.Write(2, make([]Item, b))
			for i, it := range s.ReadInto(2, make([]Item, 0, b)) {
				if it != (Item{}) {
					t.Errorf("torn byte survived Reset at item %d: %v", i, it)
				}
			}
		})
	}
}

// TestFileStorageDirectAlignment pins the direct mode's file geometry:
// slots are directAlign multiples so O_DIRECT offsets and lengths stay
// legal, and the engine reports the alignment through its caps.
func TestFileStorageDirectAlignment(t *testing.T) {
	s := newFileEngine(t, FileDirect, 4)
	if s.Stride()%directAlign != 0 {
		t.Errorf("direct stride %d not a multiple of %d", s.Stride(), directAlign)
	}
	if got := s.Caps().BlockAlign; got != directAlign {
		t.Errorf("direct caps alignment %d, want %d", got, directAlign)
	}
	mm := newFileEngine(t, FileMmap, 4)
	if mm.Stride() != 4*int64(itemSize) {
		t.Errorf("mmap stride %d, want packed %d", mm.Stride(), 4*itemSize)
	}
}

// TestFileStorageCloseRemovesOwnedFile: registry-built temp engines own
// their file and must remove it on Close; Close is idempotent; a
// path-constructed engine leaves the caller's file behind.
func TestFileStorageCloseRemovesOwnedFile(t *testing.T) {
	s, err := NewTempFileStorage(t.TempDir(), 4, FileMmap)
	if err != nil {
		t.Fatal(err)
	}
	s.Alloc(2)
	s.Write(0, []Item{{1, 1}})
	path := s.Path()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("owned temp file survived Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close errored: %v", err)
	}

	kept := newFileEngine(t, FileMmap, 4)
	kept.Alloc(1)
	keptPath := kept.Path()
	if err := kept.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(keptPath); err != nil {
		t.Errorf("caller-owned file removed by Close: %v", err)
	}
}

// TestFileStorageUseAfterClose: the lifecycle is explicit — mutating a
// closed engine is a programming error and panics like any other machine
// assertion.
func TestFileStorageUseAfterClose(t *testing.T) {
	s, err := NewTempFileStorage(t.TempDir(), 4, FileMmap)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	defer expectPanic(t, "after Close")
	s.Alloc(1)
}

// TestStorageByName pins the registry: every registered name constructs
// an engine matching its advertised caps, and the unknown-name error —
// the single diagnostic every layer now shares — lists the valid names.
func TestStorageByName(t *testing.T) {
	t.Setenv(FileDirEnv, t.TempDir())
	for _, e := range Engines() {
		s, err := StorageByName(e.Name, 8)
		if err != nil {
			t.Fatalf("StorageByName(%s): %v", e.Name, err)
		}
		if got := s.Caps(); got != e.Caps {
			t.Errorf("%s: constructed caps %+v differ from registry caps %+v", e.Name, got, e.Caps)
		}
		if s.NumBlocks() != 0 {
			t.Errorf("%s: registry produced a non-empty engine", e.Name)
		}
		if err := s.Close(); err != nil {
			t.Errorf("%s: Close: %v", e.Name, err)
		}
	}

	_, err := StorageByName("flash-drive", 8)
	if err == nil {
		t.Fatal("unknown engine constructed")
	}
	for _, name := range EngineNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-engine error does not list %q: %v", name, err)
		}
	}
}

// TestFileDirEnvPlacement: the registry's file engines honor AEM_FILE_DIR,
// which is how CI points the EXP-IO sweeps at a tmpdir (and how a real
// measurement points them at a mounted device).
func TestFileDirEnvPlacement(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(FileDirEnv, dir)
	s, err := StorageByName("file", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fs := s.(*FileStorage)
	if filepath.Dir(fs.Path()) != dir {
		t.Errorf("file engine landed in %s, want %s", filepath.Dir(fs.Path()), dir)
	}
}

// TestMachineCloseReleasesFileEngine: Machine.Close is the ownership
// surface the pool and CLIs use — it must reach through to the engine.
func TestMachineCloseReleasesFileEngine(t *testing.T) {
	t.Setenv(FileDirEnv, t.TempDir())
	st, err := StorageByName("file", 8)
	if err != nil {
		t.Fatal(err)
	}
	ma := NewWithStorage(Config{M: 64, B: 8, Omega: 2}, st)
	a := ma.Alloc(4)
	ma.Write(a, []Item{{1, 2}})
	if err := ma.Sync(); err != nil {
		t.Fatal(err)
	}
	path := st.(*FileStorage).Path()
	if err := ma.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("machine Close left the owned temp file behind: %v", err)
	}
}
