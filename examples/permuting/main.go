// Permuting scenario: shuffling records to a prescribed order (the
// building block of bucketing, partitioning and shuffle phases), showing
// the two regimes of Theorem 4.5's min{N, ω·n·log_ωm n} bound and how the
// cost-optimal strategy switches between them.
//
//	go run ./examples/permuting
package main

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/permute"
	"repro/internal/workload"
)

func main() {
	const n = 1 << 13
	items, perm := workload.Permutation(workload.NewRNG(11), n)

	fmt.Printf("permuting %d records on machines across the (B, ω) plane\n\n", n)
	fmt.Printf("%6s %6s  %10s %10s  %-8s  %12s %8s\n",
		"B", "omega", "direct", "sort", "chosen", "Thm4.5 LB", "best/LB")
	for _, c := range []aem.Config{
		{M: 128, B: 8, Omega: 1},
		{M: 128, B: 8, Omega: 16},
		{M: 32, B: 2, Omega: 512}, // tiny blocks, huge ω: N-term regime
		{M: 256, B: 32, Omega: 2}, // big blocks, small ω: sort-term regime
		{M: 256, B: 32, Omega: 64},
	} {
		maD := core.NewMachine(c)
		permute.Direct(maD, core.Load(maD, items), perm)
		maS := core.NewMachine(c)
		permute.SortBased(maS, core.Load(maS, items))

		maB := core.NewMachine(c)
		v := core.Load(maB, items)
		out, strat := core.Permute(maB, v, perm)
		if err := permute.Verify(v, out); err != nil {
			panic(err)
		}

		lb := core.PermutingLowerBound(bounds.Params{N: n, Cfg: c})
		fmt.Printf("%6d %6d  %10d %10d  %-8s  %12.0f %8.2f\n",
			c.B, c.Omega, maD.Cost(), maS.Cost(), strat,
			lb, float64(maB.Cost())/lb)
	}
	fmt.Println()
	fmt.Println("where the bound's min picks N (write-dominated machines), direct")
	fmt.Println("block-gather wins; where the sort term is smaller, mergesort wins.")
}
