package bounds

import (
	"fmt"
	"math"
)

// This file closes the loop between the model's ω and a device's ω. The
// AEM charges Q = Qr + ω·Qw with ω configured a priori; a file-backed run
// measures real wall time per grid point. Regressing wall time on the
// measured (Qr, Qw) pair — wall ≈ α·Qr + β·Qw through the origin — gives
// the per-read and per-write costs the device actually exhibited, and
// their ratio β/α is the effective ω of the hardware. The paper's model
// is only as predictive as this ratio is stable, which is exactly what
// EXP-IO1 reports next to the configured ω.

// OmegaFit is the result of fitting wall ≈ Alpha·Qr + Beta·Qw.
type OmegaFit struct {
	Alpha float64 // fitted cost per block read (same unit as wall input)
	Beta  float64 // fitted cost per block write
	Omega float64 // Beta / Alpha: the device's effective write/read ratio
	R2    float64 // coefficient of determination of the (no-intercept) fit
}

// FitOmega least-squares fits wall[i] ≈ α·qr[i] + β·qw[i] (no intercept)
// and returns the fit with Omega = β/α. The three slices must have equal
// length ≥ 2, and the (qr, qw) columns must not be collinear — a grid
// whose points all share one read/write ratio determines α·r+β but not α
// and β separately, so callers should sweep algorithms with different
// read/write mixes (e.g. the ω-adaptive mergesort against the classic
// one).
func FitOmega(qr, qw, wall []float64) (OmegaFit, error) {
	n := len(wall)
	if len(qr) != n || len(qw) != n {
		return OmegaFit{}, fmt.Errorf("bounds: FitOmega column lengths differ: %d/%d/%d", len(qr), len(qw), n)
	}
	if n < 2 {
		return OmegaFit{}, fmt.Errorf("bounds: FitOmega needs ≥ 2 points, got %d", n)
	}

	// Normal equations for the 2-parameter no-intercept model:
	//   [Σqr²   Σqr·qw] [α]   [Σqr·wall]
	//   [Σqr·qw Σqw²  ] [β] = [Σqw·wall]
	var srr, sww, srw, srt, swt float64
	for i := 0; i < n; i++ {
		srr += qr[i] * qr[i]
		sww += qw[i] * qw[i]
		srw += qr[i] * qw[i]
		srt += qr[i] * wall[i]
		swt += qw[i] * wall[i]
	}
	det := srr*sww - srw*srw
	// Relative conditioning guard: det vanishes (up to rounding) exactly
	// when the qr and qw columns are collinear.
	if det <= 1e-12*srr*sww || srr == 0 || sww == 0 {
		return OmegaFit{}, fmt.Errorf("bounds: FitOmega design is collinear (every point has the same read/write mix); sweep algorithms with different mixes")
	}
	alpha := (srt*sww - swt*srw) / det
	beta := (swt*srr - srt*srw) / det
	if alpha <= 0 || math.IsNaN(alpha) || math.IsNaN(beta) {
		return OmegaFit{}, fmt.Errorf("bounds: FitOmega fit degenerate (alpha=%g, beta=%g)", alpha, beta)
	}

	// R² against the mean-model baseline, the conventional summary even
	// for a no-intercept fit.
	var mean float64
	for _, w := range wall {
		mean += w
	}
	mean /= float64(n)
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		r := wall[i] - (alpha*qr[i] + beta*qw[i])
		ssRes += r * r
		d := wall[i] - mean
		ssTot += d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return OmegaFit{Alpha: alpha, Beta: beta, Omega: beta / alpha, R2: r2}, nil
}
