package dict

import (
	"testing"

	"repro/internal/aem"
)

// model is the in-memory reference dictionary.
type model struct {
	m map[int64]int64
}

func newModel() *model { return &model{m: make(map[int64]int64)} }

func (md *model) apply(ops []Op) []Result {
	var results []Result
	for _, op := range ops {
		switch op.Kind {
		case Insert:
			md.m[op.Key] = op.Value
		case Delete:
			delete(md.m, op.Key)
		case Lookup:
			v, ok := md.m[op.Key]
			results = append(results, Result{OK: ok, Value: v})
		case RangeScan:
			var hits []Found
			for k, v := range md.m {
				if op.Key <= k && k < op.Hi {
					hits = append(hits, Found{Key: k, Value: v})
				}
			}
			sortFound(hits)
			results = append(results, Result{Hits: hits})
		}
	}
	return results
}

func sortFound(hits []Found) {
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hits[j].Key < hits[j-1].Key; j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
}

func sameResults(t *testing.T, tag string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", tag, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.OK != w.OK || g.Value != w.Value {
			t.Fatalf("%s: result %d = (%v,%d), want (%v,%d)", tag, i, g.OK, g.Value, w.OK, w.Value)
		}
		if len(g.Hits) != len(w.Hits) {
			t.Fatalf("%s: result %d has %d hits, want %d (%v vs %v)", tag, i, len(g.Hits), len(w.Hits), g.Hits, w.Hits)
		}
		for j := range g.Hits {
			if g.Hits[j] != w.Hits[j] {
				t.Fatalf("%s: result %d hit %d = %v, want %v", tag, i, j, g.Hits[j], w.Hits[j])
			}
		}
	}
}

func dicts(cfg aem.Config) map[string]Dict {
	out := map[string]Dict{}
	if cfg.M >= 8*cfg.B {
		out["buffertree"] = NewBufferTree(aem.New(cfg))
	}
	if cfg.B >= 4 && cfg.M >= 4*cfg.B {
		out["btree"] = NewBTree(aem.New(cfg))
	}
	return out
}

func TestBasicSemantics(t *testing.T) {
	cfg := aem.Config{M: 128, B: 8, Omega: 4}
	for name, d := range dicts(cfg) {
		md := newModel()
		batch := []Op{
			{Kind: Insert, Key: 5, Value: 50},
			{Kind: Insert, Key: 1, Value: 10},
			{Kind: Lookup, Key: 5},
			{Kind: Insert, Key: 5, Value: 55}, // overwrite
			{Kind: Lookup, Key: 5},
			{Kind: Delete, Key: 1},
			{Kind: Lookup, Key: 1},
			{Kind: Delete, Key: 99}, // absent
			{Kind: Lookup, Key: 99},
			{Kind: RangeScan, Key: 0, Hi: 100},
		}
		sameResults(t, name, d.Apply(batch), md.apply(batch))

		// After a flush everything must still be visible.
		d.Flush()
		post := []Op{{Kind: Lookup, Key: 5}, {Kind: RangeScan, Key: 0, Hi: 100}}
		sameResults(t, name+"/flushed", d.Apply(post), md.apply(post))
		if d.Len() != 1 {
			t.Errorf("%s: Len = %d, want 1", name, d.Len())
		}
	}
}

func TestManyKeysAcrossFlushes(t *testing.T) {
	cfg := aem.Config{M: 128, B: 8, Omega: 2}
	for name, d := range dicts(cfg) {
		md := newModel()
		// Enough inserts to force multiple cascades, rebuilds and splits.
		var batch []Op
		for k := int64(0); k < 3000; k++ {
			batch = append(batch, Op{Kind: Insert, Key: (k * 2654435761) % 4096, Value: k % 1000})
			if k%7 == 0 {
				batch = append(batch, Op{Kind: Delete, Key: (k * 31) % 4096})
			}
			if k%11 == 0 {
				batch = append(batch, Op{Kind: Lookup, Key: k % 4096})
			}
			if k%501 == 0 {
				batch = append(batch, Op{Kind: RangeScan, Key: k % 4096, Hi: k%4096 + 64})
			}
		}
		sameResults(t, name, d.Apply(batch), md.apply(batch))
		d.Flush()
		if want := lenOf(md); d.Len() != want {
			t.Errorf("%s: Len = %d, want %d", name, d.Len(), want)
		}
		verify := []Op{{Kind: RangeScan, Key: 0, Hi: 1 << 62}}
		sameResults(t, name+"/full-scan", d.Apply(verify), md.apply(verify))
	}
}

func lenOf(md *model) int { return len(md.m) }

// TestMemoryMeteringHonored: the machine panics if a dictionary reserves
// more than M items of internal memory; surviving a heavy mixed workload
// on a small machine is the proof that the metering discipline holds.
func TestMemoryMeteringHonored(t *testing.T) {
	for _, cfg := range []aem.Config{
		{M: 64, B: 8, Omega: 16},
		{M: 256, B: 8, Omega: 1},
		{M: 32, B: 1, Omega: 8}, // ARAM corner
	} {
		ma := aem.New(cfg)
		d := NewBufferTree(ma)
		var batch []Op
		for k := int64(0); k < 4000; k++ {
			batch = append(batch, Op{Kind: Insert, Key: k % 512, Value: k % 100})
			if k%5 == 0 {
				batch = append(batch, Op{Kind: Lookup, Key: k % 512})
			}
		}
		d.Apply(batch)
		d.Flush()
		if ma.MemPeak() > cfg.M {
			t.Errorf("cfg %+v: memory peak %d exceeds M", cfg, ma.MemPeak())
		}
		if ma.MemInUse() != 0 {
			t.Errorf("cfg %+v: %d slots still reserved after quiescence", cfg, ma.MemInUse())
		}
	}
}

// TestBufferTreeWriteEfficiency pins the core claim at one configuration:
// the buffer tree spends far fewer writes per update than the B-tree
// baseline's ~1.
func TestBufferTreeWriteEfficiency(t *testing.T) {
	cfg := aem.Config{M: 256, B: 16, Omega: 16}
	const updates = 20000
	var batch []Op
	for k := int64(0); k < updates; k++ {
		batch = append(batch, Op{Kind: Insert, Key: (k * 2654435761) % 8192, Value: k % 1000})
	}

	maB := aem.New(cfg)
	bt := NewBufferTree(maB)
	bt.Apply(batch)
	maT := aem.New(cfg)
	base := NewBTree(maT)
	base.Apply(batch)

	wPerOpBT := float64(maB.Stats().Writes) / updates
	wPerOpBase := float64(maT.Stats().Writes) / updates
	if wPerOpBase < 0.9 {
		t.Errorf("baseline writes/op = %.3f; expected ~1", wPerOpBase)
	}
	if wPerOpBT > wPerOpBase/2 {
		t.Errorf("buffer tree writes/op = %.3f, not clearly below baseline %.3f", wPerOpBT, wPerOpBase)
	}
}

// Benchmarks for the perf trajectory: one mixed stream through each
// dictionary. The interesting figures are ns/op of *simulated work* and
// allocs/op (the simulator's hot loop is block transfers; the arena
// engine keeps them allocation-free).
func benchStream(n int) []Op {
	// Bursty traffic (updates then queries), the shape the buffered
	// dictionary is built for.
	ops := make([]Op, 0, n)
	for k := 0; len(ops) < n; k++ {
		key := int64(k*2654435761) % 4096
		if k%24 < 16 {
			if k%4 == 3 {
				ops = append(ops, Op{Kind: Delete, Key: key})
			} else {
				ops = append(ops, Op{Kind: Insert, Key: key, Value: int64(k % 1000)})
			}
		} else {
			ops = append(ops, Op{Kind: Lookup, Key: key})
		}
	}
	return ops
}

func BenchmarkBufferTreeMixedOps(b *testing.B) {
	cfg := aem.Config{M: 256, B: 16, Omega: 16}
	ops := benchStream(20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ma := aem.NewWithStorage(cfg, aem.NewArenaStorage(cfg.B))
		d := NewBufferTree(ma)
		d.Apply(ops)
		d.Flush()
	}
}

func BenchmarkBTreeMixedOps(b *testing.B) {
	cfg := aem.Config{M: 256, B: 16, Omega: 16}
	ops := benchStream(20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ma := aem.NewWithStorage(cfg, aem.NewArenaStorage(cfg.B))
		NewBTree(ma).Apply(ops)
	}
}
