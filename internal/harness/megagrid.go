package harness

import (
	"repro/internal/aem"
	"repro/internal/bounds"
)

// This file is the counting-only mega-grid: the §4 lower-bound territory
// swept at depths the per-op simulator could not reach. Every point
// replays the §3 mergesort's full pass structure — hundreds of millions
// of simulated I/Os at the deep end — on a pooled counting machine whose
// scan phases advance through the bulk ScanReads/ScanWrites primitives,
// so a point's cost is a handful of arithmetic steps plus the length
// tables, not a loop over 10⁸ blocks. The grid compares the replayed
// upper-bound schedule against Theorem 4.5's closed-form lower bound,
// and doubles as the throughput regression surface: the CI gate tracks
// its points/sec.

// mgM and mgB fix the machine shape of the mega-grid: m = M/B = 256
// blocks of internal memory, a production-ish block size.
const (
	mgM = 1 << 14
	mgB = 64
)

func mgParams(p Point) bounds.Params {
	return bounds.Params{
		N:   p.Int("N"),
		Cfg: aem.Config{M: mgM, B: mgB, Omega: p.Int("omega")},
	}
}

// replayMergeSchedule replays the I/O schedule of the §3 AEM mergesort on
// ma via the bulk primitives: (levels+1) passes, each re-reading the pass
// input ω times (the ω-adaptive merge's selection re-reads, the source of
// the paper's ω·n·log_{ωm} n read term) and streaming one n-block output.
// The replayed schedule is data-oblivious by construction, which is
// exactly why the counting engine can serve it; its accounting equals
// bounds.MergeSortPredicted by design, and the aem conformance suite pins
// the bulk primitives I/O-identical to the per-op loop they batch.
func replayMergeSchedule(ma *aem.Machine, nItems int) {
	cfg := ma.Config()
	nBlocks := cfg.BlocksOf(nItems)
	lastLen := nItems - (nBlocks-1)*cfg.B
	in := ma.Alloc(nBlocks)
	out := ma.Alloc(nBlocks)
	passes := int(bounds.MergeSortLevels(bounds.Params{N: nItems, Cfg: cfg})) + 1
	for pass := 0; pass < passes; pass++ {
		for r := 0; r < cfg.Omega; r++ {
			ma.ScanReads(in, nBlocks)
		}
		ma.ScanWrites(out, nBlocks, lastLen)
		in, out = out, in
	}
}

func specMG1() *Spec {
	return &Spec{
		ID:        "EXP-MG1",
		Index:     "mega-grid: counting-only mergesort replay at 10⁶–10⁹ simulated I/Os per point (throughput surface)",
		Statement: "the §3 mergesort schedule, replayed arithmetically on the counting engine across ω × N, tracks ω·n·log_{ωm} n and stays within a small factor of the Theorem 4.5 closed-form lower bound; every grid point simulates ≥ 10⁶ I/Os",
		Title:     "counting-only mega-grid (mergesort replay vs Theorem 4.5)",
		Claim:     "replayed cost ≡ predicted mergesort cost; cost/LB stays a small factor above the closed-form permuting bound",
		Axes: []Axis{
			{Name: "omega", Values: Ints(1, 4, 16, 64, 256)},
			{Name: "N", Values: Ints(1<<24, 1<<25, 1<<26)},
		},
		Columns: append(Cols("omega", "N", "reads", "writes", "sim I/Os"),
			Column{Name: "cost/pred", Pred: func(p Point) float64 {
				pr := bounds.MergeSortPredicted(mgParams(p))
				return pr.Cost(p.Int("omega"))
			}},
			Column{Name: "cost/LB", Pred: func(p Point) float64 {
				return bounds.PermutingLowerBoundClosed(mgParams(p))
			}},
		),
		Point: func(p Point) Row {
			cfg := aem.Config{M: mgM, B: mgB, Omega: p.Int("omega")}
			ma, release := PooledMachine(cfg, "counting")
			defer release()
			replayMergeSchedule(ma, p.Int("N"))
			st := ma.Stats()
			cost := ma.Cost()
			return Row{p.Int("omega"), p.Int("N"), st.Reads, st.Writes,
				st.Reads + st.Writes, cost, cost}
		},
		Notes: []string{
			"cost/pred ≡ 1 pins the replay to bounds.MergeSortPredicted; cost/LB is the measured gap to the closed-form Theorem 4.5 bound",
			"feasible only through bulk accounting + pooled counting machines: the deep points simulate ~10⁹ I/Os each",
		},
	}
}
