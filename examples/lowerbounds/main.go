// Lower bounds walkthrough: the paper's proof pipeline run as code.
//
// A permutation is turned into a straight-line AEM program (§2), converted
// into a round-based program with doubled memory (Lemma 4.1), and then
// simulated in the unit-cost flash model (Lemma 4.3); every step is
// validated by the interpreters and the final flash volume is compared
// against the 2N + 2QB/ω budget. Then the counting bound of §4.2 is
// evaluated across a parameter grid next to the closed form of
// Theorem 4.5.
//
//	go run ./examples/lowerbounds
package main

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/program"
	"repro/internal/workload"
)

func main() {
	// --- The executable proof pipeline -------------------------------
	cfg := core.Config{M: 32, B: 8, Omega: 4}
	const n = 512
	_, perm := workload.Permutation(workload.NewRNG(3), n)

	p, err := core.ProgramFromPermutation(cfg, perm)
	check(err)
	orig, err := core.RunProgram(p, program.RunOptions{})
	check(err)
	fmt.Printf("program P        : %4d ops, cost Q = %d on (M=%d,B=%d,ω=%d)\n",
		len(p.Ops), p.Cost(), cfg.M, cfg.B, cfg.Omega)

	rb, err := core.ToRoundBased(p)
	check(err)
	conv, err := core.RunProgram(rb, program.RunOptions{})
	check(err)
	fmt.Printf("Lemma 4.1  → P'  : %4d ops, cost %d (%.2f×), %d rounds, memory 2M=%d\n",
		len(rb.Ops), rb.Cost(), float64(rb.Cost())/float64(p.Cost()),
		len(rb.RoundMarks), rb.Cfg.M)
	if !orig.Placement.Equal(conv.Placement) {
		panic("conversion changed the permutation")
	}

	fp, err := core.ToFlash(rb)
	check(err)
	res, err := core.RunFlash(fp)
	check(err)
	budget := flash.VolumeBound(rb)
	fmt.Printf("Lemma 4.3  → P_F : %4d ops, volume %d ≤ budget 2N+2QB/ω = %d (%.2f×)\n",
		len(fp.Ops), fp.Volume(), budget, float64(fp.Volume())/float64(budget))
	for a, addr := range orig.Placement {
		if res.Placement[a] != addr {
			panic("flash simulation changed the permutation")
		}
	}
	fmt.Println("placement preserved through the whole chain ✓")

	// --- The counting bound across a grid ----------------------------
	fmt.Println("\ncounting bound (§4.2) vs closed form (Theorem 4.5):")
	fmt.Printf("%10s %6s %6s  %14s %14s %14s\n", "N", "B", "omega", "rounds R", "counting LB", "closed LB")
	for _, nn := range []int{1 << 16, 1 << 20, 1 << 24} {
		for _, w := range []int{1, 16, 256} {
			c := aem.Config{M: 1 << 12, B: 64, Omega: w}
			pr := bounds.Params{N: nn, Cfg: c}
			fmt.Printf("%10d %6d %6d  %14d %14.0f %14.0f\n",
				nn, c.B, w,
				core.CountingRounds(pr), core.CountingLowerBound(pr),
				core.PermutingLowerBound(pr))
		}
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
