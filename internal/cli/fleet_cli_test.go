package cli

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// resumeSel is a cheap three-experiment selection — the resume test runs
// it four times (two shards, the residual, the reference), so it must
// stay in the millisecond range.
const resumeSel = "EXP-B1,EXP-R1,EXP-F1"

// chop drops the last n lines of a JSON Lines stream — the shape of an
// interrupted shard or fleet run: intact manifest, missing tail records.
func chop(t *testing.T, b []byte, n int) []byte {
	t.Helper()
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) <= n+1 { // keep the manifest and at least one record
		t.Fatalf("stream has only %d lines, cannot drop %d", len(lines), n)
	}
	return []byte(strings.Join(lines[:len(lines)-n], "\n") + "\n")
}

// TestMergeResidualResumeCLI is the one-command resume path end to end
// at the CLI layer: an interrupted run's partial outputs fail to merge
// but write a residual spec, `aem work -residual` runs exactly the
// missing points, and merging the partials plus the residual stream is
// byte-identical to an uninterrupted `aem bench` of the same selection.
func TestMergeResidualResumeCLI(t *testing.T) {
	dir := t.TempDir()

	shard := func(i int) []byte {
		code := -1
		out := captureStdout(t, func() {
			code = benchCmd("aem bench", []string{"-shard", fmt.Sprintf("%d/2", i), "-json", "-exp", resumeSel})
		})
		if code != 0 {
			t.Fatalf("bench shard %d exit %d", i, code)
		}
		return out
	}
	// Interrupt both shard jobs: each loses tail records, so the missing
	// points span files (and, with two lines gone, likely experiments).
	p0 := filepath.Join(dir, "s0.jsonl")
	p1 := filepath.Join(dir, "s1.jsonl")
	if err := os.WriteFile(p0, chop(t, shard(0), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p1, chop(t, shard(1), 2), 0o644); err != nil {
		t.Fatal(err)
	}

	// Merge fails on the incomplete set but leaves the resume artifact.
	rest := filepath.Join(dir, "rest.json")
	code := -1
	captureStdout(t, func() {
		code = mergeCmd("aem merge", []string{"-residual", rest, p0, p1})
	})
	if code != 1 {
		t.Fatalf("incomplete merge exit %d, want 1", code)
	}
	if _, err := os.Stat(rest); err != nil {
		t.Fatalf("residual spec not written: %v", err)
	}

	// One command runs the remainder.
	code = -1
	restStream := captureStdout(t, func() {
		code = workCmd("aem work", []string{"-residual", rest})
	})
	if code != 0 {
		t.Fatalf("work -residual exit %d", code)
	}
	pr := filepath.Join(dir, "rest.jsonl")
	if err := os.WriteFile(pr, restStream, 0o644); err != nil {
		t.Fatal(err)
	}

	code = -1
	merged := captureStdout(t, func() {
		code = mergeCmd("aem merge", []string{p0, p1, pr})
	})
	if code != 0 {
		t.Fatalf("merge with residual exit %d", code)
	}
	code = -1
	want := captureStdout(t, func() {
		code = benchCmd("aem bench", []string{"-exp", resumeSel})
	})
	if code != 0 {
		t.Fatalf("reference bench exit %d", code)
	}
	if !bytes.Equal(merged, want) {
		t.Fatal("resumed merge diverged from the uninterrupted run")
	}
}

// TestWorkFlagValidation: the two worker modes are mutually exclusive
// and one is required.
func TestWorkFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-connect", "http://x", "-residual", "y"},
	} {
		if code := workCmd("aem work", args); code != 2 {
			t.Errorf("work %v exit %d, want 2", args, code)
		}
	}
}
