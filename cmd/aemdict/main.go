// Command aemdict runs a generated dictionary operation stream on a
// simulated (M,B,ω)-AEM machine and reports the measured I/O cost of the
// ω-adaptive buffer tree next to the unbatched B-tree baseline and the
// bounds predictions.
//
// Usage:
//
//	aemdict -ops 24000 -keyspace 8192 -m 256 -b 16 -omega 16 -scenario zipf
//	aemdict -impl buffertree -engine arena -phases
//
// Scenarios: uniform | zipf | sortedburst | deleteheavy.
// Implementations: both | buffertree | btree.
// Engines: slice | arena (the data-free counting engine cannot run a
// value-dependent dictionary).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/dict"
	"repro/internal/workload"
)

func main() {
	var (
		nOps     = flag.Int("ops", 24000, "number of operations in the stream")
		keyspace = flag.Int64("keyspace", 8192, "distinct-key domain size")
		m        = flag.Int("m", 256, "internal memory M in items")
		b        = flag.Int("b", 16, "block size B in items")
		omega    = flag.Int("omega", 16, "write/read cost ratio ω")
		scenario = flag.String("scenario", "uniform", "workload: uniform | zipf | sortedburst | deleteheavy")
		impl     = flag.String("impl", "both", "dictionary: both | buffertree | btree")
		engine   = flag.String("engine", "slice", "storage engine: slice | arena")
		seed     = flag.Uint64("seed", 1, "workload seed")
		phases   = flag.Bool("phases", false, "print per-phase I/O for the buffer tree")
	)
	flag.Parse()

	cfg := aem.Config{M: *m, B: *b, Omega: *omega}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "aemdict: %v\n", err)
		os.Exit(2)
	}
	var sc workload.Scenario
	found := false
	for _, s := range workload.Scenarios() {
		if s.String() == strings.ToLower(*scenario) {
			sc, found = s, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "aemdict: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	newEngine := func() aem.Storage {
		switch *engine {
		case "slice":
			return aem.NewSliceStorage()
		case "arena":
			return aem.NewArenaStorage(cfg.B)
		}
		fmt.Fprintf(os.Stderr, "aemdict: unknown engine %q (counting cannot run a value-dependent dictionary)\n", *engine)
		os.Exit(2)
		return nil
	}

	ops := workload.DictOps(workload.NewRNG(*seed), sc, *nOps, *keyspace)
	ins, del, look, rng := workload.OpMix(ops)
	p := bounds.DictParamsFor(cfg, ops, int(*keyspace))

	fmt.Printf("machine      (M=%d, B=%d, ω=%d)-AEM on the %s engine\n", cfg.M, cfg.B, cfg.Omega, *engine)
	fmt.Printf("workload     %d ops, %s over %d keys (seed %d): %d insert / %d delete / %d lookup / %d range\n",
		*nOps, sc, *keyspace, *seed, ins, del, look, rng)

	type row struct {
		name string
		mk   func(*aem.Machine) dict.Dict
		pred bounds.PredictedIO
	}
	var rows []row
	if *impl == "both" || *impl == "buffertree" {
		rows = append(rows, row{"buffertree", func(ma *aem.Machine) dict.Dict { return dict.NewBufferTree(ma) },
			bounds.DictBufferTreePredicted(p)})
	}
	if *impl == "both" || *impl == "btree" {
		rows = append(rows, row{"btree", func(ma *aem.Machine) dict.Dict { return dict.NewBTree(ma) },
			bounds.DictBTreePredicted(p)})
	}
	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "aemdict: unknown implementation %q\n", *impl)
		os.Exit(2)
	}

	for _, r := range rows {
		ma := aem.NewWithStorage(cfg, newEngine())
		d := r.mk(ma)
		results := d.Apply(ops)
		st := ma.Stats()
		fmt.Printf("\n%s\n", r.name)
		fmt.Printf("  reads        %10d   (predicted %.0f, meas/pred %.2f)\n", st.Reads, r.pred.Reads, float64(st.Reads)/r.pred.Reads)
		fmt.Printf("  writes       %10d   (predicted %.0f, meas/pred %.2f)\n", st.Writes, r.pred.Writes, float64(st.Writes)/r.pred.Writes)
		fmt.Printf("  cost Q       %10d   (= reads + ω·writes; %.2f per op)\n", ma.Cost(), float64(ma.Cost())/float64(*nOps))
		fmt.Printf("  answered     %10d queries\n", len(results))
		if *phases && r.name == "buffertree" {
			fmt.Printf("  per-phase I/O:\n")
			for _, line := range strings.Split(strings.TrimRight(ma.Phases().String(), "\n"), "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
	}
}
