package harness

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/dict"
	"repro/internal/flash"
	"repro/internal/permute"
	"repro/internal/pq"
	"repro/internal/program"
	"repro/internal/sorting"
	"repro/internal/spmxv"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Seed is the deterministic seed all experiments derive their inputs from.
const Seed = 20170724 // SPAA 2017 started July 24

// All returns every experiment spec in the README.md ("Experiments")
// index order.
func All() []*Spec {
	return []*Spec{
		specM1(), specS1(), specS2(), specB1(), specP1(), specP2(),
		specR1(), specR2(), specF1(), specF2(), specX1(), specA1(),
		specX2(), specD1(), specD2(), specQ1(), specQ2(),
	}
}

// runPQStream drives a queue over an op stream.
func runPQStream(q interface {
	Push(aem.Item)
	DeleteMin() (aem.Item, bool)
}, ops []workload.PQOp) {
	for _, op := range ops {
		if op.Kind == workload.PQPush {
			q.Push(op.Item)
		} else {
			q.DeleteMin()
		}
	}
}

func specQ1() *Spec {
	const n = 24000
	cfgOf := func(p Point) aem.Config {
		return aem.Config{M: 256, B: 16, Omega: p.Int("omega")}
	}
	params := MemoPoint(func(p Point) bounds.PQParams {
		sc := p.Value("scenario").(workload.PQScenario)
		ops := workload.PQOps(workload.NewRNG(Seed+16), sc, n)
		return bounds.PQParamsFor(cfgOf(p), ops)
	})
	return &Spec{
		ID:        "EXP-Q1",
		Index:     "priority queue: ω-adaptive vs sequence heap cost vs ω",
		Statement: "the ω-adaptive buffered queue's cost grows well under the ω span (folds and writes/op fall with ω until a scenario's below-watermark churn pins them) while the ω-oblivious sequence heap grows ~linearly and the gap widens; both within 2× of the bounds predictions",
		Title:     "priority queue: ω-adaptive buffered vs sequence heap across ω",
		Claim:     "adaptive folds and writes/op fall with ω (to a scenario-set floor); sequence heap ~linear in ω; the gap widens",
		Axes: []Axis{
			{Name: "scenario", Values: Vals(workload.MixedPQ, workload.MonotonePQ)},
			{Name: "omega", Values: Ints(1, 4, 8, 16, 32, 64)},
		},
		Columns: append(Cols("scenario", "omega", "folds", "ad w/op", "ad cost/op", "seq cost/op", "seq/ad"),
			Column{Name: "ad r m/p", Pred: func(p Point) float64 { return bounds.PQAdaptivePredicted(params(p)).Reads }},
			Column{Name: "ad w m/p", Pred: func(p Point) float64 { return bounds.PQAdaptivePredicted(params(p)).Writes }},
			Column{Name: "seq r m/p", Pred: func(p Point) float64 { return bounds.PQSequenceHeapPredicted(params(p)).Reads }},
			Column{Name: "seq w m/p", Pred: func(p Point) float64 { return bounds.PQSequenceHeapPredicted(params(p)).Writes }},
		),
		Point: func(p Point) Row {
			sc := p.Value("scenario").(workload.PQScenario)
			ops := workload.PQOps(workload.NewRNG(Seed+16), sc, n)
			cfg := cfgOf(p)
			maA := aem.New(cfg)
			qa := pq.NewAdaptive(maA)
			runPQStream(qa, ops)
			maS := aem.New(cfg)
			runPQStream(pq.New(maS), ops)

			stA, stS := maA.Stats(), maS.Stats()
			return Row{sc.String(), cfg.Omega, qa.Folds(),
				float64(stA.Writes) / float64(n),
				float64(maA.Cost()) / float64(n),
				float64(maS.Cost()) / float64(n),
				float64(maS.Cost()) / float64(maA.Cost()),
				stA.Reads, stA.Writes, stS.Reads, stS.Writes}
		},
		Notes: []string{
			"folds and ad w/op fall as ω grows — the Θ(ωM) buffer defers restructuring and the ω-scan rent budget replaces folds with read-only selection passes — down to the floor set by the scenario's below-watermark churn: monotone falls all the way (79 → 4 folds), mixed plateaus once every remaining fold is a stash overflow",
			"the sequence heap's reads/writes are ω-independent, so its cost is ~affine in ω at ~constant writes/op — the gap to the adaptive queue widens with ω in every scenario",
			"m/p columns are measured/predicted Qr and Qw from the bounds policy walk; the acceptance band is [0.5, 2]",
		},
	}
}

func specQ2() *Spec {
	cfg := aem.Config{M: 256, B: 16, Omega: 8}
	params := MemoPoint(func(p Point) bounds.PQParams {
		ops := workload.PQOps(workload.NewRNG(Seed+17), workload.MixedPQ, p.Int("ops"))
		return bounds.PQParamsFor(cfg, ops)
	})
	return &Spec{
		ID:        "EXP-Q2",
		Index:     "priority queue: cost per op vs stream length",
		Statement: "amortized cost/op of the adaptive queue stays under the sequence heap across stream sizes at fixed ω, with the gap set by the deferred restructuring",
		Title:     "priority queue: amortized cost per op vs stream length",
		Claim:     "adaptive cost/op stays under the sequence heap across sizes at fixed ω",
		Axes: []Axis{
			{Name: "ops", Values: Ints(6000, 12000, 24000, 48000)},
		},
		Columns: append(Cols("ops", "ad r/op", "ad w/op", "ad cost/op", "seq cost/op", "seq/ad"),
			Column{Name: "ad cost m/p", Pred: func(p Point) float64 { return bounds.PQAdaptivePredicted(params(p)).Cost(cfg.Omega) }},
			Column{Name: "seq cost m/p", Pred: func(p Point) float64 { return bounds.PQSequenceHeapPredicted(params(p)).Cost(cfg.Omega) }},
		),
		Point: func(p Point) Row {
			n := p.Int("ops")
			ops := workload.PQOps(workload.NewRNG(Seed+17), workload.MixedPQ, n)
			maA := aem.New(cfg)
			runPQStream(pq.NewAdaptive(maA), ops)
			maS := aem.New(cfg)
			runPQStream(pq.New(maS), ops)

			stA := maA.Stats()
			return Row{n,
				float64(stA.Reads) / float64(n),
				float64(stA.Writes) / float64(n),
				float64(maA.Cost()) / float64(n),
				float64(maS.Cost()) / float64(n),
				float64(maS.Cost()) / float64(maA.Cost()),
				maA.Cost(), maS.Cost()}
		},
		Notes: []string{
			"cost/op is near-flat in the stream length for both queues (the merge hierarchy stays shallow at simulator scale); the adaptive queue's advantage is the ω-weighted write volume it never pays",
			"ω = 8: the adaptive queue stays under the sequence heap at every size",
		},
	}
}

func specD1() *Spec {
	const n, keyspace = 24000, 8192
	cfgOf := func(p Point) aem.Config {
		return aem.Config{M: 256, B: 16, Omega: p.Int("omega")}
	}
	params := MemoPoint(func(p Point) bounds.DictParams {
		sc := p.Value("scenario").(workload.Scenario)
		ops := workload.DictOps(workload.NewRNG(Seed+14), sc, n, keyspace)
		return bounds.DictParamsFor(cfgOf(p), ops, keyspace)
	})
	return &Spec{
		ID:        "EXP-D1",
		Index:     "dictionary: buffered vs unbatched cost vs ω",
		Statement: "the ω-adaptive buffer tree's cost/op grows sublinearly in ω (its writes/op falls as buffers grow) while the unbatched B-tree grows ~linearly at ~1 write/update; both within 2× of the bounds predictions",
		Title:     "dictionary: buffered vs unbatched cost across ω",
		Claim:     "buffer tree cost/op sublinear in ω (writes/op falls); B-tree ~linear at ~1 write/update",
		Axes: []Axis{
			{Name: "scenario", Values: Vals(workload.UniformOps, workload.ZipfOps)},
			{Name: "omega", Values: Ints(1, 4, 8, 16, 32, 64)},
		},
		Columns: append(Cols("scenario", "omega", "bt w/op", "bt cost/op", "btree cost/op", "btree/bt"),
			Column{Name: "bt r m/p", Pred: func(p Point) float64 { return bounds.DictBufferTreePredicted(params(p)).Reads }},
			Column{Name: "bt w m/p", Pred: func(p Point) float64 { return bounds.DictBufferTreePredicted(params(p)).Writes }},
			Column{Name: "base r m/p", Pred: func(p Point) float64 { return bounds.DictBTreePredicted(params(p)).Reads }},
			Column{Name: "base w m/p", Pred: func(p Point) float64 { return bounds.DictBTreePredicted(params(p)).Writes }},
		),
		Point: func(p Point) Row {
			sc := p.Value("scenario").(workload.Scenario)
			ops := workload.DictOps(workload.NewRNG(Seed+14), sc, n, keyspace)
			cfg := cfgOf(p)
			maB := aem.New(cfg)
			dict.NewBufferTree(maB).Apply(ops)
			maT := aem.New(cfg)
			dict.NewBTree(maT).Apply(ops)

			stB, stT := maB.Stats(), maT.Stats()
			return Row{sc.String(), cfg.Omega,
				float64(stB.Writes) / float64(n),
				float64(maB.Cost()) / float64(n),
				float64(maT.Cost()) / float64(n),
				float64(maT.Cost()) / float64(maB.Cost()),
				stB.Reads, stB.Writes, stT.Reads, stT.Writes}
		},
		Notes: []string{
			"bt w/op falls as ω grows — the ω·M root buffer batches more before restructuring: writes are deferred and absorbed (overwritten keys never descend)",
			"the B-tree's writes/op is constant, so its cost is ~affine in ω; the buffered/unbatched gap widens with ω, the paper's message in data-structure form",
			"m/p columns are measured/predicted Qr and Qw; the acceptance band is [0.5, 2]",
		},
	}
}

func specD2() *Spec {
	cfg := aem.Config{M: 256, B: 16, Omega: 8}
	params := MemoPoint(func(p Point) bounds.DictParams {
		n := p.Int("ops")
		keyspace := n / 3
		ops := workload.DictOps(workload.NewRNG(Seed+15), workload.UniformOps, n, int64(keyspace))
		return bounds.DictParamsFor(cfg, ops, keyspace)
	})
	return &Spec{
		ID:        "EXP-D2",
		Index:     "dictionary: cost per op vs stream length",
		Statement: "amortized cost/op of the buffer tree grows only logarithmically with the stream (tree height), staying under the B-tree baseline across sizes",
		Title:     "dictionary: amortized cost per op vs stream length",
		Claim:     "cost/op grows ~log N (tree height) for the buffer tree, stays below the B-tree",
		Axes: []Axis{
			{Name: "ops", Values: Ints(6000, 12000, 24000, 48000)},
		},
		Columns: append(Cols("ops", "keys", "bt r/op", "bt w/op", "bt cost/op", "btree cost/op", "btree/bt"),
			Column{Name: "bt r m/p", Pred: func(p Point) float64 { return bounds.DictBufferTreePredicted(params(p)).Reads }},
			Column{Name: "bt w m/p", Pred: func(p Point) float64 { return bounds.DictBufferTreePredicted(params(p)).Writes }},
		),
		Point: func(p Point) Row {
			n := p.Int("ops")
			keyspace := n / 3
			ops := workload.DictOps(workload.NewRNG(Seed+15), workload.UniformOps, n, int64(keyspace))
			maB := aem.New(cfg)
			dict.NewBufferTree(maB).Apply(ops)
			maT := aem.New(cfg)
			dict.NewBTree(maT).Apply(ops)

			stB := maB.Stats()
			return Row{n, keyspace,
				float64(stB.Reads) / float64(n),
				float64(stB.Writes) / float64(n),
				float64(maB.Cost()) / float64(n),
				float64(maT.Cost()) / float64(n),
				float64(maT.Cost()) / float64(maB.Cost()),
				stB.Reads, stB.Writes}
		},
		Notes: []string{
			"the growing working set (keys = ops/3) deepens the tree; cost/op grows with the height, not the stream length",
			"ω = 8: the buffer tree stays under the baseline at every size",
		},
	}
}

func specM1() *Spec {
	cfgOf := func(p Point) aem.Config {
		return aem.Config{M: 128, B: 8, Omega: p.Int("omega")}
	}
	norm := func(p Point) (nb, mb float64) {
		cfg := cfgOf(p)
		return float64(cfg.BlocksOf(p.Int("N"))), float64(cfg.BlocksInMemory())
	}
	return &Spec{
		ID:        "EXP-M1",
		Index:     "ωm-way merge cost (Theorem 3.2)",
		Statement: "merging ωm sorted runs of N total items costs O(ω(n+m)) reads and O(n+m) writes; the normalized columns are flat across N and ω",
		Title:     "ωm-way merge: measured I/O vs Theorem 3.2",
		Claim:     "reads = O(ω(n+m)), writes = O(n+m)",
		Axes: []Axis{
			{Name: "N", Values: Ints(1<<10, 1<<12, 1<<14)},
			{Name: "omega", Values: Ints(1, 4, 16, 64)},
		},
		Columns: append(Cols("N", "omega", "reads", "writes"),
			Column{Name: "reads/(w(n+m))", Pred: func(p Point) float64 {
				nb, mb := norm(p)
				return float64(p.Int("omega")) * (nb + mb)
			}},
			Column{Name: "writes/(n+m)", Pred: func(p Point) float64 {
				nb, mb := norm(p)
				return nb + mb
			}},
		),
		Point: func(p Point) Row {
			n, cfg := p.Int("N"), cfgOf(p)
			ma := aem.New(cfg)
			runs := sortedRuns(ma, n, cfg.MergeFanout())
			sorting.MergeRuns(ma, runs, sorting.MergeOptions{})
			st := ma.Stats()
			return Row{n, cfg.Omega, st.Reads, st.Writes, st.Reads, st.Writes}
		},
		Notes: []string{
			"the two normalized columns are the Theorem 3.2 constants; flat ⇒ reproduced",
			"constants ≈4–6 for reads come from the two-block initialization of §3.1 (the paper pays the same)",
		},
	}
}

func specS1() *Spec {
	cfg := aem.Config{M: 128, B: 8, Omega: 8}
	pred := func(p Point) float64 {
		return bounds.MergeSortPredicted(bounds.Params{N: p.Int("N"), Cfg: cfg}).Cost(cfg.Omega)
	}
	return &Spec{
		ID:        "EXP-S1",
		Index:     "AEM mergesort scaling (Section 3)",
		Statement: "mergesort costs O(ω·n·log_{ωm} n) with writes a 1/ω fraction of reads; measured/predicted stays constant across N",
		Title:     "AEM mergesort: measured vs predicted cost",
		Claim:     "cost = O(ω·n·log_{ωm} n); reads/writes ≈ ω",
		Axes: []Axis{
			{Name: "N", Values: Ints(1<<10, 1<<12, 1<<14, 1<<16)},
		},
		Columns: append(append(Cols("N", "reads", "writes", "cost"),
			Column{Name: "predicted", Pred: pred},
			Column{Name: "meas/pred", Pred: pred}),
			Cols("reads/writes", "base r/w", "merge r/w", "pointer r/w")...),
		Point: func(p Point) Row {
			n := p.Int("N")
			ma := aem.New(cfg)
			in := workload.Keys(workload.NewRNG(Seed), workload.Random, n)
			sorting.MergeSort(ma, aem.Load(ma, in))
			st := ma.Stats()
			ph := ma.Phases()
			fmtPhase := func(name string) string {
				ps := ph.Phase(name)
				return fmt.Sprintf("%d/%d", ps.Reads, ps.Writes)
			}
			return Row{n, st.Reads, st.Writes, ma.Cost(), nil, ma.Cost(),
				float64(st.Reads) / float64(st.Writes),
				fmtPhase("base"), fmtPhase("merge"), fmtPhase("pointers")}
		},
		Notes: []string{
			"meas/pred flat across N reproduces the Section 3 bound's shape",
			"phase columns (reads/writes) show where the I/O goes: pointer maintenance stays O(n) writes as §3.1 argues",
		},
	}
}

func specS2() *Spec {
	const n = 1 << 14
	return &Spec{
		ID:        "EXP-S2",
		Index:     "sorting algorithms vs ω (Section 3 motivation)",
		Statement: "the §3 mergesort works for every ω where the in-memory-pointer merge of [7] fails for ω ≳ B, and its cost ratio to the symmetric-EM mergesort falls as ω grows",
		Title:     "sorting algorithms across ω",
		Claim:     "AEM mergesort runs for every ω; the [7]-style merge dies for ω ≳ B; cost ratio to EM mergesort falls with ω",
		Axes: []Axis{
			{Name: "omega", Values: Ints(1, 2, 4, 8, 16, 32, 64, 128)},
		},
		Columns: Cols("omega", "aem cost", "em cost", "samplesort", "heapsort", "aem/em", "aem writes", "em writes", "[7]-style"),
		Point: func(p Point) Row {
			in := workload.Keys(workload.NewRNG(Seed+1), workload.Random, n)
			cfg := aem.Config{M: 128, B: 8, Omega: p.Int("omega")}
			ma := aem.New(cfg)
			sorting.MergeSort(ma, aem.Load(ma, in))
			ma2 := aem.New(cfg)
			sorting.EMMergeSort(ma2, aem.Load(ma2, in))
			maS := aem.New(cfg)
			sorting.EMSampleSort(maS, aem.Load(maS, in), Seed)
			maH := aem.New(cfg)
			pq.HeapSort(maH, aem.Load(maH, in))

			legacy := "ok"
			func() {
				defer func() {
					if recover() != nil {
						legacy = "fails (ωm > M)"
					}
				}()
				ma3 := aem.New(cfg)
				sorting.MergeSortInMemoryPointers(ma3, aem.Load(ma3, in))
			}()

			return Row{cfg.Omega, ma.Cost(), ma2.Cost(), maS.Cost(), maH.Cost(),
				float64(ma.Cost()) / float64(ma2.Cost()),
				ma.Stats().Writes, ma2.Stats().Writes, legacy}
		},
		Notes: []string{
			"the asymptotic log_m/log_ωm advantage needs deeper recursions than simulator scale; the falling ratio and the write column carry the paper's point",
			"the [7]-style merge failing at large ω is the assumption §3 removes",
		},
	}
}

func specB1() *Spec {
	return &Spec{
		ID:        "EXP-B1",
		Index:     "small-sort base case ([7, Lemma 4.2])",
		Statement: "N′ ≤ ωM items sort in O(ω·n′) reads and exactly n′ writes",
		Title:     "small-sort base case",
		Claim:     "N′ ≤ ωM sorts in O(ω·n′) reads and exactly n′ writes",
		Axes: []Axis{
			{Name: "omega", Values: Ints(1, 4, 16)},
			{Name: "mult", Dyn: func(outer Point) []interface{} {
				w := outer.Int("omega")
				return Ints(1, w/2, w)
			}},
		},
		Skip:    func(p Point) bool { return p.Int("mult") < 1 },
		Columns: Cols("N'", "omega", "N'/M", "reads", "writes", "reads/n'", "writes/n'"),
		Point: func(p Point) Row {
			w, mult := p.Int("omega"), p.Int("mult")
			cfg := aem.Config{M: 64, B: 8, Omega: w}
			n := mult * cfg.M
			ma := aem.New(cfg)
			in := workload.Keys(workload.NewRNG(Seed+2), workload.Random, n)
			sorting.SmallSort(ma, aem.Load(ma, in))
			st := ma.Stats()
			nb := float64(cfg.BlocksOf(n))
			return Row{n, w, mult, st.Reads, st.Writes,
				float64(st.Reads) / nb, float64(st.Writes) / nb}
		},
		Notes: []string{"reads/n' grows ~2·N'/M (selection passes) and writes/n' is exactly 1"},
	}
}

// p1Case is one machine/size corner of the Theorem 4.5 sweep.
type p1Case struct {
	n   int
	cfg aem.Config
}

func specP1() *Spec {
	caseOf := func(p Point) p1Case { return p.Value("case").(p1Case) }
	closedLB := func(p Point) float64 {
		c := caseOf(p)
		return bounds.PermutingLowerBoundClosed(bounds.Params{N: c.n, Cfg: c.cfg})
	}
	// Writing the n output blocks costs ωn no matter what; combined with
	// Theorem 4.5 this floors every permuting program that must
	// materialize its output.
	wnFloor := func(p Point) float64 {
		c := caseOf(p)
		return float64(c.cfg.Omega) * float64(c.cfg.BlocksOf(c.n))
	}
	return &Spec{
		ID:        "EXP-P1",
		Index:     "permuting upper vs lower bound (Theorem 4.5)",
		Statement: "best-of(direct, sort) cost is within a constant factor of min{N, ω·n·log_{ωm} n}, with the strategy switching exactly where the min switches",
		Title:     "permuting: measured vs Theorem 4.5",
		Claim:     "best-of(direct,sort) tracks min{N, ω·n·log_{ωm} n} within a constant",
		Axes: []Axis{
			{Name: "case", Values: Vals(
				p1Case{1 << 12, aem.Config{M: 128, B: 8, Omega: 1}},
				p1Case{1 << 12, aem.Config{M: 128, B: 8, Omega: 8}},
				p1Case{1 << 12, aem.Config{M: 128, B: 8, Omega: 64}},
				p1Case{1 << 14, aem.Config{M: 128, B: 8, Omega: 8}},
				p1Case{1 << 12, aem.Config{M: 32, B: 2, Omega: 256}}, // N-term regime
				p1Case{1 << 14, aem.Config{M: 256, B: 32, Omega: 2}}, // sort-term regime
			)},
		},
		Columns: append(Cols("N", "B", "omega", "direct", "sort", "best", "strategy"),
			Column{Name: "closed LB", Pred: closedLB},
			Column{Name: "counting LB", Pred: func(p Point) float64 {
				c := caseOf(p)
				return bounds.CountingLowerBound(bounds.Params{N: c.n,
					Cfg: aem.Config{M: 2 * c.cfg.M, B: c.cfg.B, Omega: c.cfg.Omega}})
			}},
			Column{Name: "wn floor", Pred: wnFloor},
			Column{Name: "best/maxLB", Pred: func(p Point) float64 {
				maxLB := closedLB(p)
				if wn := wnFloor(p); wn > maxLB {
					maxLB = wn
				}
				return maxLB
			}},
		),
		Point: func(p Point) Row {
			c := caseOf(p)
			items, perm := workload.Permutation(workload.NewRNG(Seed+3), c.n)

			maD := aem.New(c.cfg)
			permute.Direct(maD, aem.Load(maD, items), perm)
			maS := aem.New(c.cfg)
			permute.SortBased(maS, aem.Load(maS, items))
			maB := aem.New(c.cfg)
			_, strat := permute.Best(maB, aem.Load(maB, items), perm)

			return Row{c.n, c.cfg.B, c.cfg.Omega, maD.Cost(), maS.Cost(), maB.Cost(),
				strat.String(), nil, nil, nil, maB.Cost()}
		},
		Notes: []string{
			"counting LB evaluated with 2M per Corollary 4.2 so it validly floors the measured algorithms",
			"strategy flips to direct exactly in the parameter corner where the bound's min{} picks N",
			"for ω ≫ B the binding floor is the trivial output-write cost ωn, not Theorem 4.5's min{}",
		},
	}
}

func specP2() *Spec {
	paramsOf := func(p Point) bounds.Params {
		return bounds.Params{N: p.Int("N"),
			Cfg: aem.Config{M: 1 << 10, B: p.Int("B"), Omega: p.Int("omega")}}
	}
	return &Spec{
		ID:        "EXP-P2",
		Index:     "counting argument internals (§4.2)",
		Statement: "the exact round floor from inequality (1) agrees with the closed form within constant factors across the parameter grid",
		Title:     "counting argument internals",
		Claim:     "R from inequality (1) ≈ closed form / (ωm)",
		Axes: []Axis{
			{Name: "N", Values: Ints(1<<16, 1<<20)},
			{Name: "omega", Values: Ints(1, 8, 64)},
			{Name: "B", Values: Ints(16, 64)},
		},
		Columns: append(Cols("N", "M", "B", "omega", "rounds R"),
			Column{Name: "counting LB", Pred: func(p Point) float64 { return bounds.CountingLowerBound(paramsOf(p)) }},
			Column{Name: "closed LB", Pred: func(p Point) float64 { return bounds.PermutingLowerBoundClosed(paramsOf(p)) }},
			Column{Name: "counting/closed", Pred: func(p Point) float64 { return bounds.PermutingLowerBoundClosed(paramsOf(p)) }},
		),
		Point: func(p Point) Row {
			pr := paramsOf(p)
			return Row{p.Int("N"), pr.Cfg.M, p.Int("B"), p.Int("omega"),
				bounds.CountingRounds(pr), nil, nil, bounds.CountingLowerBound(pr)}
		},
	}
}

// r1Case selects one program construction for the Lemma 4.1 table.
type r1Case struct {
	kind string
	n    int
	cfg  aem.Config
	seed uint64 // random-program cases only
}

func specR1() *Spec {
	return &Spec{
		ID:        "EXP-R1",
		Index:     "Lemma 4.1 round-based conversion",
		Statement: "any program converts to a round-based program on a 2M machine at ≤ 3× cost + O(ωm), preserving the computed permutation",
		Title:     "Lemma 4.1: round-based conversion overhead",
		Claim:     "cost(P′) ≤ 3·cost(P) + O(ωm), placement preserved, rounds valid",
		Axes: []Axis{
			{Name: "case", Values: Vals(
				r1Case{kind: "permutation", n: 256, cfg: aem.Config{M: 32, B: 4, Omega: 2}},
				r1Case{kind: "permutation", n: 256, cfg: aem.Config{M: 32, B: 4, Omega: 8}},
				r1Case{kind: "permutation", n: 1024, cfg: aem.Config{M: 32, B: 4, Omega: 2}},
				r1Case{kind: "permutation", n: 1024, cfg: aem.Config{M: 32, B: 4, Omega: 8}},
				r1Case{kind: "random", n: 128, cfg: aem.Config{M: 32, B: 4, Omega: 4}, seed: Seed + 5},
				r1Case{kind: "random", n: 128, cfg: aem.Config{M: 32, B: 4, Omega: 4}, seed: Seed + 6},
			)},
		},
		Columns: Cols("kind", "N", "omega", "cost P", "cost P'", "factor", "rounds", "placement"),
		Point: func(pt Point) Row {
			c := pt.Value("case").(r1Case)
			var prog *program.Program
			switch c.kind {
			case "permutation":
				_, perm := workload.Permutation(workload.NewRNG(Seed+4), c.n)
				p, err := program.FromPermutation(c.cfg, perm)
				if err != nil {
					panic(err)
				}
				prog = p
			case "random":
				prog = program.Random(workload.NewRNG(c.seed), c.cfg, c.n, 400)
			}
			orig, err := program.Run(prog, program.RunOptions{})
			if err != nil {
				panic(fmt.Sprintf("harness: invalid base program: %v", err))
			}
			rb, err := program.ConvertToRoundBased(prog)
			if err != nil {
				panic(fmt.Sprintf("harness: conversion: %v", err))
			}
			conv, err := program.Run(rb, program.RunOptions{})
			if err != nil {
				panic(fmt.Sprintf("harness: converted program: %v", err))
			}
			ok := "preserved"
			if !orig.Placement.Equal(conv.Placement) {
				ok = "BROKEN"
			}
			w := prog.Cfg.Omega
			return Row{c.kind, prog.N, w, orig.Cost(w), conv.Cost(w),
				float64(conv.Cost(w)) / float64(orig.Cost(w)), len(rb.RoundMarks), ok}
		},
	}
}

// r2Case is one recorded-algorithm trace of the Lemma 4.1 table.
type r2Case struct {
	name string
	n    int
	run  func(*aem.Machine, int)
}

func specR2() *Spec {
	cfg := aem.Config{M: 64, B: 8, Omega: 8}
	cases := Vals(
		r2Case{"aem mergesort", 4096, func(ma *aem.Machine, n int) {
			in := workload.Keys(workload.NewRNG(Seed+10), workload.Random, n)
			sorting.MergeSort(ma, aem.Load(ma, in))
		}},
		r2Case{"em mergesort", 4096, func(ma *aem.Machine, n int) {
			in := workload.Keys(workload.NewRNG(Seed+11), workload.Random, n)
			sorting.EMMergeSort(ma, aem.Load(ma, in))
		}},
		r2Case{"em samplesort", 4096, func(ma *aem.Machine, n int) {
			in := workload.Keys(workload.NewRNG(Seed+12), workload.Random, n)
			sorting.EMSampleSort(ma, aem.Load(ma, in), Seed)
		}},
		r2Case{"spmxv sort-based", 512, func(ma *aem.Machine, n int) {
			conf := workload.NewConformation(workload.NewRNG(Seed+13), n, 4)
			vals := make([]int64, conf.H())
			x := make([]int64, n)
			m := spmxv.NewMatrix(ma, conf, vals)
			spmxv.SortBased(ma, m, spmxv.LoadDense(ma, x))
		}},
	)
	return &Spec{
		ID:        "EXP-R2",
		Index:     "Lemma 4.1 on real algorithm traces",
		Statement: "the round-based conversion stays O(1)× on recorded executions of the paper's own algorithms, not just synthetic programs",
		Title:     "Lemma 4.1 applied to recorded algorithm traces",
		Claim:     "conversion factor O(1) on real executions; budget 3×Q + O(ωm)",
		Axes: []Axis{
			{Name: "case", Values: cases},
		},
		Columns: Cols("algorithm", "N", "omega", "trace ops", "Q", "Q'", "factor", "rounds", "saved reads"),
		Point: func(p Point) Row {
			c := p.Value("case").(r2Case)
			ma := aem.New(cfg)
			ma.StartTrace()
			c.run(ma, c.n)
			ops := ma.StopTrace()
			conv := trace.Convert(ops, cfg)
			return Row{c.name, c.n, cfg.Omega, len(ops), conv.Original, conv.Converted,
				conv.Factor(), conv.Rounds, conv.SavedReads}
		},
		Notes: []string{
			"each recorded trace is exactly the paper's §2 notion of the program an algorithm induces on one input",
			"the ≈2.3 factor is the snapshot cost: each round re-parks up to m blocks of memory, roughly doubling the round's ωm budget — the constant the lemma's charging argument absorbs",
		},
	}
}

// f1Case is one machine/size corner of the Lemma 4.3 sweep.
type f1Case struct {
	cfg aem.Config
	n   int
}

func specF1() *Spec {
	return &Spec{
		ID:        "EXP-F1",
		Index:     "Lemma 4.3 flash simulation",
		Statement: "a round-based AEM program of cost Q becomes a flash program of volume ≤ 2N + 2QB/ω computing the same placement",
		Title:     "Lemma 4.3: flash simulation volume",
		Claim:     "volume ≤ 2N + 2QB/ω; placement preserved",
		Axes: []Axis{
			{Name: "case", Values: Vals(
				f1Case{aem.Config{M: 16, B: 4, Omega: 2}, 256},
				f1Case{aem.Config{M: 32, B: 8, Omega: 2}, 512},
				f1Case{aem.Config{M: 32, B: 8, Omega: 4}, 512},
				f1Case{aem.Config{M: 32, B: 8, Omega: 8}, 512},
				f1Case{aem.Config{M: 64, B: 16, Omega: 4}, 1024},
			)},
		},
		Columns: Cols("N", "B", "omega", "Q (AEM)", "volume", "bound", "volume/bound", "placement"),
		Point: func(p Point) Row {
			c := p.Value("case").(f1Case)
			_, perm := workload.Permutation(workload.NewRNG(Seed+7), c.n)
			prog, err := program.FromPermutation(c.cfg, perm)
			if err != nil {
				panic(err)
			}
			rb, err := program.ConvertToRoundBased(prog)
			if err != nil {
				panic(err)
			}
			want, err := program.Run(rb, program.RunOptions{})
			if err != nil {
				panic(err)
			}
			fp, err := flash.SimulateAEM(rb)
			if err != nil {
				panic(err)
			}
			res, err := flash.Run(fp)
			if err != nil {
				panic(err)
			}
			ok := "preserved"
			for a, addr := range want.Placement {
				if res.Placement[a] != addr {
					ok = "BROKEN"
					break
				}
			}
			bound := flash.VolumeBound(rb)
			return Row{c.n, c.cfg.B, c.cfg.Omega, rb.Cost(), fp.Volume(), bound,
				float64(fp.Volume()) / float64(bound), ok}
		},
	}
}

func specF2() *Spec {
	const n = 1 << 20
	paramsOf := func(p Point) bounds.Params {
		return bounds.Params{N: n,
			Cfg: aem.Config{M: 1 << 10, B: p.Int("B"), Omega: p.Int("omega")}}
	}
	return &Spec{
		ID:        "EXP-F2",
		Index:     "reduction vs counting lower bound (Corollary 4.4)",
		Statement: "the flash-reduction bound matches the counting bound's shape where ω ≤ B and is vacuous for ω > B — the range where only the counting argument applies",
		Title:     "reduction vs counting lower bound",
		Claim:     "reduction bound applies only for ω ≤ B; counting bound covers every ω",
		Axes: []Axis{
			{Name: "B", Values: Ints(16, 64)},
			{Name: "omega", Values: Ints(1, 4, 16, 64, 256)},
		},
		Columns: append(Cols("N", "B", "omega", "reduction LB"),
			Column{Name: "counting LB", Pred: func(p Point) float64 { return bounds.CountingLowerBound(paramsOf(p)) }},
			Column{Name: "closed LB", Pred: func(p Point) float64 { return bounds.PermutingLowerBoundClosed(paramsOf(p)) }},
		),
		Point: func(p Point) Row {
			b, w := p.Int("B"), p.Int("omega")
			redStr := fmtVal(bounds.ReductionLowerBound(paramsOf(p)))
			if w > b {
				redStr = "n/a (ω>B)"
			}
			return Row{n, b, w, redStr, nil, nil}
		},
		Notes: []string{"this is the paper's remark that the counting bound is slightly stronger for some parameter ranges"},
	}
}

func specX1() *Spec {
	const n = 1 << 11
	lb := func(p Point) float64 {
		return bounds.SpMxVLowerBoundClosed(bounds.SpMxVParams{
			Params: bounds.Params{N: n, Cfg: p.Value("machine").(aem.Config)},
			Delta:  p.Int("delta")})
	}
	return &Spec{
		ID:        "EXP-X1",
		Index:     "SpMxV cost vs δ (Theorem 5.1)",
		Statement: "naive O(H+ωn) and sorting-based O(ω·h·log_{ωm} N/max{δ,B}+ωn) bracket the lower bound, and the best strategy follows the min{}",
		Title:     "SpMxV: measured cost vs δ",
		Claim:     "naive and sorting-based bracket Theorem 5.1's bound; best follows the min{}",
		Axes: []Axis{
			{Name: "machine", Values: Vals(
				aem.Config{M: 128, B: 8, Omega: 4},  // write-averse machine: naive regime
				aem.Config{M: 512, B: 32, Omega: 1}, // symmetric, big blocks: sorting regime
			)},
			{Name: "delta", Values: Ints(1, 2, 4, 8, 16, 32)},
		},
		Columns: append(Cols("machine", "delta", "H", "naive", "sort", "best strat"),
			Column{Name: "closed LB", Pred: lb},
			Column{Name: "best/LB", Pred: lb},
		),
		Point: func(p Point) Row {
			cfg, delta := p.Value("machine").(aem.Config), p.Int("delta")
			rng := workload.NewRNG(Seed + 8)
			conf := workload.NewConformation(rng, n, delta)
			values := make([]int64, conf.H())
			for i := range values {
				values[i] = int64(rng.Intn(100))
			}
			x := make([]int64, n)
			for i := range x {
				x[i] = int64(rng.Intn(100))
			}

			maN := aem.New(cfg)
			mN := spmxv.NewMatrix(maN, conf, values)
			spmxv.Naive(maN, mN, spmxv.LoadDense(maN, x))

			maS := aem.New(cfg)
			mS := spmxv.NewMatrix(maS, conf, values)
			spmxv.SortBased(maS, mS, spmxv.LoadDense(maS, x))

			best := maN.Cost()
			strat := "naive"
			if maS.Cost() < best {
				best = maS.Cost()
				strat = "sort"
			}
			return Row{fmt.Sprintf("B=%d w=%d", cfg.B, cfg.Omega), delta, conf.H(),
				maN.Cost(), maS.Cost(), strat, nil, best}
		},
		Notes: []string{"the two machines sit on opposite sides of Theorem 5.1's min{}: big blocks with symmetric cost favor sorting, write-averse machines favor the direct program"},
	}
}

func specX2() *Spec {
	const n, delta = 1 << 11, 4
	return &Spec{
		ID:        "EXP-X2",
		Index:     "SpMxV cost vs ω (Section 5)",
		Statement: "as ω grows the sorting-based cost scales ~ω while naive stays flat in reads, moving the crossover toward naive",
		Title:     "SpMxV: measured cost vs ω",
		Claim:     "sorting-based scales ~ω; naive reads stay flat so large ω favors naive",
		Axes: []Axis{
			{Name: "omega", Values: Ints(1, 4, 16, 64, 256)},
		},
		Columns: Cols("omega", "naive", "sort", "naive/sort", "predicted best"),
		Point: func(p Point) Row {
			w := p.Int("omega")
			rng := workload.NewRNG(Seed + 9)
			conf := workload.NewConformation(rng, n, delta)
			values := make([]int64, conf.H())
			for i := range values {
				values[i] = int64(rng.Intn(100))
			}
			x := make([]int64, n)
			for i := range x {
				x[i] = int64(rng.Intn(100))
			}
			cfg := aem.Config{M: 128, B: 8, Omega: w}
			maN := aem.New(cfg)
			mN := spmxv.NewMatrix(maN, conf, values)
			spmxv.Naive(maN, mN, spmxv.LoadDense(maN, x))
			maS := aem.New(cfg)
			mS := spmxv.NewMatrix(maS, conf, values)
			spmxv.SortBased(maS, mS, spmxv.LoadDense(maS, x))

			sp := bounds.SpMxVParams{Params: bounds.Params{N: n, Cfg: cfg}, Delta: delta}
			pred := "sort"
			if bounds.SpMxVNaivePredicted(sp).Cost(w) <= bounds.SpMxVSortPredicted(sp).Cost(w) {
				pred = "naive"
			}
			return Row{w, maN.Cost(), maS.Cost(),
				float64(maN.Cost()) / float64(maS.Cost()), pred}
		},
	}
}

func specA1() *Spec {
	cfg := aem.Config{M: 128, B: 8, Omega: 8}
	const n = 1 << 13
	const costCol = 4 // index of the raw cost column, for the derived ratio
	return &Spec{
		ID:        "EXP-A1",
		Index:     "ablation: round-buffer size in the §3 merge",
		Statement: "halving the per-round output multiplies the round count and with it the fixed ωm initialization reads — the design choice behind §3.1's M-sized rounds",
		Title:     "ablation: round-buffer size vs merge cost",
		Claim:     "cost grows as the round buffer shrinks (rounds × ωm init reads dominate)",
		Axes: []Axis{
			{Name: "cap", Values: Ints(0, 32, 16, 8)}, // 0 = auto (≈44 at this config)
		},
		Columns: Cols("buffer cap", "rounds", "reads", "writes", "cost"),
		Derived: []DerivedColumn{
			// Each cost against the first (uncapped) row's: the summary
			// column relating the ablated runs to the design point.
			{Name: "cost vs full", From: func(rows []Row, i int) interface{} {
				return toFloat(rows[i][costCol]) / toFloat(rows[0][costCol])
			}},
		},
		Point: func(p Point) Row {
			capBuf := p.Int("cap")
			ma := aem.New(cfg)
			runs := sortedRuns(ma, n, cfg.MergeFanout())
			sorting.MergeRuns(ma, runs, sorting.MergeOptions{MaxBuffer: capBuf})
			st := ma.Stats()
			label, roundsCol := "auto", "-"
			if capBuf > 0 {
				label = fmtVal(capBuf)
				roundsCol = fmtVal((n + capBuf - 1) / capBuf)
			}
			return Row{label, roundsCol, st.Reads, st.Writes, ma.Cost()}
		},
		Notes: []string{
			"the paper's round structure outputs ~M items per round precisely to amortize the per-round ωm-read initialization; the ablation quantifies that choice",
		},
	}
}

// sortedRuns builds k sorted runs totalling n random items on the machine.
func sortedRuns(ma *aem.Machine, n, k int) []*aem.Vector {
	all := workload.Keys(workload.NewRNG(Seed), workload.Random, n)
	per := (n + k - 1) / k
	var runs []*aem.Vector
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		chunk := make([]aem.Item, hi-lo)
		copy(chunk, all[lo:hi])
		sortChunk(chunk)
		runs = append(runs, aem.Load(ma, chunk))
	}
	return runs
}

func sortChunk(items []aem.Item) {
	if len(items) < 2 {
		return
	}
	mid := len(items) / 2
	left := make([]aem.Item, mid)
	copy(left, items[:mid])
	right := make([]aem.Item, len(items)-mid)
	copy(right, items[mid:])
	sortChunk(left)
	sortChunk(right)
	i, j := 0, 0
	for k := range items {
		if j >= len(right) || (i < len(left) && aem.Less(left[i], right[j])) {
			items[k] = left[i]
			i++
		} else {
			items[k] = right[j]
			j++
		}
	}
}
