// Sorting scenario: an external sort of a flash/NVM-resident dataset,
// comparing the paper's ω-aware mergesort against a symmetric-EM sort that
// ignores write asymmetry, across a sweep of ω. This is the workload the
// paper's introduction motivates: the same code path a database's sort
// operator would take on phase-change storage.
//
//	go run ./examples/sorting
package main

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/core"
	"repro/internal/sorting"
	"repro/internal/workload"
)

func main() {
	const n = 1 << 15
	input := workload.Keys(workload.NewRNG(7), workload.Random, n)

	fmt.Println("external sort of", n, "items, M=128, B=8")
	fmt.Printf("%8s  %12s %12s %12s %12s  %s\n",
		"omega", "aem writes", "em writes", "aem cost", "em cost", "aem/em")
	for _, w := range []int{1, 4, 16, 64, 256} {
		cfg := aem.Config{M: 128, B: 8, Omega: w}

		ma := core.NewMachine(cfg)
		out := core.Sort(ma, core.Load(ma, input))
		if !sorting.IsSorted(out.Materialize()) {
			panic("aem sort failed")
		}

		ma2 := core.NewMachine(cfg)
		out2 := core.EMSort(ma2, core.Load(ma2, input))
		if !sorting.IsSorted(out2.Materialize()) {
			panic("em sort failed")
		}

		fmt.Printf("%8d  %12d %12d %12d %12d  %.3f\n",
			w, ma.Stats().Writes, ma2.Stats().Writes,
			ma.Cost(), ma2.Cost(), float64(ma.Cost())/float64(ma2.Cost()))
	}
	fmt.Println()
	fmt.Println("the AEM sort holds its write count nearly flat while the symmetric")
	fmt.Println("sort pays the full ω on every merge level — the Section 3 story.")
}
