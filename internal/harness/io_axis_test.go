package harness

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/aem"
)

// TestFitDeviceOmegaColumns pins the derived-column wiring on synthetic
// rows: the fit is computed per engine value, reads the right columns,
// and survives the shard JSON round-trip's float64 widening.
func TestFitDeviceOmegaColumns(t *testing.T) {
	// Engine "a": wall = 100·Qr + 300·Qw (ω̂ = 3); engine "b": wall =
	// 100·Qr + 800·Qw (ω̂ = 8). Two read/write mixes per engine keep each
	// fit identifiable. Numbers arrive as float64, as after a JSON trip.
	mk := func(engine string, qr, qw float64, alpha, beta float64) Row {
		return Row{"alg", float64(64), engine, qr, qw, 0, alpha*qr + beta*qw}
	}
	rows := []Row{
		mk("a", 300, 100, 100, 300),
		mk("a", 100, 100, 100, 300),
		mk("b", 300, 100, 100, 800),
		mk("b", 100, 100, 100, 800),
	}
	cols := fitDeviceOmega(2, 3, 6)
	for i, want := range []string{"3.00", "3.00", "8.00", "8.00"} {
		if got := cols[0].From(rows, i); got != want {
			t.Errorf("row %d fitted ω = %v, want %s", i, got, want)
		}
		if got := cols[1].From(rows, i); got != "1.000" {
			t.Errorf("row %d R² = %v on noise-free data", i, got)
		}
	}

	// A single-mix engine is collinear: the columns degrade to n/a
	// rather than panicking mid-assembly.
	collinear := []Row{
		mk("c", 100, 100, 1, 1),
		mk("c", 200, 200, 1, 1),
	}
	if got := cols[0].From(collinear, 0); got != "n/a" {
		t.Errorf("collinear engine fitted %v, want n/a", got)
	}
}

// TestIOAxisEndToEnd runs EXP-IO1 for real (tmpdir-backed): every grid
// point executes on an owned file engine, wall cells are positive, and
// the fitted-ω column carries a finite positive fit per engine.
func TestIOAxisEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("sorts on file-backed storage")
	}
	t.Setenv(aem.FileDirEnv, t.TempDir())
	s, ok := ByID("EXP-IO1")
	if !ok {
		t.Fatal("EXP-IO1 missing from the auxiliary registry")
	}
	var tbl *Table
	Run([]*Spec{s}, 4, func(x *Table) { tbl = x })
	if len(tbl.Rows) != len(s.Points()) {
		t.Fatalf("grid produced %d rows for %d points", len(tbl.Rows), len(s.Points()))
	}
	nc := len(tbl.Columns)
	if tbl.Columns[nc-2] != "fitted ω" || tbl.Columns[nc-1] != "fit R²" {
		t.Fatalf("trailing columns %v, want fitted ω / fit R²", tbl.Columns[nc-3:])
	}
	wallCol := 6
	if tbl.Columns[wallCol] != "wall ns" {
		t.Fatalf("column %d is %q, want wall ns", wallCol, tbl.Columns[wallCol])
	}
	for _, row := range tbl.Rows {
		wall, err := strconv.ParseFloat(row[wallCol], 64)
		if err != nil || wall <= 0 {
			t.Errorf("%s/%s: wall cell %q not a positive duration", row[0], row[2], row[wallCol])
		}
		if cell := row[nc-2]; cell != "n/a" {
			om, err := strconv.ParseFloat(cell, 64)
			if err != nil || om <= 0 {
				t.Errorf("%s/%s: fitted ω cell %q not finite positive", row[0], row[2], cell)
			}
		}
	}
	// The fit must actually converge for at least one engine on real
	// measurements — an all-n/a table means the grid's mixes collapsed.
	converged := 0
	for _, row := range tbl.Rows {
		if row[nc-2] != "n/a" {
			converged++
		}
	}
	if converged == 0 {
		t.Error("no engine's (Qr, Qw, wall) regression converged")
	}
	// The grid leaves no backing files behind: every point closed its
	// engine on release.
	dir := os.Getenv(aem.FileDirEnv)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("%d backing files leaked into %s after the sweep", len(entries), dir)
	}
}

// TestPooledMachinePersistentIdentity pins the pooling policy for
// stateful engines: concurrent requests never alias one machine (one
// backing file per live point), and release closes the engine instead of
// recycling it — its temp file is gone, and the next request constructs
// a genuinely fresh machine.
func TestPooledMachinePersistentIdentity(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(aem.FileDirEnv, dir)
	cfg := aem.Config{M: 64, B: 8, Omega: 4}

	a, relA := PooledMachine(cfg, "file")
	b, relB := PooledMachine(cfg, "file")
	if a == b {
		t.Fatal("two live points share one file-backed machine")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 2 {
		t.Fatalf("%d backing files for 2 live machines, want 2", len(entries))
	}
	relA()
	relA() // idempotent: double release must not double-close
	relB()
	entries, _ = os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("%d backing files survived release, want 0 (close, not recycle)", len(entries))
	}

	c, relC := PooledMachine(cfg, "file")
	defer relC()
	if c == a || c == b {
		t.Fatal("released persistent machine was recycled; persistent engines pool by identity")
	}
	poolWorkload(c, 64)
}
