package harness

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/dictsrv"
	"repro/internal/workload"
)

// This file is the serving axis: the buffer tree behind internal/dictsrv,
// measured where production write-buffering lives or dies — tail latency
// under concurrency, next to the amortized Q every other experiment
// reports. The paper prices the root buffer's Θ(ωM) deferral by its
// amortized savings; a serving system also pays the deferral back in
// concentrated bursts, and these sweeps put both sides in one table:
// amortized cost/op falling (or sublinear) with ω while the worst flush
// stall grows with it (EXP-L1), and throughput/p99 across goroutine and
// shard counts (EXP-L2).
//
// Latency cells are wall-clock and machine-dependent by construction, so
// both sweeps live in the auxiliary registry: `aem bench` goldens stay
// byte-stable and EXP-L1/EXP-L2 are selected explicitly (`-exp`). CI
// gates their per-point wall time like every other timed stream.

// latencyCols renders one load run's latency summary as table cells.
func latencyCols(s LatencySummary) []interface{} {
	return []interface{}{FmtNS(s.P50NS), FmtNS(s.P99NS), FmtNS(s.MaxNS)}
}

// serveRow drives one concurrent load point: build the service, run the
// streams, and return the standard serving measurements.
func serveRow(cfg dictsrv.Config, goroutines, nOps int, seed uint64) (dictsrv.LoadReport, dictsrv.Stats, LatencySummary) {
	svc, err := dictsrv.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("harness: serving point: %v", err))
	}
	defer svc.Close()
	streams := workload.DictStreams(seed, workload.DriftOps, goroutines, nOps, cfg.KeyHi)
	rep := dictsrv.RunLoad(svc, streams)
	svc.Flush() // fold the tail of buffered work into the accounting
	st := svc.Stats()
	return rep, st, SummarizeLatencies(rep.LatencyNS)
}

func specL1() *Spec {
	const (
		shards     = 4
		goroutines = 8
		nOps       = 48000
		keyspace   = 4096
	)
	return &Spec{
		ID:        "EXP-L1",
		Index:     "serving frontier: amortized cost/op vs worst flush stall across ω",
		Statement: "the dictionary service under drift load at fixed concurrency, swept over ω: the ω-adaptive root buffer (Θ(ωM) items) drives amortized cost/op down — and write count per op with it — while the same deferral concentrates into rarer, larger flush stalls; p50/p99/max op latency and the worst stall sit next to the amortized columns",
		Title:     "serving: the amortized-vs-tail frontier across ω",
		Claim:     "bigger ω buys lower amortized cost per op and fewer flushes, paid for in a growing worst-case stall — deferral moves cost from the average to the tail",
		Axes: []Axis{
			{Name: "omega", Values: Ints(1, 4, 16, 64)},
		},
		Columns: Cols("ω", "ops", "flushes", "writes/op", "cost/op", "p50", "p99", "max", "max stall"),
		Point: func(p Point) Row {
			omega := p.Int("omega")
			cfg := dictsrv.Config{
				Shards:  shards,
				Machine: aem.Config{M: 128, B: 16, Omega: omega},
				KeyLo:   0, KeyHi: keyspace,
			}
			rep, st, lat := serveRow(cfg, goroutines, nOps, Seed+40)
			row := Row{omega, rep.Ops, st.Flushes,
				fmt.Sprintf("%.3f", float64(st.Writes)/float64(rep.Ops)),
				fmt.Sprintf("%.1f", float64(st.Cost)/float64(rep.Ops))}
			return append(append(row, latencyCols(lat)...), FmtNS(st.MaxFlushNS))
		},
		Notes: []string{
			fmt.Sprintf("drift workload (migrating Zipf hot set), %d goroutines over %d shards, %d ops — the adversarial shape for accumulated buffer locality", goroutines, shards, nOps),
			"cost/op uses the same Q = Qr + ω·Qw accounting as every bulk experiment, plus snapshot block reads at weight 1",
			"latency cells are wall-clock and machine-dependent; the monotone trends across the ω column are the result, not the numbers",
		},
	}
}

func specL2() *Spec {
	const (
		omega    = 16
		nOps     = 32000
		keyspace = 4096
	)
	return &Spec{
		ID:        "EXP-L2",
		Index:     "serving scalability: throughput and p99 vs goroutines, shards as axis",
		Statement: "the dictionary service at fixed ω, swept over offered concurrency and shard count: group commit batches harder as writers pile up, and sharding splits both the keyspace and the flush stalls — throughput and tail latency reported per (shards, goroutines) point",
		Title:     "serving: throughput and tail vs concurrency and shards",
		Claim:     "more shards sustain concurrency better: partitioned trees commit and flush independently, so added writers batch into throughput instead of queueing into the tail",
		Axes: []Axis{
			{Name: "shards", Values: Ints(1, 4)},
			{Name: "gor", Values: Ints(1, 4, 16)},
		},
		Columns: Cols("shards", "gor", "ops", "ops/sec", "cost/op", "p50", "p99", "max"),
		Point: func(p Point) Row {
			shards, gor := p.Int("shards"), p.Int("gor")
			cfg := dictsrv.Config{
				Shards:  shards,
				Machine: aem.Config{M: 128, B: 16, Omega: omega},
				KeyLo:   0, KeyHi: keyspace,
			}
			rep, st, lat := serveRow(cfg, gor, nOps, Seed+41)
			row := Row{shards, gor, rep.Ops,
				fmt.Sprintf("%.0f", rep.OpsPerSec()),
				fmt.Sprintf("%.1f", float64(st.Cost)/float64(rep.Ops))}
			return append(row, latencyCols(lat)...)
		},
		Notes: []string{
			fmt.Sprintf("drift workload at ω=%d, %d ops per point; goroutines share the service, not a stream — the op mix is fixed while the interleaving scales", omega, nOps),
			"wall-clock cells are machine-dependent; read the table for its shape across the grid, not the absolute numbers",
		},
	}
}
