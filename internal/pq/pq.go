// Package pq implements an external-memory priority queue (a sequence
// heap in the style of Sanders) on the AEM machine, and the heapsort built
// on it.
//
// The paper's §1.1 cites the heapsort of Blelloch et al. [7] as achieving
// O(ω·n·log_{ωm} n) unconditionally; that construction's details are not
// in this paper and are out of scope (see README.md, "Scope"). This package
// provides the *classic external-memory sequence heap* run on the AEM
// machine — cost Θ((1+ω)·n·log_m n) for a full insert/delete lifetime —
// serving two roles: a genuinely useful substrate (interleaved
// Push/DeleteMin with external state), and the heapsort baseline
// `HeapSort` alongside the symmetric mergesort and sample sort baselines.
//
// Structure: an in-memory insertion buffer (IB) and deletion buffer (DB)
// of ~M/8 items each, plus sorted runs on disk organized in levels, with
// one resident block frame per live run (the classic EM frontier). A full
// IB is sorted (free internal computation) and written as a level-0 run;
// when the live-run count exceeds the frame budget ~M/(2B), levels are
// merged. DB refills take the globally smallest unconsumed items from the
// run frontiers.
package pq

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/sorting"
)

// Queue is an external-memory min-priority queue of aem.Items ordered by
// the (Key, Aux) total order.
type Queue struct {
	ma  *aem.Machine
	cfg aem.Config

	insertBuf []aem.Item // unsorted, capacity capIB
	deleteBuf []aem.Item // ascending; deleteBuf[0] is the global minimum
	capIB     int
	capDB     int

	levels [][]*run
	size   int

	baseRes   int  // IB + DB reservation, held for the queue's lifetime
	framesRes int  // run-frame reservation, dropped around compaction
	framesIn  bool // whether framesRes is currently reserved
}

// run is a sorted on-disk run with a frontier cursor and a lazily loaded
// resident block frame. frameBuf is the run's owned block buffer, created
// on the first load and reused for every subsequent frontier read.
type run struct {
	vec      *aem.Vector
	consumed int // items already handed to the deletion buffer
	frame    []aem.Item
	frameBuf []aem.Item
	frameLo  int
}

// remaining returns how many items of the run are unconsumed.
func (r *run) remaining() int { return r.vec.Len() - r.consumed }

// head returns the run's smallest unconsumed item; the frame must be
// loaded.
func (r *run) head() aem.Item { return r.frame[r.consumed-r.frameLo] }

// New creates an empty queue on the machine, reserving ~3M/4 of internal
// memory (buffers + run frames) for its lifetime; Close releases it.
// Requires M ≥ 16B.
func New(ma *aem.Machine) *Queue {
	cfg := ma.Config()
	if cfg.M < 16*cfg.B {
		panic(fmt.Sprintf("pq: need M ≥ 16B, got M=%d B=%d", cfg.M, cfg.B))
	}
	q := &Queue{
		ma:    ma,
		cfg:   cfg,
		capIB: cfg.M / 8,
		capDB: cfg.M / 8,
	}
	q.baseRes = q.capIB + q.capDB
	q.framesRes = q.maxRuns() * cfg.B
	ma.Reserve(q.baseRes)
	ma.Reserve(q.framesRes)
	q.framesIn = true
	return q
}

// maxRuns is the frame budget: one resident block per live run, within
// half the memory.
func (q *Queue) maxRuns() int {
	r := q.cfg.M / (2 * q.cfg.B)
	if r < 2 {
		r = 2
	}
	return r
}

// Close releases the queue's internal memory. The queue must be empty.
func (q *Queue) Close() {
	if q.size != 0 {
		panic(fmt.Sprintf("pq: Close with %d items still queued", q.size))
	}
	q.ma.Release(q.baseRes)
	if q.framesIn {
		q.ma.Release(q.framesRes)
	}
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return q.size }

// Push inserts an item.
func (q *Queue) Push(it aem.Item) {
	// If it sorts below the current deletion-buffer maximum it must enter
	// the deletion buffer, or DeleteMin order would break.
	if len(q.deleteBuf) > 0 && aem.Less(it, q.deleteBuf[len(q.deleteBuf)-1]) {
		q.deleteBuf = insertSorted(q.deleteBuf, it)
		if len(q.deleteBuf) > q.capDB {
			last := q.deleteBuf[len(q.deleteBuf)-1]
			q.deleteBuf = q.deleteBuf[:len(q.deleteBuf)-1]
			q.pushInsertBuf(last)
		}
	} else {
		q.pushInsertBuf(it)
	}
	q.size++
}

func (q *Queue) pushInsertBuf(it aem.Item) {
	q.insertBuf = append(q.insertBuf, it)
	if len(q.insertBuf) >= q.capIB {
		q.flushInsertBuf()
	}
}

// flushInsertBuf sorts the insertion buffer and writes it as a level-0
// run, compacting levels if the run budget is exceeded.
func (q *Queue) flushInsertBuf() {
	if len(q.insertBuf) == 0 {
		return
	}
	sortItems(q.insertBuf)
	vec := aem.NewVector(q.ma, len(q.insertBuf))
	w := vec.NewWriter()
	for _, it := range q.insertBuf {
		w.Append(it)
	}
	w.Close()
	q.insertBuf = q.insertBuf[:0]
	q.addRun(0, &run{vec: vec, frameLo: -1})
	if q.totalRuns() > q.maxRuns() {
		q.compact()
	}
}

func (q *Queue) addRun(level int, r *run) {
	for len(q.levels) <= level {
		q.levels = append(q.levels, nil)
	}
	q.levels[level] = append(q.levels[level], r)
}

// compact merges each multi-run level into a single run of the next
// level, lowest level first, until the live-run count fits the frame
// budget. The run frames are dropped for the duration so MergeRuns can
// use the freed memory.
func (q *Queue) compact() {
	q.dropFrames()
	for level := 0; level < len(q.levels) && q.totalRuns() > q.maxRuns()/2; level++ {
		if len(q.levels[level]) < 2 {
			continue
		}
		vecs := make([]*aem.Vector, 0, len(q.levels[level]))
		for _, r := range q.levels[level] {
			if r.remaining() > 0 {
				vecs = append(vecs, q.suffixVector(r))
			}
		}
		q.levels[level] = nil
		if len(vecs) == 0 {
			continue
		}
		merged := sorting.MergeRuns(q.ma, vecs, sorting.MergeOptions{})
		q.addRun(level+1, &run{vec: merged, frameLo: -1})
	}
	q.ma.Reserve(q.framesRes)
	q.framesIn = true
	if q.totalRuns() > q.maxRuns() {
		panic(fmt.Sprintf("pq: %d live runs exceed budget %d after compaction", q.totalRuns(), q.maxRuns()))
	}
}

func (q *Queue) dropFrames() {
	for _, lv := range q.levels {
		for _, r := range lv {
			r.frame, r.frameLo = nil, -1
		}
	}
	if q.framesIn {
		q.ma.Release(q.framesRes)
		q.framesIn = false
	}
}

// suffixVector returns a vector of the run's unconsumed items. A
// block-aligned frontier is a free slice view; otherwise the suffix is
// copied (O(remaining/B) I/Os, amortized into the merge that needed it).
func (q *Queue) suffixVector(r *run) *aem.Vector {
	b := q.cfg.B
	if r.consumed%b == 0 {
		return r.vec.Slice(r.consumed, r.vec.Len())
	}
	out := aem.NewVector(q.ma, r.remaining())
	w := out.NewWriter()
	sc := r.vec.Slice((r.consumed/b)*b, r.vec.Len()).NewScanner()
	skip := r.consumed % b
	for {
		it, ok := sc.Next()
		if !ok {
			break
		}
		if skip > 0 {
			skip--
			continue
		}
		w.Append(it)
	}
	sc.Close()
	w.Close()
	return out
}

func (q *Queue) totalRuns() int {
	total := 0
	for _, lv := range q.levels {
		total += len(lv)
	}
	return total
}

// Min returns the smallest item without removing it.
func (q *Queue) Min() (aem.Item, bool) {
	if q.size == 0 {
		return aem.Item{}, false
	}
	q.ensureDeleteBuf()
	return q.deleteBuf[0], true
}

// DeleteMin removes and returns the smallest item.
func (q *Queue) DeleteMin() (aem.Item, bool) {
	if q.size == 0 {
		return aem.Item{}, false
	}
	q.ensureDeleteBuf()
	it := q.deleteBuf[0]
	q.deleteBuf = q.deleteBuf[1:]
	q.size--
	return it, true
}

// ensureDeleteBuf refills the deletion buffer with the capDB smallest
// unconsumed items across the insertion buffer and all run frontiers.
func (q *Queue) ensureDeleteBuf() {
	if len(q.deleteBuf) > 0 {
		return
	}
	// Fold the insertion buffer into a run so every source is sorted.
	// (At most once per capIB insertions or capDB deletions.)
	q.flushInsertBuf()

	buf := make([]aem.Item, 0, q.capDB)
	for len(buf) < q.capDB {
		var best *run
		for _, lv := range q.levels {
			for _, r := range lv {
				if r.remaining() == 0 {
					continue
				}
				q.loadFrontier(r)
				if best == nil || aem.Less(r.head(), best.head()) {
					best = r
				}
			}
		}
		if best == nil {
			break
		}
		buf = append(buf, best.head())
		best.consumed++
	}
	q.deleteBuf = buf
	if q.size > 0 && len(q.deleteBuf) == 0 {
		panic("pq: refill produced nothing despite non-empty queue")
	}
}

// loadFrontier makes sure the block containing the run's next unconsumed
// item is resident (one read when the frontier crosses a block boundary).
func (q *Queue) loadFrontier(r *run) {
	if r.frameLo >= 0 && r.consumed >= r.frameLo && r.consumed < r.frameLo+len(r.frame) {
		return
	}
	if r.frameBuf == nil {
		r.frameBuf = make([]aem.Item, 0, q.cfg.B)
	}
	r.frame, r.frameLo = r.vec.ReadBlockInto(r.consumed, r.frameBuf)
}

// insertSorted inserts it into the ascending slice.
func insertSorted(buf []aem.Item, it aem.Item) []aem.Item {
	lo, hi := 0, len(buf)
	for lo < hi {
		mid := (lo + hi) / 2
		if aem.Less(buf[mid], it) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	buf = append(buf, aem.Item{})
	copy(buf[lo+1:], buf[lo:])
	buf[lo] = it
	return buf
}

// sortItems is an in-place sort by (Key, Aux); internal computation is
// free in the model.
func sortItems(items []aem.Item) {
	if len(items) < 16 {
		for i := 1; i < len(items); i++ {
			for j := i; j > 0 && aem.Less(items[j], items[j-1]); j-- {
				items[j], items[j-1] = items[j-1], items[j]
			}
		}
		return
	}
	pivot := items[len(items)/2]
	lo, hi := 0, len(items)-1
	for lo <= hi {
		for aem.Less(items[lo], pivot) {
			lo++
		}
		for aem.Less(pivot, items[hi]) {
			hi--
		}
		if lo <= hi {
			items[lo], items[hi] = items[hi], items[lo]
			lo++
			hi--
		}
	}
	sortItems(items[:hi+1])
	sortItems(items[lo:])
}

// HeapSort sorts v by pushing every item through a Queue — the heapsort
// baseline (classic EM sequence heap on the AEM machine).
func HeapSort(ma *aem.Machine, v *aem.Vector) *aem.Vector {
	q := New(ma)
	sc := v.NewScanner()
	for {
		it, ok := sc.Next()
		if !ok {
			break
		}
		q.Push(it)
	}
	sc.Close()

	out := aem.NewVector(ma, v.Len())
	w := out.NewWriter()
	for {
		it, ok := q.DeleteMin()
		if !ok {
			break
		}
		w.Append(it)
	}
	w.Close()
	q.Close()
	return out
}
