package cli

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns everything it wrote. The pipe is drained concurrently so
// multi-table output cannot deadlock on the pipe buffer.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	defer func() {
		os.Stdout = old
		r.Close()
	}()
	fn()
	os.Stdout = old
	w.Close()
	return <-done
}

// TestShardFlagValidation: malformed or inconsistent -shard invocations
// exit 2 before running anything.
func TestShardFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"bad format", []string{"-shard", "zero/two", "-json"}},
		{"trailing garbage", []string{"-shard", "0/2x", "-json"}},
		{"extra separator", []string{"-shard", "1/2/9", "-json"}},
		{"index out of range", []string{"-shard", "2/2", "-json"}},
		{"negative index", []string{"-shard", "-1/2", "-json"}},
		{"requires json", []string{"-shard", "0/2"}},
		{"csv incompatible", []string{"-shard", "0/2", "-json", "-csv", t.TempDir()}},
		{"timing incompatible", []string{"-shard", "0/2", "-json", "-timing"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if code := benchCmd("aem bench", append([]string{"-exp", "EXP-B1"}, tc.args...)); code != 2 {
				t.Fatalf("exit code %d, want 2", code)
			}
		})
	}
}

// TestMergeCmdArgValidation: no files and unreadable files are clean
// CLI errors, not panics.
func TestMergeCmdArgValidation(t *testing.T) {
	if code := mergeCmd("aem merge", nil); code != 2 {
		t.Fatalf("no-args exit code %d, want 2", code)
	}
	if code := mergeCmd("aem merge", []string{filepath.Join(t.TempDir(), "nope.jsonl")}); code != 1 {
		t.Fatalf("missing-file exit code %d, want 1", code)
	}
}

// TestBenchShardMergeRoundTrip drives the full CLI path: two `aem bench
// -shard i/2 -json` runs, `aem merge` over the written files, and a
// byte-compare against the unsharded `aem bench` output — rendered, JSON
// and CSV forms. This is the workflow the CI shard matrix executes.
func TestBenchShardMergeRoundTrip(t *testing.T) {
	const sel = "EXP-B1,EXP-F2,EXP-P2"
	dir := t.TempDir()

	var shardPaths []string
	for i := 0; i < 2; i++ {
		out := captureStdout(t, func() {
			if code := benchCmd("aem bench", []string{"-exp", sel, "-shard", []string{"0/2", "1/2"}[i], "-json", "-par", "2"}); code != 0 {
				t.Errorf("shard %d exit code %d", i, code)
			}
		})
		p := filepath.Join(dir, []string{"s0.jsonl", "s1.jsonl"}[i])
		if err := os.WriteFile(p, out, 0o644); err != nil {
			t.Fatal(err)
		}
		shardPaths = append(shardPaths, p)
	}

	singleDir, mergedDir := filepath.Join(dir, "single"), filepath.Join(dir, "merged")
	single := captureStdout(t, func() {
		if code := benchCmd("aem bench", []string{"-exp", sel, "-par", "2", "-csv", singleDir}); code != 0 {
			t.Errorf("unsharded exit code %d", code)
		}
	})
	merged := captureStdout(t, func() {
		if code := mergeCmd("aem merge", append([]string{"-csv", mergedDir}, shardPaths...)); code != 0 {
			t.Errorf("merge exit code %d", code)
		}
	})
	if !bytes.Equal(single, merged) {
		t.Fatalf("merged CLI output differs from unsharded:\n--- single ---\n%s\n--- merged ---\n%s", single, merged)
	}

	singleJSON := captureStdout(t, func() {
		benchCmd("aem bench", []string{"-exp", sel, "-par", "2", "-json"})
	})
	mergedJSON := captureStdout(t, func() {
		mergeCmd("aem merge", append([]string{"-json"}, shardPaths...))
	})
	if !bytes.Equal(singleJSON, mergedJSON) {
		t.Fatal("merged -json output differs from unsharded -json")
	}

	entries, err := os.ReadDir(singleDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("unsharded run wrote no CSVs")
	}
	for _, e := range entries {
		a, err := os.ReadFile(filepath.Join(singleDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(mergedDir, e.Name()))
		if err != nil {
			t.Fatalf("merged run missing CSV %s: %v", e.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("CSV %s differs between unsharded and merged runs", e.Name())
		}
	}
}
