package bounds

import (
	"testing"

	"repro/internal/aem"
	"repro/internal/dict"
)

// TestDictFanoutMatchesImplementation pins the predictor's replica of the
// buffer tree's fan-out choice to the implementation, so the two cannot
// drift silently.
func TestDictFanoutMatchesImplementation(t *testing.T) {
	for _, cfg := range []aem.Config{
		{M: 64, B: 8, Omega: 1},
		{M: 256, B: 16, Omega: 16},
		{M: 32, B: 1, Omega: 8},
		{M: 128, B: 8, Omega: 64},
		{M: 1024, B: 32, Omega: 4},
	} {
		got := dict.NewBufferTree(aem.New(cfg)).Fanout()
		if want := DictFanout(cfg); got != want {
			t.Errorf("cfg %+v: implementation fan-out %d != predictor %d", cfg, got, want)
		}
	}
}

// TestDictPredictionsPositive sanity-checks the formulas across corners:
// predictions must be positive and finite, and more update traffic must
// never predict less write I/O.
func TestDictPredictionsPositive(t *testing.T) {
	base := DictParams{
		Params:       Params{N: 10000, Cfg: aem.Config{M: 256, B: 16, Omega: 8}},
		Updates:      6000,
		Keyspace:     4096,
		QueryBatches: [][]int64{{1, 2, 3}, {500, 501}},
	}
	small := DictBufferTreePredicted(base)
	if small.Reads <= 0 || small.Writes <= 0 {
		t.Fatalf("degenerate prediction %+v", small)
	}
	more := base
	more.Updates *= 4
	big := DictBufferTreePredicted(more)
	if big.Writes < small.Writes {
		t.Errorf("quadrupling updates decreased predicted writes: %.0f → %.0f", small.Writes, big.Writes)
	}
	bt := DictBTreePredicted(base)
	if bt.Writes < float64(base.Updates) {
		t.Errorf("B-tree predicted writes %.0f below one per update", bt.Writes)
	}
}

// TestDictStallPredictions pins the deamortization story the EXP-L3
// column tells: one node-flush (deamortized worst stall) is predicted to
// cost a fraction of a full cascade + rebuild (amortized worst stall) at
// every ω, and the amortized stall grows with ω — the deferral knob
// concentrates ever more work into the pause.
func TestDictStallPredictions(t *testing.T) {
	params := func(omega int) DictParams {
		return DictParams{
			Params:   Params{N: 100000, Cfg: aem.Config{M: 128, B: 16, Omega: omega}},
			Updates:  70000,
			Keyspace: 4096,
		}
	}
	prevAmort := 0.0
	for _, omega := range []int{1, 4, 16, 64} {
		p := params(omega)
		amort := DictAmortizedStallPredicted(p).Cost(omega)
		deam := DictDeamortizedStallPredicted(p).Cost(omega)
		if amort <= 0 || deam <= 0 {
			t.Fatalf("ω=%d: degenerate stall predictions amort=%.0f deam=%.0f", omega, amort, deam)
		}
		if 2*deam > amort {
			t.Errorf("ω=%d: deamortized stall %.0f not well below amortized %.0f", omega, deam, amort)
		}
		if amort <= prevAmort {
			t.Errorf("ω=%d: amortized stall %.0f did not grow from %.0f", omega, amort, prevAmort)
		}
		prevAmort = amort
	}
}
