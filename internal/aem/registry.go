package aem

import (
	"fmt"
	"os"
	"strings"
)

// This file is the single place engine names mean something. The CLI, the
// harness's backend axis and the machine pool used to each carry their
// own name→constructor switch (and their own "unknown engine" error);
// they all consume this registry now, so a new engine is one entry here
// and every layer — flags, grid axes, pooling policy — picks it up with
// its capability flags attached.

// Engine is one registered storage engine: its name, a one-line summary
// for help text, its capability flags (available without constructing,
// so grid pruning and pooling policy never instantiate an engine just to
// ask), and its constructor.
type Engine struct {
	Name    string
	Summary string
	Caps    StorageCaps
	// New constructs a fresh engine for blocks of blockSize items.
	// RAM engines cannot fail; the file engines can (no temp space,
	// exhausted descriptors).
	New func(blockSize int) (Storage, error)
}

// FileDirEnv names the environment variable that overrides where the
// registry's file engines put their backing temp files (default:
// os.TempDir()). Point it at a mounted device to measure that device.
const FileDirEnv = "AEM_FILE_DIR"

var fileCaps = StorageCaps{RetainsData: true, Persistent: true}

// engineTable is the registry, in help order. File engines are built over
// registry-owned temp files (removed on Close) under FileDirEnv.
var engineTable = []Engine{
	{
		Name:    "slice",
		Summary: "reference engine: one Go slice per block",
		Caps:    StorageCaps{RetainsData: true},
		New:     func(int) (Storage, error) { return NewSliceStorage(), nil },
	},
	{
		Name:    "arena",
		Summary: "one flat arena: costed reads are single copies, 0 allocs/op",
		Caps:    StorageCaps{RetainsData: true},
		New:     func(b int) (Storage, error) { return NewArenaStorage(b), nil },
	},
	{
		Name:    "counting",
		Summary: "no data plane: pure Q accounting for data-oblivious programs",
		Caps:    StorageCaps{},
		New:     func(int) (Storage, error) { return NewCountingStorage(), nil },
	},
	{
		Name:    "file",
		Summary: "file-backed external memory via mmap (temp file under $" + FileDirEnv + ", removed on Close)",
		Caps:    fileCaps,
		New: func(b int) (Storage, error) {
			return NewTempFileStorage(os.Getenv(FileDirEnv), b, FileMmap)
		},
	},
	{
		Name:    "file-direct",
		Summary: "file-backed external memory via O_DIRECT positional I/O where supported (buffered fallback otherwise)",
		Caps:    StorageCaps{RetainsData: true, Persistent: true, BlockAlign: directAlign},
		New: func(b int) (Storage, error) {
			return NewTempFileStorage(os.Getenv(FileDirEnv), b, FileDirect)
		},
	},
}

// Engines returns the registry in help order.
func Engines() []Engine { return engineTable }

// EngineNames returns the registered names in help order.
func EngineNames() []string {
	names := make([]string, len(engineTable))
	for i, e := range engineTable {
		names[i] = e.Name
	}
	return names
}

// EngineByName resolves a registered engine.
func EngineByName(name string) (Engine, bool) {
	for _, e := range engineTable {
		if e.Name == name {
			return e, true
		}
	}
	return Engine{}, false
}

// StorageByName constructs a fresh engine by registry name — the one
// engine-construction entry point the CLI, harness and backend axis
// share. Unknown names produce the one canonical error, which lists
// every valid name.
func StorageByName(name string, blockSize int) (Storage, error) {
	e, ok := EngineByName(name)
	if !ok {
		return nil, fmt.Errorf("aem: unknown storage engine %q (valid: %s)",
			name, strings.Join(EngineNames(), ", "))
	}
	return e.New(blockSize)
}
