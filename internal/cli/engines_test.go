package cli

import (
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/aem"
)

// captureStderr runs fn with os.Stderr redirected and returns everything
// it wrote — the counterpart of captureStdout for error diagnostics and
// the gate's -json human table.
func captureStderr(t *testing.T, fn func()) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	defer func() {
		os.Stderr = old
		r.Close()
	}()
	fn()
	os.Stderr = old
	w.Close()
	return <-done
}

// TestEnginesCmdListsRegistry: `aem engines` prints every registered
// engine with its caps — the registry made visible.
func TestEnginesCmdListsRegistry(t *testing.T) {
	var code int
	out := string(captureStdout(t, func() { code = enginesCmd("aem engines", nil) }))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range aem.EngineNames() {
		if !strings.Contains(out, name) {
			t.Errorf("engine %q missing from listing:\n%s", name, out)
		}
	}
}

// TestDictUnknownEngineListsValidNames pins the collapsed switch: the
// dict command resolves -engine through the aem registry, so an unknown
// name produces the one canonical error, which names every valid engine.
func TestDictUnknownEngineListsValidNames(t *testing.T) {
	var code int
	msg := string(captureStderr(t, func() {
		code = dictCmd("aem dict", []string{"-ops", "10", "-engine", "flash-drive"})
	}))
	if code != 2 {
		t.Fatalf("unknown engine exit %d, want 2", code)
	}
	if !strings.Contains(msg, `"flash-drive"`) {
		t.Errorf("error does not name the bad engine:\n%s", msg)
	}
	for _, name := range aem.EngineNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list valid engine %q:\n%s", name, msg)
		}
	}
}

// TestDictRejectsDataFreeEngine: a value-dependent dictionary cannot run
// on an engine without a data plane; the caps flag, not the name, drives
// the rejection.
func TestDictRejectsDataFreeEngine(t *testing.T) {
	var code int
	msg := string(captureStderr(t, func() {
		code = dictCmd("aem dict", []string{"-ops", "10", "-engine", "counting"})
	}))
	if code != 2 {
		t.Fatalf("counting engine exit %d, want 2", code)
	}
	if !strings.Contains(msg, "data plane") {
		t.Errorf("rejection does not explain the missing capability:\n%s", msg)
	}
}

// TestDictRunsOnFileEngine: the dictionary drives end-to-end on
// file-backed external memory through the same flag.
func TestDictRunsOnFileEngine(t *testing.T) {
	t.Setenv(aem.FileDirEnv, t.TempDir())
	var code int
	out := string(captureStdout(t, func() {
		code = dictCmd("aem dict", []string{"-ops", "500", "-keyspace", "100", "-engine", "file"})
	}))
	if code != 0 {
		t.Fatalf("dict on file engine exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "file engine") || !strings.Contains(out, "buffertree") {
		t.Errorf("output does not show a file-backed run:\n%s", out)
	}
	entries, err := os.ReadDir(os.Getenv(aem.FileDirEnv))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("%d backing files leaked after the run", len(entries))
	}
}
