package cli

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/harness"
)

// serveCmd runs the fleet coordinator: it enumerates the selection's
// global point list, leases point batches to `aem work -connect` workers
// over HTTP, ingests the PointRecords they stream back (first complete
// record per point wins; speculative and post-expiry duplicates are
// discarded), and writes the accepted records as a single 1-of-1 shard
// stream that `aem merge` renders into the usual tables.
//
//	aem serve -addr 127.0.0.1:8377 -o fleet.jsonl     serve every experiment
//	aem serve -exp EXP-D1,EXP-Q1 -o fleet.jsonl       serve a selection
//	aem merge fleet.jsonl                              render the finished run
//
// Worker death is absorbed by lease expiry (-lease-ttl): an unrenewed
// lease's points return to the queue. Stragglers are absorbed by
// speculation: when the queue drains, idle workers re-run outstanding
// points. On SIGINT/SIGTERM the partial output is flushed and kept —
// `aem merge -residual rest.json fleet.jsonl` then writes the resume
// spec for `aem work -residual`.
func serveCmd(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8377", "address to listen on")
		expIDs  = fs.String("exp", "all", "comma-separated experiment ids to serve, or 'all'")
		outPath = fs.String("o", "", "record stream output file ('-' or empty for stdout)")
		ttl     = fs.Duration("lease-ttl", 15*time.Second, "lease expiry: a worker silent this long forfeits its points")
		chunk   = fs.Int("chunk", 8, "grid points per lease")
		linger  = fs.Duration("linger", 3*time.Second, "how long to keep answering done-polls after the run completes")
		quiet   = fs.Bool("q", false, "suppress progress logging")
	)
	fs.Parse(args)

	specs, warnings, err := harness.Select(*expIDs)
	for _, w := range warnings {
		fail(prog, "warning: %s", w)
	}
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}

	out := os.Stdout
	if *outPath != "" && *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(prog, "%v", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	var logw = os.Stderr
	if *quiet {
		logw = nil
	}

	c, err := fleet.New(fleet.Config{
		Specs: specs, Out: out, LeaseTTL: *ttl, Chunk: *chunk,
		Log: logWriter(logw),
	})
	if err != nil {
		fail(prog, "%v", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(prog, "%v", err)
		return 1
	}
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	_, total := c.Progress()
	fmt.Fprintf(os.Stderr, "%s: serving %d grid points across %d experiments on %s\n", prog, total, len(specs), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case <-c.Done():
		// Let workers still polling (or mid-upload on a lost speculative
		// race) observe completion before the listener goes away.
		time.Sleep(*linger)
		if err := c.Flush(); err != nil {
			fail(prog, "%v", err)
			return 1
		}
		filled, total := c.Progress()
		fmt.Fprintf(os.Stderr, "%s: complete — %d/%d points recorded\n", prog, filled, total)
		if failed := c.Failed(); failed > 0 {
			fail(prog, "%d point(s) panicked; the failures are recorded in the output and will surface at merge", failed)
			return 1
		}
		return 0
	case <-c.Fatal():
		fail(prog, "output stream failed: %v", c.Flush())
		return 1
	case s := <-sig:
		if err := c.Flush(); err != nil {
			fail(prog, "flushing partial output: %v", err)
		}
		filled, total := c.Progress()
		fail(prog, "%v: interrupted with %d/%d points recorded; resume with `aem merge -residual rest.json %s` then `aem work -residual rest.json`",
			s, filled, total, outName(*outPath))
		return 1
	}
}

// outName renders the output path for the resume hint.
func outName(path string) string {
	if path == "" || path == "-" {
		return "<output>"
	}
	return path
}

// logWriter narrows an *os.File to the nil interface the fleet expects
// when logging is off (a typed-nil *os.File is not a nil io.Writer).
func logWriter(f *os.File) interface{ Write([]byte) (int, error) } {
	if f == nil {
		return nil
	}
	return f
}
