package aem

import (
	"fmt"
	"os"
	"unsafe"
)

// This file is the real-I/O storage engine: one file as the external
// memory. Every other engine in the repository is RAM-backed, so wall
// clock measures simulator overhead; with FileStorage the same algorithms
// run against an actual block device and wall clock becomes a measurement
// of the device — the experiment the paper could not run (regressing
// measured time on Q = Qr + ω·Qw to fit the device's effective ω lives in
// bounds.FitOmega and the EXP-IO specs).
//
// Block a occupies the byte range [a·stride, (a+1)·stride) of the file;
// live lengths are a RAM side table, exactly as in ArenaStorage. Two I/O
// modes share the layout:
//
//   - FileMmap (default): the file is mapped read/write and transfers are
//     memcpys against the mapping. The page cache absorbs traffic, so
//     this measures a cached device — still real dirty-page writeback,
//     but reads served from RAM after first touch.
//   - FileDirect: transfers are ReadAt/WriteAt on a descriptor opened
//     with O_DIRECT where the platform and filesystem support it, with
//     stride, offsets and the transfer buffer aligned to directAlign so
//     the kernel's direct-I/O constraints hold. Where O_DIRECT is
//     unavailable (non-Linux, or tmpfs) the engine degrades to buffered
//     positional I/O and reports Direct() == false.
//
// Storage I/O failures panic: the machine's Read/Write signatures are
// error-free by design (an algorithm cannot meaningfully continue on a
// half-read block), so a failing device is an assertion failure like an
// out-of-range address, not a recoverable condition.

// FileMode selects how FileStorage moves bytes between RAM and the file.
type FileMode int

const (
	// FileMmap maps the file and serves transfers as memcpys.
	FileMmap FileMode = iota
	// FileDirect uses positional read/write syscalls, with O_DIRECT when
	// the platform and filesystem support it.
	FileDirect
)

// String returns "mmap" or "direct".
func (m FileMode) String() string {
	if m == FileMmap {
		return "mmap"
	}
	return "direct"
}

// itemSize is the on-disk size of one Item: two little-endian-native
// int64s. The file format is the in-memory representation, so the file is
// scratch external memory for one run on one machine, not an interchange
// format.
const itemSize = int(unsafe.Sizeof(Item{}))

// directAlign is the slot alignment of the direct mode: 4096 covers the
// logical block size of every common device and the page-alignment
// O_DIRECT wants for buffers and offsets.
const directAlign = 4096

// FileStorage is the file-backed engine. It is open from construction;
// Close releases the mapping and descriptor (and removes the file when
// the engine owns it, as registry-built temp engines do).
type FileStorage struct {
	f    *os.File
	path string
	own  bool // remove path on Close

	b      int   // block capacity in items
	stride int64 // bytes per block slot in the file
	lens   []int32

	useMmap bool
	direct  bool // O_DIRECT actually engaged
	capBlk  int  // block slots the file is currently sized for
	mm      []byte
	xfer    []byte // aligned full-stride transfer buffer (non-mmap path)
	closed  bool
}

// NewFileStorage creates (truncating) the file at path and returns an
// open engine over it for blocks of at most blockSize items. The caller
// keeps ownership of the path: Close releases the descriptor but leaves
// the file behind.
func NewFileStorage(path string, blockSize int, mode FileMode) (*FileStorage, error) {
	if blockSize < 1 {
		return nil, fmt.Errorf("aem: NewFileStorage(%q, %d): need blockSize ≥ 1", path, blockSize)
	}
	s := &FileStorage{path: path, b: blockSize}
	s.stride = int64(blockSize * itemSize)
	switch mode {
	case FileMmap:
		s.useMmap = mmapSupported
	case FileDirect:
		// Direct transfers must be directAlign-sized and -aligned, so
		// every slot is padded to the alignment; small-B machines trade
		// (sparse) file space for legal O_DIRECT transfers.
		s.stride = (s.stride + directAlign - 1) / directAlign * directAlign
	default:
		return nil, fmt.Errorf("aem: NewFileStorage(%q): unknown mode %d", path, int(mode))
	}

	flags := os.O_RDWR | os.O_CREATE | os.O_TRUNC
	var err error
	if mode == FileDirect && directOpenFlag != 0 {
		s.f, err = os.OpenFile(path, flags|directOpenFlag, 0o644)
		s.direct = err == nil
	}
	if s.f == nil {
		// Buffered fallback: first open attempt, or the filesystem (e.g.
		// tmpfs) rejected O_DIRECT.
		s.f, err = os.OpenFile(path, flags, 0o644)
	}
	if err != nil {
		return nil, fmt.Errorf("aem: NewFileStorage: %w", err)
	}
	if !s.useMmap {
		// Aligned scratch buffer for the positional path: over-allocate
		// and slice to a directAlign boundary so O_DIRECT accepts it.
		raw := make([]byte, s.stride+directAlign)
		off := directAlign - int(uintptr(unsafe.Pointer(&raw[0]))%directAlign)
		s.xfer = raw[off : off+int(s.stride)]
	}
	return s, nil
}

// NewTempFileStorage creates an engine over a fresh temp file in dir
// (os.TempDir() when dir is empty) that is removed on Close — the
// construction the engine registry and the harness pool use, so a grid
// point's external memory vanishes with the point.
func NewTempFileStorage(dir string, blockSize int, mode FileMode) (*FileStorage, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "aem-file-*.em")
	if err != nil {
		return nil, fmt.Errorf("aem: NewTempFileStorage: %w", err)
	}
	path := f.Name()
	f.Close()
	s, err := NewFileStorage(path, blockSize, mode)
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	s.own = true
	return s, nil
}

// Path returns the backing file's path.
func (s *FileStorage) Path() string { return s.path }

// Direct reports whether O_DIRECT transfers actually engaged (false in
// mmap mode, on non-Linux platforms, and on filesystems that reject it).
func (s *FileStorage) Direct() bool { return s.direct }

// Mapped reports whether the engine serves transfers through a mapping.
func (s *FileStorage) Mapped() bool { return s.useMmap }

// BlockSize returns the engine's fixed per-block item capacity, letting
// NewWithStorage reject machines whose B exceeds it.
func (s *FileStorage) BlockSize() int { return s.b }

// Stride returns the byte span of one block slot in the file.
func (s *FileStorage) Stride() int64 { return s.stride }

// Alloc implements Storage. Growing is an ftruncate (sparse, so untouched
// slots cost no disk) plus, in mmap mode, a remap; capacity doubles so
// steady-state allocation is amortized O(1) remaps.
func (s *FileStorage) Alloc(count int) Addr {
	s.mustOpen("Alloc")
	base := Addr(len(s.lens))
	s.lens = append(s.lens, make([]int32, count)...)
	if need := len(s.lens); need > s.capBlk {
		capBlk := s.capBlk * 2
		if capBlk < need {
			capBlk = need
		}
		if capBlk < 16 {
			capBlk = 16
		}
		s.grow(capBlk)
	}
	return base
}

// grow resizes the file to capBlk slots and refreshes the mapping.
func (s *FileStorage) grow(capBlk int) {
	if err := s.unmap(); err != nil {
		panic(fmt.Sprintf("aem: file engine %s: unmap before grow: %v", s.path, err))
	}
	if err := s.f.Truncate(int64(capBlk) * s.stride); err != nil {
		panic(fmt.Sprintf("aem: file engine %s: grow to %d blocks: %v", s.path, capBlk, err))
	}
	s.capBlk = capBlk
	if s.useMmap {
		mm, err := mmapFile(s.f, int(int64(capBlk)*s.stride))
		if err != nil {
			panic(fmt.Sprintf("aem: file engine %s: map %d blocks: %v", s.path, capBlk, err))
		}
		s.mm = mm
	}
}

// unmap drops the current mapping, if any.
func (s *FileStorage) unmap() error {
	if s.mm == nil {
		return nil
	}
	mm := s.mm
	s.mm = nil
	return munmapFile(mm)
}

// NumBlocks implements Storage.
func (s *FileStorage) NumBlocks() int { return len(s.lens) }

// Len implements Storage.
func (s *FileStorage) Len(a Addr) int { return int(s.lens[a]) }

// ReadInto implements Storage.
func (s *FileStorage) ReadInto(a Addr, dst []Item) []Item {
	n := int(s.lens[a])
	dst = sizedDst(dst, n)
	if n == 0 {
		return dst
	}
	off := int64(a) * s.stride
	if s.useMmap {
		copy(itemBytes(dst), s.mm[off:off+int64(n*itemSize)])
		return dst
	}
	want := n * itemSize
	span := want
	if s.direct {
		span = int(s.stride) // O_DIRECT length must stay aligned
	}
	if _, err := s.f.ReadAt(s.xfer[:span], off); err != nil {
		panic(fmt.Sprintf("aem: file engine %s: read block %d: %v", s.path, a, err))
	}
	copy(itemBytes(dst), s.xfer[:want])
	return dst
}

// Write implements Storage.
func (s *FileStorage) Write(a Addr, items []Item) {
	s.mustOpen("Write")
	if len(items) > s.b {
		panic(fmt.Sprintf("aem: file Write(%d): %d items exceed block capacity %d", a, len(items), s.b))
	}
	off := int64(a) * s.stride
	n := len(items) * itemSize
	if s.useMmap {
		copy(s.mm[off:], itemBytes(items))
	} else {
		span := n
		if s.direct {
			// Full-slot transfer: pad the tail with zeros rather than
			// leak whatever the scratch buffer last held to disk.
			span = int(s.stride)
			for i := n; i < span; i++ {
				s.xfer[i] = 0
			}
		}
		copy(s.xfer, itemBytes(items))
		if _, err := s.f.WriteAt(s.xfer[:span], off); err != nil {
			panic(fmt.Sprintf("aem: file engine %s: write block %d: %v", s.path, a, err))
		}
	}
	s.lens[a] = int32(len(items))
}

// Reset implements Storage: the Reset contract for a stateful engine is
// truncate, not leak — the file shrinks to zero bytes, so a recycled
// engine cannot serve (or keep paying disk for) a previous run's blocks.
// The next Alloc re-extends the file; newly extended regions read as
// zeros, which is exactly the fresh-engine behavior the conformance suite
// demands.
func (s *FileStorage) Reset() {
	s.mustOpen("Reset")
	if err := s.unmap(); err != nil {
		panic(fmt.Sprintf("aem: file engine %s: unmap on Reset: %v", s.path, err))
	}
	if err := s.f.Truncate(0); err != nil {
		panic(fmt.Sprintf("aem: file engine %s: truncate on Reset: %v", s.path, err))
	}
	s.lens = s.lens[:0]
	s.capBlk = 0
}

// Caps implements Storage: data-bearing, persistent, and slot-aligned in
// direct mode.
func (s *FileStorage) Caps() StorageCaps {
	align := 0
	if !s.useMmap {
		align = directAlign
	}
	return StorageCaps{RetainsData: true, Persistent: true, BlockAlign: align}
}

// Sync implements Storage: flush written blocks to the device. fsync
// covers dirty pages of a shared mapping too, so both modes are durable
// after Sync returns.
func (s *FileStorage) Sync() error {
	s.mustOpen("Sync")
	return s.f.Sync()
}

// Close implements Storage: unmap, release the descriptor, and remove
// the file when the engine owns it. Idempotent.
func (s *FileStorage) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.unmap()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if s.own {
		if rerr := os.Remove(s.path); err == nil {
			err = rerr
		}
	}
	return err
}

func (s *FileStorage) mustOpen(op string) {
	if s.closed {
		panic(fmt.Sprintf("aem: file engine %s: %s after Close", s.path, op))
	}
}

// itemBytes reinterprets an Item slice as its backing bytes — the
// transfer path's zero-copy bridge between the typed world and the file.
func itemBytes(items []Item) []byte {
	if len(items) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&items[0])), len(items)*itemSize)
}
