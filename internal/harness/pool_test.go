package harness

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/aem"
	"repro/internal/rng"
)

// poolWorkload is a small data-bearing point: load, scan, write back,
// returning the accounting row a spec would.
func poolWorkload(ma *aem.Machine, n int) Row {
	items := make([]aem.Item, n)
	for i := range items {
		items[i] = aem.Item{Key: int64(n - i), Aux: int64(i)}
	}
	v := aem.Load(ma, items)
	out := aem.NewVector(ma, n)
	sc := v.NewScanner()
	w := out.NewWriter()
	for {
		it, ok := sc.Next()
		if !ok {
			break
		}
		w.Append(it)
	}
	sc.Close()
	w.Close()
	st := ma.Stats()
	return Row{st.Reads, st.Writes, ma.Cost(), ma.MemPeak(), ma.NumBlocks()}
}

// TestPooledMachineMatchesFresh runs the same workload on pooled and
// freshly constructed machines, interleaved so pool hits actually occur,
// and demands identical rows: pooling must be invisible in every cell.
func TestPooledMachineMatchesFresh(t *testing.T) {
	t.Setenv(aem.FileDirEnv, t.TempDir())
	for _, backend := range []string{"slice", "arena", "counting", "file", "file-direct"} {
		t.Run(backend, func(t *testing.T) {
			for round := 0; round < 4; round++ {
				cfg := aem.Config{M: 64, B: 8, Omega: 1 + round}
				n := 100 + 17*round
				ma, release := PooledMachine(cfg, backend)
				got := poolWorkload(ma, n)
				release()
				fresh := backendMachine(cfg, backend)
				want := poolWorkload(fresh, n)
				fresh.Close()
				for c := range want {
					if got[c] != want[c] {
						t.Fatalf("round %d cell %d: pooled %v, fresh %v", round, c, got[c], want[c])
					}
				}
			}
		})
	}
}

// TestPooledMachineRejectsOversizedB pins the stride guard through the
// pool: an arena pooled at B=8 must never be recycled into a B=16 point —
// the pool key includes B precisely so this cannot happen, and a fresh
// request at the larger B constructs a matching engine instead.
func TestPooledMachineRejectsOversizedB(t *testing.T) {
	small := aem.Config{M: 64, B: 8, Omega: 1}
	ma, release := PooledMachine(small, "arena")
	release()
	big := aem.Config{M: 64, B: 16, Omega: 1}
	ma2, release2 := PooledMachine(big, "arena")
	defer release2()
	if ma2 == ma {
		t.Fatal("pool returned a B=8 arena for a B=16 point")
	}
	if ma2.Config().B != 16 {
		t.Fatalf("pooled machine has B=%d, want 16", ma2.Config().B)
	}
}

// TestPooledMachineReleaseIdempotent pins the double-release fix: a
// release called twice (an easy slip in a defer-heavy point function)
// must put the machine into the pool once, not twice — a double Put
// lets two subsequent gets hand the same arena to two concurrent grid
// points. Uses its own pool key (slice, B=32) so other tests' pools
// can't mask the duplicate.
func TestPooledMachineReleaseIdempotent(t *testing.T) {
	cfg := aem.Config{M: 64, B: 32, Omega: 1}
	_, release := PooledMachine(cfg, "slice")
	release()
	release() // second call must be a no-op
	a, relA := PooledMachine(cfg, "slice")
	defer relA()
	b, relB := PooledMachine(cfg, "slice")
	defer relB()
	if a == b {
		t.Fatal("double release put the machine into the pool twice: two live gets share one machine")
	}
}

// TestPooledMachineDoubleReleaseRace hammers the double-release path
// from many goroutines under -race: every held machine must be
// exclusively held, even though each holder releases twice. Before the
// fix this aliases one arena across goroutines, which -race reports as
// concurrent writes inside poolWorkload. Uses its own pool key
// (arena, B=24).
func TestPooledMachineDoubleReleaseRace(t *testing.T) {
	cfg := aem.Config{M: 64, B: 24, Omega: 1}
	var mu sync.Mutex
	held := make(map[*aem.Machine]int)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ma, release := PooledMachine(cfg, "arena")
				mu.Lock()
				held[ma]++
				if held[ma] > 1 {
					t.Errorf("machine handed to %d holders at once", held[ma])
				}
				mu.Unlock()
				poolWorkload(ma, 60)
				mu.Lock()
				held[ma]--
				mu.Unlock()
				release()
				release() // racing double release must stay inert
			}
		}()
	}
	wg.Wait()
}

// TestRunPooledParByteIdentity extends the scheduler's byte-identity
// property test to pooled machines: a grid whose points draw from the
// pool — data-bearing and counting backends, bulk and per-op paths —
// must emit identical bytes at every parallelism level, even though pool
// hit patterns differ per run and per worker count.
func TestRunPooledParByteIdentity(t *testing.T) {
	mkSpec := func() *Spec {
		return &Spec{
			ID:    "POOLGRID",
			Title: "pooled machines across backends",
			Axes: []Axis{
				{Name: "backend", Values: backendNames},
				{Name: "omega", Values: Ints(1, 4, 9)},
				{Name: "n", Values: Ints(64, 100, 200)},
			},
			Columns: Cols("backend", "omega", "n", "reads", "writes", "cost", "mem peak", "blocks"),
			Point: func(p Point) Row {
				cfg := aem.Config{M: 64, B: 8, Omega: p.Int("omega")}
				ma, release := PooledMachine(cfg, p.Str("backend"))
				defer release()
				row := poolWorkload(ma, p.Int("n"))
				return append(Row{p.Str("backend"), p.Int("omega"), p.Int("n")}, row...)
			},
		}
	}
	want, failure := runQuiet([]*Spec{mkSpec()}, 1)
	if failure != "" {
		t.Fatalf("serial pooled run failed: %s", failure)
	}
	r := rng.New(7)
	for trial := 0; trial < 8; trial++ {
		par := 2 + int(r.Intn(15))
		got, failure := runQuiet([]*Spec{mkSpec()}, par)
		if failure != "" {
			t.Fatalf("par=%d pooled run failed: %s", par, failure)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("par=%d: pooled output differs from par=1", par)
		}
	}
}
