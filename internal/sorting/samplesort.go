package sorting

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/rng"
)

// EMSampleSort is a distribution (sample) sort baseline in the classic
// external-memory style: sample splitters, partition the input into
// f = Θ(m) buckets with one in-memory buffer block per bucket, and
// recurse. Cost Θ((1+ω)·n·log_m n) — like the symmetric mergesort, it
// pays full writes on every level, so it is a second independent baseline
// for the Section 3 comparison.
//
// The paper's §1.1 notes that the *write-efficient* sample sort of
// Blelloch et al. [7] achieves O(ω·n·log_{ωm} n) unconditionally; that
// construction's details are not in this paper and are out of scope here
// (see README.md, "Scope") — the ω-optimal sorter in this repository is the §3
// mergesort. This baseline's fanout is memory-bound (one block buffer per
// bucket), which is precisely why a distribution sort cannot reach ωm-way
// fanout naively: ωm bucket buffers would need ωM > M memory.
//
// Requires M ≥ 8B. The sort is deterministic given seed.
func EMSampleSort(ma *aem.Machine, v *aem.Vector, seed uint64) *aem.Vector {
	cfg := ma.Config()
	if cfg.M < 8*cfg.B {
		panic(fmt.Sprintf("sorting: EMSampleSort needs M ≥ 8B, got M=%d B=%d", cfg.M, cfg.B))
	}
	rng := rng.New(seed)
	return sampleSortRec(ma, v, rng, 0)
}

// maxSampleDepth guards against adversarial samples; beyond it the
// recursion falls back to the mergesort (never triggered on random data,
// verified by tests).
const maxSampleDepth = 64

func sampleSortRec(ma *aem.Machine, v *aem.Vector, rng *rng.RNG, depth int) *aem.Vector {
	cfg := ma.Config()
	if v.Len() <= cfg.M/2 {
		return emSortChunk(ma, v)
	}
	if depth > maxSampleDepth {
		return MergeSort(ma, v)
	}

	// Fanout: one buffer block per bucket plus scan/writer frames, and a
	// sample of 4f items in half the memory.
	f := cfg.BlocksInMemory() - 4
	if f > cfg.M/8 {
		f = cfg.M / 8
	}
	if f < 2 {
		f = 2
	}

	splitters := pickSplitters(ma, v, rng, f)

	// Pass 1: count bucket sizes (one scan).
	counts := make([]int, f)
	ma.Reserve(f) // counts + splitters live in memory during the passes
	sc := v.NewScanner()
	for {
		it, ok := sc.Next()
		if !ok {
			break
		}
		counts[bucketOf(splitters, it)]++
	}
	sc.Close()

	// Pass 2: distribute into per-bucket vectors (one scan, one buffered
	// writer per non-empty bucket — at most f·B ≤ M − 4B memory).
	buckets := make([]*aem.Vector, f)
	writers := make([]*aem.Writer, f)
	for j, c := range counts {
		buckets[j] = aem.NewVector(ma, c)
		if c > 0 {
			writers[j] = buckets[j].NewWriter()
		}
	}
	sc = v.NewScanner()
	for {
		it, ok := sc.Next()
		if !ok {
			break
		}
		writers[bucketOf(splitters, it)].Append(it)
	}
	sc.Close()
	for _, w := range writers {
		if w != nil {
			w.Close()
		}
	}
	ma.Release(f)

	// Recurse with no reservations held (a writer kept open across the
	// recursion would stack one block frame per depth level), then
	// concatenate the sorted buckets with a single scan.
	sorted := make([]*aem.Vector, 0, f)
	for j := range buckets {
		if counts[j] > 0 {
			sorted = append(sorted, sampleSortRec(ma, buckets[j], rng, depth+1))
		}
	}
	out := aem.NewVector(ma, v.Len())
	ow := out.NewWriter()
	for _, sv := range sorted {
		bs := sv.NewScanner()
		for {
			it, ok := bs.Next()
			if !ok {
				break
			}
			ow.Append(it)
		}
		bs.Close()
	}
	ow.Close()
	return out
}

// pickSplitters samples 4f items (4f block reads, 4f ≤ M/2 memory), sorts
// them in memory, and returns f−1 evenly spaced splitters.
func pickSplitters(ma *aem.Machine, v *aem.Vector, rng *rng.RNG, f int) []aem.Item {
	s := 4 * f
	if s > v.Len() {
		s = v.Len()
	}
	ma.Reserve(s)
	sample := make([]aem.Item, 0, s)
	frame := make([]aem.Item, 0, ma.Config().B)
	for i := 0; i < s; i++ {
		blk, _ := v.ReadBlockInto(rng.Intn(v.Len()), frame)
		sample = append(sample, blk[rng.Intn(len(blk))])
	}
	sortItems(sample)
	splitters := make([]aem.Item, 0, f-1)
	for j := 1; j < f; j++ {
		splitters = append(splitters, sample[j*len(sample)/f])
	}
	ma.Release(s)
	return splitters
}

// bucketOf returns the index of the first splitter greater than it (items
// equal to a splitter go left), via binary search.
func bucketOf(splitters []aem.Item, it aem.Item) int {
	lo, hi := 0, len(splitters)
	for lo < hi {
		mid := (lo + hi) / 2
		if aem.Less(splitters[mid], it) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
