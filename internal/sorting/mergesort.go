package sorting

import (
	"fmt"

	"repro/internal/aem"
)

// MergeSort sorts v into a fresh vector with the AEM mergesort of
// Section 3: the input is divided into d = ωm subarrays, each is sorted
// recursively (with the SmallSort base case once subarrays fit in ωM
// items), and the sorted subarrays are merged with MergeRuns. Total cost:
// O(ω·n·log_{ωm} n) reads and O(n·log_{ωm} n) writes, for any ω.
//
// The input vector is left untouched. Requires M ≥ 8B.
func MergeSort(ma *aem.Machine, v *aem.Vector) *aem.Vector {
	return mergeSortWith(ma, v, MergeRuns)
}

// MergeSortInMemoryPointers is MergeSort built on the in-memory-pointer
// merge of [7]; it panics by design when the ωm merge fanout does not fit
// in internal memory (ω ≳ B).
func MergeSortInMemoryPointers(ma *aem.Machine, v *aem.Vector) *aem.Vector {
	return mergeSortWith(ma, v, MergeRunsInMemoryPointers)
}

type mergeFunc func(*aem.Machine, []*aem.Vector, MergeOptions) *aem.Vector

func mergeSortWith(ma *aem.Machine, v *aem.Vector, merge mergeFunc) *aem.Vector {
	cfg := ma.Config()
	baseCase := cfg.Omega * cfg.M
	if v.Len() <= baseCase {
		return SmallSort(ma, v)
	}

	// Split into at most d = ωm block-aligned subarrays. Because
	// N > ωM = ω·m·B, there are more than ωm blocks, so every subarray
	// gets at least one block.
	d := cfg.MergeFanout()
	blocks := cfg.BlocksOf(v.Len())
	per := (blocks + d - 1) / d // blocks per subarray, ≥ 1

	var sorted []*aem.Vector
	for lo := 0; lo < blocks; lo += per {
		hi := lo + per
		if hi > blocks {
			hi = blocks
		}
		itemLo := lo * cfg.B
		itemHi := hi * cfg.B
		if itemHi > v.Len() {
			itemHi = v.Len()
		}
		sub := v.Slice(itemLo, itemHi)
		sorted = append(sorted, mergeSortWith(ma, sub, merge))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	return merge(ma, sorted, MergeOptions{})
}

// EMMergeSort sorts v with the classic symmetric-EM multiway mergesort,
// oblivious to ω: in-memory sorted base runs of ~M items, then repeated
// (m−2)-way merging holding one block per run in internal memory. It
// performs Θ(n·log_m n) reads and equally many writes, so its AEM cost is
// (1+ω)·n·log_m n — the baseline the Section 3 algorithm improves to
// ω·n·log_{ωm} n. Requires M ≥ 4B.
func EMMergeSort(ma *aem.Machine, v *aem.Vector) *aem.Vector {
	cfg := ma.Config()
	if cfg.M < 4*cfg.B {
		panic(fmt.Sprintf("sorting: EMMergeSort needs M ≥ 4B, got M=%d B=%d", cfg.M, cfg.B))
	}
	if v.Len() == 0 {
		return aem.NewVector(ma, 0)
	}

	// Base runs: load ~M items (one block of slack left for the output
	// frame), sort in memory, write out.
	var runs []*aem.Vector
	blocks := cfg.BlocksOf(v.Len())
	m := cfg.BlocksInMemory()
	chunk := cfg.M/cfg.B - 1 // floor, minus the writer's frame
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < blocks; lo += chunk {
		hi := lo + chunk
		if hi > blocks {
			hi = blocks
		}
		itemLo := lo * cfg.B
		itemHi := hi * cfg.B
		if itemHi > v.Len() {
			itemHi = v.Len()
		}
		runs = append(runs, emSortChunk(ma, v.Slice(itemLo, itemHi)))
	}

	// Merge levels: fanout f leaves one output frame spare.
	fanout := m - 2
	if fanout < 2 {
		fanout = 2
	}
	for len(runs) > 1 {
		var next []*aem.Vector
		for lo := 0; lo < len(runs); lo += fanout {
			hi := lo + fanout
			if hi > len(runs) {
				hi = len(runs)
			}
			next = append(next, emMerge(ma, runs[lo:hi]))
		}
		runs = next
	}
	return runs[0]
}

// emSortChunk reads a ≤ M-item chunk into memory, sorts it, and writes it
// back out: one read and one write per block.
func emSortChunk(ma *aem.Machine, v *aem.Vector) *aem.Vector {
	cfg := ma.Config()
	ma.Reserve(v.Len())
	// Each block is read straight into the chunk buffer's spare capacity:
	// no per-block allocation.
	buf := make([]aem.Item, 0, v.Len())
	for b := 0; b < cfg.BlocksOf(v.Len()); b++ {
		items, _ := v.ReadBlockInto(b*cfg.B, buf[len(buf):len(buf):cap(buf)])
		buf = buf[:len(buf)+len(items)]
	}
	sortItems(buf)
	out := aem.NewVector(ma, v.Len())
	w := out.NewWriter()
	for _, it := range buf {
		w.Append(it)
	}
	w.Close()
	ma.Release(v.Len())
	return out
}

// emMerge is the textbook EM multiway merge: one block frame per run plus
// an output frame, all resident in internal memory.
func emMerge(ma *aem.Machine, runs []*aem.Vector) *aem.Vector {
	total := 0
	for _, r := range runs {
		total += r.Len()
	}
	out := aem.NewVector(ma, total)
	w := out.NewWriter()

	scanners := make([]*aem.Scanner, len(runs))
	for i, r := range runs {
		scanners[i] = r.NewScanner()
	}
	heads := make([]aem.Item, len(runs))
	alive := make([]bool, len(runs))
	for i, sc := range scanners {
		heads[i], alive[i] = sc.Next()
	}
	for {
		j := -1
		for i := range heads {
			if alive[i] && (j < 0 || aem.Less(heads[i], heads[j])) {
				j = i
			}
		}
		if j < 0 {
			break
		}
		w.Append(heads[j])
		heads[j], alive[j] = scanners[j].Next()
	}
	for _, sc := range scanners {
		sc.Close()
	}
	w.Close()
	return out
}

// sortItems sorts items ascending in (Key, Aux) order with an in-place
// merge-free quicksort; internal computation is free in the model, this
// just has to be correct and fast enough for the simulator.
func sortItems(items []aem.Item) {
	if len(items) < 16 {
		for i := 1; i < len(items); i++ {
			for j := i; j > 0 && aem.Less(items[j], items[j-1]); j-- {
				items[j], items[j-1] = items[j-1], items[j]
			}
		}
		return
	}
	pivot := medianOf3(items[0], items[len(items)/2], items[len(items)-1])
	lo, hi := 0, len(items)-1
	for lo <= hi {
		for aem.Less(items[lo], pivot) {
			lo++
		}
		for aem.Less(pivot, items[hi]) {
			hi--
		}
		if lo <= hi {
			items[lo], items[hi] = items[hi], items[lo]
			lo++
			hi--
		}
	}
	sortItems(items[:hi+1])
	sortItems(items[lo:])
}

func medianOf3(a, b, c aem.Item) aem.Item {
	if aem.Less(b, a) {
		a, b = b, a
	}
	if aem.Less(c, b) {
		b = c
		if aem.Less(b, a) {
			b = a
		}
	}
	return b
}
