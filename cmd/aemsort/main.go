// Command aemsort sorts a generated workload on a simulated (M,B,ω)-AEM
// machine and reports the measured I/O cost next to the paper's bounds.
//
// Usage:
//
//	aemsort -n 65536 -m 1024 -b 32 -omega 16 -alg aem -dist random
//
// Algorithms: aem (the Section 3 mergesort), em (symmetric-EM mergesort
// baseline), small (the [7, Lemma 4.2] base case; requires N ≤ ωM).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/sorting"
	"repro/internal/workload"
)

func main() {
	var (
		n     = flag.Int("n", 1<<16, "number of items to sort")
		m     = flag.Int("m", 1024, "internal memory M in items")
		b     = flag.Int("b", 32, "block size B in items")
		omega = flag.Int("omega", 16, "write/read cost ratio ω")
		alg   = flag.String("alg", "aem", "algorithm: aem | em | small")
		dist  = flag.String("dist", "random", "key distribution: random | sorted | reversed | fewdistinct | nearlysorted")
		seed  = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	cfg := aem.Config{M: *m, B: *b, Omega: *omega}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "aemsort: %v\n", err)
		os.Exit(2)
	}
	var kd workload.KeyDist
	found := false
	for _, d := range workload.Dists() {
		if d.String() == strings.ToLower(*dist) {
			kd, found = d, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "aemsort: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	ma := aem.New(cfg)
	in := workload.Keys(workload.NewRNG(*seed), kd, *n)
	v := aem.Load(ma, in)

	var out *aem.Vector
	switch *alg {
	case "aem":
		out = sorting.MergeSort(ma, v)
	case "em":
		out = sorting.EMMergeSort(ma, v)
	case "small":
		if *n > *omega**m {
			fmt.Fprintf(os.Stderr, "aemsort: small sort needs N ≤ ωM = %d\n", *omega**m)
			os.Exit(2)
		}
		out = sorting.SmallSort(ma, v)
	default:
		fmt.Fprintf(os.Stderr, "aemsort: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	if !sorting.IsSorted(out.Materialize()) {
		fmt.Fprintln(os.Stderr, "aemsort: output NOT sorted — simulator bug")
		os.Exit(1)
	}

	st := ma.Stats()
	p := bounds.Params{N: *n, Cfg: cfg}
	pred := bounds.MergeSortPredicted(p)
	lb := bounds.SortingLowerBoundClosed(p)

	fmt.Printf("machine      (M=%d, B=%d, ω=%d)-AEM   m=%d  merge fanout ωm=%d\n",
		cfg.M, cfg.B, cfg.Omega, cfg.BlocksInMemory(), cfg.MergeFanout())
	fmt.Printf("workload     N=%d %s (seed %d)\n", *n, kd, *seed)
	fmt.Printf("algorithm    %s\n", *alg)
	fmt.Printf("reads        %d\n", st.Reads)
	fmt.Printf("writes       %d\n", st.Writes)
	fmt.Printf("cost Q       %d   (= reads + ω·writes)\n", ma.Cost())
	fmt.Printf("verified     output sorted, %d items\n", out.Len())
	fmt.Printf("predicted    %.0f reads, %.0f writes (§3 mergesort formula)\n", pred.Reads, pred.Writes)
	fmt.Printf("lower bound  %.0f   (Theorem 4.5: min{N, ω·n·log_ωm n})\n", lb)
	fmt.Printf("Q / LB       %.2f\n", float64(ma.Cost())/lb)
}
