package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/harness"
)

// Config configures a Coordinator.
type Config struct {
	Specs []*harness.Spec // the selection to run, in emission order
	Out   io.Writer       // record stream: manifest first, then accepted records

	// LeaseTTL bounds how long a worker may go silent before its lease
	// expires and its points are re-issued. Every record upload renews
	// the lease, so the TTL needs to cover one point's runtime, not a
	// whole lease. Zero means a conservative default.
	LeaseTTL time.Duration

	// Chunk is the number of points per lease. Small chunks spread a
	// heterogeneous grid evenly and shrink the re-run after a worker
	// death; zero means a small default.
	Chunk int

	Log io.Writer // optional progress log (worker joins, expiries, …)
}

const (
	defaultLeaseTTL = 15 * time.Second
	defaultChunk    = 8
	retryBackoff    = 200 * time.Millisecond
)

// lease is one outstanding batch of points.
type lease struct {
	id      int
	worker  string
	refs    []harness.GridRef
	expires time.Time
	issued  time.Time
}

// Coordinator owns the global point list of one run and the lease table
// distributing it. All state transitions happen under one mutex; the
// HTTP handlers are thin translations onto them, so the state machine is
// testable without a network.
type Coordinator struct {
	runner   *harness.PointRunner
	manifest harness.ShardManifest
	ttl      time.Duration
	chunk    int
	log      io.Writer

	mu        sync.Mutex
	out       *bufio.Writer
	enc       *json.Encoder
	queue     []harness.GridRef // unleased, unfilled points
	leases    map[int]*lease
	filled    map[harness.GridRef]bool
	nextLease int
	accepted  int
	failed    int // accepted records carrying a panic
	writeErr  error

	done      chan struct{}
	doneOnce  sync.Once
	fatal     chan struct{}
	fatalOnce sync.Once
}

// New enumerates the selection's grids, writes the shard manifest to
// cfg.Out, and returns a coordinator ready to serve leases. The output
// is a 1-of-1 shard stream: a completed run merges like any other shard
// set, an interrupted one is the partial input to `aem merge -residual`.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("fleet: no specs to serve")
	}
	if cfg.Out == nil {
		return nil, fmt.Errorf("fleet: no output writer")
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = defaultLeaseTTL
	}
	chunk := cfg.Chunk
	if chunk < 1 {
		chunk = defaultChunk
	}
	runner := harness.NewPointRunner(cfg.Specs)
	ids := make([]string, len(cfg.Specs))
	for i, s := range cfg.Specs {
		ids[i] = s.ID
	}
	c := &Coordinator{
		runner: runner,
		manifest: harness.ShardManifest{
			Type: "shard", Shard: 0, Of: 1,
			Experiments: ids, GridPoints: runner.Total(),
		},
		ttl:    ttl,
		chunk:  chunk,
		log:    cfg.Log,
		out:    bufio.NewWriter(cfg.Out),
		queue:  runner.Refs(),
		leases: map[int]*lease{},
		filled: map[harness.GridRef]bool{},
		done:   make(chan struct{}),
		fatal:  make(chan struct{}),
	}
	c.enc = json.NewEncoder(c.out)
	if err := c.enc.Encode(c.manifest); err != nil {
		return nil, err
	}
	if err := c.out.Flush(); err != nil {
		return nil, err
	}
	if len(c.queue) == 0 {
		// Nothing to distribute (empty grids or every enumeration failed
		// deterministically — the merge step reproduces those failures).
		c.doneOnce.Do(func() { close(c.done) })
	}
	return c, nil
}

// Done is closed when every grid point has an accepted record.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Fatal is closed if the output stream fails to write — the run cannot
// make progress and the server should shut down (Flush reports the
// error).
func (c *Coordinator) Fatal() <-chan struct{} { return c.fatal }

// Progress returns accepted and total point counts.
func (c *Coordinator) Progress() (filledPoints, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.filled), c.manifest.GridPoints
}

// Failed returns how many accepted records carry a panic — the fleet
// analogue of a shard's failed-point exit code.
func (c *Coordinator) Failed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// Flush forces buffered records to the underlying writer and reports any
// deferred write error. Call before exiting, completed or not.
func (c *Coordinator) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.out.Flush(); err != nil && c.writeErr == nil {
		c.writeErr = err
	}
	return c.writeErr
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.log != nil {
		fmt.Fprintf(c.log, "serve: "+format+"\n", args...)
	}
}

// expireLocked returns every dead lease's unfilled points to the queue.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		var back []harness.GridRef
		for _, ref := range l.refs {
			if !c.filled[ref] {
				back = append(back, ref)
			}
		}
		delete(c.leases, id)
		if len(back) > 0 {
			c.queue = append(c.queue, back...)
			c.logf("lease %d (%s) expired, %d point(s) re-queued", id, l.worker, len(back))
		}
	}
}

// popLocked takes up to chunk distinct unfilled points off the queue.
func (c *Coordinator) popLocked() []harness.GridRef {
	var refs []harness.GridRef
	taken := map[harness.GridRef]bool{}
	for len(c.queue) > 0 && len(refs) < c.chunk {
		ref := c.queue[0]
		c.queue = c.queue[1:]
		if c.filled[ref] || taken[ref] {
			continue
		}
		taken[ref] = true
		refs = append(refs, ref)
	}
	return refs
}

// speculateLocked gathers unfilled points from outstanding leases,
// oldest lease first — the straggler defense: when the queue is empty
// but leases are still out, an idle worker re-runs the slowest points
// instead of going home; whichever copy reports first wins.
func (c *Coordinator) speculateLocked() []harness.GridRef {
	ids := make([]int, 0, len(c.leases))
	for id := range c.leases {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return c.leases[ids[i]].issued.Before(c.leases[ids[j]].issued) })
	var refs []harness.GridRef
	taken := map[harness.GridRef]bool{}
	for _, id := range ids {
		for _, ref := range c.leases[id].refs {
			if c.filled[ref] || taken[ref] || len(refs) >= c.chunk {
				continue
			}
			taken[ref] = true
			refs = append(refs, ref)
		}
	}
	return refs
}

// Lease implements the state transition behind POST /v1/lease.
func (c *Coordinator) Lease(worker string) LeaseResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()

	if len(c.filled) == c.manifest.GridPoints {
		return LeaseResponse{Done: true}
	}
	c.expireLocked(now)
	refs := c.popLocked()
	speculative := false
	if len(refs) == 0 {
		refs = c.speculateLocked()
		speculative = true
	}
	if len(refs) == 0 {
		// Every unfilled point is spoken for by leases that have not
		// expired and are fully speculated already — nothing sensible to
		// hand out; ask the worker to check back shortly.
		return LeaseResponse{RetryMS: retryBackoff.Milliseconds()}
	}
	c.nextLease++
	l := &lease{id: c.nextLease, worker: worker, refs: refs, issued: now, expires: now.Add(c.ttl)}
	c.leases[l.id] = l
	kind := ""
	if speculative {
		kind = " (speculative)"
	}
	c.logf("lease %d → %s: %d point(s)%s, %d/%d filled", l.id, worker, len(refs), kind, len(c.filled), c.manifest.GridPoints)
	return LeaseResponse{Lease: l.id, Points: refs, TTLMS: c.ttl.Milliseconds()}
}

// Ingest implements the state transition behind POST /v1/records: it
// validates each record against the coordinator's own grid enumeration,
// accepts the first record per point (writing it straight to the output
// stream), discards later copies, and renews the uploading lease. The
// error reports a malformed record — the upload's earlier records stay
// accepted.
func (c *Coordinator) Ingest(leaseID int, records []harness.PointRecord) (RecordsResponse, error) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()

	var resp RecordsResponse
	if l, ok := c.leases[leaseID]; ok {
		l.expires = now.Add(c.ttl)
	}
	for i := range records {
		rec := &records[i]
		if err := c.runner.ValidateRecord(rec); err != nil {
			return resp, err
		}
		ref := harness.GridRef{Experiment: rec.Experiment, Index: rec.Index}
		if c.filled[ref] {
			resp.Duplicates++
			continue
		}
		if c.writeErr == nil {
			if err := c.enc.Encode(rec); err != nil {
				c.writeErr = err
			}
		}
		if c.writeErr != nil {
			c.fatalOnce.Do(func() { close(c.fatal) })
			return resp, c.writeErr
		}
		c.filled[ref] = true
		c.accepted++
		if rec.Panic != "" {
			c.failed++
		}
		resp.Accepted++
	}
	if err := c.out.Flush(); err != nil && c.writeErr == nil {
		c.writeErr = err
	}
	if c.writeErr != nil {
		c.fatalOnce.Do(func() { close(c.fatal) })
		return resp, c.writeErr
	}
	if len(c.filled) == c.manifest.GridPoints {
		resp.Done = true
		c.doneOnce.Do(func() { close(c.done) })
	}
	return resp, nil
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, RunInfo{Experiments: c.manifest.Experiments, GridPoints: c.manifest.GridPoints})
	})
	mux.HandleFunc("/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req LeaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
			http.Error(w, fmt.Sprintf("lease request: %v", err), http.StatusBadRequest)
			return
		}
		writeJSON(w, c.Lease(req.Worker))
	})
	mux.HandleFunc("/v1/records", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		leaseID := 0
		fmt.Sscanf(r.URL.Query().Get("lease"), "%d", &leaseID)
		records, err := decodeRecords(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := c.Ingest(leaseID, records)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	})
	return mux
}

// decodeRecords parses a JSON Lines upload of point records.
func decodeRecords(r io.Reader) ([]harness.PointRecord, error) {
	dec := json.NewDecoder(r)
	var records []harness.PointRecord
	for {
		var rec harness.PointRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("record upload: %v", err)
		}
		if rec.Type != "point" {
			return nil, fmt.Errorf("record upload: unexpected record type %q", rec.Type)
		}
		records = append(records, rec)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("record upload: no records in body")
	}
	return records, nil
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
