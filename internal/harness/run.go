package harness

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Run executes the specs' grids on one shared worker pool of at most par
// goroutines, scheduling at grid-point granularity: every point of every
// spec is an independent unit of work, so a single slow experiment
// spreads across the pool instead of pinning one worker. emit is called
// exactly once per spec, in the order of specs, as soon as each table and
// all of its predecessors are assembled. Every point owns a private
// machine and derives its inputs from fixed seeds, so points are
// embarrassingly parallel and the emitted tables are byte-identical for
// every par — parallelism changes wall-clock time, never output. par < 1
// is treated as 1.
//
// If points panic, Run drains the in-flight work, skips emission from the
// first failed spec onward, and re-panics with every failed experiment ID
// and its first panic message — multiple failures are aggregated, not
// dropped.
func Run(specs []*Spec, par int, emit func(*Table)) {
	if par < 1 {
		par = 1
	}
	if len(specs) == 0 {
		return
	}

	type state struct {
		pts     []Point
		rows    []Row
		cells   [][]string
		pending int64
		nfail   int64
		panicAt []string // per point, "" = ok; reported in grid order
		done    chan struct{}
	}
	type job struct{ si, pi int }

	sts := make([]*state, len(specs))
	var jobs []job
	for si, s := range specs {
		st := &state{done: make(chan struct{})}
		// Grid enumeration runs spec-authored hooks (Dyn axes, Skip), so
		// a panic there is an experiment failure like any other and must
		// carry the experiment's ID.
		func() {
			defer func() {
				if r := recover(); r != nil {
					st.panicAt = []string{fmt.Sprintf("grid enumeration: %v", r)}
					st.nfail = 1
				}
			}()
			st.pts = s.Points()
		}()
		st.rows = make([]Row, len(st.pts))
		st.cells = make([][]string, len(st.pts))
		if st.nfail == 0 {
			st.panicAt = make([]string, len(st.pts))
		}
		st.pending = int64(len(st.pts))
		sts[si] = st
		if st.nfail > 0 || len(st.pts) == 0 {
			close(st.done)
			continue
		}
		for pi := range st.pts {
			jobs = append(jobs, job{si, pi})
		}
	}

	jobCh := make(chan job)
	go func() {
		for _, j := range jobs {
			jobCh <- j
		}
		close(jobCh)
	}()

	workers := par
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				s, st := specs[j.si], sts[j.si]
				func() {
					defer func() {
						if r := recover(); r != nil {
							st.panicAt[j.pi] = fmt.Sprint(r)
							atomic.AddInt64(&st.nfail, 1)
						}
						if atomic.AddInt64(&st.pending, -1) == 0 {
							close(st.done)
						}
					}()
					p := st.pts[j.pi]
					row := s.Point(p)
					st.cells[j.pi] = s.cells(p, row)
					st.rows[j.pi] = row
				}()
			}
		}()
	}

	var failures []string
	for si, s := range specs {
		st := sts[si]
		<-st.done
		if nfail := atomic.LoadInt64(&st.nfail); nfail > 0 {
			var msg string
			for _, pm := range st.panicAt {
				if pm != "" {
					msg = pm // first failed point in grid order: deterministic at any par
					break
				}
			}
			if nfail > 1 {
				msg = fmt.Sprintf("%s (and %d more failed points)", msg, nfail-1)
			}
			failures = append(failures, fmt.Sprintf("%s: %s", s.ID, msg))
			continue
		}
		if len(failures) > 0 {
			continue // deterministic prefix only: no emission past a failure
		}
		var tbl *Table
		if perr := func() (msg string) {
			defer func() {
				if r := recover(); r != nil {
					msg = fmt.Sprint(r)
				}
			}()
			tbl = s.assemble(st.rows, st.cells)
			return ""
		}(); perr != "" {
			failures = append(failures, fmt.Sprintf("%s: %s", s.ID, perr))
			continue
		}
		emit(tbl)
	}
	wg.Wait()
	switch len(failures) {
	case 0:
	case 1:
		panic("harness: experiment " + failures[0])
	default:
		panic(fmt.Sprintf("harness: %d experiments failed: %s", len(failures), strings.Join(failures, "; ")))
	}
}

// RunAll runs every experiment at the given parallelism and returns the
// tables in All()'s order.
func RunAll(par int) []*Table {
	var tables []*Table
	Run(All(), par, func(t *Table) { tables = append(tables, t) })
	return tables
}
