package repro

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/harness"
)

// TestFleetKillGolden is the elastic executor's acceptance test: a
// coordinator serving the full experiment registry, three worker loops
// leasing from it over real HTTP, one worker killed mid-run. The
// survivors absorb the dead worker's points through lease expiry and
// speculative re-execution, and the merged fleet output must reproduce
// both committed goldens byte-for-byte — elasticity, worker death and
// duplicate discard included, the fleet is not allowed to change a
// single output byte relative to a single-machine `aem bench`.
func TestFleetKillGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry across a local fleet")
	}

	var out bytes.Buffer
	c, err := fleet.New(fleet.Config{
		Specs:    harness.All(),
		Out:      &out,
		Chunk:    4,
		LeaseTTL: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx := context.Background()
	victimCtx, kill := context.WithCancel(ctx)
	defer kill()
	errs := make(chan error, 3)
	for _, w := range []struct {
		name string
		ctx  context.Context
	}{{"w1", ctx}, {"w2", ctx}, {"victim", victimCtx}} {
		w := w
		go func() {
			errs <- fleet.Work(w.ctx, fleet.WorkerConfig{URL: srv.URL, Par: 4, Name: w.name})
		}()
	}
	// Kill the victim once the run is demonstrably mid-flight, so its
	// leased points really are orphaned and must be re-run elsewhere.
	go func() {
		for {
			if filled, total := c.Progress(); filled > total/20 && filled < total {
				kill()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	select {
	case <-c.Done():
	case <-c.Fatal():
		t.Fatalf("coordinator output failed: %v", c.Flush())
	case <-time.After(3 * time.Minute):
		t.Fatal("fleet never completed after the worker kill")
	}
	killed := 0
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, context.Canceled) {
				killed++
			} else if err != nil {
				t.Fatalf("worker failed: %v", err)
			}
		case <-time.After(time.Minute):
			t.Fatal("worker did not exit after completion")
		}
	}
	if killed > 1 {
		t.Fatalf("%d workers died, only the victim was cancelled", killed)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	sf, err := harness.ReadShardFile(&out)
	if err != nil {
		t.Fatalf("fleet output is not a shard stream: %v", err)
	}
	var text, jsonOut bytes.Buffer
	if err := harness.MergeShards(harness.All(), []*harness.ShardFile{sf}, false, func(tbl *harness.Table) {
		tbl.Render(&text)
		if jerr := tbl.JSON(&jsonOut); jerr != nil {
			t.Fatalf("JSON render: %v", jerr)
		}
	}); err != nil {
		t.Fatalf("merge: %v", err)
	}

	want, err := os.ReadFile(filepath.Join("testdata", "aembench.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text.Bytes(), want) {
		t.Errorf("fleet output diverged from testdata/aembench.golden\n%s", diffHint(want, text.Bytes()))
	}
	wantJSON, err := os.ReadFile(filepath.Join("testdata", "aembench_json.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonOut.Bytes(), wantJSON) {
		t.Errorf("fleet -json output diverged from testdata/aembench_json.golden\n%s", diffHint(wantJSON, jsonOut.Bytes()))
	}
}
