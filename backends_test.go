// Cross-backend integration: every storage engine must leave the cost
// model untouched. The data-bearing engines (slice reference, arena) must
// agree on outputs *and* I/O accounting for every algorithm in the
// repository; the counting engine must agree on accounting for
// data-oblivious programs, which is all it exists for.
package repro

import (
	"testing"

	"repro/internal/aem"
	"repro/internal/dict"
	"repro/internal/permute"
	"repro/internal/pq"
	"repro/internal/sorting"
	"repro/internal/spmxv"
	"repro/internal/workload"
)

// dataEngines returns fresh machines on the two data-bearing backends.
func dataEngines(cfg aem.Config) map[string]*aem.Machine {
	return map[string]*aem.Machine{
		"slice": aem.New(cfg),
		"arena": aem.NewWithStorage(cfg, aem.NewArenaStorage(cfg.B)),
	}
}

// TestAlgorithmsIdenticalAcrossDataBackends is the conformance suite at
// algorithm level: identical outputs, Stats, Cost, phase totals and
// internal-memory peaks on the reference and arena engines, for every
// algorithm family in the repository.
func TestAlgorithmsIdenticalAcrossDataBackends(t *testing.T) {
	cfg := aem.Config{M: 128, B: 8, Omega: 8}
	const n = 1 << 12
	in := workload.Keys(workload.NewRNG(77), workload.Random, n)
	items, perm := workload.Permutation(workload.NewRNG(78), n)

	rng := workload.NewRNG(79)
	conf := workload.NewConformation(rng, 256, 4)
	values := make([]int64, conf.H())
	x := make([]int64, 256)
	for i := range values {
		values[i] = int64(rng.Intn(50))
	}
	for i := range x {
		x[i] = int64(rng.Intn(50))
	}

	algs := []struct {
		name string
		run  func(ma *aem.Machine) []aem.Item
	}{
		{"mergesort", func(ma *aem.Machine) []aem.Item {
			return sorting.MergeSort(ma, aem.Load(ma, in)).Materialize()
		}},
		{"em-mergesort", func(ma *aem.Machine) []aem.Item {
			return sorting.EMMergeSort(ma, aem.Load(ma, in)).Materialize()
		}},
		{"samplesort", func(ma *aem.Machine) []aem.Item {
			return sorting.EMSampleSort(ma, aem.Load(ma, in), 5).Materialize()
		}},
		{"smallsort", func(ma *aem.Machine) []aem.Item {
			return sorting.SmallSort(ma, aem.Load(ma, in[:cfg.M*4])).Materialize()
		}},
		{"heapsort", func(ma *aem.Machine) []aem.Item {
			return pq.HeapSort(ma, aem.Load(ma, in)).Materialize()
		}},
		{"permute-direct", func(ma *aem.Machine) []aem.Item {
			return permute.Direct(ma, aem.Load(ma, items), perm).Materialize()
		}},
		{"permute-sort", func(ma *aem.Machine) []aem.Item {
			return permute.SortBased(ma, aem.Load(ma, items)).Materialize()
		}},
		{"spmxv-naive", func(ma *aem.Machine) []aem.Item {
			m := spmxv.NewMatrix(ma, conf, values)
			return spmxv.Naive(ma, m, spmxv.LoadDense(ma, x)).Materialize()
		}},
		{"spmxv-sort", func(ma *aem.Machine) []aem.Item {
			m := spmxv.NewMatrix(ma, conf, values)
			return spmxv.SortBased(ma, m, spmxv.LoadDense(ma, x)).Materialize()
		}},
		{"spmxv-banded", func(ma *aem.Machine) []aem.Item {
			banded := workload.BandedConformation(256, 3)
			m := spmxv.NewMatrix(ma, banded, values[:banded.H()])
			return spmxv.Naive(ma, m, spmxv.LoadDense(ma, x)).Materialize()
		}},
		{"permute-best", func(ma *aem.Machine) []aem.Item {
			out, _ := permute.Best(ma, aem.Load(ma, items), perm)
			return out.Materialize()
		}},
		{"pq-interleaved", func(ma *aem.Machine) []aem.Item {
			// Interleaved Push/DeleteMin lifecycle, not just the HeapSort
			// wrapper: the queue's run compactions must be byte-identical
			// across engines too.
			q := pq.New(ma)
			var out []aem.Item
			for i, it := range in[:1024] {
				q.Push(it)
				if i%3 == 2 {
					got, ok := q.DeleteMin()
					if !ok {
						panic("pq: empty during interleave")
					}
					out = append(out, got)
				}
			}
			for {
				got, ok := q.DeleteMin()
				if !ok {
					break
				}
				out = append(out, got)
			}
			q.Close()
			return out
		}},
		{"pq-adaptive-interleaved", func(ma *aem.Machine) []aem.Item {
			// Same lifecycle through the ω-adaptive queue: buffer appends,
			// selection scans, folds and lazy merges must be byte-identical
			// across engines too.
			q := pq.NewAdaptive(ma)
			var out []aem.Item
			for i, it := range in[:1024] {
				q.Push(it)
				if i%3 == 2 {
					got, ok := q.DeleteMin()
					if !ok {
						panic("pq: empty during interleave")
					}
					out = append(out, got)
				}
			}
			for {
				got, ok := q.DeleteMin()
				if !ok {
					break
				}
				out = append(out, got)
			}
			q.Close()
			return out
		}},
		{"dict-buffertree", func(ma *aem.Machine) []aem.Item {
			return dictConformanceRun(dict.NewBufferTree(ma))
		}},
		{"dict-btree", func(ma *aem.Machine) []aem.Item {
			return dictConformanceRun(dict.NewBTree(ma))
		}},
	}

	for _, alg := range algs {
		t.Run(alg.name, func(t *testing.T) {
			type outcome struct {
				out    []aem.Item
				stats  aem.Stats
				cost   int64
				peak   int
				blocks int
			}
			var ref *outcome
			for engine, ma := range dataEngines(cfg) {
				got := outcome{out: alg.run(ma), stats: ma.Stats(),
					cost: ma.Cost(), peak: ma.MemPeak(), blocks: ma.NumBlocks()}
				if ref == nil {
					ref = &got
					continue
				}
				if got.stats != ref.stats {
					t.Errorf("%s: stats %+v != reference %+v", engine, got.stats, ref.stats)
				}
				if got.cost != ref.cost {
					t.Errorf("%s: cost %d != reference %d", engine, got.cost, ref.cost)
				}
				if got.peak != ref.peak {
					t.Errorf("%s: memory peak %d != reference %d", engine, got.peak, ref.peak)
				}
				if got.blocks != ref.blocks {
					t.Errorf("%s: allocated %d blocks != reference %d", engine, got.blocks, ref.blocks)
				}
				if len(got.out) != len(ref.out) {
					t.Fatalf("%s: output length %d != reference %d", engine, len(got.out), len(ref.out))
				}
				for i := range got.out {
					if got.out[i] != ref.out[i] {
						t.Fatalf("%s: outputs differ at %d: %v != %v", engine, i, got.out[i], ref.out[i])
					}
				}
			}
		})
	}
}

// dictConformanceRun drives a dictionary through a mixed op stream and
// serializes its answers and final contents as items, so dictionary runs
// plug into the same output-and-Stats conformance harness as the bulk
// algorithms.
func dictConformanceRun(d dict.Dict) []aem.Item {
	ops := workload.DictOps(workload.NewRNG(81), workload.UniformOps, 6000, 1024)
	var out []aem.Item
	for _, res := range d.Apply(ops) {
		if res.OK {
			out = append(out, aem.Item{Key: 1, Aux: res.Value})
		}
		for _, hit := range res.Hits {
			out = append(out, aem.Item{Key: hit.Key, Aux: hit.Value})
		}
	}
	d.Flush()
	final := d.Apply([]dict.Op{{Kind: dict.RangeScan, Key: 0, Hi: 1 << 30}})
	for _, hit := range final[0].Hits {
		out = append(out, aem.Item{Key: hit.Key, Aux: hit.Value})
	}
	return out
}

// TestCountingBackendMatchesObliviousPrograms: programs whose I/O schedule
// depends only on program knowledge (lengths, addresses, the permutation)
// must produce identical accounting on the counting engine, which moves no
// data at all. permute.Direct is the paper's canonical such program.
func TestCountingBackendMatchesObliviousPrograms(t *testing.T) {
	cfg := aem.Config{M: 64, B: 8, Omega: 16}
	const n = 1 << 10
	items, perm := workload.Permutation(workload.NewRNG(80), n)

	engines := map[string]func() aem.Storage{
		"slice":    func() aem.Storage { return aem.NewSliceStorage() },
		"arena":    func() aem.Storage { return aem.NewArenaStorage(cfg.B) },
		"counting": func() aem.Storage { return aem.NewCountingStorage() },
	}
	programs := []struct {
		name string
		run  func(ma *aem.Machine)
	}{
		{"permute-direct", func(ma *aem.Machine) {
			permute.Direct(ma, aem.Load(ma, items), perm)
		}},
		{"scan-copy", func(ma *aem.Machine) {
			v := aem.Load(ma, items)
			out := aem.NewVector(ma, v.Len())
			sc := v.NewScanner()
			w := out.NewWriter()
			for {
				it, ok := sc.Next()
				if !ok {
					break
				}
				w.Append(it)
			}
			sc.Close()
			w.Close()
		}},
	}

	for _, p := range programs {
		t.Run(p.name, func(t *testing.T) {
			var refName string
			var ref aem.Stats
			var refCost int64
			for name, mk := range engines {
				ma := aem.NewWithStorage(cfg, mk())
				p.run(ma)
				if refName == "" {
					refName, ref, refCost = name, ma.Stats(), ma.Cost()
					continue
				}
				if ma.Stats() != ref || ma.Cost() != refCost {
					t.Errorf("%s: stats %+v cost %d != %s reference %+v cost %d",
						name, ma.Stats(), ma.Cost(), refName, ref, refCost)
				}
			}
		})
	}
}
