package aem

import "fmt"

// Storage is the pluggable block engine behind a Machine: it owns the
// external memory's contents while the Machine owns the cost model (I/O
// counting, phase attribution, tracing, internal-memory metering). The
// split means every algorithm in this repository runs unchanged on any
// backend, and new engines (mmap'd disk, compressed blocks, sharding) plug
// in without touching the algorithms.
//
// The Machine's costed Read/Write and free Peek/Poke all map onto the same
// two data methods here — whether a transfer is billed is the cost model's
// business, not the storage's.
//
// Implementations may assume addresses are in range [0, NumBlocks()) and
// len(items) ≤ the machine's block size B: the Machine validates both
// before calling.
//
// Engines have an explicit lifecycle: constructed open, Reset between
// runs, Close when done. RAM engines implement Sync and Close as no-ops;
// for engines that own real resources (the file engine's descriptor,
// mapping and temp file) Close is the only way those resources are
// released, so owners — harness.PooledMachine, CLIs, tests — must call
// it (via Machine.Close) exactly like an os.File.
type Storage interface {
	// Alloc reserves count fresh, empty blocks and returns the address of
	// the first. Blocks are never freed; addresses are dense and stable.
	Alloc(count int) Addr

	// NumBlocks returns the number of blocks allocated so far.
	NumBlocks() int

	// Len returns the number of items currently stored in block a
	// (0 for a never-written block).
	Len(a Addr) int

	// ReadInto copies block a's contents into dst and returns the filled
	// prefix dst[:Len(a)]. If cap(dst) < Len(a) a fresh slice is returned
	// instead; callers that pass a capacity-B buffer never allocate.
	ReadInto(a Addr, dst []Item) []Item

	// Write replaces block a's contents with a copy of items; the caller
	// keeps ownership of the argument slice.
	Write(a Addr, items []Item)

	// Reset returns the engine to its freshly constructed state — zero
	// blocks allocated — while retaining reusable capacity, so a pooled
	// machine's next run allocates nothing in steady state. Engines
	// holding external resources must truncate rather than leak: after
	// Reset a file engine's backing file holds no prior run's blocks.
	// After Reset the engine must be indistinguishable from a new one:
	// Alloc hands out empty blocks and data-bearing engines return zeroed
	// contents, never a previous run's values.
	Reset()

	// Caps reports the engine's capabilities; callers use it to decide
	// which programs an engine can serve (data retention) and how to
	// manage its lifetime (persistence), instead of switching on names.
	Caps() StorageCaps

	// Sync flushes written blocks to the backing device. A no-op for RAM
	// engines; the file engine flushes its descriptor, so a subsequent
	// crash cannot tear previously synced blocks.
	Sync() error

	// Close releases every resource the engine owns; the engine is
	// unusable afterwards. Close is idempotent. RAM engines no-op.
	Close() error
}

// StorageCaps are an engine's capability flags. They generalize what used
// to be name-switches: "is this the counting engine?" becomes
// !RetainsData, and "does this machine need closing?" becomes Persistent.
type StorageCaps struct {
	// RetainsData reports whether reads return previously written values.
	// The counting engine sets it false; only data-oblivious programs
	// (whose I/O schedule never branches on block contents) may run
	// without data retention.
	RetainsData bool

	// Persistent reports whether blocks live outside process memory, on a
	// backing device whose transfer time wall-clock can measure. A
	// persistent engine is stateful: it must be owned by exactly one
	// machine at a time and closed after use, never shared through a
	// keyed pool.
	Persistent bool

	// BlockAlign is the byte alignment of block slots on the backing
	// device (0 for RAM engines and unaligned file modes). The direct-I/O
	// file mode aligns slots so O_DIRECT transfers meet the kernel's
	// offset and length requirements.
	BlockAlign int
}

// sizedDst returns dst resized to hold n items, allocating only when the
// capacity is insufficient.
func sizedDst(dst []Item, n int) []Item {
	if cap(dst) < n {
		return make([]Item, n)
	}
	return dst[:n]
}

// SliceStorage is the reference engine: one Go slice per block, exactly
// the machine's original representation. Reads and writes copy through
// freshly allocated block slices, which makes aliasing bugs impossible and
// keeps the implementation obviously correct — the arena backend is
// checked against it by the conformance suite.
type SliceStorage struct {
	blocks [][]Item
}

// NewSliceStorage returns an empty reference engine.
func NewSliceStorage() *SliceStorage { return &SliceStorage{} }

// Alloc implements Storage. The single append mirrors the arena engine:
// one capacity check (and at most one growth) per allocation instead of
// one per block, and `append(s, make(...)...)` compiles to a grow+clear
// with no intermediate slice.
func (s *SliceStorage) Alloc(count int) Addr {
	base := Addr(len(s.blocks))
	s.blocks = append(s.blocks, make([][]Item, count)...)
	return base
}

// NumBlocks implements Storage.
func (s *SliceStorage) NumBlocks() int { return len(s.blocks) }

// Len implements Storage.
func (s *SliceStorage) Len(a Addr) int { return len(s.blocks[a]) }

// ReadInto implements Storage.
func (s *SliceStorage) ReadInto(a Addr, dst []Item) []Item {
	blk := s.blocks[a]
	dst = sizedDst(dst, len(blk))
	copy(dst, blk)
	return dst
}

// Write implements Storage.
func (s *SliceStorage) Write(a Addr, items []Item) {
	blk := make([]Item, len(items))
	copy(blk, items)
	s.blocks[a] = blk
}

// Reset implements Storage. Truncating keeps the block table's capacity;
// the appended region of a later Alloc is cleared by append's grow+clear,
// so recycled engines hand out nil blocks exactly like fresh ones.
func (s *SliceStorage) Reset() {
	s.blocks = s.blocks[:0]
}

// Caps implements Storage: data-bearing, RAM-resident.
func (s *SliceStorage) Caps() StorageCaps { return StorageCaps{RetainsData: true} }

// Sync implements Storage; RAM engines have nothing to flush.
func (s *SliceStorage) Sync() error { return nil }

// Close implements Storage; RAM engines own no external resources.
func (s *SliceStorage) Close() error { return nil }

// ArenaStorage stores every block in one contiguous arena: block a
// occupies the B-item stride data[a·B : (a+1)·B], with the live length in
// a side table. Transfers are single copies into caller-owned buffers, so
// the steady-state read and write paths perform zero allocations per I/O —
// the difference production-scale simulations feel, since the simulator's
// hot loop is nothing but block transfers.
type ArenaStorage struct {
	b    int     // block stride in items
	data []Item  // len = NumBlocks()·b
	lens []int32 // live item count per block
}

// NewArenaStorage returns an empty arena engine for blocks of at most
// blockSize items (the machine's B).
func NewArenaStorage(blockSize int) *ArenaStorage {
	if blockSize < 1 {
		panic(fmt.Sprintf("aem: NewArenaStorage(%d): need blockSize ≥ 1", blockSize))
	}
	return &ArenaStorage{b: blockSize}
}

// Alloc implements Storage. Growing the arena is the only allocation the
// engine ever performs, and it is amortized by append's doubling.
func (s *ArenaStorage) Alloc(count int) Addr {
	base := Addr(len(s.lens))
	s.data = append(s.data, make([]Item, count*s.b)...)
	s.lens = append(s.lens, make([]int32, count)...)
	return base
}

// NumBlocks implements Storage.
func (s *ArenaStorage) NumBlocks() int { return len(s.lens) }

// BlockSize returns the arena's fixed per-block stride. NewWithStorage
// uses it to reject engines that cannot hold a full B-item block.
func (s *ArenaStorage) BlockSize() int { return s.b }

// Len implements Storage.
func (s *ArenaStorage) Len(a Addr) int { return int(s.lens[a]) }

// ReadInto implements Storage.
func (s *ArenaStorage) ReadInto(a Addr, dst []Item) []Item {
	n := int(s.lens[a])
	dst = sizedDst(dst, n)
	copy(dst, s.data[int(a)*s.b:int(a)*s.b+n])
	return dst
}

// Write implements Storage.
func (s *ArenaStorage) Write(a Addr, items []Item) {
	if len(items) > s.b {
		panic(fmt.Sprintf("aem: arena Write(%d): %d items exceed stride %d", a, len(items), s.b))
	}
	off := int(a) * s.b
	copy(s.data[off:], items)
	s.lens[a] = int32(len(items))
}

// Reset implements Storage. The arena and length table are truncated, not
// freed: the next run's Allocs re-slice into the retained capacity, and
// append's grow+clear zeroes the reused region, so a recycled arena is
// indistinguishable from a fresh one at zero steady-state allocations.
func (s *ArenaStorage) Reset() {
	s.data = s.data[:0]
	s.lens = s.lens[:0]
}

// Caps implements Storage: data-bearing, RAM-resident.
func (s *ArenaStorage) Caps() StorageCaps { return StorageCaps{RetainsData: true} }

// Sync implements Storage; RAM engines have nothing to flush.
func (s *ArenaStorage) Sync() error { return nil }

// Close implements Storage; RAM engines own no external resources.
func (s *ArenaStorage) Close() error { return nil }

// CountingStorage moves no data at all: it tracks only per-block lengths,
// so reads return correctly sized but zeroed blocks. It exists for pure
// cost-accounting runs — the paper's lower-bound sweeps need Q = Qr + ω·Qw,
// not values — where it makes the simulator's data plane literally free.
//
// Only data-oblivious programs (scans, streaming writes, permute.Direct,
// program replays) produce the same I/O schedule on this backend as on the
// data-bearing ones; value-dependent algorithms such as the sorts branch
// on block contents and must use SliceStorage or ArenaStorage.
type CountingStorage struct {
	lens []int32
}

// NewCountingStorage returns an empty counting-only engine.
func NewCountingStorage() *CountingStorage { return &CountingStorage{} }

// Alloc implements Storage.
func (s *CountingStorage) Alloc(count int) Addr {
	base := Addr(len(s.lens))
	s.lens = append(s.lens, make([]int32, count)...)
	return base
}

// NumBlocks implements Storage.
func (s *CountingStorage) NumBlocks() int { return len(s.lens) }

// Len implements Storage.
func (s *CountingStorage) Len(a Addr) int { return int(s.lens[a]) }

// ReadInto implements Storage. The returned prefix is zeroed rather than
// left with stale buffer contents so that runs are deterministic.
func (s *CountingStorage) ReadInto(a Addr, dst []Item) []Item {
	n := int(s.lens[a])
	dst = sizedDst(dst, n)
	for i := range dst {
		dst[i] = Item{}
	}
	return dst
}

// Write implements Storage: only the length is recorded.
func (s *CountingStorage) Write(a Addr, items []Item) {
	s.lens[a] = int32(len(items))
}

// Reset implements Storage.
func (s *CountingStorage) Reset() {
	s.lens = s.lens[:0]
}

// Caps implements Storage: no data plane at all — RetainsData is false,
// which is what prunes this engine from value-branching grid points.
func (s *CountingStorage) Caps() StorageCaps { return StorageCaps{} }

// Sync implements Storage; RAM engines have nothing to flush.
func (s *CountingStorage) Sync() error { return nil }

// Close implements Storage; RAM engines own no external resources.
func (s *CountingStorage) Close() error { return nil }

// setLens records the lengths of a run of sequentially written blocks —
// every block in [a, a+blocks) holds full items except the last, which
// holds last — without going through the per-block Write path. It is the
// counting engine's half of the machine's bulk ScanWrites fast path.
func (s *CountingStorage) setLens(a Addr, blocks int, full, last int32) {
	lens := s.lens[a : int(a)+blocks]
	for i := range lens {
		lens[i] = full
	}
	lens[blocks-1] = last
}
