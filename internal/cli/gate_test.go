package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchLines fabricates a timed `aem bench -json -timing` stream: rows
// for two experiments with known wall_ns, plus a throughput summary
// record the gate must ignore (it re-derives from the raw points).
func benchLines(fastNS, slowNS int64) string {
	var b strings.Builder
	for i := 0; i < 4; i++ {
		b.WriteString(`{"experiment":"EXP-A","title":"t","row":` + itoa(i) + `,"columns":["x"],"values":["1"],"wall_ns":` + i64toa(fastNS) + "}\n")
	}
	for i := 0; i < 2; i++ {
		b.WriteString(`{"experiment":"EXP-B","title":"t","row":` + itoa(i) + `,"columns":["x"],"values":["1"],"wall_ns":` + i64toa(slowNS) + "}\n")
	}
	b.WriteString(`{"type":"throughput","experiment":"EXP-A","points":4,"wall_ns":1,"ns_per_point":0.25,"points_per_sec":4e9}` + "\n")
	return b.String()
}

func itoa(i int) string { return string(rune('0' + i)) }
func i64toa(n int64) string {
	raw, _ := json.Marshal(n)
	return string(raw)
}

// gateRun writes the given bench stream and baseline args to temp files
// and runs the gate, returning exit code and stdout.
func gateRun(t *testing.T, bench string, args ...string) (int, string) {
	t.Helper()
	dir := t.TempDir()
	bp := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(bp, []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	var code int
	out := captureStdout(t, func() {
		code = gateCmd("aem gate", append([]string{"-bench", bp}, args...))
	})
	return code, string(out)
}

// TestGateWriteThenPass: pinning a baseline from a run and gating the
// same run must pass with ratio 1.00 for every experiment.
func TestGateWriteThenPass(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	stream := benchLines(1_000_000, 4_000_000)

	code, out := gateRun(t, stream, "-baseline", base, "-write-baseline")
	if code != 0 {
		t.Fatalf("write-baseline exit %d\n%s", code, out)
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var pinned throughputBaseline
	if err := json.Unmarshal(raw, &pinned); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	if got := pinned.Experiments["EXP-A"].NSPerPoint; got != 1_000_000 {
		t.Errorf("pinned EXP-A ns/point = %v, want 1e6 (summary record must not skew aggregation)", got)
	}
	if got := pinned.Experiments["EXP-B"].Points; got != 2 {
		t.Errorf("pinned EXP-B points = %d, want 2", got)
	}

	code, out = gateRun(t, stream, "-baseline", base)
	if code != 0 {
		t.Fatalf("self-gate exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "1.00x ok") {
		t.Errorf("self-gate output lacks a 1.00x ok verdict:\n%s", out)
	}
}

// TestGateFailsOnPathologicalSlowdown: a >tol slowdown on one experiment
// must fail the gate and name it; within-tolerance noise must not.
func TestGateFailsOnPathologicalSlowdown(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	if code, out := gateRun(t, benchLines(1_000_000, 1_000_000), "-baseline", base, "-write-baseline"); code != 0 {
		t.Fatalf("write-baseline exit %d\n%s", code, out)
	}

	// 2x slower: within the default 3x tolerance.
	if code, out := gateRun(t, benchLines(2_000_000, 2_000_000), "-baseline", base); code != 0 {
		t.Fatalf("2x slowdown failed the 3x gate\n%s", out)
	}
	// 4x slower on EXP-B only: pathological, must fail.
	code, out := gateRun(t, benchLines(1_000_000, 4_000_000), "-baseline", base)
	if code != 1 {
		t.Fatalf("4x slowdown exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "EXP-B") || !strings.Contains(out, "FAIL") {
		t.Errorf("failure output does not name the regressed experiment:\n%s", out)
	}
	// Tightening the tolerance flips the verdict for the 2x case.
	if code, _ := gateRun(t, benchLines(2_000_000, 2_000_000), "-baseline", base, "-tol", "1.5"); code != 1 {
		t.Error("2x slowdown passed a 1.5x tolerance")
	}
}

// TestGateSkipsUnknownExperiments: measurements missing from the baseline
// are reported but never fail the gate — adding an experiment must not
// break CI until the baseline is re-pinned.
func TestGateSkipsUnknownExperiments(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(base, []byte(`{"experiments":{"EXP-A":{"experiment":"EXP-A","points":4,"wall_ns":4000000,"ns_per_point":1000000,"points_per_sec":1000}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := gateRun(t, benchLines(1_000_000, 50_000_000), "-baseline", base)
	if code != 0 {
		t.Fatalf("unknown experiment failed the gate (exit %d)\n%s", code, out)
	}
	if !strings.Contains(out, "EXP-B") || !strings.Contains(out, "no baseline") {
		t.Errorf("skipped experiment not reported:\n%s", out)
	}
}

// shardLines fabricates a shard/fleet point-record stream as written by
// `aem bench -shard i/m -json`, `aem serve` or `aem work -residual`:
// a manifest line followed by typed "point" records carrying wall_ns.
func shardLines(fastNS, slowNS int64) string {
	var b strings.Builder
	b.WriteString(`{"type":"shard","shard":0,"of":1,"experiments":["EXP-A","EXP-B"],"grid_points":6}` + "\n")
	for i := 0; i < 4; i++ {
		b.WriteString(`{"type":"point","experiment":"EXP-A","index":` + itoa(i) + `,"points":4,"row":[1],"cells":["1"],"wall_ns":` + i64toa(fastNS) + "}\n")
	}
	for i := 0; i < 2; i++ {
		b.WriteString(`{"type":"point","experiment":"EXP-B","index":` + itoa(i) + `,"points":2,"row":[1],"cells":["1"],"wall_ns":` + i64toa(slowNS) + "}\n")
	}
	return b.String()
}

// TestGateAcceptsShardStreams pins the typed-record fix: shard and fleet
// streams tag every point record with "type":"point", and the gate used
// to skip any record with a non-empty type — so gating a shard stream
// reported "no timed records" and CI could not gate exactly the runs
// that are worth gating. Point records must aggregate (manifest lines
// still skipped), and a shard stream must gate cleanly against a
// baseline pinned from an untyped bench stream of the same timings.
func TestGateAcceptsShardStreams(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	if code, out := gateRun(t, shardLines(1_000_000, 4_000_000), "-baseline", base, "-write-baseline"); code != 0 {
		t.Fatalf("write-baseline from a shard stream exit %d\n%s", code, out)
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var pinned throughputBaseline
	if err := json.Unmarshal(raw, &pinned); err != nil {
		t.Fatal(err)
	}
	if got := pinned.Experiments["EXP-A"].Points; got != 4 {
		t.Errorf("EXP-A points = %d, want 4 — typed point records were skipped", got)
	}
	if got := pinned.Experiments["EXP-A"].NSPerPoint; got != 1_000_000 {
		t.Errorf("EXP-A ns/point = %v, want 1e6 (manifest line must not enter aggregation)", got)
	}

	// The same timings in untyped bench form gate at 1.00x against the
	// shard-pinned baseline: both shapes measure the same thing.
	code, out := gateRun(t, benchLines(1_000_000, 4_000_000), "-baseline", base)
	if code != 0 {
		t.Fatalf("bench stream vs shard-pinned baseline exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "1.00x ok") {
		t.Errorf("cross-shape gate lacks a 1.00x ok verdict:\n%s", out)
	}
	// And a regressed shard stream still fails: the typed path feeds the
	// same comparison, not a separate lenient one.
	if code, out := gateRun(t, shardLines(1_000_000, 40_000_000), "-baseline", base); code != 1 {
		t.Errorf("regressed shard stream exit %d, want 1\n%s", code, out)
	}
}

// TestGateServingExperimentsAgainstCommittedBaseline pins the serving
// sweeps' gate integration: EXP-L1/EXP-L2 entries live in the committed
// testdata baseline, and their point records gate through
// readBenchTimings unchanged whether they arrive as untyped bench rows
// or as "type":"point" shard/fleet records — the satellite claim that
// the new experiments ride the existing gate machinery, not a new one.
func TestGateServingExperimentsAgainstCommittedBaseline(t *testing.T) {
	base, err := readBaseline(filepath.Join("..", "..", "testdata", "throughput_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"EXP-L1", "EXP-L2"} {
		b, ok := base.Experiments[id]
		if !ok {
			t.Fatalf("committed baseline lacks %s", id)
		}
		if b.NSPerPoint <= 0 || b.Points <= 0 {
			t.Fatalf("committed %s baseline is degenerate: %+v", id, b)
		}
	}

	// Synthesize both record shapes at the committed per-point rate and
	// gate against the real committed file: 1.00x on each experiment.
	l1 := base.Experiments["EXP-L1"].NSPerPoint
	l2 := base.Experiments["EXP-L2"].NSPerPoint
	var b strings.Builder
	for i := 0; i < 4; i++ {
		b.WriteString(`{"experiment":"EXP-L1","title":"t","row":` + itoa(i) + `,"columns":["x"],"values":["1"],"wall_ns":` + i64toa(int64(l1)) + "}\n")
	}
	for i := 0; i < 6; i++ {
		b.WriteString(`{"type":"point","experiment":"EXP-L2","index":` + itoa(i) + `,"points":6,"row":[1],"cells":["1"],"wall_ns":` + i64toa(int64(l2)) + "}\n")
	}
	code, out := gateRun(t, b.String(), "-baseline", filepath.Join("..", "..", "testdata", "throughput_baseline.json"))
	if code != 0 {
		t.Fatalf("serving experiments failed the committed gate (exit %d)\n%s", code, out)
	}
	for _, id := range []string{"EXP-L1", "EXP-L2"} {
		if !strings.Contains(out, id) {
			t.Errorf("gate output lacks %s:\n%s", id, out)
		}
	}
	if strings.Contains(out, "no baseline") {
		t.Errorf("serving experiment gated as unknown:\n%s", out)
	}
}

// TestGateRejectsUntimedInput: a bench stream without wall_ns fields (run
// without -timing) must produce a clear error, not a silent pass.
func TestGateRejectsUntimedInput(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	untimed := `{"experiment":"EXP-A","title":"t","row":0,"columns":["x"],"values":["1"]}` + "\n"
	code, _ := gateRun(t, untimed, "-baseline", base)
	if code != 1 {
		t.Fatalf("untimed input exit %d, want 1", code)
	}
}

// TestGateJSONRecords pins the -json trend surface: each comparison emits
// one "type":"gate" record to stdout (the human table moves to stderr),
// and the records are invisible to readBenchTimings — so appending them
// onto the bench artifact they judged leaves a stream that still gates.
func TestGateJSONRecords(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	if code, out := gateRun(t, benchLines(1_000_000, 1_000_000), "-baseline", base, "-write-baseline"); code != 0 {
		t.Fatalf("write-baseline exit %d\n%s", code, out)
	}
	bp := filepath.Join(dir, "bench.json")
	stream := benchLines(1_000_000, 4_000_000) // EXP-B regresses 4x
	if err := os.WriteFile(bp, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	var code int
	var human []byte
	out := captureStdout(t, func() {
		human = captureStderr(t, func() {
			code = gateCmd("aem gate", []string{"-bench", bp, "-baseline", base, "-json"})
		})
	})
	if code != 1 {
		t.Fatalf("4x regression exit %d, want 1", code)
	}
	if !strings.Contains(string(human), "FAIL") {
		t.Errorf("human table missing from stderr under -json:\n%s", human)
	}
	var recs []gateRecord
	for i, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		var rec gateRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stdout line %d is not a JSON record: %v\n%s", i, err, line)
		}
		if rec.Type != "gate" {
			t.Errorf("record %d type %q, want gate", i, rec.Type)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("%d gate records, want 2", len(recs))
	}
	if recs[0].Experiment != "EXP-A" || recs[0].Verdict != "ok" || recs[0].Ratio != 1 {
		t.Errorf("EXP-A record %+v, want ok at 1.00x", recs[0])
	}
	if recs[1].Experiment != "EXP-B" || recs[1].Verdict != "fail" || recs[1].Ratio != 4 {
		t.Errorf("EXP-B record %+v, want fail at 4.00x", recs[1])
	}

	// The trend artifact shape: bench stream + its gate records is still
	// a valid timed stream — gate records don't enter timing aggregation.
	appended := stream + string(out)
	if code, out := gateRun(t, appended, "-baseline", base); code != 1 {
		t.Errorf("appended artifact re-gates with exit %d, want the same verdict 1\n%s", code, out)
	}
	m, _, err := readBenchTimings(strings.NewReader(appended))
	if err != nil {
		t.Fatal(err)
	}
	if m["EXP-A"].Points != 4 || m["EXP-B"].Points != 2 {
		t.Errorf("gate records leaked into timing aggregation: %+v", m)
	}
}

// TestGateNoBaselineRecordVerdict: experiments missing from the baseline
// carry the no-baseline verdict in their record and never fail the gate.
func TestGateNoBaselineRecordVerdict(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(base, []byte(`{"experiments":{"EXP-A":{"experiment":"EXP-A","points":4,"wall_ns":4000000,"ns_per_point":1000000,"points_per_sec":1000}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	bp := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(bp, []byte(benchLines(1_000_000, 9_000_000)), 0o644); err != nil {
		t.Fatal(err)
	}
	var code int
	out := captureStdout(t, func() {
		captureStderr(t, func() {
			code = gateCmd("aem gate", []string{"-bench", bp, "-baseline", base, "-json"})
		})
	})
	if code != 0 {
		t.Fatalf("no-baseline experiment failed the gate (exit %d)", code)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d records, want 2", len(lines))
	}
	var rec gateRecord
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Experiment != "EXP-B" || rec.Verdict != "no-baseline" || rec.Ratio != 0 {
		t.Errorf("EXP-B record %+v, want no-baseline with no ratio", rec)
	}
}
