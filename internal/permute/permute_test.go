package permute

import (
	"testing"
	"testing/quick"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/workload"
)

func instance(seed uint64, n int) ([]aem.Item, []int) {
	return workload.Permutation(workload.NewRNG(seed), n)
}

func TestDirectCorrectness(t *testing.T) {
	cfg := aem.Config{M: 64, B: 4, Omega: 4}
	for _, n := range []int{0, 1, 3, 4, 16, 100, 1000} {
		ma := aem.New(cfg)
		items, perm := instance(uint64(n), n)
		v := aem.Load(ma, items)
		out := Direct(ma, v, perm)
		if err := Verify(v, out); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ma.MemInUse() != 0 {
			t.Fatalf("n=%d: leaked %d memory slots", n, ma.MemInUse())
		}
	}
}

func TestDirectIdentityPermutationIsCheap(t *testing.T) {
	// The identity permutation gathers each output block from exactly one
	// source block: n reads, n writes.
	cfg := aem.Config{M: 64, B: 4, Omega: 4}
	ma := aem.New(cfg)
	const n = 400
	items := make([]aem.Item, n)
	perm := make([]int, n)
	for i := range items {
		items[i] = aem.Item{Key: int64(i), Aux: int64(i)}
		perm[i] = i
	}
	out := Direct(ma, aem.Load(ma, items), perm)
	if err := Verify(aem.Load(ma, items), out); err != nil {
		t.Fatal(err)
	}
	nb := int64(cfg.BlocksOf(n))
	if st := ma.Stats(); st.Reads != nb || st.Writes != nb {
		t.Errorf("identity cost %+v, want reads=writes=%d", st, nb)
	}
}

func TestDirectCostBound(t *testing.T) {
	// O(N + ωn): at most N + n reads and exactly n writes, for any
	// permutation.
	cfg := aem.Config{M: 64, B: 8, Omega: 4}
	const n = 1 << 12
	ma := aem.New(cfg)
	items, perm := instance(9, n)
	Direct(ma, aem.Load(ma, items), perm)
	st := ma.Stats()
	nb := int64(cfg.BlocksOf(n))
	if st.Reads > int64(n)+nb {
		t.Errorf("reads = %d > N + n = %d", st.Reads, int64(n)+nb)
	}
	if st.Writes != nb {
		t.Errorf("writes = %d, want n = %d", st.Writes, nb)
	}
}

func TestSortBasedCorrectness(t *testing.T) {
	cfg := aem.Config{M: 64, B: 4, Omega: 8}
	for _, n := range []int{0, 1, 100, 2000} {
		ma := aem.New(cfg)
		items, _ := instance(uint64(n)+100, n)
		v := aem.Load(ma, items)
		out := SortBased(ma, v)
		if err := Verify(v, out); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBestPicksCheaperStrategy(t *testing.T) {
	// Huge ω with tiny B: direct (N-term) must win. Moderate ω with large
	// B: sort must win. This mirrors the min{} of Theorem 4.5.
	directCfg := aem.Config{M: 32, B: 2, Omega: 1 << 12}
	ma := aem.New(directCfg)
	items, perm := instance(1, 1<<10)
	_, strat := Best(ma, aem.Load(ma, items), perm)
	if strat != StrategyDirect {
		t.Errorf("ω=2^12, B=2: Best chose %v, want direct", strat)
	}

	sortCfg := aem.Config{M: 256, B: 32, Omega: 2}
	ma2 := aem.New(sortCfg)
	items2, perm2 := instance(2, 1<<13)
	_, strat2 := Best(ma2, aem.Load(ma2, items2), perm2)
	if strat2 != StrategySort {
		t.Errorf("ω=2, B=32: Best chose %v, want sort", strat2)
	}
}

func TestBestCorrectEitherWay(t *testing.T) {
	for _, cfg := range []aem.Config{
		{M: 32, B: 2, Omega: 1 << 12},
		{M: 256, B: 32, Omega: 2},
	} {
		ma := aem.New(cfg)
		items, perm := instance(3, 3000)
		v := aem.Load(ma, items)
		out, _ := Best(ma, v, perm)
		if err := Verify(v, out); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
	}
}

func TestMeasuredCostRespectsLowerBound(t *testing.T) {
	// Theorem 4.5 made executable: the measured cost of the best
	// algorithm must be at least the counting lower bound (evaluated with
	// doubled memory per Corollary 4.2 — any M-machine program converts
	// into a round-based 2M-machine program, to which the counting bound
	// applies). It must also stay within a constant factor of the
	// closed-form bound, i.e. the bounds are matching.
	for _, w := range []int{1, 4, 16} {
		cfg := aem.Config{M: 128, B: 8, Omega: w}
		const n = 1 << 13
		ma := aem.New(cfg)
		items, perm := instance(11, n)
		_, _ = Best(ma, aem.Load(ma, items), perm)
		cost := float64(ma.Cost())

		lbParams := bounds.Params{N: n, Cfg: aem.Config{M: 2 * cfg.M, B: cfg.B, Omega: cfg.Omega}}
		lb := bounds.CountingLowerBound(lbParams)
		if cost < lb {
			t.Errorf("ω=%d: measured cost %v below counting lower bound %v", w, cost, lb)
		}
		closed := bounds.PermutingLowerBoundClosed(bounds.Params{N: n, Cfg: cfg})
		if ratio := cost / closed; ratio > 50 {
			t.Errorf("ω=%d: measured/closed-form = %.1f; upper bound not within constant factor", w, ratio)
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	cfg := aem.Config{M: 64, B: 4, Omega: 2}
	ma := aem.New(cfg)
	items, _ := instance(5, 64)
	v := aem.Load(ma, items)
	bad := aem.Load(ma, items) // unpermuted: wrong placement
	if err := Verify(v, bad); err == nil {
		t.Error("Verify accepted an unpermuted output")
	}
	short := aem.Load(ma, items[:32])
	if err := Verify(v, short); err == nil {
		t.Error("Verify accepted a truncated output")
	}
}

func TestDirectQuick(t *testing.T) {
	f := func(seed uint64, nSel uint16, bSel uint8) bool {
		n := int(nSel%2000) + 1
		b := 1 + int(bSel%8)
		cfg := aem.Config{M: 8 * b, B: b, Omega: 3}
		ma := aem.New(cfg)
		items, perm := workload.Permutation(workload.NewRNG(seed), n)
		v := aem.Load(ma, items)
		out := Direct(ma, v, perm)
		return Verify(v, out) == nil && ma.MemInUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
