package pq

import "repro/internal/aem"

// frontierTree is a tournament (winner) tree over the frontiers of live
// runs. It replaces the refill loop's linear head scan: selecting the
// global minimum costs O(log k) head comparisons per extracted item
// instead of O(k), where k is the number of live runs — internal
// computation is free in the model, but the linear scan made large refills
// quadratic in wall-clock time.
//
// The tree performs exactly the same I/O as the scan it replaces: building
// it loads each live run's current frontier block (the scan loaded every
// live run's frontier on its first iteration), and popping advances one
// run's cursor, loading its next block only when the cursor crosses a
// block boundary — identical to the scan's lazy loadFrontier. Ties between
// equal heads are broken by run order, matching the scan's first-wins
// rule, so the refill sequence (and with it every downstream I/O) is
// unchanged bit for bit.
type frontierTree struct {
	runs  []*run // leaves, in the queue's level-then-index iteration order
	win   []int  // win[p] = index into runs of the winner under node p; -1 = empty
	size  int    // leaf capacity, a power of two
	load  func(*run)
	dirty int // leaf whose cursor advanced but whose path is not replayed; -1 = none
}

// newFrontierTree builds a tree over the given runs (exhausted runs are
// ignored), loading each live run's frontier block.
func newFrontierTree(runs []*run, load func(*run)) *frontierTree {
	live := runs[:0:0]
	for _, r := range runs {
		if r.remaining() > 0 {
			load(r)
			live = append(live, r)
		}
	}
	size := 1
	for size < len(live) {
		size *= 2
	}
	t := &frontierTree{runs: live, win: make([]int, 2*size), size: size, load: load, dirty: -1}
	for p := range t.win {
		t.win[p] = -1
	}
	for i := range live {
		t.win[size+i] = i
	}
	for p := size - 1; p >= 1; p-- {
		t.win[p] = t.better(t.win[2*p], t.win[2*p+1])
	}
	return t
}

// better returns the leaf index whose run head wins (smaller head, run
// order breaking ties); -1 loses to everything.
func (t *frontierTree) better(a, b int) int {
	switch {
	case a < 0:
		return b
	case b < 0:
		return a
	case aem.Less(t.runs[b].head(), t.runs[a].head()):
		return b
	default:
		return a // equal heads: lower run order wins, like the scan did
	}
}

// min returns the run holding the globally smallest unconsumed item.
func (t *frontierTree) min() (*run, bool) {
	t.settle()
	if t.size == 0 || t.win[1] < 0 {
		return nil, false
	}
	return t.runs[t.win[1]], true
}

// pop consumes the current minimum (the run min returned): it advances the
// winning run's cursor but defers the frontier load and path replay to the
// next min call — a refill that stops right after a pop must not load the
// block it will never look at, exactly as the linear scan it replaced
// loaded frontiers only when the next selection touched them.
func (t *frontierTree) pop() {
	t.settle()
	i := t.win[1]
	t.runs[i].consumed++
	t.dirty = i
}

// settle reloads a popped run's frontier and replays its root path.
func (t *frontierTree) settle() {
	if t.dirty < 0 {
		return
	}
	i := t.dirty
	t.dirty = -1
	r := t.runs[i]
	if r.remaining() > 0 {
		t.load(r)
	} else {
		t.win[t.size+i] = -1
	}
	for p := (t.size + i) / 2; p >= 1; p /= 2 {
		t.win[p] = t.better(t.win[2*p], t.win[2*p+1])
	}
}
