package program

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/workload"
)

// FromPermutation constructs the straight-line program that realizes the
// permutation perm (atom i moves to output position perm[i]) with the
// direct block-gather strategy: for each output block, read the source
// blocks holding its atoms (taking exactly those atoms) and write the
// assembled block to a fresh address. Atom perm-destination d ends in
// block ⌈N/B⌉ + d/B.
//
// This is the program-level counterpart of permute.Direct and the standard
// witness that any permutation is realizable at cost O(N + ωn); it is the
// workhorse input for exercising Lemma 4.1 and Lemma 4.3.
func FromPermutation(cfg aem.Config, perm []int) (*Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(perm)
	p := &Program{N: n, Cfg: cfg}
	if n == 0 {
		return p, nil
	}
	source := make([]int, n)
	seen := make([]bool, n)
	for i, d := range perm {
		if d < 0 || d >= n || seen[d] {
			return nil, fmt.Errorf("program: perm is not a permutation at index %d", i)
		}
		seen[d] = true
		source[d] = i
	}

	b := cfg.B
	inBlocks := cfg.BlocksOf(n)
	for lo := 0; lo < n; lo += b {
		hi := lo + b
		if hi > n {
			hi = n
		}
		// Group this output block's atoms by source block.
		bySource := make(map[int][]int)
		for d := lo; d < hi; d++ {
			src := source[d] / b
			bySource[src] = append(bySource[src], source[d])
		}
		for _, src := range sortedKeys(bySource) {
			p.Ops = append(p.Ops, Op{Kind: aem.OpRead, Addr: src, Atoms: bySource[src]})
		}
		outAtoms := make([]int, 0, hi-lo)
		for d := lo; d < hi; d++ {
			outAtoms = append(outAtoms, source[d])
		}
		p.Ops = append(p.Ops, Op{Kind: aem.OpWrite, Addr: inBlocks + lo/b, Atoms: outAtoms})
	}
	return p, nil
}

// ExpectedPlacement returns the placement FromPermutation's program ends
// in: atom with destination d sits in block ⌈N/B⌉ + d/B.
func ExpectedPlacement(cfg aem.Config, perm []int) Placement {
	inBlocks := cfg.BlocksOf(len(perm))
	pl := make(Placement, len(perm))
	for i, d := range perm {
		pl[i] = inBlocks + d/cfg.B
	}
	return pl
}

// Random generates a random valid program: it repeatedly reads random
// non-empty blocks (taking random subsets, respecting the memory bound)
// and writes random batches of in-memory atoms to fresh blocks, then
// flushes everything left in memory. The resulting program computes *some*
// placement; Run reports which. Random programs exercise the Lemma 4.1 and
// Lemma 4.3 transformations far from the structured cases.
func Random(rng *workload.RNG, cfg aem.Config, n, steps int) *Program {
	p := &Program{N: n, Cfg: cfg}
	if n == 0 {
		return p
	}
	type blk struct {
		addr  int
		atoms []int
	}
	var disk []blk
	for a := 0; a < n; a += cfg.B {
		hi := a + cfg.B
		if hi > n {
			hi = n
		}
		atoms := make([]int, 0, hi-a)
		for x := a; x < hi; x++ {
			atoms = append(atoms, x)
		}
		disk = append(disk, blk{addr: a / cfg.B, atoms: atoms})
	}
	nextFresh := cfg.BlocksOf(n)
	var mem []int

	flushMem := func() {
		for len(mem) > 0 {
			take := cfg.B
			if take > len(mem) {
				take = len(mem)
			}
			p.Ops = append(p.Ops, Op{Kind: aem.OpWrite, Addr: nextFresh, Atoms: append([]int(nil), mem[:take]...)})
			disk = append(disk, blk{addr: nextFresh, atoms: append([]int(nil), mem[:take]...)})
			nextFresh++
			mem = mem[take:]
		}
	}

	for s := 0; s < steps; s++ {
		if len(mem) > cfg.M-cfg.B || (len(mem) > 0 && rng.Intn(3) == 0) {
			// Write a random batch of up to B atoms from memory.
			take := 1 + rng.Intn(min(cfg.B, len(mem)))
			batch := append([]int(nil), mem[:take]...)
			p.Ops = append(p.Ops, Op{Kind: aem.OpWrite, Addr: nextFresh, Atoms: batch})
			disk = append(disk, blk{addr: nextFresh, atoms: batch})
			nextFresh++
			mem = mem[take:]
			continue
		}
		// Read a random subset of a random non-empty block.
		idx := -1
		for try := 0; try < 8; try++ {
			c := rng.Intn(len(disk))
			if len(disk[c].atoms) > 0 {
				idx = c
				break
			}
		}
		if idx < 0 {
			continue
		}
		atoms := disk[idx].atoms
		take := 1 + rng.Intn(len(atoms))
		if take > cfg.M-len(mem) {
			take = cfg.M - len(mem)
		}
		if take <= 0 {
			continue
		}
		// Take a random subset of size take.
		perm := rng.Perm(len(atoms))
		chosen := make([]int, take)
		for i := 0; i < take; i++ {
			chosen[i] = atoms[perm[i]]
		}
		sortInts(chosen)
		p.Ops = append(p.Ops, Op{Kind: aem.OpRead, Addr: disk[idx].addr, Atoms: chosen})
		mem = append(mem, chosen...)
		// Build the remainder into a fresh slice: the old array may be
		// aliased by a previously recorded write op's atom list.
		remaining := make([]int, 0, len(atoms)-take)
		inChosen := make(map[int]struct{}, take)
		for _, a := range chosen {
			inChosen[a] = struct{}{}
		}
		for _, a := range atoms {
			if _, ok := inChosen[a]; !ok {
				remaining = append(remaining, a)
			}
		}
		disk[idx].atoms = remaining
	}
	flushMem()
	return p
}
