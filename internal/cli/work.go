package cli

import (
	"context"
	"flag"
	"os"
	"runtime"

	"repro/internal/fleet"
	"repro/internal/harness"
)

// workCmd is the fleet's worker side, in two modes:
//
//	aem work -connect http://host:8377      lease points from a coordinator
//	aem work -residual rest.json            run a residual spec's missing
//	                                        points, shard stream to stdout
//
// A connected worker streams every record back over HTTP as it
// completes, so a worker killed mid-lease loses only its unreported
// points — the coordinator re-issues them when the lease expires. A
// residual worker needs no coordinator: it reads the missing-point list
// `aem merge -residual` wrote for an interrupted run, measures exactly
// those points, and emits a residual shard stream that completes the
// original partial outputs at the next `aem merge`.
func workCmd(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		connect  = fs.String("connect", "", "coordinator base URL to lease points from")
		residual = fs.String("residual", "", "residual spec file (from `aem merge -residual`) to run instead of connecting")
		par      = fs.Int("par", runtime.NumCPU(), "number of grid points to run concurrently")
		quiet    = fs.Bool("q", false, "suppress progress logging")
	)
	fs.Parse(args)

	if (*connect == "") == (*residual == "") {
		fail(prog, "exactly one of -connect or -residual is required")
		return 2
	}

	if *residual != "" {
		f, err := os.Open(*residual)
		if err != nil {
			fail(prog, "%v", err)
			return 1
		}
		rs, perr := harness.ReadResidualSpec(f)
		f.Close()
		if perr != nil {
			fail(prog, "%s: %v", *residual, perr)
			return 1
		}
		if err := harness.RunResidual(rs, *par, os.Stdout); err != nil {
			fail(prog, "%v", err)
			return 1
		}
		return 0
	}

	cfg := fleet.WorkerConfig{URL: *connect, Par: *par}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	if err := fleet.Work(context.Background(), cfg); err != nil {
		fail(prog, "%v", err)
		return 1
	}
	return 0
}
