package aem

import (
	"fmt"
)

// OpKind distinguishes the two kinds of I/O operation in a trace.
type OpKind uint8

const (
	// OpRead is a block read from external memory.
	OpRead OpKind = iota
	// OpWrite is a block write to external memory.
	OpWrite
)

// String returns "R" or "W".
func (k OpKind) String() string {
	if k == OpRead {
		return "R"
	}
	return "W"
}

// TraceOp is one recorded I/O operation.
type TraceOp struct {
	Kind OpKind
	Addr Addr
}

// Machine simulates an (M,B,ω)-AEM machine: a block-granular external
// memory, an internal memory capacity meter, and I/O cost accounting.
//
// The external memory's contents live in a pluggable Storage engine; the
// machine itself owns only the cost model. New machines default to the
// reference SliceStorage — use NewWithStorage to run on the zero-allocation
// ArenaStorage or the data-free CountingStorage (or any future engine).
//
// The simulator deliberately does not model internal memory *contents* —
// internal computation is free in the model — but it does meter how many
// item slots an algorithm has reserved, and panics if the total ever exceeds
// M. Algorithms bracket their buffers with Reserve/Release; exceeding M is a
// bug in the algorithm (its memory footprint analysis is wrong), so the
// violation is an assertion failure rather than an error return.
type Machine struct {
	cfg       Config
	store     Storage
	stats     Stats
	phases    PhaseStats
	phase     string
	phaseSlot *Stats // phases slot for the current phase, kept hot
	inUse     int
	peak      int
	sink      TraceSink
	started   *MemorySink // sink installed by StartTrace, if any

	// Concrete-engine fast paths, resolved by one type switch at
	// construction so the per-I/O hot path never pays interface dispatch
	// for the built-in engines. At most one is non-nil; all nil means an
	// external engine served through the Storage interface.
	arena    *ArenaStorage
	counting *CountingStorage
	file     *FileStorage

	zeros []Item // lazily built zero block for ScanWrites on data engines
}

// New returns a fresh machine backed by the reference slice engine. It
// panics if cfg is invalid; constructing a machine from bad parameters is a
// programming error, and every CLI validates user input before reaching
// this point.
func New(cfg Config) *Machine {
	return NewWithStorage(cfg, NewSliceStorage())
}

// NewWithStorage returns a fresh machine on the given storage engine,
// which must be empty. Like New it panics on an invalid cfg, and on an
// engine whose fixed block capacity is smaller than cfg.B — catching the
// misconfiguration at construction rather than at the first large write
// deep inside an algorithm.
func NewWithStorage(cfg Config, store Storage) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if store.NumBlocks() != 0 {
		panic(fmt.Sprintf("aem: NewWithStorage: engine already holds %d blocks", store.NumBlocks()))
	}
	if sized, ok := store.(interface{ BlockSize() int }); ok && sized.BlockSize() < cfg.B {
		panic(fmt.Sprintf("aem: NewWithStorage: engine block capacity %d < B = %d", sized.BlockSize(), cfg.B))
	}
	ma := &Machine{cfg: cfg, store: store}
	switch s := store.(type) {
	case *ArenaStorage:
		ma.arena = s
	case *CountingStorage:
		ma.counting = s
	case *FileStorage:
		ma.file = s
	}
	ma.phaseSlot = ma.phases.slot("main")
	ma.phase = "main"
	return ma
}

// Recycle returns the machine to the state NewWithStorage would produce
// for cfg on the same storage engine: counters, phases, memory metering
// and any trace sink are cleared and the engine is Reset to zero blocks
// (retaining its capacity, which is the point — a pooled machine's next
// run allocates nothing in steady state). cfg may differ from the
// machine's previous configuration in M and ω freely; like the
// constructor, Recycle panics on an invalid cfg or an engine whose fixed
// block capacity is smaller than the new B.
func (ma *Machine) Recycle(cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if sized, ok := ma.store.(interface{ BlockSize() int }); ok && sized.BlockSize() < cfg.B {
		panic(fmt.Sprintf("aem: Recycle: engine block capacity %d < B = %d", sized.BlockSize(), cfg.B))
	}
	ma.cfg = cfg
	ma.store.Reset()
	ma.stats = Stats{}
	ma.phases = PhaseStats{}
	ma.phase = "main"
	ma.phaseSlot = ma.phases.slot("main")
	ma.inUse = 0
	ma.peak = 0
	ma.sink = nil
	ma.started = nil
}

// Config returns the machine parameters.
func (ma *Machine) Config() Config { return ma.cfg }

// Close releases the machine's storage engine. A machine over a stateful
// engine (the file engine's descriptor, mapping and temp file) must be
// closed after use exactly like an os.File; over RAM engines Close is a
// no-op. The machine is unusable afterwards.
func (ma *Machine) Close() error { return ma.store.Close() }

// Sync flushes the storage engine's written blocks to its backing device.
func (ma *Machine) Sync() error { return ma.store.Sync() }

// Storage returns the machine's storage engine.
func (ma *Machine) Storage() Storage { return ma.store }

// Stats returns the accumulated I/O counts.
func (ma *Machine) Stats() Stats { return ma.stats }

// Cost returns the accumulated AEM cost Q = Qr + ω·Qw.
func (ma *Machine) Cost() int64 { return ma.stats.Cost(ma.cfg.Omega) }

// ResetStats zeroes the I/O counters (the disk contents are untouched).
func (ma *Machine) ResetStats() {
	ma.stats = Stats{}
	ma.phases = PhaseStats{}
	ma.phaseSlot = ma.phases.slot(ma.phase)
}

// SetPhase labels subsequent I/Os with the given phase name for per-stage
// accounting and returns the previous label so callers can restore it.
// The default phase is "main".
func (ma *Machine) SetPhase(name string) (previous string) {
	previous = ma.phase
	ma.phase = name
	ma.phaseSlot = ma.phases.slot(name)
	return previous
}

// Phases returns the per-phase I/O accounting.
func (ma *Machine) Phases() *PhaseStats { return &ma.phases }

// SetTraceSink installs a sink that receives every subsequent I/O
// operation, returning the previously installed sink (nil if none). Pass
// nil to stop tracing. Streaming sinks make production-scale traces
// possible: the machine holds no trace state of its own.
func (ma *Machine) SetTraceSink(sink TraceSink) (previous TraceSink) {
	previous = ma.sink
	ma.sink = sink
	ma.started = nil
	return previous
}

// StartTrace begins recording every I/O operation into a fresh in-memory
// sink. Recording continues until StopTrace is called. It is shorthand
// for SetTraceSink(&MemorySink{}) plus bookkeeping, kept for the common
// record-then-analyze pattern.
func (ma *Machine) StartTrace() {
	ma.started = &MemorySink{}
	ma.sink = ma.started
}

// StopTrace stops recording and returns the operations recorded since
// StartTrace. It panics if tracing was started with SetTraceSink rather
// than StartTrace — the caller owns such a sink and reads it directly.
func (ma *Machine) StopTrace() []TraceOp {
	if ma.started == nil {
		panic("aem: StopTrace without StartTrace")
	}
	ops := ma.started.Ops()
	ma.sink = nil
	ma.started = nil
	return ops
}

// Tracing reports whether a trace sink is currently installed.
func (ma *Machine) Tracing() bool { return ma.sink != nil }

// NumBlocks returns the number of blocks currently allocated on disk.
func (ma *Machine) NumBlocks() int { return ma.nblocks() }

// Alloc reserves count fresh, empty, contiguous blocks of external memory
// and returns the address of the first. Allocation itself is free: the
// model's external memory is unbounded and address arithmetic costs
// nothing. Writing to the blocks costs I/O as usual.
func (ma *Machine) Alloc(count int) Addr {
	if count < 0 {
		panic(fmt.Sprintf("aem: Alloc(%d): negative count", count))
	}
	return ma.store.Alloc(count)
}

// Read performs one read I/O and returns a copy of the block's contents
// (between 0 and B items). The copy models the transfer into internal
// memory; callers own the returned slice but must account for its footprint
// with Reserve if they retain it.
//
// Read allocates the returned slice on every call; hot paths should use
// ReadInto with a reused buffer instead.
func (ma *Machine) Read(a Addr) []Item {
	return ma.ReadInto(a, nil)
}

// ReadInto performs one read I/O, copies the block's contents into dst and
// returns the filled prefix. With cap(dst) ≥ B it performs no allocation —
// this is the hot path every algorithm package uses, and the reason the
// arena engine reaches zero allocations per I/O. The previous contents of
// dst are overwritten; the returned slice aliases dst.
func (ma *Machine) ReadInto(a Addr, dst []Item) []Item {
	ma.checkAddr(a, "ReadInto")
	ma.count(OpRead, a)
	if ma.arena != nil {
		return ma.arena.ReadInto(a, dst)
	}
	if ma.counting != nil {
		return ma.counting.ReadInto(a, dst)
	}
	if ma.file != nil {
		return ma.file.ReadInto(a, dst)
	}
	return ma.store.ReadInto(a, dst)
}

// Write performs one write I/O, replacing the block's contents with a copy
// of items. It panics if len(items) > B: a block cannot hold more than B
// items.
func (ma *Machine) Write(a Addr, items []Item) {
	ma.checkAddr(a, "Write")
	if len(items) > ma.cfg.B {
		panic(fmt.Sprintf("aem: Write(%d): %d items exceed block size B=%d", a, len(items), ma.cfg.B))
	}
	ma.count(OpWrite, a)
	ma.storeWrite(a, items)
}

// storeWrite dispatches a storage write through the concrete-engine fast
// path when one is cached.
func (ma *Machine) storeWrite(a Addr, items []Item) {
	if ma.arena != nil {
		ma.arena.Write(a, items)
		return
	}
	if ma.counting != nil {
		ma.counting.Write(a, items)
		return
	}
	if ma.file != nil {
		ma.file.Write(a, items)
		return
	}
	ma.store.Write(a, items)
}

// ScanReads performs blocks consecutive read I/Os over the address range
// [base, base+blocks) as one batched accounting step: the range is
// validated once and Stats and the current phase slot advance by a single
// addition instead of one count per block. It is the bulk primitive
// behind counting-only sweeps, where whole scan phases advance
// arithmetically rather than block-by-block.
//
// ScanReads does not materialize the transferred values — it models a
// data-oblivious scan whose schedule never branches on block contents
// (the paper's lower-bound setting: Q = Qr + ω·Qw is all that matters).
// Programs that inspect values use ReadInto or a Scanner, whose
// accounting ScanReads matches I/O-for-I/O.
//
// With a TraceSink installed the per-op path is taken instead, so
// recorded traces are byte-identical to an unbatched scan of the same
// range.
func (ma *Machine) ScanReads(base Addr, blocks int) {
	ma.checkRange(base, blocks, "ScanReads")
	if blocks == 0 {
		return
	}
	if ma.sink != nil {
		for i := 0; i < blocks; i++ {
			ma.count(OpRead, base+Addr(i))
		}
		return
	}
	ma.stats.Reads += int64(blocks)
	ma.phaseSlot.Reads += int64(blocks)
}

// ScanWrites performs blocks consecutive write I/Os over the address
// range [base, base+blocks) as one batched accounting step, modeling a
// streaming writer that fills every block to B items and the final block
// to lastLen (1 ≤ lastLen ≤ B) — exactly the schedule a Writer produces
// appending (blocks−1)·B + lastLen items. The values written are zero
// items: like ScanReads, the primitive serves data-oblivious programs
// whose output values are never inspected. Block lengths are recorded so
// subsequent scans of the range see the same sizes the per-op path would
// leave.
//
// On the counting engine the data plane is a bulk length update; on the
// data-bearing engines each block is zero-filled through the normal
// storage write. With a TraceSink installed the accounting takes the
// per-op path, so recorded traces are byte-identical to the equivalent
// Writer run.
func (ma *Machine) ScanWrites(base Addr, blocks int, lastLen int) {
	ma.checkRange(base, blocks, "ScanWrites")
	if blocks == 0 {
		return
	}
	if lastLen < 1 || lastLen > ma.cfg.B {
		panic(fmt.Sprintf("aem: ScanWrites(%d, %d): last block length %d outside [1, B=%d]",
			base, blocks, lastLen, ma.cfg.B))
	}
	if ma.sink != nil {
		for i := 0; i < blocks; i++ {
			ma.count(OpWrite, base+Addr(i))
		}
	} else {
		ma.stats.Writes += int64(blocks)
		ma.phaseSlot.Writes += int64(blocks)
	}
	if ma.counting != nil {
		ma.counting.setLens(base, blocks, int32(ma.cfg.B), int32(lastLen))
		return
	}
	z := ma.zeroBlock()
	for i := 0; i < blocks-1; i++ {
		ma.storeWrite(base+Addr(i), z)
	}
	ma.storeWrite(base+Addr(blocks-1), z[:lastLen])
}

// zeroBlock returns a B-item all-zero block, built lazily and reused; it
// is only ever copied from, never written to.
func (ma *Machine) zeroBlock() []Item {
	if len(ma.zeros) < ma.cfg.B {
		ma.zeros = make([]Item, ma.cfg.B)
	}
	return ma.zeros[:ma.cfg.B]
}

// Peek returns the block's contents without performing (or costing) an I/O.
// It exists for test verification and for "program knowledge": in the
// paper's program model (§2) the structure of the input is known to the
// program for free; only data movement costs. Algorithms must not use Peek
// to move item *values* — tests enforce cost bounds that would be violated
// by such cheating anyway.
func (ma *Machine) Peek(a Addr) []Item {
	return ma.PeekInto(a, nil)
}

// PeekInto is Peek with a caller-owned buffer, mirroring ReadInto.
func (ma *Machine) PeekInto(a Addr, dst []Item) []Item {
	ma.checkAddr(a, "PeekInto")
	if ma.arena != nil {
		return ma.arena.ReadInto(a, dst)
	}
	if ma.counting != nil {
		return ma.counting.ReadInto(a, dst)
	}
	if ma.file != nil {
		return ma.file.ReadInto(a, dst)
	}
	return ma.store.ReadInto(a, dst)
}

// Poke replaces the block's contents without performing (or costing) an
// I/O. It is used to lay out the *input*, which the model places in
// external memory at time zero at no cost.
func (ma *Machine) Poke(a Addr, items []Item) {
	ma.checkAddr(a, "Poke")
	if len(items) > ma.cfg.B {
		panic(fmt.Sprintf("aem: Poke(%d): %d items exceed block size B=%d", a, len(items), ma.cfg.B))
	}
	ma.storeWrite(a, items)
}

// Reserve meters the allocation of slots items of internal memory. It
// panics if the total reserved would exceed M.
func (ma *Machine) Reserve(slots int) {
	if slots < 0 {
		panic(fmt.Sprintf("aem: Reserve(%d): negative count", slots))
	}
	if ma.inUse+slots > ma.cfg.M {
		panic(fmt.Sprintf("%v: in use %d + requested %d > M = %d",
			ErrMemoryOverflow, ma.inUse, slots, ma.cfg.M))
	}
	ma.inUse += slots
	if ma.inUse > ma.peak {
		ma.peak = ma.inUse
	}
}

// Release returns slots items of internal memory to the machine.
func (ma *Machine) Release(slots int) {
	if slots < 0 || slots > ma.inUse {
		panic(fmt.Sprintf("aem: Release(%d): in use %d", slots, ma.inUse))
	}
	ma.inUse -= slots
}

// MemInUse returns the number of internal memory slots currently reserved.
func (ma *Machine) MemInUse() int { return ma.inUse }

// MemPeak returns the high-water mark of reserved internal memory.
func (ma *Machine) MemPeak() int { return ma.peak }

func (ma *Machine) count(kind OpKind, a Addr) {
	if kind == OpRead {
		ma.stats.Reads++
		ma.phaseSlot.Reads++
	} else {
		ma.stats.Writes++
		ma.phaseSlot.Writes++
	}
	if ma.sink != nil {
		ma.sink.Record(TraceOp{Kind: kind, Addr: a})
	}
}

// checkRange validates a bulk primitive's address range in one step —
// the whole point of batching is that this check runs once per phase
// segment, not once per block.
func (ma *Machine) checkRange(base Addr, blocks int, op string) {
	if blocks < 0 {
		panic(fmt.Sprintf("aem: %s(%d, %d): negative block count", op, base, blocks))
	}
	if base < 0 || int(base)+blocks > ma.nblocks() {
		panic(fmt.Sprintf("aem: %s(%d, %d): range outside [0,%d)", op, base, blocks, ma.nblocks()))
	}
}

func (ma *Machine) checkAddr(a Addr, op string) {
	if a < 0 || int(a) >= ma.nblocks() {
		panic(fmt.Sprintf("aem: %s(%d): address out of range [0,%d)", op, a, ma.nblocks()))
	}
}

// nblocks is NumBlocks through the concrete-engine fast path: the address
// check runs on every I/O, so it must not pay interface dispatch either.
func (ma *Machine) nblocks() int {
	if ma.arena != nil {
		return len(ma.arena.lens)
	}
	if ma.counting != nil {
		return len(ma.counting.lens)
	}
	if ma.file != nil {
		return len(ma.file.lens)
	}
	return ma.store.NumBlocks()
}
