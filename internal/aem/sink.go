package aem

import (
	"io"
	"strconv"
)

// TraceSink receives every I/O operation a machine performs while a sink
// is installed (SetTraceSink). Decoupling trace consumption from the
// machine means production-scale traces no longer have to accumulate in
// RAM: a MemorySink keeps the classic in-memory []TraceOp behavior, while
// a StreamSink writes each operation through a bounded buffer to any
// io.Writer (a file, a pipe, a compressor).
//
// Record is called from the machine's I/O hot path; implementations
// should not allocate per operation.
type TraceSink interface {
	Record(op TraceOp)
}

// MemorySink buffers the trace in memory, exactly like the machine's
// original recorder. Use it when the trace is consumed programmatically
// (round decomposition, Lemma 4.1 conversion) and fits comfortably in RAM.
type MemorySink struct {
	ops []TraceOp
}

// Record implements TraceSink.
func (s *MemorySink) Record(op TraceOp) { s.ops = append(s.ops, op) }

// Ops returns the recorded operations.
func (s *MemorySink) Ops() []TraceOp { return s.ops }

// Reset discards the recorded operations, retaining capacity.
func (s *MemorySink) Reset() { s.ops = s.ops[:0] }

// streamSinkBufSize is the flush threshold of a StreamSink's internal
// buffer, in bytes. One encoded op is at most ~22 bytes, so the sink holds
// a few thousand ops at a time regardless of trace length.
const streamSinkBufSize = 1 << 16

// StreamSink encodes operations as text lines — "R 42\n" / "W 7\n", the
// kind "R" or "W" followed by the block address — and writes them to w
// through an internal buffer, flushed whenever it fills. Memory use is
// O(1) in the trace length.
//
// Error contract: the first write error is sticky. Operations recorded
// after it are counted by Len but not encoded or written — the sink goes
// quiet, the traced computation proceeds — and the error is reported by
// every subsequent Flush. Len therefore always equals the number of
// operations the machine performed while the sink was installed, whether
// or not the underlying writer accepted them; callers that need to know
// whether the encoded stream is complete must check Flush's error, not
// compare lengths.
type StreamSink struct {
	w   io.Writer
	buf []byte
	n   int64
	err error
}

// NewStreamSink returns a streaming sink writing to w.
func NewStreamSink(w io.Writer) *StreamSink {
	return &StreamSink{w: w, buf: make([]byte, 0, streamSinkBufSize)}
}

// Record implements TraceSink. It never allocates once the buffer exists.
func (s *StreamSink) Record(op TraceOp) {
	s.n++
	if s.err != nil {
		return // sticky error: counted, not encoded (see the type docs)
	}
	if op.Kind == OpRead {
		s.buf = append(s.buf, 'R', ' ')
	} else {
		s.buf = append(s.buf, 'W', ' ')
	}
	s.buf = strconv.AppendInt(s.buf, int64(op.Addr), 10)
	s.buf = append(s.buf, '\n')
	if len(s.buf) >= streamSinkBufSize-32 {
		s.flush()
	}
}

// Len returns the number of operations recorded so far, including any
// dropped after a sticky write error (see the type docs).
func (s *StreamSink) Len() int64 { return s.n }

// Flush writes any buffered operations to the underlying writer and
// returns the first error encountered over the sink's lifetime.
func (s *StreamSink) Flush() error {
	s.flush()
	return s.err
}

func (s *StreamSink) flush() {
	if s.err != nil || len(s.buf) == 0 {
		return
	}
	_, s.err = s.w.Write(s.buf)
	s.buf = s.buf[:0]
}
