package aem

// InsertSorted inserts it into the ascending ((Key, Aux)-ordered) slice,
// returning the grown slice. It is the shared helper behind every small
// sorted in-memory buffer in the repository (deletion buffers, stashes,
// selection lists); internal computation is free in the model, but one
// implementation keeps the ordering rule in one place.
func InsertSorted(buf []Item, it Item) []Item {
	lo, hi := 0, len(buf)
	for lo < hi {
		mid := (lo + hi) / 2
		if Less(buf[mid], it) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	buf = append(buf, Item{})
	copy(buf[lo+1:], buf[lo:])
	buf[lo] = it
	return buf
}

// ItemHeap is a binary heap of Items in the (Key, Aux) total order. The
// zero value is an empty min-heap; set Max for a max-heap (used to retain
// the k smallest of a stream by evicting the root). Like InsertSorted it
// is free internal computation — a shared structure for the model's
// in-memory bookkeeping, not a costed data structure.
type ItemHeap struct {
	items []Item
	// Max flips the order: the root is the largest item.
	Max bool
}

func (h *ItemHeap) before(a, b Item) bool {
	if h.Max {
		return Less(b, a)
	}
	return Less(a, b)
}

// Len returns the number of items held.
func (h *ItemHeap) Len() int { return len(h.items) }

// Peek returns the root (minimum, or maximum for a Max heap) without
// removing it. The heap must be non-empty.
func (h *ItemHeap) Peek() Item { return h.items[0] }

// Push adds an item.
func (h *ItemHeap) Push(it Item) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 && h.before(h.items[i], h.items[(i-1)/2]) {
		h.items[i], h.items[(i-1)/2] = h.items[(i-1)/2], h.items[i]
		i = (i - 1) / 2
	}
}

// Pop removes and returns the root. The heap must be non-empty.
func (h *ItemHeap) Pop() Item {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		next := i
		if l < len(h.items) && h.before(h.items[l], h.items[next]) {
			next = l
		}
		if r < len(h.items) && h.before(h.items[r], h.items[next]) {
			next = r
		}
		if next == i {
			return top
		}
		h.items[i], h.items[next] = h.items[next], h.items[i]
		i = next
	}
}
