package bounds

import (
	"math"

	"repro/internal/aem"
	"repro/internal/dict"
)

// Predicted upper-bound cost formulas for the algorithms implemented in
// this repository. Each returns the leading-term expression from the paper
// with explicit read/write splits where the paper states them, so the
// harness can compare measured Qr and Qw against predictions separately.

// PredictedIO is a predicted (reads, writes) pair; Cost applies Q = r + ωw.
type PredictedIO struct {
	Reads  float64
	Writes float64
}

// Cost returns the AEM cost of the prediction.
func (p PredictedIO) Cost(omega int) float64 {
	return p.Reads + float64(omega)*p.Writes
}

// MergeSortLevels returns the number of merge levels of the §3 mergesort:
// the recursion divides by d = ωm per level until subproblems reach the
// ωM base case, so levels = ⌈log_d(N/(ωM))⌉ (at least 0).
func MergeSortLevels(p Params) float64 {
	d := p.omega() * p.mBlocks()
	base := p.omega() * float64(p.Cfg.M)
	if float64(p.N) <= base {
		return 0
	}
	return math.Ceil(logBase(float64(p.N)/base, d))
}

// MergeSortPredicted returns the predicted I/O counts of the AEM mergesort
// of Section 3: O(ω·n·log_{ωm} n) reads and O(n·log_{ωm} n) writes. The
// prediction uses (levels + 1) passes — each merge level plus the base
// case — each costing ωn reads and n writes, which is the paper's bound
// with its constants made concrete.
func MergeSortPredicted(p Params) PredictedIO {
	n, w := p.nBlocks(), p.omega()
	passes := MergeSortLevels(p) + 1
	return PredictedIO{Reads: w * n * passes, Writes: n * passes}
}

// SmallSortPredicted returns the predicted I/O counts of the base-case sort
// of Blelloch et al. [7, Lemma 4.2] for N′ ≤ ωM items: O(ω·n′) reads and
// O(n′) writes via ω selection passes.
func SmallSortPredicted(p Params) PredictedIO {
	n := p.nBlocks()
	passes := math.Ceil(float64(p.N) / float64(p.Cfg.M))
	return PredictedIO{Reads: n * passes, Writes: n}
}

// EMMergeSortPredicted returns the predicted I/O counts of the classic
// symmetric-EM m-way mergesort run unchanged on an AEM machine: n reads
// and n writes per level over base m, so its AEM cost is (1+ω)·n·log_m n —
// the baseline the §3 algorithm improves on by moving the log to base ωm.
func EMMergeSortPredicted(p Params) PredictedIO {
	n, m := p.nBlocks(), p.mBlocks()
	if m < 2 {
		m = 2
	}
	passes := math.Ceil(logBase(float64(p.N)/float64(p.Cfg.M), m/2)) + 1
	if passes < 1 {
		passes = 1
	}
	return PredictedIO{Reads: n * passes, Writes: n * passes}
}

// PermuteDirectPredicted returns the predicted I/O counts of direct
// permuting (gather each output block from its ≤ B source blocks): at most
// N reads and n writes, i.e. cost O(N + ωn).
func PermuteDirectPredicted(p Params) PredictedIO {
	return PredictedIO{Reads: float64(p.N), Writes: p.nBlocks()}
}

// PermuteSortPredicted returns the predicted I/O counts of sort-based
// permuting: one mergesort of N tagged items.
func PermuteSortPredicted(p Params) PredictedIO {
	return MergeSortPredicted(p)
}

// PermuteBestPredicted returns the cost-minimizing choice between direct
// and sort-based permuting — the upper bound matching Theorem 4.5.
func PermuteBestPredicted(p Params) PredictedIO {
	d := PermuteDirectPredicted(p)
	s := PermuteSortPredicted(p)
	if d.Cost(p.Cfg.Omega) <= s.Cost(p.Cfg.Omega) {
		return d
	}
	return s
}

// SpMxVNaivePredicted returns the predicted I/O counts of the naive (direct)
// SpMxV program: O(H) scattered reads plus the output, O(H + ωn) cost.
func SpMxVNaivePredicted(p SpMxVParams) PredictedIO {
	return PredictedIO{Reads: float64(p.H()), Writes: p.nBlocks()}
}

// SpMxVSortPredicted returns the predicted I/O counts of the sorting-based
// SpMxV algorithm: O(ω·h·log_{ωm} N/max{δ,B} + ωn) cost, with the read and
// write split inherited from the mergesort it invokes.
func SpMxVSortPredicted(p SpMxVParams) PredictedIO {
	h, m, w := p.hBlocks(), p.mBlocks(), p.omega()
	den := math.Max(float64(p.Delta), float64(p.Cfg.B))
	levels := math.Max(1, math.Ceil(logBase(float64(p.N)/den, w*m)))
	n := p.nBlocks()
	return PredictedIO{
		Reads:  w*h*levels + h + n,
		Writes: h*levels + n,
	}
}

// SpMxVBestPredicted returns the cost-minimizing choice between naive and
// sorting-based SpMxV — the upper bound matching Theorem 5.1.
func SpMxVBestPredicted(p SpMxVParams) PredictedIO {
	a := SpMxVNaivePredicted(p)
	b := SpMxVSortPredicted(p)
	if a.Cost(p.Cfg.Omega) <= b.Cost(p.Cfg.Omega) {
		return a
	}
	return b
}

// DictParams describes an online dictionary workload for the cost
// predictors: N (in the embedded Params) is the total operation count,
// Updates the Insert/Delete subset, Keyspace the distinct-key domain, and
// QueryBatches the keys touched by each query burst of the stream in
// order (a range scan contributes its two endpoints). Batched queries
// share buffer scans and skewed batches share leaf paths, so the burst
// structure is part of the predicted cost, exactly as the input length is
// for sorting — all of it program knowledge in the §2 sense, derived from
// the stream alone.
type DictParams struct {
	Params
	Updates      int
	Keyspace     int
	QueryBatches [][]int64
}

// DictParamsFor derives the workload description from an actual operation
// stream, segmenting it exactly as Dict.Apply does: update bursts are
// counted, query bursts contribute their touched keys.
func DictParamsFor(cfg aem.Config, ops []dict.Op, keyspace int) DictParams {
	p := DictParams{
		Params:   Params{N: len(ops), Cfg: cfg},
		Keyspace: keyspace,
	}
	isUpdate := func(op dict.Op) bool { return op.Kind == dict.Insert || op.Kind == dict.Delete }
	for i := 0; i < len(ops); {
		j := i
		if isUpdate(ops[i]) {
			for j < len(ops) && isUpdate(ops[j]) {
				j++
			}
			p.Updates += j - i
		} else {
			var keys []int64
			for j < len(ops) && !isUpdate(ops[j]) {
				keys = append(keys, ops[j].Key)
				if ops[j].Kind == dict.RangeScan {
					keys = append(keys, ops[j].Hi-1)
				}
				j++
			}
			p.QueryBatches = append(p.QueryBatches, keys)
		}
		i = j
	}
	return p
}

// DictFanout returns the buffer tree's fan-out d for the machine: ~m,
// capped so a streaming partition (scan frame + d output frames + d
// separator keys) fits in internal memory. It mirrors the choice in
// internal/dict (pinned to it by a cross-package test).
func DictFanout(cfg aem.Config) int {
	d := (cfg.M - cfg.B) / (cfg.B + 1)
	if m := cfg.BlocksInMemory(); d > m {
		d = m
	}
	if d < 2 {
		d = 2
	}
	return d
}

// dictGeometry returns the buffer tree's steady-state shape for the
// workload: number of leaf runs and node levels. Before the first cascade
// (fewer than ω·M updates) everything is one root buffer over a single
// empty leaf.
func (p DictParams) dictGeometry() (leaves, height float64) {
	w, M := p.omega(), float64(p.Cfg.M)
	if float64(p.Updates) < w*M {
		return 1, 1
	}
	live := math.Min(float64(p.Keyspace), float64(p.Updates))
	leaves = math.Max(1, math.Ceil(live/(M/2)))
	height = 1 + math.Ceil(logBase(leaves, float64(DictFanout(p.Cfg))))
	return leaves, height
}

// DictBufferTreePredicted returns the predicted I/O counts of the
// ω-adaptive buffer tree on the workload. Writes: every update is
// appended once (1/B amortized) and each of the F = ⌊U/ωM⌋·ωM updates
// flushed by a root cascade is rewritten once per level plus once in a
// leaf-run merge, (H+2)/B amortized. Reads mirror the flush writes, and
// every query burst scans the root buffer (ω·M/2 items on average — the
// ω-adaptive term that converts expensive writes into cheap reads) plus
// one root-to-leaf path of buffers and one leaf run per distinct path.
func DictBufferTreePredicted(p DictParams) PredictedIO {
	B, M, w := float64(p.Cfg.B), float64(p.Cfg.M), p.omega()
	U := float64(p.Updates)
	rootCap := w * M
	flushed := math.Floor(U/rootCap) * rootCap
	leaves, height := p.dictGeometry()

	writes := U/B + flushed*(height+2)/B
	reads := flushed * (height + 2) / B

	rootAvg := rootCap / 2
	if flushed == 0 {
		rootAvg = U / 2
	}
	leafRun := M / 2 // average live leaf run ≈ leafCap items
	nodeBuf := M / 4 // average non-root buffer fill
	for _, batch := range p.QueryBatches {
		paths := distinctCells(batch, int64(leaves), int64(p.Keyspace))
		reads += rootAvg/B + 1 + paths*((leafRun+nodeBuf)/B+3)
	}
	return PredictedIO{Reads: reads, Writes: writes}
}

// distinctCells estimates how many leaf paths a query batch opens: the
// number of distinct equal-width key cells the batch's keys fall into,
// modelling a balanced tree over the keyspace. Skewed batches (hot keys)
// collapse onto few cells — which is exactly why their measured read cost
// is low.
func distinctCells(keys []int64, leaves, keyspace int64) float64 {
	if leaves < 1 {
		leaves = 1
	}
	seen := make(map[int64]struct{}, len(keys))
	for _, k := range keys {
		switch {
		case k < 0:
			k = 0
		case k >= keyspace:
			k = keyspace - 1
		}
		seen[k*leaves/keyspace] = struct{}{}
	}
	return float64(len(seen))
}

// DictAmortizedStallPredicted returns the predicted I/O bill of the worst
// single commit-path stall in amortized (run-to-completion) mode: one full
// root cascade — the flushed ω·M items rewritten once per internal level,
// every touched leaf run rewritten once — plus the rebuild the cascade can
// trigger (forceFlush + streaming every run into fresh leaves). This is
// the whole amortized budget of one Θ(ωM) epoch landing in a single pause;
// dividing by ωM recovers the familiar per-op amortized bound.
func DictAmortizedStallPredicted(p DictParams) PredictedIO {
	B, M, w := float64(p.Cfg.B), float64(p.Cfg.M), p.omega()
	rootCap := w * M
	leaves, height := p.dictGeometry()
	levels := math.Max(height-1, 1)

	// Cascade: each internal level streams the flushed items once (read +
	// write), and the leaf applies read + rewrite every touched run.
	reads := rootCap*(levels+1)/B + leaves*(M/2)/B
	writes := reads

	// Rebuild: runs are up to 2× bloated with tombstones when the rebuild
	// condition trips; it reads them all and writes the live entries back.
	live := math.Min(float64(p.Keyspace), float64(p.Updates))
	reads += 2 * live / B
	writes += live / B
	return PredictedIO{Reads: reads, Writes: writes}
}

// DictDeamortizedStallPredicted returns the predicted I/O bill of the
// worst single commit-path stall in deamortized mode: one node-flush. The
// contenders are the root backstop (the root buffer partitioned at its
// 2·ωM occupancy ceiling) and a heavy leaf apply (a typical worst dump of
// rootCap/d + M/2 buffered items, externally sorted when it exceeds the
// in-memory chunk, then merged into the run); the prediction is whichever
// costs more. Everything else the old cascade did in the same pause —
// the other levels, the other leaves, the rebuild — happens across other
// batches or at idle.
func DictDeamortizedStallPredicted(p DictParams) PredictedIO {
	B, M, w := float64(p.Cfg.B), float64(p.Cfg.M), p.omega()
	rootCap := w * M
	d := float64(DictFanout(p.Cfg))

	backstop := PredictedIO{Reads: 2*rootCap/B + 1, Writes: 2*rootCap/B + 1}

	dump := rootCap/d + M/2
	leaf := PredictedIO{Reads: (dump + M) / B, Writes: (dump + M) / B}
	if dump > M/2 { // external sort of the oversized buffer
		passes := math.Ceil(dump / M)
		leaf.Reads += dump / B * passes
		leaf.Writes += dump / B * passes
	}
	if leaf.Cost(p.Cfg.Omega) > backstop.Cost(p.Cfg.Omega) {
		return leaf
	}
	return backstop
}

// DictBTreePredicted returns the predicted I/O counts of the unbatched
// B-tree baseline: every operation reads a root-to-leaf path of
// ~log_{B/2} of the live key count blocks, and every update rewrites its
// leaf block — the ω-oblivious 1 write per update the buffer tree exists
// to avoid. Splits add ~2 writes per created leaf.
func DictBTreePredicted(p DictParams) PredictedIO {
	B := float64(p.Cfg.B)
	live := math.Min(float64(p.Keyspace), float64(p.Updates))
	leaves := math.Max(1, math.Ceil(live/(B/2)))
	height := 1 + math.Ceil(logBase(leaves, B/2))
	return PredictedIO{
		Reads:  float64(p.N) * height,
		Writes: float64(p.Updates) + 2*leaves,
	}
}
