package cli

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/aem"
	"repro/internal/pq"
	"repro/internal/sorting"
	"repro/internal/spmxv"
	"repro/internal/trace"
	"repro/internal/workload"
)

// traceCmd records the I/O trace of an algorithm execution on a simulated
// (M,B,ω)-AEM machine, decomposes it into the ωm-rounds of the paper's
// Section 4, and evaluates the Lemma 4.1 round-based conversion on it —
// the lower-bound framework applied to a real run.
//
//	aem trace -alg aem -n 16384 -m 512 -b 16 -omega 8
//	aem trace -alg aem -n 16384 -stream ops.trace
//
// Algorithms: aem | em | sample | heap (sorting), spmxv-naive | spmxv-sort.
//
// With -stream FILE the trace is written to FILE as it is recorded — one
// "R addr" / "W addr" line per I/O through a bounded buffer, so traces of
// any length use O(1) memory — and the in-memory round analysis is skipped.
func traceCmd(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		n       = fs.Int("n", 1<<14, "input size")
		machine = machineFlags(fs, 512, 16, 8)
		alg     = fs.String("alg", "aem", "algorithm: aem | em | sample | heap | spmxv-naive | spmxv-sort")
		seed    = fs.Uint64("seed", 1, "workload seed")
		stream  = fs.String("stream", "", "stream the trace to this file instead of analyzing it in memory")
	)
	fs.Parse(args)

	cfg, err := machine()
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}

	ma := aem.New(cfg)
	var sink *aem.StreamSink
	var streamFile *os.File
	if *stream != "" {
		f, err := os.Create(*stream)
		if err != nil {
			fail(prog, "%v", err)
			return 1
		}
		streamFile = f
		sink = aem.NewStreamSink(f)
		ma.SetTraceSink(sink)
	} else {
		ma.StartTrace()
	}
	switch *alg {
	case "aem":
		in := workload.Keys(workload.NewRNG(*seed), workload.Random, *n)
		sorting.MergeSort(ma, aem.Load(ma, in))
	case "em":
		in := workload.Keys(workload.NewRNG(*seed), workload.Random, *n)
		sorting.EMMergeSort(ma, aem.Load(ma, in))
	case "sample":
		in := workload.Keys(workload.NewRNG(*seed), workload.Random, *n)
		sorting.EMSampleSort(ma, aem.Load(ma, in), *seed)
	case "heap":
		in := workload.Keys(workload.NewRNG(*seed), workload.Random, *n)
		pq.HeapSort(ma, aem.Load(ma, in))
	case "spmxv-naive", "spmxv-sort":
		rng := workload.NewRNG(*seed)
		conf := workload.NewConformation(rng, *n, 4)
		values := make([]int64, conf.H())
		x := make([]int64, *n)
		mat := spmxv.NewMatrix(ma, conf, values)
		if *alg == "spmxv-naive" {
			spmxv.Naive(ma, mat, spmxv.LoadDense(ma, x))
		} else {
			spmxv.SortBased(ma, mat, spmxv.LoadDense(ma, x))
		}
	default:
		fail(prog, "unknown algorithm %q", *alg)
		return 2
	}
	if sink != nil {
		ma.SetTraceSink(nil)
		// Close errors matter here: a deferred-write failure (quota, NFS)
		// surfaces at Close, and reporting success over a truncated trace
		// would be worse than failing.
		err := sink.Flush()
		if cerr := streamFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(prog, "writing %s: %v", *stream, err)
			return 1
		}
		fmt.Printf("machine        (M=%d, B=%d, ω=%d)-AEM\n", cfg.M, cfg.B, cfg.Omega)
		fmt.Printf("algorithm      %s on N=%d\n", *alg, *n)
		fmt.Printf("trace          %d ops (%s) streamed to %s\n", sink.Len(), ma.Stats(), *stream)
		fmt.Printf("cost Q         %d\n", ma.Cost())
		return 0
	}
	ops := ma.StopTrace()

	rounds := trace.Decompose(ops, cfg)
	if err := trace.CheckDecomposition(rounds, ops, cfg); err != nil {
		fail(prog, "invalid decomposition: %v", err)
		return 1
	}
	conv := trace.Convert(ops, cfg)

	fmt.Printf("machine        (M=%d, B=%d, ω=%d)-AEM, round budget ωm = %d\n",
		cfg.M, cfg.B, cfg.Omega, cfg.Omega*cfg.BlocksInMemory())
	fmt.Printf("algorithm      %s on N=%d\n", *alg, *n)
	fmt.Printf("trace          %d ops (%s)\n", len(ops), ma.Stats())
	fmt.Printf("cost Q         %d\n", ma.Cost())
	fmt.Printf("rounds         %d (§4 decomposition, validated)\n", len(rounds))
	fmt.Printf("Lemma 4.1      converted cost %d, factor %.2f, %d reads served from M''\n",
		conv.Converted, conv.Factor(), conv.SavedReads)
	return 0
}
