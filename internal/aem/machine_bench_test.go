package aem

import (
	"testing"
)

// benchConfig is sized so the working set is a few thousand blocks —
// enough to defeat trivial caching, small enough for stable numbers.
func benchConfig() Config { return Config{M: 1 << 10, B: 64, Omega: 8} }

func benchEngines(cfg Config) []struct {
	name string
	make func() Storage
} {
	return []struct {
		name string
		make func() Storage
	}{
		{"slice", func() Storage { return NewSliceStorage() }},
		{"arena", func() Storage { return NewArenaStorage(cfg.B) }},
		{"counting", func() Storage { return NewCountingStorage() }},
	}
}

// BenchmarkMachineReadWrite measures the simulator's hot path — one costed
// read plus one costed write per iteration — on every storage engine, with
// allocs/op reported. The reference slice engine allocates on both sides
// of the transfer; the arena and counting engines must not allocate at
// all.
func BenchmarkMachineReadWrite(b *testing.B) {
	cfg := benchConfig()
	const blocks = 1 << 12
	for _, eng := range benchEngines(cfg) {
		b.Run(eng.name, func(b *testing.B) {
			ma := NewWithStorage(cfg, eng.make())
			base := ma.Alloc(blocks)
			blk := make([]Item, cfg.B)
			for i := range blk {
				blk[i] = Item{Key: int64(i), Aux: int64(i)}
			}
			for i := 0; i < blocks; i++ {
				ma.Poke(base+Addr(i), blk)
			}
			buf := make([]Item, 0, cfg.B)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := ma.ReadInto(base+Addr(i&(blocks-1)), buf)
				ma.Write(base+Addr((i+1)&(blocks-1)), got)
			}
			b.ReportMetric(float64(2*cfg.B*16), "bytes-moved/op")
		})
	}
}

// BenchmarkArenaReadInto is the tentpole's acceptance benchmark: a costed
// block read on the arena engine must be a single copy with 0 allocs/op.
func BenchmarkArenaReadInto(b *testing.B) {
	cfg := benchConfig()
	ma := NewWithStorage(cfg, NewArenaStorage(cfg.B))
	const blocks = 1 << 12
	base := ma.Alloc(blocks)
	blk := make([]Item, cfg.B)
	for i := 0; i < blocks; i++ {
		ma.Poke(base+Addr(i), blk)
	}
	buf := make([]Item, 0, cfg.B)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ma.ReadInto(base+Addr(i&(blocks-1)), buf)
	}
}

// BenchmarkMachineLegacyRead pins the cost of the allocating Read path the
// algorithm packages migrated away from, for comparison in benchstat.
func BenchmarkMachineLegacyRead(b *testing.B) {
	cfg := benchConfig()
	for _, eng := range benchEngines(cfg) {
		if eng.name == "counting" {
			continue // identical to arena here: nothing to copy
		}
		b.Run(eng.name, func(b *testing.B) {
			ma := NewWithStorage(cfg, eng.make())
			const blocks = 1 << 12
			base := ma.Alloc(blocks)
			blk := make([]Item, cfg.B)
			for i := 0; i < blocks; i++ {
				ma.Poke(base+Addr(i), blk)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ma.Read(base + Addr(i&(blocks-1)))
			}
		})
	}
}

// BenchmarkScanner measures the streaming read path (the substrate of
// every algorithm's scans) per engine.
func BenchmarkScanner(b *testing.B) {
	cfg := benchConfig()
	const n = 1 << 16
	for _, eng := range benchEngines(cfg) {
		b.Run(eng.name, func(b *testing.B) {
			ma := NewWithStorage(cfg, eng.make())
			v := Load(ma, make([]Item, n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc := v.NewScanner()
				for {
					if _, ok := sc.Next(); !ok {
						break
					}
				}
				sc.Close()
			}
		})
	}
}

// BenchmarkScanReads compares the bulk read-accounting primitive against
// the per-op loop it batches, per engine. One iteration sweeps the same
// 4096-block range either block-by-block (ReadInto) or in one ScanReads
// call; the "ios/op" metric makes the per-I/O cost comparable. On the
// counting engine the bulk path is the mega-grid's hot loop: a whole
// pass's accounting collapses to a handful of integer adds.
func BenchmarkScanReads(b *testing.B) {
	cfg := benchConfig()
	const blocks = 1 << 12
	for _, eng := range benchEngines(cfg) {
		for _, mode := range []string{"per-op", "bulk"} {
			b.Run(eng.name+"/"+mode, func(b *testing.B) {
				ma := NewWithStorage(cfg, eng.make())
				base := ma.Alloc(blocks)
				buf := make([]Item, 0, cfg.B)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "bulk" {
						ma.ScanReads(base, blocks)
					} else {
						for j := 0; j < blocks; j++ {
							buf = ma.ReadInto(base+Addr(j), buf)
						}
					}
				}
				b.ReportMetric(float64(blocks), "ios/op")
			})
		}
	}
}

// BenchmarkScanWrites is the write-side counterpart: one iteration emits a
// 4096-block zero-filled output range either block-by-block (Write) or in
// one ScanWrites call. Data engines still pay the zero-fill either way —
// the bulk win there is the batched accounting — while the counting
// engine's bulk path reduces the sweep to length-table stores.
func BenchmarkScanWrites(b *testing.B) {
	cfg := benchConfig()
	const blocks = 1 << 12
	for _, eng := range benchEngines(cfg) {
		for _, mode := range []string{"per-op", "bulk"} {
			b.Run(eng.name+"/"+mode, func(b *testing.B) {
				ma := NewWithStorage(cfg, eng.make())
				base := ma.Alloc(blocks)
				zero := make([]Item, cfg.B)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "bulk" {
						ma.ScanWrites(base, blocks, cfg.B)
					} else {
						for j := 0; j < blocks; j++ {
							ma.Write(base+Addr(j), zero)
						}
					}
				}
				b.ReportMetric(float64(blocks), "ios/op")
			})
		}
	}
}

// BenchmarkTraceSinks compares trace recording costs per op.
func BenchmarkTraceSinks(b *testing.B) {
	cfg := benchConfig()
	sinks := []struct {
		name string
		make func() TraceSink
	}{
		{"memory", func() TraceSink { return &MemorySink{} }},
		{"stream-discard", func() TraceSink { return NewStreamSink(discard{}) }},
	}
	for _, s := range sinks {
		b.Run(s.name, func(b *testing.B) {
			ma := NewWithStorage(cfg, NewArenaStorage(cfg.B))
			base := ma.Alloc(64)
			blk := make([]Item, cfg.B)
			for i := 0; i < 64; i++ {
				ma.Poke(base+Addr(i), blk)
			}
			ma.SetTraceSink(s.make())
			buf := make([]Item, 0, cfg.B)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = ma.ReadInto(base+Addr(i&63), buf)
			}
		})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
