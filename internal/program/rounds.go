package program

import (
	"fmt"

	"repro/internal/aem"
)

// opCost returns the AEM cost of a single op.
func opCost(op Op, omega int) int64 {
	if op.Kind == aem.OpRead {
		return 1
	}
	return int64(omega)
}

// CheckRoundBased validates the round structure claimed by p.RoundMarks:
// internal memory must be empty at every round boundary, every round's
// cost must be at most maxCost, and every round except the last must cost
// at least minCost. It returns an error describing the first violation.
func CheckRoundBased(p *Program, minCost, maxCost int64) error {
	if len(p.RoundMarks) == 0 {
		return fmt.Errorf("program: no round marks")
	}
	if last := p.RoundMarks[len(p.RoundMarks)-1]; last != len(p.Ops) {
		return fmt.Errorf("program: final round mark %d != %d ops", last, len(p.Ops))
	}
	empty := memEmptyPoints(p)
	prev := 0
	for r, mark := range p.RoundMarks {
		if mark < prev {
			return fmt.Errorf("program: round marks not increasing at round %d", r)
		}
		if !empty[mark] {
			return fmt.Errorf("program: memory not empty at end of round %d", r)
		}
		var cost int64
		for _, op := range p.Ops[prev:mark] {
			cost += opCost(op, p.Cfg.Omega)
		}
		if cost > maxCost {
			return fmt.Errorf("program: round %d costs %d > max %d", r, cost, maxCost)
		}
		if cost < minCost && r != len(p.RoundMarks)-1 {
			return fmt.Errorf("program: round %d costs %d < min %d", r, cost, minCost)
		}
		prev = mark
	}
	return nil
}

// ConvertToRoundBased implements Lemma 4.1: it transforms an arbitrary
// program for the (M,B,ω)-AEM into a round-based program for the
// (2M,B,ω)-AEM whose cost is larger by at most a constant factor.
//
// Construction (following the lemma's proof): the original op sequence is
// split into segments of cost at most ω·m. Within a segment, writes are
// buffered (the M′′ half of the doubled memory) instead of performed;
// reads of a block whose write is buffered are served from the buffer at
// no I/O cost. When the segment ends, the buffered writes are flushed and
// the internal memory contents (the M′ half) are written to fresh
// snapshot blocks; the next round begins by reading the snapshot back.
//
// Deviation from the paper (see README.md, "Deviations from the paper"):
// the lemma's prose deletes M′ at round end without saying where its
// contents go, but a
// round-based program needs them on external memory to restore them. We
// write the snapshot explicitly (≤ m block writes per round), which keeps
// every round's cost ≤ ω·m₂ + m₂ on the doubled machine (m₂ = 2m) and the
// total cost within 3·Q + O(ωm) — still the constant factor the lemma
// asserts.
func ConvertToRoundBased(p *Program) (*Program, error) {
	cfg := p.Cfg
	m := cfg.BlocksInMemory()
	// Segment cost threshold ω(m−1): a segment then buffers at most m−1
	// written blocks, i.e. < M atoms, so M′′ provably fits in the second
	// half of the doubled memory even when M is not a multiple of B.
	budget := int64(cfg.Omega) * int64(m-1)

	out := &Program{
		N:   p.N,
		Cfg: aem.Config{M: 2 * cfg.M, B: cfg.B, Omega: cfg.Omega},
	}
	nextFresh := p.InitialBlocks() // fresh addresses for snapshot blocks
	maxAddr := nextFresh
	for _, op := range p.Ops {
		if op.Addr+1 > maxAddr {
			maxAddr = op.Addr + 1
		}
	}
	nextFresh = maxAddr

	st := newState(p) // simulate the original to know memory contents
	buffered := make(map[int][]int)
	var segCost int64
	var snapshot []int               // addresses of the previous round's snapshot blocks
	snapAtoms := make(map[int][]int) // snapshot block address → atoms written there

	closeRound := func(final bool) {
		// Flush M′′: emit the buffered writes that still hold atoms.
		for _, addr := range sortedKeys(buffered) {
			atoms := buffered[addr]
			if len(atoms) > 0 {
				out.Ops = append(out.Ops, Op{Kind: aem.OpWrite, Addr: addr, Atoms: atoms})
			}
			delete(buffered, addr)
		}
		// Snapshot M′ unless the program is done (a valid permuting
		// program ends with empty memory).
		snapshot = snapshot[:0]
		if !final {
			mem := sortedAtoms(st.mem)
			for lo := 0; lo < len(mem); lo += cfg.B {
				hi := lo + cfg.B
				if hi > len(mem) {
					hi = len(mem)
				}
				out.Ops = append(out.Ops, Op{Kind: aem.OpWrite, Addr: nextFresh, Atoms: mem[lo:hi]})
				snapshot = append(snapshot, nextFresh)
				snapAtoms[nextFresh] = mem[lo:hi]
				nextFresh++
			}
		}
		out.RoundMarks = append(out.RoundMarks, len(out.Ops))
		segCost = 0
	}

	openRound := func() {
		// Restore M′ from the previous round's snapshot; reading the
		// whole block empties it, so snapshot addresses never hold stale
		// atoms.
		st2 := snapshot
		snapshot = nil
		for _, addr := range st2 {
			out.Ops = append(out.Ops, Op{Kind: aem.OpRead, Addr: addr, Atoms: snapAtoms[addr]})
			delete(snapAtoms, addr)
		}
	}

	for i, op := range p.Ops {
		c := opCost(op, cfg.Omega)
		if segCost+c > budget && segCost > 0 {
			closeRound(false)
			openRound()
		}
		segCost += c

		switch op.Kind {
		case aem.OpRead:
			if atoms, ok := buffered[op.Addr]; ok {
				// Served from M′′: the atoms never left internal memory,
				// so no op is emitted; just shrink the buffer entry.
				remaining, err := removeAtoms(atoms, op.Atoms)
				if err != nil {
					return nil, fmt.Errorf("program: op %d reads %v", i, err)
				}
				buffered[op.Addr] = remaining
			} else {
				out.Ops = append(out.Ops, op)
			}
		case aem.OpWrite:
			if atoms, ok := buffered[op.Addr]; ok && len(atoms) > 0 {
				return nil, fmt.Errorf("program: op %d writes to block %d still holding %d buffered atoms", i, op.Addr, len(atoms))
			}
			buffered[op.Addr] = append([]int(nil), op.Atoms...)
		}
		if err := st.step(op); err != nil {
			return nil, fmt.Errorf("program: op %d invalid in original: %w", i, err)
		}
	}
	closeRound(true)
	if len(st.mem) != 0 {
		return nil, fmt.Errorf("program: original finishes with %d atoms in memory; cannot be made round-based", len(st.mem))
	}
	return out, nil
}

// removeAtoms removes every atom of take from have, erroring if any is
// missing.
func removeAtoms(have, take []int) ([]int, error) {
	set := make(map[int]struct{}, len(have))
	for _, a := range have {
		set[a] = struct{}{}
	}
	for _, a := range take {
		if _, ok := set[a]; !ok {
			return nil, fmt.Errorf("atom %d absent from buffered block", a)
		}
		delete(set, a)
	}
	return sortedAtoms(set), nil
}

func sortedKeys(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortInts(keys)
	return keys
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
