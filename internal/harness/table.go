// Package harness runs the repository's experiments: one per theorem,
// lemma or claim of the paper (the experiment index lives in README.md,
// "Experiments").
// Each experiment sweeps a parameter range on the AEM simulator, measures
// I/O costs, evaluates the paper's predicted bound at the same points, and
// emits a table of measured-vs-predicted values. Tables render as aligned
// text (for the terminal and recorded results) and as CSV (for plotting).
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Claim   string   // the paper statement being reproduced
	Notes   []string // caveats, deviations, interpretation
	Columns []string
	Rows    [][]string

	// WallNS holds each row's grid-point wall-clock in nanoseconds when an
	// executor ran with timing enabled (nil otherwise — the default, so
	// recorded goldens stay byte-identical). When set, Render and CSV
	// append a "wall ms" column and JSON records carry a wall_ns field:
	// the simulator's own performance rides along with the model cost.
	WallNS []int64
}

// timedColumns returns the column headers including the timing column
// when per-point wall-clock is attached.
func (t *Table) timedColumns() []string {
	if t.WallNS == nil {
		return t.Columns
	}
	return append(append([]string(nil), t.Columns...), "wall ms")
}

// timedRow returns row i's cells including the timing cell when
// per-point wall-clock is attached.
func (t *Table) timedRow(i int) []string {
	if t.WallNS == nil || i >= len(t.WallNS) {
		return t.Rows[i]
	}
	return append(append([]string(nil), t.Rows[i]...), fmtVal(float64(t.WallNS[i])/1e6))
}

// AddRow appends a row, formatting each value with %v (floats get
// 3 significant decimals via fmtVal).
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		row[i] = fmtVal(v)
	}
	if len(row) != len(t.Columns) {
		panic(fmt.Sprintf("harness: row has %d values for %d columns", len(row), len(t.Columns)))
	}
	t.Rows = append(t.Rows, row)
}

func fmtVal(v interface{}) string {
	switch x := v.(type) {
	case float64:
		switch {
		case x == 0:
			return "0"
		case x >= 1000:
			return fmt.Sprintf("%.0f", x)
		case x >= 1:
			return fmt.Sprintf("%.2f", x)
		default:
			return fmt.Sprintf("%.4f", x)
		}
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	cols := t.timedColumns()
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for ri := range t.Rows {
		for i, cell := range t.timedRow(ri) {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(cols)
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for ri := range t.Rows {
		line(t.timedRow(ri))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values (quoted where needed).
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.timedColumns())
	for ri := range t.Rows {
		writeCSVRow(w, t.timedRow(ri))
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	fmt.Fprintln(w, strings.Join(parts, ","))
}

// JSON writes the table as JSON Lines: one record per row carrying the
// experiment identity and the formatted cells (measured and predicted
// columns included) — the structured form benchmark artifacts are built
// from. With timing attached, each record additionally carries the grid
// point's wall-clock as wall_ns.
func (t *Table) JSON(w io.Writer) error {
	type record struct {
		Experiment string   `json:"experiment"`
		Title      string   `json:"title"`
		Row        int      `json:"row"`
		Columns    []string `json:"columns"`
		Values     []string `json:"values"`
		WallNS     *int64   `json:"wall_ns,omitempty"`
	}
	enc := json.NewEncoder(w)
	for i, row := range t.Rows {
		rec := record{t.ID, t.Title, i, t.Columns, row, nil}
		if t.WallNS != nil && i < len(t.WallNS) {
			rec.WallNS = &t.WallNS[i]
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// ByID returns the spec with the given experiment id, searching the
// default registry (All) and then the auxiliary one (Aux).
func ByID(id string) (*Spec, bool) {
	for _, s := range All() {
		if s.ID == id {
			return s, true
		}
	}
	for _, s := range Aux() {
		if s.ID == id {
			return s, true
		}
	}
	return nil, false
}

// Select resolves a comma-separated list of experiment ids into specs, in
// the order given. The empty string and "all" select the full default
// registry (auxiliary specs must be named explicitly). Duplicate ids
// collapse to the first mention and produce one warning each, so a
// selection like -exp EXP-D1,EXP-D1 does not silently run — or appear to
// run — a spec twice. Unknown ids produce one error naming every unknown
// id, so a long selection fails with full diagnostics instead of on the
// first typo.
func Select(ids string) (specs []*Spec, warnings []string, err error) {
	if s := strings.TrimSpace(ids); s == "" || s == "all" {
		return All(), nil, nil
	}
	var unknown []string
	seen := make(map[string]bool)
	for _, raw := range strings.Split(ids, ",") {
		id := strings.TrimSpace(raw)
		if id == "" {
			continue
		}
		if seen[id] {
			warnings = append(warnings, fmt.Sprintf("duplicate experiment id %s ignored", id))
			continue
		}
		seen[id] = true
		s, ok := ByID(id)
		if !ok {
			unknown = append(unknown, id)
			continue
		}
		specs = append(specs, s)
	}
	if len(unknown) > 0 {
		return nil, warnings, fmt.Errorf("unknown experiment(s) %s (see -list for the index)", strings.Join(unknown, ", "))
	}
	if len(specs) == 0 {
		return nil, warnings, fmt.Errorf("no experiments selected")
	}
	return specs, warnings, nil
}
