package harness

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// enumBombSpec panics during grid enumeration (in a Dyn axis hook) —
// the failure mode that produces no per-point records.
func enumBombSpec(id string) *Spec {
	return &Spec{
		ID:      id,
		Axes:    []Axis{{Name: "x", Dyn: func(Point) []interface{} { panic("axis exploded") }}},
		Columns: Cols("x"),
		Point:   func(p Point) Row { return Row{p.Int("x")} },
	}
}

// TestShardExecutorEnumFailureFailsExitCode pins the bugfix for silent
// enum failures: a sharded job whose grid enumeration panics must return
// a non-nil error even though no per-point record exists to count — the
// old code only tallied per-point panics, so a sharded CI job exited 0
// on a broken grid.
func TestShardExecutorEnumFailureFailsExitCode(t *testing.T) {
	specs := []*Spec{sleepSpec("OK-1", 0, nil), enumBombSpec("BAD-GRID")}
	var buf bytes.Buffer
	err := (&ShardExecutor{Index: 0, Count: 1, Par: 2, W: &buf}).Execute(specs, nil)
	if err == nil {
		t.Fatal("enum-failing shard run returned nil — a sharded CI job would exit 0")
	}
	if !strings.Contains(err.Error(), "grid enumeration") {
		t.Fatalf("error %q does not name the enumeration failure", err)
	}
	// The stream itself must still be a valid shard file (the merge
	// binary reproduces the failure from the registry, no record needed).
	if _, perr := ReadShardFile(&buf); perr != nil {
		t.Fatalf("enum-failing shard stream unparseable: %v", perr)
	}

	// Both failure kinds at once: the error must tally each.
	bomb := &Spec{
		ID: "BOMB", Axes: []Axis{{Name: "i", Values: Ints(0, 1)}}, Columns: Cols("i"),
		Point: func(p Point) Row { panic("point bomb") },
	}
	err = (&ShardExecutor{Index: 0, Count: 1, Par: 2, W: &bytes.Buffer{}}).Execute(
		[]*Spec{bomb, enumBombSpec("BAD-GRID")}, nil)
	if err == nil || !strings.Contains(err.Error(), "point(s)") || !strings.Contains(err.Error(), "grid enumeration") {
		t.Fatalf("combined failure error %q must count both points and enumerations", err)
	}
}

// dropRecord removes the first record of the named experiment from the
// shard set and returns its ref.
func dropRecord(t *testing.T, files []*ShardFile, exp string) GridRef {
	t.Helper()
	for _, f := range files {
		for i, rec := range f.Records {
			if rec.Experiment == exp {
				f.Records = append(f.Records[:i], f.Records[i+1:]...)
				return GridRef{Experiment: exp, Index: rec.Index}
			}
		}
	}
	t.Fatalf("no record for %s in the shard set", exp)
	return GridRef{}
}

// TestMergeShardsAggregatesMissingAcrossSpecs pins the bugfix for the
// one-spec-at-a-time missing report: with points missing from two specs
// simultaneously, the error must name both — the residual machinery
// consumes the same walk, so stopping at the first incomplete spec
// would make resume a many-round conversation.
func TestMergeShardsAggregatesMissingAcrossSpecs(t *testing.T) {
	specs := shardSpecs(false)
	files := shardFiles(t, specs, 2)
	want1 := dropRecord(t, files, "GRID")
	want2 := dropRecord(t, files, "LABELS")

	err := MergeShards(specs, files, false, func(*Table) {})
	if err == nil {
		t.Fatal("incomplete set merged without error")
	}
	var inc *IncompleteError
	if !errors.As(err, &inc) {
		t.Fatalf("error %T is not *IncompleteError", err)
	}
	if len(inc.Missing) != 2 {
		t.Fatalf("Missing = %v, want exactly the two dropped refs", inc.Missing)
	}
	got := map[GridRef]bool{inc.Missing[0]: true, inc.Missing[1]: true}
	if !got[want1] || !got[want2] {
		t.Fatalf("Missing = %v, want %v and %v", inc.Missing, want1, want2)
	}
	for _, id := range []string{"GRID", "LABELS"} {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("aggregated error %q does not mention %s", err, id)
		}
	}
}

// TestIncompleteErrorCapsListing: the per-experiment index list is
// truncated on badly interrupted runs, the counts stay exact.
func TestIncompleteErrorCapsListing(t *testing.T) {
	var missing []GridRef
	for i := 0; i < 30; i++ {
		missing = append(missing, GridRef{Experiment: "BIG", Index: i})
	}
	e := &IncompleteError{Experiments: []string{"BIG"}, GridPoints: 40, Missing: missing}
	msg := e.Error()
	if !strings.Contains(msg, "missing 30 point(s)") || !strings.Contains(msg, "…") {
		t.Fatalf("capped message %q must keep the exact count and mark truncation", msg)
	}
	if !strings.Contains(msg, "30 of 40 grid points missing") {
		t.Fatalf("message %q lacks the global tally", msg)
	}
}

// TestResidualRoundTrip is the resume path end to end at the harness
// level: drop records from both specs of a 2-shard set, distill the
// IncompleteError into a ResidualSpec, run it, and merge the partial
// shards plus the residual stream — the result must be byte-identical
// to the unsharded run in every output form.
func TestResidualRoundTrip(t *testing.T) {
	specs := shardSpecs(false)
	wantText, wantJSON, wantCSV, wantFail := renderForms(t, func(emit func(*Table)) {
		(&LocalPool{Par: 1}).Execute(specs, emit)
	})
	if wantFail != "" {
		t.Fatalf("unsharded run failed: %s", wantFail)
	}

	files := shardFiles(t, specs, 2)
	dropRecord(t, files, "GRID")
	dropRecord(t, files, "GRID")
	dropRecord(t, files, "LABELS")

	err := MergeShards(specs, files, false, func(*Table) {})
	var inc *IncompleteError
	if !errors.As(err, &inc) {
		t.Fatalf("merge error %v is not *IncompleteError", err)
	}
	rs := inc.ResidualSpec()

	// The spec survives its serialized form (what `aem merge -residual`
	// writes and `aem work -residual` reads).
	var disk bytes.Buffer
	if err := rs.WriteResidual(&disk); err != nil {
		t.Fatal(err)
	}
	rs, err = ReadResidualSpec(&disk)
	if err != nil {
		t.Fatal(err)
	}

	var rest bytes.Buffer
	if err := RunResidualSpecs(shardSpecs(false), rs, 2, &rest); err != nil {
		t.Fatalf("residual run: %v", err)
	}
	rf, err := ReadShardFile(&rest)
	if err != nil {
		t.Fatalf("residual stream unparseable: %v", err)
	}
	if !rf.Manifest.Residual {
		t.Fatal("residual stream not marked residual in its manifest")
	}

	text, jsonOut, csv, fail := renderForms(t, func(emit func(*Table)) {
		if err := MergeShards(specs, append(files, rf), false, emit); err != nil {
			t.Fatalf("merge with residual: %v", err)
		}
	})
	if fail != "" {
		t.Fatalf("merged run failed: %s", fail)
	}
	if !bytes.Equal(text, wantText) || !bytes.Equal(jsonOut, wantJSON) || !bytes.Equal(csv, wantCSV) {
		t.Fatal("partial shards + residual stream diverged from the unsharded run")
	}
}

// TestResidualSpecValidation: foreign or empty residual files are
// rejected at read time with specific diagnostics.
func TestResidualSpecValidation(t *testing.T) {
	for _, tc := range []struct{ name, in, want string }{
		{"wrong type", `{"type":"shard","experiments":["X"],"grid_points":1,"missing":[{"experiment":"X","index":0}]}`, "type"},
		{"no missing", `{"type":"residual","experiments":["X"],"grid_points":1,"missing":[]}`, "no missing"},
		{"not json", `hello`, "residual spec"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadResidualSpec(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ReadResidualSpec error = %v, want mention of %q", err, tc.want)
			}
		})
	}

	// Registry drift between the interrupted run and the resume binary.
	rs := &ResidualSpec{Type: "residual", Experiments: []string{"GRID", "LABELS"}, GridPoints: 99,
		Missing: []GridRef{{Experiment: "GRID", Index: 0}}}
	if err := RunResidualSpecs(shardSpecs(false), rs, 1, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Fatalf("grid-size drift not rejected: %v", err)
	}
	rs.GridPoints = 0
	rs.Experiments = []string{"GRID"}
	if err := RunResidualSpecs(shardSpecs(false), rs, 1, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "experiments") {
		t.Fatalf("selection drift not rejected: %v", err)
	}
}

// TestMergeResidualModeKeepsPointChecks: the relaxed patchwork
// validation still rejects duplicated points and still reports missing
// ones — only the partition-shape checks are waived.
func TestMergeResidualModeKeepsPointChecks(t *testing.T) {
	mkSet := func() ([]*Spec, []*ShardFile, *ShardFile) {
		specs := shardSpecs(false)
		files := shardFiles(t, specs, 2)
		dropRecord(t, files, "GRID")
		err := MergeShards(specs, files, false, func(*Table) {})
		var inc *IncompleteError
		if !errors.As(err, &inc) {
			t.Fatalf("setup: %v", err)
		}
		var rest bytes.Buffer
		if err := RunResidualSpecs(shardSpecs(false), inc.ResidualSpec(), 1, &rest); err != nil {
			t.Fatalf("setup residual run: %v", err)
		}
		rf, err := ReadShardFile(&rest)
		if err != nil {
			t.Fatal(err)
		}
		return specs, files, rf
	}

	t.Run("duplicated point across partial and residual", func(t *testing.T) {
		specs, files, rf := mkSet()
		// Re-add the residual's point to a partial file: now it exists in
		// both, which must be rejected, not silently double-filled.
		stolen := rf.Records[0]
		files[0].Records = append(files[0].Records, stolen)
		expectMergeError(t, specs, append(files, rf), "duplicated point")
	})
	t.Run("still missing after a short residual", func(t *testing.T) {
		specs, files, rf := mkSet()
		dropRecord(t, files, "LABELS") // a hole the residual spec predates
		err := MergeShards(specs, append(files, rf), false, func(*Table) {})
		var inc *IncompleteError
		if !errors.As(err, &inc) {
			t.Fatalf("remaining hole not reported: %v", err)
		}
		if len(inc.Missing) != 1 || inc.Missing[0].Experiment != "LABELS" {
			t.Fatalf("Missing = %v, want the one LABELS hole", inc.Missing)
		}
	})
	t.Run("round-robin files still own their records", func(t *testing.T) {
		specs, files, rf := mkSet()
		// Move a record between the two round-robin shards: ownership is
		// per-manifest, so this stays an error even in patchwork mode.
		stolen := files[0].Records[0]
		files[0].Records = files[0].Records[1:]
		files[1].Records = append(files[1].Records, stolen)
		expectMergeError(t, specs, append(files, rf), "overlapping")
	})
}

// TestPointRunner: explicit-point execution — global ref order,
// validation, memoized re-runs, and record parity with ShardExecutor's
// wire format.
func TestPointRunner(t *testing.T) {
	var runs int64
	mk := func() []*Spec {
		return []*Spec{
			{
				ID: "A", Axes: []Axis{{Name: "i", Values: Ints(0, 1, 2)}}, Columns: Cols("i"),
				Point: func(p Point) Row { atomic.AddInt64(&runs, 1); return Row{p.Int("i")} },
			},
			{
				ID: "B", Axes: []Axis{{Name: "j", Values: Ints(5, 6)}}, Columns: Cols("j"),
				Point: func(p Point) Row { return Row{p.Int("j")} },
			},
		}
	}
	r := NewPointRunner(mk())
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	refs := r.Refs()
	want := []GridRef{{"A", 0}, {"A", 1}, {"A", 2}, {"B", 0}, {"B", 1}}
	if fmt.Sprint(refs) != fmt.Sprint(want) {
		t.Fatalf("Refs = %v, want %v", refs, want)
	}

	if err := r.Check(GridRef{"C", 0}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := r.Check(GridRef{"A", 3}); err == nil {
		t.Fatal("out-of-range index accepted")
	}

	var recs []PointRecord
	deliver := func(rec PointRecord) error { recs = append(recs, rec); return nil }
	if err := r.Run([]GridRef{{"A", 1}, {"B", 0}}, 2, deliver); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || atomic.LoadInt64(&runs) != 1 {
		t.Fatalf("first run delivered %d records with %d A-executions, want 2 and 1", len(recs), runs)
	}
	// Re-running a measured ref must deliver the memoized record without
	// paying for the point again — the worker-side duplicate guard.
	recs = nil
	if err := r.Run([]GridRef{{"A", 1}}, 2, deliver); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || atomic.LoadInt64(&runs) != 1 {
		t.Fatalf("memoized re-run delivered %d records, executed A %d times", len(recs), runs)
	}
	if recs[0].Type != "point" || recs[0].Experiment != "A" || recs[0].Index != 1 || recs[0].Points != 3 {
		t.Fatalf("record %+v is not the wire form ShardExecutor emits", recs[0])
	}

	// Record validation mirrors the merge-side torn checks.
	rec := recs[0]
	if err := r.ValidateRecord(&rec); err != nil {
		t.Fatalf("healthy record rejected: %v", err)
	}
	torn := rec
	torn.Cells = append(torn.Cells, "extra")
	if err := r.ValidateRecord(&torn); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn record accepted: %v", err)
	}
	drift := rec
	drift.Points = 99
	if err := r.ValidateRecord(&drift); err == nil || !strings.Contains(err.Error(), "drift") {
		t.Fatalf("grid-size drift accepted: %v", err)
	}
}
