// Command aembench is the deprecated standalone form of `aem bench`:
// same flags, same output, plus a deprecation notice on stderr. See
// cmd/aem and internal/cli for the living implementation.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.RunDeprecated("aembench", "bench", os.Args[1:]))
}
