// Package permute implements the permuting algorithms whose cost matches
// the lower bound of Theorem 4.5, Ω(min{N, ω·n·log_{ωm} n}):
//
//   - Direct gathers each output block from its ≤ B source blocks:
//     O(N + ω·n) cost, matching the N term;
//   - SortBased sorts the items by destination with the Section 3
//     mergesort: O(ω·n·log_{ωm} n) cost, matching the sort term;
//   - Best picks whichever is predicted cheaper, so its cost is within a
//     constant factor of the lower bound everywhere.
//
// A permuting instance is a vector whose item at position i carries
// Key = π(i) (the destination) and Aux = the atom's payload. The
// permutation π itself is "program knowledge" in the paper's sense (§2: a
// program is fixed per permutation), so the algorithms receive it as a
// plain slice and consulting it costs no I/O; only data movement is
// metered.
package permute

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/sorting"
)

// Direct permutes v by gathering each output block: for output block j it
// reads every source block containing an item destined for j (at most B of
// them), assembles the block in internal memory, and writes it once. Cost:
// at most N + n reads and exactly n writes, i.e. O(N + ω·n) — the "naive"
// algorithm whose cost matches the N term of Theorem 4.5.
//
// perm is the destination map: the item at position i has destination
// perm[i] and must carry Key = perm[i]. Requires M ≥ 2B.
func Direct(ma *aem.Machine, v *aem.Vector, perm []int) *aem.Vector {
	cfg := ma.Config()
	if len(perm) != v.Len() {
		panic(fmt.Sprintf("permute: perm has %d entries for %d items", len(perm), v.Len()))
	}
	n := v.Len()
	out := aem.NewVector(ma, n)
	if n == 0 {
		return out
	}

	// Program knowledge: invert the permutation so that source[k] is the
	// input position of the item destined for output position k.
	source := make([]int, n)
	for i, d := range perm {
		if d < 0 || d >= n {
			panic(fmt.Sprintf("permute: destination %d out of range [0,%d)", d, n))
		}
		source[d] = i
	}

	b := cfg.B
	ma.Reserve(2 * b) // output buffer + input frame
	defer ma.Release(2 * b)

	outBuf := make([]aem.Item, b)
	filled := make([]bool, b)
	frame := make([]aem.Item, 0, b) // reused input-block frame
	for lo := 0; lo < n; lo += b {
		hi := lo + b
		if hi > n {
			hi = n
		}
		for i := range filled {
			filled[i] = false
		}
		// Read each distinct source block once, taking every item of this
		// output block that it holds.
		for k := lo; k < hi; k++ {
			if filled[k-lo] {
				continue // already gathered from a previously read block
			}
			items, first := v.ReadBlockInto(source[k], frame)
			for kk := lo; kk < hi; kk++ {
				if off := source[kk] - first; off >= 0 && off < len(items) {
					outBuf[kk-lo] = items[off]
					filled[kk-lo] = true
				}
			}
		}
		ma.Write(out.BlockAddr(lo), outBuf[:hi-lo])
	}
	return out
}

// SortBased permutes v by sorting its items by destination key with the
// AEM mergesort: O(ω·n·log_{ωm} n) cost — the sort term of Theorem 4.5.
// Requires M ≥ 8B.
func SortBased(ma *aem.Machine, v *aem.Vector) *aem.Vector {
	return sorting.MergeSort(ma, v)
}

// Strategy names the algorithm Best selected, for experiment reporting.
type Strategy int

const (
	// StrategyDirect is the block-gather algorithm (N-term regime).
	StrategyDirect Strategy = iota
	// StrategySort is the mergesort algorithm (sort-term regime).
	StrategySort
)

// String names the strategy.
func (s Strategy) String() string {
	if s == StrategyDirect {
		return "direct"
	}
	return "sort"
}

// Best permutes v with whichever algorithm the closed-form predictions say
// is cheaper, returning the choice. This is the upper bound that matches
// Theorem 4.5 to within a constant factor in both regimes.
func Best(ma *aem.Machine, v *aem.Vector, perm []int) (*aem.Vector, Strategy) {
	p := bounds.Params{N: v.Len(), Cfg: ma.Config()}
	direct := bounds.PermuteDirectPredicted(p).Cost(ma.Config().Omega)
	sortC := bounds.PermuteSortPredicted(p).Cost(ma.Config().Omega)
	if direct <= sortC {
		return Direct(ma, v, perm), StrategyDirect
	}
	return SortBased(ma, v), StrategySort
}

// Verify checks that out is v permuted correctly: the item at output
// position k must be the input item whose destination key is k. It uses
// free Materialize reads and is intended for tests and the harness.
func Verify(v, out *aem.Vector) error {
	in := v.Materialize()
	got := out.Materialize()
	if len(in) != len(got) {
		return fmt.Errorf("permute: output has %d items, want %d", len(got), len(in))
	}
	want := make([]aem.Item, len(in))
	for _, it := range in {
		if it.Key < 0 || it.Key >= int64(len(in)) {
			return fmt.Errorf("permute: input item %v has destination out of range", it)
		}
		want[it.Key] = it
	}
	for k := range got {
		if got[k] != want[k] {
			return fmt.Errorf("permute: position %d holds %v, want %v", k, got[k], want[k])
		}
	}
	return nil
}
