package aem

import "fmt"

// Vector is a view of N items stored in ⌈N/B⌉ consecutive blocks of
// external memory — the standard input/output layout of the EM literature.
// All blocks except possibly the last hold exactly B items.
type Vector struct {
	ma   *Machine
	base Addr
	n    int
}

// NewVector allocates ⌈n/B⌉ fresh blocks for a vector of n items. The
// blocks start empty; fill them with a Writer (costed) or Load (free, for
// inputs).
func NewVector(ma *Machine, n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("aem: NewVector(%d): negative length", n))
	}
	blocks := ma.cfg.BlocksOf(n)
	base := ma.Alloc(blocks)
	return &Vector{ma: ma, base: base, n: n}
}

// Load places items into the vector's blocks without costing I/O. It models
// the initial condition of the machine: the input resides in external
// memory at time zero. It panics if len(items) differs from the vector
// length.
func Load(ma *Machine, items []Item) *Vector {
	v := NewVector(ma, len(items))
	b := ma.cfg.B
	for i := 0; i < len(items); i += b {
		end := i + b
		if end > len(items) {
			end = len(items)
		}
		ma.Poke(v.base+Addr(i/b), items[i:end])
	}
	return v
}

// Len returns the number of items in the vector.
func (v *Vector) Len() int { return v.n }

// Base returns the address of the vector's first block.
func (v *Vector) Base() Addr { return v.base }

// Blocks returns the number of blocks the vector occupies.
func (v *Vector) Blocks() int { return v.ma.cfg.BlocksOf(v.n) }

// Machine returns the machine the vector lives on.
func (v *Vector) Machine() *Machine { return v.ma }

// BlockAddr returns the address of the block holding item index i.
func (v *Vector) BlockAddr(i int) Addr {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("aem: BlockAddr(%d): index out of range [0,%d)", i, v.n))
	}
	return v.base + Addr(i/v.ma.cfg.B)
}

// ReadBlock reads (with cost) the block holding item index i and returns
// its contents together with the index of the block's first item. The
// returned slice is freshly allocated; hot paths should use ReadBlockInto
// with a reused buffer.
func (v *Vector) ReadBlock(i int) (items []Item, first int) {
	return v.ReadBlockInto(i, nil)
}

// ReadBlockInto reads (with cost) the block holding item index i into the
// caller-owned dst buffer, returning the filled prefix and the index of
// the block's first item. With cap(dst) ≥ B no allocation occurs; the
// returned slice aliases dst and is overwritten by the caller's next read
// into the same buffer.
func (v *Vector) ReadBlockInto(i int, dst []Item) (items []Item, first int) {
	a := v.BlockAddr(i)
	return v.ma.ReadInto(a, dst), int(a-v.base) * v.ma.cfg.B
}

// Materialize returns a copy of the whole vector without costing I/O. For
// verification in tests and experiment harnesses only.
func (v *Vector) Materialize() []Item {
	out := make([]Item, v.n)
	pos := 0
	for b := 0; b < v.Blocks(); b++ {
		got := v.ma.PeekInto(v.base+Addr(b), out[pos:pos:len(out)])
		pos += len(got)
	}
	if pos != v.n {
		panic(fmt.Sprintf("aem: Materialize: vector holds %d items, expected %d", pos, v.n))
	}
	return out
}

// Slice returns a sub-vector view of items [lo, hi). The bounds must be
// block-aligned (lo % B == 0), since a vector is a view of whole blocks;
// hi may be v.Len() or any multiple of B.
func (v *Vector) Slice(lo, hi int) *Vector {
	b := v.ma.cfg.B
	if lo < 0 || hi < lo || hi > v.n {
		panic(fmt.Sprintf("aem: Slice(%d,%d) of vector of length %d", lo, hi, v.n))
	}
	if lo%b != 0 {
		panic(fmt.Sprintf("aem: Slice(%d,%d): lower bound not block-aligned (B=%d)", lo, hi, b))
	}
	if hi != v.n && hi%b != 0 {
		panic(fmt.Sprintf("aem: Slice(%d,%d): upper bound not block-aligned (B=%d)", lo, hi, b))
	}
	return &Vector{ma: v.ma, base: v.base + Addr(lo/b), n: hi - lo}
}

// Shrink returns a view of the first n items of v. It is used by
// length-reducing operations (merge with duplicate reduction) that allocate
// for the worst case and then discover the true output length. n must not
// exceed v.Len().
func (v *Vector) Shrink(n int) *Vector {
	if n < 0 || n > v.n {
		panic(fmt.Sprintf("aem: Shrink(%d) of vector of length %d", n, v.n))
	}
	return &Vector{ma: v.ma, base: v.base, n: n}
}

// Scanner reads a vector sequentially, one block at a time, costing one
// read I/O per block boundary crossed. It reserves B slots of internal
// memory for its current block; call Close to release them. The block
// frame is allocated once at construction, so scanning performs no
// allocation per I/O.
//
// On the data-free counting engine the scanner takes a fast path: every
// block's contents are zero items by the engine's contract, so each
// refill bills the read (trace included) and serves the block from a
// single pre-zeroed frame instead of re-zeroing B items per block in
// CountingStorage.ReadInto. Accounting, tracing and returned values are
// identical to the per-op path; only the wasted clearing is gone.
type Scanner struct {
	v      *Vector
	pos    int              // index of next item to return
	frame  []Item           // owned buffer of capacity B
	buf    []Item           // current block contents (aliases frame)
	bufLo  int              // index of buf[0] within the vector
	fast   *CountingStorage // non-nil: data-free refills from the static frame
	closed bool
}

// NewScanner returns a scanner positioned at the start of v.
func (v *Vector) NewScanner() *Scanner {
	v.ma.Reserve(v.ma.cfg.B)
	s := &Scanner{v: v, bufLo: -1}
	if v.ma.counting != nil {
		s.fast = v.ma.counting
		s.frame = make([]Item, v.ma.cfg.B) // all-zero; only ever read from
	} else {
		s.frame = make([]Item, 0, v.ma.cfg.B)
	}
	return s
}

// Next returns the next item. ok is false when the vector is exhausted.
func (s *Scanner) Next() (item Item, ok bool) {
	if s.pos >= s.v.n {
		return Item{}, false
	}
	if s.bufLo < 0 || s.pos >= s.bufLo+len(s.buf) {
		s.refill()
	}
	item = s.buf[s.pos-s.bufLo]
	s.pos++
	return item, true
}

// refill advances the block frame to the block holding s.pos, costing one
// read I/O.
func (s *Scanner) refill() {
	if s.fast != nil {
		a := s.v.BlockAddr(s.pos)
		s.v.ma.count(OpRead, a)
		s.buf = s.frame[:s.fast.Len(a)]
		s.bufLo = int(a-s.v.base) * s.v.ma.cfg.B
		return
	}
	s.buf, s.bufLo = s.v.ReadBlockInto(s.pos, s.frame)
}

// Peek returns the next item without consuming it.
func (s *Scanner) Peek() (item Item, ok bool) {
	item, ok = s.Next()
	if ok {
		s.pos--
	}
	return item, ok
}

// Remaining returns how many items have not yet been returned.
func (s *Scanner) Remaining() int { return s.v.n - s.pos }

// Close releases the scanner's internal memory reservation. A scanner must
// be closed exactly once.
func (s *Scanner) Close() {
	if s.closed {
		panic("aem: Scanner closed twice")
	}
	s.closed = true
	s.v.ma.Release(s.v.ma.cfg.B)
}

// Writer appends items to a vector sequentially, buffering one block in
// internal memory and writing each block exactly once when it fills (or on
// Close). It reserves B slots of internal memory.
//
// On the data-free counting engine the writer takes a fast path: item
// values are discarded (the engine would drop them anyway), so Append is a
// pair of counter increments and each flush records the block's length
// directly instead of copying a buffer nobody reads. Accounting, tracing
// and recorded block lengths are identical to the per-op path.
type Writer struct {
	v       *Vector
	pos     int              // number of items appended so far
	flushed int              // number of items already flushed to external memory
	buf     []Item           // buffered items [flushed, pos); nil on the fast path
	fast    *CountingStorage // non-nil: value-free buffering
	closed  bool
}

// NewWriter returns a writer positioned at the start of v. The caller must
// append exactly v.Len() items before Close.
func (v *Vector) NewWriter() *Writer {
	v.ma.Reserve(v.ma.cfg.B)
	w := &Writer{v: v}
	if v.ma.counting != nil {
		w.fast = v.ma.counting
	} else {
		w.buf = make([]Item, 0, v.ma.cfg.B)
	}
	return w
}

// Append buffers one item, flushing a full block to external memory (one
// write I/O) when B items have accumulated.
func (w *Writer) Append(item Item) {
	if w.pos >= w.v.n {
		panic(fmt.Sprintf("aem: Writer overflow: vector length %d", w.v.n))
	}
	if w.fast == nil {
		w.buf = append(w.buf, item)
	}
	w.pos++
	if w.pos-w.flushed == w.v.ma.cfg.B {
		w.flush()
	}
}

// Written returns the number of items appended so far.
func (w *Writer) Written() int { return w.pos }

func (w *Writer) flush() {
	n := w.pos - w.flushed
	if n == 0 {
		return
	}
	ma := w.v.ma
	a := w.v.base + Addr(w.flushed/ma.cfg.B)
	if w.fast != nil {
		ma.count(OpWrite, a)
		w.fast.setLens(a, 1, int32(n), int32(n))
	} else {
		ma.Write(a, w.buf)
		w.buf = w.buf[:0]
	}
	w.flushed = w.pos
}

// Close flushes any partial final block and releases the writer's internal
// memory. It panics if fewer than v.Len() items were appended, since the
// vector would be left with undefined holes.
func (w *Writer) Close() {
	if w.closed {
		panic("aem: Writer closed twice")
	}
	if w.pos != w.v.n {
		panic(fmt.Sprintf("aem: Writer closed after %d of %d items", w.pos, w.v.n))
	}
	w.flush()
	w.closed = true
	w.v.ma.Release(w.v.ma.cfg.B)
}

// CloseShort flushes and releases like Close but permits fewer than
// v.Len() appended items, returning the count. Pair it with Vector.Shrink
// when the output length is data-dependent.
func (w *Writer) CloseShort() int {
	if w.closed {
		panic("aem: Writer closed twice")
	}
	w.flush()
	w.closed = true
	w.v.ma.Release(w.v.ma.cfg.B)
	return w.pos
}
