// Package dict implements online dictionaries on the (M,B,ω)-AEM machine:
// an ω-adaptive buffer-tree dictionary that batches its writes, and an
// unbatched B-tree baseline that pays ω on every update.
//
// The paper's central message is that when writes cost ω× reads, algorithms
// must buffer and batch their writes. The bulk computations elsewhere in
// this repository (sort, permute, SpMxV) show it for one-shot problems; the
// dictionary shows it in the online data-structure regime, extending the
// write-efficient ARAM/data-structure line of Blelloch et al. that the aem
// package documentation cites. A B-tree pays Θ(log_B N) reads plus ω for
// the leaf rewrite on every update; the buffer tree appends updates to
// per-node buffers and flushes them lazily in block-granular batches, so an
// update's amortized write count is O(height/B) — and the ω-adaptive root
// buffer of Θ(ω·M) items defers even that work longer the more expensive
// writes become.
//
// All dictionary state — buffers, leaf runs, routing keys — lives in
// external memory blocks accessed through the costed Machine.ReadInto/Write
// path with caller-owned block frames, so both dictionaries run unchanged
// (and allocation-free in steady state) on every storage engine.
package dict

import (
	"fmt"

	"repro/internal/aem"
)

// Kind distinguishes the four dictionary operations.
type Kind uint8

const (
	// Insert puts (Key, Value) into the dictionary, overwriting any
	// previous value.
	Insert Kind = 1
	// Delete removes Key; deleting an absent key is a no-op.
	Delete Kind = 2
	// Lookup reports the value currently associated with Key.
	Lookup Kind = 3
	// RangeScan reports every live (key, value) pair with Key ≤ key < Hi,
	// in ascending key order.
	RangeScan Kind = 4
)

// String names the operation kind.
func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Lookup:
		return "lookup"
	case RangeScan:
		return "range"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Op is one dictionary operation in a stream.
type Op struct {
	Kind  Kind
	Key   int64
	Value int64 // Insert payload; must lie in [0, MaxValue]
	Hi    int64 // RangeScan end (exclusive)
}

// ValueBits is the width of a stored value. Values share an aem.Item's Aux
// field with the operation's sequence number and kind, so they are capped:
// the dictionary stores int64 keys and ValueBits-bit values.
const ValueBits = 30

// MaxValue is the largest storable value.
const MaxValue = 1<<ValueBits - 1

// maxSeq bounds the per-dictionary operation count: sequence numbers share
// the Aux field with the kind and value.
const maxSeq = 1 << 30

// Found is one hit of a range scan.
type Found struct {
	Key   int64
	Value int64
}

// Result answers one Lookup or RangeScan operation.
type Result struct {
	OK    bool    // Lookup: key present
	Value int64   // Lookup: associated value (0 if absent)
	Hits  []Found // RangeScan: live pairs in [Key, Hi), ascending by key
}

// Dict is an online dictionary processing a stream of operations in
// batches. Apply executes the batch in order — a Lookup observes exactly
// the Inserts and Deletes that precede it, including earlier ops of the
// same batch — and returns one Result per Lookup/RangeScan in stream
// order. Operation batches and their results are client-side streams, like
// the initial input of a bulk computation: the dictionary meters the
// internal memory it uses to process them, not the stream itself.
type Dict interface {
	Apply(ops []Op) []Result
	// Flush forces all buffered work down to the persistent structure.
	// Unbatched structures are always flushed; for the buffer tree this
	// empties every buffer into the leaf runs.
	Flush()
	// Len returns the number of live keys. It is derived from client-side
	// bookkeeping and costs no I/O.
	Len() int
}

// packEntry encodes an update (or a leaf entry, which is just the winning
// update for its key) into an Item Aux field: sequence number in the high
// bits, then the kind, then the value. Sorting items by (Key, Aux) with
// this encoding orders them by (key, seq), which is exactly the order
// updates must be applied in.
func packEntry(seq int64, kind Kind, value int64) int64 {
	return seq<<32 | int64(kind)<<ValueBits | value
}

func entrySeq(aux int64) int64   { return aux >> 32 }
func entryKind(aux int64) Kind   { return Kind(aux >> ValueBits & 3) }
func entryValue(aux int64) int64 { return aux & MaxValue }

// checkValue panics on a value outside the storable range; feeding the
// dictionary an unstorable value is a programming error in the caller.
func checkValue(v int64) {
	if v < 0 || v > MaxValue {
		panic(fmt.Sprintf("dict: value %d outside [0, %d]", v, int64(MaxValue)))
	}
}

// isUpdate reports whether the op mutates the dictionary.
func isUpdate(op Op) bool { return op.Kind == Insert || op.Kind == Delete }

// chain is an append-only bag of items stored in external blocks. Blocks
// are written once, whole, and never rewritten in place: appending streams
// full frames into fresh blocks, so a chain of n items occupies at most
// ⌈n/B⌉ + (number of partial append tails) blocks. Chains back both node
// buffers (unordered bags of updates) and leaf runs (key-sorted entries);
// order is the writer's business, the chain just stores blocks.
type chain struct {
	addrs []aem.Addr
	n     int
}

// appendBlock writes items (≤ B of them) as one fresh block of the chain.
func (c *chain) appendBlock(ma *aem.Machine, items []aem.Item) {
	a := ma.Alloc(1)
	ma.Write(a, items)
	c.addrs = append(c.addrs, a)
	c.n += len(items)
}

// reset empties the chain. The old blocks are abandoned (external memory
// is unbounded in the model; addresses are never reused).
func (c *chain) reset() {
	c.addrs = c.addrs[:0]
	c.n = 0
}

// blocks returns the number of blocks the chain occupies.
func (c *chain) blocks() int { return len(c.addrs) }

// chainWriter streams items into a chain through a caller-reserved block
// frame. The caller must Reserve B slots before constructing it and
// Release them after close.
type chainWriter struct {
	ma    *aem.Machine
	c     *chain
	frame []aem.Item
}

func newChainWriter(ma *aem.Machine, c *chain, frame []aem.Item) *chainWriter {
	return &chainWriter{ma: ma, c: c, frame: frame[:0]}
}

func (w *chainWriter) append(it aem.Item) {
	w.frame = append(w.frame, it)
	if len(w.frame) == cap(w.frame) {
		w.c.appendBlock(w.ma, w.frame)
		w.frame = w.frame[:0]
	}
}

// close flushes the partial tail frame (if any). The frame memory itself
// is the caller's to release.
func (w *chainWriter) close() {
	if len(w.frame) > 0 {
		w.c.appendBlock(w.ma, w.frame)
		w.frame = w.frame[:0]
	}
}

// chainScanner iterates a chain's items through a caller-reserved block
// frame, one costed read per block.
type chainScanner struct {
	ma    *aem.Machine
	c     *chain
	frame []aem.Item
	blk   int
	buf   []aem.Item
	pos   int
}

func newChainScanner(ma *aem.Machine, c *chain, frame []aem.Item) *chainScanner {
	return &chainScanner{ma: ma, c: c, frame: frame}
}

func (s *chainScanner) next() (aem.Item, bool) {
	for s.pos >= len(s.buf) {
		if s.blk >= len(s.c.addrs) {
			return aem.Item{}, false
		}
		s.buf = s.ma.ReadInto(s.c.addrs[s.blk], s.frame)
		s.blk++
		s.pos = 0
	}
	it := s.buf[s.pos]
	s.pos++
	return it, true
}
