package cli

import (
	"fmt"

	"repro/internal/aem"
)

// enginesCmd prints the storage-engine registry: every name any -engine
// flag or backend axis accepts, with its capability flags. This is the
// registry made visible — the same table every layer resolves through.
//
//	aem engines
func enginesCmd(prog string, args []string) int {
	if len(args) > 0 {
		fail(prog, "takes no arguments")
		return 2
	}
	fmt.Printf("%-12s %-10s %s\n", "engine", "caps", "summary")
	for _, e := range aem.Engines() {
		caps := ""
		if e.Caps.RetainsData {
			caps += "data "
		}
		if e.Caps.Persistent {
			caps += "file "
		}
		if e.Caps.BlockAlign > 0 {
			caps += fmt.Sprintf("align=%d", e.Caps.BlockAlign)
		}
		if caps == "" {
			caps = "-"
		}
		fmt.Printf("%-12s %-10s %s\n", e.Name, caps, e.Summary)
	}
	return 0
}
