// Package sorting implements the AEM sorting algorithms studied by the
// paper:
//
//   - SmallSort — the base-case sort of Blelloch et al. [7, Lemma 4.2]:
//     N′ ≤ ωM items in O(ω·n′) read and O(n′) write I/Os via ω
//     selection passes;
//   - MergeRuns — the ωm-way merge of Section 3, with the next-block
//     pointers b[i] maintained in external memory so that the algorithm
//     works for every ω (in particular ω > B, where the pointers do not
//     fit in internal memory);
//   - MergeSort — the full Section 3 mergesort,
//     O(ω·n·log_{ωm} n) reads and O(n·log_{ωm} n) writes;
//   - EMMergeSort — the classic symmetric-EM m-way mergesort run
//     unchanged on the AEM machine, the baseline whose cost
//     (1+ω)·n·log_m n the paper's algorithm improves on;
//   - MergeRunsInMemoryPointers — the merge in the style of the earlier
//     AEM mergesort of [7], which keeps one pointer per run in internal
//     memory and therefore requires ω·m ≲ M (equivalently ω ≲ B). It
//     exists to demonstrate the assumption the paper removes: on machines
//     with ω > B it fails by design with a memory-overflow panic.
//
// All algorithms run on the metered aem.Machine, reserve every word of
// internal memory they use, and are verified by the test suite both for
// correctness (output sorted, multiset preserved) and for their paper
// cost bounds (measured I/O counts within constant factors of the stated
// formulas, with the constants pinned by regression tests).
package sorting

import (
	"fmt"

	"repro/internal/aem"
)

// maxItem is a sentinel greater than every real item in the (Key, Aux)
// total order.
var maxItem = aem.Item{Key: 1<<63 - 1, Aux: 1<<63 - 1}

// minItem is a sentinel smaller than every real item.
var minItem = aem.Item{Key: -(1<<63 - 1), Aux: -(1<<63 - 1)}

// SmallSort sorts v into a fresh vector using the multi-pass selection
// algorithm of Blelloch et al. [7, Lemma 4.2]. Each pass scans the whole
// input and retains the M/2 smallest items above the previous pass's
// watermark, then writes them out; ⌈N′/(M/2)⌉ passes suffice. For
// N′ ≤ ωM this is O(ω·n′) reads and O(n′) writes, total cost O(ω·n′).
//
// The input vector is left untouched. SmallSort requires M ≥ 4B (half the
// memory for the selection buffer, one block frame for scanning, one for
// writing).
func SmallSort(ma *aem.Machine, v *aem.Vector) *aem.Vector {
	cfg := ma.Config()
	if cfg.M < 4*cfg.B {
		panic(fmt.Sprintf("sorting: SmallSort needs M ≥ 4B, got M=%d B=%d", cfg.M, cfg.B))
	}
	defer ma.SetPhase(ma.SetPhase("base"))

	out := aem.NewVector(ma, v.Len())
	if v.Len() == 0 {
		return out
	}

	capS := cfg.M / 2
	ma.Reserve(capS)
	defer ma.Release(capS)

	w := out.NewWriter()
	defer w.Close()

	// watermark is the largest item emitted so far and dupSkip the number
	// of its emitted copies, so inputs with duplicate (Key, Aux) items —
	// e.g. data read back from the zero-filled counting engine — sort
	// correctly too: each pass skips exactly the copies already written.
	// For all-distinct inputs the schedule is unchanged.
	watermark := minItem
	dupSkip := 0
	buf := make([]aem.Item, 0, capS)
	for w.Written() < v.Len() {
		buf = buf[:0]
		eqSeen := 0
		sc := v.NewScanner()
		for {
			it, ok := sc.Next()
			if !ok {
				break
			}
			if aem.Less(it, watermark) {
				continue // already emitted in an earlier pass
			}
			if it == watermark {
				eqSeen++
				if eqSeen <= dupSkip {
					continue // this copy was already emitted
				}
			}
			buf = insertCapped(buf, it, capS)
		}
		sc.Close()
		if len(buf) == 0 {
			panic("sorting: SmallSort made no progress; input mutated during sort?")
		}
		for _, it := range buf {
			w.Append(it)
		}
		newMark := buf[len(buf)-1]
		emittedAtMark := 0
		for i := len(buf) - 1; i >= 0 && buf[i] == newMark; i-- {
			emittedAtMark++
		}
		if newMark == watermark {
			dupSkip += emittedAtMark
		} else {
			dupSkip = emittedAtMark
		}
		watermark = newMark
	}
	return out
}

// insertCapped inserts it into the ascending-sorted buf, keeping at most
// cap items by discarding the largest. It returns the updated slice.
func insertCapped(buf []aem.Item, it aem.Item, capacity int) []aem.Item {
	if len(buf) == capacity {
		if !aem.Less(it, buf[len(buf)-1]) {
			return buf // larger than everything retained
		}
		buf = buf[:len(buf)-1]
	}
	// Binary search for the insertion point.
	lo, hi := 0, len(buf)
	for lo < hi {
		mid := (lo + hi) / 2
		if aem.Less(buf[mid], it) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	buf = append(buf, aem.Item{})
	copy(buf[lo+1:], buf[lo:])
	buf[lo] = it
	return buf
}

// IsSorted reports whether items is ascending in the (Key, Aux) total
// order.
func IsSorted(items []aem.Item) bool {
	for i := 1; i < len(items); i++ {
		if aem.Less(items[i], items[i-1]) {
			return false
		}
	}
	return true
}

// SameMultiset reports whether a and b contain the same items with the
// same multiplicities. Used by tests and the harness to verify that sorts
// and merges neither lose nor invent data.
func SameMultiset(a, b []aem.Item) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[aem.Item]int, len(a))
	for _, it := range a {
		counts[it]++
	}
	for _, it := range b {
		counts[it]--
		if counts[it] < 0 {
			return false
		}
	}
	return true
}
