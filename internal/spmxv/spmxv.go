// Package spmxv implements sparse matrix × dense vector multiplication in
// the AEM model as studied in Section 5 of the paper: an N×N matrix with
// exactly δ non-zeros per column (H = δN in total), stored in column-major
// order, multiplied over the integer semiring (no subtraction is ever
// used, honouring the semi-ring restriction of the lower bound).
//
// Two algorithms bracket the upper-bound side of Theorem 5.1:
//
//   - Naive visits the entries row by row (scattered in the column-major
//     layout) and accumulates each output directly: O(H + ω·n) cost;
//   - SortBased computes elementary products in layout order and sorts
//     them by row with merge-with-reduction, following the paper's
//     meta-column scheme: O(ω·h·log_{ωm} N/max{δ,B} + ω·n) cost.
//
// Best picks the predicted cheaper of the two, matching the lower bound's
// min{H, ω·h·log…} structure.
package spmxv

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/sorting"
	"repro/internal/workload"
)

// Matrix is a sparse matrix resident on an AEM machine: the conformation
// (program knowledge, costs no I/O to consult) plus the entry values in
// column-major order on disk. Entry items carry Key = row index and
// Aux = value; the column is implied by the position, exactly as in the
// paper's layout where each column's entries are sorted by row.
type Matrix struct {
	Conf    *workload.Conformation
	Entries *aem.Vector
}

// NewMatrix lays the matrix out on the machine's disk (free, as input).
// values holds the non-zero values in column-major entry order and must
// have length conf.H().
func NewMatrix(ma *aem.Machine, conf *workload.Conformation, values []int64) *Matrix {
	if len(values) != conf.H() {
		panic(fmt.Sprintf("spmxv: %d values for %d entries", len(values), conf.H()))
	}
	items := make([]aem.Item, conf.H())
	pos := 0
	for col := 0; col < conf.N; col++ {
		for _, row := range conf.Rows[col] {
			items[pos] = aem.Item{Key: int64(row), Aux: values[pos]}
			pos++
		}
	}
	return &Matrix{Conf: conf, Entries: aem.Load(ma, items)}
}

// LoadDense lays a dense vector out on disk (free, as input): item j
// carries Key = j, Aux = x[j].
func LoadDense(ma *aem.Machine, x []int64) *aem.Vector {
	items := make([]aem.Item, len(x))
	for j, v := range x {
		items[j] = aem.Item{Key: int64(j), Aux: v}
	}
	return aem.Load(ma, items)
}

// DenseReference computes y = A·x directly in ordinary memory, for
// verification.
func DenseReference(conf *workload.Conformation, values, x []int64) []int64 {
	y := make([]int64, conf.N)
	pos := 0
	for col := 0; col < conf.N; col++ {
		for _, row := range conf.Rows[col] {
			y[row] += values[pos] * x[col]
			pos++
		}
	}
	return y
}

// Naive computes y = A·x with the direct row-by-row program: for each
// output row it reads the blocks holding that row's entries (scattered
// across the column-major layout) and the corresponding x blocks,
// accumulating the row sum in a register. A one-block cache for each of
// the two streams keeps the cost at O(H + ω·n) (it is what makes banded
// conformations nearly free, matching the paper's "direct or naive
// algorithm" whose cost the lower bound's H term reflects).
//
// The returned vector holds Item{Key: i, Aux: y_i} for every row i.
// Requires M ≥ 4B.
func Naive(ma *aem.Machine, m *Matrix, x *aem.Vector) *aem.Vector {
	cfg := ma.Config()
	conf := m.Conf
	if x.Len() != conf.N {
		panic(fmt.Sprintf("spmxv: x has %d entries for N=%d", x.Len(), conf.N))
	}

	// Program knowledge: the positions of each row's entries in the
	// column-major layout. Column c's entries occupy positions
	// c·δ … c·δ+δ−1, sorted by row.
	rowCols := make([][]int32, conf.N)
	for col := 0; col < conf.N; col++ {
		for _, row := range conf.Rows[col] {
			rowCols[row] = append(rowCols[row], int32(col))
		}
	}
	posOf := func(row, col int) int {
		base := col * conf.Delta
		for k, r := range conf.Rows[col] {
			if int(r) == row {
				return base + k
			}
		}
		panic("spmxv: entry not in conformation")
	}

	ma.Reserve(3 * cfg.B) // two entry frames (a row's entries straddle a block boundary) + x frame
	defer ma.Release(3 * cfg.B)

	y := aem.NewVector(ma, conf.N)
	w := y.NewWriter()
	defer w.Close()

	// Two-frame LRU for the entry stream plus one x frame, each backed by
	// its own reused buffer: an eviction hands the victim's buffer to the
	// incoming block, so the steady state allocates nothing per I/O.
	eFrames := [2][]aem.Item{make([]aem.Item, 0, cfg.B), make([]aem.Item, 0, cfg.B)}
	var eBlk [2][]aem.Item
	eLo := [2]int{-1, -1}
	xFrame := make([]aem.Item, 0, cfg.B)
	var xBlk []aem.Item
	xLo := -1
	for row := 0; row < conf.N; row++ {
		var sum int64
		for _, c := range rowCols[row] {
			pos := posOf(row, int(c))
			f := -1
			for i := 0; i < 2; i++ {
				if eLo[i] >= 0 && pos >= eLo[i] && pos < eLo[i]+len(eBlk[i]) {
					f = i
					break
				}
			}
			if f < 0 {
				eFrames[0], eFrames[1] = eFrames[1], eFrames[0]
				eBlk[1], eLo[1] = eBlk[0], eLo[0]
				eBlk[0], eLo[0] = m.Entries.ReadBlockInto(pos, eFrames[0])
				f = 0
			}
			a := eBlk[f][pos-eLo[f]].Aux
			if xLo < 0 || int(c) < xLo || int(c) >= xLo+len(xBlk) {
				xBlk, xLo = x.ReadBlockInto(int(c), xFrame)
			}
			sum += a * xBlk[int(c)-xLo].Aux
		}
		w.Append(aem.Item{Key: int64(row), Aux: sum})
	}
	return y
}

// SortBased computes y = A·x with the paper's sorting-based algorithm:
//
//  1. Scan the entries in layout order alongside x (which the column-major
//     order visits sequentially), replacing each entry a_ij with the
//     elementary product a_ij·x_j keyed by row.
//  2. Sort the products by row with merge-with-reduction. Following §5's
//     meta-column scheme: when δ ≥ B each column is already a sorted run
//     (written to its own block-aligned scratch vector during the scan) and
//     the runs of each meta-column (N/δ consecutive columns) are merged
//     first; when δ < B a block-sort pass makes every block a sorted run of
//     length B — in both cases base runs have length max{δ,B}, which is
//     where the log_{ωm} N/max{δ,B} factor comes from.
//  3. Expand the reduced (row, sum) pairs into the dense output.
//
// Total cost O(ω·h·log_{ωm} N/max{δ,B} + ω·n). Requires M ≥ 8B.
func SortBased(ma *aem.Machine, m *Matrix, x *aem.Vector) *aem.Vector {
	cfg := ma.Config()
	conf := m.Conf
	if x.Len() != conf.N {
		panic(fmt.Sprintf("spmxv: x has %d entries for N=%d", x.Len(), conf.N))
	}

	var runs []*aem.Vector
	if conf.Delta >= cfg.B {
		runs = productsPerColumn(ma, m, x)
	} else {
		runs = productsBlockRuns(ma, m, x)
	}

	// Meta columns: groups of runs covering ~N entries each (N/runLen
	// base runs of length runLen = max{δ,B}), merged with reduction; then
	// the δ(-ish) meta results are merged the same way.
	runLen := max(conf.Delta, cfg.B)
	perMeta := (conf.N + runLen - 1) / runLen
	if perMeta < 1 {
		perMeta = 1
	}
	var metas []*aem.Vector
	for lo := 0; lo < len(runs); lo += perMeta {
		hi := lo + perMeta
		if hi > len(runs) {
			hi = len(runs)
		}
		metas = append(metas, sorting.MergeAll(ma, runs[lo:hi], sorting.MergeOptions{Reduce: true}))
	}
	reduced := sorting.MergeAll(ma, metas, sorting.MergeOptions{Reduce: true})

	// Expand to the dense output: rows absent from the reduced pairs get
	// an explicit zero.
	y := aem.NewVector(ma, conf.N)
	w := y.NewWriter()
	sc := reduced.NewScanner()
	next, ok := sc.Next()
	for row := 0; row < conf.N; row++ {
		var sum int64
		for ok && next.Key == int64(row) {
			sum += next.Aux
			next, ok = sc.Next()
		}
		w.Append(aem.Item{Key: int64(row), Aux: sum})
	}
	sc.Close()
	w.Close()
	return y
}

// productsPerColumn (δ ≥ B case) scans entries and x together, writing
// each column's products to its own scratch vector — each a sorted run of
// length δ.
func productsPerColumn(ma *aem.Machine, m *Matrix, x *aem.Vector) []*aem.Vector {
	conf := m.Conf
	runs := make([]*aem.Vector, conf.N)
	esc := m.Entries.NewScanner()
	xsc := x.NewScanner()
	defer esc.Close()
	defer xsc.Close()
	for col := 0; col < conf.N; col++ {
		xit, ok := xsc.Next()
		if !ok {
			panic("spmxv: x exhausted early")
		}
		runs[col] = aem.NewVector(ma, conf.Delta)
		w := runs[col].NewWriter()
		for k := 0; k < conf.Delta; k++ {
			e, ok := esc.Next()
			if !ok {
				panic("spmxv: entries exhausted early")
			}
			w.Append(aem.Item{Key: e.Key, Aux: e.Aux * xit.Aux})
		}
		w.Close()
	}
	return runs
}

// productsBlockRuns (δ < B case) scans entries and x together into a
// products vector, then sorts each block in memory (one read and one write
// per block), making every block a sorted run of length B.
func productsBlockRuns(ma *aem.Machine, m *Matrix, x *aem.Vector) []*aem.Vector {
	cfg := ma.Config()
	conf := m.Conf
	h := conf.H()

	prod := aem.NewVector(ma, h)
	esc := m.Entries.NewScanner()
	xsc := x.NewScanner()
	w := prod.NewWriter()
	for col := 0; col < conf.N; col++ {
		xit, ok := xsc.Next()
		if !ok {
			panic("spmxv: x exhausted early")
		}
		for k := 0; k < conf.Delta; k++ {
			e, ok := esc.Next()
			if !ok {
				panic("spmxv: entries exhausted early")
			}
			w.Append(aem.Item{Key: e.Key, Aux: e.Aux * xit.Aux})
		}
	}
	w.Close()
	xsc.Close()
	esc.Close()

	// Block-sort pass: each block becomes a sorted run.
	sorted := aem.NewVector(ma, h)
	ma.Reserve(cfg.B)
	defer ma.Release(cfg.B)
	frame := make([]aem.Item, 0, cfg.B)
	runs := make([]*aem.Vector, 0, cfg.BlocksOf(h))
	for lo := 0; lo < h; lo += cfg.B {
		hi := lo + cfg.B
		if hi > h {
			hi = h
		}
		blk, _ := prod.ReadBlockInto(lo, frame)
		sortItemsInPlace(blk)
		ma.Write(sorted.BlockAddr(lo), blk)
		runs = append(runs, sorted.Slice(lo, hi))
	}
	return runs
}

// Strategy names the algorithm Best selected.
type Strategy int

const (
	// StrategyNaive is the direct row-by-row program (H-term regime).
	StrategyNaive Strategy = iota
	// StrategySort is the sorting-based algorithm.
	StrategySort
)

// String names the strategy.
func (s Strategy) String() string {
	if s == StrategyNaive {
		return "naive"
	}
	return "sort"
}

// Best multiplies with whichever algorithm the closed-form predictions say
// is cheaper, returning the choice — the upper bound matching the min{} in
// Theorem 5.1.
func Best(ma *aem.Machine, m *Matrix, x *aem.Vector) (*aem.Vector, Strategy) {
	p := bounds.SpMxVParams{
		Params: bounds.Params{N: m.Conf.N, Cfg: ma.Config()},
		Delta:  m.Conf.Delta,
	}
	naive := bounds.SpMxVNaivePredicted(p).Cost(ma.Config().Omega)
	sortC := bounds.SpMxVSortPredicted(p).Cost(ma.Config().Omega)
	if naive <= sortC {
		return Naive(ma, m, x), StrategyNaive
	}
	return SortBased(ma, m, x), StrategySort
}

// VerifyProduct checks y (as produced by Naive/SortBased) against the
// dense reference, using free reads; for tests and the harness.
func VerifyProduct(conf *workload.Conformation, values, x []int64, y *aem.Vector) error {
	want := DenseReference(conf, values, x)
	got := y.Materialize()
	if len(got) != conf.N {
		return fmt.Errorf("spmxv: y has %d entries, want %d", len(got), conf.N)
	}
	for i := range want {
		if got[i].Key != int64(i) {
			return fmt.Errorf("spmxv: position %d holds row %d", i, got[i].Key)
		}
		if got[i].Aux != want[i] {
			return fmt.Errorf("spmxv: y[%d] = %d, want %d", i, got[i].Aux, want[i])
		}
	}
	return nil
}

// sortItemsInPlace sorts a block ascending by (Key, Aux); blocks are
// small, insertion sort is fine.
func sortItemsInPlace(items []aem.Item) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && aem.Less(items[j], items[j-1]); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
