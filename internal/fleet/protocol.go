// Package fleet is the elastic remote executor: an HTTP coordinator
// (`aem serve`) that leases grid points to workers (`aem work -connect`)
// and ingests the PointRecords they stream back, writing a single
// 1-of-1 shard stream that `aem merge` turns into the exact tables an
// unsharded run emits.
//
// The design extends the executor split of the harness: the grid is
// still the model, and here the machine is a fleet whose membership can
// change mid-run. Three production failure modes are handled in the
// coordinator's lease table:
//
//   - worker death: a lease not renewed within its TTL expires and its
//     unfinished points return to the queue for the next worker;
//   - stragglers: once the queue drains, idle workers are speculatively
//     re-leased the points still outstanding on live leases — the first
//     complete record wins and later copies are discarded by the same
//     filled-point bookkeeping MergeShards uses;
//   - interrupts: the output stream is written record by record as
//     results arrive, so an interrupted coordinator leaves a valid
//     partial shard file behind; `aem merge -residual` distills the
//     missing points into a ResidualSpec and `aem work -residual`
//     finishes them without a coordinator.
//
// The wire format is deliberately the harness's own: the payload of
// every record POST is the same JSON Lines PointRecord a CI shard
// writes, so the fleet cannot drift from the sharded path it replaces.
package fleet

import "repro/internal/harness"

// Protocol endpoints, all rooted at the coordinator's address:
//
//	GET  /v1/run             → RunInfo        (what is being computed)
//	POST /v1/lease           → LeaseResponse  (a batch of points to run)
//	POST /v1/records?lease=N → RecordsResponse (JSON Lines PointRecords in)

// RunInfo describes the coordinator's run. Workers resolve the
// experiments against their own registry and re-enumerate the grids; a
// grid-size mismatch means the binaries drifted and the worker must not
// contribute records.
type RunInfo struct {
	Experiments []string `json:"experiments"`
	GridPoints  int      `json:"grid_points"`
}

// LeaseRequest identifies the requesting worker (diagnostics only).
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse carries one lease: a batch of grid points to run and
// stream back before the TTL runs out. Done means every point of the
// run is accounted for and the worker should exit. RetryMS, when set,
// asks the worker to back off and ask again (no work to hand out right
// now, but the run is not finished).
type LeaseResponse struct {
	Lease   int               `json:"lease"`
	Points  []harness.GridRef `json:"points"`
	TTLMS   int64             `json:"ttl_ms"`
	Done    bool              `json:"done"`
	RetryMS int64             `json:"retry_ms,omitempty"`
}

// RecordsResponse acknowledges a record upload. Duplicates counts
// records for points some other worker delivered first — harmless, the
// copies are discarded. Done tells the uploader the whole run is
// complete so it can exit without another lease round-trip.
type RecordsResponse struct {
	Accepted   int  `json:"accepted"`
	Duplicates int  `json:"duplicates"`
	Done       bool `json:"done"`
}
