// Package workload generates deterministic inputs for the experiments:
// random permutations, key distributions for sorting, sparse matrix
// conformations for SpMxV, and dictionary operation streams. All
// generators are driven by an explicit splitmix64 RNG (see internal/rng)
// so that every experiment in the repository is exactly reproducible from
// its seed.
package workload

import "repro/internal/rng"

// RNG is the repository's splitmix64 generator, re-exported so that
// workload consumers keep a single import. The implementation lives in
// the leaf package internal/rng, which algorithm packages use directly.
type RNG = rng.RNG

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return rng.New(seed)
}
