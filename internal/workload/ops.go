package workload

import (
	"fmt"
	"math"

	"repro/internal/dict"
)

// Scenario selects the shape of a generated dictionary operation stream.
// The scenarios span the regimes where write buffering matters most: the
// uniform baseline, the Zipf-skewed traffic of real key-value workloads
// (where large buffers absorb repeated writes to hot keys before they ever
// reach the structure), sequential-insert bursts (the adversarial case for
// quantile-based skeletons), and churn-heavy delete traffic.
type Scenario int

const (
	// UniformOps draws keys uniformly from the keyspace with a mixed
	// insert/delete/lookup/range op profile.
	UniformOps Scenario = iota
	// ZipfOps draws keys from a Zipf(s=1.1) distribution over the
	// keyspace: a few hot keys take most of the traffic.
	ZipfOps
	// SortedBurstOps inserts runs of consecutive keys from a moving
	// cursor, interleaved with lookups over recently inserted keys.
	SortedBurstOps
	// DeleteHeavyOps inserts a working set and then churns it with a
	// delete-dominated mix.
	DeleteHeavyOps
	// DriftOps draws keys from a Zipf hot set whose location migrates
	// mid-stream: traffic concentrates on a hot window, then the window
	// jumps to a different region of the keyspace and concentrates there.
	// This is the adversarial shape for write buffering — each migration
	// invalidates the locality the buffers had accumulated, forcing the
	// deferred work out as flush stalls.
	DriftOps
	// FlashCrowdOps models a sudden spike: background uniform traffic is
	// interrupted by crowd events that concentrate ~90% of the stream on a
	// handful of keys (insert-heavy — everyone writes the same entries),
	// then decay geometrically back to background. The spike lands a burst
	// of near-duplicate updates on one subtree — exactly what a write
	// buffer absorbs well amortized, and exactly what convoys a commit
	// loop when the absorbed burst comes back out as one cascade.
	FlashCrowdOps
)

// String names the scenario for experiment tables and CLI flags.
func (s Scenario) String() string {
	switch s {
	case UniformOps:
		return "uniform"
	case ZipfOps:
		return "zipf"
	case SortedBurstOps:
		return "sortedburst"
	case DeleteHeavyOps:
		return "deleteheavy"
	case DriftOps:
		return "drift"
	case FlashCrowdOps:
		return "flashcrowd"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// Scenarios lists every scenario, for table-driven tests and sweeps.
func Scenarios() []Scenario {
	return []Scenario{UniformOps, ZipfOps, SortedBurstOps, DeleteHeavyOps, DriftOps, FlashCrowdOps}
}

// DictOps generates an n-operation dictionary stream over keys in
// [0, keyspace). Values are drawn within dict's storable range. Streams
// are deterministic in (scenario, seed of r, n, keyspace).
//
// Queries arrive in bursts rather than one-by-one: batching queries is how
// an online system amortizes the buffer scans of a write-buffered
// dictionary, and the generators model that traffic shape (a burst of
// updates, then a burst of queries).
func DictOps(r *RNG, sc Scenario, n int, keyspace int64) []dict.Op {
	if keyspace < 2 {
		panic(fmt.Sprintf("workload: DictOps needs keyspace ≥ 2, got %d", keyspace))
	}
	ops := make([]dict.Op, 0, n)
	span := keyspace / 64
	if span < 2 {
		span = 2
	}
	value := func() int64 { return int64(r.Intn(1 << 20)) }

	switch sc {
	case UniformOps, ZipfOps:
		var key func() int64
		if sc == UniformOps {
			key = func() int64 { return int64(r.Intn(int(keyspace))) }
		} else {
			z := newZipf(int(keyspace), 1.1)
			key = func() int64 { return z.sample(r) }
		}
		for len(ops) < n {
			// A burst of updates...
			for burst := 8 + r.Intn(56); burst > 0 && len(ops) < n; burst-- {
				if r.Intn(100) < 22 {
					ops = append(ops, dict.Op{Kind: dict.Delete, Key: key()})
				} else {
					ops = append(ops, dict.Op{Kind: dict.Insert, Key: key(), Value: value()})
				}
			}
			// ...then a burst of queries.
			for burst := 8 + r.Intn(24); burst > 0 && len(ops) < n; burst-- {
				if r.Intn(100) < 6 {
					lo := key()
					ops = append(ops, dict.Op{Kind: dict.RangeScan, Key: lo, Hi: lo + span})
				} else {
					ops = append(ops, dict.Op{Kind: dict.Lookup, Key: key()})
				}
			}
		}

	case SortedBurstOps:
		cursor := int64(0)
		for len(ops) < n {
			start := cursor
			for burst := 32 + r.Intn(64); burst > 0 && len(ops) < n; burst-- {
				ops = append(ops, dict.Op{Kind: dict.Insert, Key: cursor, Value: value()})
				cursor = (cursor + 1) % keyspace
			}
			for burst := 4 + r.Intn(12); burst > 0 && len(ops) < n; burst-- {
				back := int64(r.Intn(128))
				k := cursor - back
				if k < 0 {
					k += keyspace
				}
				ops = append(ops, dict.Op{Kind: dict.Lookup, Key: k})
			}
			if r.Intn(4) == 0 && len(ops) < n {
				ops = append(ops, dict.Op{Kind: dict.RangeScan, Key: start, Hi: start + span})
			}
		}

	case DeleteHeavyOps:
		// Build a working set with the first third, then churn it.
		build := n / 3
		for len(ops) < build {
			ops = append(ops, dict.Op{Kind: dict.Insert, Key: int64(r.Intn(int(keyspace))), Value: value()})
		}
		for len(ops) < n {
			for burst := 8 + r.Intn(40); burst > 0 && len(ops) < n; burst-- {
				k := int64(r.Intn(int(keyspace)))
				switch {
				case r.Intn(100) < 55:
					ops = append(ops, dict.Op{Kind: dict.Delete, Key: k})
				case r.Intn(100) < 60:
					ops = append(ops, dict.Op{Kind: dict.Insert, Key: k, Value: value()})
				default:
					ops = append(ops, dict.Op{Kind: dict.Lookup, Key: k})
				}
			}
			for burst := 4 + r.Intn(12); burst > 0 && len(ops) < n; burst-- {
				ops = append(ops, dict.Op{Kind: dict.Lookup, Key: int64(r.Intn(int(keyspace)))})
			}
		}

	case DriftOps:
		// Zipf traffic over a hot window of the keyspace; every phase the
		// window jumps to a fresh offset. ~8 phases per stream, update-heavy
		// (write buffering's worst case is absorbing, then abandoning,
		// locality).
		window := keyspace / 8
		if window < 2 {
			window = 2
		}
		z := newZipf(int(window), 1.1)
		phases := 8
		perPhase := n / phases
		if perPhase < 1 {
			perPhase = n
		}
		offset := int64(0)
		key := func() int64 { return (offset + z.sample(r)) % keyspace }
		for len(ops) < n {
			offset = int64(r.Intn(int(keyspace))) // the hot set migrates
			for i := 0; i < perPhase && len(ops) < n; i++ {
				switch c := r.Intn(100); {
				case c < 60:
					ops = append(ops, dict.Op{Kind: dict.Insert, Key: key(), Value: value()})
				case c < 75:
					ops = append(ops, dict.Op{Kind: dict.Delete, Key: key()})
				case c < 97:
					ops = append(ops, dict.Op{Kind: dict.Lookup, Key: key()})
				default:
					lo := key()
					ops = append(ops, dict.Op{Kind: dict.RangeScan, Key: lo, Hi: lo + span})
				}
			}
		}

	case FlashCrowdOps:
		// Uniform background traffic punctuated by crowd events. During a
		// spike, intensity starts at ~90% (9 of 10 ops hit the crowd keys)
		// and decays geometrically (×3/4 per slice) back to background;
		// crowd traffic is insert-heavy with occasional lookups — the
		// "everyone updates the same rows, some refresh them" shape.
		bg := func() {
			switch c := r.Intn(100); {
			case c < 45:
				ops = append(ops, dict.Op{Kind: dict.Insert, Key: int64(r.Intn(int(keyspace))), Value: value()})
			case c < 60:
				ops = append(ops, dict.Op{Kind: dict.Delete, Key: int64(r.Intn(int(keyspace)))})
			case c < 96:
				ops = append(ops, dict.Op{Kind: dict.Lookup, Key: int64(r.Intn(int(keyspace)))})
			default:
				lo := int64(r.Intn(int(keyspace)))
				ops = append(ops, dict.Op{Kind: dict.RangeScan, Key: lo, Hi: lo + span})
			}
		}
		for len(ops) < n {
			// Calm stretch between crowds.
			for calm := 64 + r.Intn(192); calm > 0 && len(ops) < n; calm-- {
				bg()
			}
			if len(ops) >= n {
				break
			}
			// A crowd forms on a few keys near a random hotspot.
			hotN := 8 + r.Intn(9) // 8..16 crowd keys
			base := int64(r.Intn(int(keyspace)))
			hot := func() int64 { return (base + int64(r.Intn(hotN))) % keyspace }
			slice := 32 + r.Intn(32)
			for intensity := 90; intensity > 10 && len(ops) < n; intensity = intensity * 3 / 4 {
				for i := 0; i < slice && len(ops) < n; i++ {
					if r.Intn(100) >= intensity {
						bg()
						continue
					}
					if r.Intn(100) < 75 {
						ops = append(ops, dict.Op{Kind: dict.Insert, Key: hot(), Value: value()})
					} else {
						ops = append(ops, dict.Op{Kind: dict.Lookup, Key: hot()})
					}
				}
			}
		}

	default:
		panic(fmt.Sprintf("workload: unknown scenario %v", sc))
	}
	return ops
}

// DictStreams splits an n-op scenario into `goroutines` independent
// per-goroutine streams for concurrent load (internal/dictsrv): each
// stream is generated with its own derived seed, so goroutine count
// changes the interleaving but not any single stream's shape. Streams are
// deterministic in (seed, scenario, goroutines, n, keyspace); the last
// stream absorbs the remainder when goroutines does not divide n.
func DictStreams(seed uint64, sc Scenario, goroutines, n int, keyspace int64) [][]dict.Op {
	if goroutines < 1 {
		panic(fmt.Sprintf("workload: DictStreams needs ≥ 1 goroutine, got %d", goroutines))
	}
	per := n / goroutines
	streams := make([][]dict.Op, goroutines)
	for g := range streams {
		count := per
		if g == goroutines-1 {
			count = n - per*(goroutines-1)
		}
		r := NewRNG(seed + uint64(g)*0x9e3779b97f4a7c15)
		streams[g] = DictOps(r, sc, count, keyspace)
	}
	return streams
}

// OpMix counts a stream's operations by kind; experiment tables report it
// so the workload composition is visible next to the measured costs.
func OpMix(ops []dict.Op) (inserts, deletes, lookups, ranges int) {
	for _, op := range ops {
		switch op.Kind {
		case dict.Insert:
			inserts++
		case dict.Delete:
			deletes++
		case dict.Lookup:
			lookups++
		case dict.RangeScan:
			ranges++
		}
	}
	return
}

// zipf samples from a Zipf(s) distribution over {0, …, n−1} by inverting
// the exact cumulative distribution (precomputed once; sampling costs one
// Float64 and a binary search). Rank r has probability ∝ 1/(r+1)^s.
type zipf struct {
	cum []float64
}

func newZipf(n int, s float64) *zipf {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipf{cum: cum}
}

func (z *zipf) sample(r *RNG) int64 {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo)
}
