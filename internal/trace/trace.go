// Package trace applies the round framework of Section 4 to recorded I/O
// traces of *real algorithm executions* on the aem.Machine — the bridge
// between the paper's program-level lower-bound machinery and the
// algorithms of Sections 3 and 5.
//
// A recorded trace is the op sequence of one execution, i.e. exactly the
// "program" the paper's §2 associates with an algorithm on one input.
// This package decomposes a trace into ωm-rounds (the unit of the §4.2
// counting argument) and evaluates the Lemma 4.1 conversion at the trace
// level: writes buffered within a round cost nothing until the round ends,
// re-reads of round-local writes are served from the buffer, and memory
// snapshots are written/restored at round boundaries. The result is the
// exact cost the converted round-based execution would pay, which lets
// experiments measure the lemma's constant on the paper's own mergesort
// rather than only on synthetic programs.
package trace

import (
	"fmt"

	"repro/internal/aem"
)

// Round is one cost-bounded segment of a trace.
type Round struct {
	// Ops is the index range [Start, End) of the trace ops in the round.
	Start, End int
	// Stats counts the round's I/O in the original trace.
	Stats aem.Stats
}

// Decompose splits a trace greedily into rounds of cost at most ω·m (the
// round budget of §4). Every round except possibly the last has cost
// greater than ω·(m−1), matching the paper's requirement that all but the
// last round nearly exhaust the budget. An empty trace decomposes into no
// rounds at all — a program that did no I/O ran in zero rounds, not one.
func Decompose(ops []aem.TraceOp, cfg aem.Config) []Round {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(ops) == 0 {
		return nil
	}
	budget := int64(cfg.Omega) * int64(cfg.BlocksInMemory())
	var rounds []Round
	cur := Round{}
	var cost int64
	for i, op := range ops {
		c := int64(1)
		if op.Kind == aem.OpWrite {
			c = int64(cfg.Omega)
		}
		if cost+c > budget && cost > 0 {
			cur.End = i
			rounds = append(rounds, cur)
			cur = Round{Start: i}
			cost = 0
		}
		cost += c
		if op.Kind == aem.OpRead {
			cur.Stats.Reads++
		} else {
			cur.Stats.Writes++
		}
	}
	if cost > 0 {
		cur.End = len(ops)
		rounds = append(rounds, cur)
	}
	return rounds
}

// Conversion reports the cost of the Lemma 4.1 round-based conversion of
// a trace.
type Conversion struct {
	// Original is the trace's own cost.
	Original int64
	// Converted is the cost the round-based execution would pay,
	// including buffered-write flushes and memory snapshots.
	Converted int64
	// Rounds is the number of rounds.
	Rounds int
	// SavedReads counts reads served from the round's write buffer (M′′)
	// instead of external memory.
	SavedReads int64
}

// Factor returns Converted/Original.
func (c Conversion) Factor() float64 {
	if c.Original == 0 {
		return 1
	}
	return float64(c.Converted) / float64(c.Original)
}

// Convert evaluates the Lemma 4.1 conversion on a recorded trace: within
// each ω(m−1)-budget segment, writes are buffered (deferred to the round
// end) and reads of a block written earlier in the same round are free;
// each round boundary flushes the buffered writes and writes/reads an
// m-block memory snapshot (the deviation documented in README.md under
// "Deviations from the paper" — the lemma's prose drops the snapshot, a
// valid program cannot).
//
// The returned cost is exact for the given trace; Lemma 4.1 guarantees it
// is O(1)× the original, which EXP-R2 measures on real executions.
func Convert(ops []aem.TraceOp, cfg aem.Config) Conversion {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := int64(cfg.BlocksInMemory())
	omega := int64(cfg.Omega)
	budget := omega * (m - 1)
	if budget < omega {
		budget = omega
	}

	conv := Conversion{}
	buffered := make(map[aem.Addr]bool) // blocks written this round, unflushed
	var segCost int64
	var rs, ws int64 // emitted reads/writes of the current converted round

	closeRound := func(final bool) {
		// Flush M′′ and snapshot M′. The snapshot is skipped on the final
		// round (an algorithm finishes with its memory logically empty —
		// outputs are on disk).
		ws += int64(len(buffered))
		for a := range buffered {
			delete(buffered, a)
		}
		if !final {
			ws += m // snapshot write
			rs += m // next round's restore read (charged here)
		}
		conv.Converted += rs + omega*ws
		conv.Rounds++
		segCost, rs, ws = 0, 0, 0
	}

	for _, op := range ops {
		c := int64(1)
		if op.Kind == aem.OpWrite {
			c = omega
		}
		if segCost+c > budget && segCost > 0 {
			closeRound(false)
		}
		segCost += c
		switch op.Kind {
		case aem.OpRead:
			conv.Original++
			if buffered[op.Addr] {
				conv.SavedReads++ // served from M′′
			} else {
				rs++
			}
		case aem.OpWrite:
			conv.Original += omega
			buffered[op.Addr] = true
		}
	}
	closeRound(true)
	return conv
}

// CheckDecomposition validates a round decomposition against the §4
// requirements and returns an error describing the first violation.
func CheckDecomposition(rounds []Round, ops []aem.TraceOp, cfg aem.Config) error {
	budget := int64(cfg.Omega) * int64(cfg.BlocksInMemory())
	minCost := int64(cfg.Omega) * int64(cfg.BlocksInMemory()-1)
	prev := 0
	for i, r := range rounds {
		if r.Start != prev {
			return fmt.Errorf("trace: round %d starts at %d, want %d", i, r.Start, prev)
		}
		cost := r.Stats.Cost(cfg.Omega)
		if cost > budget {
			return fmt.Errorf("trace: round %d costs %d > budget %d", i, cost, budget)
		}
		if i != len(rounds)-1 && cost <= minCost-int64(cfg.Omega) {
			return fmt.Errorf("trace: round %d costs %d, too far under budget", i, cost)
		}
		prev = r.End
	}
	if prev != len(ops) {
		return fmt.Errorf("trace: rounds end at %d, want %d", prev, len(ops))
	}
	return nil
}
