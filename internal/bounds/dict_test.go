package bounds

import (
	"testing"

	"repro/internal/aem"
	"repro/internal/dict"
)

// TestDictFanoutMatchesImplementation pins the predictor's replica of the
// buffer tree's fan-out choice to the implementation, so the two cannot
// drift silently.
func TestDictFanoutMatchesImplementation(t *testing.T) {
	for _, cfg := range []aem.Config{
		{M: 64, B: 8, Omega: 1},
		{M: 256, B: 16, Omega: 16},
		{M: 32, B: 1, Omega: 8},
		{M: 128, B: 8, Omega: 64},
		{M: 1024, B: 32, Omega: 4},
	} {
		got := dict.NewBufferTree(aem.New(cfg)).Fanout()
		if want := DictFanout(cfg); got != want {
			t.Errorf("cfg %+v: implementation fan-out %d != predictor %d", cfg, got, want)
		}
	}
}

// TestDictPredictionsPositive sanity-checks the formulas across corners:
// predictions must be positive and finite, and more update traffic must
// never predict less write I/O.
func TestDictPredictionsPositive(t *testing.T) {
	base := DictParams{
		Params:       Params{N: 10000, Cfg: aem.Config{M: 256, B: 16, Omega: 8}},
		Updates:      6000,
		Keyspace:     4096,
		QueryBatches: [][]int64{{1, 2, 3}, {500, 501}},
	}
	small := DictBufferTreePredicted(base)
	if small.Reads <= 0 || small.Writes <= 0 {
		t.Fatalf("degenerate prediction %+v", small)
	}
	more := base
	more.Updates *= 4
	big := DictBufferTreePredicted(more)
	if big.Writes < small.Writes {
		t.Errorf("quadrupling updates decreased predicted writes: %.0f → %.0f", small.Writes, big.Writes)
	}
	bt := DictBTreePredicted(base)
	if bt.Writes < float64(base.Updates) {
		t.Errorf("B-tree predicted writes %.0f below one per update", bt.Writes)
	}
}
