package workload

import (
	"fmt"

	"repro/internal/aem"
)

// PQOpKind distinguishes the two priority-queue operations of a stream.
type PQOpKind uint8

const (
	// PQPush inserts the op's Item.
	PQPush PQOpKind = 1
	// PQDeleteMin removes the queue's smallest item. Generated streams
	// never delete from an empty queue.
	PQDeleteMin PQOpKind = 2
)

// PQOp is one priority-queue operation in a stream.
type PQOp struct {
	Kind PQOpKind
	Item aem.Item // PQPush payload; Aux carries a unique sequence number
}

// PQScenario selects the shape of a generated push/deletemin stream. The
// scenarios span the regimes that separate a write-buffered queue from an
// ω-oblivious one: mixed traffic whose pushes mostly land above the
// deletion frontier (the buffer absorbs them), sawtooth build/drain cycles
// that force every buffered item through a fold, and the monotone
// discrete-event pattern where pushes always schedule into the future.
type PQScenario int

const (
	// MixedPQ interleaves uniform-key pushes with deletemins in bursts,
	// deleting ~a third of the pushed volume over the stream.
	MixedPQ PQScenario = iota
	// SawtoothPQ alternates push bursts with deep drains (down to ~10% of
	// the queue), so buffered pushes are repeatedly forced into runs.
	SawtoothPQ
	// MonotonePQ is a discrete-event simulation: every push schedules at
	// a key strictly above the last deleted one, the access pattern of
	// Dijkstra-style algorithms and event loops.
	MonotonePQ
)

// String names the scenario for experiment tables and CLI flags.
func (s PQScenario) String() string {
	switch s {
	case MixedPQ:
		return "mixed"
	case SawtoothPQ:
		return "sawtooth"
	case MonotonePQ:
		return "monotone"
	}
	return fmt.Sprintf("PQScenario(%d)", int(s))
}

// PQScenarios lists every scenario, for table-driven tests and sweeps.
func PQScenarios() []PQScenario {
	return []PQScenario{MixedPQ, SawtoothPQ, MonotonePQ}
}

// PQOps generates an n-operation push/deletemin stream. Streams are
// deterministic in (scenario, seed of r, n), never delete from an empty
// queue, and give every pushed item a unique Aux sequence number, so
// queue outputs are totally ordered and comparable item-for-item against
// a reference heap.
func PQOps(r *RNG, sc PQScenario, n int) []PQOp {
	ops := make([]PQOp, 0, n)
	size := 0
	var seq int64
	push := func(key int64) {
		ops = append(ops, PQOp{Kind: PQPush, Item: aem.Item{Key: key, Aux: seq}})
		seq++
		size++
	}
	del := func() {
		ops = append(ops, PQOp{Kind: PQDeleteMin})
		size--
	}

	switch sc {
	case MixedPQ:
		const keyspace = 1 << 20
		for len(ops) < n {
			for burst := 8 + r.Intn(56); burst > 0 && len(ops) < n; burst-- {
				push(int64(r.Intn(keyspace)))
			}
			for burst := 4 + r.Intn(24); burst > 0 && len(ops) < n && size > 0; burst-- {
				del()
			}
		}

	case SawtoothPQ:
		const keyspace = 1 << 20
		for len(ops) < n {
			for burst := 64 + r.Intn(128); burst > 0 && len(ops) < n; burst-- {
				push(int64(r.Intn(keyspace)))
			}
			for target := size / 10; size > target && len(ops) < n; {
				del()
			}
		}

	case MonotonePQ:
		// The generator tracks the queue contents (free internal
		// computation) so the clock is the key of each consumed event:
		// every push schedules strictly after it, so pushed keys never
		// undercut the current minimum — the defining property of
		// event-loop and Dijkstra-style traffic.
		clock := int64(0)
		var pending aem.ItemHeap
		for len(ops) < n {
			if size == 0 || r.Intn(100) >= 40 {
				k := clock + 1 + int64(r.Intn(1000))
				pending.Push(aem.Item{Key: k})
				push(k)
			} else {
				clock = pending.Pop().Key
				del()
			}
		}

	default:
		panic(fmt.Sprintf("workload: unknown scenario %v", sc))
	}
	return ops
}

// PQOpMix counts a stream's operations by kind; experiment tables report
// it so the workload composition is visible next to the measured costs.
func PQOpMix(ops []PQOp) (pushes, deletes int) {
	for _, op := range ops {
		if op.Kind == PQPush {
			pushes++
		} else {
			deletes++
		}
	}
	return
}
