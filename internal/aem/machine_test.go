package aem

import (
	"strings"
	"testing"
)

func testConfig() Config { return Config{M: 16, B: 4, Omega: 3} }

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{M: 16, B: 4, Omega: 3}, true},
		{"omega one", Config{M: 8, B: 4, Omega: 1}, true},
		{"B one (ARAM)", Config{M: 2, B: 1, Omega: 10}, true},
		{"zero B", Config{M: 16, B: 0, Omega: 1}, false},
		{"negative B", Config{M: 16, B: -1, Omega: 1}, false},
		{"M too small", Config{M: 7, B: 4, Omega: 1}, false},
		{"zero omega", Config{M: 16, B: 4, Omega: 0}, false},
		{"negative omega", Config{M: 16, B: 4, Omega: -2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("Validate() = nil, want error")
			}
		})
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := Config{M: 17, B: 4, Omega: 3}
	if got := cfg.BlocksInMemory(); got != 5 {
		t.Errorf("BlocksInMemory() = %d, want 5 (= ceil(17/4))", got)
	}
	if got := cfg.BlocksOf(9); got != 3 {
		t.Errorf("BlocksOf(9) = %d, want 3", got)
	}
	if got := cfg.BlocksOf(0); got != 0 {
		t.Errorf("BlocksOf(0) = %d, want 0", got)
	}
	if got := cfg.MergeFanout(); got != 15 {
		t.Errorf("MergeFanout() = %d, want 15 (= 3·5)", got)
	}
}

func TestLessAndCompare(t *testing.T) {
	cases := []struct {
		a, b Item
		cmp  int
	}{
		{Item{1, 0}, Item{2, 0}, -1},
		{Item{2, 0}, Item{1, 0}, 1},
		{Item{1, 5}, Item{1, 7}, -1},
		{Item{1, 7}, Item{1, 5}, 1},
		{Item{1, 7}, Item{1, 7}, 0},
	}
	for _, tc := range cases {
		if got := Compare(tc.a, tc.b); got != tc.cmp {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.cmp)
		}
		wantLess := tc.cmp < 0
		if got := Less(tc.a, tc.b); got != wantLess {
			t.Errorf("Less(%v, %v) = %t, want %t", tc.a, tc.b, got, wantLess)
		}
	}
}

func TestReadWriteCostAccounting(t *testing.T) {
	ma := New(testConfig())
	a := ma.Alloc(2)

	ma.Write(a, []Item{{1, 0}, {2, 0}})
	ma.Write(a+1, []Item{{3, 0}})
	got := ma.Read(a)
	if len(got) != 2 || got[0].Key != 1 || got[1].Key != 2 {
		t.Errorf("Read(a) = %v, want [{1 0} {2 0}]", got)
	}

	st := ma.Stats()
	if st.Reads != 1 || st.Writes != 2 {
		t.Errorf("Stats = %+v, want reads=1 writes=2", st)
	}
	if ma.Cost() != 1+3*2 {
		t.Errorf("Cost() = %d, want 7 (1 read + 3·2 writes)", ma.Cost())
	}
}

func TestReadReturnsCopy(t *testing.T) {
	ma := New(testConfig())
	a := ma.Alloc(1)
	ma.Write(a, []Item{{1, 0}})
	got := ma.Read(a)
	got[0].Key = 99
	again := ma.Read(a)
	if again[0].Key != 1 {
		t.Errorf("mutating a Read result leaked into the disk: got key %d", again[0].Key)
	}
}

func TestWriteStoresCopy(t *testing.T) {
	ma := New(testConfig())
	a := ma.Alloc(1)
	items := []Item{{1, 0}}
	ma.Write(a, items)
	items[0].Key = 99
	if got := ma.Peek(a); got[0].Key != 1 {
		t.Errorf("mutating the Write argument leaked into the disk: got key %d", got[0].Key)
	}
}

func TestWriteOversizedBlockPanics(t *testing.T) {
	ma := New(testConfig())
	a := ma.Alloc(1)
	defer expectPanic(t, "exceed block size")
	ma.Write(a, make([]Item, testConfig().B+1))
}

func TestPokeAndPeekAreFree(t *testing.T) {
	ma := New(testConfig())
	a := ma.Alloc(1)
	ma.Poke(a, []Item{{7, 0}})
	if got := ma.Peek(a); len(got) != 1 || got[0].Key != 7 {
		t.Errorf("Peek = %v, want [{7 0}]", got)
	}
	if st := ma.Stats(); st.Reads != 0 || st.Writes != 0 {
		t.Errorf("Poke/Peek cost I/O: %+v", st)
	}
}

func TestAddressBoundsChecked(t *testing.T) {
	ma := New(testConfig())
	ma.Alloc(1)
	defer expectPanic(t, "out of range")
	ma.Read(5)
}

func TestMemoryAccounting(t *testing.T) {
	ma := New(testConfig()) // M = 16
	ma.Reserve(10)
	ma.Reserve(6)
	if ma.MemInUse() != 16 {
		t.Errorf("MemInUse = %d, want 16", ma.MemInUse())
	}
	ma.Release(6)
	if ma.MemInUse() != 10 {
		t.Errorf("MemInUse = %d, want 10", ma.MemInUse())
	}
	if ma.MemPeak() != 16 {
		t.Errorf("MemPeak = %d, want 16", ma.MemPeak())
	}
}

func TestMemoryOverflowPanics(t *testing.T) {
	ma := New(testConfig())
	ma.Reserve(16)
	defer expectPanic(t, "memory capacity exceeded")
	ma.Reserve(1)
}

func TestReleaseTooMuchPanics(t *testing.T) {
	ma := New(testConfig())
	ma.Reserve(4)
	defer expectPanic(t, "Release")
	ma.Release(5)
}

func TestPhaseAccounting(t *testing.T) {
	ma := New(testConfig())
	a := ma.Alloc(2)
	ma.SetPhase("first")
	ma.Write(a, []Item{{1, 0}})
	ma.SetPhase("second")
	ma.Read(a)
	ma.Read(a)

	p := ma.Phases()
	if got := p.Phase("first"); got.Writes != 1 || got.Reads != 0 {
		t.Errorf("phase first = %+v, want writes=1", got)
	}
	if got := p.Phase("second"); got.Reads != 2 || got.Writes != 0 {
		t.Errorf("phase second = %+v, want reads=2", got)
	}
	if total := p.Total(); total != ma.Stats() {
		t.Errorf("phase total %+v != machine stats %+v", total, ma.Stats())
	}
}

func TestTraceRecording(t *testing.T) {
	ma := New(testConfig())
	a := ma.Alloc(2)
	ma.Write(a, []Item{{1, 0}}) // before trace: not recorded
	ma.StartTrace()
	ma.Read(a)
	ma.Write(a+1, []Item{{2, 0}})
	ops := ma.StopTrace()
	want := []TraceOp{{OpRead, a}, {OpWrite, a + 1}}
	if len(ops) != len(want) {
		t.Fatalf("trace has %d ops, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("trace[%d] = %+v, want %+v", i, ops[i], want[i])
		}
	}
	ma.Read(a) // after trace: not recorded
	if ma.Tracing() {
		t.Error("machine still tracing after StopTrace")
	}
}

func TestResetStats(t *testing.T) {
	ma := New(testConfig())
	a := ma.Alloc(1)
	ma.Write(a, []Item{{1, 0}})
	ma.ResetStats()
	if st := ma.Stats(); st != (Stats{}) {
		t.Errorf("Stats after reset = %+v, want zero", st)
	}
	if got := ma.Peek(a); len(got) != 1 {
		t.Error("ResetStats clobbered disk contents")
	}
}

func TestStatsArithmetic(t *testing.T) {
	s := Stats{Reads: 10, Writes: 3}
	u := Stats{Reads: 4, Writes: 1}
	if got := s.Add(u); got != (Stats{Reads: 14, Writes: 4}) {
		t.Errorf("Add = %+v", got)
	}
	if got := s.Sub(u); got != (Stats{Reads: 6, Writes: 2}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := s.IOs(); got != 13 {
		t.Errorf("IOs = %d, want 13", got)
	}
	if got := s.Cost(5); got != 10+5*3 {
		t.Errorf("Cost(5) = %d, want 25", got)
	}
	if !strings.Contains(s.String(), "reads=10") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "R" || OpWrite.String() != "W" {
		t.Errorf("OpKind strings = %q, %q", OpRead.String(), OpWrite.String())
	}
}

// expectPanic fails the test unless a panic whose message contains substr is
// in flight.
func expectPanic(t *testing.T, substr string) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatalf("expected panic containing %q, got none", substr)
	}
	msg := ""
	switch v := r.(type) {
	case string:
		msg = v
	case error:
		msg = v.Error()
	default:
		t.Fatalf("unexpected panic value %v", r)
	}
	if !strings.Contains(msg, substr) {
		t.Fatalf("panic %q does not contain %q", msg, substr)
	}
}

func TestPhaseStatsDirect(t *testing.T) {
	var p PhaseStats
	p.Record("alpha", Stats{Reads: 2})
	p.Record("beta", Stats{Writes: 1})
	p.Record("alpha", Stats{Writes: 3})
	if got := p.Phase("alpha"); got != (Stats{Reads: 2, Writes: 3}) {
		t.Errorf("alpha = %+v", got)
	}
	names := p.Phases()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("Phases() = %v", names)
	}
	if total := p.Total(); total != (Stats{Reads: 2, Writes: 4}) {
		t.Errorf("Total = %+v", total)
	}
	s := p.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "beta") {
		t.Errorf("String() = %q", s)
	}
}

func TestSetPhaseReturnsPrevious(t *testing.T) {
	ma := New(testConfig())
	if prev := ma.SetPhase("x"); prev != "main" {
		t.Errorf("first SetPhase returned %q, want main", prev)
	}
	if prev := ma.SetPhase("y"); prev != "x" {
		t.Errorf("second SetPhase returned %q, want x", prev)
	}
}
