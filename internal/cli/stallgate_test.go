package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeDictload writes one dictload -json record to a temp file and
// returns the path. Extra JSON Lines noise rides along to pin the
// last-record-wins, skip-foreign-types reading.
func fakeDictload(t *testing.T, dir, name string, deam bool, stallNS int64, opsPerSec float64) string {
	t.Helper()
	rec := dictloadRecord{
		Type: "dictload", Scenario: "drift", Engine: "slice",
		Shards: 2, Goroutines: 1, Deamortize: deam,
		Ops: 160000, OpsPerSec: opsPerSec,
		MaxStallNS: stallNS, P999StallNS: stallNS / 2, DebtHighWater: 7,
	}
	raw, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	stale := rec
	stale.MaxStallNS = stallNS * 100 // must be shadowed by the later record
	staleRaw, _ := json.Marshal(&stale)
	content := `{"type":"gate","experiment":"EXP-X"}` + "\n" + string(staleRaw) + "\n" + string(raw) + "\n"
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func stallgateRun(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var code int
	out := captureStdout(t, func() {
		code = stallgateCmd("aem stallgate", args)
	})
	return code, string(out)
}

// TestStallgatePassAndRatioFail: a 12ms→0.5ms reduction at equal
// throughput passes the default 10× gate; shrinking the reduction to 4×
// must fail and name the stall check.
func TestStallgatePassAndRatioFail(t *testing.T) {
	dir := t.TempDir()
	am := fakeDictload(t, dir, "am.json", false, 12_000_000, 96000)
	de := fakeDictload(t, dir, "de.json", true, 500_000, 97000)
	code, out := stallgateRun(t, "-amortized", am, "-deamortized", de)
	if code != 0 {
		t.Fatalf("24x reduction failed the 10x gate (exit %d)\n%s", code, out)
	}
	if !strings.Contains(out, "stall reduction 24.0×") {
		t.Errorf("output lacks the measured ratio:\n%s", out)
	}

	weak := fakeDictload(t, dir, "weak.json", true, 3_000_000, 97000)
	code, out = stallgateRun(t, "-amortized", am, "-deamortized", weak)
	if code != 1 || !strings.Contains(out, "FAIL") || !strings.Contains(out, "stall reduction") {
		t.Errorf("4x reduction exit %d, want 1 with a stall FAIL line\n%s", code, out)
	}
	// A custom -ratio flips the same comparison back to passing.
	if code, _ := stallgateRun(t, "-amortized", am, "-deamortized", weak, "-ratio", "3"); code != 0 {
		t.Error("4x reduction failed a 3x gate")
	}
}

// TestStallgateThroughputFail: a deamortized run that gives up more than
// the allowed throughput fraction fails even with a huge stall win.
func TestStallgateThroughputFail(t *testing.T) {
	dir := t.TempDir()
	am := fakeDictload(t, dir, "am.json", false, 12_000_000, 100000)
	slow := fakeDictload(t, dir, "slow.json", true, 100_000, 50000)
	code, out := stallgateRun(t, "-amortized", am, "-deamortized", slow)
	if code != 1 || !strings.Contains(out, "throughput") {
		t.Errorf("half throughput exit %d, want 1 with a throughput FAIL\n%s", code, out)
	}
}

// TestStallgateBaselineRoundTrip: -write-baseline pins the deamortized
// stall; the same run gates at 1×, a 2× drift passes the default 3×
// tolerance, and a 5× drift fails.
func TestStallgateBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "stall_baseline.json")
	am := fakeDictload(t, dir, "am.json", false, 12_000_000, 96000)
	de := fakeDictload(t, dir, "de.json", true, 500_000, 97000)
	if code, out := stallgateRun(t, "-amortized", am, "-deamortized", de, "-baseline", base, "-write-baseline"); code != 0 {
		t.Fatalf("write-baseline exit %d\n%s", code, out)
	}
	pinned, err := readStallBaseline(base)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.MaxStallNS != 500_000 {
		t.Fatalf("pinned stall %d, want 500000", pinned.MaxStallNS)
	}
	if code, out := stallgateRun(t, "-amortized", am, "-deamortized", de, "-baseline", base); code != 0 {
		t.Fatalf("self-gate exit %d\n%s", code, out)
	}
	drift := fakeDictload(t, dir, "drift.json", true, 1_000_000, 97000)
	if code, _ := stallgateRun(t, "-amortized", am, "-deamortized", drift, "-baseline", base); code != 0 {
		t.Error("2x baseline drift failed the 3x tolerance")
	}
	blown := fakeDictload(t, dir, "blown.json", true, 2_500_000, 97000)
	code, out := stallgateRun(t, "-amortized", am, "-deamortized", blown, "-baseline", base)
	if code != 1 || !strings.Contains(out, "baseline") {
		t.Errorf("5x baseline drift exit %d, want 1 with a baseline FAIL\n%s", code, out)
	}
}

// TestStallgateRejectsMislabeledLegs: feeding the gate two runs of the
// same mode is a usage error (exit 2), not a comparison.
func TestStallgateRejectsMislabeledLegs(t *testing.T) {
	dir := t.TempDir()
	am := fakeDictload(t, dir, "am.json", false, 12_000_000, 96000)
	de := fakeDictload(t, dir, "de.json", true, 500_000, 97000)
	if code, _ := stallgateRun(t, "-amortized", de, "-deamortized", de); code != 2 {
		t.Errorf("deamortized record in the amortized slot: exit %d, want 2", code)
	}
	if code, _ := stallgateRun(t, "-amortized", am, "-deamortized", am); code != 2 {
		t.Errorf("amortized record in the deamortized slot: exit %d, want 2", code)
	}
	if code, _ := stallgateRun(t, "-amortized", am); code != 2 {
		t.Errorf("missing -deamortized: exit %d, want 2", code)
	}
}

// TestStallgateJSONVerdict: -json appends one machine-readable verdict
// record carrying the measured ratio and pass bit.
func TestStallgateJSONVerdict(t *testing.T) {
	dir := t.TempDir()
	am := fakeDictload(t, dir, "am.json", false, 10_000_000, 96000)
	de := fakeDictload(t, dir, "de.json", true, 500_000, 97000)
	code, out := stallgateRun(t, "-amortized", am, "-deamortized", de, "-json")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var rec struct {
		Type       string  `json:"type"`
		Pass       bool    `json:"pass"`
		StallRatio float64 `json:"stall_ratio"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rec); err != nil {
		t.Fatalf("last stdout line is not JSON: %v\n%s", err, out)
	}
	if rec.Type != "stallgate" || !rec.Pass || rec.StallRatio != 20 {
		t.Errorf("verdict record %+v, want pass at 20x", rec)
	}
}
