package bounds

import "math"

// Predicted upper-bound cost formulas for the algorithms implemented in
// this repository. Each returns the leading-term expression from the paper
// with explicit read/write splits where the paper states them, so the
// harness can compare measured Qr and Qw against predictions separately.

// PredictedIO is a predicted (reads, writes) pair; Cost applies Q = r + ωw.
type PredictedIO struct {
	Reads  float64
	Writes float64
}

// Cost returns the AEM cost of the prediction.
func (p PredictedIO) Cost(omega int) float64 {
	return p.Reads + float64(omega)*p.Writes
}

// MergeSortLevels returns the number of merge levels of the §3 mergesort:
// the recursion divides by d = ωm per level until subproblems reach the
// ωM base case, so levels = ⌈log_d(N/(ωM))⌉ (at least 0).
func MergeSortLevels(p Params) float64 {
	d := p.omega() * p.mBlocks()
	base := p.omega() * float64(p.Cfg.M)
	if float64(p.N) <= base {
		return 0
	}
	return math.Ceil(logBase(float64(p.N)/base, d))
}

// MergeSortPredicted returns the predicted I/O counts of the AEM mergesort
// of Section 3: O(ω·n·log_{ωm} n) reads and O(n·log_{ωm} n) writes. The
// prediction uses (levels + 1) passes — each merge level plus the base
// case — each costing ωn reads and n writes, which is the paper's bound
// with its constants made concrete.
func MergeSortPredicted(p Params) PredictedIO {
	n, w := p.nBlocks(), p.omega()
	passes := MergeSortLevels(p) + 1
	return PredictedIO{Reads: w * n * passes, Writes: n * passes}
}

// SmallSortPredicted returns the predicted I/O counts of the base-case sort
// of Blelloch et al. [7, Lemma 4.2] for N′ ≤ ωM items: O(ω·n′) reads and
// O(n′) writes via ω selection passes.
func SmallSortPredicted(p Params) PredictedIO {
	n := p.nBlocks()
	passes := math.Ceil(float64(p.N) / float64(p.Cfg.M))
	return PredictedIO{Reads: n * passes, Writes: n}
}

// EMMergeSortPredicted returns the predicted I/O counts of the classic
// symmetric-EM m-way mergesort run unchanged on an AEM machine: n reads
// and n writes per level over base m, so its AEM cost is (1+ω)·n·log_m n —
// the baseline the §3 algorithm improves on by moving the log to base ωm.
func EMMergeSortPredicted(p Params) PredictedIO {
	n, m := p.nBlocks(), p.mBlocks()
	if m < 2 {
		m = 2
	}
	passes := math.Ceil(logBase(float64(p.N)/float64(p.Cfg.M), m/2)) + 1
	if passes < 1 {
		passes = 1
	}
	return PredictedIO{Reads: n * passes, Writes: n * passes}
}

// PermuteDirectPredicted returns the predicted I/O counts of direct
// permuting (gather each output block from its ≤ B source blocks): at most
// N reads and n writes, i.e. cost O(N + ωn).
func PermuteDirectPredicted(p Params) PredictedIO {
	return PredictedIO{Reads: float64(p.N), Writes: p.nBlocks()}
}

// PermuteSortPredicted returns the predicted I/O counts of sort-based
// permuting: one mergesort of N tagged items.
func PermuteSortPredicted(p Params) PredictedIO {
	return MergeSortPredicted(p)
}

// PermuteBestPredicted returns the cost-minimizing choice between direct
// and sort-based permuting — the upper bound matching Theorem 4.5.
func PermuteBestPredicted(p Params) PredictedIO {
	d := PermuteDirectPredicted(p)
	s := PermuteSortPredicted(p)
	if d.Cost(p.Cfg.Omega) <= s.Cost(p.Cfg.Omega) {
		return d
	}
	return s
}

// SpMxVNaivePredicted returns the predicted I/O counts of the naive (direct)
// SpMxV program: O(H) scattered reads plus the output, O(H + ωn) cost.
func SpMxVNaivePredicted(p SpMxVParams) PredictedIO {
	return PredictedIO{Reads: float64(p.H()), Writes: p.nBlocks()}
}

// SpMxVSortPredicted returns the predicted I/O counts of the sorting-based
// SpMxV algorithm: O(ω·h·log_{ωm} N/max{δ,B} + ωn) cost, with the read and
// write split inherited from the mergesort it invokes.
func SpMxVSortPredicted(p SpMxVParams) PredictedIO {
	h, m, w := p.hBlocks(), p.mBlocks(), p.omega()
	den := math.Max(float64(p.Delta), float64(p.Cfg.B))
	levels := math.Max(1, math.Ceil(logBase(float64(p.N)/den, w*m)))
	n := p.nBlocks()
	return PredictedIO{
		Reads:  w*h*levels + h + n,
		Writes: h*levels + n,
	}
}

// SpMxVBestPredicted returns the cost-minimizing choice between naive and
// sorting-based SpMxV — the upper bound matching Theorem 5.1.
func SpMxVBestPredicted(p SpMxVParams) PredictedIO {
	a := SpMxVNaivePredicted(p)
	b := SpMxVSortPredicted(p)
	if a.Cost(p.Cfg.Omega) <= b.Cost(p.Cfg.Omega) {
		return a
	}
	return b
}
