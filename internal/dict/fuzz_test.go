// Native Go fuzz target for the dictionary layer: byte inputs decode into
// an operation stream plus a machine corner, and every decoded stream is
// run through the buffer tree on both data-bearing engines and an
// in-memory model map (plus the B-tree baseline where its B ≥ 4 minimum
// allows). The seed corpus comes from the workload generators, so fuzzing
// starts from realistic uniform/zipf/burst/churn traffic and mutates from
// there.
//
// The file lives in the external test package: the workload generators
// import dict, so an in-package test importing workload would be an
// import cycle.
package dict_test

import (
	"testing"

	"repro/internal/aem"
	"repro/internal/dict"
	"repro/internal/workload"
)

// fuzzConfigs are the machine corners the fuzzer cycles through; they
// include B = 1 (ARAM) and ω = 1 (symmetric EM).
var fuzzConfigs = []aem.Config{
	{M: 64, B: 8, Omega: 4},
	{M: 256, B: 16, Omega: 16},
	{M: 32, B: 1, Omega: 8},
	{M: 64, B: 8, Omega: 1},
}

const fuzzKeyspace = 1 << 10

// decodeOps turns fuzz bytes into a machine config and an op stream: one
// leading config byte, then 4 bytes per op (kind, key-low, key-high,
// value). The stream length is capped to keep individual fuzz executions
// fast (alternating single-op update/query segments make buffer scans
// quadratic in the stream length, by design).
func decodeOps(data []byte) (aem.Config, []dict.Op) {
	if len(data) == 0 {
		return fuzzConfigs[0], nil
	}
	cfg := fuzzConfigs[int(data[0])%len(fuzzConfigs)]
	data = data[1:]
	if len(data) > 4*512 {
		data = data[:4*512]
	}
	var ops []dict.Op
	for i := 0; i+4 <= len(data); i += 4 {
		key := int64(data[i+1]) | int64(data[i+2]&3)<<8
		val := int64(data[i+3])
		switch data[i] % 4 {
		case 0:
			ops = append(ops, dict.Op{Kind: dict.Insert, Key: key, Value: val})
		case 1:
			ops = append(ops, dict.Op{Kind: dict.Delete, Key: key})
		case 2:
			ops = append(ops, dict.Op{Kind: dict.Lookup, Key: key})
		default:
			ops = append(ops, dict.Op{Kind: dict.RangeScan, Key: key, Hi: key + 1 + val%64})
		}
	}
	return cfg, ops
}

// encodeOps is decodeOps's inverse for seeding the corpus from generated
// workloads.
func encodeOps(cfgIdx byte, ops []dict.Op) []byte {
	out := []byte{cfgIdx}
	for _, op := range ops {
		var kind byte
		switch op.Kind {
		case dict.Insert:
			kind = 0
		case dict.Delete:
			kind = 1
		case dict.Lookup:
			kind = 2
		case dict.RangeScan:
			kind = 3
		}
		key := op.Key % fuzzKeyspace
		out = append(out, kind, byte(key), byte(key>>8), byte(op.Value%256))
	}
	return out
}

// fuzzModel is the in-memory reference.
type fuzzModel map[int64]int64

func (m fuzzModel) apply(ops []dict.Op) []dict.Result {
	var out []dict.Result
	for _, op := range ops {
		switch op.Kind {
		case dict.Insert:
			m[op.Key] = op.Value
		case dict.Delete:
			delete(m, op.Key)
		case dict.Lookup:
			v, ok := m[op.Key]
			out = append(out, dict.Result{OK: ok, Value: v})
		case dict.RangeScan:
			var hits []dict.Found
			for k := op.Key; k < op.Hi; k++ {
				if v, ok := m[k]; ok {
					hits = append(hits, dict.Found{Key: k, Value: v})
				}
			}
			out = append(out, dict.Result{Hits: hits})
		}
	}
	return out
}

func FuzzDictOps(f *testing.F) {
	for i, sc := range workload.Scenarios() {
		ops := workload.DictOps(workload.NewRNG(uint64(i)+1), sc, 500, fuzzKeyspace)
		f.Add(encodeOps(byte(i), ops))
	}
	f.Add([]byte{2, 0, 5, 0, 9, 2, 5, 0, 0, 1, 5, 0, 0, 2, 5, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, ops := decodeOps(data)
		want := fuzzModel{}.apply(ops)

		var ref aem.Stats
		var refCost int64
		for ei, mk := range []func() aem.Storage{
			func() aem.Storage { return aem.NewSliceStorage() },
			func() aem.Storage { return aem.NewArenaStorage(cfg.B) },
		} {
			ma := aem.NewWithStorage(cfg, mk())
			d := dict.NewBufferTree(ma)
			got := d.Apply(ops)
			d.Flush()
			compareResults(t, got, want)
			if ma.MemPeak() > cfg.M {
				t.Fatalf("engine %d: memory peak %d exceeds M = %d", ei, ma.MemPeak(), cfg.M)
			}
			if ei == 0 {
				ref, refCost = ma.Stats(), ma.Cost()
			} else if ma.Stats() != ref || ma.Cost() != refCost {
				t.Fatalf("engines disagree on accounting: %+v cost %d vs %+v cost %d",
					ma.Stats(), ma.Cost(), ref, refCost)
			}
		}

		if cfg.B >= 4 {
			ma := aem.New(cfg)
			compareResults(t, dict.NewBTree(ma).Apply(ops), want)
			if ma.MemPeak() > cfg.M {
				t.Fatalf("btree: memory peak %d exceeds M = %d", ma.MemPeak(), cfg.M)
			}
		}
	})
}

func compareResults(t *testing.T, got, want []dict.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].OK != want[i].OK || got[i].Value != want[i].Value || len(got[i].Hits) != len(want[i].Hits) {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
		for j := range got[i].Hits {
			if got[i].Hits[j] != want[i].Hits[j] {
				t.Fatalf("result %d hit %d: got %+v, want %+v", i, j, got[i].Hits[j], want[i].Hits[j])
			}
		}
	}
}
