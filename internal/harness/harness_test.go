package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRunAndRender(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Table()
			if tbl.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(tbl.Columns))
				}
			}
			var text, csv bytes.Buffer
			tbl.Render(&text)
			tbl.CSV(&csv)
			if !strings.Contains(text.String(), e.ID) {
				t.Error("rendered text missing experiment id")
			}
			if lines := strings.Count(csv.String(), "\n"); lines != len(tbl.Rows)+1 {
				t.Errorf("CSV has %d lines, want %d", lines, len(tbl.Rows)+1)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("EXP-M1"); !ok {
		t.Error("EXP-M1 not found")
	}
	if _, ok := ByID("EXP-NOPE"); ok {
		t.Error("bogus id found")
	}
}

func TestProofPipelineExperimentsReportPreserved(t *testing.T) {
	for _, id := range []string{"EXP-R1", "EXP-F1"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		tbl := e.Table()
		col := -1
		for i, c := range tbl.Columns {
			if c == "placement" {
				col = i
			}
		}
		if col < 0 {
			t.Fatalf("%s has no placement column", id)
		}
		for _, row := range tbl.Rows {
			if row[col] != "preserved" {
				t.Errorf("%s: placement %q", id, row[col])
			}
		}
	}
}

func TestMergeConstantsAreFlat(t *testing.T) {
	// The reproduction criterion for EXP-M1: the normalized read and write
	// constants vary by at most 4× across the entire sweep (they are
	// Theorem 3.2's O(1) factors).
	e, _ := ByID("EXP-M1")
	tbl := e.Table()
	checkFlat := func(col string, maxSpread float64) {
		idx := -1
		for i, c := range tbl.Columns {
			if c == col {
				idx = i
			}
		}
		if idx < 0 {
			t.Fatalf("column %q missing", col)
		}
		lo, hi := 1e18, 0.0
		for _, row := range tbl.Rows {
			v, err := strconv.ParseFloat(row[idx], 64)
			if err != nil {
				t.Fatalf("column %q cell %q: %v", col, row[idx], err)
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi/lo > maxSpread {
			t.Errorf("column %q spread %.2f–%.2f exceeds %vx", col, lo, hi, maxSpread)
		}
	}
	checkFlat("reads/(w(n+m))", 4)
	checkFlat("writes/(n+m)", 4)
}

func TestFmtVal(t *testing.T) {
	cases := []struct {
		in   interface{}
		want string
	}{
		{0.0, "0"},
		{12345.6, "12346"},
		{3.14159, "3.14"},
		{0.1234, "0.1234"},
		{"x", "x"},
		{42, "42"},
	}
	for _, tc := range cases {
		if got := fmtVal(tc.in); got != tc.want {
			t.Errorf("fmtVal(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	tbl := &Table{ID: "T", Columns: []string{"a", "b"}}
	tbl.AddRow(`has,comma`, `has"quote`)
	var buf bytes.Buffer
	tbl.CSV(&buf)
	want := "a,b\n\"has,comma\",\"has\"\"quote\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}
