// Package dictsrv is the concurrent dictionary service: dict.BufferTree
// turned into a serving layer with measured tail latency, not just
// amortized cost.
//
// The paper's write-buffering thesis prices an update stream by its
// amortized I/O: pay Θ(ωM) of deferral in the root buffer so each update
// is written O(height/B) times instead of ≥ 1. A serving system feels the
// other side of that trade — the deferred work does not disappear, it
// concentrates into flush stalls, and the bigger ω makes the buffer, the
// rarer but bigger the stall. This package is where that axis becomes
// measurable: every operation's latency is captured, and the worst flush
// pause is tracked per shard via the tree's flush hook.
//
// Architecture:
//
//   - The served keyspace [KeyLo, KeyHi) is partitioned into Shards
//     contiguous ranges; each shard owns one machine and one BufferTree.
//     Keys route by range, so a RangeScan touches exactly the shards its
//     interval overlaps.
//   - Writes are group-committed: concurrent writers enqueue onto the
//     shard's channel and a per-shard committer goroutine drains them
//     into one batched Apply call, assigning each op its position in the
//     shard's commit order before waking its waiter. The tree (and its
//     machine) is touched by the committer alone.
//   - Reads are snapshot-isolated: after every commit batch the committer
//     publishes a dict.TreeSnapshot (an immutable structural capture —
//     the tree's chains are append-only, so captured addresses can never
//     change contents behind the snapshot). Readers load the current
//     snapshot atomically and descend it through a lock-striped block
//     reader, so a reader never waits on a multi-millisecond leaf rebuild
//     — at most on the storage engine's short Alloc sections.
//   - Every read carries the watermark (ops committed on its shard when
//     its snapshot was published), and every write its commit position.
//     Those two numbers make concurrent histories checkable: a read must
//     observe exactly the model state after its watermark's prefix of the
//     shard's commit order, and because the snapshot is published before
//     waiters wake, a session always observes its own completed writes.
//     The linearizability-style differential test holds the service to
//     precisely that contract under -race.
//
// Cost accounting: the committer's writes flow through the machine's
// normal metered path, so amortized Q is the same accounting every other
// experiment uses. Snapshot reads bypass the (single-threaded) machine
// and are counted per block into a shard atomic; Stats folds them back in
// at read weight 1, the model's price for a read.
package dictsrv

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aem"
	"repro/internal/dict"
)

// Config shapes a Service.
type Config struct {
	// Shards is the number of keyspace partitions (≥ 1), each its own
	// machine + tree + committer.
	Shards int

	// Machine is the per-shard AEM machine shape.
	Machine aem.Config

	// Engine names the storage engine backing each shard (aem registry
	// name; must retain data). Empty means "slice".
	Engine string

	// KeyLo, KeyHi bound the served keyspace [KeyLo, KeyHi); keys route
	// to the shard whose contiguous sub-range covers them (out-of-range
	// keys clamp to the edge shards).
	KeyLo, KeyHi int64

	// MaxBatch caps how many queued writes one commit batch drains
	// (0 = 1024). Bigger batches amortize better; smaller bound the
	// latency one batch can add to its waiters.
	MaxBatch int

	// Deamortize bounds the commit-path stall: each shard tree runs in
	// incremental-flush mode (dict.BufferTree.Deamortize), the committer
	// pays at most one FlushStep(1) — one node-flush — per batch, and
	// remaining debt is retired opportunistically while the write channel
	// is empty (with Compact's rebuild check once the queue drains). The
	// same node-flushes happen either way; deamortizing spreads them so a
	// commit batch never stalls behind a full cascade.
	Deamortize bool
}

// Ack answers a completed write: where it committed and what it cost the
// caller in wall-clock.
type Ack struct {
	Shard     int
	Commit    int64 // position in the shard's commit order, 1-based
	LatencyNS int64
}

// GetResult answers a point lookup from a shard snapshot.
type GetResult struct {
	OK        bool
	Value     int64
	Shard     int
	Watermark int64 // ops committed on the shard when the snapshot published
	LatencyNS int64
}

// Segment is the per-shard slice of a cross-shard range scan: the hits
// whose keys fall in the shard's sub-range, read at that shard's
// watermark.
type Segment struct {
	Shard     int
	Watermark int64
	Hits      []dict.Found
}

// ScanResult answers a range scan. Hits concatenate the segments' hits —
// shards partition the keyspace contiguously, so the concatenation is
// globally key-ordered.
type ScanResult struct {
	Hits      []dict.Found
	Segments  []Segment
	LatencyNS int64
}

// Stats aggregates the service's accounting. Reads/Writes/Cost come from
// the shard machines (the group-committed write path); SnapReads counts
// snapshot block reads, and Cost includes them at weight 1.
type Stats struct {
	Shards     int
	Committed  int64 // total write ops committed
	Reads      int64 // machine block reads (commit path)
	Writes     int64 // machine block writes
	SnapReads  int64 // snapshot block reads (serve path)
	Cost       int64 // Σ machine (reads + ω·writes) + SnapReads
	Flushes    int64 // top-level flush sections across all shards
	MaxFlushNS int64 // the worst single flush section (barriers included)

	// Commit-path stall accounting: how long each batch's waiters sat
	// behind the tree work (Apply plus, when deamortized, one FlushStep),
	// excluding explicit Flush barriers. MaxStallNS and Stalls are the
	// deamortization headline: amortized mode pays whole cascades here,
	// deamortized mode at most one node-flush plus the rare root backstop.
	MaxStallNS    int64
	Stalls        Hist  // per-batch commit stalls, power-of-two ns buckets
	Debt          int64 // queued node-flushes right now, summed over shards
	DebtHighWater int64 // worst per-shard debt sampled after any batch
	BatchFlushes  int64 // worst node-flush count any non-barrier batch paid
	Deamortized   bool
}

// lockedStorage wraps a shard's engine so snapshot readers and the
// committer can share it: Alloc (the only operation that moves the
// engine's containers — slice growth, arena regrowth, file remap) takes
// the write lock, snapshot block reads take the read lock. Block
// contents need no locking: chains write every block exactly once at a
// fresh address, and a snapshot only references addresses allocated
// before it was captured.
type lockedStorage struct {
	aem.Storage
	mu sync.RWMutex
}

func (ls *lockedStorage) Alloc(count int) aem.Addr {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.Storage.Alloc(count)
}

// snapRead copies block a into dst under the read lock. Storage.ReadInto
// copies (per its contract), so nothing aliases engine memory after the
// lock drops.
func (ls *lockedStorage) snapRead(a aem.Addr, dst []aem.Item) []aem.Item {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return ls.Storage.ReadInto(a, dst)
}

// shardReader implements dict.BlockReader over a shard's locked storage,
// counting every block into the shard's snapshot-read meter.
type shardReader struct{ sh *shard }

func (r shardReader) ReadBlock(a aem.Addr, dst []aem.Item) []aem.Item {
	r.sh.snapReads.Add(1)
	return r.sh.store.snapRead(a, dst)
}

// snapState is one published snapshot with its commit watermark.
type snapState struct {
	snap      *dict.TreeSnapshot
	watermark int64
}

// writeReq is one enqueued write (or flush barrier) awaiting group
// commit.
type writeReq struct {
	op     dict.Op
	flush  bool  // barrier: force the shard tree down to its runs
	commit int64 // assigned by the committer before done closes
	done   chan struct{}
}

type shard struct {
	idx   int
	ma    *aem.Machine
	tree  *dict.BufferTree
	store *lockedStorage

	reqs      chan *writeReq
	snap      atomic.Pointer[snapState]
	committed atomic.Int64

	snapReads  atomic.Int64
	flushes    atomic.Int64
	maxFlushNS atomic.Int64

	// Committer-written, atomically readable stall/debt telemetry.
	stalls       stallHist
	maxStallNS   atomic.Int64
	debt         atomic.Int64
	debtHW       atomic.Int64
	batchFlushes atomic.Int64 // worst node-flushes one non-barrier batch paid

	scratch sync.Pool // *dict.GetScratch
}

// Service is the concurrent sharded dictionary. All methods are safe for
// concurrent use; Stats and Close require quiescence (no ops in flight).
type Service struct {
	cfg    Config
	shards []*shard

	mu     sync.RWMutex // guards closed vs in-flight submits
	closed bool
	wg     sync.WaitGroup
}

// New builds the service: Shards machines and trees, one committer
// goroutine each, and an initial (empty) snapshot per shard.
func New(cfg Config) (*Service, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("dictsrv: need ≥ 1 shard, got %d", cfg.Shards)
	}
	if cfg.KeyHi <= cfg.KeyLo {
		return nil, fmt.Errorf("dictsrv: empty keyspace [%d, %d)", cfg.KeyLo, cfg.KeyHi)
	}
	if int64(cfg.Shards) > cfg.KeyHi-cfg.KeyLo {
		return nil, fmt.Errorf("dictsrv: %d shards over a %d-key space", cfg.Shards, cfg.KeyHi-cfg.KeyLo)
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, fmt.Errorf("dictsrv: %v", err)
	}
	engine := cfg.Engine
	if engine == "" {
		engine = "slice"
	}
	if e, ok := aem.EngineByName(engine); !ok || !e.Caps.RetainsData {
		if !ok {
			_, err := aem.StorageByName(engine, cfg.Machine.B)
			return nil, fmt.Errorf("dictsrv: %v", err)
		}
		return nil, fmt.Errorf("dictsrv: engine %q has no data plane and cannot serve a dictionary", engine)
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("dictsrv: MaxBatch must be ≥ 1, got %d", cfg.MaxBatch)
	}

	s := &Service{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		inner, err := aem.StorageByName(engine, cfg.Machine.B)
		if err != nil {
			s.destroy()
			return nil, fmt.Errorf("dictsrv: shard %d: %v", i, err)
		}
		store := &lockedStorage{Storage: inner}
		ma := aem.NewWithStorage(cfg.Machine, store)
		sh := &shard{idx: i, ma: ma, tree: dict.NewBufferTree(ma), store: store,
			reqs: make(chan *writeReq, 4*cfg.MaxBatch)}
		// Group-commit batches are sized by writer concurrency, not by B;
		// staging the root tail in memory keeps small batches from
		// fragmenting the buffer chain into mostly-empty blocks that every
		// snapshot read would then scan.
		sh.tree.EnableTailStaging()
		if cfg.Deamortize {
			sh.tree.Deamortize()
		}
		sh.scratch.New = func() interface{} { return dict.NewGetScratch(cfg.Machine.B) }
		sh.tree.SetFlushHook(func(d time.Duration) {
			sh.flushes.Add(1)
			ns := d.Nanoseconds()
			for {
				cur := sh.maxFlushNS.Load()
				if ns <= cur || sh.maxFlushNS.CompareAndSwap(cur, ns) {
					break
				}
			}
		})
		sh.snap.Store(&snapState{snap: sh.tree.Snapshot()})
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go s.commitLoop(sh)
	}
	return s, nil
}

// destroy closes whatever shards were built (constructor failure path).
func (s *Service) destroy() {
	for _, sh := range s.shards {
		sh.ma.Close()
	}
}

// shardFor routes a key to its partition: contiguous equal ranges over
// [KeyLo, KeyHi), out-of-range keys clamped to the edge shards.
func (s *Service) shardFor(key int64) int {
	lo, hi := s.cfg.KeyLo, s.cfg.KeyHi
	if key < lo {
		return 0
	}
	if key >= hi {
		return len(s.shards) - 1
	}
	// Partition by position; span/Shards ≥ 1 is checked at construction.
	i := int((key - lo) / ((hi - lo + int64(len(s.shards)) - 1) / int64(len(s.shards))))
	if i >= len(s.shards) {
		i = len(s.shards) - 1
	}
	return i
}

// shardRange returns shard i's key interval [lo, hi).
func (s *Service) shardRange(i int) (lo, hi int64) {
	span := (s.cfg.KeyHi - s.cfg.KeyLo + int64(len(s.shards)) - 1) / int64(len(s.shards))
	lo = s.cfg.KeyLo + int64(i)*span
	hi = lo + span
	if hi > s.cfg.KeyHi || i == len(s.shards)-1 {
		hi = s.cfg.KeyHi
	}
	return lo, hi
}

// commitLoop is one shard's committer: drain queued writes into a batch,
// Apply it, assign commit positions, publish the post-batch snapshot,
// then wake every waiter. Publishing before waking is what gives
// sessions read-your-own-writes through snapshots.
//
// In deamortized mode the batch additionally pays exactly one FlushStep —
// one node-flush toward the tree's debt — and the loop retires the rest
// while the channel is empty: each idle iteration flushes one more node,
// re-checking the channel in between so an arriving writer waits behind
// at most one node-flush, never a cascade. When the debt queue drains,
// the rebuild check (Compact) runs in the same idle slot, and a fresh
// snapshot is published so readers descend the compacted structure.
func (s *Service) commitLoop(sh *shard) {
	defer s.wg.Done()
	batch := make([]*writeReq, 0, s.cfg.MaxBatch)
	ops := make([]dict.Op, 0, s.cfg.MaxBatch)
	writers := make([]*writeReq, 0, s.cfg.MaxBatch)
	for {
		var first *writeReq
		var ok bool
		if s.cfg.Deamortize {
			select {
			case first, ok = <-sh.reqs:
			default:
				if sh.tree.Debt() > 0 {
					sh.tree.FlushStep(1)
					sh.debt.Store(int64(sh.tree.Debt()))
					continue
				}
				if sh.tree.Compact() {
					// A rebuild compacted the runs; republish so readers
					// descend the fresh structure (same watermark — the
					// logical contents are unchanged).
					st := sh.snap.Load()
					sh.snap.Store(&snapState{snap: sh.tree.Snapshot(), watermark: st.watermark})
					continue
				}
				first, ok = <-sh.reqs // debt settled, runs compact: block
			}
		} else {
			first, ok = <-sh.reqs
		}
		if !ok {
			return
		}
		batch = append(batch[:0], first)
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r, ok := <-sh.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		ops, writers = ops[:0], writers[:0]
		doFlush := false
		for _, r := range batch {
			if r.flush {
				doFlush = true
				continue
			}
			ops = append(ops, r.op)
			writers = append(writers, r)
		}
		if len(ops) > 0 {
			// The commit-path stall: tree work the batch's waiters (and any
			// writer queued behind them) cannot overtake. Explicit barriers
			// below are priced separately (MaxFlushNS), they are not stalls
			// the write path inflicts on its own.
			nf := sh.tree.NodeFlushes()
			start := time.Now()
			sh.tree.Apply(ops)
			if debt := int64(sh.tree.Debt()); debt > sh.debtHW.Load() {
				sh.debtHW.Store(debt) // peak owed, before the step retires one
			}
			if s.cfg.Deamortize {
				sh.tree.FlushStep(1)
			}
			stall := time.Since(start).Nanoseconds()
			sh.stalls.record(stall)
			if stall > sh.maxStallNS.Load() { // single writer
				sh.maxStallNS.Store(stall)
			}
			if d := sh.tree.NodeFlushes() - nf; d > sh.batchFlushes.Load() {
				sh.batchFlushes.Store(d)
			}
			sh.debt.Store(int64(sh.tree.Debt()))
		}
		if doFlush {
			sh.tree.Flush()
			sh.debt.Store(0)
		}
		base := sh.committed.Load()
		for i, r := range writers {
			r.commit = base + int64(i) + 1
		}
		n := base + int64(len(writers))
		sh.snap.Store(&snapState{snap: sh.tree.Snapshot(), watermark: n})
		sh.committed.Store(n)
		for _, r := range batch {
			close(r.done)
		}
	}
}

// submit enqueues one write and waits for its group commit.
func (s *Service) submit(op dict.Op) Ack {
	start := time.Now()
	sh := s.shards[s.shardFor(op.Key)]
	r := &writeReq{op: op, done: make(chan struct{})}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		panic("dictsrv: write on a closed service")
	}
	sh.reqs <- r
	s.mu.RUnlock()
	<-r.done
	return Ack{Shard: sh.idx, Commit: r.commit, LatencyNS: time.Since(start).Nanoseconds()}
}

// Put inserts (key, value), overwriting any previous value. It returns
// when the write is committed (applied to the shard tree and visible to
// every subsequently published snapshot).
func (s *Service) Put(key, value int64) Ack {
	return s.submit(dict.Op{Kind: dict.Insert, Key: key, Value: value})
}

// Delete removes key (absent keys are a committed no-op).
func (s *Service) Delete(key int64) Ack {
	return s.submit(dict.Op{Kind: dict.Delete, Key: key})
}

// Get answers a point lookup against the shard's current snapshot. It
// never blocks on commit or flush work — only on the storage engine's
// short Alloc sections — and is allocation-free in steady state.
func (s *Service) Get(key int64) GetResult {
	start := time.Now()
	sh := s.shards[s.shardFor(key)]
	st := sh.snap.Load()
	sc := sh.scratch.Get().(*dict.GetScratch)
	v, ok, _ := st.snap.Get(shardReader{sh}, key, sc)
	sh.scratch.Put(sc)
	return GetResult{OK: ok, Value: v, Shard: sh.idx, Watermark: st.watermark,
		LatencyNS: time.Since(start).Nanoseconds()}
}

// Scan answers a range scan [lo, hi): each overlapping shard contributes
// the hits of its sub-interval from its own current snapshot. Segments
// record the per-shard watermarks — a cross-shard scan is a union of
// per-shard snapshots, not one global snapshot, and the result says so.
func (s *Service) Scan(lo, hi int64) ScanResult {
	start := time.Now()
	var out ScanResult
	if hi <= lo {
		out.LatencyNS = time.Since(start).Nanoseconds()
		return out
	}
	first := s.shardFor(lo)
	last := s.shardFor(hi - 1)
	for i := first; i <= last; i++ {
		sh := s.shards[i]
		shLo, shHi := s.shardRange(i)
		if shLo < lo {
			shLo = lo
		}
		if shHi > hi {
			shHi = hi
		}
		if i == 0 && lo < s.cfg.KeyLo {
			shLo = lo // edge shard serves clamped out-of-range keys
		}
		if i == len(s.shards)-1 && hi > s.cfg.KeyHi {
			shHi = hi
		}
		st := sh.snap.Load()
		hits, _ := st.snap.Range(shardReader{sh}, shLo, shHi)
		out.Segments = append(out.Segments, Segment{Shard: i, Watermark: st.watermark, Hits: hits})
		out.Hits = append(out.Hits, hits...)
	}
	out.LatencyNS = time.Since(start).Nanoseconds()
	return out
}

// Flush forces every shard's buffered work down to the leaf runs. The
// flush runs on each shard's committer, ordered after everything already
// queued, so it acts as a committed write barrier per shard.
func (s *Service) Flush() {
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			r := &writeReq{flush: true, done: make(chan struct{})}
			s.mu.RLock()
			if s.closed {
				s.mu.RUnlock()
				panic("dictsrv: Flush on a closed service")
			}
			sh.reqs <- r
			s.mu.RUnlock()
			<-r.done
		}(sh)
	}
	wg.Wait()
}

// Close stops the committers and closes every shard machine. The caller
// must have no operations in flight; Close is not idempotent-safe against
// concurrent writers by design (the differential layer owns lifecycle in
// tests, the CLI in production).
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.reqs)
	}
	s.mu.Unlock()
	s.wg.Wait()
	for _, sh := range s.shards {
		sh.ma.Close()
	}
}

// Committed returns the total write ops committed across shards.
func (s *Service) Committed() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.committed.Load()
	}
	return n
}

// Shards returns the shard count.
func (s *Service) Shards() int { return len(s.shards) }

// ShardWatermark returns shard i's current snapshot watermark (ops
// committed when its snapshot was published).
func (s *Service) ShardWatermark(i int) int64 { return s.shards[i].snap.Load().watermark }

// Stats aggregates accounting across shards. Machine counters are only
// coherent at quiescence (committers idle — every submitted op acked);
// the atomics (SnapReads, Flushes, MaxFlushNS, Committed) are exact at
// any time.
func (s *Service) Stats() Stats {
	var out Stats
	out.Shards = len(s.shards)
	out.Deamortized = s.cfg.Deamortize
	for _, sh := range s.shards {
		st := sh.ma.Stats()
		out.Committed += sh.committed.Load()
		out.Reads += st.Reads
		out.Writes += st.Writes
		out.SnapReads += sh.snapReads.Load()
		out.Cost += sh.ma.Cost()
		out.Flushes += sh.flushes.Load()
		if m := sh.maxFlushNS.Load(); m > out.MaxFlushNS {
			out.MaxFlushNS = m
		}
		if m := sh.maxStallNS.Load(); m > out.MaxStallNS {
			out.MaxStallNS = m
		}
		out.Stalls.merge(sh.stalls.snapshot())
		out.Debt += sh.debt.Load()
		if d := sh.debtHW.Load(); d > out.DebtHighWater {
			out.DebtHighWater = d
		}
		if f := sh.batchFlushes.Load(); f > out.BatchFlushes {
			out.BatchFlushes = f
		}
	}
	out.Cost += out.SnapReads
	return out
}
