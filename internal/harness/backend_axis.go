package harness

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/pq"
	"repro/internal/sorting"
	"repro/internal/spmxv"
	"repro/internal/workload"
)

// This file is the ROADMAP's storage-backend axis sweep: the sorting and
// SpMxV experiments re-declared with one extra grid axis — the storage
// engine — plus a derived column that pins cross-engine Stats equality
// per grid point. The counting engine moves no data, so it is pruned
// (Skip) from every point whose I/O schedule branches on block contents:
// all the sorts and the sort-based SpMxV qualify, while the naive SpMxV
// program is data-oblivious (its schedule is conformation-driven program
// knowledge) and keeps all three engines.

// Aux returns the auxiliary experiment registry: specs selectable by id
// (`aem bench -exp EXP-BE1`) and listed by -list, but not part of All(),
// so the default `aem bench` output and its recorded goldens are
// unaffected by their presence.
func Aux() []*Spec {
	return []*Spec{specBE1(), specBE2(), specMG1(), specIO1(), specIO2(), specL1(), specL2(), specL3()}
}

// backendNames spans the storage-backend axis: every registered engine.
// The file engines appear through their mmap flavor; file-direct is
// exercised by the EXP-IO sweeps, where its transfer path is the point.
var backendNames = Vals("slice", "arena", "counting", "file")

// backendMachine builds a machine on the named storage engine via the
// aem registry — the same constructor the CLI flag resolves through. An
// unknown name inside a spec is an authoring bug, so it panics with the
// registry's canonical error (which lists the valid names).
func backendMachine(cfg aem.Config, name string) *aem.Machine {
	st, err := aem.StorageByName(name, cfg.B)
	if err != nil {
		panic("harness: " + err.Error())
	}
	return aem.NewWithStorage(cfg, st)
}

// backendServesData reports whether the named engine retains block
// contents — the capability that decides grid pruning: an engine without
// a data plane cannot serve any program whose I/O schedule branches on
// values it reads back. Asking the registry (rather than matching the
// name "counting") keeps the predicate correct for every future
// counting-like engine.
func backendServesData(name string) bool {
	e, ok := aem.EngineByName(name)
	return ok && e.Caps.RetainsData
}

// backendRow runs fn on the named backend and returns the standard
// backend-sweep row: identity, I/O counts, cost, memory peak and blocks.
// Machines come from the per-point pool: Recycle's
// indistinguishable-from-fresh contract keeps rows independent of pool
// hits, so pooling changes allocation pressure, never cells.
func backendRow(cfg aem.Config, alg, backend string, fn func(ma *aem.Machine)) Row {
	ma, release := PooledMachine(cfg, backend)
	defer release()
	fn(ma)
	st := ma.Stats()
	return Row{alg, backend, st.Reads, st.Writes, ma.Cost(), ma.MemPeak(), ma.NumBlocks()}
}

// backendEquality is the per-grid-point cross-engine assertion, computed
// over the finished grid: every row's accounting must equal the slice
// reference row of the same algorithm. The acceptance test demands that
// no cell reads DIFF.
var backendEquality = DerivedColumn{
	Name: "vs slice",
	From: func(rows []Row, i int) interface{} {
		if rows[i][1] == "slice" {
			return "ref"
		}
		for _, r := range rows {
			if r[0] == rows[i][0] && r[1] == "slice" {
				for c := 2; c < len(r); c++ {
					if toFloat(rows[i][c]) != toFloat(r[c]) {
						return fmt.Sprintf("DIFF(%v != %v)", rows[i][c], r[c])
					}
				}
				return "="
			}
		}
		return "DIFF(no slice reference row)"
	},
}

func specBE1() *Spec {
	cfg := aem.Config{M: 128, B: 8, Omega: 8}
	const n = 1 << 12
	runs := map[string]func(ma *aem.Machine){
		"mergesort": func(ma *aem.Machine) {
			in := workload.Keys(workload.NewRNG(Seed+20), workload.Random, n)
			sorting.MergeSort(ma, aem.Load(ma, in))
		},
		"em-mergesort": func(ma *aem.Machine) {
			in := workload.Keys(workload.NewRNG(Seed+20), workload.Random, n)
			sorting.EMMergeSort(ma, aem.Load(ma, in))
		},
		"samplesort": func(ma *aem.Machine) {
			in := workload.Keys(workload.NewRNG(Seed+20), workload.Random, n)
			sorting.EMSampleSort(ma, aem.Load(ma, in), Seed)
		},
		"heapsort": func(ma *aem.Machine) {
			in := workload.Keys(workload.NewRNG(Seed+20), workload.Random, n)
			pq.HeapSort(ma, aem.Load(ma, in))
		},
		"smallsort": func(ma *aem.Machine) {
			in := workload.Keys(workload.NewRNG(Seed+21), workload.Random, cfg.M*4)
			sorting.SmallSort(ma, aem.Load(ma, in))
		},
	}
	return &Spec{
		ID:        "EXP-BE1",
		Index:     "sorting: storage-backend axis (Stats equality per point)",
		Statement: "every sorting algorithm produces identical I/O accounting on the slice and arena engines at every grid point; the counting engine is pruned — a comparison sort's schedule branches on key values, which it cannot serve",
		Title:     "sorting across storage backends",
		Claim:     "identical Stats/cost/peak/blocks on every engine that can serve the point",
		Axes: []Axis{
			{Name: "alg", Values: Vals("mergesort", "em-mergesort", "samplesort", "heapsort", "smallsort")},
			{Name: "backend", Values: backendNames},
		},
		// Comparison sorts branch on key values; engines without a data
		// plane (per registry caps) cannot serve any of their points.
		Skip:    func(p Point) bool { return !backendServesData(p.Str("backend")) },
		Columns: Cols("alg", "backend", "reads", "writes", "cost", "mem peak", "blocks"),
		Derived: []DerivedColumn{backendEquality},
		Point: func(p Point) Row {
			alg := p.Str("alg")
			return backendRow(cfg, alg, p.Str("backend"), runs[alg])
		},
		Notes: []string{
			"the backend axis is one extra Axis declaration on the engine; the conformance suite's cross-engine guarantee becomes a table",
		},
	}
}

func specBE2() *Spec {
	cfg := aem.Config{M: 128, B: 8, Omega: 8}
	const n, delta = 512, 4
	mkInput := func() (*workload.Conformation, []int64, []int64) {
		rng := workload.NewRNG(Seed + 22)
		conf := workload.NewConformation(rng, n, delta)
		values := make([]int64, conf.H())
		for i := range values {
			values[i] = int64(rng.Intn(100))
		}
		x := make([]int64, n)
		for i := range x {
			x[i] = int64(rng.Intn(100))
		}
		return conf, values, x
	}
	runs := map[string]func(ma *aem.Machine){
		"naive": func(ma *aem.Machine) {
			conf, values, x := mkInput()
			spmxv.Naive(ma, spmxv.NewMatrix(ma, conf, values), spmxv.LoadDense(ma, x))
		},
		"sort": func(ma *aem.Machine) {
			conf, values, x := mkInput()
			spmxv.SortBased(ma, spmxv.NewMatrix(ma, conf, values), spmxv.LoadDense(ma, x))
		},
	}
	return &Spec{
		ID:        "EXP-BE2",
		Index:     "spmxv: storage-backend axis (counting serves the oblivious naive program)",
		Statement: "both §5 SpMxV programs produce identical I/O accounting on the slice and arena engines; the data-oblivious naive program additionally matches on the counting engine, which is pruned from the value-branching sort-based program",
		Title:     "SpMxV across storage backends",
		Claim:     "identical Stats/cost/peak/blocks per point; counting serves only the data-oblivious naive program",
		Axes: []Axis{
			{Name: "alg", Values: Vals("naive", "sort")},
			{Name: "backend", Values: backendNames},
		},
		// The sort-based program orders elementary products by key value,
		// so engines without a data plane cannot serve its points; the
		// naive program's schedule is pure program knowledge (the
		// conformation), so counting serves it.
		Skip: func(p Point) bool {
			return !backendServesData(p.Str("backend")) && p.Str("alg") != "naive"
		},
		Columns: Cols("alg", "backend", "reads", "writes", "cost", "mem peak", "blocks"),
		Derived: []DerivedColumn{backendEquality},
		Point: func(p Point) Row {
			alg := p.Str("alg")
			return backendRow(cfg, alg, p.Str("backend"), runs[alg])
		},
		Notes: []string{
			"naive on counting is the paper's lower-bound setting made executable: pure Q accounting with a free data plane",
		},
	}
}
