// Package rng provides the repository's deterministic splitmix64
// pseudo-random generator. It is a leaf package so that both the workload
// generators and the algorithm packages (e.g. the sample sort's splitter
// selection) can draw from the same stable stream without layering cycles.
//
// It is deliberately not math/rand: the stream must be stable across Go
// releases so that recorded experiment outputs remain reproducible.
package rng

// RNG is a splitmix64 pseudo-random generator.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative pseudo-random int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a pseudo-random int in [0, n). It panics if n ≤ 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	// Simple modulo would have negligible bias for the n values used in
	// experiments, but we reject the biased tail anyway so properties are
	// exact.
	bound := uint64(n)
	limit := ^uint64(0) - ^uint64(0)%bound
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice p where
// p[i] is the destination of position i.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
