// Package flash implements the unit-cost flash memory model of Ajwani,
// Beckmann, Jacob, Meyer and Moruz ("On Computational Models for Flash
// Memory Devices", used as [2] by the paper) and the simulation of
// Lemma 4.3, which translates any round-based (M,B,ω)-AEM permuting
// program into a flash program of bounded I/O volume — the reduction
// behind the Corollary 4.4 permuting lower bound.
//
// In the flash model, writes transfer big blocks of B items and reads
// transfer small blocks of B/ω items (a big block is ω aligned small
// blocks), and the cost of an operation is proportional to the number of
// items in its block — so cost is measured as transferred *volume*. The
// asymmetry between read and write granularity plays the role that the
// ω cost ratio plays in the AEM.
package flash

import (
	"fmt"

	"repro/internal/aem"
)

// Config describes a flash machine.
type Config struct {
	// M is the internal memory capacity in items.
	M int
	// B is the write (big) block size in items.
	B int
	// R is the read (small) block size in items; B must be a multiple
	// of R.
	R int
}

// Validate reports whether the configuration is legal.
func (c Config) Validate() error {
	switch {
	case c.R < 1:
		return fmt.Errorf("flash: read block R = %d, need ≥ 1", c.R)
	case c.B < c.R:
		return fmt.Errorf("flash: write block B = %d smaller than read block R = %d", c.B, c.R)
	case c.B%c.R != 0:
		return fmt.Errorf("flash: write block B = %d not a multiple of read block R = %d", c.B, c.R)
	case c.M < c.B:
		return fmt.Errorf("flash: internal memory M = %d below write block B = %d", c.M, c.B)
	}
	return nil
}

// SlotsPerBlock returns B/R, the number of small blocks inside a big one.
func (c Config) SlotsPerBlock() int { return c.B / c.R }

// Op is one flash I/O operation.
//
// A read transfers small block Slot of big block Addr; Take lists the
// atoms the program keeps from it (they move to internal memory and their
// disk copies are destroyed, mirroring the AEM program semantics so the
// two models compute the same kind of object). A write transfers Atoms
// (≤ B, ordered — slot positions are meaningful for future small reads)
// into the empty big block Addr.
type Op struct {
	Kind  aem.OpKind
	Addr  int
	Slot  int   // reads only
	Atoms []int // read: atoms taken; write: full ordered layout
}

// Program is a straight-line flash program over N atoms, initially laid
// out n per big block in blocks 0..⌈N/B⌉−1 in index order.
type Program struct {
	N   int
	Cfg Config
	Ops []Op
}

// Volume returns the program's total I/O volume in items: R per read and
// B per write.
func (p *Program) Volume() int64 {
	var v int64
	for _, op := range p.Ops {
		if op.Kind == aem.OpRead {
			v += int64(p.Cfg.R)
		} else {
			v += int64(p.Cfg.B)
		}
	}
	return v
}

// Result is the outcome of interpreting a flash program.
type Result struct {
	// Placement maps every atom to the big block where it ended.
	Placement map[int]int
	// ReadVolume and WriteVolume are in items.
	ReadVolume  int64
	WriteVolume int64
	// MaxMemory is the high-water mark of atoms in internal memory.
	MaxMemory int
}

// Volume returns the total transferred volume.
func (r Result) Volume() int64 { return r.ReadVolume + r.WriteVolume }

// block is a big block: a fixed layout plus per-position presence (taking
// an atom destroys its copy but does not shift the others — the block is
// on disk, not in memory).
type block struct {
	layout  []int
	present []bool
	count   int
}

// Run interprets the program, validating: reads take only atoms present in
// the addressed small block, writes come from memory into empty blocks and
// respect the block size, and internal memory never exceeds M. The program
// must finish with no atoms in memory.
func Run(p *Program) (Result, error) {
	if err := p.Cfg.Validate(); err != nil {
		return Result{}, err
	}
	blocks := make(map[int]*block)
	for a := 0; a < p.N; a += p.Cfg.B {
		hi := a + p.Cfg.B
		if hi > p.N {
			hi = p.N
		}
		bl := &block{layout: make([]int, hi-a), present: make([]bool, hi-a), count: hi - a}
		for x := a; x < hi; x++ {
			bl.layout[x-a] = x
			bl.present[x-a] = true
		}
		blocks[a/p.Cfg.B] = bl
	}
	mem := make(map[int]struct{})
	res := Result{}
	for i, op := range p.Ops {
		switch op.Kind {
		case aem.OpRead:
			res.ReadVolume += int64(p.Cfg.R)
			bl := blocks[op.Addr]
			if bl == nil {
				return Result{}, fmt.Errorf("flash: op %d reads unwritten block %d", i, op.Addr)
			}
			lo, hi := op.Slot*p.Cfg.R, (op.Slot+1)*p.Cfg.R
			if op.Slot < 0 || lo >= len(bl.layout) && len(op.Atoms) > 0 {
				return Result{}, fmt.Errorf("flash: op %d reads slot %d beyond block %d", i, op.Slot, op.Addr)
			}
			for _, a := range op.Atoms {
				found := false
				for pos := lo; pos < hi && pos < len(bl.layout); pos++ {
					if bl.layout[pos] == a && bl.present[pos] {
						bl.present[pos] = false
						bl.count--
						found = true
						break
					}
				}
				if !found {
					return Result{}, fmt.Errorf("flash: op %d takes atom %d absent from block %d slot %d", i, a, op.Addr, op.Slot)
				}
				mem[a] = struct{}{}
			}
			if len(mem) > p.Cfg.M {
				return Result{}, fmt.Errorf("flash: op %d overflows memory: %d > M = %d", i, len(mem), p.Cfg.M)
			}
			if len(mem) > res.MaxMemory {
				res.MaxMemory = len(mem)
			}
		case aem.OpWrite:
			res.WriteVolume += int64(p.Cfg.B)
			if len(op.Atoms) > p.Cfg.B {
				return Result{}, fmt.Errorf("flash: op %d writes %d atoms > B = %d", i, len(op.Atoms), p.Cfg.B)
			}
			if bl := blocks[op.Addr]; bl != nil && bl.count > 0 {
				return Result{}, fmt.Errorf("flash: op %d writes to non-empty block %d", i, op.Addr)
			}
			bl := &block{layout: make([]int, len(op.Atoms)), present: make([]bool, len(op.Atoms)), count: len(op.Atoms)}
			for pos, a := range op.Atoms {
				if _, ok := mem[a]; !ok {
					return Result{}, fmt.Errorf("flash: op %d writes atom %d not in memory", i, a)
				}
				delete(mem, a)
				bl.layout[pos] = a
				bl.present[pos] = true
			}
			blocks[op.Addr] = bl
		}
	}
	if len(mem) != 0 {
		return Result{}, fmt.Errorf("flash: %d atoms resident in memory at end", len(mem))
	}
	res.Placement = make(map[int]int, p.N)
	for addr, bl := range blocks {
		for pos, a := range bl.layout {
			if bl.present[pos] {
				res.Placement[a] = addr
			}
		}
	}
	return res, nil
}
