//go:build !linux

package aem

import (
	"errors"
	"os"
)

// Portable fallback: no mapping and no O_DIRECT, so FileStorage serves
// every mode through buffered positional reads and writes. The engine's
// contract (and the conformance suite) is identical; only the transfer
// mechanism differs.

const mmapSupported = false

const directOpenFlag = 0

func mmapFile(f *os.File, length int) ([]byte, error) {
	return nil, errors.New("aem: mmap unsupported on this platform")
}

func munmapFile(b []byte) error {
	return errors.New("aem: mmap unsupported on this platform")
}
