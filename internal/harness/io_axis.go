package harness

import (
	"fmt"
	"time"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/dict"
	"repro/internal/pq"
	"repro/internal/sorting"
	"repro/internal/workload"
)

// This file is the real-I/O axis: the sorting and dictionary experiments
// re-run on the file-backed engines, with wall time measured per grid
// point and regressed against the model's (Qr, Qw) accounting. The model
// charges Q = Qr + ω·Qw with ω configured a priori; the regression
// wall ≈ α·Qr + β·Qw (bounds.FitOmega) recovers the per-read and
// per-write costs the device actually exhibited, and reports β/α — the
// device's effective ω — next to the configured one. The grids
// deliberately mix algorithms with different read/write ratios (the
// ω-adaptive mergesort is read-heavy; the classic one balanced), because
// a single-ratio grid makes α and β unidentifiable.
//
// Wall-clock cells make these sweeps machine-dependent by construction,
// which is why they live in the auxiliary registry: `aem bench` goldens
// stay byte-stable, and EXP-IO1/EXP-IO2 are selected explicitly (CI runs
// them tmpdir-backed; point AEM_FILE_DIR at a mounted device to measure
// that device).

// ioEngines spans the file-transfer axis: mmap and O_DIRECT positional
// I/O (buffered fallback where O_DIRECT is unavailable).
var ioEngines = Vals("file", "file-direct")

// ioRow runs fn on a machine over the named file engine — owned by this
// point and closed on release, per the pool's persistent-engine policy —
// and returns the standard I/O-axis row: identity, accounting, wall.
func ioRow(cfg aem.Config, id0, id1 interface{}, engine string, fn func(ma *aem.Machine)) Row {
	ma, release := PooledMachine(cfg, engine)
	defer release()
	start := time.Now()
	fn(ma)
	wall := time.Since(start).Nanoseconds()
	st := ma.Stats()
	return Row{id0, id1, engine, st.Reads, st.Writes, ma.Cost(), wall}
}

// fitDeviceOmega builds the fitted-ω derived columns over an I/O-axis
// grid: one least-squares fit per engine value (column engineCol), using
// the reads/writes/wall columns at qrCol, qrCol+1 and wallCol. Every row
// of an engine shows that engine's fit — the table reads as "this device
// behaved like ω ≈ x" next to the configured ω column.
func fitDeviceOmega(engineCol, qrCol, wallCol int) []DerivedColumn {
	fit := func(rows []Row, i int) (bounds.OmegaFit, error) {
		var qr, qw, wall []float64
		for _, r := range rows {
			if r[engineCol] != rows[i][engineCol] {
				continue
			}
			qr = append(qr, toFloat(r[qrCol]))
			qw = append(qw, toFloat(r[qrCol+1]))
			wall = append(wall, toFloat(r[wallCol]))
		}
		return bounds.FitOmega(qr, qw, wall)
	}
	return []DerivedColumn{
		{
			Name: "fitted ω",
			From: func(rows []Row, i int) interface{} {
				f, err := fit(rows, i)
				if err != nil {
					return "n/a"
				}
				return fmt.Sprintf("%.2f", f.Omega)
			},
		},
		{
			Name: "fit R²",
			From: func(rows []Row, i int) interface{} {
				f, err := fit(rows, i)
				if err != nil {
					return "n/a"
				}
				return fmt.Sprintf("%.3f", f.R2)
			},
		},
	}
}

func specIO1() *Spec {
	cfg := aem.Config{M: 128, B: 8, Omega: 8}
	runs := map[string]func(ma *aem.Machine, n int){
		"mergesort": func(ma *aem.Machine, n int) {
			in := workload.Keys(workload.NewRNG(Seed+30), workload.Random, n)
			sorting.MergeSort(ma, aem.Load(ma, in))
		},
		"em-mergesort": func(ma *aem.Machine, n int) {
			in := workload.Keys(workload.NewRNG(Seed+30), workload.Random, n)
			sorting.EMMergeSort(ma, aem.Load(ma, in))
		},
		"samplesort": func(ma *aem.Machine, n int) {
			in := workload.Keys(workload.NewRNG(Seed+30), workload.Random, n)
			sorting.EMSampleSort(ma, aem.Load(ma, in), Seed)
		},
		"heapsort": func(ma *aem.Machine, n int) {
			in := workload.Keys(workload.NewRNG(Seed+30), workload.Random, n)
			pq.HeapSort(ma, aem.Load(ma, in))
		},
	}
	return &Spec{
		ID:        "EXP-IO1",
		Index:     "sorting on file storage: wall time vs (Qr, Qw), fitted device ω",
		Statement: "the sorting grid re-run on file-backed external memory (mmap and O_DIRECT), measuring wall time per point and least-squares fitting wall ≈ α·Qr + β·Qw; β/α is the effective ω the backing device exhibited, reported next to the configured ω",
		Title:     "sorting on file-backed storage: fitted device ω",
		Claim:     "wall regresses on (Qr, Qw) with finite α, β > 0; fitted ω = β/α is the device's measured write/read ratio",
		Axes: []Axis{
			{Name: "alg", Values: Vals("mergesort", "em-mergesort", "samplesort", "heapsort")},
			{Name: "n", Values: Ints(1<<12, 1<<13)},
			{Name: "engine", Values: ioEngines},
		},
		Columns: Cols("alg", "n", "engine", "reads", "writes", "cost", "wall ns"),
		Derived: append([]DerivedColumn{{
			Name: "ω cfg",
			From: func([]Row, int) interface{} { return cfg.Omega },
		}}, fitDeviceOmega(2, 3, 6)...),
		Point: func(p Point) Row {
			alg, n := p.Str("alg"), p.Int("n")
			return ioRow(cfg, alg, n, p.Str("engine"), func(ma *aem.Machine) { runs[alg](ma, n) })
		},
		Notes: []string{
			"wall-clock cells are machine-dependent by construction; the fit, not the cells, is the result",
			"algorithms with different read/write mixes keep the (Qr, Qw) design non-collinear, which is what makes α and β identifiable",
			"tmpfs-backed runs fit ω̂ near the per-block copy cost ratio, not a real device's asymmetry; point AEM_FILE_DIR at a mounted device to measure it",
		},
	}
}

func specIO2() *Spec {
	cfg := aem.Config{M: 256, B: 16, Omega: 8}
	const keyspace = 4096
	runs := map[string]func(ma *aem.Machine, n int){
		"buffertree": func(ma *aem.Machine, n int) {
			ops := workload.DictOps(workload.NewRNG(Seed+31), workload.UniformOps, n, keyspace)
			dict.NewBufferTree(ma).Apply(ops)
		},
		"btree": func(ma *aem.Machine, n int) {
			ops := workload.DictOps(workload.NewRNG(Seed+31), workload.UniformOps, n, keyspace)
			dict.NewBTree(ma).Apply(ops)
		},
	}
	return &Spec{
		ID:        "EXP-IO2",
		Index:     "dictionary on file storage: buffered vs unbatched wall time, fitted device ω",
		Statement: "the dictionary pair re-run on file-backed external memory: the ω-adaptive buffer tree against the unbatched B-tree, wall-timed per point; their sharply different write shares keep the regression identifiable and the fitted device ω is reported next to the configured one",
		Title:     "dictionary on file-backed storage: fitted device ω",
		Claim:     "buffer tree vs B-tree span write-heavy and read-heavy mixes; wall regresses on (Qr, Qw) with a finite fitted ω",
		Axes: []Axis{
			{Name: "structure", Values: Vals("buffertree", "btree")},
			{Name: "ops", Values: Ints(6000, 12000)},
			{Name: "engine", Values: ioEngines},
		},
		Columns: Cols("structure", "ops", "engine", "reads", "writes", "cost", "wall ns"),
		Derived: append([]DerivedColumn{{
			Name: "ω cfg",
			From: func([]Row, int) interface{} { return cfg.Omega },
		}}, fitDeviceOmega(2, 3, 6)...),
		Point: func(p Point) Row {
			st, n := p.Str("structure"), p.Int("ops")
			return ioRow(cfg, st, n, p.Str("engine"), func(ma *aem.Machine) { runs[st](ma, n) })
		},
		Notes: []string{
			"the buffer tree defers and batches writes while the B-tree pays ~1 write/update — two ends of the read/write mix in one grid",
			"caveat the grid exists to show: the structures also differ in CPU work per I/O, and when CPU dominates wall the two-term fit misattributes it — the fitted ω can even go negative; EXP-IO1's sorting grid, whose algorithms are I/O-shaped, is the fit to trust",
		},
	}
}
