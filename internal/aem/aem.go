// Package aem implements the (M,B,ω)-Asymmetric External Memory machine
// model of Jacob & Sitchinava (SPAA 2017), itself a generalization of the
// external memory (EM) model of Aggarwal and Vitter.
//
// The machine consists of an internal (symmetric) memory holding at most M
// items and an unbounded external (asymmetric) memory organized in blocks of
// at most B items. Data is transferred between the two memories in whole
// blocks. A read I/O costs one unit; a write I/O costs ω units. The cost of
// a computation is
//
//	Q = Qr + ω·Qw
//
// where Qr and Qw are the numbers of read and write I/Os. Internal
// computation is free, exactly as in the model: the simulator meters I/O
// only, but it *does* enforce the internal memory capacity M so that
// algorithms cannot cheat by hiding data in unbounded internal state.
//
// Setting ω = 1 yields the classic symmetric EM model, and setting B = 1
// yields the (M,ω)-ARAM model of Blelloch et al., so the same machine serves
// as the substrate for all baselines in this repository.
package aem

import (
	"errors"
	"fmt"
)

// Config describes an (M,B,ω)-AEM machine.
//
// All quantities are in items (elements), not bytes: the model is stated in
// terms of elements and so are all bounds in the paper.
type Config struct {
	// M is the internal memory capacity in items.
	M int
	// B is the block size in items.
	B int
	// Omega is the ratio ω between the cost of a write and a read I/O.
	Omega int
}

// Validate reports whether the configuration is a legal AEM machine
// description. The model requires B ≥ 1, M ≥ 2B (at least two blocks of
// internal memory, the usual tall-cache-free minimum for multiway merging)
// and ω ≥ 1.
func (c Config) Validate() error {
	switch {
	case c.B < 1:
		return fmt.Errorf("aem: block size B = %d, need B ≥ 1", c.B)
	case c.M < 2*c.B:
		return fmt.Errorf("aem: internal memory M = %d, need M ≥ 2B = %d", c.M, 2*c.B)
	case c.Omega < 1:
		return fmt.Errorf("aem: write/read ratio ω = %d, need ω ≥ 1", c.Omega)
	}
	return nil
}

// BlocksInMemory returns m = ⌈M/B⌉, the number of blocks that fit in
// internal memory.
func (c Config) BlocksInMemory() int {
	return ceilDiv(c.M, c.B)
}

// BlocksOf returns ⌈n/B⌉, the number of blocks needed to hold n items.
func (c Config) BlocksOf(n int) int {
	return ceilDiv(n, c.B)
}

// MergeFanout returns d = ω·m, the merge fanout used by the AEM mergesort of
// Section 3 of the paper.
func (c Config) MergeFanout() int {
	return c.Omega * c.BlocksInMemory()
}

// ceilDiv returns ⌈a/b⌉ for a ≥ 0, b > 0.
func ceilDiv(a, b int) int {
	return (a + b - 1) / b
}

// Item is a single element stored in the machine. Key is the sort key; Aux
// carries an application payload (original position for permuting, a
// semiring value for SpMxV, ...). Items are compared lexicographically by
// (Key, Aux) so that all orderings used by the algorithms are total even
// when keys repeat.
type Item struct {
	Key int64
	Aux int64
}

// Less reports whether a orders strictly before b in the total order
// (Key, Aux).
func Less(a, b Item) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Aux < b.Aux
}

// Compare returns -1, 0 or +1 according to the total order (Key, Aux).
func Compare(a, b Item) int {
	switch {
	case a.Key < b.Key:
		return -1
	case a.Key > b.Key:
		return 1
	case a.Aux < b.Aux:
		return -1
	case a.Aux > b.Aux:
		return 1
	}
	return 0
}

// Addr identifies a block of external memory.
type Addr int

// ErrMemoryOverflow is returned (wrapped) when an algorithm attempts to
// reserve more internal memory than the machine has. It indicates a bug in
// the algorithm, not a runtime condition.
var ErrMemoryOverflow = errors.New("aem: internal memory capacity exceeded")
