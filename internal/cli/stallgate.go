package cli

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// dictloadRecord is the JSON report emitted by `aem dictload -json` and
// consumed by `aem stallgate`. One type in one place so the producer and
// the gate cannot drift.
type dictloadRecord struct {
	Type          string  `json:"type"` // "dictload"
	Scenario      string  `json:"scenario"`
	Engine        string  `json:"engine"`
	Shards        int     `json:"shards"`
	Goroutines    int     `json:"goroutines"`
	Deamortize    bool    `json:"deamortize"`
	Ops           int64   `json:"ops"`
	WallNS        int64   `json:"wall_ns"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	P50NS         int64   `json:"p50_ns"`
	P99NS         int64   `json:"p99_ns"`
	P999NS        int64   `json:"p999_ns"`
	MaxNS         int64   `json:"max_ns"`
	MaxStallNS    int64   `json:"max_stall_ns"`
	P999StallNS   int64   `json:"p999_stall_ns"`
	MaxFlushNS    int64   `json:"max_flush_ns"`
	DebtHighWater int64   `json:"debt_high_water"`
	Flushes       int64   `json:"flushes"`
	Reads         int64   `json:"reads"`
	Writes        int64   `json:"writes"`
	SnapReads     int64   `json:"snap_reads"`
	Cost          int64   `json:"cost"`
	CostPerOp     float64 `json:"cost_per_op"`
}

// stallBaseline is the committed absolute reference for the deamortized
// leg: the gate's ratio checks are machine-relative (both legs run on the
// same box), but a committed stall ceiling catches the regression where
// both legs degrade together.
type stallBaseline struct {
	Note       string  `json:"note"`
	MaxStallNS int64   `json:"max_stall_ns"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

// stallgateCmd compares an amortized and a deamortized `aem dictload
// -json` run and enforces the deamortization contract: the debt-queue
// committer must cut the worst commit-path stall by at least -ratio
// while keeping at least -throughput of the amortized ops/sec. With
// -baseline it also caps the deamortized stall at -tol × the committed
// value, so a regression that slows both modes equally still fails.
//
//	aem dictload -gor 1 -json          > amortized.json
//	aem dictload -gor 1 -deamortize -json > deamortized.json
//	aem stallgate -amortized amortized.json -deamortized deamortized.json \
//	    -baseline testdata/stall_baseline.json
//
// -write-baseline rewrites the baseline file from the deamortized run
// instead of gating. Exit codes: 0 pass, 1 gate failure, 2 usage error.
func stallgateCmd(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		amortizedPath   = fs.String("amortized", "", "dictload -json output from the amortized run (required)")
		deamortizedPath = fs.String("deamortized", "", "dictload -json output from the -deamortize run (required)")
		ratio           = fs.Float64("ratio", 10, "required worst-stall reduction: amortized ≥ ratio × deamortized")
		throughput      = fs.Float64("throughput", 0.9, "required throughput fraction: deamortized ≥ frac × amortized ops/sec")
		baselinePath    = fs.String("baseline", "", "committed stall baseline JSON (optional)")
		tol             = fs.Float64("tol", 3.0, "allowed deamortized stall vs baseline: current ≤ tol × baseline")
		writeBase       = fs.Bool("write-baseline", false, "rewrite -baseline from the deamortized run instead of gating")
		note            = fs.String("note", "", "note stored with -write-baseline")
		jsonOut         = fs.Bool("json", false, "emit one JSON verdict record after the human output")
	)
	fs.Parse(args)

	if *amortizedPath == "" || *deamortizedPath == "" {
		fail(prog, "-amortized and -deamortized are both required")
		return 2
	}
	am, err := readDictloadRecord(*amortizedPath)
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}
	de, err := readDictloadRecord(*deamortizedPath)
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}
	if am.Deamortize {
		fail(prog, "%s: record is from a -deamortize run, want the amortized leg", *amortizedPath)
		return 2
	}
	if !de.Deamortize {
		fail(prog, "%s: record is from an amortized run, want the -deamortize leg", *deamortizedPath)
		return 2
	}
	if am.MaxStallNS <= 0 || de.MaxStallNS <= 0 {
		fail(prog, "stall telemetry missing: amortized %dns, deamortized %dns — runs too small to flush?", am.MaxStallNS, de.MaxStallNS)
		return 2
	}

	if *writeBase {
		if *baselinePath == "" {
			fail(prog, "-write-baseline needs -baseline")
			return 2
		}
		base := stallBaseline{Note: *note, MaxStallNS: de.MaxStallNS, OpsPerSec: de.OpsPerSec}
		if err := writeStallBaseline(*baselinePath, base); err != nil {
			fail(prog, "%v", err)
			return 2
		}
		fmt.Printf("wrote %s: deamortized worst stall %dns at %.0f ops/sec\n", *baselinePath, base.MaxStallNS, base.OpsPerSec)
		return 0
	}

	gotRatio := float64(am.MaxStallNS) / float64(de.MaxStallNS)
	gotFrac := de.OpsPerSec / am.OpsPerSec
	failures := 0
	verdict := func(ok bool, format string, a ...interface{}) {
		tag := "ok  "
		if !ok {
			tag = "FAIL"
			failures++
		}
		fmt.Printf("%s  %s\n", tag, fmt.Sprintf(format, a...))
	}
	fmt.Printf("amortized    worst stall %.3fms at %.0f ops/sec (%s, %d shards, %d gor)\n",
		float64(am.MaxStallNS)/1e6, am.OpsPerSec, am.Scenario, am.Shards, am.Goroutines)
	fmt.Printf("deamortized  worst stall %.3fms at %.0f ops/sec (debt high-water %d)\n",
		float64(de.MaxStallNS)/1e6, de.OpsPerSec, de.DebtHighWater)
	verdict(gotRatio >= *ratio, "stall reduction %.1f× (need ≥ %.1f×)", gotRatio, *ratio)
	verdict(gotFrac >= *throughput, "throughput held %.2f× amortized (need ≥ %.2f×)", gotFrac, *throughput)

	var base stallBaseline
	haveBase := false
	if *baselinePath != "" {
		if base, err = readStallBaseline(*baselinePath); err != nil {
			fail(prog, "%v", err)
			return 2
		}
		haveBase = true
		ceil := float64(base.MaxStallNS) * *tol
		verdict(float64(de.MaxStallNS) <= ceil,
			"deamortized stall %.3fms vs baseline %.3fms (cap %.1f× = %.3fms)",
			float64(de.MaxStallNS)/1e6, float64(base.MaxStallNS)/1e6, *tol, ceil/1e6)
	}

	if *jsonOut {
		out := struct {
			Type        string  `json:"type"` // "stallgate"
			Pass        bool    `json:"pass"`
			StallRatio  float64 `json:"stall_ratio"`
			NeedRatio   float64 `json:"need_ratio"`
			Throughput  float64 `json:"throughput_fraction"`
			NeedFrac    float64 `json:"need_fraction"`
			DeamStallNS int64   `json:"deamortized_stall_ns"`
			BaselineNS  int64   `json:"baseline_stall_ns,omitempty"`
		}{"stallgate", failures == 0, gotRatio, *ratio, gotFrac, *throughput, de.MaxStallNS, 0}
		if haveBase {
			out.BaselineNS = base.MaxStallNS
		}
		if err := json.NewEncoder(os.Stdout).Encode(&out); err != nil {
			fail(prog, "%v", err)
			return 1
		}
	}
	if failures > 0 {
		fail(prog, "%d check(s) failed", failures)
		return 1
	}
	return 0
}

// readDictloadRecord scans a JSON Lines file and returns the last
// "dictload" record, so the gate tolerates logs with other record types
// (or repeated runs — last wins) interleaved.
func readDictloadRecord(path string) (dictloadRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return dictloadRecord{}, err
	}
	defer f.Close()
	var rec dictloadRecord
	found := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil || probe.Type != "dictload" {
			continue
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return dictloadRecord{}, fmt.Errorf("%s: %v", path, err)
		}
		found = true
	}
	if err := sc.Err(); err != nil {
		return dictloadRecord{}, fmt.Errorf("%s: %v", path, err)
	}
	if !found {
		return dictloadRecord{}, fmt.Errorf("%s: no dictload record found", path)
	}
	return rec, nil
}

func readStallBaseline(path string) (stallBaseline, error) {
	var base stallBaseline
	data, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return base, fmt.Errorf("%s: %v", path, err)
	}
	if base.MaxStallNS <= 0 {
		return base, fmt.Errorf("%s: baseline has no max_stall_ns", path)
	}
	return base, nil
}

func writeStallBaseline(path string, base stallBaseline) error {
	data, err := json.MarshalIndent(&base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
