package cli

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/dict"
	"repro/internal/workload"
)

// dictCmd runs a generated dictionary operation stream on a simulated
// (M,B,ω)-AEM machine and reports the measured I/O cost of the
// ω-adaptive buffer tree next to the unbatched B-tree baseline and the
// bounds predictions.
//
//	aem dict -ops 24000 -keyspace 8192 -m 256 -b 16 -omega 16 -scenario zipf
//	aem dict -impl buffertree -engine arena -phases
//
// Scenarios: uniform | zipf | sortedburst | deleteheavy.
// Implementations: both | buffertree | btree.
// Engines: any registered data-retaining engine (see `aem engines`);
// engines without a data plane cannot run a value-dependent dictionary.
func dictCmd(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		nOps     = fs.Int("ops", 24000, "number of operations in the stream")
		keyspace = fs.Int64("keyspace", 8192, "distinct-key domain size")
		machine  = machineFlags(fs, 256, 16, 16)
		scenario = fs.String("scenario", "uniform", "workload: uniform | zipf | sortedburst | deleteheavy")
		impl     = fs.String("impl", "both", "dictionary: both | buffertree | btree")
		engine   = fs.String("engine", "slice", "storage engine: "+strings.Join(aem.EngineNames(), " | "))
		seed     = fs.Uint64("seed", 1, "workload seed")
		phases   = fs.Bool("phases", false, "print per-phase I/O for the buffer tree")
	)
	fs.Parse(args)

	cfg, err := machine()
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}
	sc, found := workload.ScenarioByName(*scenario)
	if !found {
		fail(prog, "unknown scenario %q", *scenario)
		return 2
	}
	eng, known := aem.EngineByName(*engine)
	if !known {
		// Surface the registry's canonical error: it lists the valid names.
		_, err := aem.StorageByName(*engine, cfg.B)
		fail(prog, "%v", err)
		return 2
	}
	if !eng.Caps.RetainsData {
		fail(prog, "engine %q has no data plane and cannot run a value-dependent dictionary", *engine)
		return 2
	}

	ops := workload.DictOps(workload.NewRNG(*seed), sc, *nOps, *keyspace)
	ins, del, look, rng := workload.OpMix(ops)
	p := bounds.DictParamsFor(cfg, ops, int(*keyspace))

	fmt.Printf("machine      (M=%d, B=%d, ω=%d)-AEM on the %s engine\n", cfg.M, cfg.B, cfg.Omega, *engine)
	fmt.Printf("workload     %d ops, %s over %d keys (seed %d): %d insert / %d delete / %d lookup / %d range\n",
		*nOps, sc, *keyspace, *seed, ins, del, look, rng)

	type row struct {
		name string
		mk   func(*aem.Machine) dict.Dict
		pred bounds.PredictedIO
	}
	var rows []row
	if *impl == "both" || *impl == "buffertree" {
		rows = append(rows, row{"buffertree", func(ma *aem.Machine) dict.Dict { return dict.NewBufferTree(ma) },
			bounds.DictBufferTreePredicted(p)})
	}
	if *impl == "both" || *impl == "btree" {
		rows = append(rows, row{"btree", func(ma *aem.Machine) dict.Dict { return dict.NewBTree(ma) },
			bounds.DictBTreePredicted(p)})
	}
	if len(rows) == 0 {
		fail(prog, "unknown implementation %q", *impl)
		return 2
	}

	for _, r := range rows {
		stor, err := aem.StorageByName(*engine, cfg.B)
		if err != nil {
			fail(prog, "%v", err)
			return 1
		}
		ma := aem.NewWithStorage(cfg, stor)
		defer ma.Close()
		d := r.mk(ma)
		results := d.Apply(ops)
		st := ma.Stats()
		fmt.Printf("\n%s\n", r.name)
		fmt.Printf("  reads        %10d   (predicted %.0f, meas/pred %.2f)\n", st.Reads, r.pred.Reads, float64(st.Reads)/r.pred.Reads)
		fmt.Printf("  writes       %10d   (predicted %.0f, meas/pred %.2f)\n", st.Writes, r.pred.Writes, float64(st.Writes)/r.pred.Writes)
		fmt.Printf("  cost Q       %10d   (= reads + ω·writes; %.2f per op)\n", ma.Cost(), float64(ma.Cost())/float64(*nOps))
		fmt.Printf("  answered     %10d queries\n", len(results))
		if *phases && r.name == "buffertree" {
			fmt.Printf("  per-phase I/O:\n")
			for _, line := range strings.Split(strings.TrimRight(ma.Phases().String(), "\n"), "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
	}
	return 0
}
