package pq

import (
	"container/heap"
	"testing"
	"testing/quick"

	"repro/internal/aem"
	"repro/internal/sorting"
	"repro/internal/workload"
)

func TestAdaptiveInterleavedAgainstReferenceHeap(t *testing.T) {
	rng := workload.NewRNG(7)
	ma := aem.New(pqConfig())
	q := NewAdaptive(ma)
	ref := &refHeap{}
	var key int64
	for step := 0; step < 20000; step++ {
		if ref.Len() == 0 || rng.Intn(3) != 0 {
			it := aem.Item{Key: int64(rng.Intn(1000)), Aux: key}
			key++
			q.Push(it)
			heap.Push(ref, it)
		} else {
			got, ok := q.DeleteMin()
			want := heap.Pop(ref).(aem.Item)
			if !ok || got != want {
				t.Fatalf("step %d: DeleteMin = %v, want %v", step, got, want)
			}
		}
	}
	for ref.Len() > 0 {
		got, _ := q.DeleteMin()
		want := heap.Pop(ref).(aem.Item)
		if got != want {
			t.Fatalf("drain: got %v, want %v", got, want)
		}
	}
	q.Close()
	if ma.MemInUse() != 0 {
		t.Fatalf("leaked %d memory slots", ma.MemInUse())
	}
}

func TestAdaptiveEmptyQueueAndMin(t *testing.T) {
	ma := aem.New(pqConfig())
	q := NewAdaptive(ma)
	if _, ok := q.DeleteMin(); ok {
		t.Error("DeleteMin on empty queue returned ok")
	}
	if _, ok := q.Min(); ok {
		t.Error("Min on empty queue returned ok")
	}
	q.Push(aem.Item{Key: 5})
	q.Push(aem.Item{Key: 3})
	if it, ok := q.Min(); !ok || it.Key != 3 {
		t.Fatalf("Min = %v, %t", it, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Min removed an item: Len = %d", q.Len())
	}
	if it, _ := q.DeleteMin(); it.Key != 3 {
		t.Fatalf("DeleteMin = %v", it)
	}
	if it, _ := q.DeleteMin(); it.Key != 5 {
		t.Fatalf("second DeleteMin = %v", it)
	}
	q.Close()
}

func TestAdaptiveHeapSort(t *testing.T) {
	for _, dist := range workload.Dists() {
		for _, n := range []int{0, 1, 100, 2000, 8000} {
			ma := aem.New(pqConfig())
			in := workload.Keys(workload.NewRNG(uint64(n)+5), dist, n)
			out := AdaptiveHeapSort(ma, aem.Load(ma, in)).Materialize()
			if !sorting.IsSorted(out) {
				t.Fatalf("dist=%v n=%d: not sorted", dist, n)
			}
			if !sorting.SameMultiset(in, out) {
				t.Fatalf("dist=%v n=%d: multiset broken", dist, n)
			}
			if ma.MemInUse() != 0 {
				t.Fatalf("dist=%v n=%d: leaked %d slots", dist, n, ma.MemInUse())
			}
		}
	}
}

func TestAdaptiveTooSmallMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for M < 16B")
		}
	}()
	NewAdaptive(aem.New(aem.Config{M: 32, B: 4, Omega: 2}))
}

// TestAdaptiveOmegaAdvantage pins the tentpole behavior on an interleaved
// stream: as ω grows the adaptive queue folds less (the rent-or-buy
// policy defers structural writes), its writes/op falls, and the cost gap
// to the ω-oblivious sequence heap widens.
func TestAdaptiveOmegaAdvantage(t *testing.T) {
	const n = 12000
	ops := workload.PQOps(workload.NewRNG(11), workload.MonotonePQ, n)
	type point struct {
		folds        int
		writes       int64
		cost, seqqed int64
	}
	var pts []point
	for _, w := range []int{1, 8, 64} {
		cfg := aem.Config{M: 256, B: 16, Omega: w}
		maA := aem.New(cfg)
		qa := NewAdaptive(maA)
		maS := aem.New(cfg)
		qs := New(maS)
		for _, op := range ops {
			if op.Kind == workload.PQPush {
				qa.Push(op.Item)
				qs.Push(op.Item)
			} else {
				ga, oka := qa.DeleteMin()
				gs, oks := qs.DeleteMin()
				if !oka || !oks || ga != gs {
					t.Fatalf("queues disagree: %v/%t vs %v/%t", ga, oka, gs, oks)
				}
			}
		}
		pts = append(pts, point{qa.Folds(), maA.Stats().Writes, maA.Cost(), maS.Cost()})
	}
	if !(pts[0].folds > pts[1].folds && pts[1].folds > pts[2].folds) {
		t.Errorf("folds did not fall with ω: %d, %d, %d", pts[0].folds, pts[1].folds, pts[2].folds)
	}
	if !(pts[0].writes > pts[2].writes) {
		t.Errorf("writes did not fall with ω: %d → %d", pts[0].writes, pts[2].writes)
	}
	gapLow := float64(pts[0].seqqed) / float64(pts[0].cost)
	gapHigh := float64(pts[2].seqqed) / float64(pts[2].cost)
	if gapHigh <= gapLow {
		t.Errorf("sequence/adaptive cost gap did not widen with ω: %.2f → %.2f", gapLow, gapHigh)
	}
}

func TestAdaptiveQuickRandomOps(t *testing.T) {
	f := func(seed uint64, opsSel []byte) bool {
		rng := workload.NewRNG(seed)
		ma := aem.New(aem.Config{M: 128, B: 4, Omega: 2})
		q := NewAdaptive(ma)
		ref := &refHeap{}
		var key int64
		for _, b := range opsSel {
			if ref.Len() == 0 || b%4 != 0 {
				it := aem.Item{Key: int64(rng.Intn(64)), Aux: key}
				key++
				q.Push(it)
				heap.Push(ref, it)
			} else {
				got, ok := q.DeleteMin()
				want := heap.Pop(ref).(aem.Item)
				if !ok || got != want {
					return false
				}
			}
		}
		for ref.Len() > 0 {
			got, _ := q.DeleteMin()
			if got != heap.Pop(ref).(aem.Item) {
				return false
			}
		}
		q.Close()
		return ma.MemInUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
