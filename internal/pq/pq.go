// Package pq implements external-memory priority queues on the AEM
// machine, and the heapsorts built on them.
//
// Two queues share one substrate of leveled sorted runs (runLevels):
//
//   - Queue is the *classic external-memory sequence heap* in the style of
//     Sanders, run unchanged on the AEM machine — cost Θ((1+ω)·n·log_m n)
//     for a full insert/delete lifetime. It is ω-oblivious: every M/8
//     insertions it writes a run, whatever writes cost.
//   - Adaptive (see adaptive.go) is the ω-adaptive buffered queue that
//     closes the gap the paper's §1.1 points at: Blelloch et al. [7]
//     achieve O(ω·n·log_{ωm} n) unconditionally by buffering writes, and
//     the adaptive queue mirrors that construction's write-buffering with
//     the same Θ(ωM) external insertion buffer the repository's buffer
//     tree dictionary uses for its root.
//
// Structure of the sequence heap: an in-memory insertion buffer (IB) and
// deletion buffer (DB) of ~M/8 items each, plus sorted runs on disk
// organized in levels, with one resident block frame per live run (the
// classic EM frontier). A full IB is sorted (free internal computation)
// and written as a level-0 run; when the live-run count exceeds the frame
// budget ~M/(2B), levels are merged. DB refills take the globally
// smallest unconsumed items from the run frontiers through a tournament
// tree (see tournament.go).
package pq

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/sorting"
)

// run is a sorted on-disk run with a frontier cursor and a lazily loaded
// resident block frame. frameBuf is the run's owned block buffer, created
// on the first load and reused for every subsequent frontier read.
type run struct {
	vec      *aem.Vector
	consumed int // items already handed to the deletion buffer
	frame    []aem.Item
	frameBuf []aem.Item
	frameLo  int
}

// remaining returns how many items of the run are unconsumed.
func (r *run) remaining() int { return r.vec.Len() - r.consumed }

// head returns the run's smallest unconsumed item; the frame must be
// loaded.
func (r *run) head() aem.Item { return r.frame[r.consumed-r.frameLo] }

// runLevels is the external state both queues share: sorted runs
// organized in levels, one resident block frame per live run, a frame
// budget, and the compaction machinery that keeps the live-run count
// within it.
type runLevels struct {
	ma  *aem.Machine
	cfg aem.Config

	levels [][]*run

	framesRes int  // run-frame reservation, dropped around compaction
	framesIn  bool // whether framesRes is currently reserved
}

// initLevels wires the level store to the machine and reserves the run
// frames for the structure's lifetime.
func (h *runLevels) initLevels(ma *aem.Machine) {
	h.ma = ma
	h.cfg = ma.Config()
	h.framesRes = h.maxRuns() * h.cfg.B
	ma.Reserve(h.framesRes)
	h.framesIn = true
}

// closeLevels releases the frame reservation.
func (h *runLevels) closeLevels() {
	if h.framesIn {
		h.ma.Release(h.framesRes)
		h.framesIn = false
	}
}

// maxRuns is the frame budget: one resident block per live run, within
// half the memory.
func (h *runLevels) maxRuns() int {
	r := h.cfg.M / (2 * h.cfg.B)
	if r < 2 {
		r = 2
	}
	return r
}

func (h *runLevels) addRun(level int, r *run) {
	for len(h.levels) <= level {
		h.levels = append(h.levels, nil)
	}
	h.levels[level] = append(h.levels[level], r)
}

// compact merges each multi-run level into a single run of the next
// level, lowest level first, until the live-run count fits the frame
// budget. The run frames are dropped for the duration so MergeRuns can
// use the freed memory.
//
// The level-local pass alone cannot restore the budget when the excess
// runs are stranded one per level — a state interleaved push/delete
// traffic reaches once enough drained phases have left single
// mostly-consumed runs at distinct levels. compactFallback handles that
// corner, so the post-compaction invariant totalRuns() ≤ maxRuns() holds
// unconditionally.
func (h *runLevels) compact() {
	h.dropFrames()
	for level := 0; level < len(h.levels) && h.totalRuns() > h.maxRuns()/2; level++ {
		if len(h.levels[level]) < 2 {
			continue
		}
		vecs := make([]*aem.Vector, 0, len(h.levels[level]))
		for _, r := range h.levels[level] {
			if r.remaining() > 0 {
				vecs = append(vecs, h.suffixVector(r))
			}
		}
		h.levels[level] = nil
		if len(vecs) == 0 {
			continue
		}
		merged := sorting.MergeRuns(h.ma, vecs, sorting.MergeOptions{})
		h.addRun(level+1, &run{vec: merged, frameLo: -1})
	}
	if h.totalRuns() > h.maxRuns() {
		h.compactFallback()
	}
	h.ma.Reserve(h.framesRes)
	h.framesIn = true
	if h.totalRuns() > h.maxRuns() {
		panic(fmt.Sprintf("pq: %d live runs exceed budget %d after compaction", h.totalRuns(), h.maxRuns()))
	}
}

// compactFallback restores the run budget when every over-budget level
// holds a single run, so no level-local merge applies: it prunes
// fully-consumed runs (which occupy frame budget but hold nothing), and
// if the count is still over budget it merges the smallest live runs
// across levels into one run — smallest first, so the fallback moves the
// fewest blocks that restore the invariant.
func (h *runLevels) compactFallback() {
	for lv := range h.levels {
		kept := h.levels[lv][:0]
		for _, r := range h.levels[lv] {
			if r.remaining() > 0 {
				kept = append(kept, r)
			}
		}
		h.levels[lv] = kept
	}
	if h.totalRuns() <= h.maxRuns()/2 {
		return
	}
	type located struct {
		r     *run
		level int
	}
	var live []located
	for lv, runs := range h.levels {
		for _, r := range runs {
			live = append(live, located{r, lv})
		}
	}
	// Order by remaining size ascending; insertion sort is stable, so
	// (level, insertion order) tiebreaks keep the fallback deterministic.
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j].r.remaining() < live[j-1].r.remaining(); j-- {
			live[j], live[j-1] = live[j-1], live[j]
		}
	}
	// Merge the smallest runs, keeping enough to stay useful: down to half
	// the budget, the same hysteresis the level-local pass targets.
	take := len(live) - h.maxRuns()/2 + 1
	if take < 2 {
		return
	}
	if take > len(live) {
		take = len(live)
	}
	vecs := make([]*aem.Vector, 0, take)
	deepest := 0
	for _, lr := range live[:take] {
		vecs = append(vecs, h.suffixVector(lr.r))
		if lr.level > deepest {
			deepest = lr.level
		}
		lvl := h.levels[lr.level]
		for i, r := range lvl {
			if r == lr.r {
				h.levels[lr.level] = append(lvl[:i], lvl[i+1:]...)
				break
			}
		}
	}
	merged := sorting.MergeRuns(h.ma, vecs, sorting.MergeOptions{})
	h.addRun(deepest+1, &run{vec: merged, frameLo: -1})
}

func (h *runLevels) dropFrames() {
	for _, lv := range h.levels {
		for _, r := range lv {
			r.frame, r.frameLo = nil, -1
		}
	}
	if h.framesIn {
		h.ma.Release(h.framesRes)
		h.framesIn = false
	}
}

// suffixVector returns a vector of the run's unconsumed items. A
// block-aligned frontier is a free slice view; otherwise the suffix is
// copied (O(remaining/B) I/Os, amortized into the merge that needed it).
func (h *runLevels) suffixVector(r *run) *aem.Vector {
	b := h.cfg.B
	if r.consumed%b == 0 {
		return r.vec.Slice(r.consumed, r.vec.Len())
	}
	out := aem.NewVector(h.ma, r.remaining())
	w := out.NewWriter()
	sc := r.vec.Slice((r.consumed/b)*b, r.vec.Len()).NewScanner()
	skip := r.consumed % b
	for {
		it, ok := sc.Next()
		if !ok {
			break
		}
		if skip > 0 {
			skip--
			continue
		}
		w.Append(it)
	}
	sc.Close()
	w.Close()
	return out
}

func (h *runLevels) totalRuns() int {
	total := 0
	for _, lv := range h.levels {
		total += len(lv)
	}
	return total
}

// liveRuns returns every run in level-then-index order — the iteration
// order the refill's selection tie-breaks by.
func (h *runLevels) liveRuns() []*run {
	runs := make([]*run, 0, h.totalRuns())
	for _, lv := range h.levels {
		runs = append(runs, lv...)
	}
	return runs
}

// loadFrontier makes sure the block containing the run's next unconsumed
// item is resident (one read when the frontier crosses a block boundary).
func (h *runLevels) loadFrontier(r *run) {
	if r.frameLo >= 0 && r.consumed >= r.frameLo && r.consumed < r.frameLo+len(r.frame) {
		return
	}
	if r.frameBuf == nil {
		r.frameBuf = make([]aem.Item, 0, h.cfg.B)
	}
	r.frame, r.frameLo = r.vec.ReadBlockInto(r.consumed, r.frameBuf)
}

// Queue is an external-memory min-priority queue of aem.Items ordered by
// the (Key, Aux) total order — the classic sequence heap.
type Queue struct {
	runLevels

	insertBuf []aem.Item // unsorted, capacity capIB
	deleteBuf []aem.Item // ascending; deleteBuf[0] is the global minimum
	capIB     int
	capDB     int

	size int

	baseRes int // IB + DB reservation, held for the queue's lifetime
}

// New creates an empty queue on the machine, reserving ~3M/4 of internal
// memory (buffers + run frames) for its lifetime; Close releases it.
// Requires M ≥ 16B.
func New(ma *aem.Machine) *Queue {
	cfg := ma.Config()
	if cfg.M < 16*cfg.B {
		panic(fmt.Sprintf("pq: need M ≥ 16B, got M=%d B=%d", cfg.M, cfg.B))
	}
	q := &Queue{
		capIB: cfg.M / 8,
		capDB: cfg.M / 8,
	}
	q.baseRes = q.capIB + q.capDB
	ma.Reserve(q.baseRes)
	q.initLevels(ma)
	return q
}

// Close releases the queue's internal memory. The queue must be empty.
func (q *Queue) Close() {
	if q.size != 0 {
		panic(fmt.Sprintf("pq: Close with %d items still queued", q.size))
	}
	q.ma.Release(q.baseRes)
	q.closeLevels()
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return q.size }

// Push inserts an item.
func (q *Queue) Push(it aem.Item) {
	// If it sorts below the current deletion-buffer maximum it must enter
	// the deletion buffer, or DeleteMin order would break.
	if len(q.deleteBuf) > 0 && aem.Less(it, q.deleteBuf[len(q.deleteBuf)-1]) {
		q.deleteBuf = insertSorted(q.deleteBuf, it)
		if len(q.deleteBuf) > q.capDB {
			last := q.deleteBuf[len(q.deleteBuf)-1]
			q.deleteBuf = q.deleteBuf[:len(q.deleteBuf)-1]
			q.pushInsertBuf(last)
		}
	} else {
		q.pushInsertBuf(it)
	}
	q.size++
}

func (q *Queue) pushInsertBuf(it aem.Item) {
	q.insertBuf = append(q.insertBuf, it)
	if len(q.insertBuf) >= q.capIB {
		q.flushInsertBuf()
	}
}

// flushInsertBuf sorts the insertion buffer and writes it as a level-0
// run, compacting levels if the run budget is exceeded.
func (q *Queue) flushInsertBuf() {
	if len(q.insertBuf) == 0 {
		return
	}
	sortItems(q.insertBuf)
	vec := aem.NewVector(q.ma, len(q.insertBuf))
	w := vec.NewWriter()
	for _, it := range q.insertBuf {
		w.Append(it)
	}
	w.Close()
	q.insertBuf = q.insertBuf[:0]
	q.addRun(0, &run{vec: vec, frameLo: -1})
	if q.totalRuns() > q.maxRuns() {
		q.compact()
	}
}

// Min returns the smallest item without removing it. Like DeleteMin it
// may trigger a refill — folding the insertion buffer into a run and
// paying its ω-weighted writes — so peeking is not free on a queue with
// an unflushed buffer.
func (q *Queue) Min() (aem.Item, bool) {
	if q.size == 0 {
		return aem.Item{}, false
	}
	q.ensureDeleteBuf()
	return q.deleteBuf[0], true
}

// DeleteMin removes and returns the smallest item.
func (q *Queue) DeleteMin() (aem.Item, bool) {
	if q.size == 0 {
		return aem.Item{}, false
	}
	q.ensureDeleteBuf()
	it := q.deleteBuf[0]
	q.deleteBuf = q.deleteBuf[1:]
	q.size--
	return it, true
}

// ensureDeleteBuf refills the deletion buffer with the capDB smallest
// unconsumed items across the insertion buffer and all run frontiers. The
// selection runs through a tournament tree over the run frontiers, so a
// refill costs O(capDB · log(live runs)) head comparisons instead of the
// linear rescan's O(capDB · live runs); the I/O schedule is identical
// (see frontierTree).
func (q *Queue) ensureDeleteBuf() {
	if len(q.deleteBuf) > 0 {
		return
	}
	// Fold the insertion buffer into a run so every source is sorted.
	// (At most once per capIB insertions or capDB deletions.)
	q.flushInsertBuf()

	buf := make([]aem.Item, 0, q.capDB)
	ft := newFrontierTree(q.liveRuns(), q.loadFrontier)
	for len(buf) < q.capDB {
		best, ok := ft.min()
		if !ok {
			break
		}
		buf = append(buf, best.head())
		ft.pop()
	}
	q.deleteBuf = buf
	if q.size > 0 && len(q.deleteBuf) == 0 {
		panic("pq: refill produced nothing despite non-empty queue")
	}
}

// insertSorted inserts it into the ascending slice.
func insertSorted(buf []aem.Item, it aem.Item) []aem.Item {
	return aem.InsertSorted(buf, it)
}

// sortItems is an in-place sort by (Key, Aux); internal computation is
// free in the model.
func sortItems(items []aem.Item) {
	if len(items) < 16 {
		for i := 1; i < len(items); i++ {
			for j := i; j > 0 && aem.Less(items[j], items[j-1]); j-- {
				items[j], items[j-1] = items[j-1], items[j]
			}
		}
		return
	}
	pivot := items[len(items)/2]
	lo, hi := 0, len(items)-1
	for lo <= hi {
		for aem.Less(items[lo], pivot) {
			lo++
		}
		for aem.Less(pivot, items[hi]) {
			hi--
		}
		if lo <= hi {
			items[lo], items[hi] = items[hi], items[lo]
			lo++
			hi--
		}
	}
	sortItems(items[:hi+1])
	sortItems(items[lo:])
}

// HeapSort sorts v by pushing every item through a Queue — the heapsort
// baseline (classic EM sequence heap on the AEM machine).
func HeapSort(ma *aem.Machine, v *aem.Vector) *aem.Vector {
	q := New(ma)
	out := heapSortThrough(ma, v, q)
	q.Close()
	return out
}

// minQueue is the interface both queues implement.
type minQueue interface {
	Push(aem.Item)
	DeleteMin() (aem.Item, bool)
	Len() int
	Close()
}

// heapSortThrough streams v through any queue and collects the ordered
// output.
func heapSortThrough(ma *aem.Machine, v *aem.Vector, q minQueue) *aem.Vector {
	sc := v.NewScanner()
	for {
		it, ok := sc.Next()
		if !ok {
			break
		}
		q.Push(it)
	}
	sc.Close()

	out := aem.NewVector(ma, v.Len())
	w := out.NewWriter()
	for {
		it, ok := q.DeleteMin()
		if !ok {
			break
		}
		w.Append(it)
	}
	w.Close()
	return out
}
