package repro

import (
	"testing"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/flash"
	"repro/internal/permute"
	"repro/internal/pq"
	"repro/internal/program"
	"repro/internal/sorting"
	"repro/internal/spmxv"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSortersAgree runs every sorting algorithm in the repository on the
// same inputs and machines and demands identical outputs.
func TestSortersAgree(t *testing.T) {
	cfgs := []aem.Config{
		{M: 64, B: 8, Omega: 1},
		{M: 64, B: 8, Omega: 4},
		{M: 128, B: 4, Omega: 32},
	}
	for _, cfg := range cfgs {
		for _, dist := range workload.Dists() {
			in := workload.Keys(workload.NewRNG(99), dist, 3000)
			var ref []aem.Item
			for name, sortFn := range map[string]func(*aem.Machine, *aem.Vector) *aem.Vector{
				"mergesort": sorting.MergeSort,
				"emsort":    sorting.EMMergeSort,
				"samplesort": func(ma *aem.Machine, v *aem.Vector) *aem.Vector {
					return sorting.EMSampleSort(ma, v, 5)
				},
				"heapsort":          pq.HeapSort,
				"adaptive-heapsort": pq.AdaptiveHeapSort,
			} {
				if (name == "heapsort" || name == "adaptive-heapsort") && cfg.M < 16*cfg.B {
					continue // below the queues' documented minimum
				}
				ma := aem.New(cfg)
				got := sortFn(ma, aem.Load(ma, in)).Materialize()
				if !sorting.IsSorted(got) {
					t.Fatalf("%s cfg=%+v dist=%v: not sorted", name, cfg, dist)
				}
				if ref == nil {
					ref = got
					continue
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%s cfg=%+v dist=%v: outputs disagree at %d", name, cfg, dist, i)
					}
				}
			}
		}
	}
}

// TestPermuteThenSortRoundTrip permutes with one strategy and inverts with
// the other; the composition must be the identity.
func TestPermuteThenSortRoundTrip(t *testing.T) {
	cfg := aem.Config{M: 128, B: 8, Omega: 4}
	const n = 2048
	ma := aem.New(cfg)
	items, perm := workload.Permutation(workload.NewRNG(3), n)
	v := aem.Load(ma, items)

	forward := permute.Direct(ma, v, perm)
	// Re-tag each item with its original position (stored in Aux) as the
	// new destination, then invert by sorting.
	tagged := forward.Materialize()
	for i := range tagged {
		tagged[i] = aem.Item{Key: tagged[i].Aux, Aux: tagged[i].Aux}
	}
	back := permute.SortBased(ma, aem.Load(ma, tagged))
	got := back.Materialize()
	for i, it := range got {
		if it.Aux != int64(i) {
			t.Fatalf("round trip broke at position %d: %v", i, it)
		}
	}
}

// TestTraceOfSortConvertsAndDecomposes ties three modules together: a real
// mergesort execution's trace decomposes into valid §4 rounds and its
// Lemma 4.1 conversion respects the budget.
func TestTraceOfSortConvertsAndDecomposes(t *testing.T) {
	cfg := aem.Config{M: 64, B: 8, Omega: 8}
	ma := aem.New(cfg)
	ma.StartTrace()
	in := workload.Keys(workload.NewRNG(4), workload.Random, 4096)
	sorting.MergeSort(ma, aem.Load(ma, in))
	ops := ma.StopTrace()

	rounds := trace.Decompose(ops, cfg)
	if err := trace.CheckDecomposition(rounds, ops, cfg); err != nil {
		t.Fatal(err)
	}
	conv := trace.Convert(ops, cfg)
	if budget := 3*conv.Original + 4*int64(cfg.Omega)*int64(cfg.BlocksInMemory()); conv.Converted > budget {
		t.Errorf("conversion %d exceeds budget %d", conv.Converted, budget)
	}
	// The trace's own cost must equal the machine's accounting.
	if conv.Original != ma.Cost() {
		t.Errorf("trace cost %d != machine cost %d", conv.Original, ma.Cost())
	}
}

// TestCountingBoundFloorsEverySorter checks Theorem 4.5 against every
// sorting algorithm: no measured cost may beat the counting lower bound
// (evaluated at 2M per Corollary 4.2).
func TestCountingBoundFloorsEverySorter(t *testing.T) {
	cfg := aem.Config{M: 128, B: 8, Omega: 8}
	const n = 1 << 13
	lb := bounds.CountingLowerBound(bounds.Params{N: n,
		Cfg: aem.Config{M: 2 * cfg.M, B: cfg.B, Omega: cfg.Omega}})
	in := workload.Keys(workload.NewRNG(5), workload.Random, n)
	for name, sortFn := range map[string]func(*aem.Machine, *aem.Vector) *aem.Vector{
		"mergesort": sorting.MergeSort,
		"emsort":    sorting.EMMergeSort,
		"samplesort": func(ma *aem.Machine, v *aem.Vector) *aem.Vector {
			return sorting.EMSampleSort(ma, v, 6)
		},
		"heapsort":          pq.HeapSort,
		"adaptive-heapsort": pq.AdaptiveHeapSort,
	} {
		ma := aem.New(cfg)
		sortFn(ma, aem.Load(ma, in))
		if float64(ma.Cost()) < lb {
			t.Errorf("%s cost %d beats the lower bound %.0f — impossible; simulator accounting broken", name, ma.Cost(), lb)
		}
	}
}

// TestSpMxVBothAlgorithmsAllRegimes crosses δ regimes with machines on
// both sides of the Theorem 5.1 min{} and verifies against the dense
// reference every time.
func TestSpMxVBothAlgorithmsAllRegimes(t *testing.T) {
	for _, cfg := range []aem.Config{
		{M: 64, B: 4, Omega: 64}, // naive regime
		{M: 256, B: 32, Omega: 1},
	} {
		for _, delta := range []int{1, 3, 4, 5, 32, 33} {
			rng := workload.NewRNG(uint64(delta) + 7)
			conf := workload.NewConformation(rng, 128, delta)
			values := make([]int64, conf.H())
			for i := range values {
				values[i] = int64(rng.Intn(9) - 4)
			}
			x := make([]int64, 128)
			for i := range x {
				x[i] = int64(rng.Intn(9) - 4)
			}
			for name, f := range map[string]func(*aem.Machine, *spmxv.Matrix, *aem.Vector) *aem.Vector{
				"naive": spmxv.Naive,
				"sort":  spmxv.SortBased,
			} {
				ma := aem.New(cfg)
				m := spmxv.NewMatrix(ma, conf, values)
				y := f(ma, m, spmxv.LoadDense(ma, x))
				if err := spmxv.VerifyProduct(conf, values, x, y); err != nil {
					t.Fatalf("%s cfg=%+v δ=%d: %v", name, cfg, delta, err)
				}
			}
		}
	}
}

// TestProofPipelineAtScale runs the program → Lemma 4.1 → Lemma 4.3 chain
// on a larger permutation than the unit tests use and checks every paper
// budget along the way.
func TestProofPipelineAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second pipeline")
	}
	cfg := aem.Config{M: 64, B: 16, Omega: 4}
	const n = 4096
	_, perm := workload.Permutation(workload.NewRNG(8), n)
	p, err := program.FromPermutation(cfg, perm)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := program.Run(p, program.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := program.ConvertToRoundBased(p)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := program.Run(rb, program.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Placement.Equal(conv.Placement) {
		t.Fatal("Lemma 4.1 changed the permutation")
	}
	if budget := 3*orig.Cost(cfg.Omega) + 4*int64(cfg.Omega)*int64(cfg.BlocksInMemory()); conv.Cost(cfg.Omega) > budget {
		t.Errorf("Lemma 4.1 cost %d > budget %d", conv.Cost(cfg.Omega), budget)
	}
	fp, err := flash.SimulateAEM(rb)
	if err != nil {
		t.Fatal(err)
	}
	res, err := flash.Run(fp)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Volume() > flash.VolumeBound(rb) {
		t.Errorf("Lemma 4.3 volume %d > bound %d", fp.Volume(), flash.VolumeBound(rb))
	}
	for a, addr := range orig.Placement {
		if res.Placement[a] != addr {
			t.Fatal("Lemma 4.3 changed the permutation")
		}
	}
	// And the chain's cost is floored by the counting bound at 2·(2M).
	lb := bounds.CountingLowerBound(bounds.Params{N: n,
		Cfg: aem.Config{M: 2 * rb.Cfg.M, B: cfg.B, Omega: cfg.Omega}})
	if float64(rb.Cost()) < lb {
		t.Errorf("round-based program cost %d beats counting bound %.0f", rb.Cost(), lb)
	}
}

// TestOmegaOneIsSymmetricEM checks the model degeneration the paper notes:
// at ω = 1 the AEM is the classic EM model, so the AEM mergesort's cost
// equals its read+write total and the bounds coincide.
func TestOmegaOneIsSymmetricEM(t *testing.T) {
	cfg := aem.Config{M: 128, B: 8, Omega: 1}
	ma := aem.New(cfg)
	in := workload.Keys(workload.NewRNG(9), workload.Random, 4096)
	sorting.MergeSort(ma, aem.Load(ma, in))
	if ma.Cost() != ma.Stats().IOs() {
		t.Errorf("ω=1 cost %d != total I/Os %d", ma.Cost(), ma.Stats().IOs())
	}
	p := bounds.Params{N: 4096, Cfg: cfg}
	if bounds.PermutingLowerBoundClosed(p) != bounds.EMSortLowerBound(p) {
		t.Error("ω=1 AEM bound differs from Aggarwal–Vitter bound")
	}
}

// TestARAMIsBOneAEM checks the other degeneration: the (M,ω)-ARAM of
// Blelloch et al. is the (M,1,ω)-AEM. All sorting machinery must work at
// B = 1.
func TestARAMIsBOneAEM(t *testing.T) {
	cfg := aem.Config{M: 32, B: 1, Omega: 16}
	ma := aem.New(cfg)
	in := workload.Keys(workload.NewRNG(10), workload.Random, 512)
	out := sorting.MergeSort(ma, aem.Load(ma, in))
	if !sorting.IsSorted(out.Materialize()) {
		t.Fatal("B=1 (ARAM) sort failed")
	}
	// Every I/O moves one item: reads+writes ≥ N is forced.
	if ma.Stats().IOs() < 512 {
		t.Errorf("ARAM sort did %d I/Os for 512 items", ma.Stats().IOs())
	}
}
