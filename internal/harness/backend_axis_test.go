package harness

import (
	"strings"
	"testing"
)

// TestBackendAxisStatsEquality runs the auxiliary storage-backend sweeps
// and pins the ROADMAP claim they exist for: at every grid point, every
// engine that serves the point produces I/O accounting identical to the
// slice reference — the "vs slice" cell must read "=" (or "ref" for the
// reference row itself), never DIFF.
func TestBackendAxisStatsEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every algorithm on every backend")
	}
	for _, id := range []string{"EXP-BE1", "EXP-BE2"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			s, ok := ByID(id)
			if !ok {
				t.Fatalf("%s missing from the auxiliary registry", id)
			}
			var tbl *Table
			Run([]*Spec{s}, 4, func(x *Table) { tbl = x })
			if len(tbl.Rows) == 0 {
				t.Fatal("backend sweep produced no rows")
			}
			eq := len(tbl.Columns) - 1
			if tbl.Columns[eq] != "vs slice" {
				t.Fatalf("last column is %q, want the vs slice equality column", tbl.Columns[eq])
			}
			perAlg := map[string]int{}
			for _, row := range tbl.Rows {
				if row[eq] != "=" && row[eq] != "ref" {
					t.Errorf("%s on %s: cross-engine accounting diverged: %s", row[0], row[1], row[eq])
				}
				perAlg[row[0]]++
				if row[1] == "counting" && !(id == "EXP-BE2" && row[0] == "naive") {
					t.Errorf("counting engine served %s/%s, which branches on block contents", row[0], row[1])
				}
			}
			// Every algorithm must have run on both data-bearing engines
			// (slice + arena), so the equality column compared something.
			for alg, n := range perAlg {
				if n < 2 {
					t.Errorf("%s ran on %d backend(s); the axis must span at least slice and arena", alg, n)
				}
			}
		})
	}
}

// TestAuxRegistrySeparation: auxiliary specs resolve by id and are listed
// separately, but never leak into All() — which is what keeps the default
// `aem bench` output and its goldens byte-stable.
func TestAuxRegistrySeparation(t *testing.T) {
	for _, s := range Aux() {
		if _, ok := ByID(s.ID); !ok {
			t.Errorf("aux spec %s not resolvable by id", s.ID)
		}
		for _, reg := range All() {
			if reg.ID == s.ID {
				t.Errorf("aux spec %s leaked into All()", s.ID)
			}
		}
	}
	specs, warns, err := Select("EXP-BE1,EXP-BE2")
	if err != nil || len(warns) != 0 || len(specs) != 2 {
		t.Fatalf("Select over aux ids: %d specs, warns %v, err %v", len(specs), warns, err)
	}
	all, _, err := Select("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		if strings.HasPrefix(s.ID, "EXP-BE") {
			t.Errorf("Select(all) included aux spec %s", s.ID)
		}
	}
}
