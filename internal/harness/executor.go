package harness

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the execution substrate of the scenario engine. A Spec
// describes *what* a grid point measures; an Executor decides *where and
// how* the points run. The split mirrors the paper's own separation of
// cost model from machine: the grid is the model, the executor is the
// machine. Three implementations exist:
//
//   - LocalPool     — the in-process point-granular shared worker pool
//     (the substrate behind Run and `aem bench`);
//   - ShardExecutor — runs a deterministic 1/m slice of the global point
//     list and streams self-describing point records (record.go), for
//     sharded CI jobs and remote workers;
//   - MergeShards   — not an executor itself but the inverse of
//     ShardExecutor: it reassembles shard outputs into the exact tables
//     an unsharded run emits (merge.go).
type Executor interface {
	// Execute runs the specs' grids. Table-producing executors call emit
	// exactly once per spec in spec order (see LocalPool); record-streaming
	// executors never call emit. The returned error reports infrastructure
	// failures (e.g. a record sink write error); experiment failures follow
	// each executor's own contract.
	Execute(specs []*Spec, emit func(*Table)) error
}

// job addresses one grid point of one spec.
type job struct{ si, pi int }

// specState accumulates one spec's per-point results while its grid runs,
// on whichever executor. The same state is rebuilt from point records at
// merge time, so the assembly and failure-aggregation paths downstream of
// it are shared — sharded and unsharded runs cannot drift apart.
type specState struct {
	pts     []Point
	rows    []Row
	cells   [][]string
	wallNS  []int64
	panicAt []string // per point, "" = ok
	nfail   int64
	pending int64
	done    chan struct{}
}

// newSpecStates enumerates every spec's grid into a fresh state. Grid
// enumeration runs spec-authored hooks (Dyn axes, Skip), so a panic there
// is an experiment failure like any other: it is recorded exactly as Run
// has always reported it, with the "grid enumeration:" prefix.
func newSpecStates(specs []*Spec) []*specState {
	sts := make([]*specState, len(specs))
	for si, s := range specs {
		st := &specState{done: make(chan struct{})}
		func() {
			defer func() {
				if r := recover(); r != nil {
					st.panicAt = []string{fmt.Sprintf("grid enumeration: %v", r)}
					st.nfail = 1
				}
			}()
			st.pts = s.Points()
		}()
		st.rows = make([]Row, len(st.pts))
		st.cells = make([][]string, len(st.pts))
		st.wallNS = make([]int64, len(st.pts))
		if st.nfail == 0 {
			st.panicAt = make([]string, len(st.pts))
		}
		st.pending = int64(len(st.pts))
		sts[si] = st
	}
	return sts
}

// enumFailed reports whether grid enumeration itself panicked (the state
// then has no per-point slots).
func (st *specState) enumFailed() bool {
	return st.nfail > 0 && len(st.pts) == 0
}

// runPoint measures one grid point on the calling goroutine, recording
// the raw row, the rendered cells, the wall-clock spent, and — if the
// point function or a column hook panics — the panic message.
func (st *specState) runPoint(s *Spec, pi int) {
	start := time.Now()
	defer func() {
		st.wallNS[pi] = time.Since(start).Nanoseconds()
		if r := recover(); r != nil {
			st.panicAt[pi] = fmt.Sprint(r)
			atomic.AddInt64(&st.nfail, 1)
		}
	}()
	p := st.pts[pi]
	row := s.Point(p)
	st.cells[pi] = s.cells(p, row)
	st.rows[pi] = row
}

// runJobs measures the given grid points on a pool of at most par
// goroutines (par ≥ 1), invoking onDone — if non-nil — on the worker
// after each point completes. It returns without waiting; callers that
// need a barrier Wait on the returned group. Both executors schedule
// through here, so their point-level behavior cannot drift apart.
func runJobs(specs []*Spec, sts []*specState, jobs []job, par int, onDone func(job)) *sync.WaitGroup {
	jobCh := make(chan job)
	go func() {
		for _, j := range jobs {
			jobCh <- j
		}
		close(jobCh)
	}()
	workers := par
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				sts[j.si].runPoint(specs[j.si], j.pi)
				if onDone != nil {
					onDone(j)
				}
			}
		}()
	}
	return &wg
}

// failureMsg aggregates the state's failures into the message Run has
// always paniced with: the first failed point in grid order —
// deterministic at any parallelism — plus a count of the rest.
func (st *specState) failureMsg() (string, bool) {
	nfail := atomic.LoadInt64(&st.nfail)
	if nfail == 0 {
		return "", false
	}
	var msg string
	for _, pm := range st.panicAt {
		if pm != "" {
			msg = pm
			break
		}
	}
	if nfail > 1 {
		msg = fmt.Sprintf("%s (and %d more failed points)", msg, nfail-1)
	}
	return msg, true
}

// completeSpec is the shared tail of every table-producing path: it turns
// one finished spec state into either an emitted table or an entry in the
// aggregated failure list. Nothing is emitted from the first failed spec
// onward, so the emitted prefix is deterministic. With timing set, the
// per-point wall-clock is attached to the table as opt-in timing columns.
func completeSpec(s *Spec, st *specState, failures *[]string, timing bool, emit func(*Table)) {
	if msg, failed := st.failureMsg(); failed {
		*failures = append(*failures, fmt.Sprintf("%s: %s", s.ID, msg))
		return
	}
	if len(*failures) > 0 {
		return
	}
	var tbl *Table
	if perr := func() (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		tbl = s.assemble(st.rows, st.cells)
		return ""
	}(); perr != "" {
		*failures = append(*failures, fmt.Sprintf("%s: %s", s.ID, perr))
		return
	}
	if timing {
		tbl.WallNS = st.wallNS
	}
	emit(tbl)
}

// panicOnFailures re-panics with every failed experiment aggregated —
// multiple failures are reported, not dropped.
func panicOnFailures(failures []string) {
	switch len(failures) {
	case 0:
	case 1:
		panic("harness: experiment " + failures[0])
	default:
		panic(fmt.Sprintf("harness: %d experiments failed: %s", len(failures), strings.Join(failures, "; ")))
	}
}

// LocalPool runs every grid point of every spec on one shared in-process
// worker pool of at most Par goroutines — the executor behind Run and the
// default `aem bench` path. Scheduling is point-granular: a single slow
// experiment spreads across the pool instead of pinning one worker. Every
// point owns a private machine and fixed seeds, so the emitted tables are
// byte-identical at every Par — parallelism changes wall-clock time,
// never output. Par < 1 is treated as 1.
//
// Timing attaches each point's wall-clock to the emitted tables (see
// Table.WallNS). It is off by default so recorded goldens stay stable;
// the timing values themselves are naturally nondeterministic.
//
// If points panic, Execute drains the in-flight work, skips emission from
// the first failed spec onward, and panics with every failed experiment
// ID and its first panic message, exactly as Run documents.
type LocalPool struct {
	Par    int
	Timing bool
}

// Execute implements Executor. It always returns nil: local execution has
// no infrastructure failure mode, and experiment failures panic per the
// harness contract.
func (e *LocalPool) Execute(specs []*Spec, emit func(*Table)) error {
	par := e.Par
	if par < 1 {
		par = 1
	}
	if len(specs) == 0 {
		return nil
	}

	sts := newSpecStates(specs)
	var jobs []job
	for si, st := range sts {
		if st.enumFailed() || len(st.pts) == 0 {
			close(st.done)
			continue
		}
		for pi := range st.pts {
			jobs = append(jobs, job{si, pi})
		}
	}

	wg := runJobs(specs, sts, jobs, par, func(j job) {
		st := sts[j.si]
		if atomic.AddInt64(&st.pending, -1) == 0 {
			close(st.done)
		}
	})

	var failures []string
	for si, s := range specs {
		st := sts[si]
		<-st.done
		completeSpec(s, st, &failures, e.Timing, emit)
	}
	wg.Wait()
	panicOnFailures(failures)
	return nil
}
