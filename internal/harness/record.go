package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// This file is the wire format of sharded execution: one shard = one
// JSON Lines stream, a manifest line followed by one self-describing
// record per grid point the shard owns. The records carry everything the
// merge path needs to reassemble the exact tables an unsharded run emits
// — raw row values (for re-running derived/summary columns over the full
// merged grid), pre-rendered cells (so value formatting happens exactly
// once, on the worker that measured the point), panic info (so failure
// aggregation survives the merge), and the point's wall-clock.
//
// The same PointRecord is also the fleet protocol payload: `aem work`
// streams these records over HTTP to the `aem serve` coordinator, which
// writes the accepted ones as a single 1-of-1 shard stream — so a fleet
// run's output merges through exactly the code path a CI shard matrix
// uses. A ResidualSpec names the points an interrupted run is missing;
// RunResidual turns one into a residual shard stream that completes the
// original partial outputs at merge time.

// ShardManifest is the first line of every shard file: which slice of
// which run this file holds. Merge validation is built on it — shard
// files from different partitions, selections or registry versions are
// rejected instead of silently producing a wrong table.
type ShardManifest struct {
	Type        string   `json:"type"` // "shard"
	Shard       int      `json:"shard"`
	Of          int      `json:"of"`
	Experiments []string `json:"experiments"`
	GridPoints  int      `json:"grid_points"` // global point count across all experiments

	// Residual marks a stream whose points were chosen by a ResidualSpec
	// rather than by round-robin partition — the output of `aem work
	// -residual`, produced to complete an interrupted run. MergeShards
	// relaxes the shard-set checks that assume one partition (shard
	// presence, ownership) when a residual file is in the mix; the
	// point-level checks (missing, duplicated, torn) still apply.
	Residual bool `json:"residual,omitempty"`
}

// GridRef names one grid point globally: an experiment ID plus the
// point's index in that experiment's grid enumeration. It is the unit
// the fleet coordinator leases to workers and the unit a ResidualSpec
// lists as missing.
type GridRef struct {
	Experiment string `json:"experiment"`
	Index      int    `json:"index"`
}

// ResidualSpec is the machine-readable remainder of an interrupted run:
// every grid point the merged partial outputs are missing, across all
// specs, plus enough of the original run's identity (selection and
// global grid size) for the resume to detect registry drift. `aem merge
// -residual` writes one when the shard set is incomplete; `aem work
// -residual` runs exactly these points and emits a residual shard
// stream, so resume is one command.
type ResidualSpec struct {
	Type        string    `json:"type"` // "residual"
	Experiments []string  `json:"experiments"`
	GridPoints  int       `json:"grid_points"`
	Missing     []GridRef `json:"missing"`
}

// WriteResidual writes the spec as indented JSON.
func (rs *ResidualSpec) WriteResidual(w io.Writer) error {
	raw, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}

// ReadResidualSpec parses a residual spec written by WriteResidual.
func ReadResidualSpec(r io.Reader) (*ResidualSpec, error) {
	var rs ResidualSpec
	if err := json.NewDecoder(r).Decode(&rs); err != nil {
		return nil, fmt.Errorf("residual spec: %v", err)
	}
	if rs.Type != "residual" {
		return nil, fmt.Errorf("residual spec: type %q, want %q", rs.Type, "residual")
	}
	if len(rs.Missing) == 0 {
		return nil, fmt.Errorf("residual spec: no missing points listed")
	}
	return &rs, nil
}

// PointRecord is one grid point's result. Points is the experiment's
// total grid size, a per-record consistency check against the merging
// binary's own grid enumeration. Row is the raw measurement row — JSON
// round-tripping decodes its numbers as float64, which the derived-column
// machinery (toFloat) accepts losslessly for every measurement the
// simulator produces. A panicked point carries the panic message instead
// of row and cells.
type PointRecord struct {
	Type       string        `json:"type"` // "point"
	Experiment string        `json:"experiment"`
	Index      int           `json:"index"`  // grid index within the experiment
	Points     int           `json:"points"` // the experiment's total grid points
	Row        []interface{} `json:"row,omitempty"`
	Cells      []string      `json:"cells,omitempty"`
	Panic      string        `json:"panic,omitempty"`
	WallNS     int64         `json:"wall_ns"`
}

// ShardFile is one parsed shard output.
type ShardFile struct {
	Manifest ShardManifest
	Records  []PointRecord
}

// ReadShardFile parses one shard's JSON Lines output.
func ReadShardFile(r io.Reader) (*ShardFile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var sf *ShardFile
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			return nil, fmt.Errorf("shard line %d: %v", line, err)
		}
		switch kind.Type {
		case "shard":
			if sf != nil {
				return nil, fmt.Errorf("shard line %d: second manifest in one file", line)
			}
			sf = &ShardFile{}
			if err := json.Unmarshal(raw, &sf.Manifest); err != nil {
				return nil, fmt.Errorf("shard line %d: %v", line, err)
			}
		case "point":
			if sf == nil {
				return nil, fmt.Errorf("shard line %d: point record before the shard manifest", line)
			}
			var rec PointRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("shard line %d: %v", line, err)
			}
			sf.Records = append(sf.Records, rec)
		default:
			return nil, fmt.Errorf("shard line %d: unknown record type %q", line, kind.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if sf == nil {
		return nil, fmt.Errorf("not a shard file: no manifest record")
	}
	return sf, nil
}

// ShardExecutor runs shard Index of Count: the global point list — every
// spec's grid in spec order, each grid in grid order — is partitioned
// round-robin by global index, so the partition is deterministic, stable
// across shards, and balanced even when one experiment dominates the
// grid. Owned points run on a local pool of at most Par goroutines
// (Par < 1 is treated as 1); results stream to W as JSON Lines point
// records in grid order, preceded by the shard manifest.
//
// Unlike LocalPool, a panicking point is not fatal here: its panic
// message travels in the point's record and surfaces — aggregated across
// shards, exactly as an unsharded run would report it — when the shards
// are merged. Execute still returns an error naming every kind of
// failure — panicked points and panicked grid enumerations alike — so a
// sharded CI job fails fast, but only after every record has been
// written. emit is never called.
type ShardExecutor struct {
	Index, Count int
	Par          int
	W            io.Writer
}

// Execute implements Executor.
func (e *ShardExecutor) Execute(specs []*Spec, emit func(*Table)) error {
	if e.Count < 1 || e.Index < 0 || e.Index >= e.Count {
		return fmt.Errorf("shard %d/%d out of range", e.Index, e.Count)
	}
	par := e.Par
	if par < 1 {
		par = 1
	}

	sts := newSpecStates(specs)
	var jobs []job
	owned := make([]map[int]bool, len(specs))
	global, total := 0, 0
	for si, st := range sts {
		owned[si] = make(map[int]bool)
		for pi := range st.pts {
			if global%e.Count == e.Index {
				owned[si][pi] = true
				jobs = append(jobs, job{si, pi})
			}
			global++
		}
		total += len(st.pts)
	}

	runJobs(specs, sts, jobs, par, nil).Wait()

	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	enc := json.NewEncoder(e.W)
	if err := enc.Encode(ShardManifest{
		Type: "shard", Shard: e.Index, Of: e.Count,
		Experiments: ids, GridPoints: total,
	}); err != nil {
		return err
	}
	failed, enumFailed := 0, 0
	for si, s := range specs {
		st := sts[si]
		// A grid-enumeration panic produces no per-point slots; the merge
		// binary re-enumerates the same deterministic grid and reports the
		// identical failure itself, so nothing needs recording here — but
		// it must still fail this shard's exit code below: the per-point
		// counter never sees it.
		if st.enumFailed() {
			enumFailed++
			continue
		}
		for pi := range st.pts {
			if !owned[si][pi] {
				continue
			}
			rec := st.record(s, pi)
			if rec.Panic != "" {
				failed++
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return shardFailure(failed, enumFailed)
}

// record builds the wire record of one finished grid point.
func (st *specState) record(s *Spec, pi int) PointRecord {
	rec := PointRecord{
		Type: "point", Experiment: s.ID, Index: pi, Points: len(st.pts),
		WallNS: st.wallNS[pi],
	}
	if pm := st.panicAt[pi]; pm != "" {
		rec.Panic = pm
	} else {
		rec.Row = st.rows[pi]
		rec.Cells = st.cells[pi]
	}
	return rec
}

// shardFailure renders a record-streaming run's failure tally into its
// exit error: nil only when nothing panicked. Grid-enumeration panics
// carry no records (the merge binary reproduces them deterministically),
// but they must still fail the producing job.
func shardFailure(failed, enumFailed int) error {
	switch {
	case failed > 0 && enumFailed > 0:
		return fmt.Errorf("%d point(s) and %d grid enumeration(s) panicked; the failures are recorded in the shard output and will surface at merge", failed, enumFailed)
	case enumFailed > 0:
		return fmt.Errorf("%d grid enumeration(s) panicked; the failure reproduces at merge from the registry, no record needed", enumFailed)
	case failed > 0:
		return fmt.Errorf("%d point(s) panicked; the failures are recorded in the shard output and will surface at merge", failed)
	}
	return nil
}
