package aem

import (
	"fmt"
	"sort"
	"strings"
)

// Stats accumulates the I/O counts of a machine. Cost is derived as
// Reads + ω·Writes per the AEM cost definition.
type Stats struct {
	// Reads is the number of read I/Os performed.
	Reads int64
	// Writes is the number of write I/Os performed.
	Writes int64
}

// Cost returns Q = Reads + ω·Writes for the given write/read ratio.
func (s Stats) Cost(omega int) int64 {
	return s.Reads + int64(omega)*s.Writes
}

// Add returns the component-wise sum of two stats.
func (s Stats) Add(t Stats) Stats {
	return Stats{Reads: s.Reads + t.Reads, Writes: s.Writes + t.Writes}
}

// Sub returns the component-wise difference s − t.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes}
}

// IOs returns the total number of I/O operations regardless of kind.
func (s Stats) IOs() int64 { return s.Reads + s.Writes }

// String renders the stats in a compact human-readable form.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d", s.Reads, s.Writes)
}

// PhaseStats tracks I/O counts attributed to named phases of an algorithm,
// e.g. the "merge" and "base" phases of mergesort, so that experiments can
// report read/write splits per stage. The zero value is ready to use.
//
// Phases are stored behind stable pointers so the machine's I/O hot path
// can increment the current phase without a map lookup per operation.
type PhaseStats struct {
	phases map[string]*Stats
}

// slot returns the stable accumulator for the named phase, creating it on
// first use.
func (p *PhaseStats) slot(phase string) *Stats {
	if p.phases == nil {
		p.phases = make(map[string]*Stats)
	}
	s, ok := p.phases[phase]
	if !ok {
		s = &Stats{}
		p.phases[phase] = s
	}
	return s
}

// Record adds the delta to the named phase.
func (p *PhaseStats) Record(phase string, delta Stats) {
	s := p.slot(phase)
	*s = s.Add(delta)
}

// Phase returns the accumulated stats for the named phase.
func (p *PhaseStats) Phase(phase string) Stats {
	if s, ok := p.phases[phase]; ok {
		return *s
	}
	return Stats{}
}

// Phases returns the recorded phase names in sorted order.
func (p *PhaseStats) Phases() []string {
	names := make([]string, 0, len(p.phases))
	for name := range p.phases {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Total returns the sum over all phases.
func (p *PhaseStats) Total() Stats {
	var total Stats
	for _, s := range p.phases {
		total = total.Add(*s)
	}
	return total
}

// String renders per-phase stats, one phase per line, in sorted order.
func (p *PhaseStats) String() string {
	var b strings.Builder
	for _, name := range p.Phases() {
		fmt.Fprintf(&b, "%-12s %s\n", name, p.phases[name])
	}
	return b.String()
}
