package harness

import (
	"testing"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/pq"
	"repro/internal/workload"
)

// TestPQExperimentAcceptance pins EXP-Q1's claims as hard assertions: the
// ω-adaptive buffered queue's cost grows sublinearly in ω while the
// ω-oblivious sequence heap's grows ~linearly, the gap widens with ω, and
// measured costs stay within 2× of the bounds predictions — the
// acceptance criteria of the adaptive-pq issue.
func TestPQExperimentAcceptance(t *testing.T) {
	const n = 24000
	omegas := []int{1, 4, 8, 16, 32, 64}
	for _, sc := range []workload.PQScenario{workload.MixedPQ, workload.MonotonePQ} {
		ops := workload.PQOps(workload.NewRNG(Seed+16), sc, n)
		adCost := make([]float64, len(omegas))
		seqCost := make([]float64, len(omegas))
		adWrites := make([]float64, len(omegas))
		adFolds := make([]int, len(omegas))
		for i, w := range omegas {
			cfg := aem.Config{M: 256, B: 16, Omega: w}
			maA := aem.New(cfg)
			qa := pq.NewAdaptive(maA)
			runPQStream(qa, ops)
			maS := aem.New(cfg)
			runPQStream(pq.New(maS), ops)
			adCost[i] = float64(maA.Cost())
			seqCost[i] = float64(maS.Cost())
			adWrites[i] = float64(maA.Stats().Writes)
			adFolds[i] = qa.Folds()

			p := bounds.PQParamsFor(cfg, ops)
			for name, pair := range map[string][2]float64{
				"adaptive cost": {adCost[i], bounds.PQAdaptivePredicted(p).Cost(w)},
				"sequence cost": {seqCost[i], bounds.PQSequenceHeapPredicted(p).Cost(w)},
			} {
				ratio := pair[0] / pair[1]
				if ratio < 0.5 || ratio > 2 {
					t.Errorf("%s ω=%d: %s measured/predicted = %.2f outside [0.5, 2]", sc, w, name, ratio)
				}
			}
		}

		// Sublinear vs ~linear: over a 64× growth in ω the adaptive
		// queue's cost must grow by well under half of it, while the
		// sequence heap — whose reads and writes are ω-independent — must
		// track ω itself once ω dominates.
		wSpan := float64(omegas[len(omegas)-1]) / float64(omegas[0])
		adGrowth := adCost[len(adCost)-1] / adCost[0]
		if adGrowth > wSpan/2 {
			t.Errorf("%s: adaptive cost grew %.1f× over a %.0f× ω span — not sublinear", sc, adGrowth, wSpan)
		}
		top := (seqCost[len(seqCost)-1] - seqCost[len(seqCost)-2]) /
			(float64(omegas[len(omegas)-1]) - float64(omegas[len(omegas)-2]))
		bottom := (seqCost[2] - seqCost[1]) / (float64(omegas[2]) - float64(omegas[1]))
		if top < 0.5*bottom || top > 2*bottom {
			t.Errorf("%s: sequence-heap marginal cost/ω drifted (%.0f vs %.0f) — not ~linear in ω", sc, top, bottom)
		}
		// And the gap must widen: buffering wins more the more writes cost.
		if seqCost[len(seqCost)-1]/adCost[len(adCost)-1] <= seqCost[0]/adCost[0] {
			t.Errorf("%s: sequence/adaptive cost gap did not widen with ω", sc)
		}

		// On monotone traffic no below-watermark churn pins the fold
		// floor, so the ω-adaptivity must show in full: folds and write
		// volume fall hard as ω grows. A regression to ω-oblivious
		// folding (constant folds/writes across ω) fails here even if the
		// loose growth bounds above still pass.
		if sc == workload.MonotonePQ {
			if adFolds[len(adFolds)-1]*4 > adFolds[0] {
				t.Errorf("monotone: folds fell only %d → %d over a 64× ω span — rent policy not ω-adaptive",
					adFolds[0], adFolds[len(adFolds)-1])
			}
			if adWrites[len(adWrites)-1]*2 > adWrites[0] {
				t.Errorf("monotone: writes fell only %.0f → %.0f over a 64× ω span",
					adWrites[0], adWrites[len(adWrites)-1])
			}
		}
	}
}
