package harness

import (
	"testing"

	"repro/internal/aem"
	"repro/internal/bounds"
	"repro/internal/dict"
	"repro/internal/workload"
)

// TestDictExperimentAcceptance pins EXP-D1's claims as hard assertions:
// the buffer tree's cost grows sublinearly in ω while the unbatched
// B-tree's grows ~linearly, and both stay within 2× of the bounds
// predictions for reads and writes separately.
func TestDictExperimentAcceptance(t *testing.T) {
	const n, keyspace = 24000, 8192
	ops := workload.DictOps(workload.NewRNG(Seed+14), workload.UniformOps, n, keyspace)

	omegas := []int{1, 4, 8, 16, 32, 64}
	btCost := make([]float64, len(omegas))
	baseCost := make([]float64, len(omegas))
	for i, w := range omegas {
		cfg := aem.Config{M: 256, B: 16, Omega: w}
		maB := aem.New(cfg)
		dict.NewBufferTree(maB).Apply(ops)
		maT := aem.New(cfg)
		dict.NewBTree(maT).Apply(ops)
		btCost[i] = float64(maB.Cost())
		baseCost[i] = float64(maT.Cost())

		p := bounds.DictParamsFor(cfg, ops, keyspace)
		for name, pair := range map[string][2]float64{
			"buffertree reads":  {float64(maB.Stats().Reads), bounds.DictBufferTreePredicted(p).Reads},
			"buffertree writes": {float64(maB.Stats().Writes), bounds.DictBufferTreePredicted(p).Writes},
			"btree reads":       {float64(maT.Stats().Reads), bounds.DictBTreePredicted(p).Reads},
			"btree writes":      {float64(maT.Stats().Writes), bounds.DictBTreePredicted(p).Writes},
		} {
			ratio := pair[0] / pair[1]
			if ratio < 0.5 || ratio > 2 {
				t.Errorf("ω=%d: %s measured/predicted = %.2f outside [0.5, 2]", w, name, ratio)
			}
		}
	}

	// Sublinear vs ~linear: over a 64× growth in ω the buffer tree's cost
	// must grow by well under half of it, while the B-tree — paying ω on
	// its ~constant writes/op — must track ω itself once ω dominates.
	wSpan := float64(omegas[len(omegas)-1]) / float64(omegas[0])
	btGrowth := btCost[len(btCost)-1] / btCost[0]
	if btGrowth > wSpan/2 {
		t.Errorf("buffer tree cost grew %.1f× over a %.0f× ω span — not sublinear", btGrowth, wSpan)
	}
	// Affine check for the baseline: cost(ω) ≈ r + w·ω with w/op ≈ const.
	// Compare the marginal cost over the top octave with ω itself.
	top := (baseCost[len(baseCost)-1] - baseCost[len(baseCost)-2]) /
		(float64(omegas[len(omegas)-1]) - float64(omegas[len(omegas)-2]))
	bottom := (baseCost[2] - baseCost[1]) / (float64(omegas[2]) - float64(omegas[1]))
	if top < 0.5*bottom || top > 2*bottom {
		t.Errorf("baseline marginal cost/ω drifted (%.0f vs %.0f) — not ~linear in ω", top, bottom)
	}
	// And the gap must widen: buffered wins more the more writes cost.
	if baseCost[len(baseCost)-1]/btCost[len(btCost)-1] <= baseCost[0]/btCost[0] {
		t.Error("buffered/unbatched gap did not widen with ω")
	}
}
