package harness

import (
	"sync"

	"repro/internal/aem"
)

// This file is the grid's machine recycler. Every grid point owns a
// private machine, which is what makes points embarrassingly parallel —
// but constructing one per point means every point pays allocation (and
// the whole sweep pays GC) for arenas and length tables the previous
// point just dropped. The pool keeps finished machines around, keyed by
// what cannot be recycled away — the engine kind and its fixed block
// stride — and hands them back through aem.Machine.Recycle, whose
// contract (pinned by the aem conformance suite) is that a recycled
// machine is indistinguishable from a fresh one. Pool hits therefore
// change allocation counts, never results, and the scheduler's
// byte-identical-at-any-par guarantee survives pooling untouched.

// poolKey identifies one machine pool. The arena's stride is fixed at
// construction, so B is part of the key; M and ω recycle freely.
type poolKey struct {
	backend string
	b       int
}

var machinePools sync.Map // poolKey → *sync.Pool of *aem.Machine

// PooledMachine returns a machine for cfg on the named backend — recycled
// from the per-{backend, B} pool when one is available, freshly
// constructed otherwise — together with a release function returning it
// for reuse. Call release only once the machine's storage is no longer
// read: the next point will Reset it. Release is idempotent: only the
// first call returns the machine, so a double release (an easy slip in a
// defer-heavy point function) cannot put the same machine into the pool
// twice and hand one arena to two concurrent grid points.
//
// Persistent engines (registry caps) never enter the shared pool: each
// owns a backing file, and a `{engine, B}` string key would let two
// concurrent grid points that happen to share the key alias one file.
// Those machines are pooled by identity instead — this one point owns
// this one engine — so release closes the engine (removing its temp
// file) rather than recycling it.
func PooledMachine(cfg aem.Config, backend string) (ma *aem.Machine, release func()) {
	if e, ok := aem.EngineByName(backend); ok && e.Caps.Persistent {
		ma = backendMachine(cfg, backend)
		var once sync.Once
		return ma, func() { once.Do(func() { ma.Close() }) }
	}
	key := poolKey{backend: backend, b: cfg.B}
	entry, ok := machinePools.Load(key)
	if !ok {
		entry, _ = machinePools.LoadOrStore(key, &sync.Pool{})
	}
	pool := entry.(*sync.Pool)
	if got, ok := pool.Get().(*aem.Machine); ok {
		got.Recycle(cfg)
		ma = got
	} else {
		ma = backendMachine(cfg, backend)
	}
	var once sync.Once
	return ma, func() { once.Do(func() { pool.Put(ma) }) }
}
