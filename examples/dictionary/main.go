// Dictionary: run an online insert/delete/lookup workload through the
// ω-adaptive buffer tree and the unbatched B-tree on the same asymmetric
// machine, and watch write buffering pay for itself.
//
//	go run ./examples/dictionary
package main

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/dict"
	"repro/internal/workload"
)

func main() {
	// Writes cost 32× reads — the regime of phase-change memory. The
	// buffer tree sizes its root buffer as ω·M: the more writes cost, the
	// longer it batches them.
	cfg := aem.Config{M: 256, B: 16, Omega: 32}

	// A Zipf-skewed stream: a few hot keys take most of the traffic, as in
	// real key-value workloads. Overwritten hot keys are absorbed by the
	// buffers and never reach the leaves at all.
	const n = 20000
	ops := workload.DictOps(workload.NewRNG(7), workload.ZipfOps, n, 4096)
	ins, del, look, rng := workload.OpMix(ops)
	fmt.Printf("stream: %d ops (%d insert / %d delete / %d lookup / %d range) on a (M=%d, B=%d, ω=%d)-AEM\n\n",
		n, ins, del, look, rng, cfg.M, cfg.B, cfg.Omega)

	maBuf := aem.New(cfg)
	buffered := dict.NewBufferTree(maBuf)
	answersBuf := buffered.Apply(ops)

	maBase := aem.New(cfg)
	baseline := dict.NewBTree(maBase)
	answersBase := baseline.Apply(ops)

	// Both dictionaries must answer every query identically.
	for i := range answersBuf {
		if answersBuf[i].OK != answersBase[i].OK || answersBuf[i].Value != answersBase[i].Value ||
			len(answersBuf[i].Hits) != len(answersBase[i].Hits) {
			panic("dictionaries disagree — simulator bug")
		}
	}
	fmt.Printf("both dictionaries agree on all %d query answers\n\n", len(answersBuf))

	report := func(name string, ma *aem.Machine) {
		st := ma.Stats()
		fmt.Printf("%-12s reads %7d  writes %6d  cost Q %8d  (%.2f per op, %.3f writes per op)\n",
			name, st.Reads, st.Writes, ma.Cost(), float64(ma.Cost())/n, float64(st.Writes)/n)
	}
	report("buffer tree", maBuf)
	report("b-tree", maBase)
	fmt.Printf("\nthe buffered dictionary is %.1f× cheaper: batched writes land block-granular\n",
		float64(maBase.Cost())/float64(maBuf.Cost()))
	fmt.Println("and deferred — the B-tree pays ω for a leaf rewrite on every single update.")
}
