package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

// TestWriteCSVAtomic: the CSV lands complete under its final name with no
// temp residue — the partial-file hazard fix for `aem bench -csv`.
func TestWriteCSVAtomic(t *testing.T) {
	dir := t.TempDir()
	tbl := &harness.Table{ID: "EXP-T1", Columns: []string{"a", "b"}}
	tbl.AddRow(1, 2)
	if err := writeCSVAtomic(dir, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "exp_t1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if want := "a,b\n1,2\n"; string(got) != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want only the final CSV", len(entries))
	}

	// Failure path: an unwritable directory must error without leaving a
	// truncated final file behind.
	bad := filepath.Join(dir, "missing", "deeper")
	if err := writeCSVAtomic(bad, tbl); err == nil {
		t.Error("writeCSVAtomic into a missing directory succeeded")
	}
}

// TestWriteCSVAtomicCleansUpOnRenameFailure: when the final rename fails
// (here: the target name is occupied by a directory), the temp file must
// be removed — failures never strand *.tmp files in the output directory.
func TestWriteCSVAtomicCleansUpOnRenameFailure(t *testing.T) {
	dir := t.TempDir()
	tbl := &harness.Table{ID: "EXP-T1", Columns: []string{"a"}}
	tbl.AddRow(1)
	if err := os.Mkdir(filepath.Join(dir, "exp_t1.csv"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeCSVAtomic(dir, tbl); err == nil {
		t.Fatal("rename onto a directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s stranded after a rename failure", e.Name())
		}
	}
}

// TestBenchCmdWarnsOnDuplicateExp: a duplicated id in -exp still runs
// (deduplicated) rather than emitting a table twice; the warning path is
// pinned at the harness layer (TestSelect).
func TestBenchCmdWarnsOnDuplicateExp(t *testing.T) {
	out := captureStdout(t, func() {
		if code := benchCmd("aem bench", []string{"-exp", "EXP-B1,EXP-B1"}); code != 0 {
			t.Errorf("exit code %d", code)
		}
	})
	if n := strings.Count(string(out), "EXP-B1 —"); n != 1 {
		t.Fatalf("duplicated -exp id rendered %d tables, want 1\n%s", n, out)
	}
}

// TestBenchCmdUnknownExperiment: a bad -exp selection diagnoses every
// unknown id and exits 2 without running anything.
func TestBenchCmdUnknownExperiment(t *testing.T) {
	if code := benchCmd("aem bench", []string{"-exp", "EXP-D1,EXP-NOPE"}); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

// TestBenchCmdWritesProfiles: -cpuprofile/-memprofile must leave
// non-empty pprof files behind — the recorded starting point for future
// hot-path work.
func TestBenchCmdWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	captureStdout(t, func() {
		if code := benchCmd("aem bench", []string{"-exp", "EXP-B1", "-cpuprofile", cpu, "-memprofile", mem}); code != 0 {
			t.Errorf("exit code %d", code)
		}
	})
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

// TestDeprecatedWrappersCoverEverySubcommand: each historical binary name
// resolves to a live subcommand.
func TestDeprecatedWrappersCoverEverySubcommand(t *testing.T) {
	for _, sub := range []string{"bench", "dict", "sort", "spmxv", "trace"} {
		found := false
		for _, c := range Commands() {
			if c.Name == sub {
				found = true
			}
		}
		if !found {
			t.Errorf("subcommand %s missing from the registry", sub)
		}
	}
	if code := Main([]string{"definitely-not-a-command"}); code != 2 {
		t.Errorf("unknown command exit = %d, want 2", code)
	}
	if code := Main([]string{"help"}); code != 0 {
		t.Errorf("help exit = %d, want 0", code)
	}
}
