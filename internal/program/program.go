// Package program implements the paper's notion of a *program* (§2, §4.2):
// a fixed, straight-line sequence of I/O operations over indivisible atoms,
// as opposed to an algorithm, which branches on the input. The permuting
// lower bounds of Section 4 are statements about programs, and the two
// central constructions — the round-based conversion of Lemma 4.1 and the
// flash-model simulation of Lemma 4.3 — are program transformations. This
// package makes them executable and machine-checkable:
//
//   - Program is a first-class value: an op list over atoms 0..N−1 laid
//     out in ⌈N/B⌉ initial blocks;
//   - Run interprets a program under the movement rules of §4.2 (reading
//     moves a chosen subset of a block's atoms into internal memory,
//     destroying them on disk; writing moves atoms from memory into an
//     empty block), validating memory capacity and atom conservation, and
//     returns the final placement and cost;
//   - ConvertToRoundBased implements Lemma 4.1;
//   - CheckRoundBased validates the round-based structure a converted
//     program claims.
//
// Program generators for tests and experiments live in generate.go.
package program

import (
	"fmt"
	"sort"

	"repro/internal/aem"
)

// Op is one I/O operation of a program.
//
// For a read, Atoms is the subset of the block's atoms the program keeps
// ("uses", in the paper's §4.1 terminology): they move into internal
// memory and their copies in the block are destroyed. For a write, Atoms
// (≤ B of them) move from internal memory into the destination block,
// which must be empty.
type Op struct {
	Kind  aem.OpKind
	Addr  int
	Atoms []int
}

// Program is a straight-line AEM program over N indivisible atoms.
// Initially atom a resides in block a/B (blocks 0..⌈N/B⌉−1); writes may
// target any address, and fresh addresses are allocated on demand.
type Program struct {
	N   int
	Cfg aem.Config
	Ops []Op

	// RoundMarks, if non-empty, are op indices at which rounds end
	// (exclusive): round r spans Ops[RoundMarks[r-1]:RoundMarks[r]].
	// The final mark must equal len(Ops). Internal memory must be empty
	// at every mark. Programs without marks make no round-based claim.
	RoundMarks []int
}

// InitialBlocks returns ⌈N/B⌉, the number of blocks the input occupies.
func (p *Program) InitialBlocks() int { return p.Cfg.BlocksOf(p.N) }

// Cost returns Q = Qr + ω·Qw of the program.
func (p *Program) Cost() int64 {
	var q int64
	for _, op := range p.Ops {
		if op.Kind == aem.OpRead {
			q++
		} else {
			q += int64(p.Cfg.Omega)
		}
	}
	return q
}

// Placement is the final disk state of a program: for each atom, the block
// address where it ended up. Within-block order is deliberately not part
// of a placement — the paper's counting argument (§4.2) normalizes it away
// (the B! orders inside each block are counted once).
type Placement map[int]int

// Equal reports whether two placements put every atom in the same block.
func (pl Placement) Equal(other Placement) bool {
	if len(pl) != len(other) {
		return false
	}
	for a, addr := range pl {
		if other[a] != addr {
			return false
		}
	}
	return true
}

// Result is the outcome of interpreting a program.
type Result struct {
	Placement Placement
	Stats     aem.Stats
	// MaxMemory is the high-water mark of atoms simultaneously held in
	// internal memory.
	MaxMemory int
}

// Cost returns the interpreted cost, which always equals Program.Cost for
// a program that ran successfully.
func (r Result) Cost(omega int) int64 { return r.Stats.Cost(omega) }

// RunOptions controls interpretation.
type RunOptions struct {
	// AllowResidentMemory permits the program to finish with atoms still
	// in internal memory. Permuting programs must finish with everything
	// on disk, so the default (false) rejects resident atoms.
	AllowResidentMemory bool
}

// Run interprets the program under the §4.2 movement rules, validating
// every step. It returns an error describing the first violated rule, if
// any: reading atoms absent from a block, writing atoms not in memory,
// writing to a non-empty block, overflowing internal memory, or finishing
// with atoms in memory.
func Run(p *Program, opts RunOptions) (Result, error) {
	st := newState(p)
	for i, op := range p.Ops {
		if err := st.step(op); err != nil {
			return Result{}, fmt.Errorf("program: op %d (%v %d): %w", i, op.Kind, op.Addr, err)
		}
	}
	if !opts.AllowResidentMemory && len(st.mem) != 0 {
		return Result{}, fmt.Errorf("program: %d atoms resident in memory at end", len(st.mem))
	}
	return Result{Placement: st.placement(), Stats: st.stats, MaxMemory: st.maxMem}, nil
}

// state is the interpreter state: block contents as atom sets, the memory
// set, and accounting.
type state struct {
	p      *Program
	blocks []map[int]struct{}
	mem    map[int]struct{}
	stats  aem.Stats
	maxMem int
}

func newState(p *Program) *state {
	st := &state{p: p, mem: make(map[int]struct{})}
	n := p.InitialBlocks()
	st.blocks = make([]map[int]struct{}, n)
	for a := 0; a < p.N; a++ {
		blk := a / p.Cfg.B
		if st.blocks[blk] == nil {
			st.blocks[blk] = make(map[int]struct{}, p.Cfg.B)
		}
		st.blocks[blk][a] = struct{}{}
	}
	return st
}

func (st *state) ensure(addr int) (map[int]struct{}, error) {
	if addr < 0 {
		return nil, fmt.Errorf("negative address")
	}
	for addr >= len(st.blocks) {
		st.blocks = append(st.blocks, nil)
	}
	if st.blocks[addr] == nil {
		st.blocks[addr] = make(map[int]struct{})
	}
	return st.blocks[addr], nil
}

func (st *state) step(op Op) error {
	blk, err := st.ensure(op.Addr)
	if err != nil {
		return err
	}
	switch op.Kind {
	case aem.OpRead:
		st.stats.Reads++
		for _, a := range op.Atoms {
			if _, ok := blk[a]; !ok {
				return fmt.Errorf("read takes atom %d not present in block", a)
			}
			delete(blk, a)
			st.mem[a] = struct{}{}
		}
		if len(st.mem) > st.p.Cfg.M {
			return fmt.Errorf("%w: %d atoms > M = %d", aem.ErrMemoryOverflow, len(st.mem), st.p.Cfg.M)
		}
		if len(st.mem) > st.maxMem {
			st.maxMem = len(st.mem)
		}
	case aem.OpWrite:
		st.stats.Writes++
		if len(op.Atoms) > st.p.Cfg.B {
			return fmt.Errorf("write of %d atoms exceeds block size B = %d", len(op.Atoms), st.p.Cfg.B)
		}
		if len(blk) != 0 {
			return fmt.Errorf("write to non-empty block (%d atoms would be destroyed)", len(blk))
		}
		for _, a := range op.Atoms {
			if _, ok := st.mem[a]; !ok {
				return fmt.Errorf("write of atom %d not in memory", a)
			}
			delete(st.mem, a)
			blk[a] = struct{}{}
		}
	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
	return nil
}

func (st *state) placement() Placement {
	pl := make(Placement, st.p.N)
	for addr, blk := range st.blocks {
		for a := range blk {
			pl[a] = addr
		}
	}
	return pl
}

// memEmptyPoints returns, for each op index i in 0..len(Ops), whether
// internal memory is empty just before op i (index len(Ops) = at the end).
// It re-runs the program, so it must only be called on valid programs.
func memEmptyPoints(p *Program) []bool {
	st := newState(p)
	empty := make([]bool, len(p.Ops)+1)
	empty[0] = true
	for i, op := range p.Ops {
		if err := st.step(op); err != nil {
			panic(fmt.Sprintf("program: memEmptyPoints on invalid program: %v", err))
		}
		empty[i+1] = len(st.mem) == 0
	}
	return empty
}

// sortedAtoms returns the atoms of a set in increasing order (for
// deterministic op construction).
func sortedAtoms(set map[int]struct{}) []int {
	out := make([]int, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}
