package dict

import (
	"fmt"
	"sort"

	"repro/internal/aem"
)

// This file is the buffer tree's snapshot read path: a structurally
// captured, immutable view of the tree that answers Lookups and RangeScans
// without touching the live tree or its machine. Snapshots are what let a
// concurrent serving layer (internal/dictsrv) run readers against a stable
// state while a background flush or rebuild rewrites the live structure.
//
// The capture is cheap and I/O-free because the tree's chains are
// append-only: blocks are written whole at freshly allocated addresses and
// never rewritten in place, so a deep copy of every chain's address slice
// (plus the node topology and separator-block addresses, which are program
// knowledge) pins the exact state of the tree at capture time. Later
// updates only append blocks at new addresses or abandon old ones — they
// can never change the contents behind a captured address.
//
// Snapshot queries do not run on the tree's machine: the machine's
// accounting and storage access are single-threaded by design. Instead the
// snapshot reads blocks through a caller-supplied BlockReader, which is
// where a serving layer injects its concurrency control (and its own read
// accounting). The read algorithm itself replicates the live query path:
// scan every buffer on the root-to-leaf route plus the leaf run, resolve
// winners by sequence number.

// BlockReader fetches one external-memory block into dst, returning the
// filled prefix (like aem.Storage.ReadInto). Implementations used by
// concurrent readers must be safe to call while the tree's machine
// allocates and writes new blocks; the dictsrv locked-storage wrapper is
// the canonical implementation.
type BlockReader interface {
	ReadBlock(a aem.Addr, dst []aem.Item) []aem.Item
}

// snapChain is one captured chain: the block addresses as of capture.
type snapChain struct {
	addrs []aem.Addr
	n     int
}

// snapNode is one captured tree node.
type snapNode struct {
	kids      []*snapNode
	sepBase   aem.Addr
	sepBlocks int
	buf       snapChain
	run       snapChain
}

func (nd *snapNode) isLeaf() bool { return nd.kids == nil }

// TreeSnapshot is an immutable view of a BufferTree at one instant. It is
// safe to share across goroutines and to query while the live tree keeps
// applying updates; queries cost one BlockReader call per block scanned.
type TreeSnapshot struct {
	b     int   // block size of the capturing machine
	seq   int64 // update sequence watermark at capture
	root  *snapNode
	stage []aem.Item // copy of the staged root tail (EnableTailStaging)
}

// Snapshot captures the tree's current state. The capture walks the node
// structure and deep-copies every chain's address slice — no I/O, no locks
// — so it must be called from the same goroutine that applies updates
// (the tree is not internally synchronized). The returned snapshot
// reflects exactly the updates applied before the call.
func (t *BufferTree) Snapshot() *TreeSnapshot {
	var capture func(nd *btnode) *snapNode
	capture = func(nd *btnode) *snapNode {
		sn := &snapNode{
			sepBase:   nd.sepBase,
			sepBlocks: nd.sepBlocks,
			buf:       snapChain{addrs: append([]aem.Addr(nil), nd.buf.addrs...), n: nd.buf.n},
			run:       snapChain{addrs: append([]aem.Addr(nil), nd.run.addrs...), n: nd.run.n},
		}
		if !nd.isLeaf() {
			sn.kids = make([]*snapNode, len(nd.kids))
			for i, kid := range nd.kids {
				sn.kids[i] = capture(kid)
			}
		}
		return sn
	}
	s := &TreeSnapshot{b: t.cfg.B, seq: t.seq, root: capture(t.top)}
	if len(t.stage) > 0 {
		s.stage = append([]aem.Item(nil), t.stage...)
	}
	return s
}

// Seq returns the tree's update-sequence watermark at capture time.
func (s *TreeSnapshot) Seq() int64 { return s.seq }

// GetScratch is the reusable working memory of snapshot point lookups:
// one block frame and one separator buffer. Callers that pool it (see
// dictsrv) keep the steady-state lookup path allocation-free.
type GetScratch struct {
	frame []aem.Item
	seps  []int64
}

// NewGetScratch returns scratch sized for snapshots captured at block
// size b.
func NewGetScratch(b int) *GetScratch {
	return &GetScratch{frame: make([]aem.Item, b), seps: make([]int64, 0, 64)}
}

// readSeps decodes a captured node's separator keys into sc.seps.
func (s *TreeSnapshot) readSeps(r BlockReader, nd *snapNode, sc *GetScratch) ([]int64, int64) {
	seps := sc.seps[:0]
	var reads int64
	for b := 0; b < nd.sepBlocks; b++ {
		blk := r.ReadBlock(nd.sepBase+aem.Addr(b), sc.frame)
		reads++
		for _, it := range blk {
			seps = append(seps, it.Key)
		}
	}
	if len(seps) != len(nd.kids) {
		panic(fmt.Sprintf("dict: snapshot node has %d separators for %d children", len(seps), len(nd.kids)))
	}
	sc.seps = seps
	return seps, reads
}

// routeSeps is route() without the sort.Search closure, so the lookup
// path stays allocation-free. Child i covers [seps[i], seps[i+1]), with
// seps[0] acting as -∞ and the last interval open-ended.
func routeSeps(seps []int64, k int64) int {
	i := 0
	for i+1 < len(seps) && k >= seps[i+1] {
		i++
	}
	return i
}

// Get answers one point lookup against the snapshot: the value associated
// with key at capture time, whether it was present, and the number of
// blocks read. sc may be nil (scratch is then allocated per call); pass a
// pooled GetScratch to make the steady state allocation-free.
func (s *TreeSnapshot) Get(r BlockReader, key int64, sc *GetScratch) (value int64, ok bool, reads int64) {
	if sc == nil {
		sc = NewGetScratch(s.b)
	}
	var best int64 // packed Aux of the winning update; 0 = none seen
	// The staged root tail holds the newest updates in the snapshot and
	// costs no I/O to scan; a hit here answers the lookup outright.
	for _, it := range s.stage {
		if it.Key == key && entrySeq(it.Aux) > entrySeq(best) {
			best = it.Aux
		}
	}
	if best != 0 {
		if entryKind(best) == Insert {
			return entryValue(best), true, 0
		}
		return 0, false, 0
	}
	nd := s.root
	for {
		// Scan this node's pending updates (and, at a leaf, its run) for
		// the key; within one node the largest sequence number wins.
		for _, c := range [2]*snapChain{&nd.buf, &nd.run} {
			for _, a := range c.addrs {
				blk := r.ReadBlock(a, sc.frame)
				reads++
				for _, it := range blk {
					if it.Key == key && entrySeq(it.Aux) > entrySeq(best) {
						best = it.Aux
					}
				}
			}
		}
		// A hit at this level ends the descent: entries only move DOWN the
		// tree (buffer flushes route all of a key's buffered entries to one
		// child together), so anything for this key in a descendant is
		// strictly older than a match found here. This is what makes hot
		// keys cheap — they resolve in the root buffer without paying the
		// full root-to-leaf scan.
		if best != 0 || nd.isLeaf() {
			break
		}
		seps, n := s.readSeps(r, nd, sc)
		reads += n
		nd = nd.kids[routeSeps(seps, key)]
	}
	if best != 0 && entryKind(best) == Insert {
		return entryValue(best), true, reads
	}
	return 0, false, reads
}

// Range answers one range scan [lo, hi) against the snapshot: every live
// (key, value) pair in ascending key order, plus the number of blocks
// read. Unlike Get it allocates (a winners map and the result slice) —
// range answers are inherently sized by the data.
func (s *TreeSnapshot) Range(r BlockReader, lo, hi int64) (hits []Found, reads int64) {
	if hi <= lo {
		return nil, 0
	}
	sc := NewGetScratch(s.b)
	cands := make(map[int64]int64) // key → packed Aux of the winner
	for _, it := range s.stage {
		if lo <= it.Key && it.Key < hi && entrySeq(it.Aux) > entrySeq(cands[it.Key]) {
			cands[it.Key] = it.Aux
		}
	}
	var walk func(nd *snapNode)
	walk = func(nd *snapNode) {
		for _, c := range [2]*snapChain{&nd.buf, &nd.run} {
			for _, a := range c.addrs {
				blk := r.ReadBlock(a, sc.frame)
				reads++
				for _, it := range blk {
					if lo <= it.Key && it.Key < hi {
						if entrySeq(it.Aux) > entrySeq(cands[it.Key]) {
							cands[it.Key] = it.Aux
						}
					}
				}
			}
		}
		if nd.isLeaf() {
			return
		}
		seps, n := s.readSeps(r, nd, sc)
		reads += n
		// Recurse into every child whose interval intersects [lo, hi).
		// Separator keys live in sc.seps, which the recursion reuses, so
		// the child indexes are resolved before descending.
		first := routeSeps(seps, lo)
		last := routeSeps(seps, hi-1)
		kids := nd.kids[first : last+1]
		for _, kid := range kids {
			walk(kid)
		}
	}
	walk(s.root)

	keys := make([]int64, 0, len(cands))
	for k, aux := range cands {
		if entryKind(aux) == Insert {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	hits = make([]Found, 0, len(keys))
	for _, k := range keys {
		hits = append(hits, Found{Key: k, Value: entryValue(cands[k])})
	}
	return hits, reads
}
