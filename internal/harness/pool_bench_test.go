package harness

import (
	"testing"

	"repro/internal/aem"
)

// BenchmarkMachineAcquisition measures what a grid point pays to obtain
// its machine: a fresh construction (allocating the arena and bookkeeping
// from scratch) versus a pool hit (Recycle on a machine the previous
// point just released). The workload — allocate a production-ish range so
// the arena actually grows — is identical; only the acquisition differs.
func BenchmarkMachineAcquisition(b *testing.B) {
	cfg := aem.Config{M: 1 << 10, B: 64, Omega: 8}
	const blocks = 1 << 12
	for _, backend := range []string{"slice", "arena", "counting"} {
		b.Run(backend+"/fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ma := backendMachine(cfg, backend)
				ma.Alloc(blocks)
			}
		})
		b.Run(backend+"/pooled", func(b *testing.B) {
			// Prime the pool so every iteration is a hit.
			ma, release := PooledMachine(cfg, backend)
			ma.Alloc(blocks)
			release()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ma, release := PooledMachine(cfg, backend)
				ma.Alloc(blocks)
				release()
			}
		})
	}
}

// BenchmarkMegaGridPoint is the macro number behind the throughput gate:
// one EXP-MG1 grid point end to end — pooled counting machine, bulk-scan
// mergesort replay — at the shallowest and deepest corners of the grid.
// The deep corner simulates ~5×10⁸ I/Os per iteration.
func BenchmarkMegaGridPoint(b *testing.B) {
	s := specMG1()
	pts := s.Points()
	for _, tc := range []struct {
		name string
		p    Point
	}{
		{"shallow", pts[0]},
		{"deep", pts[len(pts)-1]},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Point(tc.p)
			}
		})
	}
}
