package dict

import (
	"testing"
	"time"

	"repro/internal/aem"
	"repro/internal/rng"
)

// TestFlushStepBudget is the bounded-stall contract at the tree level: a
// deamortized tree charged one FlushStep(1) per serving-sized batch never
// performs more than one node-flush per batch outside the 2× backstop,
// while queries, snapshots and the final barrier all stay model-correct
// with debt outstanding.
func TestFlushStepBudget(t *testing.T) {
	r := rng.New(17)
	cfg := aem.Config{M: 128, B: 16, Omega: 8}
	ma := aem.New(cfg)
	tree := NewBufferTree(ma)
	tree.EnableTailStaging()
	tree.Deamortize()
	reader := machineReader{ma}
	model := map[int64]int64{}

	const keyspace = 512
	ops := diffStream(23, 20000, keyspace)
	sawDebt := false
	for i := 0; i < len(ops); {
		j := i + 1 + r.Intn(7)
		if j > len(ops) {
			j = len(ops)
		}
		batch := ops[i:j]
		for _, op := range batch {
			switch op.Kind {
			case Insert:
				model[op.Key] = op.Value
			case Delete:
				delete(model, op.Key)
			}
		}
		before := tree.NodeFlushes()
		tree.Apply(batch)
		if d := tree.NodeFlushes() - before; d > 1 {
			t.Fatalf("Apply of %d ops performed %d node-flushes; the backstop allows at most 1", len(batch), d)
		}
		if tree.Debt() > 0 {
			sawDebt = true
		}
		before = tree.NodeFlushes()
		stepped := tree.FlushStep(1)
		if d := tree.NodeFlushes() - before; d != int64(stepped) || d > 1 {
			t.Fatalf("FlushStep(1) reported %d steps but performed %d node-flushes", stepped, d)
		}
		if tree.Debt() == 0 && r.Intn(20) == 0 {
			tree.Compact() // what a committer does at idle
		}
		i = j

		if r.Intn(40) == 0 {
			// Live lookups and snapshot reads must see through pending debt.
			k := int64(r.Intn(keyspace))
			res := tree.Apply([]Op{{Kind: Lookup, Key: k}})
			want, wantOK := model[k]
			if res[0].OK != wantOK || (wantOK && res[0].Value != want) {
				t.Fatalf("mid-debt Lookup(%d) = (%d,%v), model (%d,%v)", k, res[0].Value, res[0].OK, want, wantOK)
			}
			snap := tree.Snapshot()
			got, ok, _ := snap.Get(reader, k, nil)
			if ok != wantOK || (wantOK && got != want) {
				t.Fatalf("mid-debt snapshot Get(%d) = (%d,%v), model (%d,%v)", k, got, ok, want, wantOK)
			}
		}
	}
	if !sawDebt {
		t.Fatal("stream never left debt outstanding; the deamortized path was not exercised")
	}

	tree.Flush()
	if tree.Debt() != 0 {
		t.Fatalf("Flush left %d debt entries", tree.Debt())
	}
	for k := int64(0); k < keyspace; k++ {
		snap := tree.Snapshot()
		got, ok, _ := snap.Get(reader, k, nil)
		want, wantOK := model[k]
		if ok != wantOK || (wantOK && got != want) {
			t.Fatalf("post-barrier Get(%d) = (%d,%v), model (%d,%v)", k, got, ok, want, wantOK)
		}
	}
	if peak := ma.MemPeak(); peak > cfg.M {
		t.Fatalf("MemPeak %d exceeds M=%d", peak, cfg.M)
	}
}

// TestDeamortizedRootBackstop pins the occupancy bound when the caller
// never steps: the root buffer is force-flushed (one node-flush) at 2× its
// threshold, so pending root items stay below 2·rootCap + one append chunk
// no matter how much debt accumulates below.
func TestDeamortizedRootBackstop(t *testing.T) {
	cfg := aem.Config{M: 64, B: 8, Omega: 4}
	ma := aem.New(cfg)
	tree := NewBufferTree(ma)
	tree.EnableTailStaging()
	tree.Deamortize()

	var stalls int
	var worst time.Duration
	tree.SetFlushHook(func(d time.Duration) {
		stalls++
		if d > worst {
			worst = d
		}
	})

	ops := diffStream(31, 8*tree.RootCap(), 4096)
	bound := 2*tree.RootCap() + cfg.B
	for i := 0; i < len(ops); i += 16 {
		j := min(len(ops), i+16)
		tree.Apply(ops[i:j])
		if p := tree.rootPending(); p > bound {
			t.Fatalf("root pending %d exceeds backstop bound %d", p, bound)
		}
	}
	if stalls == 0 {
		t.Fatal("backstop never fired over an 8×rootCap stream")
	}
	if tree.Debt() == 0 {
		t.Fatal("unstepped deamortized stream accumulated no debt")
	}
	tree.Flush()
	if tree.Debt() != 0 || tree.rootPending() != 0 {
		t.Fatalf("barrier left debt=%d pending=%d", tree.Debt(), tree.rootPending())
	}
}

// TestDeamortizedMatchesAmortized applies one stream to an amortized and a
// deamortized tree (both staged, stepped per batch) and requires identical
// final answers, with the deamortized total cost within 2× — deferral may
// reorder node-flushes but must not change the asymptotics.
func TestDeamortizedMatchesAmortized(t *testing.T) {
	cfg := aem.Config{M: 128, B: 16, Omega: 16}
	build := func(deam bool) (*aem.Machine, *BufferTree) {
		ma := aem.New(cfg)
		tree := NewBufferTree(ma)
		tree.EnableTailStaging()
		if deam {
			tree.Deamortize()
		}
		return ma, tree
	}
	maA, amortized := build(false)
	maD, deamortized := build(true)

	ops := diffStream(41, 30000, 1024)
	r := rng.New(3)
	for i := 0; i < len(ops); {
		j := i + 1 + r.Intn(15)
		if j > len(ops) {
			j = len(ops)
		}
		resA := amortized.Apply(ops[i:j])
		resD := deamortized.Apply(ops[i:j])
		deamortized.FlushStep(1)
		if deamortized.Debt() == 0 {
			// The committer compacts when the write channel idles; without
			// it the deamortized tree would stay a single leaf and pay a
			// full run rewrite per installment.
			deamortized.Compact()
		}
		if len(resA) != len(resD) {
			t.Fatalf("result counts differ: %d vs %d", len(resA), len(resD))
		}
		for qi := range resA {
			if resA[qi].OK != resD[qi].OK || resA[qi].Value != resD[qi].Value || len(resA[qi].Hits) != len(resD[qi].Hits) {
				t.Fatalf("query %d diverged: %+v vs %+v", qi, resA[qi], resD[qi])
			}
		}
		i = j
	}
	amortized.Flush()
	deamortized.Flush()
	if amortized.Len() != deamortized.Len() {
		t.Fatalf("Len diverged: %d vs %d", amortized.Len(), deamortized.Len())
	}
	costA := maA.Stats().Cost(cfg.Omega)
	costD := maD.Stats().Cost(cfg.Omega)
	if costD > 2*costA {
		t.Fatalf("deamortized cost %d more than 2× amortized %d", costD, costA)
	}
}

// TestDeamortizeGuards pins the enable-time contract, mirroring
// TestTailStagingGuards.
func TestDeamortizeGuards(t *testing.T) {
	ma := aem.New(aem.Config{M: 128, B: 8, Omega: 2})
	tree := NewBufferTree(ma)
	tree.Apply([]Op{{Kind: Insert, Key: 1, Value: 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("Deamortize after Apply did not panic")
		}
	}()
	tree.Deamortize()
}
