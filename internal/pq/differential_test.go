// Differential layer for the priority queues: generated push/deletemin
// streams run through both queues against container/heap, on every
// storage engine and on the model's corner machines (B = 1 is the ARAM of
// Blelloch et al., ω = 1 the symmetric EM model). The data-bearing
// engines must agree with the reference item for item; the counting
// engine holds no data (reads return zeros), so there the queues must
// still terminate, preserve Len bookkeeping and leak no metered memory —
// which is what it exists to check.
package pq

import (
	"container/heap"
	"fmt"
	"testing"

	"repro/internal/aem"
	"repro/internal/workload"
)

var differentialConfigs = []aem.Config{
	{M: 256, B: 16, Omega: 8},
	{M: 64, B: 4, Omega: 16}, // M = 16B floor
	{M: 32, B: 1, Omega: 8},  // B = 1: the (M,ω)-ARAM
	{M: 128, B: 8, Omega: 1}, // ω = 1: symmetric EM
}

func runDifferential(t *testing.T, q minQueue, ma *aem.Machine, ops []workload.PQOp) {
	t.Helper()
	ref := &refHeap{}
	for i, op := range ops {
		if op.Kind == workload.PQPush {
			q.Push(op.Item)
			heap.Push(ref, op.Item)
		} else {
			got, ok := q.DeleteMin()
			want := heap.Pop(ref).(aem.Item)
			if !ok || got != want {
				t.Fatalf("op %d: DeleteMin = %v, %t, want %v", i, got, ok, want)
			}
		}
	}
	for ref.Len() > 0 {
		got, ok := q.DeleteMin()
		want := heap.Pop(ref).(aem.Item)
		if !ok || got != want {
			t.Fatalf("drain: got %v, %t, want %v", got, ok, want)
		}
	}
	q.Close()
}

func TestDifferentialStreamsAllEngines(t *testing.T) {
	const n = 20000
	queues := map[string]func(*aem.Machine) minQueue{
		"sequence": func(ma *aem.Machine) minQueue { return New(ma) },
		"adaptive": func(ma *aem.Machine) minQueue { return NewAdaptive(ma) },
	}
	for _, cfg := range differentialConfigs {
		for _, sc := range workload.PQScenarios() {
			ops := workload.PQOps(workload.NewRNG(101+uint64(sc)), sc, n)
			for qname, mk := range queues {
				// Data-bearing engines: exact differential vs container/heap,
				// and cross-engine Stats identity.
				var refStats *aem.Stats
				for _, engine := range []struct {
					name string
					mk   func() *aem.Machine
				}{
					{"slice", func() *aem.Machine { return aem.New(cfg) }},
					{"arena", func() *aem.Machine { return aem.NewWithStorage(cfg, aem.NewArenaStorage(cfg.B)) }},
				} {
					name := fmt.Sprintf("%s/%s/M%dB%dw%d/%s", qname, sc, cfg.M, cfg.B, cfg.Omega, engine.name)
					t.Run(name, func(t *testing.T) {
						ma := engine.mk()
						q := mk(ma)
						runDifferential(t, q, ma, ops)
						if ma.MemInUse() != 0 {
							t.Fatalf("leaked %d memory slots", ma.MemInUse())
						}
						st := ma.Stats()
						if refStats == nil {
							refStats = &st
						} else if *refStats != st {
							t.Fatalf("stats %+v differ from slice engine %+v", st, *refStats)
						}
					})
				}
				// Counting engine: no data, so no differential — the queue
				// must terminate, keep Len exact and leak nothing. The
				// stream is kept short of the compaction threshold: a level
				// merge runs MergeRuns, whose §3.1 run pointers themselves
				// live in external memory and are zeroed by the data-free
				// engine — the boundary aem/storage.go draws for every
				// value-dependent algorithm.
				// Half the run budget in ops keeps every config clear of a
				// compaction: runs form at worst one per capIB staged
				// pushes plus one per refill.
				maxRuns := cfg.M / (2 * cfg.B)
				limit := maxRuns * (cfg.M / 8) / 2
				if limit > len(ops) {
					limit = len(ops)
				}
				countingOps := ops[:limit]
				t.Run(fmt.Sprintf("%s/%s/M%dB%dw%d/counting", qname, sc, cfg.M, cfg.B, cfg.Omega), func(t *testing.T) {
					ma := aem.NewWithStorage(cfg, aem.NewCountingStorage())
					q := mk(ma)
					size := 0
					for i, op := range countingOps {
						if op.Kind == workload.PQPush {
							q.Push(op.Item)
							size++
						} else {
							if _, ok := q.DeleteMin(); !ok {
								t.Fatalf("op %d: DeleteMin empty with %d queued", i, size)
							}
							size--
						}
						if q.Len() != size {
							t.Fatalf("op %d: Len = %d, want %d", i, q.Len(), size)
						}
					}
					for size > 0 {
						if _, ok := q.DeleteMin(); !ok {
							t.Fatalf("drain: empty with %d queued", size)
						}
						size--
					}
					q.Close()
					if ma.MemInUse() != 0 {
						t.Fatalf("leaked %d memory slots", ma.MemInUse())
					}
				})
			}
		}
	}
}
