package aem

import (
	"fmt"
)

// OpKind distinguishes the two kinds of I/O operation in a trace.
type OpKind uint8

const (
	// OpRead is a block read from external memory.
	OpRead OpKind = iota
	// OpWrite is a block write to external memory.
	OpWrite
)

// String returns "R" or "W".
func (k OpKind) String() string {
	if k == OpRead {
		return "R"
	}
	return "W"
}

// TraceOp is one recorded I/O operation.
type TraceOp struct {
	Kind OpKind
	Addr Addr
}

// Machine simulates an (M,B,ω)-AEM machine: a block-granular external
// memory, an internal memory capacity meter, and I/O cost accounting.
//
// The simulator deliberately does not model internal memory *contents* —
// internal computation is free in the model — but it does meter how many
// item slots an algorithm has reserved, and panics if the total ever exceeds
// M. Algorithms bracket their buffers with Reserve/Release; exceeding M is a
// bug in the algorithm (its memory footprint analysis is wrong), so the
// violation is an assertion failure rather than an error return.
type Machine struct {
	cfg     Config
	disk    [][]Item
	stats   Stats
	phases  PhaseStats
	phase   string
	inUse   int
	peak    int
	tracing bool
	trace   []TraceOp
}

// New returns a fresh machine with an empty disk. It panics if cfg is
// invalid; constructing a machine from bad parameters is a programming
// error, and every CLI validates user input before reaching this point.
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Machine{cfg: cfg, phase: "main"}
}

// Config returns the machine parameters.
func (ma *Machine) Config() Config { return ma.cfg }

// Stats returns the accumulated I/O counts.
func (ma *Machine) Stats() Stats { return ma.stats }

// Cost returns the accumulated AEM cost Q = Qr + ω·Qw.
func (ma *Machine) Cost() int64 { return ma.stats.Cost(ma.cfg.Omega) }

// ResetStats zeroes the I/O counters (the disk contents are untouched).
func (ma *Machine) ResetStats() {
	ma.stats = Stats{}
	ma.phases = PhaseStats{}
}

// SetPhase labels subsequent I/Os with the given phase name for per-stage
// accounting and returns the previous label so callers can restore it.
// The default phase is "main".
func (ma *Machine) SetPhase(name string) (previous string) {
	previous = ma.phase
	ma.phase = name
	return previous
}

// Phases returns the per-phase I/O accounting.
func (ma *Machine) Phases() *PhaseStats { return &ma.phases }

// StartTrace begins recording every I/O operation. Recording continues
// until StopTrace is called.
func (ma *Machine) StartTrace() {
	ma.tracing = true
	ma.trace = ma.trace[:0]
}

// StopTrace stops recording and returns the recorded operations.
func (ma *Machine) StopTrace() []TraceOp {
	ma.tracing = false
	ops := ma.trace
	ma.trace = nil
	return ops
}

// NumBlocks returns the number of blocks currently allocated on disk.
func (ma *Machine) NumBlocks() int { return len(ma.disk) }

// Alloc reserves count fresh, empty, contiguous blocks of external memory
// and returns the address of the first. Allocation itself is free: the
// model's external memory is unbounded and address arithmetic costs
// nothing. Writing to the blocks costs I/O as usual.
func (ma *Machine) Alloc(count int) Addr {
	if count < 0 {
		panic(fmt.Sprintf("aem: Alloc(%d): negative count", count))
	}
	base := Addr(len(ma.disk))
	for i := 0; i < count; i++ {
		ma.disk = append(ma.disk, nil)
	}
	return base
}

// Read performs one read I/O and returns a copy of the block's contents
// (between 0 and B items). The copy models the transfer into internal
// memory; callers own the returned slice but must account for its footprint
// with Reserve if they retain it.
func (ma *Machine) Read(a Addr) []Item {
	ma.checkAddr(a, "Read")
	ma.count(OpRead, a)
	blk := ma.disk[a]
	out := make([]Item, len(blk))
	copy(out, blk)
	return out
}

// Write performs one write I/O, replacing the block's contents with a copy
// of items. It panics if len(items) > B: a block cannot hold more than B
// items.
func (ma *Machine) Write(a Addr, items []Item) {
	ma.checkAddr(a, "Write")
	if len(items) > ma.cfg.B {
		panic(fmt.Sprintf("aem: Write(%d): %d items exceed block size B=%d", a, len(items), ma.cfg.B))
	}
	ma.count(OpWrite, a)
	blk := make([]Item, len(items))
	copy(blk, items)
	ma.disk[a] = blk
}

// Peek returns the block's contents without performing (or costing) an I/O.
// It exists for test verification and for "program knowledge": in the
// paper's program model (§2) the structure of the input is known to the
// program for free; only data movement costs. Algorithms must not use Peek
// to move item *values* — tests enforce cost bounds that would be violated
// by such cheating anyway.
func (ma *Machine) Peek(a Addr) []Item {
	ma.checkAddr(a, "Peek")
	blk := ma.disk[a]
	out := make([]Item, len(blk))
	copy(out, blk)
	return out
}

// Poke replaces the block's contents without performing (or costing) an
// I/O. It is used to lay out the *input*, which the model places in
// external memory at time zero at no cost.
func (ma *Machine) Poke(a Addr, items []Item) {
	ma.checkAddr(a, "Poke")
	if len(items) > ma.cfg.B {
		panic(fmt.Sprintf("aem: Poke(%d): %d items exceed block size B=%d", a, len(items), ma.cfg.B))
	}
	blk := make([]Item, len(items))
	copy(blk, items)
	ma.disk[a] = blk
}

// Reserve meters the allocation of slots items of internal memory. It
// panics if the total reserved would exceed M.
func (ma *Machine) Reserve(slots int) {
	if slots < 0 {
		panic(fmt.Sprintf("aem: Reserve(%d): negative count", slots))
	}
	if ma.inUse+slots > ma.cfg.M {
		panic(fmt.Sprintf("%v: in use %d + requested %d > M = %d",
			ErrMemoryOverflow, ma.inUse, slots, ma.cfg.M))
	}
	ma.inUse += slots
	if ma.inUse > ma.peak {
		ma.peak = ma.inUse
	}
}

// Release returns slots items of internal memory to the machine.
func (ma *Machine) Release(slots int) {
	if slots < 0 || slots > ma.inUse {
		panic(fmt.Sprintf("aem: Release(%d): in use %d", slots, ma.inUse))
	}
	ma.inUse -= slots
}

// MemInUse returns the number of internal memory slots currently reserved.
func (ma *Machine) MemInUse() int { return ma.inUse }

// MemPeak returns the high-water mark of reserved internal memory.
func (ma *Machine) MemPeak() int { return ma.peak }

func (ma *Machine) count(kind OpKind, a Addr) {
	switch kind {
	case OpRead:
		ma.stats.Reads++
		ma.phases.Record(ma.phase, Stats{Reads: 1})
	case OpWrite:
		ma.stats.Writes++
		ma.phases.Record(ma.phase, Stats{Writes: 1})
	}
	if ma.tracing {
		ma.trace = append(ma.trace, TraceOp{Kind: kind, Addr: a})
	}
}

func (ma *Machine) checkAddr(a Addr, op string) {
	if a < 0 || int(a) >= len(ma.disk) {
		panic(fmt.Sprintf("aem: %s(%d): address out of range [0,%d)", op, a, len(ma.disk)))
	}
}
